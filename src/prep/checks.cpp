#include "prep/checks.h"

#include <algorithm>
#include <set>

#include "bytecode/verifier.h"
#include "prep/emitter.h"
#include "prep/faultscan.h"
#include "support/panic.h"

namespace sod::prep {

using bc::Method;
using bc::Op;
using bc::Program;
using bc::Ty;

void add_status_fields(Program& p) {
  for (auto& c : p.classes) {
    if (c.is_exception) continue;
    if (p.find_field(c.name + ".__status") != bc::kNoId) continue;
    bc::Field inst;
    inst.id = static_cast<uint16_t>(p.fields.size());
    inst.owner = c.id;
    inst.name = c.name + ".__status";
    inst.type = Ty::I64;
    inst.is_static = false;
    inst.slot = c.num_inst_slots++;
    p.fields.push_back(inst);
    c.field_ids.push_back(inst.id);

    bc::Field st;
    st.id = static_cast<uint16_t>(p.fields.size());
    st.owner = c.id;
    st.name = c.name + ".__sstatus";
    st.type = Ty::I64;
    st.is_static = true;
    st.slot = c.num_static_slots++;
    p.fields.push_back(st);
    c.field_ids.push_back(st.id);
  }
}

namespace {

uint16_t status_fid(const Program& p, uint16_t cls) {
  if (cls == bc::kNoId || p.cls(cls).is_exception) return bc::kNoId;
  return p.find_field(p.cls(cls).name + ".__status");
}
uint16_t sstatus_fid(const Program& p, uint16_t cls) {
  if (cls == bc::kNoId || p.cls(cls).is_exception) return bc::kNoId;
  return p.find_field(p.cls(cls).name + ".__sstatus");
}

class ChecksPass {
 public:
  ChecksPass(Program& p, Method& m) : p_(p), m_(m) {}

  ChecksStats run() {
    std::vector<StmtScan> scans = scan_statements(p_, m_);
    bc::StackMap map = bc::verify_method(p_, m_);
    orig_ = m_.code;

    std::set<uint32_t> stmt_set(m_.stmt_starts.begin(), m_.stmt_starts.end());

    uint32_t pc = 0;
    size_t next_scan = 0;
    while (pc < orig_.size()) {
      em_.map_old(pc);
      if (stmt_set.count(pc)) {
        while (next_scan < scans.size() && scans[next_scan].start < pc) ++next_scan;
        if (next_scan < scans.size() && scans[next_scan].start == pc)
          emit_checks(scans[next_scan].checks);
      }
      bc::Instr in = bc::decode(orig_, pc);
      em_.copy_instr(m_, pc);
      if (in.op == Op::NEW) rewrite_new(static_cast<uint16_t>(in.arg));
      pc += in.size;
    }
    em_.map_old(static_cast<uint32_t>(orig_.size()));

    m_.code = em_.finish();
    for (auto& ex : m_.ex_table) {
      ex.from_pc = em_.lookup_old(ex.from_pc);
      ex.to_pc = em_.lookup_old(ex.to_pc);
      ex.handler_pc = em_.lookup_old(ex.handler_pc);
    }
    for (auto& s : m_.stmt_starts) s = em_.lookup_old(s);

    bc::StackMap after = bc::verify_method(p_, m_);
    m_.max_stack = after.max_stack;
    return stats_;
  }

 private:
  void emit_frag(const std::vector<uint8_t>& f) { em_.append_fragment(f); }

  /// aload k  (helper fragment)
  static std::vector<uint8_t> load_local(uint16_t slot) {
    return {static_cast<uint8_t>(Op::ALOAD), static_cast<uint8_t>(slot & 0xFF),
            static_cast<uint8_t>(slot >> 8)};
  }

  void emit_probe(const std::vector<uint8_t>& base) {
    int ok = em_.new_label();
    emit_frag(base);
    em_.op_u16(Op::INVOKENATIVE, native_id("objman.status_probe"));
    em_.branch_label(Op::IFNE, ok);
    emit_frag(base);
    em_.op_u16(Op::INVOKENATIVE, native_id("objman.bring_probe"));
    em_.bind(ok);
    ++stats_.checks_inserted;
  }

  void emit_checks(const std::vector<Repair>& checks) {
    for (const Repair& c : checks) {
      switch (c.kind) {
        case Repair::Kind::Local: {
          uint16_t fid = status_fid(p_, c.owner_cls);
          if (fid == bc::kNoId) {
            emit_probe(load_local(c.slot));
            break;
          }
          int ok = em_.new_label();
          em_.op_u16(Op::ALOAD, c.slot);
          em_.op_u16(Op::GETFIELD, fid);
          em_.branch_label(Op::IFNE, ok);
          em_.op_u16(Op::ALOAD, c.slot);
          em_.iconst(fid);
          em_.op_u16(Op::INVOKENATIVE, native_id("objman.bring_checked"));
          em_.bind(ok);
          ++stats_.checks_inserted;
          break;
        }
        case Repair::Kind::Static: {
          const bc::Field& f = p_.field(c.field);
          uint16_t sfid = sstatus_fid(p_, f.owner);
          if (sfid == bc::kNoId) break;
          int ok = em_.new_label();
          em_.op_u16(Op::GETSTATIC, sfid);
          em_.branch_label(Op::IFNE, ok);
          em_.iconst(c.field);
          em_.op_u16(Op::INVOKENATIVE, native_id("objman.bring_class_checked"));
          em_.bind(ok);
          ++stats_.checks_inserted;
          break;
        }
        case Repair::Kind::Probe:
        case Repair::Kind::Field:
        case Repair::Kind::Elem: {
          if (!c.base_frag.empty()) emit_probe(c.base_frag);
          break;
        }
      }
    }
  }

  void rewrite_new(uint16_t cls) {
    uint16_t fid = status_fid(p_, cls);
    if (fid == bc::kNoId) return;
    em_.op(Op::DUP);
    em_.iconst(1);
    em_.op_u16(Op::PUTFIELD, fid);
    ++stats_.news_rewritten;
  }

  uint16_t native_id(const char* name) {
    uint16_t id = p_.find_native(name);
    SOD_CHECK(id != bc::kNoId, std::string("native not declared: ") + name);
    return id;
  }

  Program& p_;
  Method& m_;
  std::vector<uint8_t> orig_;
  Emitter em_;
  ChecksStats stats_;
};

}  // namespace

ChecksStats inject_status_checks(Program& p, Method& m) { return ChecksPass(p, m).run(); }

}  // namespace sod::prep
