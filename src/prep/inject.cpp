#include "prep/inject.h"

#include <cstring>

#include "bytecode/verifier.h"
#include "prep/emitter.h"
#include "prep/faultscan.h"
#include "support/panic.h"

namespace sod::prep {

using bc::Method;
using bc::Op;
using bc::Program;
using bc::Ty;

void declare_prep_natives(Program& p) {
  auto add = [&](const char* name, std::vector<Ty> params, Ty ret) {
    if (p.find_native(name) == bc::kNoId)
      p.natives.push_back(bc::NativeDecl{name, std::move(params), ret});
  };
  // CapturedState cursor reads (paper Fig. 4a: CapturedState.read<Type>).
  add("cs.read_i64", {Ty::I64}, Ty::I64);
  add("cs.read_f64", {Ty::I64}, Ty::F64);
  add("cs.read_ref", {Ty::I64}, Ty::Ref);
  add("cs.read_pc", {}, Ty::I64);
  // Object manager (paper Section III.C: ObjMan.bringObj).
  add("objman.enter", {Ty::I64}, Ty::Void);
  add("objman.bring_local", {Ty::I64}, Ty::Void);
  add("objman.bring_static", {Ty::I64}, Ty::Void);
  add("objman.bring_field", {Ty::Ref, Ty::I64}, Ty::Void);
  add("objman.bring_elem", {Ty::Ref, Ty::I64}, Ty::Void);
  // Status-check baseline support (paper Fig. 5 B1).
  add("objman.bring_checked", {Ty::Ref, Ty::I64}, Ty::Void);
  // Exception-driven offload trap (paper Section II.B).
  add("offload.trap", {Ty::I64}, Ty::Void);
  add("objman.bring_class_checked", {Ty::I64}, Ty::Void);
  add("objman.status_probe", {Ty::Ref}, Ty::I64);
  add("objman.bring_probe", {Ty::Ref}, Ty::Void);
}

namespace {

void append_u16_op(std::vector<uint8_t>& code, Op op, uint16_t v) {
  code.push_back(static_cast<uint8_t>(op));
  code.push_back(static_cast<uint8_t>(v & 0xFF));
  code.push_back(static_cast<uint8_t>(v >> 8));
}

void append_iconst(std::vector<uint8_t>& code, int64_t v) {
  code.push_back(static_cast<uint8_t>(Op::ICONST));
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  code.insert(code.end(), b, b + 8);
}

void append_native(std::vector<uint8_t>& code, const Program& p, const char* name) {
  uint16_t id = p.find_native(name);
  SOD_CHECK(id != bc::kNoId, std::string("native not declared: ") + name);
  append_u16_op(code, Op::INVOKENATIVE, id);
}

}  // namespace

void inject_restore_handler(Program& p, Method& m) {
  SOD_CHECK(!m.stmt_starts.empty(), "method has no MSPs: " + m.name);
  uint32_t orig_end = static_cast<uint32_t>(m.code.size());
  uint32_t handler_pc = orig_end;

  std::vector<uint8_t>& code = m.code;
  // pop the InvalidStateException object
  code.push_back(static_cast<uint8_t>(Op::POP));
  // restore every declared local from the CapturedState cursor
  for (const auto& v : m.var_table) {
    append_iconst(code, v.slot);
    switch (v.type) {
      case Ty::I64:
        append_native(code, p, "cs.read_i64");
        append_u16_op(code, Op::ISTORE, v.slot);
        break;
      case Ty::F64:
        append_native(code, p, "cs.read_f64");
        append_u16_op(code, Op::DSTORE, v.slot);
        break;
      case Ty::Ref:
        append_native(code, p, "cs.read_ref");
        append_u16_op(code, Op::ASTORE, v.slot);
        break;
      case Ty::Void: SOD_UNREACHABLE("void local");
    }
  }
  // jump to the saved pc
  append_native(code, p, "cs.read_pc");
  code.push_back(static_cast<uint8_t>(Op::LOOKUPSWITCH));
  uint16_t n = static_cast<uint16_t>(m.stmt_starts.size());
  code.push_back(static_cast<uint8_t>(n & 0xFF));
  code.push_back(static_cast<uint8_t>(n >> 8));
  uint32_t dflt = m.stmt_starts.front();
  uint8_t b4[4];
  std::memcpy(b4, &dflt, 4);
  code.insert(code.end(), b4, b4 + 4);
  for (uint32_t s : m.stmt_starts) {
    int64_t key = s;
    uint8_t b8[8];
    std::memcpy(b8, &key, 8);
    code.insert(code.end(), b8, b8 + 8);
    std::memcpy(b4, &s, 4);
    code.insert(code.end(), b4, b4 + 4);
  }

  // The restoration entry must win over any guest handler: insert first.
  m.ex_table.insert(m.ex_table.begin(),
                    bc::ExEntry{0, orig_end, handler_pc, bc::builtin::kInvalidState});

  bc::StackMap sm = bc::verify_method(p, m);
  m.max_stack = sm.max_stack;
}

InjectStats inject_object_fault_handlers(Program& p, Method& m) {
  InjectStats stats;
  std::vector<StmtScan> scans = scan_statements(p, m);
  std::vector<bc::ExEntry> guest_entries = m.ex_table;  // pre-existing (incl. restore)
  std::vector<bc::ExEntry> new_entries;
  std::vector<uint8_t>& code = m.code;

  for (const auto& ss : scans) {
    if (ss.repairs.empty()) continue;

    // Never cover the statement's INVOKE: an NPE escaping from the callee
    // must reach guest handlers, not trigger a repair-retry that would
    // re-execute the call.  All guest-level dereferences in a flattened
    // statement precede its single INVOKE.
    uint32_t cover_end = ss.end;
    for (uint32_t pc = ss.start; pc < ss.end;) {
      if (static_cast<Op>(m.code[pc]) == Op::INVOKE) {
        cover_end = pc;
        break;
      }
      bc::Instr in = bc::decode(m.code, pc);
      if (bc::is_terminator(in.op)) break;
      pc += in.size;
    }
    if (cover_end == ss.start) continue;  // nothing coverable faults here

    uint32_t handler_pc = static_cast<uint32_t>(code.size());
    ++stats.fault_handlers;

    // pop the NullPointerException object
    code.push_back(static_cast<uint8_t>(Op::POP));
    // no-progress retry detection; rethrows as application NPE
    int64_t uid = (static_cast<int64_t>(m.id) << 32) | ss.start;
    append_iconst(code, uid);
    append_native(code, p, "objman.enter");
    // repair every base the statement dereferences, in first-use order
    for (const Repair& r : ss.repairs) {
      ++stats.repair_calls;
      switch (r.kind) {
        case Repair::Kind::Local:
          append_iconst(code, r.slot);
          append_native(code, p, "objman.bring_local");
          break;
        case Repair::Kind::Static:
          append_iconst(code, r.field);
          append_native(code, p, "objman.bring_static");
          break;
        case Repair::Kind::Field:
          code.insert(code.end(), r.base_frag.begin(), r.base_frag.end());
          append_iconst(code, r.field);
          append_native(code, p, "objman.bring_field");
          break;
        case Repair::Kind::Elem:
          code.insert(code.end(), r.base_frag.begin(), r.base_frag.end());
          code.insert(code.end(), r.idx_frag.begin(), r.idx_frag.end());
          append_native(code, p, "objman.bring_elem");
          break;
        case Repair::Kind::Probe: SOD_UNREACHABLE("probe in fault repairs");
      }
    }
    // retry the statement
    code.push_back(static_cast<uint8_t>(Op::GOTO));
    uint8_t b4[4];
    std::memcpy(b4, &ss.start, 4);
    code.insert(code.end(), b4, b4 + 4);
    uint32_t handler_end = static_cast<uint32_t>(code.size());

    new_entries.push_back(
        bc::ExEntry{ss.start, cover_end, handler_pc, bc::builtin::kNullPointer});

    // Application NPEs rethrown from inside the handler must still reach
    // any guest handler that covered the original statement.
    for (const auto& ge : guest_entries) {
      bool covers = ge.from_pc <= ss.start && ge.to_pc >= ss.end;
      bool catches_npe =
          ge.ex_class == bc::kAnyClass || ge.ex_class == bc::builtin::kNullPointer;
      if (covers && catches_npe && ge.ex_class != bc::builtin::kInvalidState) {
        new_entries.push_back(bc::ExEntry{handler_pc, handler_end, ge.handler_pc, ge.ex_class});
        ++stats.guest_entries_extended;
      }
    }
  }

  // Fault entries take priority over guest entries for NPEs raised inside
  // their statement; extensions must also precede broader guest entries.
  m.ex_table.insert(m.ex_table.begin(), new_entries.begin(), new_entries.end());
  // ... but the restoration (InvalidState) entry keeps absolute priority.
  for (size_t i = 0; i < m.ex_table.size(); ++i) {
    if (m.ex_table[i].ex_class == bc::builtin::kInvalidState && m.ex_table[i].from_pc == 0) {
      bc::ExEntry e = m.ex_table[i];
      m.ex_table.erase(m.ex_table.begin() + static_cast<long>(i));
      m.ex_table.insert(m.ex_table.begin(), e);
      break;
    }
  }

  bc::StackMap sm = bc::verify_method(p, m);
  m.max_stack = sm.max_stack;
  return stats;
}


int inject_offload_handlers(Program& p, Method& m) {
  int handlers = 0;
  std::vector<uint8_t>& code = m.code;
  const auto stmts = m.stmt_starts;  // copy: we append code below
  for (size_t i = 0; i < stmts.size(); ++i) {
    uint32_t start = stmts[i];
    uint32_t end = (i + 1 < stmts.size()) ? stmts[i + 1] : static_cast<uint32_t>(code.size());
    // Only statements that allocate can raise OutOfMemory.
    bool allocates = false;
    for (uint32_t pc = start; pc < end;) {
      Op op = static_cast<Op>(code[pc]);
      if (op == Op::NEW || op == Op::NEWARRAY || op == Op::LDC_STR) allocates = true;
      if (bc::is_terminator(op)) break;
      pc += bc::instr_size(code, pc);
    }
    if (!allocates) continue;

    uint32_t handler_pc = static_cast<uint32_t>(code.size());
    code.push_back(static_cast<uint8_t>(Op::POP));  // the OOM object
    append_iconst(code, (static_cast<int64_t>(m.id) << 32) | start);
    append_native(code, p, "offload.trap");
    code.push_back(static_cast<uint8_t>(Op::GOTO));
    uint8_t b4[4];
    std::memcpy(b4, &start, 4);
    code.insert(code.end(), b4, b4 + 4);

    m.ex_table.push_back(bc::ExEntry{start, end, handler_pc, bc::builtin::kOutOfMemory});
    ++handlers;
  }
  if (handlers > 0) {
    bc::StackMap sm = bc::verify_method(p, m);
    m.max_stack = sm.max_stack;
  }
  return handlers;
}

}  // namespace sod::prep
