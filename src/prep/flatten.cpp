#include "prep/flatten.h"

#include <algorithm>
#include <set>

#include "bytecode/verifier.h"
#include "prep/emitter.h"
#include "support/panic.h"

namespace sod::prep {

using bc::Instr;
using bc::Method;
using bc::Op;
using bc::Program;
using bc::Ty;

namespace {

/// How many values an instruction pops / pushes (calls handled separately).
int op_pops(const Program& p, const Instr& in) {
  switch (in.op) {
    case Op::NOP: case Op::ICONST: case Op::DCONST: case Op::ACONST_NULL:
    case Op::LDC_STR: case Op::ILOAD: case Op::DLOAD: case Op::ALOAD:
    case Op::GETSTATIC: case Op::NEW: case Op::GOTO: case Op::RETURN:
      return 0;
    case Op::ISTORE: case Op::DSTORE: case Op::ASTORE: case Op::POP:
    case Op::INEG: case Op::DNEG: case Op::I2D: case Op::D2I:
    case Op::NEWARRAY: case Op::ARRAYLEN: case Op::GETFIELD: case Op::PUTSTATIC:
    case Op::IFEQ: case Op::IFNE: case Op::IFLT: case Op::IFLE: case Op::IFGT:
    case Op::IFGE: case Op::IFNULL: case Op::IFNONNULL: case Op::LOOKUPSWITCH:
    case Op::IRETURN: case Op::DRETURN: case Op::ARETURN: case Op::THROW:
      return 1;
    case Op::DUP:
      return 1;  // conceptually peeks; handled specially
    case Op::SWAP:
      return 2;  // handled specially
    case Op::IADD: case Op::ISUB: case Op::IMUL: case Op::IDIV: case Op::IREM:
    case Op::ISHL: case Op::ISHR: case Op::IAND: case Op::IOR: case Op::IXOR:
    case Op::DADD: case Op::DSUB: case Op::DMUL: case Op::DDIV: case Op::DCMP:
    case Op::PUTFIELD: case Op::IALOAD: case Op::DALOAD: case Op::AALOAD:
    case Op::IF_ICMPEQ: case Op::IF_ICMPNE: case Op::IF_ICMPLT:
    case Op::IF_ICMPLE: case Op::IF_ICMPGT: case Op::IF_ICMPGE:
      return 2;
    case Op::IASTORE: case Op::DASTORE: case Op::AASTORE:
      return 3;
    case Op::INVOKE:
      return static_cast<int>(p.method(static_cast<uint16_t>(in.arg)).params.size());
    case Op::INVOKENATIVE:
      return static_cast<int>(p.natives[in.arg].params.size());
    case Op::kOpCount_: break;
  }
  SOD_UNREACHABLE("op_pops");
}

Ty result_type(const Program& p, const Method& m, const Instr& in,
               const std::vector<Ty>& popped) {
  switch (in.op) {
    case Op::ICONST: return Ty::I64;
    case Op::DCONST: return Ty::F64;
    case Op::ACONST_NULL: case Op::LDC_STR: return Ty::Ref;
    case Op::ILOAD: case Op::DLOAD: case Op::ALOAD: {
      for (const auto& v : m.var_table)
        if (v.slot == in.arg) return v.type;
      SOD_UNREACHABLE("load of undeclared local");
    }
    case Op::GETSTATIC: case Op::GETFIELD:
      return p.field(static_cast<uint16_t>(in.arg)).type;
    case Op::NEW: case Op::NEWARRAY: case Op::AALOAD: return Ty::Ref;
    case Op::IALOAD: case Op::ARRAYLEN: case Op::DCMP: case Op::D2I: return Ty::I64;
    case Op::DALOAD: case Op::I2D: return Ty::F64;
    case Op::INEG: case Op::DNEG: case Op::DUP: return popped.empty() ? Ty::I64 : popped[0];
    case Op::IADD: case Op::ISUB: case Op::IMUL: case Op::IDIV: case Op::IREM:
    case Op::ISHL: case Op::ISHR: case Op::IAND: case Op::IOR: case Op::IXOR:
      return Ty::I64;
    case Op::DADD: case Op::DSUB: case Op::DMUL: case Op::DDIV: return Ty::F64;
    case Op::INVOKE: return p.method(static_cast<uint16_t>(in.arg)).ret;
    case Op::INVOKENATIVE: return p.natives[in.arg].ret;
    default: SOD_UNREACHABLE("result_type of non-producing op");
  }
}

bool is_terminal_consumer(Op op) {
  switch (op) {
    case Op::ISTORE: case Op::DSTORE: case Op::ASTORE: case Op::POP:
    case Op::PUTSTATIC: case Op::PUTFIELD: case Op::IASTORE: case Op::DASTORE:
    case Op::AASTORE: case Op::THROW: case Op::RETURN: case Op::IRETURN:
    case Op::DRETURN: case Op::ARETURN: case Op::GOTO: case Op::NOP:
    case Op::LOOKUPSWITCH:
      return true;
    default:
      return bc::is_branch(op);
  }
}

/// Ops whose result may be "kept" on the node stack when the very next
/// instruction consumes it with nothing below (avoids a useless temp).
bool keeps_call_result(Op next) {
  switch (next) {
    case Op::ISTORE: case Op::DSTORE: case Op::ASTORE: case Op::POP:
    case Op::PUTSTATIC: case Op::IRETURN: case Op::DRETURN: case Op::ARETURN:
    case Op::THROW: case Op::LOOKUPSWITCH:
    case Op::IFEQ: case Op::IFNE: case Op::IFLT: case Op::IFLE: case Op::IFGT:
    case Op::IFGE: case Op::IFNULL: case Op::IFNONNULL:
      return true;
    default:
      return false;
  }
}

struct Node {
  std::vector<uint8_t> frag;  ///< rewritten, branch-free code producing the value
  Ty type = Ty::I64;
  bool pure = true;  ///< safe to re-execute (no calls, no allocation)
};

class Flattener {
 public:
  Flattener(Program& p, Method& m) : p_(p), m_(m) {}

  FlattenStats run() {
    bc::StackMap map = bc::verify_method(p_, m_, /*enforce_msp=*/false);
    collect_boundaries(map);

    for (size_t i = 0; i + 1 <= bounds_.size(); ++i) {
      uint32_t b = bounds_[i];
      uint32_t e = (i + 1 < bounds_.size()) ? bounds_[i + 1] : code_size();
      if (b == e) continue;
      process_segment(b, e, map);
    }
    em_.map_old(code_size());

    m_.code = em_.finish();
    for (auto& ex : m_.ex_table) {
      ex.from_pc = em_.lookup_old(ex.from_pc);
      ex.to_pc = em_.lookup_old(ex.to_pc);
      ex.handler_pc = em_.lookup_old(ex.handler_pc);
    }
    std::sort(new_stmts_.begin(), new_stmts_.end());
    new_stmts_.erase(std::unique(new_stmts_.begin(), new_stmts_.end()), new_stmts_.end());
    m_.stmt_starts = std::move(new_stmts_);
    stats_.statements_out = static_cast<int>(m_.stmt_starts.size());

    bc::StackMap after = bc::verify_method(p_, m_);  // also re-checks MSP invariant
    m_.max_stack = after.max_stack;
    return stats_;
  }

 private:
  uint32_t code_size() const { return static_cast<uint32_t>(orig_code_.size()); }

  [[noreturn]] void fail(const std::string& msg, uint32_t pc) {
    throw Error("flatten: method '" + m_.name + "' pc " + std::to_string(pc) + ": " + msg);
  }

  void collect_boundaries(const bc::StackMap& map) {
    orig_code_ = m_.code;
    std::set<uint32_t> bs;
    bs.insert(0);
    for (uint32_t s : m_.stmt_starts) bs.insert(s);
    for (const auto& ex : m_.ex_table) {
      bs.insert(ex.from_pc);
      if (ex.to_pc < orig_code_.size()) bs.insert(ex.to_pc);
      bs.insert(ex.handler_pc);
    }
    for (uint32_t pc : map.boundaries) {
      Instr in = bc::decode(orig_code_, pc);
      if (bc::is_branch(in.op)) bs.insert(in.arg);
      if (in.op == Op::LOOKUPSWITCH) {
        auto si = bc::decode_switch(orig_code_, pc);
        bs.insert(si.default_target);
        for (auto& [k, t] : si.pairs) bs.insert(t);
      }
    }
    bounds_.assign(bs.begin(), bs.end());
  }

  uint16_t new_temp(Ty t) {
    uint16_t slot = m_.num_locals++;
    m_.var_table.push_back(
        bc::LocalVar{"$t" + std::to_string(stats_.temps_added), t, slot});
    ++stats_.temps_added;
    return slot;
  }

  void begin_stmt() {
    if (new_stmts_.empty() || new_stmts_.back() != em_.here())
      new_stmts_.push_back(em_.here());
  }

  static Op store_for(Ty t) {
    switch (t) {
      case Ty::I64: return Op::ISTORE;
      case Ty::F64: return Op::DSTORE;
      case Ty::Ref: return Op::ASTORE;
      case Ty::Void: break;
    }
    SOD_UNREACHABLE("store_for(void)");
  }
  static Op load_for(Ty t) {
    switch (t) {
      case Ty::I64: return Op::ILOAD;
      case Ty::F64: return Op::DLOAD;
      case Ty::Ref: return Op::ALOAD;
      case Ty::Void: break;
    }
    SOD_UNREACHABLE("load_for(void)");
  }

  /// Extract `n` into its own statement "tmp = <frag>" and replace it with
  /// a load of the temp.
  void materialize(Node& n) {
    uint16_t tmp = new_temp(n.type);
    begin_stmt();
    em_.append_fragment(n.frag);
    em_.op_u16(store_for(n.type), tmp);
    n.frag.clear();
    uint8_t lo = static_cast<uint8_t>(tmp & 0xFF), hi = static_cast<uint8_t>(tmp >> 8);
    n.frag = {static_cast<uint8_t>(load_for(n.type)), lo, hi};
    n.pure = true;
  }

  void process_segment(uint32_t b, uint32_t e, const bc::StackMap& map) {
    em_.map_old(b);
    int32_t depth = map.depth[b];
    std::vector<Node> st;
    uint32_t pc = b;

    if (depth > 0) {
      // Exception-handler entry: the exception object is on the stack and
      // must be consumed by the first instruction.
      if (depth != 1) fail("segment entry depth > 1 unsupported", b);
      Instr in = bc::decode(orig_code_, pc);
      if (in.op != Op::POP && in.op != Op::ASTORE)
        fail("handler must start with pop/astore", b);
      em_.copy_instr(m_, pc);
      pc += in.size;
    } else if (depth < 0) {
      // Unreachable segment (e.g. code after a terminator that only the
      // injected passes will target): copy verbatim.
      while (pc < e) {
        Instr in = bc::decode(orig_code_, pc);
        if (pc != b) em_.map_old(pc);
        em_.copy_instr(m_, pc);
        pc += in.size;
      }
      if (m_.is_stmt_start(b)) new_stmts_.push_back(em_.lookup_old(b));
      return;
    }

    while (pc < e) {
      Instr in = bc::decode(orig_code_, pc);
      uint32_t next_pc = pc + in.size;

      switch (in.op) {
        // ---- pure producers ----
        case Op::ICONST: case Op::DCONST: case Op::ACONST_NULL: case Op::LDC_STR:
        case Op::ILOAD: case Op::DLOAD: case Op::ALOAD: case Op::GETSTATIC: {
          Node n;
          n.frag.assign(orig_code_.begin() + pc, orig_code_.begin() + next_pc);
          n.type = result_type(p_, m_, in, {});
          st.push_back(std::move(n));
          break;
        }
        case Op::NEW: {
          Node n;
          n.frag.assign(orig_code_.begin() + pc, orig_code_.begin() + next_pc);
          n.type = Ty::Ref;
          n.pure = false;
          st.push_back(std::move(n));
          break;
        }

        // ---- combiners ----
        case Op::INEG: case Op::DNEG: case Op::I2D: case Op::D2I:
        case Op::NEWARRAY: case Op::ARRAYLEN: case Op::GETFIELD:
        case Op::IADD: case Op::ISUB: case Op::IMUL: case Op::IDIV: case Op::IREM:
        case Op::ISHL: case Op::ISHR: case Op::IAND: case Op::IOR: case Op::IXOR:
        case Op::DADD: case Op::DSUB: case Op::DMUL: case Op::DDIV: case Op::DCMP:
        case Op::IALOAD: case Op::DALOAD: case Op::AALOAD: {
          int k = op_pops(p_, in);
          if (static_cast<int>(st.size()) < k) fail("stack underflow in expression", pc);
          Node n;
          std::vector<Ty> popped;
          for (int j = static_cast<int>(st.size()) - k; j < static_cast<int>(st.size()); ++j) {
            n.frag.insert(n.frag.end(), st[j].frag.begin(), st[j].frag.end());
            n.pure = n.pure && st[j].pure;
            popped.push_back(st[j].type);
          }
          n.frag.insert(n.frag.end(), orig_code_.begin() + pc, orig_code_.begin() + next_pc);
          if (in.op == Op::NEWARRAY) n.pure = false;
          n.type = result_type(p_, m_, in, popped);
          st.resize(st.size() - static_cast<size_t>(k));
          st.push_back(std::move(n));
          break;
        }

        // ---- stack shuffles ----
        case Op::DUP: {
          if (st.empty()) fail("dup on empty stack", pc);
          if (!st.back().pure) materialize(st.back());
          st.push_back(st.back());
          break;
        }
        case Op::SWAP: {
          if (st.size() < 2) fail("swap needs two nodes", pc);
          if (!st[st.size() - 1].pure) materialize(st[st.size() - 1]);
          if (!st[st.size() - 2].pure) materialize(st[st.size() - 2]);
          std::swap(st[st.size() - 1], st[st.size() - 2]);
          break;
        }

        // ---- calls ----
        case Op::INVOKE: case Op::INVOKENATIVE: {
          int k = op_pops(p_, in);
          if (static_cast<int>(st.size()) < k) fail("call arg underflow", pc);
          Node call;
          call.pure = false;
          for (int j = static_cast<int>(st.size()) - k; j < static_cast<int>(st.size()); ++j)
            call.frag.insert(call.frag.end(), st[j].frag.begin(), st[j].frag.end());
          call.frag.insert(call.frag.end(), orig_code_.begin() + pc, orig_code_.begin() + next_pc);
          st.resize(st.size() - static_cast<size_t>(k));
          Ty ret = in.op == Op::INVOKE ? p_.method(static_cast<uint16_t>(in.arg)).ret
                                       : p_.natives[in.arg].ret;
          if (ret == Ty::Void) {
            if (!st.empty()) fail("void call with values on stack", pc);
            begin_stmt();
            em_.append_fragment(call.frag);
          } else {
            call.type = ret;
            bool keep = st.empty() && next_pc < e &&
                        keeps_call_result(static_cast<Op>(orig_code_[next_pc]));
            if (keep) {
              st.push_back(std::move(call));
            } else {
              ++stats_.calls_extracted;
              st.push_back(std::move(call));
              materialize(st.back());
            }
          }
          break;
        }

        // ---- statement terminals ----
        default: {
          if (!is_terminal_consumer(in.op)) fail("unsupported op in flatten", pc);
          int k = op_pops(p_, in);
          if (in.op == Op::POP) {
            if (st.empty()) fail("pop on empty node stack", pc);
            if (st.back().pure && st.size() > 1) {
              st.pop_back();  // dead pure value; dropping preserves semantics
              break;
            }
            if (st.size() != 1) fail("pop of impure value with stack below", pc);
            begin_stmt();
            em_.append_fragment(st.back().frag);
            em_.op(Op::POP);
            st.clear();
            break;
          }
          if (static_cast<int>(st.size()) != k) fail("statement terminal with extra operands", pc);
          begin_stmt();
          for (auto& n : st) em_.append_fragment(n.frag);
          st.clear();
          em_.copy_instr(m_, pc);
          break;
        }
      }
      pc = next_pc;
    }
    if (!st.empty()) fail("segment ends with values on expression stack", e);
  }

  Program& p_;
  Method& m_;
  std::vector<uint8_t> orig_code_;
  std::vector<uint32_t> bounds_;
  Emitter em_;
  std::vector<uint32_t> new_stmts_;
  FlattenStats stats_;
};

}  // namespace

FlattenStats flatten_method(Program& p, Method& m) { return Flattener(p, m).run(); }

FlattenStats flatten_program(Program& p) {
  FlattenStats total;
  for (auto& m : p.methods) {
    if (m.code.empty()) continue;
    FlattenStats s = flatten_method(p, m);
    total.temps_added += s.temps_added;
    total.calls_extracted += s.calls_extracted;
    total.statements_out += s.statements_out;
  }
  return total;
}

}  // namespace sod::prep
