#include "prep/faultscan.h"

#include <algorithm>

#include "support/panic.h"

namespace sod::prep {

using bc::Instr;
using bc::Method;
using bc::Op;
using bc::Program;
using bc::Ty;

namespace {

struct Prov {
  Repair::Kind kind = Repair::Kind::Probe;  // Probe doubles as "opaque"
  bool opaque = true;
  uint16_t slot = 0;
  uint16_t field = 0;
  std::vector<uint8_t> base_frag;  // code that pushes this value (pure)
  std::vector<uint8_t> idx_frag;
};

struct Node {
  std::vector<uint8_t> frag;  // pure re-emittable code for this value ("" if not)
  bool reemit = true;
  Ty type = Ty::I64;
  Prov prov;  // meaningful only for Ty::Ref
};

class Scanner {
 public:
  Scanner(const Program& p, const Method& m) : p_(p), m_(m) {}

  std::vector<StmtScan> run() {
    std::vector<StmtScan> out;
    const auto& stmts = m_.stmt_starts;
    for (size_t i = 0; i < stmts.size(); ++i) {
      StmtScan ss;
      ss.start = stmts[i];
      ss.end = (i + 1 < stmts.size()) ? stmts[i + 1] : static_cast<uint32_t>(m_.code.size());
      scan_one(ss);
      out.push_back(std::move(ss));
    }
    return out;
  }

 private:
  void add_repair(StmtScan& ss, Repair r) {
    auto& list = ss.repairs;
    if (std::none_of(list.begin(), list.end(), [&](const Repair& x) { return x.same_as(r); }))
      list.push_back(std::move(r));
  }
  void add_check(StmtScan& ss, Repair r) {
    auto& list = ss.checks;
    if (std::none_of(list.begin(), list.end(), [&](const Repair& x) { return x.same_as(r); }))
      list.push_back(std::move(r));
  }

  /// Record that `base` is dereferenced; owner_cls names the class implied
  /// by the dereferencing instruction when known.
  void record_deref(StmtScan& ss, const Node& base, uint16_t owner_cls) {
    const Prov& pv = base.prov;
    switch (pv.kind) {
      case Repair::Kind::Local: {
        Repair r;
        r.kind = Repair::Kind::Local;
        r.slot = pv.slot;
        r.owner_cls = owner_cls;
        add_repair(ss, r);
        add_check(ss, r);
        break;
      }
      case Repair::Kind::Static: {
        Repair r;
        r.kind = Repair::Kind::Static;
        r.field = pv.field;
        r.owner_cls = owner_cls;
        add_repair(ss, r);
        add_check(ss, r);
        break;
      }
      case Repair::Kind::Field: {
        Repair r;
        r.kind = Repair::Kind::Field;
        r.field = pv.field;
        r.base_frag = pv.base_frag;
        r.owner_cls = owner_cls;
        add_repair(ss, r);
        if (!base.frag.empty()) {
          Repair c;
          c.kind = Repair::Kind::Probe;
          c.base_frag = base.frag;
          c.owner_cls = owner_cls;
          add_check(ss, c);
        }
        break;
      }
      case Repair::Kind::Elem: {
        Repair r;
        r.kind = Repair::Kind::Elem;
        r.base_frag = pv.base_frag;
        r.idx_frag = pv.idx_frag;
        add_repair(ss, r);
        if (!base.frag.empty()) {
          Repair c;
          c.kind = Repair::Kind::Probe;
          c.base_frag = base.frag;
          add_check(ss, c);
        }
        break;
      }
      case Repair::Kind::Probe: {
        // Opaque base (call result, freshly allocated, ...): nothing to
        // repair on fault; check mode can still probe it if re-emittable.
        if (!base.frag.empty()) {
          Repair c;
          c.kind = Repair::Kind::Probe;
          c.base_frag = base.frag;
          c.owner_cls = owner_cls;
          add_check(ss, c);
        }
        break;
      }
    }
  }

  void scan_one(StmtScan& ss) {
    std::vector<Node> st;
    uint32_t pc = ss.start;
    // A handler's leading POP/ASTORE sits before the first statement, so a
    // statement never starts with a value on the stack.
    while (pc < ss.end) {
      Instr in = bc::decode(m_.code, pc);
      uint32_t next = pc + in.size;

      auto raw = [&]() {
        return std::vector<uint8_t>(m_.code.begin() + pc, m_.code.begin() + next);
      };
      auto pop1 = [&]() {
        SOD_CHECK(!st.empty(), "scan underflow in " + m_.name);
        Node n = std::move(st.back());
        st.pop_back();
        return n;
      };

      // A statement's extent may be followed by an exception handler's
      // entry (pop/astore of the exception) before the next statement
      // start; control never falls through a terminator into it, so stop.
      bool term = bc::is_terminator(in.op);

      switch (in.op) {
        case Op::ICONST: case Op::DCONST: {
          Node n;
          n.frag = raw();
          n.type = in.op == Op::ICONST ? Ty::I64 : Ty::F64;
          st.push_back(std::move(n));
          break;
        }
        case Op::ACONST_NULL: case Op::LDC_STR: {
          Node n;
          n.frag = raw();
          n.type = Ty::Ref;
          st.push_back(std::move(n));
          break;
        }
        case Op::ILOAD: case Op::DLOAD: case Op::ALOAD: {
          Node n;
          n.frag = raw();
          n.type = in.op == Op::ILOAD ? Ty::I64 : (in.op == Op::DLOAD ? Ty::F64 : Ty::Ref);
          if (in.op == Op::ALOAD) {
            n.prov.kind = Repair::Kind::Local;
            n.prov.opaque = false;
            n.prov.slot = static_cast<uint16_t>(in.arg);
          }
          st.push_back(std::move(n));
          break;
        }
        case Op::GETSTATIC: {
          const bc::Field& f = p_.field(static_cast<uint16_t>(in.arg));
          Node n;
          n.frag = raw();
          n.type = f.type;
          if (f.type == Ty::Ref) {
            n.prov.kind = Repair::Kind::Static;
            n.prov.opaque = false;
            n.prov.field = f.id;
          }
          st.push_back(std::move(n));
          break;
        }
        case Op::GETFIELD: {
          const bc::Field& f = p_.field(static_cast<uint16_t>(in.arg));
          Node base = pop1();
          record_deref(ss, base, f.owner);
          Node n;
          n.type = f.type;
          if (!base.frag.empty()) {
            n.frag = base.frag;
            n.frag.insert(n.frag.end(), m_.code.begin() + pc, m_.code.begin() + next);
          } else {
            n.reemit = false;
          }
          if (f.type == Ty::Ref && !base.prov.opaque && !base.frag.empty()) {
            n.prov.kind = Repair::Kind::Field;
            n.prov.opaque = false;
            n.prov.field = f.id;
            n.prov.base_frag = base.frag;
          }
          st.push_back(std::move(n));
          break;
        }
        case Op::IALOAD: case Op::DALOAD: case Op::AALOAD: {
          Node idx = pop1();
          Node base = pop1();
          record_deref(ss, base, bc::kNoId);
          Node n;
          n.type = in.op == Op::IALOAD ? Ty::I64 : (in.op == Op::DALOAD ? Ty::F64 : Ty::Ref);
          if (!base.frag.empty() && !idx.frag.empty()) {
            n.frag = base.frag;
            n.frag.insert(n.frag.end(), idx.frag.begin(), idx.frag.end());
            n.frag.insert(n.frag.end(), m_.code.begin() + pc, m_.code.begin() + next);
          } else {
            n.reemit = false;
          }
          if (in.op == Op::AALOAD && !base.prov.opaque && !base.frag.empty() &&
              !idx.frag.empty()) {
            n.prov.kind = Repair::Kind::Elem;
            n.prov.opaque = false;
            n.prov.base_frag = base.frag;
            n.prov.idx_frag = idx.frag;
          }
          st.push_back(std::move(n));
          break;
        }
        case Op::ARRAYLEN: {
          Node base = pop1();
          record_deref(ss, base, bc::kNoId);
          Node n;
          n.type = Ty::I64;
          if (!base.frag.empty()) {
            n.frag = base.frag;
            n.frag.insert(n.frag.end(), m_.code.begin() + pc, m_.code.begin() + next);
          } else {
            n.reemit = false;
          }
          st.push_back(std::move(n));
          break;
        }

        case Op::PUTFIELD: {
          const bc::Field& f = p_.field(static_cast<uint16_t>(in.arg));
          Node val = pop1();
          Node base = pop1();
          (void)val;
          record_deref(ss, base, f.owner);
          break;
        }
        case Op::PUTSTATIC: {
          const bc::Field& f = p_.field(static_cast<uint16_t>(in.arg));
          pop1();
          // No fault possible, but check mode validates the class replica.
          Repair c;
          c.kind = Repair::Kind::Static;
          c.field = f.id;
          c.owner_cls = f.owner;
          add_check(ss, c);
          break;
        }
        case Op::IASTORE: case Op::DASTORE: case Op::AASTORE: {
          Node val = pop1();
          Node idx = pop1();
          Node base = pop1();
          (void)val;
          (void)idx;
          record_deref(ss, base, bc::kNoId);
          break;
        }

        case Op::INVOKE: {
          const Method& callee = p_.method(static_cast<uint16_t>(in.arg));
          for (size_t k = 0; k < callee.params.size(); ++k) pop1();
          if (callee.ret != Ty::Void) {
            Node n;
            n.type = callee.ret;
            n.reemit = false;  // never re-execute a call for a check
            st.push_back(std::move(n));
          }
          break;
        }
        case Op::INVOKENATIVE: {
          const bc::NativeDecl& nd = p_.natives[in.arg];
          std::vector<Node> args(nd.params.size());
          for (size_t k = nd.params.size(); k-- > 0;) args[k] = pop1();
          // Natives may fault on any null ref argument (e.g. str.find).
          for (size_t k = 0; k < args.size(); ++k)
            if (nd.params[k] == Ty::Ref) record_deref(ss, args[k], bc::kNoId);
          if (nd.ret != Ty::Void) {
            Node n;
            n.type = nd.ret;
            n.reemit = false;
            st.push_back(std::move(n));
          }
          break;
        }

        case Op::THROW: {
          Node ex = pop1();
          record_deref(ss, ex, bc::kNoId);
          break;
        }

        case Op::NEW: {
          Node n;
          n.type = Ty::Ref;
          n.reemit = false;  // allocation must not be re-executed
          st.push_back(std::move(n));
          break;
        }
        case Op::NEWARRAY: {
          pop1();
          Node n;
          n.type = Ty::Ref;
          n.reemit = false;
          st.push_back(std::move(n));
          break;
        }

        case Op::DUP: {
          SOD_CHECK(!st.empty(), "scan dup underflow");
          st.push_back(st.back());
          break;
        }
        case Op::SWAP: {
          SOD_CHECK(st.size() >= 2, "scan swap underflow");
          std::swap(st[st.size() - 1], st[st.size() - 2]);
          break;
        }
        case Op::POP: {
          pop1();
          break;
        }

        // Pure unary/binary combiners.
        case Op::INEG: case Op::DNEG: case Op::I2D: case Op::D2I: {
          Node a = pop1();
          Node n;
          n.type = (in.op == Op::I2D) ? Ty::F64 : (in.op == Op::D2I ? Ty::I64 : a.type);
          if (!a.frag.empty()) {
            n.frag = a.frag;
            n.frag.insert(n.frag.end(), m_.code.begin() + pc, m_.code.begin() + next);
          } else {
            n.reemit = false;
          }
          st.push_back(std::move(n));
          break;
        }
        case Op::IADD: case Op::ISUB: case Op::IMUL: case Op::IDIV: case Op::IREM:
        case Op::ISHL: case Op::ISHR: case Op::IAND: case Op::IOR: case Op::IXOR:
        case Op::DADD: case Op::DSUB: case Op::DMUL: case Op::DDIV: case Op::DCMP: {
          Node b = pop1();
          Node a = pop1();
          Node n;
          bool isd = in.op == Op::DADD || in.op == Op::DSUB || in.op == Op::DMUL ||
                     in.op == Op::DDIV;
          n.type = in.op == Op::DCMP ? Ty::I64 : (isd ? Ty::F64 : Ty::I64);
          if (!a.frag.empty() && !b.frag.empty()) {
            n.frag = a.frag;
            n.frag.insert(n.frag.end(), b.frag.begin(), b.frag.end());
            n.frag.insert(n.frag.end(), m_.code.begin() + pc, m_.code.begin() + next);
          } else {
            n.reemit = false;
          }
          st.push_back(std::move(n));
          break;
        }

        // Statement terminals that close the scan window.
        case Op::ISTORE: case Op::DSTORE: case Op::ASTORE: {
          pop1();
          break;
        }
        case Op::IFEQ: case Op::IFNE: case Op::IFLT: case Op::IFLE: case Op::IFGT:
        case Op::IFGE: case Op::IFNULL: case Op::IFNONNULL: case Op::LOOKUPSWITCH:
        case Op::IRETURN: case Op::DRETURN: case Op::ARETURN: {
          pop1();
          break;
        }
        case Op::IF_ICMPEQ: case Op::IF_ICMPNE: case Op::IF_ICMPLT:
        case Op::IF_ICMPLE: case Op::IF_ICMPGT: case Op::IF_ICMPGE: {
          pop1();
          pop1();
          break;
        }
        case Op::GOTO: case Op::RETURN: case Op::NOP: break;

        case Op::kOpCount_: SOD_UNREACHABLE("bad op in scan");
      }
      if (term) break;
      pc = next;
    }
  }

  const Program& p_;
  const Method& m_;
};

}  // namespace

std::vector<StmtScan> scan_statements(const Program& p, const Method& m) {
  return Scanner(p, m).run();
}

}  // namespace sod::prep
