// Per-statement dereference analysis.
//
// For each statement of a flattened method, recover which reference
// "bases" the statement dereferences and how each base can be re-obtained
// (its provenance):
//   - a local slot          (aload k; ... getfield f)
//   - a static field        (getstatic S.f; ... daload)
//   - a field of a base     (a.b.c chains)
//   - an element of a base  (arr[i].x)
//
// The object-fault pass turns these into repair calls inside the injected
// NullPointerException handler (paper Section III.C); the status-check
// pass turns them into inline "if (x.__status == 0) bringObj(x)" sequences
// (paper Fig. 5 B1, the JavaSplit baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "bytecode/program.h"

namespace sod::prep {

struct Repair {
  enum class Kind : uint8_t {
    Local,   ///< repair local `slot` (objman.bring_local)
    Static,  ///< repair static field `field` (objman.bring_static)
    Field,   ///< repair `base_frag`.field (objman.bring_field)
    Elem,    ///< repair `base_frag`[idx_frag] (objman.bring_elem)
    Probe,   ///< check-mode only: opaque ref base reached via `base_frag`
  };
  Kind kind = Kind::Local;
  uint16_t slot = 0;    ///< Local
  uint16_t field = 0;   ///< Static / Field
  std::vector<uint8_t> base_frag;  ///< Field / Elem / Probe
  std::vector<uint8_t> idx_frag;   ///< Elem
  /// Class of the base object when statically known from the dereferenced
  /// field (drives the __status field check in check mode).
  uint16_t owner_cls = bc::kNoId;

  bool same_as(const Repair& o) const {
    return kind == o.kind && slot == o.slot && field == o.field && base_frag == o.base_frag &&
           idx_frag == o.idx_frag;
  }
};

struct StmtScan {
  uint32_t start = 0;  ///< statement start pc
  uint32_t end = 0;    ///< exclusive
  /// Fault-mode repair sequence (ordered, deduped; excludes Probe).
  std::vector<Repair> repairs;
  /// Check-mode sequence (ordered, deduped; Local/Static/Probe kinds).
  std::vector<Repair> checks;
};

/// Scan a flattened method.  Statements with no dereferences produce
/// entries with empty repair/check lists.
std::vector<StmtScan> scan_statements(const bc::Program& p, const bc::Method& m);

}  // namespace sod::prep
