// Low-level code emitter used by the preprocessor's rewriting passes.
//
// Rewrites work by re-emitting a method's code into a fresh buffer.
// Branch operands can refer to either
//   - *old* pcs (positions in the original code) which are remapped once
//     the pass records where each original boundary landed, or
//   - fresh labels for newly injected control flow.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bytecode/program.h"

namespace sod::prep {

class Emitter {
 public:
  uint32_t here() const { return static_cast<uint32_t>(code_.size()); }

  /// Record that original pc `old_pc` corresponds to the current position.
  void map_old(uint32_t old_pc);
  /// Translate an original pc after emission (panics if never mapped).
  uint32_t lookup_old(uint32_t old_pc) const;
  bool has_old(uint32_t old_pc) const { return old_map_.count(old_pc) != 0; }

  // --- label management for injected control flow ---
  int new_label();
  void bind(int label);

  // --- emission ---
  void op(bc::Op o);
  void op_u8(bc::Op o, uint8_t v);
  void op_u16(bc::Op o, uint16_t v);
  void iconst(int64_t v);
  void dconst(double v);
  /// Branch to an original pc (remapped at finish()).
  void branch_old(bc::Op o, uint32_t old_target);
  /// Branch to an injected label.
  void branch_label(bc::Op o, int label);
  /// LOOKUPSWITCH whose keys and targets are original pcs (for restoration
  /// handlers the key *is* the original-table pc and the target its
  /// remapped location; pass remap_keys=false to keep keys as given).
  void lookupswitch_old(const std::vector<std::pair<int64_t, uint32_t>>& pairs,
                        uint32_t default_old);

  /// Copy the instruction at `pc` of `m` verbatim, converting any branch
  /// targets into old-pc fixups.
  void copy_instr(const bc::Method& m, uint32_t pc);

  /// Append raw already-built fragment (no targets inside).
  void append_fragment(const std::vector<uint8_t>& frag);

  /// Resolve all fixups and return the code.  All referenced old pcs must
  /// have been mapped, all labels bound.
  std::vector<uint8_t> finish();

 private:
  struct OldFix {
    size_t at;
    uint32_t old_pc;
  };
  struct LabelFix {
    size_t at;
    int label;
  };
  void put_u32_placeholder();

  std::vector<uint8_t> code_;
  std::unordered_map<uint32_t, uint32_t> old_map_;
  std::vector<OldFix> old_fixups_;
  std::vector<LabelFix> label_fixups_;
  std::vector<uint32_t> label_pc_;
};

}  // namespace sod::prep
