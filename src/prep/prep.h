// Class preprocessor pipeline — the paper's BCEL-based offline transformer
// (Section III.A module 1).  Runs, per method:
//
//   1. flatten        — statement rearrangement establishing MSPs (Fig. 4a)
//   2. miss detection — either object-fault handlers (SOD's contribution)
//                       or status checks (the JavaSplit baseline)
//   3. restoration    — InvalidStateException handlers + pc lookupswitch
//
// Preprocessing is one-off and offline, exactly as in the paper; the
// runtime only ever loads preprocessed programs.
#pragma once

#include "bytecode/program.h"
#include "prep/checks.h"
#include "prep/flatten.h"
#include "prep/inject.h"

namespace sod::prep {

enum class MissDetection {
  None,            ///< no remote-object support (plain local runs)
  ObjectFaulting,  ///< exception-driven, zero inline overhead (the paper's design)
  StatusChecking,  ///< inline per-access checks (JavaSplit baseline)
};

struct PrepOptions {
  bool flatten = true;
  bool restore_handlers = true;
  MissDetection miss = MissDetection::ObjectFaulting;
  /// Exception-driven offload (paper Section II.B): OutOfMemory in an
  /// allocating statement traps so the runtime can migrate and retry.
  bool offload_handlers = false;
};

struct PrepReport {
  FlattenStats flatten;
  InjectStats faults;
  ChecksStats checks;
  int offload_handlers = 0;
  size_t image_size_before = 0;  ///< total class-image bytes before
  size_t image_size_after = 0;   ///< ... and after (Fig. 5 space overhead)
};

/// Preprocess every method in place.
PrepReport preprocess_program(bc::Program& p, const PrepOptions& opts = {});

}  // namespace sod::prep
