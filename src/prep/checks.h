// Status-check instrumentation — the JavaSplit-style baseline the paper
// compares object faulting against (Fig. 5 B1, Table V).
//
// Every application class gains an `__status` instance field and an
// `__sstatus` static field.  Before each dereferencing statement the pass
// inserts an inline validity check on every base the statement uses:
//
//     aload k; getfield C.__status; ifne ok;
//     aload k; iconst <fid>; invokenative objman.bring_checked; ok:
//
// NEW is rewritten to mark freshly allocated objects valid.  The inline
// field-read + compare + branch on *every* access — even when the object
// is local — is exactly the overhead Table V measures.
#pragma once

#include "bytecode/program.h"

namespace sod::prep {

struct ChecksStats {
  int checks_inserted = 0;
  int news_rewritten = 0;
};

/// Add __status/__sstatus fields to every non-exception class (idempotent).
void add_status_fields(bc::Program& p);

/// Instrument one flattened method in place.
ChecksStats inject_status_checks(bc::Program& p, bc::Method& m);

}  // namespace sod::prep
