// Handler-injection passes (run on flattened methods):
//
//   inject_restore_handler — appends the paper's restoration handler
//     (Fig. 4a): catch InvalidStateException over the whole original body,
//     re-read every local from the CapturedState cursor natives, read the
//     saved pc, and lookupswitch-jump to the matching MSP.
//
//   inject_object_fault_handlers — appends one NullPointerException
//     handler per dereferencing statement (Fig. 5 B2 / Section III.C):
//     catch the NPE, call the object-manager natives to repair every
//     reference base the statement uses, and goto-retry the statement.
//     objman.enter() detects no-progress retries and rethrows the NPE as a
//     genuine application exception; guest NPE/catch-all handlers that
//     covered the statement are extended over the injected handler so
//     application semantics are preserved.
//
// Both passes are append-only: existing pcs (and therefore MSP tables and
// capture metadata) are unchanged.
#pragma once

#include "bytecode/program.h"

namespace sod::prep {

/// Natives used by injected code; declared idempotently in `p`.
void declare_prep_natives(bc::Program& p);

struct InjectStats {
  int fault_handlers = 0;
  int repair_calls = 0;
  int guest_entries_extended = 0;
};

void inject_restore_handler(bc::Program& p, bc::Method& m);
InjectStats inject_object_fault_handlers(bc::Program& p, bc::Method& m);

/// Exception-driven offload (paper Section II.B): wrap every allocating
/// statement in a catch(OutOfMemoryException) that calls offload.trap and
/// retries the statement from its MSP.  The trap native pauses the VM at
/// that MSP so the runtime can "rocket" the state into the cloud and the
/// retried allocation succeeds there.  Returns the number of handlers.
int inject_offload_handlers(bc::Program& p, bc::Method& m);

}  // namespace sod::prep
