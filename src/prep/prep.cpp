#include "prep/prep.h"

namespace sod::prep {

PrepReport preprocess_program(bc::Program& p, const PrepOptions& opts) {
  PrepReport rep;
  rep.image_size_before = p.total_image_size();

  declare_prep_natives(p);
  if (opts.miss == MissDetection::StatusChecking) add_status_fields(p);

  for (auto& m : p.methods) {
    if (m.code.empty()) continue;
    if (opts.flatten) {
      FlattenStats fs = flatten_method(p, m);
      rep.flatten.temps_added += fs.temps_added;
      rep.flatten.calls_extracted += fs.calls_extracted;
      rep.flatten.statements_out += fs.statements_out;
    }
    if (opts.miss == MissDetection::ObjectFaulting) {
      InjectStats is = inject_object_fault_handlers(p, m);
      rep.faults.fault_handlers += is.fault_handlers;
      rep.faults.repair_calls += is.repair_calls;
      rep.faults.guest_entries_extended += is.guest_entries_extended;
    } else if (opts.miss == MissDetection::StatusChecking) {
      ChecksStats cs = inject_status_checks(p, m);
      rep.checks.checks_inserted += cs.checks_inserted;
      rep.checks.news_rewritten += cs.news_rewritten;
    }
    if (opts.offload_handlers) rep.offload_handlers += inject_offload_handlers(p, m);
    if (opts.restore_handlers) inject_restore_handler(p, m);
  }

  rep.image_size_after = p.total_image_size();
  return rep;
}

}  // namespace sod::prep
