// Statement flattening — the paper's bytecode rearrangement (Fig. 4a).
//
// Guarantees after the pass:
//   1. Every emitted statement start has an empty operand stack and is
//      recorded in Method::stmt_starts — these are the migration-safe
//      points (MSPs).
//   2. Every non-void call whose result is not immediately consumed by a
//      statement-terminal instruction is extracted into its own statement
//      storing to a fresh temp local ("tmp1 = r.nextInt()" in the paper's
//      example), so re-executing any statement from its start only
//      replays loads/pure expressions before reaching a call.
//   3. Exception-handler entries (operand stack = [exception]) keep their
//      leading POP/ASTORE and continue as regular statements.
//
// Together these make it safe to (a) capture a frame at any MSP with an
// empty operand stack, and (b) restore a *caller* frame by jumping to the
// statement start containing its pending INVOKE and re-executing it.
#pragma once

#include "bytecode/program.h"

namespace sod::prep {

struct FlattenStats {
  int temps_added = 0;
  int calls_extracted = 0;
  int statements_out = 0;
};

/// Flatten one method in place.  Throws sod::Error on shapes the pass
/// does not support (documented in DESIGN.md).
FlattenStats flatten_method(bc::Program& p, bc::Method& m);

/// Flatten every method with a body.
FlattenStats flatten_program(bc::Program& p);

}  // namespace sod::prep
