#include "prep/emitter.h"

#include <cstring>

#include "support/panic.h"

namespace sod::prep {

using bc::Op;

void Emitter::map_old(uint32_t old_pc) {
  SOD_CHECK(!old_map_.count(old_pc), "old pc mapped twice");
  old_map_[old_pc] = here();
}

uint32_t Emitter::lookup_old(uint32_t old_pc) const {
  auto it = old_map_.find(old_pc);
  SOD_CHECK(it != old_map_.end(), "old pc " + std::to_string(old_pc) + " never mapped");
  return it->second;
}

int Emitter::new_label() {
  label_pc_.push_back(UINT32_MAX);
  return static_cast<int>(label_pc_.size() - 1);
}

void Emitter::bind(int label) {
  SOD_CHECK(label >= 0 && static_cast<size_t>(label) < label_pc_.size(), "bad label");
  SOD_CHECK(label_pc_[label] == UINT32_MAX, "label bound twice");
  label_pc_[label] = here();
}

void Emitter::op(Op o) { code_.push_back(static_cast<uint8_t>(o)); }

void Emitter::op_u8(Op o, uint8_t v) {
  op(o);
  code_.push_back(v);
}

void Emitter::op_u16(Op o, uint16_t v) {
  op(o);
  code_.push_back(static_cast<uint8_t>(v & 0xFF));
  code_.push_back(static_cast<uint8_t>(v >> 8));
}

void Emitter::iconst(int64_t v) {
  op(Op::ICONST);
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  code_.insert(code_.end(), b, b + 8);
}

void Emitter::dconst(double v) {
  op(Op::DCONST);
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  code_.insert(code_.end(), b, b + 8);
}

void Emitter::put_u32_placeholder() { code_.insert(code_.end(), 4, 0); }

void Emitter::branch_old(Op o, uint32_t old_target) {
  op(o);
  old_fixups_.push_back(OldFix{code_.size(), old_target});
  put_u32_placeholder();
}

void Emitter::branch_label(Op o, int label) {
  op(o);
  label_fixups_.push_back(LabelFix{code_.size(), label});
  put_u32_placeholder();
}

void Emitter::lookupswitch_old(const std::vector<std::pair<int64_t, uint32_t>>& pairs,
                               uint32_t default_old) {
  op(Op::LOOKUPSWITCH);
  uint16_t n = static_cast<uint16_t>(pairs.size());
  code_.push_back(static_cast<uint8_t>(n & 0xFF));
  code_.push_back(static_cast<uint8_t>(n >> 8));
  old_fixups_.push_back(OldFix{code_.size(), default_old});
  put_u32_placeholder();
  for (const auto& [key, old_tgt] : pairs) {
    uint8_t b[8];
    std::memcpy(b, &key, 8);
    code_.insert(code_.end(), b, b + 8);
    old_fixups_.push_back(OldFix{code_.size(), old_tgt});
    put_u32_placeholder();
  }
}

void Emitter::copy_instr(const bc::Method& m, uint32_t pc) {
  bc::Instr in = bc::decode(m.code, pc);
  if (bc::is_branch(in.op)) {
    branch_old(in.op, in.arg);
    return;
  }
  if (in.op == Op::LOOKUPSWITCH) {
    bc::SwitchInfo si = bc::decode_switch(m.code, pc);
    lookupswitch_old(si.pairs, si.default_target);
    return;
  }
  code_.insert(code_.end(), m.code.begin() + pc, m.code.begin() + pc + in.size);
}

void Emitter::append_fragment(const std::vector<uint8_t>& frag) {
  code_.insert(code_.end(), frag.begin(), frag.end());
}

std::vector<uint8_t> Emitter::finish() {
  for (const auto& f : old_fixups_) {
    uint32_t tgt = lookup_old(f.old_pc);
    std::memcpy(code_.data() + f.at, &tgt, 4);
  }
  for (const auto& f : label_fixups_) {
    SOD_CHECK(label_pc_[f.label] != UINT32_MAX, "unbound emitter label");
    std::memcpy(code_.data() + f.at, &label_pc_[f.label], 4);
  }
  return std::move(code_);
}

}  // namespace sod::prep
