// Object manager — both halves of the paper's Section III.C design.
//
// Worker side: implements the objman.* natives the preprocessor's fault
// handlers call.  A missing reference is repaired by asking the home node:
//   bring_local  -> home reads the suspended frame's local via the tool
//                   interface (GetLocal) and serializes the object
//   bring_static -> home reads the static field
//   bring_field / bring_elem -> resolved through the side table built when
//                   the holder was deserialized (embedded refs arrive
//                   nulled, each recorded as (holder, slot) -> home ref)
// Fetches are shallow: one object per round trip, references inside it
// null out and fault later — the paper's "heap-on-demand".
//
// objman.enter implements the paper's application-NPE passthrough: if a
// statement retries without any repair making progress, the NPE is a real
// application bug and is rethrown (caught by whatever guest handler the
// preprocessor extended over the fault handler).
//
// Home side: the agent thread that serves object requests; here it is the
// serve_* methods, charged with tool-interface and serialization costs on
// the home node's clock.  In wall-clock mode every home touch runs inside
// a HomeGate section keyed by the home ref (or owning class), so requests
// for objects on different home shards overlap their service windows while
// the virtual-clock accounting stays on the gate's ordered path.
//
// The home-object table (home ref -> local ref) is partitioned by the
// HomeShardMap when one is installed: keyed lookups route to the key's
// shard, and the canonical iteration order for write-backs is
// home_entries() — sorted by home ref — so the wire record order (and with
// it the home-side creation ids) is identical at any shard count.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sod/homegate.h"
#include "sod/node.h"
#include "sod/state.h"

namespace sod::mig {

struct FaultStats {
  int faults = 0;           ///< fetch round trips (object misses)
  int prefetched = 0;       ///< extra objects piggybacked on those trips
  size_t bytes = 0;         ///< serialized bytes fetched
  int app_npe_rethrown = 0; ///< genuine application NPEs passed through
};

class ObjectManager {
 public:
  /// Install objman.* natives into `worker`'s registry.  Standalone (no
  /// home bound) the natives only implement application-NPE passthrough,
  /// which is also the correct behaviour for never-migrated runs.
  void install(SodNode& worker);

  /// Bind to the home node whose thread `home_tid` holds the suspended
  /// segment: the worker's bottom `seg_len` frames mirror home's top
  /// `seg_len` frames.
  void bind_home(SodNode* home, int home_tid, int seg_len, sim::Link link);
  void unbind_home() { home_ = nullptr; }

  /// Serialize every home-side touch (tool-interface reads, object fetch
  /// round trips) through `gate`.  The wall-clock engine installs itself
  /// here so concurrent worker lanes take the key's stripe plus the
  /// ordered home lock; nullptr (the default) keeps the lock-free
  /// single-threaded behaviour of the virtual-time scheduler.
  void set_home_gate(HomeGate* gate) { home_gate_ = gate; }

  /// Partition the home-object table by `map` (borrowed; must outlive the
  /// manager or be reset).  nullptr = single partition.  Set before
  /// bind_home — rebinding clears the partitions.
  void set_shard_map(const HomeShardMap* map);

  const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Everything fetched so far as (home ref, local ref), sorted by home
  /// ref — the canonical write-back iteration order, independent of the
  /// shard count and of hash-map iteration order.
  std::vector<std::pair<Ref, Ref>> home_entries() const;
  /// Number of (home, local) identities tracked.
  size_t home_size() const;
  /// Local ref of a fetched home object (kNull if never fetched).
  Ref local_of_home(Ref home_ref) const;

  /// Record a (home, local) identity established outside a fetch: a
  /// checkpoint that shipped a locally created object home adopts the new
  /// home id, so later checkpoints and the final write-back treat the
  /// object as an update of that home object instead of re-creating it.
  void adopt_mapping(Ref home_ref, Ref local_ref) {
    home_part(home_ref)[home_ref] = local_ref;
    local_map_[local_ref] = home_ref;
  }

  /// Fetch a home object into the worker heap (public for write-back and
  /// prefetch policies).
  Ref fetch(Ref home_ref);

  /// Reachability prefetch (paper Section VI future work): each miss also
  /// ships the home objects reachable within `depth` hops in the same
  /// response — one round trip, bigger payload, fewer later misses.
  void set_prefetch_depth(int depth) { prefetch_depth_ = depth; }
  int prefetch_depth() const { return prefetch_depth_; }

  /// Record that `stub` stands for the home value of (frame_idx, slot) of
  /// the migrated segment (set while the restoration handler runs).
  void register_local_stub(Ref stub, int frame_idx, uint16_t slot);
  /// Record that `stub` stands for the home value of static `field_id`
  /// (set when statics are restored at the destination).
  void register_static_stub(Ref stub, uint16_t field_id);
  /// Home ref a stub stands for: from the stub itself (deserialized
  /// objects) or via GetLocal on the suspended home frame (captured
  /// locals).  kNull if unresolvable.
  Ref resolve_stub_home(Ref stub);
  /// Reverse map: home ref of a fetched local object (kNull if local-new).
  Ref home_of_local(Ref local) const {
    auto it = local_map_.find(local);
    return it == local_map_.end() ? bc::kNull : it->second;
  }

 private:
  static uint64_t side_key(Ref holder, uint32_t slot) {
    return (static_cast<uint64_t>(holder) << 32) | slot;
  }

  void bring_local(svm::VM& vm, int64_t slot);
  void bring_static(svm::VM& vm, int64_t field_id);
  void bring_field(svm::VM& vm, Ref base, int64_t field_id);
  void bring_elem(svm::VM& vm, Ref base, int64_t idx);
  void enter(svm::VM& vm, int64_t uid);

  /// The home-table partition holding `home_ref`.
  std::unordered_map<Ref, Ref>& home_part(Ref home_ref) {
    return home_parts_[shard_map_ != nullptr ? shard_map_->shard_of_ref(home_ref) : 0];
  }
  const std::unordered_map<Ref, Ref>& home_part(Ref home_ref) const {
    return home_parts_[shard_map_ != nullptr ? shard_map_->shard_of_ref(home_ref) : 0];
  }

  SodNode* worker_ = nullptr;
  SodNode* home_ = nullptr;
  HomeGate* home_gate_ = nullptr;
  const HomeShardMap* shard_map_ = nullptr;
  int home_tid_ = -1;
  int seg_len_ = 0;
  sim::Link link_{};
  int prefetch_depth_ = 0;

  /// home -> local, partitioned by shard_map_ (one partition without one).
  std::vector<std::unordered_map<Ref, Ref>> home_parts_{1};
  std::unordered_map<Ref, Ref> local_map_;  // local -> home
  std::unordered_map<uint64_t, Ref> side_;  // (holder, slot) -> home ref
  std::unordered_map<Ref, std::pair<int, uint16_t>> local_stub_origin_;  // stub -> (frame, slot)
  std::unordered_map<Ref, uint16_t> static_stub_origin_;  // stub -> static field id

  // no-progress retry detection (per worker thread); progress counts
  // *repair actions* (slots actually filled in), so cache-hit repairs on
  // later loop iterations register as progress too.
  int repairs_done_ = 0;
  struct EnterState {
    int64_t uid = -1;
    int fetches = -1;
  };
  std::unordered_map<int, EnterState> enter_state_;

  FaultStats stats_;
};

}  // namespace sod::mig
