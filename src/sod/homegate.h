// Home sharding primitives — the deterministic shard map and the gate
// interface that serializes worker-lane access to home-side state.
//
// A HomeShardMap assigns every home-side key (object ref, class id,
// (round, segment) pair) to one of N shards with a stable hash fixed at
// program attach, so the assignment never depends on arrival order, thread
// interleaving, or platform hash seeds.  The partitioned structures — the
// ObjectManager home-object table, the Scheduler's ref-forwarding table,
// the CheckpointStore — route every keyed operation through it; N = 1
// reproduces the unsharded layout exactly.
//
// A HomeGate is the wall-clock engine's two-level lock protocol, seen from
// the sod layer (ObjectManager faults, the on-demand class fetch hook)
// without a dependency on the cluster layer:
//
//   acquire(key)   take the key's stripe lock, then the single ordered
//                  lock.  Home virtual-clock accounting, tool-interface
//                  reads, and heap access all happen inside this window,
//                  so they stay on one totally ordered path and the
//                  virtual-time results are bit-identical at any shard
//                  count.  Calls from a thread already inside the engine's
//                  ordered section return a nested no-op section.
//   service(d)     drop the ordered lock and sleep the wall twin of the
//                  home-side service time `d` holding only the stripe:
//                  services of different shards overlap, services of the
//                  same shard convoy — the contention the shard sweep
//                  measures.  Purely wall-side; no virtual clock moves.
//   release()      drop whatever the section still holds.
//
// Lock order is always stripe -> ordered, a thread holds at most one
// stripe, and nested sections take nothing — the three rules that make
// the protocol deadlock-free (see ARCHITECTURE.md "Home sharding").
//
// The virtual-time scheduler installs no gate; a null gate makes every
// GateSection a no-op, preserving the single-threaded fast path.
#pragma once

#include <cstdint>

#include "support/panic.h"
#include "support/vclock.h"

namespace sod::mig {

/// Deterministic key -> shard assignment, fixed at program attach.
class HomeShardMap {
 public:
  static constexpr int kMinShards = 1;
  static constexpr int kMaxShards = 64;

  explicit HomeShardMap(int shards = 1) : shards_(shards) {
    SOD_CHECK(shards >= kMinShards && shards <= kMaxShards,
              "home shard count out of range (1..64)");
  }

  int shards() const { return shards_; }

  /// Stable 32-bit mix (splitmix-style finalizer) -> shard index.  No
  /// std::hash: the assignment must be identical across platforms and
  /// library versions for the replay tables to be reproducible.
  int shard_of(uint32_t key) const {
    uint32_t x = key;
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return static_cast<int>(x % static_cast<uint32_t>(shards_));
  }

  // Key constructors per domain, tagged so e.g. class 7 and home ref 7
  // do not systematically alias onto one stripe.
  static uint32_t key_ref(uint32_t home_ref) { return home_ref; }
  static uint32_t key_class(uint16_t cls) { return 0x40000000U | cls; }
  static uint32_t key_segment(int round, int segment) {
    return 0x80000000U |
           ((static_cast<uint32_t>(round) << 12) ^ static_cast<uint32_t>(segment));
  }

  int shard_of_ref(uint32_t home_ref) const { return shard_of(key_ref(home_ref)); }
  int shard_of_class(uint16_t cls) const { return shard_of(key_class(cls)); }
  int shard_of_segment(int round, int segment) const {
    return shard_of(key_segment(round, segment));
  }

 private:
  int shards_;
};

/// Per-stripe lock telemetry (wall-clock engine).  `acquisitions` is
/// deterministic for a failure-free replay (one per gate section / service
/// window); the wait-side counters depend on real interleaving and are
/// surfaced under wall_* / *_ns column names so the bench differ never
/// gates on them.
struct ShardContention {
  uint64_t acquisitions = 0;  ///< stripe lock acquisitions
  uint64_t contended = 0;     ///< acquisitions that found the stripe held
  uint64_t wait_ns = 0;       ///< total wall nanoseconds spent waiting
  uint64_t max_wait_ns = 0;   ///< worst single wait
  uint64_t max_queue = 0;     ///< most waiters ever queued behind the stripe

  ShardContention& operator+=(const ShardContention& o) {
    acquisitions += o.acquisitions;
    contended += o.contended;
    wait_ns += o.wait_ns;
    if (o.max_wait_ns > max_wait_ns) max_wait_ns = o.max_wait_ns;
    if (o.max_queue > max_queue) max_queue = o.max_queue;
    return *this;
  }
};

/// The two-level home lock protocol, implemented by the wall-clock engine.
class HomeGate {
 public:
  /// One acquire..release window.  `nested` sections (opened from a thread
  /// already inside the engine's ordered section) hold nothing and every
  /// operation on them is a no-op.
  struct Section {
    int shard = -1;
    bool nested = false;
    bool ordered_live = false;  ///< ordered lock still held (pre-service)
  };

  virtual ~HomeGate() = default;

  /// Stripe(shard_of(key)) -> ordered lock, in that order.
  virtual Section acquire(uint32_t key) = 0;
  /// Drops the ordered lock and sleeps the dilated wall twin of `home_time`
  /// holding only the stripe.  At most once per section.
  virtual void service(Section& s, VDur home_time) = 0;
  /// Releases the section (ordered first if still held, then the stripe).
  virtual void release(Section& s) = 0;
};

/// RAII section over an optional gate: a null gate (virtual-time mode)
/// makes construction, service, and destruction no-ops.
class GateSection {
 public:
  GateSection(HomeGate* gate, uint32_t key) : gate_(gate) {
    if (gate_ != nullptr) s_ = gate_->acquire(key);
  }
  ~GateSection() {
    if (gate_ != nullptr) gate_->release(s_);
  }
  void service(VDur home_time) {
    if (gate_ != nullptr) gate_->service(s_, home_time);
  }
  GateSection(const GateSection&) = delete;
  GateSection& operator=(const GateSection&) = delete;

 private:
  HomeGate* gate_;
  HomeGate::Section s_{};
};

}  // namespace sod::mig
