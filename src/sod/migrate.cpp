#include "sod/migrate.h"

#include <deque>
#include <unordered_set>

namespace sod::mig {

using bc::Method;
using svm::StopReason;

CapturedState capture_segment(SodNode& home, int home_tid, SegmentSpec seg) {
  auto& ti = home.ti();
  auto& vm = home.vm();
  const bc::Program& P = home.program();
  SOD_CHECK(seg.len() >= 1, "empty segment");
  SOD_CHECK(seg.depth_hi <= ti.get_stack_depth(home_tid), "segment deeper than stack");

  CapturedState cs;
  // frames[0] = segment bottom = deepest captured depth.
  for (int depth = seg.depth_hi - 1; depth >= seg.depth_lo; --depth) {
    vmti::FrameLocation loc = ti.get_frame_location(home_tid, depth);
    const Method& m = P.method(loc.method);
    CapturedFrame cf;
    cf.method = loc.method;
    if (depth == 0) {
      SOD_CHECK(m.is_stmt_start(loc.pc), "top frame not at an MSP");
      cf.pc = loc.pc;
    } else {
      // loc.pc is the return address; the pending INVOKE sits just before
      // it.  Resume at the statement start that re-executes the call and
      // remember the callee for ForceEarlyReturn delivery.
      uint32_t invoke_pc = loc.pc - 3;  // INVOKE is op + u16
      SOD_CHECK(static_cast<bc::Op>(m.code[invoke_pc]) == bc::Op::INVOKE,
                "suspended frame not at an INVOKE");
      cf.pc = m.stmt_at_or_before(invoke_pc);
      cf.pending_callee = static_cast<uint16_t>(bc::decode(m.code, invoke_pc).arg);
    }
    const auto& vt = ti.get_local_variable_table(loc.method);
    cf.locals.assign(m.num_locals, Value::of_i64(0));
    for (const auto& var : vt) {
      Value v = ti.get_local(home_tid, depth, var.slot);
      // References are left behind (fetched on demand); remember only
      // whether they were null so the worker can stub non-null ones.
      if (var.type == bc::Ty::Ref)
        cf.locals[var.slot] = v.r != bc::kNull ? Value::of_ref(kRemoteMark) : Value::null();
      else
        cf.locals[var.slot] = v;
    }
    cs.frames.push_back(std::move(cf));
  }

  // Statics of loaded classes (Fig. 3's "save static fields"); refs null.
  for (const auto& c : P.classes) {
    if (!vm.class_loaded(c.id) || c.num_static_slots == 0) continue;
    CapturedStatics st;
    st.cls = c.id;
    st.values.assign(c.num_static_slots, Value::of_i64(0));
    for (uint16_t fid : c.field_ids) {
      const bc::Field& f = P.field(fid);
      if (!f.is_static) continue;
      Value v = ti.get_static_field(fid);
      if (f.type == bc::Ty::Ref)
        st.values[f.slot] = v.r != bc::kNull ? Value::of_ref(kRemoteMark) : Value::null();
      else
        st.values[f.slot] = v;
    }
    cs.statics.push_back(std::move(st));
  }
  home.sync_ti_cost();
  return cs;
}

Segment::Segment(SodNode& dest) : dest_(&dest) {
  om_.install(dest);
  install_cs_natives();
}

void Segment::install_cs_natives() {
  auto& reg = dest_->registry();
  Cursor* cur = &cursor_;
  reg.bind("cs.read_i64", [cur](svm::VM&, std::span<Value> a) {
    SOD_CHECK(cur->frame, "cs read outside restoration");
    return Value::of_i64(cur->frame->locals[static_cast<size_t>(a[0].i)].i);
  });
  reg.bind("cs.read_f64", [cur](svm::VM&, std::span<Value> a) {
    SOD_CHECK(cur->frame, "cs read outside restoration");
    const Value& v = cur->frame->locals[static_cast<size_t>(a[0].i)];
    return Value::of_f64(v.tag == bc::Ty::F64 ? v.d : 0.0);
  });
  ObjectManager* om = &om_;
  reg.bind("cs.read_ref", [cur, om](svm::VM& vm, std::span<Value> a) {
    SOD_CHECK(cur->frame, "cs read outside restoration");
    const Value& v = cur->frame->locals[static_cast<size_t>(a[0].i)];
    if (v.tag != bc::Ty::Ref || v.r == bc::kNull) return Value::null();
    // Checkpoint states carry real home ids: the stub resolves directly
    // against the home heap, no suspended-frame lookup needed.
    if (cur->home_refs) return Value::of_ref(vm.heap().alloc_stub(v.r));
    // Non-null at the home: materialize as a stub resolvable through the
    // suspended home frame (GetLocal).
    Ref stub = vm.heap().alloc_stub(0);
    const auto& frames = vm.thread(vm.native_tid()).frames;
    om->register_local_stub(stub, static_cast<int>(frames.size()) - 1,
                            static_cast<uint16_t>(a[0].i));
    return Value::of_ref(stub);
  });
  reg.bind("cs.read_pc", [cur](svm::VM&, std::span<Value>) {
    SOD_CHECK(cur->frame, "cs read outside restoration");
    return Value::of_i64(cur->frame->pc);
  });
}

void Segment::restore(const CapturedState& cs) {
  SOD_CHECK(!cs.frames.empty(), "restore of empty state");
  auto& vm = dest_->vm();
  auto& ti = dest_->ti();
  const bc::Program& P = dest_->program();

  ti.set_debug_enabled(true);
  debug_held_ = true;
  cursor_.home_refs = cs.home_refs;

  // Restore class static data (SetStatic<Type>Field in the paper); class
  // loads may fetch class images on demand.
  for (const auto& st : cs.statics) {
    vm.ensure_loaded(st.cls);
    std::vector<Value> vals = st.values;
    for (size_t slot = 0; slot < vals.size(); ++slot) {
      Value& v = vals[slot];
      if (v.tag != bc::Ty::Ref || v.r == bc::kNull) continue;
      if (cs.home_refs) {
        // Checkpoint statics hold real home ids; the stub carries the id.
        v = Value::of_ref(vm.heap().alloc_stub(v.r));
        continue;
      }
      if (v.r != kRemoteMark) continue;
      Ref stub = vm.heap().alloc_stub(0);
      v = Value::of_ref(stub);
      // Register the stub's identity so copies of it (e.g. a static array
      // cached into a local) stay resolvable.
      for (uint16_t fid : P.cls(st.cls).field_ids) {
        const bc::Field& f = P.field(fid);
        if (f.is_static && f.slot == slot) om_.register_static_stub(stub, fid);
      }
    }
    vm.overwrite_statics(st.cls, std::move(vals));
  }

  const Method& m0 = P.method(cs.frames[0].method);
  std::vector<Value> dummy;
  dummy.reserve(m0.params.size());
  for (bc::Ty t : m0.params) dummy.push_back(Value::zero_of(t));
  tid_ = vm.spawn(cs.frames[0].method, dummy);

  ti.set_breakpoint(cs.frames[0].method, 0);
  for (size_t i = 0; i < cs.frames.size(); ++i) {
    // Run until frame i is (re)created: stack depth grows to i+1 with the
    // breakpoint at its method entry.  A frame whose *resume* point is
    // pc 0 re-trips its own entry breakpoint first (depth unchanged);
    // skip those and keep going.
    while (true) {
      svm::RunResult rr = dest_->run_guest(tid_);
      SOD_CHECK(rr.reason == StopReason::Breakpoint, "restore: expected breakpoint");
      if (vm.thread(tid_).frames.size() == i + 1) break;
      SOD_CHECK(vm.thread(tid_).frames.size() == i,
                "restore: unexpected stack depth at breakpoint");
    }
    const auto& top = vm.thread(tid_).frames.back();
    SOD_CHECK(top.method == cs.frames[i].method && top.pc == 0, "restore: wrong frame");
    if (i + 1 < cs.frames.size()) ti.set_breakpoint(cs.frames[i + 1].method, 0);
    cursor_.frame = &cs.frames[i];
    ti.raise_exception(tid_, bc::builtin::kInvalidState, "restore");
    // Java-level (reflection-based) restoration on devices without a tool
    // interface pays a heavy per-frame cost (Table VII).
    if (dest_->config().java_level_restore)
      dest_->node().charge_host(VDur::millis(1.5));
  }
  for (const auto& f : cs.frames) ti.clear_breakpoint(f.method, 0);

  // The last frame's restoration handler has not executed yet.  Run it to
  // completion now (breakpoint at the saved pc it will jump to), so the
  // cursor can be retargeted — e.g. by another Segment restoring on this
  // same node — without corrupting this thread's state.
  {
    const CapturedFrame& last = cs.frames.back();
    ti.set_breakpoint(last.method, last.pc);
    while (true) {
      svm::RunResult rr = dest_->run_guest(tid_);
      SOD_CHECK(rr.reason == StopReason::Breakpoint, "restore: handler completion");
      const auto& top = vm.thread(tid_).frames.back();
      if (vm.thread(tid_).frames.size() == cs.frames.size() && top.method == last.method &&
          top.pc == last.pc)
        break;
    }
    ti.clear_breakpoint(last.method, last.pc);
  }
  pending_callee_ = cs.frames.back().pending_callee;
  dest_->sync_ti_cost();
  cursor_.frame = nullptr;

  if (pending_callee_ == bc::kNoId) {
    ti.set_debug_enabled(false);
    debug_held_ = false;
  }
}

void Segment::deliver(Value v) {
  SOD_CHECK(pending_callee_ != bc::kNoId, "deliver without a pending call");
  auto& ti = dest_->ti();
  ti.set_breakpoint(pending_callee_, 0);
  svm::RunResult rr = dest_->run_guest(tid_);
  SOD_CHECK(rr.reason == StopReason::Breakpoint, "deliver: expected pending call breakpoint");
  ti.clear_breakpoint(pending_callee_, 0);
  ti.force_early_return(tid_, v);
  pending_callee_ = bc::kNoId;
  ti.set_debug_enabled(false);
  debug_held_ = false;
  dest_->sync_ti_cost();
}

Value Segment::run_to_completion() {
  if (debug_held_) {
    dest_->ti().set_debug_enabled(false);
    debug_held_ = false;
  }
  svm::RunResult rr = dest_->run_guest(tid_);
  if (rr.reason == StopReason::Crashed) {
    const auto& th = dest_->vm().thread(tid_);
    SOD_UNREACHABLE("migrated segment crashed: " +
                    dest_->program().cls(dest_->vm().class_of(th.uncaught)).name + ": " +
                    dest_->vm().exception_message(th.uncaught));
  }
  SOD_CHECK(rr.reason == StopReason::Done, "segment did not finish");
  return dest_->vm().thread(tid_).result;
}

svm::StopReason Segment::run_chunk(uint64_t budget) {
  SOD_CHECK(budget >= 1, "zero-budget chunk");
  // Another segment restored on this node between chunks (a mid-execution
  // re-dispatch landing here) leaves the debug interpreter on; chunked
  // execution always runs fast mode between pauses, same as
  // run_to_completion after prepare().
  dest_->ti().set_debug_enabled(false);
  debug_held_ = false;
  svm::RunResult rr = dest_->run_guest(tid_, budget);
  if (rr.reason == StopReason::Budget) {
    // The budget expired mid-statement; coast under the debug interpreter
    // to the next statement start so the pause is a migration-safe point.
    dest_->ti().set_debug_enabled(true);
    dest_->vm().request_safepoint(true);
    rr = dest_->run_guest(tid_);
    dest_->vm().request_safepoint(false);
    dest_->ti().set_debug_enabled(false);
    dest_->sync_ti_cost();
  }
  if (rr.reason == StopReason::Crashed) {
    const auto& th = dest_->vm().thread(tid_);
    SOD_UNREACHABLE("migrated segment crashed: " +
                    dest_->program().cls(dest_->vm().class_of(th.uncaught)).name + ": " +
                    dest_->vm().exception_message(th.uncaught));
  }
  SOD_CHECK(rr.reason == StopReason::Done || rr.reason == StopReason::SafePoint,
            "segment chunk stopped unexpectedly");
  return rr.reason;
}

Value Segment::result() const { return dest_->vm().thread(tid_).result; }

// ---------------------------------------------------------------- write-back

namespace {

// Wire constants for the write-back message.
enum : uint8_t { kWbUpdate = 1, kWbCreate = 2, kWbEnd = 0 };

uint64_t fnv1a(std::span<const uint8_t> bytes) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Home-side twin of WriteBackBuilder::write_cell: encodes a home cell
/// with its refs written raw (they already are home ids), so a worker
/// cell whose translated encoding matches byte-for-byte is one home
/// already holds — the first-checkpoint "fetched but never mutated" skip.
void write_home_cell(const svm::Heap& heap, Ref r, ByteWriter& w) {
  const svm::Cell& c = heap.cell(r);
  if (const auto* o = std::get_if<svm::ObjCell>(&c)) {
    w.u8(1);
    w.u16(o->cls);
    w.u16(static_cast<uint16_t>(o->fields.size()));
    for (const Value& v : o->fields) {
      w.u8(static_cast<uint8_t>(v.tag));
      switch (v.tag) {
        case bc::Ty::I64: w.i64(v.i); break;
        case bc::Ty::F64: w.f64(v.d); break;
        case bc::Ty::Ref: w.u32(v.r); break;
        case bc::Ty::Void: SOD_UNREACHABLE("void field");
      }
    }
  } else if (const auto* ai = std::get_if<svm::ArrICell>(&c)) {
    w.u8(2);
    w.u32(static_cast<uint32_t>(ai->v.size()));
    for (int64_t x : ai->v) w.i64(x);
  } else if (const auto* ad = std::get_if<svm::ArrDCell>(&c)) {
    w.u8(3);
    w.u32(static_cast<uint32_t>(ad->v.size()));
    for (double x : ad->v) w.f64(x);
  } else if (const auto* ar = std::get_if<svm::ArrRCell>(&c)) {
    w.u8(4);
    w.u32(static_cast<uint32_t>(ar->v.size()));
    for (Ref x : ar->v) w.u32(x);
  } else if (const auto* s = std::get_if<svm::StrCell>(&c)) {
    w.u8(5);
    w.str(s->s);
  } else {
    SOD_UNREACHABLE("home cell comparison of an empty cell");
  }
}

class WriteBackBuilder {
 public:
  /// With `deltas` set the builder is in checkpoint mode: an update whose
  /// payload digest is unchanged since the last checkpoint is skipped (its
  /// would-be wire bytes accumulate in skipped_bytes()), and digests are
  /// refreshed for everything that ships.  `home_heap` (checkpoint mode)
  /// additionally lets the first checkpoint skip objects whose payload
  /// still equals home's copy — fetched but never mutated.
  explicit WriteBackBuilder(Segment& seg, CheckpointDeltas* deltas = nullptr,
                            const svm::Heap* home_heap = nullptr)
      : seg_(seg), heap_(seg.dest().vm().heap()), deltas_(deltas), home_heap_(home_heap) {}

  // Translate a worker-local ref into (home_ref or fresh temp id).
  uint32_t translate(Ref local) {
    if (local == bc::kNull) return 0;
    if (heap_.is_stub(local)) {
      // Never materialized at the worker: it still lives (unchanged) at
      // the home; just point back at it.
      Ref home = seg_.objman().resolve_stub_home(local);
      SOD_CHECK(home != bc::kNull, "write-back of unresolvable stub");
      return home;
    }
    Ref home = seg_.objman().home_of_local(local);
    if (home != bc::kNull) return home;  // existing home object
    auto it = created_.find(local);
    if (it != created_.end()) return it->second;
    uint32_t temp = kTempBase + static_cast<uint32_t>(created_.size());
    created_[local] = temp;
    queue_.push_back(local);
    return temp;
  }

  void build(ByteWriter& w, Value result) {
    // Updated objects: everything fetched from home, current field values.
    // In checkpoint mode, an object whose translated payload is unchanged
    // since the last checkpoint is skipped — home already holds exactly
    // those bytes — and only the delta is charged to the wire.
    // home_entries() is sorted by home ref — the canonical record order —
    // so the wire layout (and the home-side creation ids the applier
    // allocates in record order) is identical at any home-shard count.
    for (const auto& [home_ref, local_ref] : seg_.objman().home_entries()) {
      if (deltas_ == nullptr) {
        // Plain write-back: everything ships, straight into the message.
        w.u8(kWbUpdate);
        w.u32(home_ref);
        write_cell(w, local_ref);
        ++updated_;
        continue;
      }
      // Checkpoint mode: stage the cell so its digest decides whether it
      // travels at all.
      ByteWriter cell;
      write_cell(cell, local_ref);
      uint64_t h = fnv1a(cell.bytes());
      auto [it, fresh] = deltas_->digest.try_emplace(home_ref, h);
      if (fresh && home_heap_ != nullptr) {
        // First sight of this object since the attempt started: if the
        // translated payload still equals home's cell byte-for-byte, the
        // object was fetched and never mutated — home already holds it.
        ByteWriter hcell;
        write_home_cell(*home_heap_, home_ref, hcell);
        if (hcell.bytes() == cell.bytes()) {
          skipped_bytes_ += cell.size() + 5;  // record header: tag + u32
          continue;
        }
      }
      if (!fresh && it->second == h) {
        skipped_bytes_ += cell.size() + 5;  // record header: tag + u32
        continue;
      }
      it->second = h;
      w.u8(kWbUpdate);
      w.u32(home_ref);
      w.raw(cell.bytes());
      ++updated_;
    }
    // Newly created objects reachable from updates/result.
    flush_creations(w);
    w.u8(kWbEnd);
    // Updated statics of classes loaded at the worker (primitive values
    // travel by value; ref values translate like any other reference).
    const bc::Program& P = seg_.dest().program();
    const svm::VM& wvm = seg_.dest().vm();
    uint16_t nstatic = 0;
    for (const auto& c : P.classes)
      if (wvm.class_loaded(c.id) && c.num_static_slots > 0) ++nstatic;
    w.u16(nstatic);
    for (const auto& c : P.classes) {
      if (!wvm.class_loaded(c.id) || c.num_static_slots == 0) continue;
      w.u16(c.id);
      auto vals = wvm.statics_of(c.id);
      w.u16(static_cast<uint16_t>(vals.size()));
      for (const Value& v : vals) {
        w.u8(static_cast<uint8_t>(v.tag));
        switch (v.tag) {
          case bc::Ty::I64: w.i64(v.i); break;
          case bc::Ty::F64: w.f64(v.d); break;
          case bc::Ty::Ref: w.u32(translate(v.r)); break;
          case bc::Ty::Void: SOD_UNREACHABLE("void static");
        }
      }
    }
    // Result value.
    w.u8(static_cast<uint8_t>(result.tag));
    switch (result.tag) {
      case bc::Ty::I64: w.i64(result.i); break;
      case bc::Ty::F64: w.f64(result.d); break;
      case bc::Ty::Ref: w.u32(translate(result.r)); break;
      case bc::Ty::Void: break;
    }
    // Translating the result may have queued new objects; flush them in a
    // trailer section.
    flush_creations(w);
    w.u8(kWbEnd);
  }

  int updated() const { return updated_; }
  int created() const { return static_cast<int>(created_.size()); }
  size_t skipped_bytes() const { return skipped_bytes_; }
  /// local ref -> temp wire id of every creation that shipped.
  const std::unordered_map<Ref, uint32_t>& created_map() const { return created_; }
  /// temp wire id -> payload digest of every creation (checkpoint mode
  /// records these so the caller can seed the delta tracker once the real
  /// home ids are known).
  const std::unordered_map<uint32_t, uint64_t>& created_digests() const {
    return created_digests_;
  }

  static constexpr uint32_t kTempBase = 0x80000000u;

 private:
  void flush_creations(ByteWriter& w) {
    while (!queue_.empty()) {
      Ref local = queue_.front();
      queue_.pop_front();
      w.u8(kWbCreate);
      w.u32(created_.at(local));
      if (deltas_ == nullptr) {
        write_cell(w, local);
        continue;
      }
      // Checkpoint mode: record the payload digest so the next checkpoint
      // can skip the object (it becomes an update once its home id lands).
      ByteWriter cell;
      write_cell(cell, local);
      created_digests_[created_.at(local)] = fnv1a(cell.bytes());
      w.raw(cell.bytes());
    }
  }
  void write_cell(ByteWriter& w, Ref local) {
    const svm::Cell& c = heap_.cell(local);
    if (const auto* o = std::get_if<svm::ObjCell>(&c)) {
      w.u8(1);
      w.u16(o->cls);
      w.u16(static_cast<uint16_t>(o->fields.size()));
      for (const Value& v : o->fields) {
        w.u8(static_cast<uint8_t>(v.tag));
        switch (v.tag) {
          case bc::Ty::I64: w.i64(v.i); break;
          case bc::Ty::F64: w.f64(v.d); break;
          case bc::Ty::Ref: w.u32(translate(v.r)); break;
          case bc::Ty::Void: SOD_UNREACHABLE("void field");
        }
      }
    } else if (const auto* ai = std::get_if<svm::ArrICell>(&c)) {
      w.u8(2);
      w.u32(static_cast<uint32_t>(ai->v.size()));
      for (int64_t x : ai->v) w.i64(x);
    } else if (const auto* ad = std::get_if<svm::ArrDCell>(&c)) {
      w.u8(3);
      w.u32(static_cast<uint32_t>(ad->v.size()));
      for (double x : ad->v) w.f64(x);
    } else if (const auto* ar = std::get_if<svm::ArrRCell>(&c)) {
      w.u8(4);
      w.u32(static_cast<uint32_t>(ar->v.size()));
      for (Ref x : ar->v) w.u32(translate(x));
    } else if (const auto* s = std::get_if<svm::StrCell>(&c)) {
      w.u8(5);
      w.str(s->s);
    } else {
      SOD_UNREACHABLE("write-back of empty cell");
    }
  }

  Segment& seg_;
  svm::Heap& heap_;
  CheckpointDeltas* deltas_;
  const svm::Heap* home_heap_;
  std::unordered_map<Ref, uint32_t> created_;
  std::unordered_map<uint32_t, uint64_t> created_digests_;
  std::deque<Ref> queue_;
  int updated_ = 0;
  size_t skipped_bytes_ = 0;
};

class WriteBackApplier {
 public:
  explicit WriteBackApplier(SodNode& home) : home_(home) {}

  Value apply(ByteReader& r) {
    // Pass 1: read records, materialize creations, collect field patches.
    read_section(r);
    read_statics(r);
    Value result{};
    bc::Ty t = static_cast<bc::Ty>(r.u8());
    uint32_t result_ref = 0;
    switch (t) {
      case bc::Ty::I64: result = Value::of_i64(r.i64()); break;
      case bc::Ty::F64: result = Value::of_f64(r.f64()); break;
      case bc::Ty::Ref: result_ref = r.u32(); break;
      case bc::Ty::Void: break;
    }
    read_section(r);  // trailer creations
    resolve_links();
    if (t == bc::Ty::Ref) result = Value::of_ref(resolve(result_ref));
    return result;
  }

  /// Home ref a wire id landed on (valid after apply(); checkpoint capture
  /// uses this to remap temp ids in the captured stack to real home ids).
  Ref resolve(uint32_t wire_ref) {
    if (wire_ref == 0) return bc::kNull;
    if (wire_ref >= WriteBackBuilder::kTempBase) {
      auto it = temp_map_.find(wire_ref);
      SOD_CHECK(it != temp_map_.end(), "dangling temp ref in write-back");
      return it->second;
    }
    return wire_ref;  // existing home ref
  }

 private:
  struct Patch {
    Ref holder;
    uint32_t slot;
    uint32_t wire_ref;
  };

  void read_section(ByteReader& r) {
    while (true) {
      uint8_t tag = r.u8();
      if (tag == kWbEnd) break;
      uint32_t id = r.u32();
      Ref target;
      if (tag == kWbUpdate) {
        target = id;
        read_into(r, target, /*create=*/false);
      } else {
        target = read_into(r, 0, /*create=*/true);
        temp_map_[id] = target;
      }
    }
  }

  Ref read_into(ByteReader& r, Ref target, bool create) {
    svm::Heap& heap = home_.vm().heap();
    uint8_t kind = r.u8();
    switch (kind) {
      case 1: {  // object
        uint16_t cls = r.u16();
        uint16_t n = r.u16();
        if (create) {
          home_.vm().ensure_loaded(cls);
          target = heap.alloc_obj(cls, home_.vm().inst_slot_types(cls));
          SOD_CHECK(target != bc::kNull, "home heap exhausted in write-back");
        }
        auto& o = heap.obj(target);
        SOD_CHECK(o.fields.size() == n, "write-back field count mismatch");
        for (uint16_t i = 0; i < n; ++i) {
          bc::Ty t = static_cast<bc::Ty>(r.u8());
          switch (t) {
            case bc::Ty::I64: o.fields[i] = Value::of_i64(r.i64()); break;
            case bc::Ty::F64: o.fields[i] = Value::of_f64(r.f64()); break;
            case bc::Ty::Ref: patches_.push_back(Patch{target, i, r.u32()}); break;
            case bc::Ty::Void: SOD_UNREACHABLE("void field");
          }
        }
        return target;
      }
      case 2: {
        uint32_t n = r.u32();
        if (create) target = heap.alloc_arr_i(n);
        auto& a = heap.arr_i(target);
        SOD_CHECK(a.v.size() == n, "write-back i64 array size mismatch");
        for (auto& x : a.v) x = r.i64();
        return target;
      }
      case 3: {
        uint32_t n = r.u32();
        if (create) target = heap.alloc_arr_d(n);
        auto& a = heap.arr_d(target);
        SOD_CHECK(a.v.size() == n, "write-back f64 array size mismatch");
        for (auto& x : a.v) x = r.f64();
        return target;
      }
      case 4: {
        uint32_t n = r.u32();
        if (create) target = heap.alloc_arr_r(n);
        auto& a = heap.arr_r(target);
        SOD_CHECK(a.v.size() == n, "write-back ref array size mismatch");
        for (uint32_t i = 0; i < n; ++i)
          patches_.push_back(Patch{target, i | 0x40000000u, r.u32()});
        return target;
      }
      case 5: {
        std::string s = r.str();
        if (create) {
          target = heap.alloc_str(std::move(s));
        } else {
          // strings are immutable; nothing to update
        }
        return target;
      }
    }
    SOD_UNREACHABLE("bad write-back cell kind");
  }

  void read_statics(ByteReader& r) {
    uint16_t nclasses = r.u16();
    for (uint16_t k = 0; k < nclasses; ++k) {
      uint16_t cls = r.u16();
      uint16_t n = r.u16();
      home_.vm().ensure_loaded(cls);
      for (uint16_t i = 0; i < n; ++i) {
        bc::Ty t = static_cast<bc::Ty>(r.u8());
        switch (t) {
          case bc::Ty::I64:
            static_vals_.push_back({cls, i, Value::of_i64(r.i64()), 0, false});
            break;
          case bc::Ty::F64:
            static_vals_.push_back({cls, i, Value::of_f64(r.f64()), 0, false});
            break;
          case bc::Ty::Ref: static_vals_.push_back({cls, i, Value{}, r.u32(), true}); break;
          case bc::Ty::Void: SOD_UNREACHABLE("void static");
        }
      }
    }
  }

  void resolve_links() {
    svm::Heap& heap = home_.vm().heap();
    for (const Patch& p : patches_) {
      Ref v = resolve(p.wire_ref);
      if (p.slot & 0x40000000u) {
        heap.arr_r(p.holder).v[p.slot & ~0x40000000u] = v;
      } else {
        heap.obj(p.holder).fields[p.slot] = Value::of_ref(v);
      }
    }
    // Statics: primitives update unconditionally; ref statics only when
    // the worker actually holds a resolvable object (a null at the worker
    // usually means "never fetched", not "cleared").
    for (const auto& sv : static_vals_) {
      uint16_t fid = find_static_field(sv.cls, sv.slot);
      if (fid == bc::kNoId) continue;
      if (!sv.is_ref) {
        home_.vm().set_static(fid, sv.val);
      } else if (sv.wire_ref != 0) {
        home_.vm().set_static(fid, Value::of_ref(resolve(sv.wire_ref)));
      }
    }
  }

  uint16_t find_static_field(uint16_t cls, uint16_t slot) const {
    for (uint16_t fid : home_.program().cls(cls).field_ids) {
      const bc::Field& f = home_.program().field(fid);
      if (f.is_static && f.slot == slot) return fid;
    }
    return bc::kNoId;
  }

  struct StaticVal {
    uint16_t cls;
    uint16_t slot;
    Value val;
    uint32_t wire_ref;
    bool is_ref;
  };

  SodNode& home_;
  std::unordered_map<uint32_t, Ref> temp_map_;
  std::vector<Patch> patches_;
  std::vector<StaticVal> static_vals_;
};

}  // namespace

WriteBackReport write_back(Segment& seg, SodNode& home, int home_tid, int frames_to_pop,
                           Value result, sim::Link link) {
  WriteBackReport rep;
  SodNode& dest = seg.dest();

  ByteWriter w;
  WriteBackBuilder builder(seg);
  builder.build(w, result);
  rep.bytes = w.size();
  rep.objects_updated = builder.updated();
  rep.objects_created = builder.created();

  // Serialize at the worker, ship, apply at home.
  dest.node().charge_host(dest.serde().cost(w.size(), rep.objects_updated + rep.objects_created));
  sim::deliver(dest.node(), home.node(), link, w.size());
  home.node().charge_host(home.serde().cost(w.size()));

  ByteReader r(w.bytes());
  WriteBackApplier applier(home);
  Value home_result = applier.apply(r);
  rep.home_result = home_result;

  // Pop the outdated frames; the last pop delivers the return value.  A
  // frames_to_pop of 0 is an updates-only write-back (multi-segment
  // dispatch: upper segments ship their objects home, only the bottom
  // segment resumes the home thread).
  if (frames_to_pop > 0) {
    auto& ti = home.ti();
    for (int i = 0; i < frames_to_pop - 1; ++i) ti.pop_frame(home_tid);
    ti.force_early_return(home_tid, home_result);
  }
  home.sync_ti_cost();
  return rep;
}

// ------------------------------------------------------------- checkpoints

SegmentCheckpoint checkpoint_segment(Segment& seg, SodNode& home, sim::Link link,
                                     CheckpointDeltas& deltas, bool apply_at_home) {
  SodNode& dest = seg.dest();
  auto& vm = dest.vm();
  auto& ti = dest.ti();
  const bc::Program& P = dest.program();
  int tid = seg.tid();
  int depth = ti.get_stack_depth(tid);
  SOD_CHECK(depth >= 1, "checkpoint of a finished segment");

  SegmentCheckpoint out;
  CapturedState& cs = out.state;
  cs.home_refs = true;
  WriteBackBuilder builder(seg, &deltas, &home.vm().heap());

  // Translate a worker-local ref into its home id (queuing locally created
  // objects for shipment); the wire id may still be a temp, remapped after
  // the heap flush lands at home.
  auto wire_ref = [&](Ref local) -> Value {
    if (local == bc::kNull) return Value::null();
    uint32_t wire = builder.translate(local);
    return wire == 0 ? Value::null() : Value::of_ref(wire);
  };

  // Walk the whole in-flight stack through the tool interface, exactly as
  // capture_segment does at home: frames[0] = deepest frame.  The top
  // frame sits at the MSP run_chunk coasted to; deeper frames resume at
  // the statement of their pending INVOKE.
  for (int d = depth - 1; d >= 0; --d) {
    vmti::FrameLocation loc = ti.get_frame_location(tid, d);
    const Method& m = P.method(loc.method);
    CapturedFrame cf;
    cf.method = loc.method;
    if (d == 0) {
      SOD_CHECK(m.is_stmt_start(loc.pc), "checkpoint not at an MSP");
      cf.pc = loc.pc;
    } else {
      uint32_t invoke_pc = loc.pc - 3;  // INVOKE is op + u16
      SOD_CHECK(static_cast<bc::Op>(m.code[invoke_pc]) == bc::Op::INVOKE,
                "checkpointed frame not at an INVOKE");
      cf.pc = m.stmt_at_or_before(invoke_pc);
      cf.pending_callee = static_cast<uint16_t>(bc::decode(m.code, invoke_pc).arg);
    }
    const auto& vt = ti.get_local_variable_table(loc.method);
    cf.locals.assign(m.num_locals, Value::of_i64(0));
    for (const auto& var : vt) {
      Value v = ti.get_local(tid, d, var.slot);
      cf.locals[var.slot] = var.type == bc::Ty::Ref ? wire_ref(v.r) : v;
    }
    cs.frames.push_back(std::move(cf));
  }

  // Statics of classes loaded at the worker, refs translated the same way.
  for (const auto& c : P.classes) {
    if (!vm.class_loaded(c.id) || c.num_static_slots == 0) continue;
    CapturedStatics st;
    st.cls = c.id;
    st.values.assign(c.num_static_slots, Value::of_i64(0));
    for (uint16_t fid : c.field_ids) {
      const bc::Field& f = P.field(fid);
      if (!f.is_static) continue;
      Value v = ti.get_static_field(fid);
      st.values[f.slot] = f.type == bc::Ty::Ref ? wire_ref(v.r) : v;
    }
    cs.statics.push_back(std::move(st));
  }
  dest.sync_ti_cost();

  // Heap flush: changed + created objects (and current statics) go home as
  // an updates-only write-back message; unchanged objects are skipped by
  // the delta tracker and cost nothing on the wire.
  ByteWriter w;
  builder.build(w, Value{});
  out.heap_bytes = w.size();
  out.full_heap_bytes = w.size() + builder.skipped_bytes();
  out.objects_shipped = builder.updated() + builder.created();
  out.state_bytes = cs.wire_size();

  dest.node().charge_host(dest.serde().cost(out.state_bytes + w.size(),
                                            out.objects_shipped + depth));
  sim::deliver(dest.node(), home.node(), link, out.state_bytes + w.size());
  home.node().charge_host(home.serde().cost(w.size()));

  // Restart-from-capture mode records the checkpoint without absorbing
  // its heap flush: a later restart re-executes against home's pristine
  // state, so nothing is double-applied.  (Resume and speculation need
  // the flush applied — they restore against home's current objects.)
  if (!apply_at_home) return out;

  ByteReader r(w.bytes());
  WriteBackApplier applier(home);
  applier.apply(r);

  // Creations now have real home ids: remap temp wire ids in the captured
  // state, seed the delta tracker, and adopt the (home, local) identities
  // so the final write-back updates these objects instead of re-creating
  // them.
  auto remap = [&](Value& v) {
    if (v.tag != bc::Ty::Ref || v.r < WriteBackBuilder::kTempBase) return;
    v = Value::of_ref(applier.resolve(v.r));
  };
  for (auto& f : cs.frames)
    for (auto& v : f.locals) remap(v);
  for (auto& st : cs.statics)
    for (auto& v : st.values) remap(v);
  for (const auto& [local, temp] : builder.created_map())
    seg.objman().adopt_mapping(applier.resolve(temp), local);
  for (const auto& [temp, digest] : builder.created_digests())
    deltas.digest[applier.resolve(temp)] = digest;
  return out;
}

// ---------------------------------------------------------------- triggers

bool pause_at_depth(SodNode& node, int tid, uint16_t method, int depth) {
  auto& vm = node.vm();
  auto& ti = node.ti();
  ti.set_debug_enabled(true);
  ti.set_breakpoint(method, 0);
  while (true) {
    svm::RunResult rr = node.run_guest(tid);
    if (rr.reason == StopReason::Done || rr.reason == StopReason::Crashed) {
      ti.clear_breakpoint(method, 0);
      ti.set_debug_enabled(false);
      node.sync_ti_cost();
      return false;
    }
    SOD_CHECK(rr.reason == StopReason::Breakpoint, "unexpected stop while seeking depth");
    if (static_cast<int>(vm.thread(tid).frames.size()) >= depth) {
      ti.clear_breakpoint(method, 0);
      node.sync_ti_cost();
      return true;  // paused at method entry == MSP 0, debug stays on
    }
  }
}

bool pause_at_next_msp(SodNode& node, int tid) {
  auto& vm = node.vm();
  node.ti().set_debug_enabled(true);
  vm.request_safepoint(true);
  svm::RunResult rr = node.run_guest(tid);
  vm.request_safepoint(false);
  node.sync_ti_cost();
  return rr.reason == StopReason::SafePoint;
}

int max_migratable_frames(SodNode& node, int tid, const std::vector<uint16_t>& pinned_methods) {
  const auto& frames = node.vm().thread(tid).frames;
  int n = 0;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    bool pinned = false;
    for (uint16_t m : pinned_methods)
      if (it->method == m) pinned = true;
    if (pinned) break;
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------- offload

OffloadOutcome offload_and_return(SodNode& home, int home_tid, int nframes, SodNode& dest,
                                  sim::Link link) {
  OffloadOutcome out;

  // Capture.
  VDur t0 = home.node().clock.now();
  CapturedState cs = capture_segment(home, home_tid, SegmentSpec{0, nframes});
  // The paper disables the debug interface outside migration events.
  home.ti().set_debug_enabled(false);
  home.sync_ti_cost();
  out.timing.state_bytes = cs.wire_size();
  home.node().charge_host(home.serde().cost(out.timing.state_bytes,
                                            static_cast<int>(cs.frames.size())));
  out.timing.capture = home.node().clock.now() - t0;

  // Transfer (state + the top frame's class image is pre-shipped).
  uint16_t top_cls = home.program().method(cs.frames.back().method).owner;
  size_t ship = out.timing.state_bytes + home.program().class_image(top_cls).size();
  dest.mark_class_shipped(top_cls);
  dest.enable_class_fetch(&home, link);
  VDur sent_at = home.node().clock.now();
  sim::deliver(home.node(), dest.node(), link, ship);
  out.timing.transfer = dest.node().clock.now() - sent_at;

  // Restore.
  VDur t2 = dest.node().clock.now();
  Segment seg(dest);
  seg.objman().bind_home(&home, home_tid, static_cast<int>(cs.frames.size()), link);
  seg.restore(cs);
  out.timing.restore = dest.node().clock.now() - t2;
  out.timing.class_bytes = dest.class_bytes_fetched();

  // Execute remotely; object misses fault in on demand.
  Value result = seg.run_to_completion();
  out.faults = seg.objman().stats();

  // Write back + resume home.
  out.writeback = write_back(seg, home, home_tid, nframes, result, link);
  out.result = result;
  return out;
}


// ------------------------------------------------- exception-driven offload

void OffloadGuard::install(SodNode& node) {
  node.registry().bind("offload.trap", [this](svm::VM& vm, std::span<Value> a) {
    trapped_ = true;
    uid_ = a[0].i;
    // The handler's goto lands on the failing statement's MSP next; a
    // safepoint request pauses execution exactly there, capturable.
    vm.set_debug_mode(true);
    vm.request_safepoint(true);
    return Value{};
  });
}

ElasticOutcome run_elastic(SodNode& device, int tid, SodNode& cloud, sim::Link link,
                           OffloadGuard& guard) {
  ElasticOutcome out;
  while (true) {
    svm::RunResult rr = device.run_guest(tid);
    if (rr.reason == StopReason::Done) {
      out.result = device.vm().thread(tid).result;
      return out;
    }
    if (rr.reason == StopReason::Crashed) {
      SOD_UNREACHABLE("elastic run crashed: " +
                      device.vm().exception_message(device.vm().thread(tid).uncaught));
    }
    SOD_CHECK(rr.reason == StopReason::SafePoint, "elastic run: unexpected stop");
    SOD_CHECK(guard.trapped(), "safepoint stop without a trap");
    guard.reset();
    device.vm().request_safepoint(false);

    // Rocket the whole stack into the cloud; the failing allocation
    // retries there with a bigger heap.
    int depth = static_cast<int>(device.vm().thread(tid).frames.size());
    auto o = offload_and_return(device, tid, depth, cloud, link);
    out.offloaded = true;
    out.timing = o.timing;
    device.ti().set_debug_enabled(false);
    // The whole stack migrated: the device thread completed via write-back.
    SOD_CHECK(device.vm().thread(tid).status == svm::ThreadStatus::Done,
              "elastic offload did not complete the thread");
    out.result = device.vm().thread(tid).result;
    return out;
  }
}

}  // namespace sod::mig
