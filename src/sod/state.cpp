#include "sod/state.h"

namespace sod::mig {

namespace {

void write_value(ByteWriter& w, const Value& v, bool home_refs) {
  w.u8(static_cast<uint8_t>(v.tag));
  switch (v.tag) {
    case Ty::I64: w.i64(v.i); break;
    case Ty::F64: w.f64(v.d); break;
    case Ty::Ref:
      // Captured-at-home states only record null vs "remote" (one byte);
      // checkpoint states carry the real home-heap id.
      if (home_refs) {
        w.u32(v.r);
      } else {
        w.u8(v.r != bc::kNull ? 1 : 0);
      }
      break;
    case Ty::Void: SOD_UNREACHABLE("void value");
  }
}

Value read_value(ByteReader& r, bool home_refs) {
  Ty t = static_cast<Ty>(r.u8());
  switch (t) {
    case Ty::I64: return Value::of_i64(r.i64());
    case Ty::F64: return Value::of_f64(r.f64());
    case Ty::Ref:
      if (home_refs) {
        Ref id = r.u32();
        return id != bc::kNull ? Value::of_ref(id) : Value::null();
      }
      return r.u8() ? Value::of_ref(kRemoteMark) : Value::null();
    case Ty::Void: break;
  }
  SOD_UNREACHABLE("bad value tag");
}

}  // namespace

void CapturedState::serialize(ByteWriter& w) const {
  w.u8(home_refs ? 1 : 0);
  w.u16(static_cast<uint16_t>(frames.size()));
  for (const auto& f : frames) {
    w.u16(f.method);
    w.u32(f.pc);
    w.u16(f.pending_callee);
    w.u16(static_cast<uint16_t>(f.locals.size()));
    for (const auto& v : f.locals) write_value(w, v, home_refs);
  }
  w.u16(static_cast<uint16_t>(statics.size()));
  for (const auto& s : statics) {
    w.u16(s.cls);
    w.u16(static_cast<uint16_t>(s.values.size()));
    for (const auto& v : s.values) write_value(w, v, home_refs);
  }
}

CapturedState CapturedState::deserialize(ByteReader& r) {
  CapturedState cs;
  cs.home_refs = r.u8() != 0;
  uint16_t nf = r.u16();
  cs.frames.resize(nf);
  for (auto& f : cs.frames) {
    f.method = r.u16();
    f.pc = r.u32();
    f.pending_callee = r.u16();
    uint16_t nl = r.u16();
    f.locals.resize(nl);
    for (auto& v : f.locals) v = read_value(r, cs.home_refs);
  }
  uint16_t ns = r.u16();
  cs.statics.resize(ns);
  for (auto& s : cs.statics) {
    s.cls = r.u16();
    uint16_t nv = r.u16();
    s.values.resize(nv);
    for (auto& v : s.values) v = read_value(r, cs.home_refs);
  }
  return cs;
}

size_t CapturedState::wire_size() const {
  ByteWriter w;
  serialize(w);
  return w.size();
}

}  // namespace sod::mig
