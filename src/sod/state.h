// CapturedState — the wire form of a partial execution state (paper
// Fig. 3): a consecutive run of stack frames plus the static fields of
// loaded classes.
//
// Per the paper's design:
//   - the heap is NOT part of the state; reference values (locals, static
//     ref slots, instance fields) are shipped as nulls and fetched on
//     demand through the object manager;
//   - a frame's pc is always a migration-safe point; for non-top frames it
//     is the statement start of the pending INVOKE, which the restoration
//     protocol re-executes to rebuild the next frame;
//   - `pending_callee` records the method a non-top frame was suspended
//     inside, so a later segment can complete that call with
//     ForceEarlyReturn when the upper segment's result arrives.
#pragma once

#include <cstdint>
#include <vector>

#include "bytecode/program.h"
#include "bytecode/types.h"
#include "support/bytes.h"

namespace sod::mig {

using bc::Ref;
using bc::Ty;
using bc::Value;

/// Marker stored in captured Ref slots that were non-null at the home:
/// the restore path materializes them as remote stubs, preserving
/// null-test semantics while keeping heap data home-anchored.
inline constexpr Ref kRemoteMark = 0xFFFFFFFFu;

struct CapturedFrame {
  uint16_t method = 0;
  uint32_t pc = 0;  ///< MSP to resume at
  /// One value per local slot; Ref slots are null (fetched on demand).
  std::vector<Value> locals;
  /// Method the frame's pending INVOKE targets (kNoId when captured at a
  /// plain MSP, i.e. the thread's top frame).
  uint16_t pending_callee = bc::kNoId;
};

struct CapturedStatics {
  uint16_t cls = 0;
  /// One value per static slot; Ref slots are null.
  std::vector<Value> values;
};

struct CapturedState {
  /// frames[0] is the segment's *bottom* (deepest) frame; restoration
  /// proceeds bottom-up exactly as in the paper's Fig. 4b.
  std::vector<CapturedFrame> frames;
  std::vector<CapturedStatics> statics;
  /// When true the state is a *checkpoint* of an in-flight segment: ref
  /// slots hold real home-heap ids (the checkpoint flushed its objects
  /// home first), not kRemoteMark.  The restore path materializes them as
  /// stubs carrying the home ref directly, so a checkpoint restores on any
  /// worker without consulting the suspended home frame.
  bool home_refs = false;

  void serialize(ByteWriter& w) const;
  static CapturedState deserialize(ByteReader& r);
  /// Wire size in bytes (what the network is charged for).
  size_t wire_size() const;
};

}  // namespace sod::mig
