#include "sod/objman.h"

#include <algorithm>

namespace sod::mig {

using svm::VM;

void ObjectManager::install(SodNode& worker) {
  worker_ = &worker;
  auto& reg = worker.registry();
  reg.bind("objman.enter", [this](VM& vm, std::span<Value> a) {
    enter(vm, a[0].i);
    return Value{};
  });
  reg.bind("objman.bring_local", [this](VM& vm, std::span<Value> a) {
    bring_local(vm, a[0].i);
    return Value{};
  });
  reg.bind("objman.bring_static", [this](VM& vm, std::span<Value> a) {
    bring_static(vm, a[0].i);
    return Value{};
  });
  reg.bind("objman.bring_field", [this](VM& vm, std::span<Value> a) {
    bring_field(vm, a[0].r, a[1].i);
    return Value{};
  });
  reg.bind("objman.bring_elem", [this](VM& vm, std::span<Value> a) {
    bring_elem(vm, a[0].r, a[1].i);
    return Value{};
  });
  // Status-check baseline natives (Fig. 5 B1).
  reg.bind("objman.bring_checked", [this](VM& vm, std::span<Value> a) {
    if (a[0].r == bc::kNull) return Value{};
    const bc::Field& f = vm.program().field(static_cast<uint16_t>(a[1].i));
    vm.heap().obj(a[0].r).fields[f.slot] = Value::of_i64(1);
    ++stats_.faults;
    return Value{};
  });
  reg.bind("objman.bring_class_checked", [this](VM& vm, std::span<Value> a) {
    const bc::Field& f = vm.program().field(static_cast<uint16_t>(a[0].i));
    uint16_t sfid = vm.program().find_field(vm.program().cls(f.owner).name + ".__sstatus");
    if (sfid != bc::kNoId) vm.set_static(sfid, Value::of_i64(1));
    ++stats_.faults;
    return Value{};
  });
  reg.bind("objman.status_probe", [](VM&, std::span<Value>) { return Value::of_i64(1); });
  reg.bind("objman.bring_probe", [](VM&, std::span<Value>) { return Value{}; });
}

void ObjectManager::bind_home(SodNode* home, int home_tid, int seg_len, sim::Link link) {
  home_ = home;
  home_tid_ = home_tid;
  seg_len_ = seg_len;
  link_ = link;
  for (auto& part : home_parts_) part.clear();
  local_map_.clear();
  side_.clear();
  local_stub_origin_.clear();
  static_stub_origin_.clear();
  enter_state_.clear();
}

void ObjectManager::set_shard_map(const HomeShardMap* map) {
  shard_map_ = map;
  home_parts_.assign(map != nullptr ? static_cast<size_t>(map->shards()) : 1, {});
  local_map_.clear();
}

std::vector<std::pair<Ref, Ref>> ObjectManager::home_entries() const {
  std::vector<std::pair<Ref, Ref>> out;
  out.reserve(local_map_.size());
  for (const auto& part : home_parts_)
    for (const auto& [home_ref, local_ref] : part) out.emplace_back(home_ref, local_ref);
  std::sort(out.begin(), out.end());
  return out;
}

size_t ObjectManager::home_size() const {
  size_t n = 0;
  for (const auto& part : home_parts_) n += part.size();
  return n;
}

Ref ObjectManager::local_of_home(Ref home_ref) const {
  const auto& part = home_part(home_ref);
  auto it = part.find(home_ref);
  return it == part.end() ? bc::kNull : it->second;
}

void ObjectManager::register_local_stub(Ref stub, int frame_idx, uint16_t slot) {
  local_stub_origin_[stub] = {frame_idx, slot};
}

void ObjectManager::register_static_stub(Ref stub, uint16_t field_id) {
  static_stub_origin_[stub] = field_id;
}

Ref ObjectManager::resolve_stub_home(Ref stub) {
  SOD_CHECK(worker_, "resolve_stub_home without worker");
  Ref direct = worker_->vm().heap().stub_home(stub);
  if (direct != bc::kNull) return direct;
  if (!home_) return bc::kNull;
  // Origin lookups are worker-local; only the tool-interface read on home
  // runs inside a gate section (keyed by the field / slot the stub stands
  // for — any stable key works, it only picks the stripe).
  if (auto sit = static_stub_origin_.find(stub); sit != static_stub_origin_.end()) {
    GateSection gate(home_gate_, HomeShardMap::key_class(sit->second));
    Value hv = home_->ti().get_static_field(sit->second);
    home_->sync_ti_cost();
    return hv.tag == bc::Ty::Ref ? hv.r : bc::kNull;
  }
  auto it = local_stub_origin_.find(stub);
  if (it == local_stub_origin_.end()) return bc::kNull;
  auto [frame_idx, slot] = it->second;
  if (frame_idx >= seg_len_) return bc::kNull;
  int home_depth = seg_len_ - 1 - frame_idx;
  GateSection gate(home_gate_, HomeShardMap::key_segment(frame_idx, slot));
  Value hv = home_->ti().get_local(home_tid_, home_depth, slot);
  home_->sync_ti_cost();
  return hv.tag == bc::Ty::Ref ? hv.r : bc::kNull;
}

Ref ObjectManager::fetch(Ref home_ref) {
  SOD_CHECK(home_ && worker_, "fetch without home binding");
  if (Ref cached = local_of_home(home_ref); cached != bc::kNull) return cached;
  GateSection gate(home_gate_, HomeShardMap::key_ref(home_ref));

  // Home side: locate the object and (with prefetch) its neighbourhood up
  // to prefetch_depth_ hops; everything rides one response message.
  home_->ti().resolve_object(home_ref);
  VDur locate = home_->ti().spent();
  home_->ti().reset_spent();

  svm::Heap& hh = home_->vm().heap();
  std::vector<Ref> batch{home_ref};
  {
    std::unordered_map<Ref, int> depth_of{{home_ref, 0}};
    size_t scan = 0;
    while (scan < batch.size()) {
      Ref cur = batch[scan++];
      int d = depth_of[cur];
      if (d >= prefetch_depth_) continue;
      const svm::Cell& c = hh.cell(cur);
      auto visit = [&](Ref child) {
        if (child == bc::kNull || depth_of.count(child) ||
            local_of_home(child) != bc::kNull)
          return;
        depth_of[child] = d + 1;
        batch.push_back(child);
      };
      if (const auto* o = std::get_if<svm::ObjCell>(&c)) {
        for (const Value& v : o->fields)
          if (v.tag == bc::Ty::Ref) visit(v.r);
      } else if (const auto* ar = std::get_if<svm::ArrRCell>(&c)) {
        for (Ref x : ar->v) visit(x);
      }
    }
  }

  ByteWriter w;
  w.u16(static_cast<uint16_t>(batch.size()));
  for (Ref r : batch) {
    w.u32(r);
    hh.serialize_shallow(r, w);
  }

  // Round trip: request (small) + the whole batch back.
  VDur home_service =
      locate + home_->serde().cost(w.size(), static_cast<int>(batch.size()));
  sim::round_trip(worker_->node(), home_->node(), link_, 64, w.size(), home_service);
  // Home is done: drop the ordered path and serve the wall twin of the
  // home-side work holding only this ref's stripe — fetches of objects on
  // other shards proceed meanwhile.
  gate.service(home_service);

  ByteReader r(w.bytes());
  uint16_t n = r.u16();
  Ref first = bc::kNull;
  for (uint16_t i = 0; i < n; ++i) {
    Ref home_id = r.u32();
    Ref local = worker_->vm().heap().deserialize_shallow(
        r, [this](Ref holder, uint32_t slot, Ref home_embedded) {
          side_[side_key(holder, slot)] = home_embedded;
        });
    SOD_CHECK(local != bc::kNull, "worker heap exhausted during object fetch");
    home_part(home_id)[home_id] = local;
    local_map_[local] = home_id;
    if (i == 0) first = local;
    else ++stats_.prefetched;
  }
  worker_->node().charge_host(worker_->serde().cost(w.size(), n));
  ++stats_.faults;
  stats_.bytes += w.size();
  return first;
}

void ObjectManager::bring_local(VM& vm, int64_t slot) {
  svm::Frame* f = vm.native_frame();
  SOD_CHECK(f, "bring_local outside native dispatch");
  SOD_CHECK(slot >= 0 && static_cast<size_t>(slot) < f->locals.size(), "bad bring_local slot");
  Value& v = f->locals[static_cast<size_t>(slot)];
  if (v.tag != bc::Ty::Ref) return;
  // Present: non-null and not a remote stub.
  if (v.r != bc::kNull && !vm.heap().is_stub(v.r)) return;

  if (v.r != bc::kNull && home_) {  // remote stub
    Ref home_ref = resolve_stub_home(v.r);
    if (home_ref != bc::kNull) {
      v = Value::of_ref(fetch(home_ref));
      ++repairs_done_;
      return;
    }
  }
  // Application-level null (or unresolvable): pass the NPE through.
  ++stats_.app_npe_rethrown;
  vm.throw_guest(bc::builtin::kNullPointer, "local slot " + std::to_string(slot));
}

void ObjectManager::bring_static(VM& vm, int64_t field_id) {
  const bc::Field& fd = vm.program().field(static_cast<uint16_t>(field_id));
  Value cur = vm.get_static(fd.id);
  if (cur.tag != bc::Ty::Ref) return;
  if (cur.r != bc::kNull && !vm.heap().is_stub(cur.r)) return;

  if (cur.r != bc::kNull && home_) {  // remote stub standing for the home static
    Value hv;
    {
      // The gate section covers only the home static read: fetch() below
      // opens its own section keyed by the target ref, and holding this
      // stripe across it would nest two stripes (the deadlock the lock
      // order forbids).
      GateSection gate(home_gate_, HomeShardMap::key_class(fd.id));
      hv = home_->ti().get_static_field(fd.id);
      home_->sync_ti_cost();
    }
    if (hv.tag == bc::Ty::Ref && hv.r != bc::kNull) {
      vm.set_static(fd.id, Value::of_ref(fetch(hv.r)));
      ++repairs_done_;
      return;
    }
  }
  ++stats_.app_npe_rethrown;
  vm.throw_guest(bc::builtin::kNullPointer, fd.name);
}

void ObjectManager::bring_field(VM& vm, Ref base, int64_t field_id) {
  const bc::Field& fd = vm.program().field(static_cast<uint16_t>(field_id));
  if (base == bc::kNull || vm.heap().is_stub(base)) {
    // The base itself is unrepaired; its own repair (emitted earlier in
    // the handler) must have failed -> application-level.
    vm.throw_guest(bc::builtin::kNullPointer, fd.name);
    return;
  }
  Value& v = vm.heap().obj(base).fields[fd.slot];
  if (v.tag != bc::Ty::Ref) return;
  if (v.r != bc::kNull && !vm.heap().is_stub(v.r)) return;

  if (v.r != bc::kNull && home_) {  // stub carries the home ref
    Ref home_ref = vm.heap().stub_home(v.r);
    if (home_ref != bc::kNull) {
      v = Value::of_ref(fetch(home_ref));
      ++repairs_done_;
      return;
    }
  }
  ++stats_.app_npe_rethrown;
  vm.throw_guest(bc::builtin::kNullPointer, fd.name);
}

void ObjectManager::bring_elem(VM& vm, Ref base, int64_t idx) {
  if (base == bc::kNull || vm.heap().is_stub(base)) {
    vm.throw_guest(bc::builtin::kNullPointer, "array");
    return;
  }
  auto& arr = vm.heap().arr_r(base);
  if (idx < 0 || static_cast<size_t>(idx) >= arr.v.size()) return;  // real deref will throw OOB
  Ref& slot = arr.v[static_cast<size_t>(idx)];
  if (slot == bc::kNull) {
    // Genuinely null at the home too (arrays arrive with stubs for
    // non-null elements): let the retry NPE surface as application-level.
    return;
  }
  if (!vm.heap().is_stub(slot)) return;

  Ref home_ref = vm.heap().stub_home(slot);
  if (home_ref != bc::kNull && home_) {
    slot = fetch(home_ref);
    ++repairs_done_;
    return;
  }
  ++stats_.app_npe_rethrown;
  vm.throw_guest(bc::builtin::kNullPointer, "array element " + std::to_string(idx));
}

void ObjectManager::enter(VM& vm, int64_t uid) {
  EnterState& st = enter_state_[vm.native_tid()];
  if (st.uid == uid && st.fetches == repairs_done_) {
    ++stats_.app_npe_rethrown;
    st.uid = -1;
    vm.throw_guest(bc::builtin::kNullPointer, "null dereference (application)");
    return;
  }
  st.uid = uid;
  st.fetches = repairs_done_;
}

}  // namespace sod::mig
