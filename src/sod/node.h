// SodNode — one participating machine in a SODEE deployment: a simulated
// node (virtual clock, CPU profile) hosting a worker VM with its native
// registry, standard library, tool interface, and optional file mounts.
//
// Guest execution goes through run_guest(), which charges the node's
// virtual clock with interpreted-instruction cost (respecting the
// debug-mode penalty — the paper's mixed-mode JVMTI slowdown), any virtual
// cost natives charged (file reads), and accumulated tool-interface call
// costs.
#pragma once

#include <memory>
#include <unordered_set>
#include <string>

#include "sfs/sfs.h"
#include "sod/homegate.h"
#include "sim/net.h"
#include "svm/natives.h"
#include "svm/vm.h"
#include "vmti/vmti.h"

namespace sod::mig {

class SodNode {
 public:
  struct Config {
    double cpu_scale = 1.0;
    VDur instr_cost = VDur::nanos(2);
    double debug_multiplier = 10.0;
    size_t heap_limit_bytes = 0;
    vmti::CostModel vmti_costs{};
    sim::SerdeModel serde{};
    /// The paper's iPhone path: no JVMTI on the device; restoration runs
    /// as pure guest-level work (Java reflection), multiplying restore
    /// cost (Table VII).
    bool java_level_restore = false;
  };

  SodNode(std::string name, const bc::Program& prog, Config cfg);

  const std::string& name() const { return node_.name; }
  sim::Node& node() { return node_; }
  const Config& config() const { return cfg_; }
  const bc::Program& program() const { return *prog_; }
  svm::VM& vm() { return *vm_; }
  vmti::ToolInterface& ti() { return *ti_; }
  svm::NativeRegistry& registry() { return reg_; }
  svm::StdLib& stdlib() { return stdlib_; }
  sim::SerdeModel serde() const { return cfg_.serde; }

  /// Run guest code, charging the node clock; returns the VM's result.
  svm::RunResult run_guest(int tid, uint64_t budget = UINT64_MAX);

  /// Spawn + run to completion with node-clock charging; panics if the
  /// guest crashes (tests that expect crashes use spawn/run_guest).
  bc::Value call_guest(std::string_view entry, std::span<const bc::Value> args);

  /// Move accumulated tool-interface cost onto the node clock.
  void sync_ti_cost();

  /// Mark a class as already shipped (its load won't charge a fetch).
  void mark_class_shipped(uint16_t cls) { shipped_.insert(cls); }
  bool class_shipped(uint16_t cls) const { return shipped_.count(cls) != 0; }

  /// Bytes of class images fetched on demand so far.
  size_t class_bytes_fetched() const { return class_bytes_; }
  /// Virtual time spent in on-demand class fetches (Table VII's t3).
  VDur class_fetch_time() const { return class_fetch_time_; }

  /// Wire up the on-demand class fetch hook against a home node.  When
  /// `gate` is non-null (wall-clock mode) the hook runs inside a gate
  /// section keyed by the class id: the home round trip — and the
  /// shipped-class set it shares with the dispatcher thread — happen on
  /// the gate's ordered path, and the home-side image serialization is
  /// served as a wall sleep holding only the class's stripe.
  void enable_class_fetch(SodNode* home, sim::Link link, HomeGate* gate = nullptr);

 private:
  sim::Node node_;
  const bc::Program* prog_;
  Config cfg_;
  svm::NativeRegistry reg_;
  svm::StdLib stdlib_;
  std::unique_ptr<svm::VM> vm_;
  std::unique_ptr<vmti::ToolInterface> ti_;
  std::unordered_set<uint16_t> shipped_;
  size_t class_bytes_ = 0;
  VDur class_fetch_time_{};
};

}  // namespace sod::mig
