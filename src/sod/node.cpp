#include "sod/node.h"

namespace sod::mig {

SodNode::SodNode(std::string name, const bc::Program& prog, Config cfg)
    : prog_(&prog), cfg_(cfg) {
  node_.name = std::move(name);
  node_.cpu_scale = cfg.cpu_scale;
  node_.instr_cost = cfg.instr_cost;
  node_.debug_multiplier = cfg.debug_multiplier;
  stdlib_.install(reg_);
  svm::VM::Config vc;
  vc.heap_limit_bytes = cfg.heap_limit_bytes;
  vm_ = std::make_unique<svm::VM>(prog, &reg_, vc);
  ti_ = std::make_unique<vmti::ToolInterface>(*vm_, cfg.vmti_costs);
}

svm::RunResult SodNode::run_guest(int tid, uint64_t budget) {
  uint64_t i0 = vm_->instr_count();
  vm_->reset_charged();
  svm::RunResult rr = vm_->run(tid, budget);
  node_.charge_instrs(vm_->instr_count() - i0, vm_->debug_mode());
  node_.clock.advance(vm_->charged());
  vm_->reset_charged();
  sync_ti_cost();
  return rr;
}

bc::Value SodNode::call_guest(std::string_view entry, std::span<const bc::Value> args) {
  uint16_t mid = prog_->find_method(entry);
  SOD_CHECK(mid != bc::kNoId, "call_guest: unknown method " + std::string(entry));
  int tid = vm_->spawn(mid, args);
  svm::RunResult rr = run_guest(tid);
  if (rr.reason == svm::StopReason::Crashed) {
    const auto& th = vm_->thread(tid);
    SOD_UNREACHABLE("guest crashed with " + prog_->cls(vm_->class_of(th.uncaught)).name + ": " +
                    vm_->exception_message(th.uncaught));
  }
  SOD_CHECK(rr.reason == svm::StopReason::Done, "call_guest: did not finish");
  return vm_->thread(tid).result;
}

void SodNode::sync_ti_cost() {
  VDur d = ti_->spent();
  if (d.ns != 0) {
    node_.charge_host(d);
    ti_->reset_spent();
  }
}

void SodNode::enable_class_fetch(SodNode* home, sim::Link link, HomeGate* gate) {
  vm_->on_class_load = [this, home, link, gate](svm::VM&, uint16_t cls) {
    GateSection section(gate, HomeShardMap::key_class(cls));
    if (class_shipped(cls)) return;
    shipped_.insert(cls);
    size_t img = prog_->class_image(cls).size();
    class_bytes_ += img;
    // Request/response round trip + home-side serialization cost.
    VDur before = node_.clock.now();
    VDur home_service = home->serde().cost(img);
    sim::round_trip(node_, home->node(), link, 64, img, home_service);
    class_fetch_time_ += node_.clock.now() - before;
    // Image serialization served on the class's stripe only: fetches of
    // classes on other home shards overlap this wall window.
    section.service(home_service);
  };
}

}  // namespace sod::mig
