// Migration manager — the SOD protocol (paper Sections III.A–III.B).
//
//   capture   : suspend at a migration-safe point, walk the top segment of
//               frames through the tool interface (GetFrameLocation,
//               GetLocal<T> ...), null out references, save statics.
//   transfer  : ship CapturedState (+ the top frame's class image) to the
//               destination over a simulated link.
//   restore   : breakpoint-and-exception driven, frame by frame (Fig. 4b):
//               breakpoint at the method entry, throw InvalidStateException,
//               the injected handler re-reads locals + pc and jumps; the
//               re-executed statement re-invokes the next frame's method.
//   run       : fast mode; object misses repair themselves through the
//               object manager's fault natives.
//   write-back: updated objects + the segment's return value go home; home
//               pops the outdated frames with PopFrame/ForceEarlyReturn and
//               resumes the residual stack.
//
// Segment::deliver() implements the multi-segment flows of Fig. 1(b)/(c):
// a lower segment restored elsewhere completes its pending call with the
// upper segment's result via breakpoint + ForceEarlyReturn.
#pragma once

#include <optional>
#include <unordered_map>

#include "sod/objman.h"

namespace sod::mig {

struct MigrationTiming {
  VDur capture{};
  VDur transfer{};
  VDur restore{};
  size_t state_bytes = 0;
  size_t class_bytes = 0;
  VDur latency() const { return capture + transfer + restore; }
};

/// Home frame depths [depth_lo, depth_hi), 0 = top of stack.
struct SegmentSpec {
  int depth_lo = 0;
  int depth_hi = 1;
  int len() const { return depth_hi - depth_lo; }
};

/// Capture a segment from a paused thread.  The thread's *top* frame must
/// be at an MSP when depth_lo == 0; deeper frames are always capturable
/// (their pc maps to the statement of their pending INVOKE).
CapturedState capture_segment(SodNode& home, int home_tid, SegmentSpec seg);

/// One migrated segment living on a destination node.
class Segment {
 public:
  explicit Segment(SodNode& dest);

  /// Restore `cs` on the destination (breakpoint + InvalidStateException
  /// protocol).  Leaves the thread ready: run() executes it.
  void restore(const CapturedState& cs);

  /// For lower segments (Fig. 1b/1c): run until the pending call of the
  /// restored top frame is re-invoked, then complete it with `v`.
  void deliver(Value v);

  /// Run to completion in fast mode; returns the segment bottom frame's
  /// return value.
  Value run_to_completion();

  /// Chunked execution (the checkpoint/speculation driver): run at most
  /// `budget` guest instructions in fast mode; when the budget expires,
  /// coast under the debug interpreter to the next migration-safe point
  /// (the paper's mixed-mode switch around migration events).  Returns
  /// Done (finished, see result()) or SafePoint (paused at an MSP, the
  /// thread is checkpointable via checkpoint_segment).
  svm::StopReason run_chunk(uint64_t budget);

  /// Bottom-frame return value once a run reported Done.
  Value result() const;

  int tid() const { return tid_; }
  SodNode& dest() { return *dest_; }
  ObjectManager& objman() { return om_; }

 private:
  struct Cursor {
    const CapturedFrame* frame = nullptr;
    bool home_refs = false;
  };
  void install_cs_natives();

  SodNode* dest_;
  ObjectManager om_;
  Cursor cursor_;
  int tid_ = -1;
  uint16_t pending_callee_ = bc::kNoId;
  bool debug_held_ = false;
};

/// Ship updated objects + result home; pop the segment's outdated frames
/// (ForceEarlyReturn); returns the result value translated into home refs.
/// After this the home thread is runnable (or Done if the segment was the
/// whole stack).  With frames_to_pop == 0 the home stack is left untouched
/// — an updates-only write-back, used by cluster dispatch for the upper
/// segments of a multi-segment split.
struct WriteBackReport {
  size_t bytes = 0;
  int objects_updated = 0;
  int objects_created = 0;
  /// The result value translated into home refs (applying the write-back
  /// materializes created objects, so a ref result is a live home
  /// object).  The cluster scheduler records it in its ref-forwarding
  /// table to chain ref results across workers without re-shipping the
  /// payload.
  Value home_result{};
};
WriteBackReport write_back(Segment& seg, SodNode& home, int home_tid, int frames_to_pop,
                           Value result, sim::Link link);

/// --- segment checkpointing (resumable in-flight segments) ---

/// Per-attempt incremental-transfer state: the digest of each home
/// object's payload as of the last checkpoint.  A later checkpoint ships
/// only objects whose payload digest changed (plus anything newly
/// created), so the virtual clock is charged for the delta, not the full
/// fetched set.
struct CheckpointDeltas {
  std::unordered_map<Ref, uint64_t> digest;
};

/// One checkpoint of an in-flight segment, taken at a migration-safe
/// point (after Segment::run_chunk returned SafePoint).  The worker's
/// heap changes are flushed home first (an updates-only write-back with
/// delta sizing — unchanged payloads, including objects fetched and never
/// mutated, ship nothing), locally created objects are assigned home ids
/// and adopted into the object manager, and the full stack + statics are
/// captured with every reference translated to its home id
/// (state.home_refs) — so the checkpoint restores on *any* worker.
/// Applying a checkpoint's heap flush is idempotent against the final
/// write-back: both ship current field values keyed by home ref.
///
/// With `apply_at_home == false` the checkpoint is recorded (and its
/// capture/wire costs charged) but its heap flush is NOT absorbed into
/// the home heap/statics: the restart-from-capture recovery mode uses
/// this so a restarted attempt re-executes against home's pristine state
/// instead of observing its own partial mutations (which would
/// double-apply).  A state recorded this way is not restorable.
struct SegmentCheckpoint {
  CapturedState state;         ///< home_refs == true
  size_t state_bytes = 0;      ///< wire size of the stack + statics state
  size_t heap_bytes = 0;       ///< object payload actually shipped (the delta)
  size_t full_heap_bytes = 0;  ///< payload a non-incremental checkpoint would ship
  int objects_shipped = 0;     ///< updates + creations that travelled
};
SegmentCheckpoint checkpoint_segment(Segment& seg, SodNode& home, sim::Link link,
                                     CheckpointDeltas& deltas, bool apply_at_home = true);

/// --- migration triggers (policy helpers) ---

/// Run until the thread's frame count reaches `depth` with the top frame
/// at its method entry (uses a breakpoint on `method`).  Returns false if
/// the thread finished first.
bool pause_at_depth(SodNode& node, int tid, uint16_t method, int depth);

/// Run until the next migration-safe point (safepoint request).
bool pause_at_next_msp(SodNode& node, int tid);

/// Largest migratable top-segment length that keeps every frame running a
/// pinned method (e.g. socket holders) at home.
int max_migratable_frames(SodNode& node, int tid, const std::vector<uint16_t>& pinned_methods);

/// End-to-end single-segment offload: capture top `nframes` of the paused
/// home thread, migrate to dest, execute there, write back, leave home
/// runnable.  The workhorse of Tables II-IV.
struct OffloadOutcome {
  MigrationTiming timing;
  FaultStats faults;
  WriteBackReport writeback;
  Value result{};
};
OffloadOutcome offload_and_return(SodNode& home, int home_tid, int nframes, SodNode& dest,
                                  sim::Link link);

/// --- exception-driven offload (paper Section II.B) ---

/// Binds the offload.trap native: when an injected OutOfMemory handler
/// fires, the VM pauses at the failing statement's MSP with this guard
/// armed.
class OffloadGuard {
 public:
  void install(SodNode& node);
  bool trapped() const { return trapped_; }
  int64_t trap_uid() const { return uid_; }
  void reset() { trapped_ = false; }

 private:
  bool trapped_ = false;
  int64_t uid_ = 0;
};

/// Run `tid` on the (resource-poor) device; if an allocation traps on
/// OutOfMemory, rocket the whole stack into `cloud` and finish there.
/// Requires the program to be preprocessed with offload_handlers = true.
struct ElasticOutcome {
  bool offloaded = false;
  Value result{};
  MigrationTiming timing{};
};
ElasticOutcome run_elastic(SodNode& device, int tid, SodNode& cloud, sim::Link link,
                           OffloadGuard& guard);

}  // namespace sod::mig
