// The three migration systems the paper compares SOD against:
//
//   ProcessMigrator  — G-JavaMPI-style eager-copy process migration: the
//     *whole* stack is captured through the debugger interface and the
//     *entire reachable heap* is serialized with it (Java serialization).
//     Capture/restore scale with frame count and heap size (Table IV),
//     but after migration there are no object faults — which is why it
//     wins on TSP (Table III).
//
//   ThreadMigrator   — JESSICA2-style in-VM thread migration: raw state
//     access inside the VM makes capture almost free, but the VM is a
//     Kaffe-era JIT (~4x slower execution, Table II) and class loading
//     allocates static arrays eagerly, which explodes FFT's restore time
//     (Table IV).  Objects are reached through the distributed object
//     space — modelled with the same on-demand object manager as SOD.
//
//   xen_live_migrate — Xen pre-copy live migration cost model: iterative
//     dirty-page rounds over the guest RAM image; short final freeze but
//     seconds-scale total latency (excluded from the latency table for
//     exactly that reason, included in overhead Tables II/III).
#pragma once

#include "sod/migrate.h"

namespace sod::baselines {

using mig::SodNode;

struct EagerTiming {
  VDur capture{};
  VDur transfer{};
  VDur restore{};
  size_t state_bytes = 0;  ///< frames + (for process migration) heap image
  VDur latency() const { return capture + transfer + restore; }
};

/// G-JavaMPI: eager-copy the full stack + reachable heap + statics.
/// Returns the destination tid through `out_tid`; the home thread is
/// abandoned (its execution continues only at the destination).
EagerTiming process_migrate(SodNode& home, int home_tid, SodNode& dest, sim::Link link,
                            int* out_tid);

/// JESSICA2: in-VM thread migration.  Frames ship (refs become stubs
/// resolved through the object manager); statics' arrays are allocated at
/// class-load time during restore (the FFT blow-up).  `out_om` must
/// outlive execution at the destination (it serves the object faults).
EagerTiming thread_migrate(SodNode& home, int home_tid, SodNode& dest, sim::Link link,
                           int* out_tid, mig::ObjectManager* out_om);

/// Kaffe-era JIT execution-speed multiplier vs the reference JVM.
inline constexpr double kJessica2ExecMultiplier = 4.1;

/// Xen pre-copy live migration model.
struct XenParams {
  size_t ram_bytes = 2ull << 30;         ///< VM instance RAM (paper: 2 GB)
  size_t touched_bytes = 256ull << 20;   ///< pages actually in use
  double dirty_rate_bps = 400e6;         ///< guest dirtying rate
  int max_rounds = 5;
  double exec_multiplier = 2.2;          ///< virtualization overhead (Table II shape)
};

struct XenTiming {
  VDur total_latency{};  ///< start of pre-copy to resume at destination
  VDur freeze{};         ///< stop-and-copy final round only
  size_t bytes = 0;      ///< total bytes moved
};

XenTiming xen_live_migrate(const XenParams& p, sim::Link link);

}  // namespace sod::baselines
