#include "baselines/baselines.h"

#include <unordered_map>

namespace sod::baselines {

using bc::Ref;
using bc::Ty;
using bc::Value;
using svm::Frame;

namespace {

/// Collect every heap root reachable from a thread: ref locals of every
/// frame plus all loaded ref statics.
std::vector<Ref> heap_roots(SodNode& node, int tid) {
  std::vector<Ref> roots;
  for (const Frame& f : node.vm().thread(tid).frames)
    for (const Value& v : f.locals)
      if (v.tag == Ty::Ref && v.r != bc::kNull) roots.push_back(v.r);
  const bc::Program& P = node.program();
  for (const auto& c : P.classes) {
    if (!node.vm().class_loaded(c.id)) continue;
    for (const Value& v : node.vm().statics_of(c.id))
      if (v.tag == Ty::Ref && v.r != bc::kNull) roots.push_back(v.r);
  }
  return roots;
}

/// Static-array allocation charge for class-load-time allocation
/// (JESSICA2): bytes of every ref static reachable array, at ~1.5 GB/s
/// zeroing bandwidth.
VDur static_alloc_cost(SodNode& home) {
  size_t bytes = 0;
  const bc::Program& P = home.program();
  for (const auto& c : P.classes) {
    if (!home.vm().class_loaded(c.id)) continue;
    for (const Value& v : home.vm().statics_of(c.id)) {
      if (v.tag != Ty::Ref || v.r == bc::kNull) continue;
      const svm::Cell& cell = home.vm().heap().cell(v.r);
      if (const auto* ai = std::get_if<svm::ArrICell>(&cell)) bytes += ai->v.size() * 8;
      if (const auto* ad = std::get_if<svm::ArrDCell>(&cell)) bytes += ad->v.size() * 8;
      if (const auto* ar = std::get_if<svm::ArrRCell>(&cell)) bytes += ar->v.size() * 4;
    }
  }
  return VDur::seconds(static_cast<double>(bytes) / 1.5e9);
}

}  // namespace

EagerTiming process_migrate(SodNode& home, int home_tid, SodNode& dest, sim::Link link,
                            int* out_tid) {
  EagerTiming t;
  auto& hvm = home.vm();
  auto& ti = home.ti();
  const bc::Program& P = home.program();

  // --- capture: all frames via the debugger interface + eager heap ---
  VDur t0 = home.node().clock.now();
  int depth = ti.get_stack_depth(home_tid);
  ByteWriter w;
  w.u32(static_cast<uint32_t>(depth));
  for (int d = depth - 1; d >= 0; --d) {
    vmti::FrameLocation loc = ti.get_frame_location(home_tid, d);
    const bc::Method& m = P.method(loc.method);
    w.u16(loc.method);
    w.u32(loc.pc);
    w.u16(m.num_locals);
    for (const auto& var : ti.get_local_variable_table(loc.method)) {
      Value v = ti.get_local(home_tid, d, var.slot);
      w.u8(static_cast<uint8_t>(v.tag));
      switch (v.tag) {
        case Ty::I64: w.i64(v.i); break;
        case Ty::F64: w.f64(v.d); break;
        case Ty::Ref: w.u32(v.r); break;
        case Ty::Void: SOD_UNREACHABLE("void local");
      }
    }
  }
  // statics (eager, by value — refs resolved through the heap graph)
  uint16_t nclasses = 0;
  for (const auto& c : P.classes)
    if (hvm.class_loaded(c.id) && c.num_static_slots > 0) ++nclasses;
  w.u16(nclasses);
  for (const auto& c : P.classes) {
    if (!hvm.class_loaded(c.id) || c.num_static_slots == 0) continue;
    w.u16(c.id);
    for (uint16_t fid : c.field_ids)
      if (P.field(fid).is_static) ti.get_static_field(fid);  // per-slot read cost
    auto vals = hvm.statics_of(c.id);
    w.u16(static_cast<uint16_t>(vals.size()));
    for (const Value& v : vals) {
      w.u8(static_cast<uint8_t>(v.tag));
      switch (v.tag) {
        case Ty::I64: w.i64(v.i); break;
        case Ty::F64: w.f64(v.d); break;
        case Ty::Ref: w.u32(v.r); break;
        case Ty::Void: SOD_UNREACHABLE("void static");
      }
    }
  }
  // the entire reachable heap, Java-serialized
  std::vector<Ref> roots = heap_roots(home, home_tid);
  hvm.heap().serialize_graph(roots, w);
  home.sync_ti_cost();
  home.node().charge_host(home.serde().cost(w.size(), static_cast<int>(roots.size()) + depth));
  t.state_bytes = w.size();
  t.capture = home.node().clock.now() - t0;

  // --- transfer (everything in one message + full program image) ---
  VDur sent = home.node().clock.now();
  size_t ship = w.size() + P.total_image_size();
  for (const auto& c : P.classes) dest.mark_class_shipped(c.id);
  sim::deliver(home.node(), dest.node(), link, ship);
  t.transfer = dest.node().clock.now() - sent;

  // --- restore: deserialize heap, rebuild frames exactly ---
  VDur t2 = dest.node().clock.now();
  ByteReader r(w.bytes());
  uint32_t nframes = r.u32();
  struct RawFrame {
    uint16_t method;
    uint32_t pc;
    std::vector<Value> locals;
  };
  std::vector<RawFrame> raw(nframes);
  for (auto& rf : raw) {
    rf.method = r.u16();
    rf.pc = r.u32();
    uint16_t nl = r.u16();
    rf.locals.resize(nl);
    for (auto& v : rf.locals) {
      Ty tg = static_cast<Ty>(r.u8());
      switch (tg) {
        case Ty::I64: v = Value::of_i64(r.i64()); break;
        case Ty::F64: v = Value::of_f64(r.f64()); break;
        case Ty::Ref: v = Value::of_ref(r.u32()); break;  // home ref, remapped below
        case Ty::Void: SOD_UNREACHABLE("void local");
      }
    }
  }
  struct RawStatics {
    uint16_t cls;
    std::vector<Value> vals;
  };
  uint16_t nst = r.u16();
  std::vector<RawStatics> stat(nst);
  for (auto& s : stat) {
    s.cls = r.u16();
    uint16_t nv = r.u16();
    s.vals.resize(nv);
    for (auto& v : s.vals) {
      Ty tg = static_cast<Ty>(r.u8());
      switch (tg) {
        case Ty::I64: v = Value::of_i64(r.i64()); break;
        case Ty::F64: v = Value::of_f64(r.f64()); break;
        case Ty::Ref: v = Value::of_ref(r.u32()); break;
        case Ty::Void: SOD_UNREACHABLE("void static");
      }
    }
  }
  auto map = dest.vm().heap().deserialize_graph(r);
  auto remap = [&](Value v) {
    if (v.tag != Ty::Ref || v.r == bc::kNull) return v;
    return Value::of_ref(map.at(v.r));
  };
  for (auto& s : stat) {
    dest.vm().ensure_loaded(s.cls);
    for (auto& v : s.vals) v = remap(v);
    dest.vm().overwrite_statics(s.cls, std::move(s.vals));
  }
  std::vector<Frame> frames;
  frames.reserve(nframes);
  for (auto& rf : raw) {
    Frame f;
    f.method = rf.method;
    f.pc = rf.pc;
    f.locals = std::move(rf.locals);
    for (auto& v : f.locals) v = remap(v);
    frames.push_back(std::move(f));
  }
  // Rebuilding frames rides the same debugger interface: SetLocal-grade
  // cost per local slot plus per-frame method re-entry.
  size_t restored_locals = 0;
  for (const auto& rf : raw) restored_locals += rf.locals.size();
  dest.node().charge_host(VDur::micros(30.0 * static_cast<double>(restored_locals) +
                                       60.0 * static_cast<double>(nframes)));
  *out_tid = dest.vm().adopt_frames(std::move(frames));
  dest.node().charge_host(dest.serde().cost(w.size(), static_cast<int>(map.size())));
  dest.sync_ti_cost();
  t.restore = dest.node().clock.now() - t2;
  return t;
}

EagerTiming thread_migrate(SodNode& home, int home_tid, SodNode& dest, sim::Link link,
                           int* out_tid, mig::ObjectManager* om) {
  EagerTiming t;
  const auto& hframes = home.vm().thread(home_tid).frames;
  int depth = static_cast<int>(hframes.size());

  // --- capture: direct in-VM state access (no tool-interface tax) ---
  VDur t0 = home.node().clock.now();
  size_t locals = 0;
  for (const Frame& f : hframes) locals += f.locals.size();
  // ~0.4 us per frame + ~0.05 us per local: raw pointer walks in the JVM.
  home.node().charge_host(VDur::micros(0.4 * depth + 0.05 * static_cast<double>(locals)));
  t.state_bytes = 32 * static_cast<size_t>(depth) + locals * 9 + 64;
  t.capture = home.node().clock.now() - t0;

  // --- transfer ---
  VDur sent = home.node().clock.now();
  sim::deliver(home.node(), dest.node(), link, t.state_bytes);
  t.transfer = dest.node().clock.now() - sent;

  // --- restore: direct frame reconstruction; class loading allocates
  //     static arrays eagerly (the JESSICA2 FFT penalty) ---
  VDur t2 = dest.node().clock.now();
  om->install(dest);
  om->bind_home(&home, home_tid, depth, link);
  std::vector<Frame> frames;
  frames.reserve(hframes.size());
  for (int i = 0; i < depth; ++i) {
    const Frame& hf = hframes[static_cast<size_t>(i)];
    Frame f;
    f.method = hf.method;
    f.pc = hf.pc;
    f.locals.reserve(hf.locals.size());
    for (size_t s = 0; s < hf.locals.size(); ++s) {
      const Value& v = hf.locals[s];
      if (v.tag == Ty::Ref && v.r != bc::kNull) {
        Ref stub = dest.vm().heap().alloc_stub(0);
        om->register_local_stub(stub, i, static_cast<uint16_t>(s));
        f.locals.push_back(Value::of_ref(stub));
      } else {
        f.locals.push_back(v);
      }
    }
    frames.push_back(std::move(f));
  }
  // Statics: primitives copied; ref statics become stubs resolved on use.
  const bc::Program& P = home.program();
  for (const auto& c : P.classes) {
    if (!home.vm().class_loaded(c.id) || c.num_static_slots == 0) continue;
    dest.vm().ensure_loaded(c.id);
    std::vector<Value> vals;
    for (const Value& v : home.vm().statics_of(c.id)) {
      if (v.tag == Ty::Ref && v.r != bc::kNull)
        vals.push_back(Value::of_ref(dest.vm().heap().alloc_stub(v.r)));
      else
        vals.push_back(v);
    }
    dest.vm().overwrite_statics(c.id, std::move(vals));
  }
  *out_tid = dest.vm().adopt_frames(std::move(frames));
  dest.node().charge_host(VDur::micros(0.5 * depth));
  // The distinguishing cost: allocate static arrays at class load.
  dest.node().charge_host(static_alloc_cost(home));
  t.restore = dest.node().clock.now() - t2;
  return t;
}

XenTiming xen_live_migrate(const XenParams& p, sim::Link link) {
  XenTiming t;
  double bw = link.bandwidth_bps / 8.0;  // bytes/s
  // Round 0 ships the touched image; afterwards each round ships what got
  // dirtied while the previous round was in flight.
  double to_send = static_cast<double>(p.touched_bytes);
  double total_time = 0, total_bytes = 0, round_time = 0;
  for (int round = 0; round < p.max_rounds; ++round) {
    round_time = to_send / bw + link.latency.sec();
    total_time += round_time;
    total_bytes += to_send;
    double dirtied = p.dirty_rate_bps / 8.0 * round_time;
    if (dirtied >= to_send) break;  // not converging further
    to_send = dirtied;
    if (to_send < 1e6) break;  // small enough: stop-and-copy
  }
  // Final stop-and-copy round.
  double freeze = to_send / bw + link.latency.sec();
  total_time += freeze;
  total_bytes += to_send;
  t.total_latency = VDur::seconds(total_time);
  t.freeze = VDur::seconds(freeze);
  t.bytes = static_cast<size_t>(total_bytes);
  return t;
}

}  // namespace sod::baselines
