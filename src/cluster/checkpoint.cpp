#include "cluster/checkpoint.h"

#include <utility>

namespace sod::cluster {

void CheckpointStore::configure(const mig::HomeShardMap* map) {
  map_ = map;
  parts_.assign(map != nullptr ? static_cast<size_t>(map->shards()) : 1, {});
  total_recorded_ = 0;
  total_bytes_ = 0;
}

CheckpointStore::Part& CheckpointStore::part(int round, int segment) {
  size_t shard =
      map_ != nullptr ? static_cast<size_t>(map_->shard_of_segment(round, segment)) : 0;
  return parts_[shard];
}

const CheckpointStore::Part& CheckpointStore::part(int round, int segment) const {
  size_t shard =
      map_ != nullptr ? static_cast<size_t>(map_->shard_of_segment(round, segment)) : 0;
  return parts_[shard];
}

void CheckpointStore::record(int round, int segment, mig::SegmentCheckpoint ckpt, int attempt,
                             VDur taken_at) {
  Part& p = part(round, segment);
  auto key = std::pair(round, segment);
  auto it = p.find(key);
  int seq = it == p.end() ? 1 : it->second.seq + 1;
  total_bytes_ += ckpt.state_bytes + ckpt.heap_bytes;
  ++total_recorded_;
  p[key] = Entry{std::move(ckpt), attempt, seq, taken_at};
}

const CheckpointStore::Entry* CheckpointStore::latest(int round, int segment) const {
  const Part& p = part(round, segment);
  auto it = p.find(std::pair(round, segment));
  return it == p.end() ? nullptr : &it->second;
}

void CheckpointStore::drop(int round, int segment) {
  part(round, segment).erase(std::pair(round, segment));
}

int CheckpointStore::live() const {
  int n = 0;
  for (const Part& p : parts_) n += static_cast<int>(p.size());
  return n;
}

AttemptTracker::AttemptTracker() : AttemptTracker(Config{}) {}

void AttemptTracker::observe(uint16_t cls, VDur ref_span) {
  if (ref_span.ns < 0) return;
  double observed = static_cast<double>(ref_span.ns);
  auto [it, fresh] = ewma_ns_.try_emplace(cls, observed);
  if (!fresh) it->second = cfg_.alpha * observed + (1.0 - cfg_.alpha) * it->second;
}

VDur AttemptTracker::expected_span(uint16_t cls) const {
  auto it = ewma_ns_.find(cls);
  return it == ewma_ns_.end() ? VDur{} : VDur::nanos(static_cast<int64_t>(it->second));
}

bool AttemptTracker::straggler(uint16_t cls, VDur age) const {
  auto it = ewma_ns_.find(cls);
  if (it == ewma_ns_.end()) return false;
  return static_cast<double>(age.ns) > cfg_.straggler_factor * it->second;
}

}  // namespace sod::cluster
