#include "cluster/wallclock.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "cluster/placement.h"

namespace sod::cluster {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Which engine's ordered lock this thread is inside (null when none).
/// The gate protocol's nested-section detection: a gate acquire from a
/// thread that already holds the ordered lock (write-back resolving stubs,
/// the home thread's virtual restore firing class fetches) must take
/// nothing, and the runtime checks below enforce the no-re-entry and
/// one-stripe rules the static analysis cannot see.
thread_local const void* tl_ordered_owner = nullptr;
/// Stripes this thread holds (0 or 1 by protocol rule; checked).
thread_local int tl_stripe_depth = 0;

/// Scoped ordered-lock: a ScopedLock twin that additionally maintains
/// tl_ordered_owner — including across the unlock/lock pair inside
/// std::condition_variable_any::wait — and panics on re-entry, which the
/// old recursive home mutex would have silently allowed.
class SOD_SCOPED_CAPABILITY OrderedLock {
 public:
  OrderedLock(const void* engine, Mutex& mu) SOD_ACQUIRE(mu) : e_(engine), mu_(mu) {
    SOD_CHECK(tl_ordered_owner != e_, "home ordered lock re-entered on one thread");
    mu_.lock();
    tl_ordered_owner = e_;
  }
  ~OrderedLock() SOD_RELEASE() {
    if (held_) {
      tl_ordered_owner = nullptr;
      mu_.unlock();
    }
  }
  void lock() SOD_ACQUIRE() {
    mu_.lock();
    tl_ordered_owner = e_;
    held_ = true;
  }
  void unlock() SOD_RELEASE() {
    tl_ordered_owner = nullptr;
    mu_.unlock();
    held_ = false;
  }
  OrderedLock(const OrderedLock&) = delete;
  OrderedLock& operator=(const OrderedLock&) = delete;

 private:
  const void* e_;
  Mutex& mu_;
  bool held_ = true;
};

}  // namespace

/// Per-segment lifecycle state for the current round.  Guarded by the
/// ordered lock except where noted: `spec` and `cs` are immutable once
/// run() captured them, and an exec job owns `seg` exclusively (moved out
/// under the lock) while it runs guest code unlocked.
struct WallClockEngine::Task {
  enum class St { Unplaced, Shipped, Restored, Completed };

  mig::SegmentSpec spec{};
  mig::CapturedState cs;
  std::unique_ptr<mig::Segment> seg;
  PlacementRequest req{};
  Placement pl{};
  VDur est_cost{};
  St st = St::Unplaced;
  bool exec_enqueued = false;
  int attempts = 0;       ///< current attempt id; jobs carrying an older id are stale
  bc::Value result{};
  bc::Value home_result{};
  int faults_accum = 0;   ///< faults of attempts that were replaced or lost
  int64_t ship_sleep_ns = 0;
  /// Home-side serde cost of this attempt's outgoing ship, already charged
  /// virtually at placement; the lane serves its wall twin on the
  /// segment's stripe before sleeping the transfer.
  VDur serve_cost{};
  double completed_wall_ms = 0;
  /// Worker clock right after the completion write-back; the downstream
  /// relay reads this snapshot instead of the live clock (the Scheduler
  /// reads the clock at the same point, so the values agree fault-free).
  VDur post_wb_clock{};
};

WallClockEngine::WallClockEngine(Cluster& c, PlacementPolicy& policy, WallClockOptions opt)
    : c_(&c), policy_(&policy), opt_(opt), shard_map_(c.shard_map()) {
  stripes_.reserve(static_cast<size_t>(shard_map_.shards()));
  for (int s = 0; s < shard_map_.shards(); ++s) stripes_.push_back(std::make_unique<Stripe>());
  // Same admission announcement as the virtual-time Scheduler: a program
  // that failed the cluster's static analysis is rejected up front and
  // run() refuses to ship any of its class images.
  if (!c.admission().admitted) {
    OrderedLock lk(this, order_mu_);
    emit_locked(EventKind::ProgramRejected, c.home_now(), -1, -1);
  }
}

WallClockEngine::~WallClockEngine() = default;

int64_t WallClockEngine::sleep_ns_for(VDur virt) const {
  double ns = opt_.dilation * static_cast<double>(virt.ns);
  return ns > 0 ? static_cast<int64_t>(ns) : 0;
}

int64_t WallClockEngine::home_sleep_ns_for(VDur virt) const {
  double scale = opt_.home_dilation < 0 ? opt_.dilation : opt_.home_dilation;
  double ns = scale * static_cast<double>(virt.ns);
  return ns > 0 ? static_cast<int64_t>(ns) : 0;
}

void WallClockEngine::lock_stripe(int shard) {
  Stripe& s = *stripes_[static_cast<size_t>(shard)];
  if (s.mu.try_lock()) {
    ++s.stats.acquisitions;
    uint64_t queued = s.waiters.load(std::memory_order_relaxed);
    if (queued > s.stats.max_queue) s.stats.max_queue = queued;
    return;
  }
  uint64_t queued = s.waiters.fetch_add(1, std::memory_order_relaxed) + 1;
  auto t0 = std::chrono::steady_clock::now();
  s.mu.lock();
  auto waited = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           t0)
          .count());
  s.waiters.fetch_sub(1, std::memory_order_relaxed);
  ++s.stats.acquisitions;
  ++s.stats.contended;
  s.stats.wait_ns += waited;
  if (waited > s.stats.max_wait_ns) s.stats.max_wait_ns = waited;
  if (queued > s.stats.max_queue) s.stats.max_queue = queued;
}

void WallClockEngine::unlock_stripe(int shard) {
  stripes_[static_cast<size_t>(shard)]->mu.unlock();
}

void WallClockEngine::stripe_service(uint32_t key, VDur home_time) {
  SOD_CHECK(tl_ordered_owner != this, "stripe service while holding the ordered lock");
  SOD_CHECK(tl_stripe_depth == 0, "stripe service while holding a stripe");
  int shard = shard_map_.shard_of(key);
  lock_stripe(shard);
  int64_t ns = home_sleep_ns_for(home_time);
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  unlock_stripe(shard);
}

mig::HomeGate::Section WallClockEngine::acquire(uint32_t key)
    SOD_NO_THREAD_SAFETY_ANALYSIS {
  mig::HomeGate::Section s;
  if (tl_ordered_owner == this) {
    // Already inside this engine's ordered section (home-thread restore,
    // write-back stub resolution): hold nothing, every op is a no-op.
    s.nested = true;
    return s;
  }
  SOD_CHECK(tl_stripe_depth == 0, "gate section opened while already holding a stripe");
  s.shard = shard_map_.shard_of(key);
  lock_stripe(s.shard);
  ++tl_stripe_depth;
  order_mu_.lock();
  tl_ordered_owner = this;
  s.ordered_live = true;
  return s;
}

void WallClockEngine::service(mig::HomeGate::Section& s, VDur home_time)
    SOD_NO_THREAD_SAFETY_ANALYSIS {
  if (s.nested) return;
  SOD_CHECK(s.ordered_live, "gate service after release or double service");
  tl_ordered_owner = nullptr;
  order_mu_.unlock();
  s.ordered_live = false;
  int64_t ns = home_sleep_ns_for(home_time);
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void WallClockEngine::release(mig::HomeGate::Section& s) SOD_NO_THREAD_SAFETY_ANALYSIS {
  if (s.nested) return;
  if (s.ordered_live) {
    tl_ordered_owner = nullptr;
    order_mu_.unlock();
    s.ordered_live = false;
  }
  if (s.shard >= 0) {
    unlock_stripe(s.shard);
    --tl_stripe_depth;
    s.shard = -1;
  }
}

std::vector<mig::ShardContention> WallClockEngine::shard_contention() const {
  std::vector<mig::ShardContention> out;
  out.reserve(stripes_.size());
  for (const auto& s : stripes_) {
    MutexLock lk(s->mu);
    out.push_back(s->stats);
  }
  return out;
}

mig::ShardContention WallClockEngine::total_contention() const {
  mig::ShardContention total;
  for (const mig::ShardContention& s : shard_contention()) total += s;
  return total;
}

void WallClockEngine::fail_after(int completions, int worker) {
  SOD_CHECK(completions >= 0, "fail_after with a negative completion count");
  OrderedLock lk(this, order_mu_);
  plans_.push_back(FailurePlan{completions, worker, false});
}

void WallClockEngine::fail_worker(int worker) {
  OrderedLock lk(this, order_mu_);
  do_fail_locked(worker);
}

int WallClockEngine::add_worker(const WorkerSpec& spec) {
  OrderedLock lk(this, order_mu_);
  SOD_CHECK(out_ == nullptr, "add_worker during a wall-clock round");
  int id = c_->add_worker(spec);
  if (pool_) pool_->ensure_lane(static_cast<size_t>(id) + 1);
  emit_locked(EventKind::WorkerJoined, c_->home_now(), -1, id);
  return id;
}

void WallClockEngine::drain_worker(int id) {
  OrderedLock lk(this, order_mu_);
  SOD_CHECK(out_ == nullptr, "drain_worker during a wall-clock round");
  c_->drain_worker(id);
  emit_locked(EventKind::WorkerDraining, c_->home_now(), -1, id);
}

void WallClockEngine::emit_locked(EventKind kind, VDur at, int segment, int worker,
                                  int attempt) {
  // Unlike the virtual-time Scheduler, events are NOT fed to
  // PlacementPolicy::observe(cluster, event): an event observer is free to
  // read worker clocks, which are live on other lanes here.
  Event e;
  e.kind = kind;
  e.at = at;
  e.seq = seq_++;
  e.round = round_;
  e.segment = segment;
  e.worker = worker;
  e.attempt = attempt;
  log_.push_back(e);
}

int WallClockEngine::pick_failure_target_locked() const {
  int best = -1;
  for (int w = 0; w < c_->size(); ++w) {
    if (!c_->accepting(w)) continue;
    if (best < 0 || c_->inflight(w) > c_->inflight(best)) best = w;
  }
  SOD_CHECK(best >= 0, "failure injection on a cluster with no accepting workers");
  return best;
}

void WallClockEngine::place_locked(size_t i) {
  Task& t = tasks_[i];
  mig::SodNode& home = c_->home();
  const mig::CapturedState& cs = t.cs;
  uint16_t entry_cls = home.program().method(cs.frames[0].method).owner;
  t.req.cls = entry_cls;
  t.req.state_bytes = cs.wire_size();
  t.req.class_image_bytes = home.program().class_image(entry_cls).size();
  t.req.msp_state_slots = c_->facts().class_msp_state_slots(entry_cls);
  // The policy may read worker clocks: placements only happen while every
  // lane is quiescent (round start, or sequential mode's chain points).
  int w = policy_->choose(*c_, t.req);
  SOD_CHECK(w >= 0 && w < c_->size(), "policy chose an invalid worker");
  SOD_CHECK(c_->accepting(w), "policy chose a non-accepting worker");
  t.est_cost = policy_->estimate(*c_, w, t.req);
  c_->note_assigned(w, t.est_cost);
  mig::SodNode& dst = c_->worker(w);

  Placement& pl = t.pl;
  pl = Placement{};
  pl.worker = w;
  pl.worker_name = dst.name();
  pl.spec = t.spec;
  pl.cls = entry_cls;
  pl.attempts = ++t.attempts;
  pl.shipped_bytes = t.req.state_bytes;
  if (!dst.class_shipped(entry_cls)) pl.shipped_bytes += t.req.class_image_bytes;
  dst.mark_class_shipped(entry_cls);

  t.serve_cost = home.serde().cost(t.req.state_bytes, static_cast<int>(cs.frames.size()));
  home.node().charge_host(t.serve_cost);
  sim::deliver(home.node(), dst.node(), c_->link(w), pl.shipped_bytes);
  t.ship_sleep_ns = sleep_ns_for(c_->link(w).transfer_time(pl.shipped_bytes));

  // Virtual restore right here on the home thread, exactly where
  // Scheduler::dispatch does it: restore's class fetches and round trips
  // advance the home clock BEFORE the next segment's serde charge and
  // ship, so fault-free virtual timestamps match the twin bit for bit.
  // The lane only replays the transfer as a wall sleep (ship_job).  Class
  // fetches fired by this restore see tl_ordered_owner == this and gate as
  // nested no-ops.
  auto seg = std::make_unique<mig::Segment>(dst);
  seg->objman().set_home_gate(this);
  seg->objman().set_shard_map(&shard_map_);
  seg->objman().bind_home(&home, home_tid_, t.spec.depth_hi, c_->link(w));
  seg->restore(t.cs);
  t.seg = std::move(seg);
  pl.restored_at = dst.node().clock.now();
  t.st = Task::St::Shipped;
  t.exec_enqueued = false;
  emit_locked(EventKind::SegmentDispatched, pl.restored_at, static_cast<int>(i), w,
              t.attempts);
}

void WallClockEngine::redispatch_locked(size_t i) {
  Task& t = tasks_[i];
  // The old attempt's segment, if its lane has not taken ownership yet, is
  // dead: fold its fault count in and drop it.  An exec job that already
  // owns it will discard it at its own stale check.
  if (t.seg) {
    t.faults_accum += t.seg->objman().stats().faults;
    t.seg.reset();
  }
  // Survivor choice without any clock read (surviving lanes are live):
  // shallowest queue, ties to the lowest id.  This is the one documented
  // placement divergence from the virtual twin.
  int w = -1;
  for (int cand = 0; cand < c_->size(); ++cand)
    if (c_->accepting(cand) && (w < 0 || c_->inflight(cand) < c_->inflight(w))) w = cand;
  SOD_CHECK(w >= 0, "re-dispatch with no accepting workers");
  t.est_cost = policy_->estimate(*c_, w, t.req);  // cpu-scale only, clock-free
  c_->note_assigned(w, t.est_cost);
  mig::SodNode& home = c_->home();
  mig::SodNode& dst = c_->worker(w);

  Placement& pl = t.pl;
  pl = Placement{};
  pl.worker = w;
  pl.worker_name = dst.name();
  pl.spec = t.spec;
  pl.cls = t.req.cls;
  pl.attempts = ++t.attempts;
  pl.shipped_bytes = t.req.state_bytes;
  if (!dst.class_shipped(t.req.cls)) pl.shipped_bytes += t.req.class_image_bytes;
  dst.mark_class_shipped(t.req.cls);

  // Home re-serializes and re-ships from its current send front.  The
  // destination clock is NOT advanced here (its lane may be mid-guest-run);
  // the re-shipped attempt's virtual arrival is folded in by the restore
  // charges on the destination's own lane.
  t.serve_cost = home.serde().cost(t.req.state_bytes, static_cast<int>(t.cs.frames.size()));
  home.node().charge_host(t.serve_cost);
  t.ship_sleep_ns = sleep_ns_for(c_->link(w).transfer_time(pl.shipped_bytes));
  t.st = Task::St::Shipped;
  t.exec_enqueued = false;
  submit_restore(i);
}

void WallClockEngine::submit_ship(size_t i) {
  int attempt = tasks_[i].attempts;
  pool_->submit(static_cast<size_t>(tasks_[i].pl.worker),
                [this, i, attempt] { ship_job(i, attempt); });
}

void WallClockEngine::ship_job(size_t i, int attempt) {
  // The virtual ship and restore were already charged at placement; this
  // job serves the home-side serialization window on the segment's stripe,
  // then occupies the destination lane for the modelled transfer so the
  // overlap (or its absence, on a small pool) is real wall time.
  int64_t ship_ns = 0;
  VDur serve{};
  int round = 0;
  {
    OrderedLock lk(this, order_mu_);
    Task& t = tasks_[i];
    if (t.attempts != attempt) return;  // stale: the segment was re-dispatched
    ship_ns = t.ship_sleep_ns;
    serve = t.serve_cost;
    round = round_;
  }
  // Ships of segments mapped to other home shards overlap this window;
  // ships on the same shard convoy — with one shard, all of them do.
  stripe_service(mig::HomeShardMap::key_segment(round, static_cast<int>(i)), serve);
  if (ship_ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ship_ns));

  OrderedLock lk(this, order_mu_);
  Task& t = tasks_[i];
  if (t.attempts != attempt) return;
  t.st = Task::St::Restored;
  cv_.notify_all();
}

void WallClockEngine::submit_restore(size_t i) {
  int attempt = tasks_[i].attempts;
  pool_->submit(static_cast<size_t>(tasks_[i].pl.worker),
                [this, i, attempt] { restore_job(i, attempt); });
}

// Fault path only: a re-dispatched attempt restores on the survivor's own
// lane (its clock may be live, so the home thread cannot do it), which is
// why virtual timestamps downstream of a worker loss are not contracted.
void WallClockEngine::restore_job(size_t i, int attempt) {
  int64_t ship_ns = 0;
  VDur serve{};
  int round = 0;
  int w = -1;
  {
    OrderedLock lk(this, order_mu_);
    Task& t = tasks_[i];
    if (t.attempts != attempt) return;  // stale: the segment was re-dispatched
    ship_ns = t.ship_sleep_ns;
    serve = t.serve_cost;
    round = round_;
    w = t.pl.worker;
  }
  stripe_service(mig::HomeShardMap::key_segment(round, static_cast<int>(i)), serve);
  if (ship_ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ship_ns));

  // Worker-local restore: this lane owns the destination node.  Home is
  // only reached through gated paths (class fetch hook, object manager).
  mig::SodNode& home = c_->home();
  mig::SodNode& dst = c_->worker(w);
  auto seg = std::make_unique<mig::Segment>(dst);
  seg->objman().set_home_gate(this);
  seg->objman().set_shard_map(&shard_map_);
  seg->objman().bind_home(&home, home_tid_, tasks_[i].spec.depth_hi, c_->link(w));
  seg->restore(tasks_[i].cs);

  OrderedLock lk(this, order_mu_);
  Task& t = tasks_[i];
  if (t.attempts != attempt) {
    t.faults_accum += seg->objman().stats().faults;  // doomed attempt's work still counts
    return;
  }
  t.seg = std::move(seg);
  t.pl.restored_at = dst.node().clock.now();
  t.st = Task::St::Restored;
  emit_locked(EventKind::SegmentDispatched, t.pl.restored_at, static_cast<int>(i), w, attempt);
  cv_.notify_all();
}

void WallClockEngine::exec_job(size_t i, int attempt) {
  std::unique_ptr<mig::Segment> seg;
  bc::Value v_in{};
  int64_t relay_ns = 0;
  int w = -1;
  {
    OrderedLock lk(this, order_mu_);
    Task& t = tasks_[i];
    if (t.attempts != attempt || t.st != Task::St::Restored || !t.seg) return;
    w = t.pl.worker;
    mig::SodNode& home = c_->home();
    mig::SodNode& dst = c_->worker(w);
    seg = std::move(t.seg);  // exclusive ownership while running unlocked
    // Re-bind the worker's objman.* natives to this segment: a later
    // segment restored on the same worker overwrote them.
    seg->objman().install(dst);
    if (i > 0) {
      Task& up = tasks_[i - 1];
      size_t stat_bytes = refresh_primitive_statics(
          home, dst, opt_.statics_skip ? &c_->facts() : nullptr, &statics_stats_);
      v_in = up.result;
      if (up.pl.worker != w) {
        // Worker -> home -> worker relay of the 16-byte result message.
        // The Scheduler reads the upstream worker's clock here; we read
        // the snapshot taken right after its write-back (same value
        // fault-free, and no live-clock race when its lane is busy again).
        VDur arrival = up.post_wb_clock +
                       c_->link(up.pl.worker).transfer_time(kResultMsgBytes) +
                       c_->link(w).transfer_time(kResultMsgBytes);
        dst.node().clock.wait_until(arrival);
        relay_ns = sleep_ns_for(c_->link(up.pl.worker).transfer_time(kResultMsgBytes) +
                                c_->link(w).transfer_time(kResultMsgBytes));
        if (v_in.tag == bc::Ty::Ref && v_in.r != bc::kNull) {
          // Cross-worker ref chaining: forward the home handle, fetch the
          // body lazily on first touch (see Scheduler::prepare).  The
          // escape facts are load-bearing: the forwarding entry was only
          // retained for classes the analyzer proved can leak a ref.
          SOD_CHECK(c_->facts().class_ref_escape(up.pl.cls),
                    "ref result from a class the analyzer proved escape-free");
          SOD_CHECK(up.home_result.tag == bc::Ty::Ref && up.home_result.r != bc::kNull,
                    "cross-worker ref result missing from the forwarding table");
          v_in = bc::Value::of_ref(dst.vm().heap().alloc_stub(up.home_result.r));
          ++out_->ref_forwards;
        }
      }
      if (stat_bytes > 0) sim::deliver(home.node(), dst.node(), c_->link(w), stat_bytes);
      out_->overlapped = out_->overlapped || t.pl.restored_at < up.pl.completed_at;
    }
  }
  if (relay_ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(relay_ns));

  // Guest execution, unlocked: faults and class loads self-gate through
  // the home gate (stripe -> ordered).  This lane owns the destination
  // node, so its clock reads need no lock.
  mig::SodNode& dst = c_->worker(w);
  if (i > 0) {
    // deliver() needs the pending-call breakpoint of the restored frame.
    dst.ti().set_debug_enabled(true);
    seg->deliver(v_in);
  }
  dst.ti().set_debug_enabled(false);
  VDur executed_at = dst.node().clock.now();
  bc::Value result = seg->run_to_completion();
  // Completion is the instant execution finished, before the write-back's
  // serialization charge — the same point Scheduler::execute reads it.
  VDur completed_at = dst.node().clock.now();

  // The completion section is deliberately NOT split around the write-back
  // service below: a worker loss between "write-back landed" and
  // "completion recorded" would re-dispatch a task whose heap effects
  // already reached home, breaking exactly-once.  The wall service window
  // is appended after the whole section instead.
  VDur wb_serve{};
  int wb_round = 0;
  {
    OrderedLock lk(this, order_mu_);
    Task& t = tasks_[i];
    if (t.attempts != attempt) {
      // The worker was failed while we executed; this attempt lost.  Its
      // write-back is suppressed — a non-winning attempt never mutates home.
      t.faults_accum += seg->objman().stats().faults;
      return;
    }
    t.pl.executed_at = executed_at;
    t.pl.completed_at = completed_at;
    t.result = result;
    c_->note_completed(w, t.est_cost);
    t.st = Task::St::Completed;
    ++completed_total_;
    policy_->observe(*c_, t.req, t.pl);
    mig::SodNode& home = c_->home();
    bool bottom = i + 1 == tasks_.size();
    auto rep = mig::write_back(*seg, home, home_tid_, bottom ? t.spec.depth_hi : 0, result,
                               c_->link(w));
    out_->writeback_bytes += rep.bytes;
    // Ref-forwarding entries only for classes that can actually chain a ref
    // (mirrors Scheduler::write_back).
    if (c_->facts().class_ref_escape(t.pl.cls)) t.home_result = rep.home_result;
    t.seg = std::move(seg);
    t.post_wb_clock = dst.node().clock.now();
    t.completed_wall_ms = ms_since(round_t0_);
    wb_serve = home.serde().cost(rep.bytes);
    wb_round = round_;
    emit_locked(EventKind::SegmentCompleted, t.pl.completed_at, static_cast<int>(i), w,
                attempt);
    process_failure_plans_locked();
    cv_.notify_all();
  }
  // Home-side apply of the landed write-back, served on the segment's
  // stripe: applies on other shards overlap this wall window.
  stripe_service(mig::HomeShardMap::key_segment(wb_round, static_cast<int>(i)), wb_serve);
}

void WallClockEngine::do_fail_locked(int worker) {
  if (worker < 0) worker = pick_failure_target_locked();
  SOD_CHECK(worker >= 0 && worker < c_->size(), "fail of a bad worker id");
  if (c_->state(worker) == WorkerState::Retired || c_->state(worker) == WorkerState::Lost)
    return;
  int dropped = c_->fail_worker(worker);
  ++lost_total_;
  emit_locked(EventKind::WorkerLost, c_->home_now(), -1, worker);
  SOD_CHECK(c_->accepting_size() > 0, "worker failure left no accepting workers");
  if (out_ == nullptr) return;  // between rounds: nothing in flight
  // Re-dispatch every outstanding attempt of the lost worker.  In-flight
  // jobs of those attempts notice the bumped attempt id at their next
  // stale check and quietly drop their work.
  int requeued = 0;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    Task& t = tasks_[i];
    if (t.st == Task::St::Unplaced || t.st == Task::St::Completed || t.pl.worker != worker)
      continue;
    emit_locked(EventKind::SegmentFailed, c_->home_now(), static_cast<int>(i), worker,
                t.attempts);
    redispatch_locked(i);
    ++out_->redispatched;
    ++redispatched_total_;
    ++requeued;
  }
  SOD_CHECK(requeued == dropped, "lost-worker queue out of sync with the task table");
  cv_.notify_all();
}

void WallClockEngine::process_failure_plans_locked() {
  for (FailurePlan& plan : plans_) {
    if (plan.fired || completed_total_ < plan.at_count) continue;
    plan.fired = true;
    do_fail_locked(plan.worker);
  }
}

DispatchOutcome WallClockEngine::run(int home_tid, const std::vector<mig::SegmentSpec>& specs) {
  mig::SodNode& home = c_->home();
  ++round_;
  SOD_CHECK(c_->admission().admitted,
            "dispatch of a program that failed admission (see Cluster::admission())");
  SOD_CHECK(c_->accepting_size() > 0, "dispatch on a cluster with no accepting workers");
  SOD_CHECK(!specs.empty(), "dispatch of zero segments");
  for (size_t i = 0; i < specs.size(); ++i) {
    SOD_CHECK(specs[i].len() >= 1, "empty segment spec");
    int expect_lo = i == 0 ? 0 : specs[i - 1].depth_hi;
    SOD_CHECK(specs[i].depth_lo == expect_lo, "segment specs not contiguous from the top");
  }
  if (!pool_) {
    size_t threads =
        opt_.threads > 0 ? static_cast<size_t>(opt_.threads)
                         : static_cast<size_t>(std::max(1, c_->size()));
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  pool_->ensure_lane(static_cast<size_t>(c_->size()));

  // Capture every segment while the thread is paused, then drop debug mode
  // (the paper keeps the tool interface off outside migration events).
  home_tid_ = home_tid;
  tasks_.clear();
  tasks_.reserve(specs.size());
  for (const auto& s : specs) {
    Task t;
    t.spec = s;
    t.cs = mig::capture_segment(home, home_tid, s);
    tasks_.push_back(std::move(t));
  }
  home.ti().set_debug_enabled(false);
  home.sync_ti_cost();

  DispatchOutcome out;
  wall_completed_ms_.assign(tasks_.size(), 0.0);
  round_t0_ = std::chrono::steady_clock::now();

  OrderedLock lk(this, order_mu_);
  out_ = &out;
  // Fresh fetch hooks for every worker while all lanes are idle: lane
  // threads read the hook mid-guest-run, so it must never be reassigned
  // once jobs are in flight.
  for (int w = 0; w < c_->size(); ++w)
    c_->worker(w).enable_class_fetch(&home, c_->link(w), this);
  // Failure plans already due (scheduled in a previous round) fire before
  // placement so a lost worker never receives this round's segments.
  process_failure_plans_locked();

  if (opt_.concurrent) {
    // Place, virtually ship, AND virtually restore everything first (lanes
    // idle, clocks safe, Scheduler operation order), THEN enqueue the
    // wall-time ship sleeps.
    for (size_t i = 0; i < tasks_.size(); ++i) place_locked(i);
    for (size_t i = 0; i < tasks_.size(); ++i) submit_ship(i);
  }

  // Dependency-driven home loop: a segment executes once it is restored
  // and its upstream neighbour completed, so a lane job never blocks on
  // another task — re-dispatches can land behind a busy lane without
  // deadlock.
  while (tasks_.back().st != Task::St::Completed) {
    bool progress = false;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      Task& t = tasks_[i];
      bool up_done = i == 0 || tasks_[i - 1].st == Task::St::Completed;
      if (!opt_.concurrent && t.st == Task::St::Unplaced && up_done) {
        // Sequential baseline: segment i ships only after i-1 completed
        // (home's clock waits for the completion it reacts to).
        if (i > 0) home.node().clock.wait_until(tasks_[i - 1].pl.completed_at);
        place_locked(i);
        submit_ship(i);
        progress = true;
      }
      if (t.st == Task::St::Restored && up_done && !t.exec_enqueued) {
        t.exec_enqueued = true;
        int attempt = t.attempts;
        pool_->submit(static_cast<size_t>(t.pl.worker),
                      [this, i, attempt] { exec_job(i, attempt); });
        progress = true;
      }
    }
    if (!progress) cv_.wait(lk);
  }
  out_ = nullptr;
  lk.unlock();
  // Stale attempts still queued on lanes (and the bottom segment's
  // trailing write-back service) drain before we read the tasks unlocked.
  pool_->wait_idle();

  last_round_wall_ms_ = ms_since(round_t0_);
  out.placements.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    Task& t = tasks_[i];
    out.faults += t.faults_accum + (t.seg ? t.seg->objman().stats().faults : 0);
    out.placements.push_back(t.pl);
    wall_completed_ms_[i] = t.completed_wall_ms;
  }
  out.result = tasks_.back().result;
  return out;
}

}  // namespace sod::cluster
