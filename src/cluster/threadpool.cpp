#include "cluster/threadpool.h"

#include <utility>

#include "support/panic.h"

namespace sod::cluster {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::ensure_lane(size_t n) {
  MutexLock lk(mu_);
  if (lanes_.size() < n) lanes_.resize(n);
}

void ThreadPool::submit(size_t lane, std::function<void()> job) {
  {
    MutexLock lk(mu_);
    SOD_CHECK(!stop_, "submit after shutdown");
    if (lanes_.size() <= lane) lanes_.resize(lane + 1);
    lanes_[lane].q.push_back(std::move(job));
    ++pending_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lk(mu_);
  while (pending_ != 0) cv_idle_.wait(lk);
}

size_t ThreadPool::find_runnable() const {
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (!lanes_[i].claimed && !lanes_[i].q.empty()) return i;
  }
  return npos;
}

void ThreadPool::worker_main() {
  MutexLock lk(mu_);
  while (true) {
    // Explicit wait loop (no predicate lambda): the thread-safety analysis
    // can track the scoped lock through condition_variable_any::wait, but
    // not a capture that touches guarded members from a nested closure.
    size_t lane = find_runnable();
    while (lane == npos && !(stop_ && pending_ == 0)) {
      cv_work_.wait(lk);
      lane = find_runnable();
    }
    if (lane == npos) return;  // shutdown and nothing left to run

    // Claim the lane and drain it FIFO.  Jobs submitted to this lane while
    // we drain are picked up in the same pass; other lanes stay available
    // to the remaining pool threads.
    lanes_[lane].claimed = true;
    while (!lanes_[lane].q.empty()) {
      std::function<void()> job = std::move(lanes_[lane].q.front());
      lanes_[lane].q.pop_front();
      lk.unlock();
      job();
      lk.lock();
      SOD_CHECK(pending_ > 0, "pending underflow");
      if (--pending_ == 0) {
        cv_idle_.notify_all();
        cv_work_.notify_all();  // let waiting threads observe shutdown
      } else {
        // A finished job may have unblocked work on other lanes (it can
        // submit jobs during execution); wake a sibling to look.
        cv_work_.notify_one();
      }
    }
    lanes_[lane].claimed = false;
  }
}

}  // namespace sod::cluster
