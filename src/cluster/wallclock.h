// WallClockEngine — the wall-clock execution half of the cluster layer.
//
// Executes dispatched segments genuinely concurrently: one ThreadPool lane
// per cluster worker runs that worker's restore and execute jobs (a worker
// SodNode stays single-threaded by construction), while home-side state is
// guarded by a two-level lock protocol (the HomeGate of sod/homegate.h):
//
//   - one non-recursive ordered mutex (`order_mu_`) serializes every home
//     virtual-clock charge, tool-interface read, heap access, placement
//     accounting step, and event-log append — the single ordered path that
//     keeps virtual-time results bit-identical at any shard count;
//   - N stripe mutexes, one per home shard (deterministic HomeShardMap
//     over object refs, class ids, and (round, segment) keys), serialize
//     the *wall-time service windows* of home-side work: serialization of
//     a shipped segment, a fetched object batch, a class image, a landed
//     write-back.  Services of different shards overlap in wall time;
//     services of the same shard convoy — with one shard this degenerates
//     to the old single-home-mutex bottleneck, which is exactly what the
//     home_shards bench sweeps against.
//
// Lock order is always stripe -> ordered, a thread holds at most one
// stripe, and a gate acquired from a thread already inside the engine's
// ordered section (write-back resolving stubs, the home-thread restore's
// class fetches) detects that through a thread-local and becomes a nested
// no-op — so no capability is ever re-entered and clang's -Wthread-safety
// can check the whole engine.
//
// Determinism contract with the virtual-time Scheduler (the twin CI
// asserts against): for the same cluster topology, policy, and workload, a
// wall-clock run produces the same completion set {(round, segment)}, the
// same write-back payload bytes, bit-identical application results, and an
// event log satisfying the same attempt-aware exactly_once() invariant.
// In fault-free rounds the virtual timestamps are bit-identical too: all
// virtual-clock accounting runs on the home thread in the Scheduler's
// exact operation order (placement charge, ship, restore per segment; the
// execute/write-back chain is dependency-ordered), so wall interleavings
// only decide when real work happens, never what the clocks read.  Home
// sharding preserves this bit for bit at any shard count: stripes only
// schedule wall-side service sleeps, never virtual charges.  NOT
// contracted after a worker loss: re-dispatch placements and the virtual
// timestamps downstream of them (the wall engine picks survivors by queue
// depth and restores on the survivor's live lane instead of consulting the
// clock-reading policy, because surviving workers' clocks are live while
// their lanes run).
//
// Communication is surfaced in wall time as real sleeps: a segment ship, a
// cross-worker result relay, each sleeps its virtual transfer time scaled
// by `dilation`; home-side service windows sleep their virtual service
// time scaled by `home_dilation` while holding only their stripe.  With
// >= 2 pool threads those sleeps (and the restores they gate) overlap
// upstream execution — the Fig. 1(c) freeze-time hiding measured on real
// cores instead of simulated.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <vector>

#include "cluster/scheduler.h"
#include "cluster/threadpool.h"
#include "sod/homegate.h"
#include "support/thread_annotations.h"

namespace sod::cluster {

struct WallClockOptions {
  /// Pool threads; 0 = one per cluster worker (at run() entry).
  int threads = 0;
  /// Ship every segment as soon as it is serialized (Fig. 1(c)); when
  /// false, segment i+1 ships only after segment i completed.
  bool concurrent = true;
  /// Real-sleep seconds per virtual second of communication (ship/relay)
  /// time.  1.0 sleeps the full modelled transfer; benches dial it down to
  /// keep runs fast while preserving relative overlap.
  double dilation = 1.0;
  /// Real-sleep seconds per virtual second of home-side *service* time
  /// (segment/object/class serialization, write-back apply), slept inside
  /// stripe service windows.  < 0 (default) follows `dilation`.  The
  /// home_shards bench turns this up to amplify the µs-scale serde costs
  /// into measurable stripe convoys while dialing transfers down.
  double home_dilation = -1.0;
  /// Skip refresh_primitive_statics scans for classes the whole-program
  /// analyzer proved statics-pure (same ablation switch as
  /// DispatchOptions::statics_skip; bit-identical either way).
  bool statics_skip = true;
};

/// The wall-clock twin of Scheduler::run.  One engine persists across
/// dispatch rounds; its event log and counters span the whole scenario.
/// The engine is its own HomeGate: worker-lane object faults and class
/// fetches gate through it (see the file comment for the protocol).
class WallClockEngine : private mig::HomeGate {
 public:
  WallClockEngine(Cluster& c, PlacementPolicy& policy, WallClockOptions opt = {});
  ~WallClockEngine() override;

  Cluster& cluster() { return *c_; }

  /// Captures `specs` from the paused home thread and runs them on the
  /// pool; blocks until the bottom segment's write-back lands.  Same
  /// preconditions as Scheduler::run.
  DispatchOutcome run(int home_tid, const std::vector<mig::SegmentSpec>& specs);

  /// Schedules a worker loss once `completions` SegmentCompleted events
  /// have fired over the engine's lifetime; processed under the ordered
  /// lock at the triggering completion, so the loss lands mid-round while
  /// other lanes are executing.  `worker` < 0 picks the accepting worker
  /// with the deepest queue at the firing instant.
  void fail_after(int completions, int worker = -1);
  /// Fails a worker immediately (between or during rounds); outstanding
  /// attempts on it are re-dispatched to survivors and their in-flight
  /// jobs become stale no-ops (a non-winning attempt never writes back).
  void fail_worker(int worker);
  /// Membership churn, serialized against the running pool.
  int add_worker(const WorkerSpec& spec);
  void drain_worker(int id);

  /// Totally ordered (by the ordered lock) event log across all rounds.
  /// These accessors read engine state without the lock: they are meant
  /// for the quiescent instants between runs (no lane job can be
  /// writing), which the thread-safety analysis cannot express.
  const std::vector<Event>& log() const SOD_NO_THREAD_SAFETY_ANALYSIS { return log_; }
  bool exactly_once() const SOD_NO_THREAD_SAFETY_ANALYSIS { return exactly_once_log(log_); }
  int rounds() const { return round_ + 1; }
  int completions() const SOD_NO_THREAD_SAFETY_ANALYSIS { return completed_total_; }
  int workers_lost() const SOD_NO_THREAD_SAFETY_ANALYSIS { return lost_total_; }
  int redispatches() const SOD_NO_THREAD_SAFETY_ANALYSIS { return redispatched_total_; }
  /// Statics-refresh scan/skip/byte counters over the engine's lifetime.
  const StaticsRefreshStats& statics_stats() const SOD_NO_THREAD_SAFETY_ANALYSIS {
    return statics_stats_;
  }

  /// Home shard count (the cluster's map, fixed at construction).
  int home_shards() const { return shard_map_.shards(); }
  /// Per-stripe lock telemetry, indexed by shard (quiescent read).
  std::vector<mig::ShardContention> shard_contention() const;
  /// Sum over stripes (max fields folded with max).
  mig::ShardContention total_contention() const;

  /// Wall milliseconds from the last run()'s start to each segment's
  /// completion write-back, indexed by segment.
  const std::vector<double>& last_completed_wall_ms() const { return wall_completed_ms_; }
  /// Wall milliseconds of the last run() end to end.
  double last_round_wall_ms() const { return last_round_wall_ms_; }

 private:
  struct Task;

  /// One home shard's stripe: the lock plus its telemetry.  The stats
  /// fields are written holding `mu` and read at quiescence; `waiters` is
  /// touched before the lock is held, so it is atomic.
  struct Stripe {
    Mutex mu;
    std::atomic<uint64_t> waiters{0};
    mig::ShardContention stats SOD_GUARDED_BY(mu);
  };

  // mig::HomeGate — the worker-lane side of the protocol.  Conditional
  // locking (nested detection, try-then-wait stripes) is beyond the static
  // analysis, so the implementations opt out and the protocol is enforced
  // by the thread-locals' runtime checks instead.
  mig::HomeGate::Section acquire(uint32_t key) override;
  void service(mig::HomeGate::Section& s, VDur home_time) override;
  void release(mig::HomeGate::Section& s) override;

  /// Locks stripe `shard`, recording acquisition/contention telemetry.
  void lock_stripe(int shard) SOD_NO_THREAD_SAFETY_ANALYSIS;
  void unlock_stripe(int shard) SOD_NO_THREAD_SAFETY_ANALYSIS;
  /// Engine-internal service window (ship serde, write-back apply): locks
  /// the key's stripe, sleeps the dilated home service time, unlocks.
  /// Must be called without the ordered lock (stripe -> ordered order).
  void stripe_service(uint32_t key, VDur home_time);

  void emit_locked(EventKind kind, VDur at, int segment, int worker, int attempt = 0)
      SOD_REQUIRES(order_mu_);
  /// Policy placement + virtual ship + virtual restore of segment i, all
  /// on the home thread with lanes quiescent — the same operation order as
  /// Scheduler::dispatch, which is what makes fault-free virtual
  /// timestamps bit-identical.  Enqueues nothing.
  void place_locked(size_t i) SOD_REQUIRES(order_mu_);
  /// Queue-depth re-dispatch of segment i to a survivor (any thread, other
  /// lanes live: no clock reads, no destination-clock charges).
  void redispatch_locked(size_t i) SOD_REQUIRES(order_mu_);
  /// Wall-only ship of an initially-placed segment: serves the home serde
  /// window on the segment's stripe, sleeps the modelled transfer on the
  /// destination lane, then marks the task executable.
  void submit_ship(size_t i) SOD_REQUIRES(order_mu_);
  void ship_job(size_t i, int attempt);
  /// Full lane-side restore of a re-dispatched attempt (fault path only).
  void submit_restore(size_t i) SOD_REQUIRES(order_mu_);
  void restore_job(size_t i, int attempt);
  void exec_job(size_t i, int attempt);
  void do_fail_locked(int worker) SOD_REQUIRES(order_mu_);
  void process_failure_plans_locked() SOD_REQUIRES(order_mu_);
  int pick_failure_target_locked() const SOD_REQUIRES(order_mu_);
  int64_t sleep_ns_for(VDur virt) const;
  int64_t home_sleep_ns_for(VDur virt) const;

  Cluster* c_;
  PlacementPolicy* policy_;
  WallClockOptions opt_;
  mig::HomeShardMap shard_map_;
  std::unique_ptr<ThreadPool> pool_;

  /// The ordered home lock: guards the home SodNode, the cluster
  /// membership and queue accounting, the event log, every Task, and the
  /// outcome under construction.  Non-recursive: nested entry is detected
  /// through a thread-local (see OrderedLock / acquire) instead of
  /// re-locking.
  mutable Mutex order_mu_;
  std::condition_variable_any cv_;
  /// One stripe per home shard (unique_ptr: mutexes do not move).
  std::vector<std::unique_ptr<Stripe>> stripes_;

  struct FailurePlan {
    int at_count;
    int worker;
    bool fired = false;
  };
  std::vector<FailurePlan> plans_ SOD_GUARDED_BY(order_mu_);
  std::vector<Event> log_ SOD_GUARDED_BY(order_mu_);
  StaticsRefreshStats statics_stats_ SOD_GUARDED_BY(order_mu_);
  int seq_ SOD_GUARDED_BY(order_mu_) = 0;
  int round_ = -1;  ///< home thread only (run() entry/exit)
  int completed_total_ SOD_GUARDED_BY(order_mu_) = 0;
  int lost_total_ SOD_GUARDED_BY(order_mu_) = 0;
  int redispatched_total_ SOD_GUARDED_BY(order_mu_) = 0;

  // Live only inside run().  `tasks_` is written under the ordered lock
  // while lanes run, but run() also reads it after pool_->wait_idle() with
  // the lock dropped (every job has drained) — a quiescence argument the
  // analysis cannot express, so it stays unannotated.
  int home_tid_ = -1;
  std::vector<Task> tasks_;
  DispatchOutcome* out_ SOD_GUARDED_BY(order_mu_) = nullptr;
  std::chrono::steady_clock::time_point round_t0_{};
  std::vector<double> wall_completed_ms_;
  double last_round_wall_ms_ = 0;
};

}  // namespace sod::cluster
