// LoadGen — deterministic trace-driven multi-tenant load generation over
// one shared cluster (the massive-scale scenario suite of the ROADMAP).
//
// A *trace* is a seeded arrival schedule: each session picks a Table I
// app, a tenant, a dispatch-round budget, and a virtual arrival instant
// drawn from one of three arrival processes (Poisson, ON-OFF bursty,
// sustained soak), plus deterministic churn/failure injections (surge
// worker joins with matching drains, mid-trace worker losses) pinned to
// arrival indices.  The same seed always reproduces the same trace.
//
// The generator replays a trace against ONE shared Cluster + Scheduler
// (or, optionally, the wall-clock engine): every tenant's classes are
// emitted into a single program under a tenant prefix (AppSpec::emit), so
// tenants share workers, the home node, placement state, and the event
// log, while their statics and heap objects stay isolated by class
// identity — the property the cross-tenant leakage tests pin down.
// Sessions interleave at dispatch-round granularity through the existing
// event loop: the step picker is fair (fewest steps first, ties to the
// oldest session), admission waits are accounted per tenant, and sessions
// of a statics-bearing app (FFT, TSP) serialize per (tenant, app) — the
// tenant's app-instance lock — so concurrent sessions can never clobber
// one another's static workspace.
//
// Completion latency is measured arrival -> final result (queueing
// included) and reduced to exact tail percentiles (support/stats.h
// Percentiles): p50/p95/p99 are what the bench tables gate on, because
// the mean hides exactly the tail a million-user service lives or dies
// by.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "support/stats.h"

namespace sod::cluster {

/// Arrival process shapes for the trace generator.
enum class ArrivalKind {
  Poisson,  ///< exponential interarrival gaps around the configured mean
  OnOff,    ///< bursts of back-to-back arrivals separated by long OFF gaps
  Soak,     ///< sustained constant-rate arrivals (the soak-tier shape)
};

const char* arrival_name(ArrivalKind k);
/// Accepts "poisson", "onoff" (also "on-off"), "soak"; nullopt otherwise.
std::optional<ArrivalKind> parse_arrival(std::string_view s);

/// One session of a trace: tenant `tenant` runs Table I app `app` (index
/// into the fib/nqueens/fft/tsp mix) arriving at virtual instant
/// `arrival`, offloading up to `rounds` dispatch rounds before the
/// residual computation finishes at home.  `id` is stable across
/// filter_tenant so per-session results can be compared between a shared
/// run and a tenant-alone run.
struct SessionTrace {
  int id = 0;
  int tenant = 0;
  int app = 0;
  VDur arrival{};
  int rounds = 1;
};

/// A churn/failure injection pinned to a deterministic point of the
/// trace: it fires when the session with global arrival index
/// `at_session` is admitted (arrival instants are virtual instants, so
/// the firing point is deterministic in virtual time as well).
struct Injection {
  enum class Kind {
    Join,  ///< add surge worker #surge to the shared pool
    Drain, ///< drain surge worker #surge (no-op if it was lost meanwhile)
    Fail,  ///< arm a mid-round worker loss (deepest queue at the instant)
  };
  Kind kind{};
  int at_session = 0;
  int surge = -1;
};

struct TraceConfig {
  int sessions = 64;
  int tenants = 4;
  /// Size of the Table I app mix: sessions draw from the first `apps`
  /// entries of {fib, nqueens, fft, tsp}.  1 keeps huge smokes lean.
  int apps = 2;
  ArrivalKind arrival = ArrivalKind::Poisson;
  uint64_t seed = 1;
  /// Mean interarrival gap (the Poisson mean; ON-OFF and soak derive
  /// their burst/off/constant gaps from it).
  VDur mean_gap = VDur::micros(500);
  /// Sessions draw their dispatch-round budget uniformly from
  /// [1, max_rounds].
  int max_rounds = 2;
  /// Fraction of arrivals that trigger a surge-worker join (each join is
  /// paired with a drain a few arrivals later) — Boxer-style ephemeral
  /// membership under load.
  double churn = 0.0;
  /// Mid-trace worker losses, spread evenly across the arrival sequence.
  int failures = 0;
  /// Tail-scale app arguments: each session carries several times the
  /// work of the default load scale, so a straggler-parked segment is
  /// long enough that speculative rescue beats its detection latency
  /// (the tail-latency bench's shape).  Default load scale keeps
  /// thousand-session smokes fast instead.
  bool heavy = false;
};

struct Trace {
  TraceConfig cfg;
  std::vector<SessionTrace> sessions;  ///< sorted by (arrival, id)
  std::vector<Injection> injections;   ///< sorted by at_session
};

/// Builds the deterministic trace for `cfg`: the same config (seed
/// included) always yields the identical trace.
Trace make_trace(const TraceConfig& cfg);

/// The sessions of one tenant, arrival instants and ids preserved;
/// injections are dropped (the alone-run is the clean-room baseline the
/// isolation property tests compare against).
Trace filter_tenant(const Trace& t, int tenant);

struct LoadGenOptions {
  PolicyKind policy = PolicyKind::LeastLoaded;
  /// Checkpoint / speculation knobs forwarded to the shared Scheduler
  /// (ignored in wall-clock mode, which has no checkpoint surface yet).
  DispatchOptions dispatch{};
  /// Shared worker pool; empty = 4 uniform gigabit workers.
  std::vector<WorkerSpec> workers;
  /// Frames split off per dispatch round (capped per app by its paper
  /// stack height).
  int segments_per_round = 2;
  /// Replay through the wall-clock engine instead of the virtual-time
  /// scheduler (`threads` pool threads; 0 = one per worker).
  bool wallclock = false;
  int threads = 0;
  /// Home shard count for the shared cluster (1..64; 0 keeps the cluster
  /// default of 1).  Virtual-time results are bit-identical at any value;
  /// under the wall-clock engine it sets how many home-side service
  /// windows can overlap in wall time.
  int home_shards = 0;
  /// Wall-clock engine sleep scales (wall-clock mode only): `dilation`
  /// scales communication sleeps, `home_dilation` scales home-side service
  /// sleeps (< 0 follows dilation) — see WallClockOptions.
  double dilation = 1.0;
  double home_dilation = -1.0;
};

struct TenantStats {
  int tenant = 0;
  int sessions = 0;
  int completed = 0;
  int segments = 0;
  /// Mean admission wait (arrival -> first dispatch step), ms.
  double mean_wait_ms = 0;
  /// Per-session completion latency (arrival -> final result), ms.
  Percentiles completion_ms;
};

struct LoadGenResult {
  int sessions = 0;
  int completed = 0;
  /// Whole-program admission gate verdict: false means the shared tenant
  /// program was rejected before any class image shipped (no sessions
  /// ran; `rejection_diags` carries the analyzer's diagnostics).
  bool admitted = true;
  std::vector<std::string> rejection_diags;
  /// Every session completed and returned the app's single-node
  /// reference result.
  bool all_ok = false;
  /// Attempt-aware exactly-once invariant over the shared event log
  /// spanning every tenant's rounds.
  bool exactly_once = false;
  int segments = 0;
  int redispatched = 0;
  int resumed = 0;
  int speculated = 0;
  int cancelled = 0;
  int checkpoints = 0;
  int workers_lost = 0;
  int surge_joins = 0;
  int surge_drains = 0;
  int failures_armed = 0;
  /// Statics-refresh traffic over the replay: per-class scans performed,
  /// scans skipped because the analyzer proved the class statics-pure,
  /// and primitive-static bytes actually copied.
  size_t statics_scans = 0;
  size_t statics_skipped = 0;
  size_t statics_bytes = 0;
  /// Completion latency over all sessions, ms (arrival -> final result).
  Percentiles completion_ms;
  std::vector<TenantStats> tenants;  ///< indexed by tenant id
  /// Per-session final results / latencies, parallel to trace.sessions.
  std::vector<int64_t> results;
  std::vector<double> session_ms;
  /// Home virtual clock at the end of the replay, ms.
  double total_ms = 0;

  // Wall-clock engine telemetry (zero in virtual mode).
  /// Home shard count the replay ran with.
  int home_shards = 1;
  /// Stripe-lock acquisitions summed over shards — deterministic for a
  /// failure-free replay (one per gate section / service window).
  uint64_t lock_acq = 0;
  /// Contended acquisitions / total + worst wait / deepest queue — real
  /// wall-side interleaving, never gated on by the bench differ.
  uint64_t wall_contended = 0;
  uint64_t lock_wait_ns = 0;
  uint64_t lock_max_wait_ns = 0;
  uint64_t wall_max_queue = 0;
  /// Per-session wall milliseconds (replay start -> session's final
  /// round done) and the whole replay's wall time, wall-clock mode only.
  Percentiles wall_completion_ms;
  double wall_total_ms = 0;
};

/// Replays `trace` against one shared cluster.  Deterministic in virtual
/// mode: the same trace and options reproduce results, latencies, and the
/// event log bit-identically.
LoadGenResult run_loadgen(const Trace& trace, const LoadGenOptions& opts);

}  // namespace sod::cluster
