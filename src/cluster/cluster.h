// Cluster — load-aware placement over a home node plus heterogeneous
// workers (the production shape of the paper's Fig. 1(b)/(c) flows).
//
// A Cluster owns the home SodNode and an elastic set of workers, each with
// its own CPU profile and its own simulated link back to home.  Membership
// is dynamic: workers join mid-run (add_worker), stop accepting new
// segments while finishing queued work (drain_worker), retire
// (remove_worker) — the Boxer-style ephemeral-worker flow — or are lost
// outright (fail_worker), dropping their outstanding assignments for the
// scheduler to re-dispatch.  Worker ids are dense and stable for the
// lifetime of the cluster; a retired or lost worker keeps its id and its
// final clock for traces, it just never receives work again.
//
// This header is the membership/state half of the cluster layer; the
// execution half — the event-driven Scheduler, placement-driven segment
// dispatch, worker-failure re-dispatch, and the queue-depth autoscaler —
// lives in cluster/scheduler.h.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "sod/migrate.h"

namespace sod::cluster {

class PlacementPolicy;

/// One worker slot to be added to a Cluster.
struct WorkerSpec {
  std::string name;
  mig::SodNode::Config config{};
  /// Link between the home node and this worker.
  sim::Link link = sim::Link::gigabit();
};

/// Lifecycle of a worker slot.  Active workers accept new segments;
/// draining workers finish their queued work and then retire; retired
/// workers left gracefully; lost workers failed with their queue dropped.
/// Retired and lost workers keep their id and final clock but never
/// receive work again.
enum class WorkerState { Active, Draining, Retired, Lost };

/// Home node + workers, all hosting the same preprocessed program.
///
/// Construction runs the whole-program analyzer over the program and keeps
/// the admission report: the scheduler and wall-clock engine consult the
/// facts (statics purity, ref escape, MSP state bounds) on their hot paths,
/// and refuse to dispatch a program that failed admission.
class Cluster {
 public:
  explicit Cluster(const bc::Program& prog, mig::SodNode::Config home_cfg = {});

  /// Admission verdict + whole-program facts for the hosted program.
  const analysis::AdmissionReport& admission() const { return admission_; }
  const analysis::ProgramFacts& facts() const { return admission_.facts; }
  const bc::Program& program() const { return *prog_; }

  /// Fixes the home shard count (1..64) for this cluster.  Must be set
  /// before a Scheduler or WallClockEngine is constructed over the cluster:
  /// both copy/point at the map at construction, and the partitioned home
  /// tables (object table, ref-forwarding table, checkpoint store) are laid
  /// out from it.  Defaults to 1 — the unsharded layout, bit-identical to
  /// the pre-sharding engine.
  void set_home_shards(int shards) { shard_map_ = mig::HomeShardMap(shards); }
  const mig::HomeShardMap& shard_map() const { return shard_map_; }
  int home_shards() const { return shard_map_.shards(); }

  /// Adds a worker; returns its id (0-based, dense, stable).  Legal
  /// mid-run: the next dispatch round sees the new worker.  Names must be
  /// unique across the cluster's lifetime so placement traces and bench
  /// rows stay unambiguous.
  int add_worker(const WorkerSpec& spec);
  /// Adds `n` identical gigabit workers named worker1..workerN.
  void add_uniform_workers(int n, const mig::SodNode::Config& cfg = {});

  /// Stops new assignments to the worker; it retires as soon as its queue
  /// drains (immediately when idle — no next-round lag).
  void drain_worker(int id);
  /// Retires an idle worker immediately.  A worker with outstanding
  /// assignments cannot be removed — drain it first.
  void remove_worker(int id);
  /// Drops the worker mid-run (crash / network partition): its queued
  /// assignments are discarded and it never receives work again.  Returns
  /// the number of assignments dropped — the caller (the scheduler) owns
  /// re-dispatching those segments to surviving workers.  No-op on a
  /// worker that already left.
  int fail_worker(int id);

  WorkerState state(int id) const;
  /// Whether the worker may receive new assignments.
  bool accepting(int id) const { return state(id) == WorkerState::Active; }
  /// Workers currently accepting new assignments.
  int accepting_size() const;

  mig::SodNode& home() { return *home_; }
  /// Total worker slots ever added (including draining, retired, and lost
  /// ones).
  int size() const { return static_cast<int>(workers_.size()); }
  mig::SodNode& worker(int id) const;
  const sim::Link& link(int id) const;

  /// Virtual-clock load front of a worker: everything charged to it so far.
  VDur load(int id) const;
  /// Home's current virtual time (placement estimates start from here).
  VDur home_now() const { return home_->node().clock.now(); }
  /// Whether the worker already holds class `cls`'s image (no ship cost).
  bool holds_class(int id, uint16_t cls) const { return worker(id).class_shipped(cls); }

  /// Segments assigned to the worker whose execution time is not yet
  /// reflected in its clock (the depth of its FIFO queue).  The scheduler
  /// maintains this; policies use it because a worker's clock only
  /// advances once its segment actually runs.
  int inflight(int id) const;
  /// Mean FIFO depth over the accepting workers — the autoscaler's
  /// queue-depth signal.  0 when nobody accepts.
  double mean_queue_depth() const;
  /// Sum of the estimated execution costs of the worker's queued
  /// assignments.  Policies fold this into arrival estimates so a worker
  /// holding several rounds is not mistaken for an idle one.
  VDur queued_cost(int id) const;
  /// Enqueues an assignment with the policy's execution-cost estimate
  /// (VDur{} when the policy has none).  Panics on non-accepting workers.
  void note_assigned(int id, VDur est_cost = {});
  /// Dequeues one assignment; a draining worker retires when its queue
  /// empties.  Completions can land out of FIFO order (a speculative
  /// backup or a checkpoint resume finishes before segments queued ahead
  /// of it), so callers that recorded the assignment's estimate pass it
  /// back and the first entry carrying that estimate is removed — keeping
  /// queued_cost() attributed to the assignments actually still waiting.
  /// Without an estimate the oldest entry goes.
  void note_completed(int id, std::optional<VDur> est_cost = std::nullopt);
  /// Dequeues the assignment of a worker whose attempt was cancelled (the
  /// losing side of a speculative race).  Same queue accounting as a
  /// completion — the slot is free either way — but kept separate so
  /// traces and future cancellation-aware accounting can distinguish
  /// useful work from abandoned work.
  void note_cancelled(int id, std::optional<VDur> est_cost = std::nullopt);

 private:
  struct Slot {
    std::unique_ptr<mig::SodNode> node;
    sim::Link link;
    WorkerState state = WorkerState::Active;
    /// FIFO of estimated execution costs, one entry per outstanding
    /// assignment (oldest first).
    std::deque<VDur> queue;
  };

  const bc::Program* prog_;
  analysis::AdmissionReport admission_;
  mig::HomeShardMap shard_map_{1};
  std::unique_ptr<mig::SodNode> home_;
  std::vector<Slot> workers_;
};

}  // namespace sod::cluster
