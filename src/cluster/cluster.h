// Cluster — load-aware placement over a home node plus heterogeneous
// workers (the production shape of the paper's Fig. 1(b)/(c) flows).
//
// A Cluster owns the home SodNode and an elastic set of workers, each with
// its own CPU profile and its own simulated link back to home.  Membership
// is dynamic: workers join mid-run (add_worker), stop accepting new
// segments while finishing queued work (drain_worker), and retire
// (remove_worker) — the Boxer-style ephemeral-worker flow.  Worker ids are
// dense and stable for the lifetime of the cluster; a retired worker keeps
// its id and its final clock for traces, it just never receives work
// again.
//
// Placement policies (cluster/placement.h) rank accepting workers by
// virtual-clock load, queued-work cost, link cost, and shipped-class
// locality; dispatch_segments() splits the home thread's paused stack into
// contiguous segments and keeps several of them in flight on different
// workers at once, exploiting the latency-hiding max(dst.now, src.now +
// transfer) delivery rule of sim/net.h: a lower segment restores while the
// segment above it is still executing.  Each worker owns a FIFO queue of
// outstanding assignments with their estimated execution cost, so one
// worker can hold several rounds and arrival estimates account for queued
// work, not just the clock front.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sod/migrate.h"

namespace sod::cluster {

class PlacementPolicy;

/// One worker slot to be added to a Cluster.
struct WorkerSpec {
  std::string name;
  mig::SodNode::Config config{};
  /// Link between the home node and this worker.
  sim::Link link = sim::Link::gigabit();
};

/// Lifecycle of a worker slot.  Active workers accept new segments;
/// draining workers finish their queued work and then retire; retired
/// workers keep their id and final clock but never receive work again.
enum class WorkerState { Active, Draining, Retired };

/// Home node + workers, all hosting the same preprocessed program.
class Cluster {
 public:
  explicit Cluster(const bc::Program& prog, mig::SodNode::Config home_cfg = {});

  /// Adds a worker; returns its id (0-based, dense, stable).  Legal
  /// mid-run: the next dispatch round sees the new worker.  Names must be
  /// unique across the cluster's lifetime so placement traces and bench
  /// rows stay unambiguous.
  int add_worker(const WorkerSpec& spec);
  /// Adds `n` identical gigabit workers named worker1..workerN.
  void add_uniform_workers(int n, const mig::SodNode::Config& cfg = {});

  /// Stops new assignments to the worker; it retires as soon as its queue
  /// drains (immediately when idle).
  void drain_worker(int id);
  /// Retires an idle worker immediately.  A worker with outstanding
  /// assignments cannot be removed — drain it first.
  void remove_worker(int id);

  WorkerState state(int id) const;
  /// Whether the worker may receive new assignments.
  bool accepting(int id) const { return state(id) == WorkerState::Active; }
  /// Workers currently accepting new assignments.
  int accepting_size() const;

  mig::SodNode& home() { return *home_; }
  /// Total worker slots ever added (including draining and retired ones).
  int size() const { return static_cast<int>(workers_.size()); }
  mig::SodNode& worker(int id) const;
  const sim::Link& link(int id) const;

  /// Virtual-clock load front of a worker: everything charged to it so far.
  VDur load(int id) const;
  /// Home's current virtual time (placement estimates start from here).
  VDur home_now() const { return home_->node().clock.now(); }
  /// Whether the worker already holds class `cls`'s image (no ship cost).
  bool holds_class(int id, uint16_t cls) const { return worker(id).class_shipped(cls); }

  /// Segments assigned to the worker whose execution time is not yet
  /// reflected in its clock (the depth of its FIFO queue).
  /// dispatch_segments() maintains this; policies use it because a
  /// worker's clock only advances once its segment actually runs.
  int inflight(int id) const;
  /// Sum of the estimated execution costs of the worker's queued
  /// assignments.  Policies fold this into arrival estimates so a worker
  /// holding several rounds is not mistaken for an idle one.
  VDur queued_cost(int id) const;
  /// Enqueues an assignment with the policy's execution-cost estimate
  /// (VDur{} when the policy has none).  Panics on non-accepting workers.
  void note_assigned(int id, VDur est_cost = {});
  /// Dequeues the oldest assignment; a draining worker retires when its
  /// queue empties.
  void note_completed(int id);

 private:
  struct Slot {
    std::unique_ptr<mig::SodNode> node;
    sim::Link link;
    WorkerState state = WorkerState::Active;
    /// FIFO of estimated execution costs, one entry per outstanding
    /// assignment (oldest first).
    std::deque<VDur> queue;
  };

  const bc::Program* prog_;
  std::unique_ptr<mig::SodNode> home_;
  std::vector<Slot> workers_;
};

struct DispatchOptions {
  /// Ship every segment as soon as it is serialized (the Fig. 1(c)
  /// latency-hiding path).  When false, segment i+1 leaves home only after
  /// segment i completed remotely — the sequential baseline.
  bool concurrent = true;
};

struct Placement {
  int worker = -1;
  std::string worker_name;
  mig::SegmentSpec spec{};
  uint16_t cls = 0;          ///< class of the segment's entry frame
  size_t shipped_bytes = 0;  ///< captured state + class image actually shipped
  VDur restored_at{};        ///< worker clock when its restore finished
  VDur executed_at{};        ///< worker clock when its execution began (a
                             ///< chained segment first waits for the
                             ///< upstream result; the top segment runs
                             ///< right after its restore)
  VDur completed_at{};       ///< worker clock when its execution finished
};

struct DispatchOutcome {
  std::vector<Placement> placements;
  /// Bottom segment's raw result (worker-local refs for Ref results; the
  /// home-translated value lands in the resumed home frame via write-back).
  bc::Value result{};
  int faults = 0;
  size_t writeback_bytes = 0;
  /// True when at least one lower segment finished restoring before the
  /// segment above it finished executing (freeze time hidden).
  bool overlapped = false;
};

/// Splits the top `k` home frames into k single-frame segments, top first.
std::vector<mig::SegmentSpec> split_top_frames(int k);

/// Copies `src`'s primitive static fields into `dst`'s slots for every
/// static-bearing class loaded on both sides; returns the wire bytes of
/// the fields that actually differed (identical values ship nothing).
/// Ref statics are left alone: at a worker they are stubs that resolve
/// against home's *current* fields, so they stay fresh by construction.
/// Exposed for tests; dispatch_segments uses it between chained segments.
size_t refresh_primitive_statics(mig::SodNode& src, mig::SodNode& dst);

/// Captures the contiguous top-of-stack segments `specs` (specs[0] must
/// start at depth 0, each next one at the previous depth_hi) from the
/// paused home thread, places each via `policy`, restores them on their
/// workers, chains results downward (Segment::deliver), and writes the
/// final result back home, leaving the home thread runnable.  Completed
/// placements are fed back to the policy (PlacementPolicy::observe) so
/// learning policies can refine their execution-time estimates.  The home
/// thread's top frame must be at a migration-safe point and its stack must
/// be strictly deeper than specs.back().depth_hi.
DispatchOutcome dispatch_segments(Cluster& c, int home_tid,
                                  const std::vector<mig::SegmentSpec>& specs,
                                  PlacementPolicy& policy, const DispatchOptions& opt = {});

}  // namespace sod::cluster
