// Cluster — load-aware placement over a home node plus heterogeneous
// workers (the production shape of the paper's Fig. 1(b)/(c) flows).
//
// A Cluster owns the home SodNode and a set of workers, each with its own
// CPU profile and its own simulated link back to home.  Placement policies
// (cluster/placement.h) rank workers by virtual-clock load, link cost, and
// shipped-class locality; dispatch_segments() splits the home thread's
// paused stack into contiguous segments and keeps several of them in
// flight on different workers at once, exploiting the latency-hiding
// max(dst.now, src.now + transfer) delivery rule of sim/net.h: a lower
// segment restores while the segment above it is still executing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sod/migrate.h"

namespace sod::cluster {

class PlacementPolicy;

/// One worker slot to be added to a Cluster.
struct WorkerSpec {
  std::string name;
  mig::SodNode::Config config{};
  /// Link between the home node and this worker.
  sim::Link link = sim::Link::gigabit();
};

/// Home node + workers, all hosting the same preprocessed program.
class Cluster {
 public:
  explicit Cluster(const bc::Program& prog, mig::SodNode::Config home_cfg = {});

  /// Adds a worker; returns its id (0-based, dense).
  int add_worker(const WorkerSpec& spec);
  /// Adds `n` identical gigabit workers named worker1..workerN.
  void add_uniform_workers(int n, const mig::SodNode::Config& cfg = {});

  mig::SodNode& home() { return *home_; }
  int size() const { return static_cast<int>(workers_.size()); }
  mig::SodNode& worker(int id) const;
  const sim::Link& link(int id) const;

  /// Virtual-clock load front of a worker: everything charged to it so far.
  VDur load(int id) const;
  /// Home's current virtual time (placement estimates start from here).
  VDur home_now() const { return home_->node().clock.now(); }
  /// Whether the worker already holds class `cls`'s image (no ship cost).
  bool holds_class(int id, uint16_t cls) const { return worker(id).class_shipped(cls); }

  /// Segments assigned to the worker whose execution time is not yet
  /// reflected in its clock.  dispatch_segments() maintains this; policies
  /// use it as their primary key (least-outstanding-requests), because a
  /// worker's clock only advances once its segment actually runs.
  int inflight(int id) const;
  void note_assigned(int id);
  void note_completed(int id);

 private:
  struct Slot {
    std::unique_ptr<mig::SodNode> node;
    sim::Link link;
    int inflight = 0;
  };

  const bc::Program* prog_;
  std::unique_ptr<mig::SodNode> home_;
  std::vector<Slot> workers_;
};

struct DispatchOptions {
  /// Ship every segment as soon as it is serialized (the Fig. 1(c)
  /// latency-hiding path).  When false, segment i+1 leaves home only after
  /// segment i completed remotely — the sequential baseline.
  bool concurrent = true;
};

struct Placement {
  int worker = -1;
  std::string worker_name;
  mig::SegmentSpec spec{};
  size_t shipped_bytes = 0;  ///< captured state + class image actually shipped
  VDur restored_at{};        ///< worker clock when its restore finished
  VDur completed_at{};       ///< worker clock when its execution finished
};

struct DispatchOutcome {
  std::vector<Placement> placements;
  /// Bottom segment's raw result (worker-local refs for Ref results; the
  /// home-translated value lands in the resumed home frame via write-back).
  bc::Value result{};
  int faults = 0;
  size_t writeback_bytes = 0;
  /// True when at least one lower segment finished restoring before the
  /// segment above it finished executing (freeze time hidden).
  bool overlapped = false;
};

/// Splits the top `k` home frames into k single-frame segments, top first.
std::vector<mig::SegmentSpec> split_top_frames(int k);

/// Captures the contiguous top-of-stack segments `specs` (specs[0] must
/// start at depth 0, each next one at the previous depth_hi) from the
/// paused home thread, places each via `policy`, restores them on their
/// workers, chains results downward (Segment::deliver), and writes the
/// final result back home, leaving the home thread runnable.  The home
/// thread's top frame must be at a migration-safe point and its stack must
/// be strictly deeper than specs.back().depth_hi.
DispatchOutcome dispatch_segments(Cluster& c, int home_tid,
                                  const std::vector<mig::SegmentSpec>& specs,
                                  PlacementPolicy& policy, const DispatchOptions& opt = {});

}  // namespace sod::cluster
