// Worker thread pool for the wall-clock execution engine.
//
// The pool owns N OS threads multiplexed over per-lane FIFO job queues —
// one lane per cluster worker (the paper's one-JVM-per-node shape).  Jobs
// on the same lane never run concurrently and always run in submission
// order, because a worker SodNode is single-threaded state: a lane is
// *claimed* by exactly one pool thread, drained FIFO, then released.
// Cross-lane jobs run genuinely in parallel, which is what turns the
// simulator's overlapped virtual intervals into real overlapped wall time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace sod::cluster {

class ThreadPool {
 public:
  /// Spawns `threads` OS threads (at least 1).
  explicit ThreadPool(size_t threads);
  /// Finishes all queued jobs, then joins the threads.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Make lanes [0, n) exist (idempotent; thread-safe).
  void ensure_lane(size_t n);

  /// Enqueue `job` on `lane` (FIFO within the lane).  Thread-safe; may be
  /// called from pool threads themselves (e.g. failure re-dispatch).
  void submit(size_t lane, std::function<void()> job);

  /// Block until every submitted job has finished running.
  void wait_idle();

  size_t threads() const { return workers_.size(); }

 private:
  struct Lane {
    std::deque<std::function<void()>> q;
    bool claimed = false;  ///< a pool thread is draining this lane
  };

  void worker_main();
  /// Returns the index of an unclaimed lane with queued work, or npos.
  size_t find_runnable() const SOD_REQUIRES(mu_);

  static constexpr size_t npos = static_cast<size_t>(-1);

  mutable Mutex mu_;
  std::condition_variable_any cv_work_;  ///< lane became runnable / shutdown
  std::condition_variable_any cv_idle_;  ///< pending_ hit zero
  std::vector<Lane> lanes_ SOD_GUARDED_BY(mu_);
  size_t pending_ SOD_GUARDED_BY(mu_) = 0;  ///< queued + running jobs
  bool stop_ SOD_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace sod::cluster
