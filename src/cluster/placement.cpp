#include "cluster/placement.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "cluster/cluster.h"
#include "support/panic.h"

namespace sod::cluster {

namespace {

/// Earliest virtual instant worker `w` could start executing a segment of
/// `bytes` shipped from home right now: the send leaves at home's clock and
/// the worker picks it up no earlier than its own load front.
VDur arrival_estimate(const Cluster& c, int w, size_t bytes) {
  VDur sent = c.home_now() + c.link(w).transfer_time(bytes);
  return std::max(c.load(w), sent);
}

class RoundRobin final : public PlacementPolicy {
 public:
  const char* name() const override { return "round_robin"; }
  int choose(const Cluster& c, const PlacementRequest&) override {
    SOD_CHECK(c.size() > 0, "placement on an empty cluster");
    return next_++ % c.size();
  }

 private:
  int next_ = 0;
};

/// Load- and link-aware but locality-blind: every placement is costed as if
/// the class image had to ship.  The primary key is outstanding assignments
/// (a worker's clock only advances once its segment runs); then earliest
/// arrival, then lowest load front.
class LeastLoaded final : public PlacementPolicy {
 public:
  const char* name() const override { return "least_loaded"; }
  int choose(const Cluster& c, const PlacementRequest& req) override {
    SOD_CHECK(c.size() > 0, "placement on an empty cluster");
    auto key = [&](int w) {
      return std::tuple(c.inflight(w),
                        arrival_estimate(c, w, req.state_bytes + req.class_image_bytes),
                        c.load(w));
    };
    int best = 0;
    for (int w = 1; w < c.size(); ++w)
      if (key(w) < key(best)) best = w;
    return best;
  }
};

/// Least-loaded with shipped-class locality: workers already holding the
/// segment's class skip the image transfer in the arrival estimate, and
/// remaining ties go to a holder before the load front decides.
class LocalityAware final : public PlacementPolicy {
 public:
  const char* name() const override { return "locality_aware"; }
  int choose(const Cluster& c, const PlacementRequest& req) override {
    SOD_CHECK(c.size() > 0, "placement on an empty cluster");
    auto key = [&](int w) {
      bool holds = c.holds_class(w, req.cls);
      size_t bytes = req.state_bytes + (holds ? 0 : req.class_image_bytes);
      return std::tuple(c.inflight(w), arrival_estimate(c, w, bytes), holds ? 0 : 1,
                        c.load(w));
    };
    int best = 0;
    for (int w = 1; w < c.size(); ++w)
      if (key(w) < key(best)) best = w;
    return best;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin: return std::make_unique<RoundRobin>();
    case PolicyKind::LeastLoaded: return std::make_unique<LeastLoaded>();
    case PolicyKind::LocalityAware: return std::make_unique<LocalityAware>();
  }
  SOD_UNREACHABLE("bad PolicyKind");
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin: return "round_robin";
    case PolicyKind::LeastLoaded: return "least_loaded";
    case PolicyKind::LocalityAware: return "locality_aware";
  }
  SOD_UNREACHABLE("bad PolicyKind");
}

std::optional<PolicyKind> parse_policy(std::string_view s) {
  std::string t(s);
  for (char& ch : t)
    if (ch == '_') ch = '-';
  if (t == "round-robin" || t == "rr") return PolicyKind::RoundRobin;
  if (t == "least-loaded") return PolicyKind::LeastLoaded;
  if (t == "locality-aware" || t == "locality") return PolicyKind::LocalityAware;
  return std::nullopt;
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::RoundRobin, PolicyKind::LeastLoaded, PolicyKind::LocalityAware};
}

}  // namespace sod::cluster
