#include "cluster/placement.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <unordered_map>

#include "cluster/cluster.h"
#include "cluster/scheduler.h"
#include "support/panic.h"

namespace sod::cluster {

namespace {

/// Earliest virtual instant worker `w` could start executing a segment of
/// `bytes` shipped from home right now: the send leaves at home's clock,
/// the worker picks it up no earlier than its own load front, and queued
/// assignments that have not advanced its clock yet run first.
VDur arrival_estimate(const Cluster& c, int w, size_t bytes) {
  VDur sent = c.home_now() + c.link(w).transfer_time(bytes);
  return std::max(c.load(w), sent) + c.queued_cost(w);
}

/// First accepting worker id; panics when membership has drained to zero.
int first_accepting(const Cluster& c) {
  for (int w = 0; w < c.size(); ++w)
    if (c.accepting(w)) return w;
  SOD_UNREACHABLE("placement on a cluster with no accepting workers");
}

/// Argmin of `key` over the accepting workers (draining and retired
/// members are invisible to placement); panics on an empty membership.
template <class Key>
int choose_min(const Cluster& c, Key key) {
  int best = first_accepting(c);
  auto best_key = key(best);
  for (int w = best + 1; w < c.size(); ++w) {
    if (!c.accepting(w)) continue;
    auto k = key(w);
    if (k < best_key) {
      best = w;
      best_key = std::move(k);
    }
  }
  return best;
}

class RoundRobin final : public PlacementPolicy {
 public:
  const char* name() const override { return "round_robin"; }
  int choose(const Cluster& c, const PlacementRequest&) override {
    int n = c.size();
    SOD_CHECK(c.accepting_size() > 0, "placement on a cluster with no accepting workers");
    // Unsigned counter with explicit modular wrap: the counter never
    // exceeds the membership size, so it cannot overflow into a negative
    // (or otherwise invalid) worker id.  Non-accepting members are skipped
    // without losing the cycle position.
    for (int step = 0; step < n; ++step) {
      int w = static_cast<int>(next_);
      next_ = (next_ + 1) % static_cast<unsigned>(n);
      if (c.accepting(w)) return w;
    }
    SOD_UNREACHABLE("round_robin found no accepting worker");
  }

 private:
  unsigned next_ = 0;
};

/// Load- and link-aware but locality-blind: every placement is costed as if
/// the class image had to ship.  The primary key is outstanding assignments
/// (a worker's clock only advances once its segment runs); then earliest
/// arrival (which folds in queued-work cost), then lowest load front.
class LeastLoaded final : public PlacementPolicy {
 public:
  const char* name() const override { return "least_loaded"; }
  int choose(const Cluster& c, const PlacementRequest& req) override {
    auto key = [&](int w) {
      return std::tuple(c.inflight(w),
                        arrival_estimate(c, w, req.state_bytes + req.class_image_bytes),
                        c.load(w));
    };
    return choose_min(c, key);
  }
};

/// Least-loaded with shipped-class locality: workers already holding the
/// segment's class skip the image transfer in the arrival estimate, and
/// remaining ties go to a holder before the load front decides.
class LocalityAware final : public PlacementPolicy {
 public:
  const char* name() const override { return "locality_aware"; }
  int choose(const Cluster& c, const PlacementRequest& req) override {
    auto key = [&](int w) {
      bool holds = c.holds_class(w, req.cls);
      size_t bytes = req.state_bytes + (holds ? 0 : req.class_image_bytes);
      return std::tuple(c.inflight(w), arrival_estimate(c, w, bytes), holds ? 0 : 1,
                        c.load(w));
    };
    return choose_min(c, key);
  }
};

/// Places by predicted completion instant instead of inflight count: the
/// base-class EWMA of observed per-class segment execution times predicts
/// how long the segment will run on each candidate (scaled by its
/// cpu_scale), on top of the arrival estimate (which already folds in
/// queued-work cost and link transfer).  Workers holding the class skip
/// the image transfer, as in locality_aware.  Before the first
/// observation of a class the prediction is zero and the policy
/// degenerates to earliest-arrival.
class Learned final : public PlacementPolicy {
 public:
  const char* name() const override { return "learned"; }

  int choose(const Cluster& c, const PlacementRequest& req) override {
    auto key = [&](int w) {
      bool holds = c.holds_class(w, req.cls);
      size_t bytes = req.state_bytes + (holds ? 0 : req.class_image_bytes);
      return std::tuple(arrival_estimate(c, w, bytes) + estimate(c, w, req), c.inflight(w),
                        c.load(w));
    };
    return choose_min(c, key);
  }
};

}  // namespace

int choose_backup(const PlacementPolicy& policy, const Cluster& c, const PlacementRequest& req,
                  int exclude) {
  int best = -1;
  std::tuple<VDur, int, VDur> best_key{};
  for (int w = 0; w < c.size(); ++w) {
    if (w == exclude || !c.accepting(w)) continue;
    bool holds = c.holds_class(w, req.cls);
    size_t bytes = req.state_bytes + (holds ? 0 : req.class_image_bytes);
    std::tuple key(arrival_estimate(c, w, bytes) + policy.estimate(c, w, req), c.inflight(w),
                   c.load(w));
    if (best < 0 || key < best_key) {
      best = w;
      best_key = key;
    }
  }
  return best;
}

void PlacementPolicy::observe(const Cluster&, const Event&) {}

VDur PlacementPolicy::estimate(const Cluster& c, int w, const PlacementRequest& req) const {
  auto it = ewma_ns_.find(req.cls);
  if (it == ewma_ns_.end()) return {};
  return VDur::nanos(static_cast<int64_t>(it->second * c.worker(w).config().cpu_scale));
}

void PlacementPolicy::observe(const Cluster& c, const PlacementRequest& req,
                              const Placement& pl) {
  // executed_at -> completed_at spans the segment's own execution on its
  // worker (a chained segment's wait for upstream results is excluded);
  // dividing by cpu_scale normalizes heterogeneous CPUs into one
  // reference-speed estimate per class.
  double scale = c.worker(pl.worker).config().cpu_scale;
  if (scale <= 0) return;
  double observed = static_cast<double>((pl.completed_at - pl.executed_at).ns) / scale;
  if (observed < 0) return;
  auto [it, fresh] = ewma_ns_.try_emplace(req.cls, observed);
  if (!fresh) it->second = kAlpha * observed + (1.0 - kAlpha) * it->second;
}

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin: return std::make_unique<RoundRobin>();
    case PolicyKind::LeastLoaded: return std::make_unique<LeastLoaded>();
    case PolicyKind::LocalityAware: return std::make_unique<LocalityAware>();
    case PolicyKind::Learned: return std::make_unique<Learned>();
  }
  SOD_UNREACHABLE("bad PolicyKind");
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin: return "round_robin";
    case PolicyKind::LeastLoaded: return "least_loaded";
    case PolicyKind::LocalityAware: return "locality_aware";
    case PolicyKind::Learned: return "learned";
  }
  SOD_UNREACHABLE("bad PolicyKind");
}

std::optional<PolicyKind> parse_policy(std::string_view s) {
  std::string t(s);
  for (char& ch : t)
    if (ch == '_') ch = '-';
  if (t == "round-robin" || t == "rr") return PolicyKind::RoundRobin;
  if (t == "least-loaded") return PolicyKind::LeastLoaded;
  if (t == "locality-aware" || t == "locality") return PolicyKind::LocalityAware;
  if (t == "learned") return PolicyKind::Learned;
  return std::nullopt;
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::RoundRobin, PolicyKind::LeastLoaded, PolicyKind::LocalityAware,
          PolicyKind::Learned};
}

}  // namespace sod::cluster
