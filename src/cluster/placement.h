// Placement policies — the scheduling half of the cluster layer.
//
// A PlacementPolicy picks the worker a captured stack segment should land
// on.  Policies see the cluster's per-worker virtual-clock load, queued
// assignment costs, the link each worker sits behind, and which class
// images a worker already holds (SodNode::class_shipped), so they can
// trade off load, link cost, and locality the way Boxer/Dandelion-style
// schedulers do.  Only accepting workers (Cluster::accepting) are ever
// chosen — draining and retired members are invisible to placement.
//
// Every policy closes the loop: dispatch_segments feeds completed
// placements back through observe(), which trains a per-class EWMA of
// segment execution times (normalized to the reference CPU).  estimate()
// turns the model into per-worker predicted execution costs — recorded
// with each assignment so queued-work costs are real for every policy —
// and the learned policy additionally *places* by predicted completion.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/vclock.h"

namespace sod::cluster {

class Cluster;
struct Placement;
struct Event;

enum class PolicyKind { RoundRobin, LeastLoaded, LocalityAware, Learned };

/// What a segment about to be dispatched looks like to a policy.
struct PlacementRequest {
  uint16_t cls = 0;              ///< class of the segment's entry (bottom) frame
  size_t state_bytes = 0;        ///< captured-state wire size
  size_t class_image_bytes = 0;  ///< image size if the class must still ship
  /// Static bound on per-frame captured state at the class's migration-safe
  /// points (max locals + operand depth, in slots), from the whole-program
  /// analyzer — a migration-cost hint available before any execution has
  /// been observed.
  uint32_t msp_state_slots = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;
  /// Picks an accepting worker id in [0, c.size()).
  virtual int choose(const Cluster& c, const PlacementRequest& req) = 0;
  /// Predicted execution cost of `req` on worker `w`: the per-class EWMA
  /// of observed execution times scaled by the worker's CPU profile;
  /// VDur{} before the first observation of the class.  dispatch_segments
  /// records it with the assignment (Cluster::note_assigned) so
  /// queued-but-not-yet-run work is visible in later arrival estimates.
  virtual VDur estimate(const Cluster& c, int w, const PlacementRequest& req) const;
  /// Feedback after a placement ran to completion: trains the per-class
  /// EWMA from the executed_at -> completed_at span (execution only — the
  /// wait for upstream results in a chained dispatch is excluded),
  /// normalized to the reference CPU via the worker's cpu_scale.
  virtual void observe(const Cluster& c, const PlacementRequest& req, const Placement& pl);
  /// Scheduler events (dispatches, completions, failures, membership and
  /// autoscale changes) streamed to the policy in virtual-time order —
  /// the scheduler calls this for every event it appends to its log.  The
  /// base implementation ignores them; policies can react (e.g. reset
  /// per-worker state when a WorkerLost arrives) without coupling to the
  /// scheduler loop.
  virtual void observe(const Cluster& c, const Event& e);

 private:
  static constexpr double kAlpha = 0.4;
  /// Per-class EWMA of reference-CPU execution time, in nanoseconds.
  std::unordered_map<uint16_t, double> ewma_ns_;
};

/// Deterministic placement of a speculative backup attempt: the accepting
/// worker other than `exclude` (the straggler's host) with the earliest
/// predicted completion — arrival estimate plus the policy's learned
/// per-class execution estimate, so a 25x-slower device prices itself out
/// of hosting its own backup.  Returns -1 when no other accepting worker
/// exists (speculation is then skipped).
int choose_backup(const PlacementPolicy& policy, const Cluster& c, const PlacementRequest& req,
                  int exclude);

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind);
const char* policy_name(PolicyKind kind);

/// Accepts dashed and underscored spellings: "round-robin"/"round_robin",
/// "least-loaded", "locality-aware", "learned"; nullopt on anything else.
std::optional<PolicyKind> parse_policy(std::string_view s);

/// Every policy kind, in a stable comparison order.
std::vector<PolicyKind> all_policies();

}  // namespace sod::cluster
