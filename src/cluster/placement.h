// Placement policies — the scheduling half of the cluster layer.
//
// A PlacementPolicy picks the worker a captured stack segment should land
// on.  Policies see the cluster's per-worker virtual-clock load, the link
// each worker sits behind, and which class images a worker already holds
// (SodNode::class_shipped), so they can trade off load, link cost, and
// locality the way Boxer/Dandelion-style schedulers do.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace sod::cluster {

class Cluster;

enum class PolicyKind { RoundRobin, LeastLoaded, LocalityAware };

/// What a segment about to be dispatched looks like to a policy.
struct PlacementRequest {
  uint16_t cls = 0;              ///< class of the segment's entry (bottom) frame
  size_t state_bytes = 0;        ///< captured-state wire size
  size_t class_image_bytes = 0;  ///< image size if the class must still ship
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;
  /// Picks a worker id in [0, c.size()).
  virtual int choose(const Cluster& c, const PlacementRequest& req) = 0;
};

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind kind);
const char* policy_name(PolicyKind kind);

/// Accepts dashed and underscored spellings: "round-robin"/"round_robin",
/// "least-loaded", "locality-aware"; nullopt on anything else.
std::optional<PolicyKind> parse_policy(std::string_view s);

/// Every policy kind, in a stable comparison order.
std::vector<PolicyKind> all_policies();

}  // namespace sod::cluster
