// Checkpoint & speculation support — the recovery half of the cluster
// scheduler.
//
// A CheckpointStore lives on the home node: workers periodically
// re-capture a running segment's state at migration-safe points
// (mig::checkpoint_segment) and ship it home; the store keeps the newest
// checkpoint per (round, segment) so a failure re-dispatch *resumes*
// partial work instead of re-executing from the original capture, and a
// speculative backup attempt starts from the same state on another
// worker.  Boxer (arXiv:2407.00832) argues elasticity pays off only when
// recovery latency is small — resuming is what makes it small.
//
// An AttemptTracker detects stragglers: it learns a per-class EWMA of
// reference-CPU execution spans from completed attempts (mirroring the
// learned placement policy, but scheduler-owned so speculation works
// under every policy) and flags an attempt whose age exceeds
// straggler_factor x the learned span — the heterogeneous-fleet signal of
// Huang et al. (arXiv:2403.00585), where slow workers dominate completion
// time unless their work is re-dispatched speculatively.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "sod/homegate.h"
#include "sod/migrate.h"

namespace sod::cluster {

/// Home-side store of the newest checkpoint per (round, segment),
/// partitioned by the segment's home shard.  Every operation is keyed by
/// (round, segment) and touches exactly one partition, so the store's
/// observable behaviour is identical at any shard count; the partitioning
/// exists so the wall-clock engine's checkpoint flushes on different
/// shards contend on different stripes.
class CheckpointStore {
 public:
  struct Entry {
    mig::SegmentCheckpoint ckpt;
    int attempt = 0;   ///< attempt id that produced the checkpoint
    int seq = 0;       ///< per-segment checkpoint counter (1-based)
    VDur taken_at{};   ///< home clock when the checkpoint landed
  };

  /// Points the store at the cluster's shard map and lays out one
  /// partition per shard; existing entries are discarded.  nullptr resets
  /// to a single partition (the unsharded layout).
  void configure(const mig::HomeShardMap* map);

  /// Records `ckpt` as the newest checkpoint of (round, segment),
  /// replacing any older one.
  void record(int round, int segment, mig::SegmentCheckpoint ckpt, int attempt, VDur taken_at);

  /// Newest checkpoint of (round, segment); nullptr when none was taken.
  const Entry* latest(int round, int segment) const;

  /// Drops (round, segment)'s checkpoint — called once the segment's
  /// write-back landed, so the store stays bounded by the in-flight set.
  void drop(int round, int segment);

  /// Checkpoints recorded over the store's lifetime.
  int total_recorded() const { return total_recorded_; }
  /// Wire bytes shipped home for checkpoints (state + heap deltas).
  size_t total_bytes() const { return total_bytes_; }
  /// Entries currently held, over all partitions.
  int live() const;
  /// Partition count (== home shard count).
  int partitions() const { return static_cast<int>(parts_.size()); }
  /// Entries currently held by one partition.
  int partition_live(int shard) const {
    return static_cast<int>(parts_[static_cast<size_t>(shard)].size());
  }

 private:
  using Part = std::map<std::pair<int, int>, Entry>;
  Part& part(int round, int segment);
  const Part& part(int round, int segment) const;

  const mig::HomeShardMap* map_ = nullptr;
  std::vector<Part> parts_{1};
  int total_recorded_ = 0;
  size_t total_bytes_ = 0;
};

/// Scheduler-owned straggler detector: per-class EWMA of reference-CPU
/// execution spans, trained from clean (non-resumed, non-speculative)
/// attempt completions.
class AttemptTracker {
 public:
  struct Config {
    /// An attempt is a straggler once its age exceeds this multiple of
    /// the learned reference-CPU span for its class.
    double straggler_factor = 1.75;
    double alpha = 0.4;  ///< EWMA smoothing weight for new observations
  };

  AttemptTracker();
  explicit AttemptTracker(Config cfg) : cfg_(cfg) {}

  /// Trains the per-class EWMA with an observed execution span already
  /// normalized to the reference CPU (span / cpu_scale).
  void observe(uint16_t cls, VDur ref_span);

  /// Learned reference-CPU span for `cls`; VDur{} before the first
  /// observation.
  VDur expected_span(uint16_t cls) const;

  /// Whether an attempt of `cls` that has been executing for `age` is a
  /// straggler.  Never true before the first observation of the class —
  /// with nothing learned there is no baseline to be slow against.
  bool straggler(uint16_t cls, VDur age) const;

  double straggler_factor() const { return cfg_.straggler_factor; }

 private:
  Config cfg_;
  std::unordered_map<uint16_t, double> ewma_ns_;
};

}  // namespace sod::cluster
