// Scheduler — the event-driven execution half of the cluster layer.
//
// A Scheduler drives multi-segment dispatch over virtual time as an
// explicit event loop instead of one inlined planning pass: placements,
// completions, failures, membership changes, and autoscale decisions are
// all Events, appended to a totally ordered log (the same seed and the
// same failure schedule reproduce the same log and the same virtual-time
// tables).  On top of the loop sit the elasticity features the monolithic
// loop could not express:
//
//  - worker failure: fail_worker()/fail_after() drop a worker mid-run;
//    the scheduler re-dispatches its queued + in-flight segments to
//    surviving workers through the active policy, re-shipping class
//    images and replaying write-backs idempotently (each segment's
//    updates write back eagerly at completion, so completed work survives
//    any later loss; primitive-statics refreshes re-ship only fields that
//    still differ).
//  - queue-depth autoscaler: an Autoscaler joins workers from a standby
//    pool when the mean accepting-worker queue depth crosses a high-water
//    mark and drains the newest joiner when it falls below a low-water
//    mark, driven by AutoscaleTick events.
//  - cross-worker ref chaining: a ref-typed segment result forwards
//    worker -> worker through a home-mediated ref-forwarding table — the
//    upstream completion write-back translates the result into a home
//    ref, the downstream worker receives a 16-byte handle materialized as
//    a heap stub, and the object body is fetched lazily on first touch
//    (no synchronous home round-trip of the payload).
//  - checkpointing: with checkpoint_every > 0 an executing segment
//    periodically pauses at a migration-safe point, flushes its heap
//    delta home, and records a resumable state in the home-side
//    CheckpointStore; a later worker loss re-dispatches from the newest
//    checkpoint instead of the original capture, so completed partial
//    work survives.
//  - speculation: an AttemptTracker learns per-class execution spans and
//    flags straggling attempts; a backup attempt is launched from the
//    newest checkpoint on another worker and raced in virtual time —
//    first completion wins, the loser is cancelled at its next
//    chunk boundary and its write-back is suppressed.
//
// dispatch_segments() remains as a thin wrapper: it builds a one-round
// Scheduler and runs the event stream.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "cluster/homeshard.h"

namespace sod::cluster {

class PlacementPolicy;
struct PlacementRequest;

/// What happened at one instant of the scheduler's virtual-time loop.
enum class EventKind {
  SegmentDispatched,      ///< segment placed, shipped, and restored on a worker
  SegmentCompleted,       ///< segment executed; its updates are home
  SegmentFailed,          ///< attempt died with its worker; re-dispatching
  WorkerJoined,           ///< autoscaler promoted a standby worker
  WorkerDraining,         ///< autoscaler started draining a joiner
  WorkerLost,             ///< worker failed; its queue was dropped
  AutoscaleTick,          ///< queue-depth evaluation point
  CheckpointTaken,        ///< in-flight segment state landed in the home store
  SpeculativeDispatched,  ///< straggler backup attempt launched from a checkpoint
  AttemptCancelled,       ///< losing attempt of a speculative race stopped
  ProgramRejected,        ///< admission gate refused the program; nothing ships
};

const char* event_name(EventKind k);

/// Wire size of the small "here is your caller's value" message forwarded
/// between chained segments (matches the Fig. 1(c) experiment).  A
/// cross-worker ref result rides the same message: the payload already
/// went home with the upstream write-back, so only the handle travels.
inline constexpr size_t kResultMsgBytes = 16;

/// One entry of the scheduler's totally ordered event log.  `seq` breaks
/// virtual-time ties deterministically; `round` counts Scheduler::run
/// calls over the scheduler's lifetime.  `attempt` identifies which
/// dispatch of the segment the event belongs to (1-based; speculative
/// backups get their own id), so the attempt-aware exactly-once check can
/// pair cancellations with the attempts they killed.
struct Event {
  EventKind kind{};
  VDur at{};
  int seq = 0;
  int round = -1;
  int segment = -1;  ///< dispatch-local segment index (segment events)
  int worker = -1;   ///< worker id (segment + membership events)
  int attempt = 0;   ///< attempt id (segment + checkpoint events)
};

/// The attempt-aware exactly-once invariant over a scheduler-shaped event
/// log (shared by the virtual-time Scheduler and the wall-clock engine):
/// every (round, segment) ever dispatched has exactly one SegmentCompleted,
/// the completing attempt was itself dispatched, and no attempt that was
/// cancelled or failed ever completes.
bool exactly_once_log(const std::vector<Event>& log);

struct DispatchOptions {
  /// Ship every segment as soon as it is serialized (the Fig. 1(c)
  /// latency-hiding path).  When false, segment i+1 leaves home only after
  /// segment i completed remotely — the sequential baseline.
  bool concurrent = true;
  /// Guest instructions between checkpoints of an executing segment
  /// (0 = checkpointing off).  Each checkpoint pauses the worker at a
  /// migration-safe point, flushes its heap delta home, and records the
  /// resumable state in the home-side CheckpointStore.
  uint64_t checkpoint_every = 0;
  /// Launch a speculative backup attempt from the newest checkpoint when
  /// the running attempt's age exceeds the AttemptTracker's learned span
  /// threshold; the first completion wins and the loser is cancelled.
  /// Requires checkpoint_every > 0.
  bool speculate = false;
  /// Attempt age vs learned per-class EWMA span multiple that flags a
  /// straggler (AttemptTracker::Config::straggler_factor).
  double straggler_factor = 1.75;
  /// On worker loss, re-dispatch the executing attempt from its newest
  /// checkpoint (resume) instead of the original capture (restart).  Only
  /// meaningful with checkpoint_every > 0; exposed so benches can ablate
  /// resume against restart-from-capture under one checkpoint cadence.
  bool resume_from_checkpoint = true;
  /// Skip refresh_primitive_statics scans for classes the whole-program
  /// analyzer proved statics-pure (no reachable PUTSTATIC of a primitive
  /// static).  Bit-identical by construction — an unwritten static always
  /// compares equal and ships zero bytes — so this is purely a hot-path
  /// win; exposed so benches can ablate it.
  bool statics_skip = true;
};

/// Counters for the statics-refresh hot path (one instance per engine):
/// how many per-class scans ran, how many the purity facts skipped, and
/// the wire bytes of fields that actually differed.
struct StaticsRefreshStats {
  size_t scans = 0;
  size_t skipped = 0;
  size_t bytes = 0;
};

struct Placement {
  int worker = -1;
  std::string worker_name;
  mig::SegmentSpec spec{};
  uint16_t cls = 0;          ///< class of the segment's entry frame
  size_t shipped_bytes = 0;  ///< captured state + class image actually shipped
  int attempts = 1;          ///< dispatches incl. re-dispatches after worker loss
  VDur restored_at{};        ///< worker clock when its restore finished
  VDur executed_at{};        ///< worker clock when its execution began (a
                             ///< chained segment first waits for the
                             ///< upstream result; the top segment runs
                             ///< right after its restore)
  VDur completed_at{};       ///< worker clock when its execution finished
};

struct DispatchOutcome {
  std::vector<Placement> placements;
  /// Bottom segment's raw result (worker-local refs for Ref results; the
  /// home-translated value lands in the resumed home frame via write-back).
  bc::Value result{};
  int faults = 0;
  size_t writeback_bytes = 0;
  /// True when at least one lower segment finished restoring before the
  /// segment above it finished executing (freeze time hidden).
  bool overlapped = false;
  /// Segments re-dispatched to a survivor after their worker was lost.
  int redispatched = 0;
  /// Ref-typed results forwarded worker -> worker via home-mediated
  /// handles (the cross-worker ref chain).
  int ref_forwards = 0;
  /// Checkpoints shipped home this round.
  int checkpoints = 0;
  /// Re-dispatches that resumed from a checkpoint instead of the capture.
  int resumed = 0;
  /// Speculative backup attempts launched.
  int speculated = 0;
  /// Losing attempts cancelled (their write-backs suppressed).
  int cancelled = 0;
};

/// Splits the top `k` home frames into k single-frame segments, top first.
std::vector<mig::SegmentSpec> split_top_frames(int k);

/// Copies `src`'s primitive static fields into `dst`'s slots for every
/// static-bearing class loaded on both sides; returns the wire bytes of
/// the fields that actually differed (identical values ship nothing, so
/// replaying the refresh after a re-dispatch is idempotent).  Ref statics
/// are left alone: at a worker they are stubs that resolve against home's
/// *current* fields, so they stay fresh by construction.  With `facts`,
/// classes proved statics-pure are skipped without scanning (legal because
/// an unwritten primitive static always bit-compares equal); `stats`, when
/// given, accumulates scan/skip/byte counters.
size_t refresh_primitive_statics(mig::SodNode& src, mig::SodNode& dst,
                                 const analysis::ProgramFacts* facts = nullptr,
                                 StaticsRefreshStats* stats = nullptr);

/// Queue-depth autoscaler: joins standby workers when the mean accepting
/// queue depth exceeds the high-water mark and drains the newest joiner
/// when it falls below the low-water mark.  Join decisions run on every
/// AutoscaleTick; drain decisions only on placement-phase ticks (right
/// after a round's placements, when queue depths carry signal — the
/// post-completion troughs would otherwise flap the membership).
class Autoscaler {
 public:
  struct Config {
    double high_water = 1.25;
    double low_water = 0.4;
  };

  Autoscaler(Config cfg, std::vector<WorkerSpec> standby)
      : cfg_(cfg), standby_(std::move(standby)) {}

  struct Action {
    EventKind kind;  ///< WorkerJoined or WorkerDraining
    int worker;
  };
  /// Evaluates one AutoscaleTick against the cluster, applying at most one
  /// membership action (add_worker / drain_worker).  The scheduler turns
  /// the returned action into an event.
  std::optional<Action> tick(Cluster& c, bool placement_phase);

  int joins() const { return joins_; }
  int drains() const { return drains_; }
  int standby_left() const { return static_cast<int>(standby_.size() - next_standby_); }

 private:
  Config cfg_;
  std::vector<WorkerSpec> standby_;  ///< consumed front to back
  size_t next_standby_ = 0;
  std::vector<int> joined_;  ///< active joiner ids, join order (drained LIFO)
  int joins_ = 0;
  int drains_ = 0;
};

/// The event loop.  One Scheduler persists across dispatch rounds so the
/// failure plan, the autoscaler, the ref-forwarding table, and the event
/// log span a whole scenario run.
class Scheduler {
 public:
  Scheduler(Cluster& c, PlacementPolicy& policy, DispatchOptions opt = {});
  ~Scheduler();  // Task is private and defined in the .cpp

  Cluster& cluster() { return *c_; }

  /// Attach the queue-depth autoscaler (nullptr detaches).
  void set_autoscaler(std::unique_ptr<Autoscaler> a) { autoscaler_ = std::move(a); }
  Autoscaler* autoscaler() { return autoscaler_.get(); }

  /// Schedules a worker loss once `completions` SegmentCompleted events
  /// have fired over the scheduler's lifetime.  `worker` < 0 picks the
  /// accepting worker with the deepest queue at the firing instant (ties
  /// to the lowest id) — the most disruptive deterministic choice.
  void fail_after(int completions, int worker = -1);
  /// Schedules a worker loss once `checkpoints` CheckpointTaken events
  /// have fired over the scheduler's lifetime (requires
  /// checkpoint_every > 0 to ever fire).  `worker` < 0 targets the worker
  /// that took the triggering checkpoint — killing the in-flight attempt
  /// mid-execution, the case that distinguishes resume-from-checkpoint
  /// from restart-from-capture.
  void fail_after_checkpoints(int checkpoints, int worker = -1);
  /// Fails a worker immediately: drops its queue and, mid-run,
  /// re-dispatches its outstanding segments to surviving workers.
  void fail_worker(int worker);

  /// Captures the contiguous top-of-stack segments `specs` (specs[0] must
  /// start at depth 0, each next one at the previous depth_hi) from the
  /// paused home thread, then runs the event loop: each segment is
  /// placed via the policy, restored on its worker, executed when its
  /// upstream result arrives, and written back home at completion; the
  /// bottom segment's write-back pops the migrated span and leaves the
  /// home thread runnable.  Worker losses and autoscale actions interleave
  /// with the segment lifecycle as events.  The home thread's top frame
  /// must be at a migration-safe point and its stack must be strictly
  /// deeper than specs.back().depth_hi.
  DispatchOutcome run(int home_tid, const std::vector<mig::SegmentSpec>& specs);

  /// Totally ordered event log across all rounds so far.
  const std::vector<Event>& log() const { return log_; }
  /// The attempt-aware exactly-once invariant, checked against the log:
  /// every (round, segment) that was ever dispatched has exactly one
  /// SegmentCompleted — speculative duplicate *dispatches* are legal, but
  /// only one attempt per segment may complete (and write back), the
  /// completing attempt must itself have been dispatched, and no attempt
  /// that was cancelled or failed ever completes.
  bool exactly_once() const;
  /// Rounds run so far (the `round` stamped on events).
  int rounds() const { return round_ + 1; }
  int completions() const { return completed_total_; }
  int workers_lost() const { return lost_total_; }
  int redispatches() const { return redispatched_total_; }
  int checkpoints() const { return store_.total_recorded(); }
  int resumes() const { return resumed_total_; }
  int speculations() const { return speculated_total_; }
  int cancellations() const { return cancelled_total_; }
  /// Statics-refresh scan/skip/byte counters over the scheduler's lifetime.
  const StaticsRefreshStats& statics_stats() const { return statics_stats_; }
  /// Home-side checkpoint store (newest resumable state per segment).
  const CheckpointStore& store() const { return store_; }
  /// Straggler detector driving speculative re-dispatch.
  const AttemptTracker& tracker() const { return tracker_; }

  /// All home-mediated ref forwards so far, in append order (the
  /// RefForwardTable reassembles its home-shard partitions by sequence
  /// number, so this view is identical at any shard count).
  std::vector<RefForward> ref_forwards() const { return forwards_.ordered(); }
  /// The sharded forwarding table itself (partition layout introspection).
  const RefForwardTable& forward_table() const { return forwards_; }

 private:
  struct Task;
  struct Race;
  struct FailurePlan {
    enum class Trigger { Completions, Checkpoints };
    Trigger trigger;
    int at_count;
    int worker;
    bool fired = false;
  };

  /// A fresh attempt restored from a checkpoint, ready to run (shared by
  /// failure resume and speculative backup launch).
  struct CheckpointRestore {
    std::unique_ptr<mig::Segment> seg;
    Placement pl{};
    VDur est{};
  };

  void emit(EventKind kind, VDur at, int segment, int worker, int attempt = 0);
  void dispatch(size_t i);
  void prepare(size_t i);
  void execute(size_t i);
  void run_attempts(size_t i);
  bool take_checkpoint(size_t i);
  CheckpointRestore restore_from_checkpoint(size_t i, int w, const CheckpointStore::Entry& ck);
  void resume_dispatch(size_t i, const CheckpointStore::Entry& ck);
  bool launch_backup(size_t i);
  void cancel_attempt(size_t i, int loser_worker, int loser_attempt, VDur loser_est,
                      int winner_worker, VDur winner_completed);
  void write_back(size_t i);
  void do_fail(int worker);
  int pick_failure_target() const;
  void process_failure_plans();
  void process_checkpoint_plans(int ckpt_worker);
  void autoscale_tick(bool placement_phase);

  Cluster* c_;
  PlacementPolicy* policy_;
  DispatchOptions opt_;
  std::unique_ptr<Autoscaler> autoscaler_;
  std::vector<FailurePlan> plans_;
  std::vector<Event> log_;
  RefForwardTable forwards_;
  CheckpointStore store_;
  AttemptTracker tracker_;
  StaticsRefreshStats statics_stats_;
  int seq_ = 0;
  int round_ = -1;
  int completed_total_ = 0;
  int lost_total_ = 0;
  int redispatched_total_ = 0;
  int resumed_total_ = 0;
  int speculated_total_ = 0;
  int cancelled_total_ = 0;

  // Live only inside run(); do_fail consults them for mid-run re-dispatch.
  int home_tid_ = -1;
  std::vector<Task> tasks_;
  DispatchOutcome* out_ = nullptr;
  Race* race_ = nullptr;  ///< in-flight attempt race of the executing task
};

/// Thin wrapper for one-shot dispatch: builds a single-round Scheduler
/// (no failure plan, no autoscaler) and runs the event stream.  Completed
/// placements are fed back to the policy (PlacementPolicy::observe) so
/// learning policies can refine their execution-time estimates.
DispatchOutcome dispatch_segments(Cluster& c, int home_tid,
                                  const std::vector<mig::SegmentSpec>& specs,
                                  PlacementPolicy& policy, const DispatchOptions& opt = {});

}  // namespace sod::cluster
