#include "cluster/scheduler.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/placement.h"

namespace sod::cluster {

namespace {

/// Bitwise value identity: the statics refresh must not re-ship a field
/// whose payload is unchanged (and must still ship e.g. a NaN that was
/// overwritten by a different NaN).
bool same_payload(const bc::Value& a, const bc::Value& b) {
  if (a.tag != b.tag) return false;
  if (a.tag == bc::Ty::F64) return std::bit_cast<int64_t>(a.d) == std::bit_cast<int64_t>(b.d);
  return a.i == b.i;
}

}  // namespace

const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::SegmentDispatched: return "segment_dispatched";
    case EventKind::SegmentCompleted: return "segment_completed";
    case EventKind::SegmentFailed: return "segment_failed";
    case EventKind::WorkerJoined: return "worker_joined";
    case EventKind::WorkerDraining: return "worker_draining";
    case EventKind::WorkerLost: return "worker_lost";
    case EventKind::AutoscaleTick: return "autoscale_tick";
    case EventKind::CheckpointTaken: return "checkpoint_taken";
    case EventKind::SpeculativeDispatched: return "speculative_dispatched";
    case EventKind::AttemptCancelled: return "attempt_cancelled";
    case EventKind::ProgramRejected: return "program_rejected";
  }
  SOD_UNREACHABLE("bad EventKind");
}

size_t refresh_primitive_statics(mig::SodNode& src, mig::SodNode& dst,
                                 const analysis::ProgramFacts* facts,
                                 StaticsRefreshStats* stats) {
  const bc::Program& P = src.program();
  size_t bytes = 0;
  for (const auto& cls : P.classes) {
    if (cls.num_static_slots == 0) continue;
    if (!src.vm().class_loaded(cls.id) || !dst.vm().class_loaded(cls.id)) continue;
    if (facts != nullptr && facts->class_statics_pure(cls.id)) {
      // No reachable PUTSTATIC ever targets a primitive static of this
      // class, and every node initialized it identically from the shared
      // program — the scan below would always find same_payload and ship
      // zero bytes, so skipping it is bit-identical.
      if (stats != nullptr) ++stats->skipped;
      continue;
    }
    if (stats != nullptr) ++stats->scans;
    std::span<const bc::Value> src_vals = src.vm().statics_of(cls.id);
    std::vector<bc::Value> dst_vals(dst.vm().statics_of(cls.id).begin(),
                                    dst.vm().statics_of(cls.id).end());
    bool changed = false;
    for (uint16_t fid : cls.field_ids) {
      const bc::Field& f = P.field(fid);
      if (!f.is_static || f.type == bc::Ty::Ref) continue;
      if (same_payload(dst_vals[f.slot], src_vals[f.slot])) continue;
      dst_vals[f.slot] = src_vals[f.slot];
      bytes += 8;
      changed = true;
    }
    if (changed) dst.vm().overwrite_statics(cls.id, std::move(dst_vals));
  }
  if (stats != nullptr) stats->bytes += bytes;
  return bytes;
}

std::vector<mig::SegmentSpec> split_top_frames(int k) {
  SOD_CHECK(k >= 1, "split of zero frames");
  std::vector<mig::SegmentSpec> specs;
  specs.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) specs.push_back(mig::SegmentSpec{i, i + 1});
  return specs;
}

// ---------------------------------------------------------------- autoscaler

std::optional<Autoscaler::Action> Autoscaler::tick(Cluster& c, bool placement_phase) {
  // Joiners the cluster already drained/lost behind our back (scenario
  // churn, failures) no longer count as scalable capacity.
  while (!joined_.empty() && c.state(joined_.back()) != WorkerState::Active)
    joined_.pop_back();
  double depth = c.mean_queue_depth();
  if (depth > cfg_.high_water && next_standby_ < standby_.size()) {
    int id = c.add_worker(standby_[next_standby_++]);
    joined_.push_back(id);
    ++joins_;
    return Action{EventKind::WorkerJoined, id};
  }
  if (placement_phase && depth < cfg_.low_water && !joined_.empty()) {
    int id = joined_.back();
    joined_.pop_back();
    // Immediate retire when idle (no next-round lag); otherwise the
    // worker finishes its queue and retires on its last completion.
    c.drain_worker(id);
    ++drains_;
    return Action{EventKind::WorkerDraining, id};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------- scheduler

/// Per-segment lifecycle state for the current round.
struct Scheduler::Task {
  mig::SegmentSpec spec{};
  mig::CapturedState cs;
  std::unique_ptr<mig::Segment> seg;
  PlacementRequest req{};
  Placement pl{};
  bool dispatched = false;
  bool completed = false;
  int attempts = 0;
  bc::Value result{};       ///< worker-local result after execution
  bc::Value home_result{};  ///< home-translated result (ref-forwarding entry)
  mig::CheckpointDeltas deltas;  ///< incremental-transfer state of the live attempt
  VDur est_cost{};        ///< queue estimate recorded with the live attempt
  bool resumed = false;   ///< current attempt restored from a checkpoint
  bool partial = false;   ///< winning span did not cover a full execution
  int faults_accum = 0;   ///< faults of attempts that were replaced or lost
};

/// In-flight attempt race of the executing task.  The primary attempt
/// lives in the Task itself (seg/pl); the speculative backup lives here.
/// do_fail consults this so it never re-dispatches an attempt the chunk
/// loop is about to handle itself.
struct Scheduler::Race {
  size_t task = 0;
  std::unique_ptr<mig::Segment> backup_seg;
  Placement backup_pl{};
  VDur backup_est{};
  int backup_id = 0;
  bool backup_live = false;
};

Scheduler::Scheduler(Cluster& c, PlacementPolicy& policy, DispatchOptions opt)
    : c_(&c),
      policy_(&policy),
      opt_(opt),
      tracker_(AttemptTracker::Config{opt.straggler_factor}) {
  // Partition the home-side tables by the cluster's shard map (fixed at
  // construction; set_home_shards must run before the scheduler is built).
  forwards_.configure(&c.shard_map());
  store_.configure(&c.shard_map());
  // Admission verdict is part of the event stream: a program that failed
  // the cluster's static analysis is announced up front, and run() refuses
  // to ship any of its class images.
  if (!c.admission().admitted) emit(EventKind::ProgramRejected, c.home_now(), -1, -1);
}

Scheduler::~Scheduler() = default;

void Scheduler::fail_after(int completions, int worker) {
  SOD_CHECK(completions >= 0, "fail_after with a negative completion count");
  plans_.push_back(FailurePlan{FailurePlan::Trigger::Completions, completions, worker});
}

void Scheduler::fail_after_checkpoints(int checkpoints, int worker) {
  SOD_CHECK(checkpoints >= 1, "fail_after_checkpoints needs a positive checkpoint count");
  plans_.push_back(FailurePlan{FailurePlan::Trigger::Checkpoints, checkpoints, worker});
}

void Scheduler::fail_worker(int worker) { do_fail(worker); }

void Scheduler::emit(EventKind kind, VDur at, int segment, int worker, int attempt) {
  Event e;
  e.kind = kind;
  e.at = at;
  e.seq = seq_++;
  e.round = round_;
  e.segment = segment;
  e.worker = worker;
  e.attempt = attempt;
  log_.push_back(e);
  policy_->observe(*c_, e);
}

int Scheduler::pick_failure_target() const {
  int best = -1;
  for (int w = 0; w < c_->size(); ++w) {
    if (!c_->accepting(w)) continue;
    if (best < 0 || c_->inflight(w) > c_->inflight(best)) best = w;
  }
  SOD_CHECK(best >= 0, "failure injection on a cluster with no accepting workers");
  return best;
}

void Scheduler::do_fail(int worker) {
  if (worker < 0) worker = pick_failure_target();
  SOD_CHECK(worker >= 0 && worker < c_->size(), "fail of a bad worker id");
  if (c_->state(worker) == WorkerState::Retired || c_->state(worker) == WorkerState::Lost)
    return;
  int dropped = c_->fail_worker(worker);
  ++lost_total_;
  emit(EventKind::WorkerLost, c_->home_now(), -1, worker);
  SOD_CHECK(c_->accepting_size() > 0, "worker failure left no accepting workers");
  if (out_ == nullptr) return;  // between rounds: nothing in flight
  // Re-dispatch every outstanding assignment of the lost worker.  Its
  // queued segments never executed (execution is what retires a queue
  // entry), so re-running each from its captured state keeps every
  // segment executed exactly once; the re-dispatch re-ships the class
  // image when the survivor lacks it, and the delivery-time statics
  // refresh replays earlier write-backs idempotently.  Attempts the chunk
  // loop is racing right now are skipped — it notices the loss at the
  // checkpoint boundary and resumes (or cancels) them itself.
  int requeued = 0;
  int racing = 0;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    Task& t = tasks_[i];
    if (!t.dispatched || t.completed || t.pl.worker != worker) continue;
    if (race_ != nullptr && race_->task == i) {
      ++racing;
      continue;
    }
    emit(EventKind::SegmentFailed, c_->home_now(), static_cast<int>(i), worker, t.attempts);
    dispatch(i);
    ++out_->redispatched;
    ++redispatched_total_;
    ++requeued;
  }
  if (race_ != nullptr && race_->backup_live && race_->backup_pl.worker == worker) ++racing;
  SOD_CHECK(requeued + racing == dropped, "lost-worker queue out of sync with the task table");
}

void Scheduler::process_failure_plans() {
  for (FailurePlan& plan : plans_) {
    if (plan.fired || plan.trigger != FailurePlan::Trigger::Completions) continue;
    if (completed_total_ < plan.at_count) continue;
    plan.fired = true;
    do_fail(plan.worker);
  }
}

void Scheduler::process_checkpoint_plans(int ckpt_worker) {
  for (FailurePlan& plan : plans_) {
    if (plan.fired || plan.trigger != FailurePlan::Trigger::Checkpoints) continue;
    if (store_.total_recorded() < plan.at_count) continue;
    plan.fired = true;
    // A negative target means "the worker that took the triggering
    // checkpoint" — killing the in-flight attempt, the case that
    // separates resume-from-checkpoint from restart-from-capture.
    do_fail(plan.worker >= 0 ? plan.worker : ckpt_worker);
  }
}

void Scheduler::autoscale_tick(bool placement_phase) {
  if (!autoscaler_) return;
  emit(EventKind::AutoscaleTick, c_->home_now(), -1, -1);
  if (auto action = autoscaler_->tick(*c_, placement_phase))
    emit(action->kind, c_->home_now(), -1, action->worker);
}

void Scheduler::dispatch(size_t i) {
  Task& t = tasks_[i];
  mig::SodNode& home = c_->home();
  const mig::CapturedState& cs = t.cs;
  uint16_t entry_cls = home.program().method(cs.frames[0].method).owner;
  t.req.cls = entry_cls;
  t.req.state_bytes = cs.wire_size();
  t.req.class_image_bytes = home.program().class_image(entry_cls).size();
  t.req.msp_state_slots = c_->facts().class_msp_state_slots(entry_cls);
  int w = policy_->choose(*c_, t.req);
  SOD_CHECK(w >= 0 && w < c_->size(), "policy chose an invalid worker");
  SOD_CHECK(c_->accepting(w), "policy chose a non-accepting worker");
  t.est_cost = policy_->estimate(*c_, w, t.req);
  c_->note_assigned(w, t.est_cost);
  mig::SodNode& dst = c_->worker(w);

  if (t.seg) t.faults_accum += t.seg->objman().stats().faults;
  t.deltas = {};
  t.resumed = false;
  t.partial = false;  // a restart re-executes the full segment
  Placement& pl = t.pl;
  pl = Placement{};
  pl.worker = w;
  pl.worker_name = dst.name();
  pl.spec = t.spec;
  pl.cls = entry_cls;
  pl.attempts = ++t.attempts;
  pl.shipped_bytes = t.req.state_bytes;
  if (!dst.class_shipped(entry_cls)) pl.shipped_bytes += t.req.class_image_bytes;

  dst.mark_class_shipped(entry_cls);
  dst.enable_class_fetch(&home, c_->link(w));
  // A re-dispatch re-serializes and re-ships from home's current send
  // front: the original copy died with the lost worker.
  home.node().charge_host(
      home.serde().cost(t.req.state_bytes, static_cast<int>(cs.frames.size())));
  sim::deliver(home.node(), dst.node(), c_->link(w), pl.shipped_bytes);

  t.seg = std::make_unique<mig::Segment>(dst);
  t.seg->objman().set_shard_map(&c_->shard_map());
  t.seg->objman().bind_home(&home, home_tid_, t.spec.depth_hi, c_->link(w));
  t.seg->restore(cs);
  pl.restored_at = dst.node().clock.now();
  t.dispatched = true;
  emit(EventKind::SegmentDispatched, pl.restored_at, static_cast<int>(i), w, t.attempts);
}

Scheduler::CheckpointRestore Scheduler::restore_from_checkpoint(
    size_t i, int w, const CheckpointStore::Entry& ck) {
  Task& t = tasks_[i];
  mig::SodNode& home = c_->home();
  mig::SodNode& dst = c_->worker(w);
  PlacementRequest req = t.req;
  req.state_bytes = ck.ckpt.state_bytes;
  CheckpointRestore r;
  r.est = policy_->estimate(*c_, w, req);
  c_->note_assigned(w, r.est);
  r.pl.worker = w;
  r.pl.worker_name = dst.name();
  r.pl.spec = t.spec;
  r.pl.cls = t.req.cls;
  r.pl.attempts = ++t.attempts;
  r.pl.shipped_bytes = ck.ckpt.state_bytes;
  if (!dst.class_shipped(t.req.cls)) r.pl.shipped_bytes += t.req.class_image_bytes;

  dst.mark_class_shipped(t.req.cls);
  dst.enable_class_fetch(&home, c_->link(w));
  // The checkpoint lives at home: home re-serializes and ships it to the
  // new worker from its current send front.
  home.node().charge_host(home.serde().cost(ck.ckpt.state_bytes,
                                            static_cast<int>(ck.ckpt.state.frames.size())));
  sim::deliver(home.node(), dst.node(), c_->link(w), r.pl.shipped_bytes);

  r.seg = std::make_unique<mig::Segment>(dst);
  r.seg->objman().set_shard_map(&c_->shard_map());
  r.seg->objman().bind_home(&home, home_tid_, t.spec.depth_hi, c_->link(w));
  r.seg->restore(ck.ckpt.state);
  r.pl.restored_at = dst.node().clock.now();
  // A checkpoint resumes mid-execution: no upstream delivery is pending,
  // the attempt starts executing right after its restore.
  r.pl.executed_at = r.pl.restored_at;
  return r;
}

void Scheduler::resume_dispatch(size_t i, const CheckpointStore::Entry& ck) {
  Task& t = tasks_[i];
  PlacementRequest req = t.req;
  req.state_bytes = ck.ckpt.state_bytes;
  int w = policy_->choose(*c_, req);
  SOD_CHECK(w >= 0 && w < c_->size(), "policy chose an invalid worker");
  SOD_CHECK(c_->accepting(w), "policy chose a non-accepting worker");

  if (t.seg) t.faults_accum += t.seg->objman().stats().faults;
  // The new attempt starts from the checkpoint's heap flush: its delta
  // tracker starts empty against its fresh object-manager maps.
  t.deltas = {};
  t.resumed = true;
  t.partial = true;
  CheckpointRestore r = restore_from_checkpoint(i, w, ck);
  t.seg = std::move(r.seg);
  t.pl = r.pl;
  t.est_cost = r.est;
  ++resumed_total_;
  ++out_->resumed;
  ++out_->redispatched;
  ++redispatched_total_;
  emit(EventKind::SegmentDispatched, t.pl.restored_at, static_cast<int>(i), w, t.attempts);
}

bool Scheduler::launch_backup(size_t i) {
  Task& t = tasks_[i];
  const CheckpointStore::Entry* ck = store_.latest(round_, static_cast<int>(i));
  if (ck == nullptr) return false;
  PlacementRequest req = t.req;
  req.state_bytes = ck->ckpt.state_bytes;
  int w = choose_backup(*policy_, *c_, req, t.pl.worker);
  if (w < 0) return false;
  Race& r = *race_;
  CheckpointRestore cr = restore_from_checkpoint(i, w, *ck);
  r.backup_seg = std::move(cr.seg);
  r.backup_pl = cr.pl;
  r.backup_est = cr.est;
  r.backup_id = t.attempts;
  r.backup_live = true;
  ++speculated_total_;
  ++out_->speculated;
  emit(EventKind::SpeculativeDispatched, r.backup_pl.restored_at, static_cast<int>(i), w,
       r.backup_id);
  return true;
}

bool Scheduler::take_checkpoint(size_t i) {
  Task& t = tasks_[i];
  mig::SodNode& home = c_->home();
  auto ck = mig::checkpoint_segment(*t.seg, home, c_->link(t.pl.worker), t.deltas,
                                  /*apply_at_home=*/opt_.resume_from_checkpoint);
  VDur at = home.node().clock.now();
  ++out_->checkpoints;
  store_.record(round_, static_cast<int>(i), std::move(ck), t.attempts, at);
  emit(EventKind::CheckpointTaken, at, static_cast<int>(i), t.pl.worker, t.attempts);
  process_checkpoint_plans(t.pl.worker);
  // Only an outright loss kills the attempt: a worker the autoscaler
  // started draining still finishes its queued work (completion is what
  // retires it).
  return c_->state(t.pl.worker) != WorkerState::Lost;
}

void Scheduler::cancel_attempt(size_t i, int loser_worker, int loser_attempt, VDur loser_est,
                               int winner_worker, VDur winner_completed) {
  // The winner's completion signal travels to home, home cancels the
  // loser; the loser stops at its current chunk boundary or the cancel
  // arrival, whichever is later, and never writes back.
  VDur arrival = winner_completed + c_->link(winner_worker).transfer_time(kResultMsgBytes) +
                 c_->link(loser_worker).transfer_time(kResultMsgBytes);
  auto& ln = c_->worker(loser_worker).node();
  ln.clock.wait_until(arrival);
  emit(EventKind::AttemptCancelled, ln.clock.now(), static_cast<int>(i), loser_worker,
       loser_attempt);
  c_->note_cancelled(loser_worker, loser_est);
  ++cancelled_total_;
  ++out_->cancelled;
}

void Scheduler::prepare(size_t i) {
  Task& t = tasks_[i];
  mig::SodNode& home = c_->home();
  Placement& pl = t.pl;
  mig::Segment& seg = *t.seg;
  mig::SodNode& dst = c_->worker(pl.worker);
  // Re-bind the worker's objman.* natives to this segment: a later
  // segment restored on the same worker overwrote them.
  seg.objman().install(dst);
  if (i > 0) {
    const Task& up = tasks_[i - 1];
    // The upper segment's updates reached home with its completion
    // write-back; resume with home's now-current primitive statics (TSP's
    // best-bound static is the canonical case).  Unchanged fields ship
    // nothing, so a re-dispatched segment replays this refresh
    // idempotently against its new worker.
    size_t stat_bytes = refresh_primitive_statics(
        home, dst, opt_.statics_skip ? &c_->facts() : nullptr, &statics_stats_);
    bc::Value v_in = up.result;
    if (up.pl.worker != pl.worker) {
      // The result is relayed worker -> home -> worker (links are
      // home-anchored), so it pays both the source uplink and the
      // destination downlink; home only stores-and-forwards.
      VDur arrival = c_->worker(up.pl.worker).node().clock.now() +
                     c_->link(up.pl.worker).transfer_time(kResultMsgBytes) +
                     c_->link(pl.worker).transfer_time(kResultMsgBytes);
      dst.node().clock.wait_until(arrival);
      if (v_in.tag == bc::Ty::Ref && v_in.r != bc::kNull) {
        // Cross-worker ref chaining: the upstream worker's heap id would
        // alias or dangle here.  The upstream write-back already
        // translated the result into a home ref; forward that handle and
        // materialize it as a stub — the object body is fetched lazily on
        // first touch.  A restart after a mid-execution worker loss
        // replays this forward (the handle really travels again).  The
        // escape facts are load-bearing here: write_back only retained the
        // forwarding entry because the analyzer proved the class can leak
        // a ref, so a ref actually arriving from a "no-escape" class would
        // mean the analysis is unsound.
        SOD_CHECK(c_->facts().class_ref_escape(up.pl.cls),
                  "ref result from a class the analyzer proved escape-free");
        SOD_CHECK(up.home_result.tag == bc::Ty::Ref && up.home_result.r != bc::kNull,
                  "cross-worker ref result missing from the forwarding table");
        bc::Ref stub = dst.vm().heap().alloc_stub(up.home_result.r);
        v_in = bc::Value::of_ref(stub);
        forwards_.record(RefForward{round_, static_cast<int>(i) - 1, up.pl.worker,
                                    pl.worker, up.home_result.r});
        ++out_->ref_forwards;
      }
    }
    if (stat_bytes > 0) sim::deliver(home.node(), dst.node(), c_->link(pl.worker), stat_bytes);
    out_->overlapped = out_->overlapped || pl.restored_at < up.pl.completed_at;
    // A completed upper segment on this worker may have dropped debug
    // mode; deliver() needs its pending-call breakpoint to fire.
    dst.ti().set_debug_enabled(true);
    seg.deliver(v_in);
  }
  // Debug mode is per-node, not per-segment: a lower segment restored on
  // this worker after `seg` left the node's debug interpreter on, and
  // seg's own run_to_completion() would not drop it (its debug_held_ is
  // false).  Force fast mode — the paper runs it outside migration
  // events — or the whole execution is charged at the debug multiplier.
  dst.ti().set_debug_enabled(false);
}

void Scheduler::run_attempts(size_t i) {
  Task& t = tasks_[i];
  Race race;
  race.task = i;
  race_ = &race;

  auto clock_of = [&](int w) { return c_->worker(w).node().clock.now(); };

  // --- single-attempt phase: chunked execution with checkpoints -------
  // Every checkpoint both bounds the work a failure can lose and is the
  // state a speculative backup starts from.  Speculation and resume
  // always use the *newest* checkpoint, whose heap flush is exactly
  // home's current object state, so a restarted computation can never
  // observe home running ahead of it.
  bool primary_done = false;
  while (!race.backup_live) {
    svm::StopReason sr = t.seg->run_chunk(opt_.checkpoint_every);
    if (sr == svm::StopReason::Done) {
      primary_done = true;
      break;
    }
    if (!take_checkpoint(i)) {
      // A checkpoint-triggered plan killed this attempt's worker.  Its
      // queue entry died with the worker; the newest checkpoint (just
      // taken) resumes the work, or the original capture restarts it
      // when resume is disabled (the restart-from-capture ablation).
      emit(EventKind::SegmentFailed, c_->home_now(), static_cast<int>(i), t.pl.worker,
           t.attempts);
      const CheckpointStore::Entry* ck = store_.latest(round_, static_cast<int>(i));
      if (opt_.resume_from_checkpoint && ck != nullptr) {
        resume_dispatch(i, *ck);
      } else {
        dispatch(i);
        ++out_->redispatched;
        ++redispatched_total_;
        prepare(i);
        // The restarted attempt re-executes from the original capture on
        // its new worker; its span restarts with it.
        t.pl.executed_at = c_->worker(t.pl.worker).node().clock.now();
      }
      continue;
    }
    // A checkpoint-triggered plan may have re-dispatched another task
    // onto this worker; the new Segment's construction rebound the
    // node's objman natives.  Re-claim them for the running attempt.
    t.seg->objman().install(c_->worker(t.pl.worker));
    if (opt_.speculate && !race.backup_live) {
      VDur age = clock_of(t.pl.worker) - t.pl.executed_at;
      if (tracker_.straggler(t.req.cls, age)) launch_backup(i);
    }
  }

  // --- race phase: first completion wins ------------------------------
  // Advance whichever attempt's virtual clock lags, one chunk at a time
  // (no further checkpoints: a racing pair's flushes would let home run
  // ahead of the eventual loser).  An attempt "completes first" only once
  // the other's clock has provably passed its completion instant.
  bc::Value primary_result{};
  VDur primary_completed{};
  if (primary_done) {
    primary_result = t.seg->result();
    primary_completed = clock_of(t.pl.worker);
  }
  bool backup_done = false;
  bc::Value backup_result{};
  VDur backup_completed{};
  while (race.backup_live) {
    VDur p_now = clock_of(t.pl.worker);
    VDur b_now = clock_of(race.backup_pl.worker);
    if (primary_done && (backup_done ? primary_completed <= backup_completed
                                     : b_now >= primary_completed)) {
      // Primary wins (ties go to the primary: it was dispatched first).
      cancel_attempt(i, race.backup_pl.worker, race.backup_id, race.backup_est, t.pl.worker,
                     primary_completed);
      t.faults_accum += race.backup_seg->objman().stats().faults;
      race.backup_live = false;
      break;
    }
    if (backup_done &&
        (primary_done ? backup_completed < primary_completed : p_now >= backup_completed)) {
      // Backup wins: it becomes the task's attempt, the primary is
      // cancelled and its write-back suppressed.
      cancel_attempt(i, t.pl.worker, t.pl.attempts, t.est_cost, race.backup_pl.worker,
                     backup_completed);
      t.faults_accum += t.seg->objman().stats().faults;
      t.seg = std::move(race.backup_seg);
      t.pl = race.backup_pl;
      t.est_cost = race.backup_est;
      t.partial = true;
      primary_done = true;
      primary_result = backup_result;
      primary_completed = backup_completed;
      race.backup_live = false;
      break;
    }
    bool advance_backup = !backup_done && (primary_done || b_now < p_now);
    if (advance_backup) {
      if (race.backup_seg->run_chunk(opt_.checkpoint_every) == svm::StopReason::Done) {
        backup_done = true;
        backup_result = race.backup_seg->result();
        backup_completed = clock_of(race.backup_pl.worker);
      }
    } else {
      if (t.seg->run_chunk(opt_.checkpoint_every) == svm::StopReason::Done) {
        primary_done = true;
        primary_result = t.seg->result();
        primary_completed = clock_of(t.pl.worker);
      }
    }
  }

  t.result = primary_result;
  t.pl.completed_at = primary_completed;
  race_ = nullptr;
}

void Scheduler::execute(size_t i) {
  Task& t = tasks_[i];
  prepare(i);
  Placement& pl = t.pl;
  mig::SodNode& dst = c_->worker(pl.worker);
  pl.executed_at = dst.node().clock.now();
  if (opt_.checkpoint_every == 0) {
    t.result = t.seg->run_to_completion();
    pl.completed_at = dst.node().clock.now();
  } else {
    run_attempts(i);
  }
  c_->note_completed(t.pl.worker, t.est_cost);
  t.completed = true;
  ++completed_total_;
  // Partial spans (checkpoint resumes, winning backups) would train the
  // estimators on less than a full execution; only clean attempts teach.
  if (!t.partial) {
    policy_->observe(*c_, t.req, t.pl);
    double scale = c_->worker(t.pl.worker).config().cpu_scale;
    if (scale > 0) {
      VDur span = t.pl.completed_at - t.pl.executed_at;
      tracker_.observe(t.req.cls,
                       VDur::nanos(static_cast<int64_t>(static_cast<double>(span.ns) / scale)));
    }
  }
}

void Scheduler::write_back(size_t i) {
  Task& t = tasks_[i];
  bool bottom = i + 1 == tasks_.size();
  // Every segment's updates (and its result, translated into home refs)
  // go home eagerly at completion, so completed work survives any later
  // worker loss and ref results are forwardable; the bottom segment's
  // write-back additionally pops the whole migrated span and makes the
  // home thread runnable again.  Only the winning attempt ever reaches
  // this point — a cancelled or failed attempt's write-back is suppressed
  // by construction.
  auto rep = mig::write_back(*t.seg, c_->home(), home_tid_, bottom ? t.spec.depth_hi : 0,
                             t.result, c_->link(t.pl.worker));
  out_->writeback_bytes += rep.bytes;
  // The ref-forwarding table only tracks classes the analyzer says can
  // actually chain a ref (return or statically store one); everyone else's
  // home-translated result is dropped here and prepare() checks none ever
  // arrives.
  if (c_->facts().class_ref_escape(t.pl.cls)) t.home_result = rep.home_result;
  store_.drop(round_, static_cast<int>(i));
}

bool exactly_once_log(const std::vector<Event>& log) {
  // Attempt-aware invariant: speculative duplicate dispatches are legal,
  // but exactly one attempt per (round, segment) completes and writes
  // back; the completing attempt must have been dispatched and must not
  // have been cancelled or failed.
  std::map<std::pair<int, int>, std::pair<int, int>> counts;  // key -> (dispatched, completed)
  std::map<std::pair<int, int>, int> completing_attempt;
  std::set<std::tuple<int, int, int>> launched, killed;
  for (const Event& e : log) {
    auto rs = std::pair(e.round, e.segment);
    switch (e.kind) {
      case EventKind::SegmentDispatched:
      case EventKind::SpeculativeDispatched:
        ++counts[rs].first;
        launched.insert({e.round, e.segment, e.attempt});
        break;
      case EventKind::SegmentFailed:
      case EventKind::AttemptCancelled:
        killed.insert({e.round, e.segment, e.attempt});
        break;
      case EventKind::SegmentCompleted:
        ++counts[rs].second;
        completing_attempt[rs] = e.attempt;
        break;
      default: break;
    }
  }
  for (const auto& [key, c] : counts)
    if (c.first < 1 || c.second != 1) return false;
  for (const auto& [rs, attempt] : completing_attempt) {
    std::tuple key(rs.first, rs.second, attempt);
    if (launched.count(key) == 0 || killed.count(key) != 0) return false;
  }
  return true;
}

bool Scheduler::exactly_once() const { return exactly_once_log(log_); }

DispatchOutcome Scheduler::run(int home_tid, const std::vector<mig::SegmentSpec>& specs) {
  mig::SodNode& home = c_->home();
  ++round_;
  SOD_CHECK(c_->admission().admitted,
            "dispatch of a program that failed admission (see Cluster::admission())");
  SOD_CHECK(c_->accepting_size() > 0, "dispatch on a cluster with no accepting workers");
  SOD_CHECK(!specs.empty(), "dispatch of zero segments");
  SOD_CHECK(!opt_.speculate || opt_.checkpoint_every > 0,
            "speculation requires checkpointing (checkpoint_every > 0)");
  SOD_CHECK(!opt_.speculate || opt_.resume_from_checkpoint,
            "speculation requires resume_from_checkpoint (backups restore from the store)");
  for (size_t i = 0; i < specs.size(); ++i) {
    SOD_CHECK(specs[i].len() >= 1, "empty segment spec");
    int expect_lo = i == 0 ? 0 : specs[i - 1].depth_hi;
    SOD_CHECK(specs[i].depth_lo == expect_lo, "segment specs not contiguous from the top");
  }

  // Capture every segment while the thread is paused, then drop debug mode
  // (the paper keeps the tool interface off outside migration events).
  home_tid_ = home_tid;
  tasks_.clear();
  tasks_.reserve(specs.size());
  for (const auto& s : specs) {
    Task t;
    t.spec = s;
    t.cs = mig::capture_segment(home, home_tid, s);
    tasks_.push_back(std::move(t));
  }
  home.ti().set_debug_enabled(false);
  home.sync_ti_cost();

  DispatchOutcome out;
  out_ = &out;
  // Failure plans already due (scheduled in a previous round) fire before
  // placement so a lost worker never receives this round's segments.
  process_failure_plans();

  if (opt_.concurrent) {
    // All segments ship from home's current send front and restore while
    // upstream segments execute (freeze-time hiding).
    for (size_t i = 0; i < tasks_.size(); ++i) dispatch(i);
    autoscale_tick(/*placement_phase=*/true);
  }
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (!opt_.concurrent) {
      if (i > 0) home.node().clock.wait_until(tasks_[i - 1].pl.completed_at);
      dispatch(i);
      autoscale_tick(/*placement_phase=*/true);
    }
    execute(i);
    write_back(i);
    emit(EventKind::SegmentCompleted, tasks_[i].pl.completed_at, static_cast<int>(i),
         tasks_[i].pl.worker, tasks_[i].pl.attempts);
    process_failure_plans();
    autoscale_tick(/*placement_phase=*/false);
  }

  out.placements.reserve(tasks_.size());
  for (Task& t : tasks_) {
    out.faults += t.faults_accum + t.seg->objman().stats().faults;
    out.placements.push_back(t.pl);
  }
  out.result = tasks_.back().result;
  out_ = nullptr;
  return out;
}

DispatchOutcome dispatch_segments(Cluster& c, int home_tid,
                                  const std::vector<mig::SegmentSpec>& specs,
                                  PlacementPolicy& policy, const DispatchOptions& opt) {
  Scheduler s(c, policy, opt);
  return s.run(home_tid, specs);
}

}  // namespace sod::cluster
