// Sharded home-side tables of the cluster layer.
//
// The scheduler's ref-forwarding table is home state keyed by segment: a
// completion write-back appends the forwarding entry for its segment, and
// under the wall-clock engine completions on different lanes land behind
// different home shards.  RefForwardTable partitions the entries by the
// segment's shard (the same deterministic HomeShardMap that splits the
// ObjectManager home-object table and the CheckpointStore) while stamping
// each record with a global sequence number, so ordered() reassembles the
// exact single-table append order regardless of shard count — shards=1
// reproduces the unsharded table bit for bit, and tests comparing replays
// across shard counts see identical forwarding histories.
#pragma once

#include <cstddef>
#include <vector>

#include "bytecode/types.h"
#include "sod/homegate.h"

namespace sod::cluster {

/// One home-mediated ref forward: segment `segment`'s result, produced on
/// `src_worker`, delivered to `dst_worker` as a handle for home ref
/// `home_ref`.
struct RefForward {
  int round;
  int segment;
  int src_worker;
  int dst_worker;
  bc::Ref home_ref;
};

/// Ref-forwarding entries partitioned by home shard of the producing
/// segment.  Records carry a global sequence so the logical (append-order)
/// view is shard-count-invariant.
class RefForwardTable {
 public:
  /// Points the table at the cluster's shard map and lays out one
  /// partition per shard; existing entries are discarded.  nullptr resets
  /// to a single partition.
  void configure(const mig::HomeShardMap* map);

  /// Appends a forwarding entry to the shard of its (round, segment).
  void record(const RefForward& f);

  /// All entries in their original append order (reassembled across
  /// partitions by sequence number).
  std::vector<RefForward> ordered() const;

  /// Entries recorded so far, over all partitions.
  size_t total() const { return static_cast<size_t>(next_seq_); }
  /// Partition count (== home shard count).
  int partitions() const { return static_cast<int>(parts_.size()); }
  /// Entries currently held by one partition.
  size_t partition_size(int shard) const { return parts_[static_cast<size_t>(shard)].size(); }

 private:
  struct Numbered {
    RefForward fwd;
    int seq;
  };

  const mig::HomeShardMap* map_ = nullptr;
  std::vector<std::vector<Numbered>> parts_{1};
  int next_seq_ = 0;
};

}  // namespace sod::cluster
