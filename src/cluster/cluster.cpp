#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

namespace sod::cluster {

Cluster::Cluster(const bc::Program& prog, mig::SodNode::Config home_cfg) : prog_(&prog) {
  // Admission gate: every program is analyzed before any class image can
  // ship.  analyze_program never throws — a malformed program yields a
  // report with diagnostics, and the scheduler refuses to dispatch it.
  admission_ = analysis::analyze_program(prog);
  home_ = std::make_unique<mig::SodNode>("home", prog, home_cfg);
}

int Cluster::add_worker(const WorkerSpec& spec) {
  SOD_CHECK(!spec.name.empty(), "worker name empty");
  for (const Slot& s : workers_)
    SOD_CHECK(s.node->name() != spec.name, "duplicate worker name '" + spec.name + "'");
  Slot s;
  s.node = std::make_unique<mig::SodNode>(spec.name, *prog_, spec.config);
  s.link = spec.link;
  workers_.push_back(std::move(s));
  return static_cast<int>(workers_.size()) - 1;
}

void Cluster::add_uniform_workers(int n, const mig::SodNode::Config& cfg) {
  for (int i = 0; i < n; ++i)
    add_worker(WorkerSpec{"worker" + std::to_string(size() + 1), cfg, sim::Link::gigabit()});
}

void Cluster::drain_worker(int id) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  if (s.state == WorkerState::Retired || s.state == WorkerState::Lost) return;
  // An idle worker retires the moment it is drained; only a worker with
  // outstanding assignments lingers in Draining until its queue empties.
  s.state = s.queue.empty() ? WorkerState::Retired : WorkerState::Draining;
}

void Cluster::remove_worker(int id) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  if (s.state == WorkerState::Retired || s.state == WorkerState::Lost) return;
  SOD_CHECK(s.queue.empty(),
            "remove of worker '" + s.node->name() + "' with outstanding work (drain it first)");
  s.state = WorkerState::Retired;
}

int Cluster::fail_worker(int id) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  if (s.state == WorkerState::Retired || s.state == WorkerState::Lost) return 0;
  int dropped = static_cast<int>(s.queue.size());
  s.queue.clear();
  s.state = WorkerState::Lost;
  return dropped;
}

WorkerState Cluster::state(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return workers_[static_cast<size_t>(id)].state;
}

int Cluster::accepting_size() const {
  int n = 0;
  for (const Slot& s : workers_)
    if (s.state == WorkerState::Active) ++n;
  return n;
}

mig::SodNode& Cluster::worker(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return *workers_[static_cast<size_t>(id)].node;
}

const sim::Link& Cluster::link(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return workers_[static_cast<size_t>(id)].link;
}

VDur Cluster::load(int id) const { return worker(id).node().clock.now(); }

int Cluster::inflight(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return static_cast<int>(workers_[static_cast<size_t>(id)].queue.size());
}

double Cluster::mean_queue_depth() const {
  int accepting = 0;
  int queued = 0;
  for (const Slot& s : workers_) {
    if (s.state != WorkerState::Active) continue;
    ++accepting;
    queued += static_cast<int>(s.queue.size());
  }
  return accepting == 0 ? 0.0 : static_cast<double>(queued) / accepting;
}

VDur Cluster::queued_cost(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  VDur sum{};
  for (VDur est : workers_[static_cast<size_t>(id)].queue) sum += est;
  return sum;
}

void Cluster::note_assigned(int id, VDur est_cost) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  SOD_CHECK(s.state == WorkerState::Active,
            "assignment to non-accepting worker '" + s.node->name() + "'");
  s.queue.push_back(est_cost);
}

namespace {

/// Remove the first queue entry carrying `est_cost` (front when absent or
/// unmatched): out-of-FIFO completions must not charge a still-waiting
/// assignment's estimate to the finished one.
void dequeue_assignment(std::deque<VDur>& queue, std::optional<VDur> est_cost) {
  if (est_cost) {
    auto it = std::find(queue.begin(), queue.end(), *est_cost);
    if (it != queue.end()) {
      queue.erase(it);
      return;
    }
  }
  queue.pop_front();
}

}  // namespace

void Cluster::note_completed(int id, std::optional<VDur> est_cost) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  SOD_CHECK(!s.queue.empty(), "completion without an assignment");
  dequeue_assignment(s.queue, est_cost);
  if (s.state == WorkerState::Draining && s.queue.empty()) s.state = WorkerState::Retired;
}

void Cluster::note_cancelled(int id, std::optional<VDur> est_cost) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  SOD_CHECK(!s.queue.empty(), "cancellation without an assignment");
  dequeue_assignment(s.queue, est_cost);
  if (s.state == WorkerState::Draining && s.queue.empty()) s.state = WorkerState::Retired;
}

}  // namespace sod::cluster
