#include "cluster/cluster.h"

#include <bit>
#include <span>
#include <utility>
#include <vector>

#include "cluster/placement.h"

namespace sod::cluster {

namespace {

/// Wire size of the small "here is your caller's value" message forwarded
/// between chained segments (matches the Fig. 1(c) experiment).
constexpr size_t kResultMsgBytes = 16;

/// Bitwise value identity: the statics refresh must not re-ship a field
/// whose payload is unchanged (and must still ship e.g. a NaN that was
/// overwritten by a different NaN).
bool same_payload(const bc::Value& a, const bc::Value& b) {
  if (a.tag != b.tag) return false;
  if (a.tag == bc::Ty::F64) return std::bit_cast<int64_t>(a.d) == std::bit_cast<int64_t>(b.d);
  return a.i == b.i;
}

}  // namespace

size_t refresh_primitive_statics(mig::SodNode& src, mig::SodNode& dst) {
  const bc::Program& P = src.program();
  size_t bytes = 0;
  for (const auto& cls : P.classes) {
    if (cls.num_static_slots == 0) continue;
    if (!src.vm().class_loaded(cls.id) || !dst.vm().class_loaded(cls.id)) continue;
    std::span<const bc::Value> src_vals = src.vm().statics_of(cls.id);
    std::vector<bc::Value> dst_vals(dst.vm().statics_of(cls.id).begin(),
                                    dst.vm().statics_of(cls.id).end());
    bool changed = false;
    for (uint16_t fid : cls.field_ids) {
      const bc::Field& f = P.field(fid);
      if (!f.is_static || f.type == bc::Ty::Ref) continue;
      if (same_payload(dst_vals[f.slot], src_vals[f.slot])) continue;
      dst_vals[f.slot] = src_vals[f.slot];
      bytes += 8;
      changed = true;
    }
    if (changed) dst.vm().overwrite_statics(cls.id, std::move(dst_vals));
  }
  return bytes;
}

Cluster::Cluster(const bc::Program& prog, mig::SodNode::Config home_cfg) : prog_(&prog) {
  home_ = std::make_unique<mig::SodNode>("home", prog, home_cfg);
}

int Cluster::add_worker(const WorkerSpec& spec) {
  SOD_CHECK(!spec.name.empty(), "worker name empty");
  for (const Slot& s : workers_)
    SOD_CHECK(s.node->name() != spec.name, "duplicate worker name '" + spec.name + "'");
  Slot s;
  s.node = std::make_unique<mig::SodNode>(spec.name, *prog_, spec.config);
  s.link = spec.link;
  workers_.push_back(std::move(s));
  return static_cast<int>(workers_.size()) - 1;
}

void Cluster::add_uniform_workers(int n, const mig::SodNode::Config& cfg) {
  for (int i = 0; i < n; ++i)
    add_worker(WorkerSpec{"worker" + std::to_string(size() + 1), cfg, sim::Link::gigabit()});
}

void Cluster::drain_worker(int id) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  if (s.state == WorkerState::Retired) return;
  s.state = s.queue.empty() ? WorkerState::Retired : WorkerState::Draining;
}

void Cluster::remove_worker(int id) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  SOD_CHECK(s.queue.empty(),
            "remove of worker '" + s.node->name() + "' with outstanding work (drain it first)");
  s.state = WorkerState::Retired;
}

WorkerState Cluster::state(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return workers_[static_cast<size_t>(id)].state;
}

int Cluster::accepting_size() const {
  int n = 0;
  for (const Slot& s : workers_)
    if (s.state == WorkerState::Active) ++n;
  return n;
}

mig::SodNode& Cluster::worker(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return *workers_[static_cast<size_t>(id)].node;
}

const sim::Link& Cluster::link(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return workers_[static_cast<size_t>(id)].link;
}

VDur Cluster::load(int id) const { return worker(id).node().clock.now(); }

int Cluster::inflight(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  return static_cast<int>(workers_[static_cast<size_t>(id)].queue.size());
}

VDur Cluster::queued_cost(int id) const {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  VDur sum{};
  for (VDur est : workers_[static_cast<size_t>(id)].queue) sum += est;
  return sum;
}

void Cluster::note_assigned(int id, VDur est_cost) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  SOD_CHECK(s.state == WorkerState::Active,
            "assignment to non-accepting worker '" + s.node->name() + "'");
  s.queue.push_back(est_cost);
}

void Cluster::note_completed(int id) {
  SOD_CHECK(id >= 0 && id < size(), "bad worker id");
  Slot& s = workers_[static_cast<size_t>(id)];
  SOD_CHECK(!s.queue.empty(), "completion without an assignment");
  s.queue.pop_front();
  if (s.state == WorkerState::Draining && s.queue.empty()) s.state = WorkerState::Retired;
}

std::vector<mig::SegmentSpec> split_top_frames(int k) {
  SOD_CHECK(k >= 1, "split of zero frames");
  std::vector<mig::SegmentSpec> specs;
  specs.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) specs.push_back(mig::SegmentSpec{i, i + 1});
  return specs;
}

DispatchOutcome dispatch_segments(Cluster& c, int home_tid,
                                  const std::vector<mig::SegmentSpec>& specs,
                                  PlacementPolicy& policy, const DispatchOptions& opt) {
  mig::SodNode& home = c.home();
  SOD_CHECK(c.accepting_size() > 0, "dispatch on a cluster with no accepting workers");
  SOD_CHECK(!specs.empty(), "dispatch of zero segments");
  for (size_t i = 0; i < specs.size(); ++i) {
    SOD_CHECK(specs[i].len() >= 1, "empty segment spec");
    int expect_lo = i == 0 ? 0 : specs[i - 1].depth_hi;
    SOD_CHECK(specs[i].depth_lo == expect_lo, "segment specs not contiguous from the top");
  }

  // Capture every segment while the thread is paused, then drop debug mode
  // (the paper keeps the tool interface off outside migration events).
  std::vector<mig::CapturedState> states;
  states.reserve(specs.size());
  for (const auto& s : specs) states.push_back(mig::capture_segment(home, home_tid, s));
  home.ti().set_debug_enabled(false);
  home.sync_ti_cost();

  DispatchOutcome out;
  std::vector<std::unique_ptr<mig::Segment>> segs(specs.size());
  std::vector<PlacementRequest> reqs(specs.size());
  out.placements.resize(specs.size());

  auto place_and_restore = [&](size_t i) {
    const mig::CapturedState& cs = states[i];
    uint16_t entry_cls = home.program().method(cs.frames[0].method).owner;
    PlacementRequest& req = reqs[i];
    req.cls = entry_cls;
    req.state_bytes = cs.wire_size();
    req.class_image_bytes = home.program().class_image(entry_cls).size();
    int w = policy.choose(c, req);
    SOD_CHECK(w >= 0 && w < c.size(), "policy chose an invalid worker");
    SOD_CHECK(c.accepting(w), "policy chose a non-accepting worker");
    c.note_assigned(w, policy.estimate(c, w, req));
    mig::SodNode& dst = c.worker(w);

    Placement& pl = out.placements[i];
    pl.worker = w;
    pl.worker_name = dst.name();
    pl.spec = specs[i];
    pl.cls = entry_cls;
    pl.shipped_bytes = req.state_bytes;
    if (!dst.class_shipped(entry_cls)) pl.shipped_bytes += req.class_image_bytes;

    dst.mark_class_shipped(entry_cls);
    dst.enable_class_fetch(&home, c.link(w));
    home.node().charge_host(
        home.serde().cost(req.state_bytes, static_cast<int>(cs.frames.size())));
    sim::deliver(home.node(), dst.node(), c.link(w), pl.shipped_bytes);

    segs[i] = std::make_unique<mig::Segment>(dst);
    segs[i]->objman().bind_home(&home, home_tid, specs[i].depth_hi, c.link(w));
    segs[i]->restore(cs);
    pl.restored_at = dst.node().clock.now();
  };

  auto execute = [&](size_t i, bc::Value v_in) {
    Placement& pl = out.placements[i];
    mig::Segment& seg = *segs[i];
    mig::SodNode& dst = c.worker(pl.worker);
    // Re-bind the worker's objman.* natives to this segment: a later
    // segment restored on the same worker overwrote them.
    seg.objman().install(dst);
    if (i > 0) {
      const Placement& up = out.placements[i - 1];
      // The upper segment's updates must reach home before this segment
      // resumes: object faults and ref-static stubs resolve against home's
      // current state (sequential offload got this ordering for free).
      auto rep = mig::write_back(*segs[i - 1], home, home_tid, 0, bc::Value{}, c.link(up.worker));
      out.writeback_bytes += rep.bytes;
      // Primitive statics travel by value: resume with home's now-current
      // copies (TSP's best-bound static is the canonical case).  Unchanged
      // fields ship nothing.
      size_t stat_bytes = refresh_primitive_statics(home, dst);
      if (up.worker != pl.worker) {
        // A Ref result is an id in the upper worker's heap; delivering it
        // into another worker's VM would alias or dangle.  Cross-worker
        // ref chaining needs write-back-style translation (not built yet).
        SOD_CHECK(v_in.tag != bc::Ty::Ref,
                  "ref-typed result chained across workers is not supported");
        // The result is relayed worker -> home -> worker (links are
        // home-anchored), so it pays both the source uplink and the
        // destination downlink; home only stores-and-forwards.
        VDur arrival = c.worker(up.worker).node().clock.now() +
                       c.link(up.worker).transfer_time(kResultMsgBytes) +
                       c.link(pl.worker).transfer_time(kResultMsgBytes);
        dst.node().clock.wait_until(arrival);
      }
      if (stat_bytes > 0) sim::deliver(home.node(), dst.node(), c.link(pl.worker), stat_bytes);
      out.overlapped = out.overlapped || pl.restored_at < up.completed_at;
      // A completed upper segment on this worker may have dropped debug
      // mode; deliver() needs its pending-call breakpoint to fire.
      dst.ti().set_debug_enabled(true);
      seg.deliver(v_in);
    }
    // Debug mode is per-node, not per-segment: a lower segment restored on
    // this worker after `seg` left the node's debug interpreter on, and
    // seg's own run_to_completion() would not drop it (its debug_held_ is
    // false).  Force fast mode — the paper runs it outside migration
    // events — or the whole execution is charged at the debug multiplier.
    dst.ti().set_debug_enabled(false);
    pl.executed_at = dst.node().clock.now();
    bc::Value v = seg.run_to_completion();
    pl.completed_at = dst.node().clock.now();
    c.note_completed(pl.worker);
    policy.observe(c, reqs[i], pl);
    return v;
  };

  bc::Value v{};
  if (opt.concurrent) {
    // All segments ship from home's current send front and restore while
    // upstream segments execute (freeze-time hiding).
    for (size_t i = 0; i < specs.size(); ++i) place_and_restore(i);
    for (size_t i = 0; i < specs.size(); ++i) v = execute(i, v);
  } else {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (i > 0) home.node().clock.wait_until(out.placements[i - 1].completed_at);
      place_and_restore(i);
      v = execute(i, v);
    }
  }

  // Upper segments wrote their updates back inside the chain; the bottom
  // segment's write-back pops the whole migrated span and makes the home
  // thread runnable again.
  auto rep = mig::write_back(*segs.back(), home, home_tid, specs.back().depth_hi, v,
                             c.link(out.placements.back().worker));
  out.writeback_bytes += rep.bytes;
  for (const auto& seg : segs) out.faults += seg->objman().stats().faults;
  out.result = v;
  return out;
}

}  // namespace sod::cluster
