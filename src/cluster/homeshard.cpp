#include "cluster/homeshard.h"

#include <algorithm>

namespace sod::cluster {

void RefForwardTable::configure(const mig::HomeShardMap* map) {
  map_ = map;
  parts_.assign(map != nullptr ? static_cast<size_t>(map->shards()) : 1, {});
  next_seq_ = 0;
}

void RefForwardTable::record(const RefForward& f) {
  size_t shard =
      map_ != nullptr ? static_cast<size_t>(map_->shard_of_segment(f.round, f.segment)) : 0;
  parts_[shard].push_back(Numbered{f, next_seq_++});
}

std::vector<RefForward> RefForwardTable::ordered() const {
  std::vector<Numbered> all;
  all.reserve(static_cast<size_t>(next_seq_));
  for (const auto& part : parts_) all.insert(all.end(), part.begin(), part.end());
  std::sort(all.begin(), all.end(),
            [](const Numbered& a, const Numbered& b) { return a.seq < b.seq; });
  std::vector<RefForward> out;
  out.reserve(all.size());
  for (const Numbered& n : all) out.push_back(n.fwd);
  return out;
}

}  // namespace sod::cluster
