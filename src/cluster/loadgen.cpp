#include "cluster/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "cluster/placement.h"
#include "cluster/wallclock.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "support/panic.h"
#include "support/rng.h"

namespace sod::cluster {

const char* arrival_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::OnOff: return "onoff";
    case ArrivalKind::Soak: return "soak";
  }
  return "?";
}

std::optional<ArrivalKind> parse_arrival(std::string_view s) {
  if (s == "poisson") return ArrivalKind::Poisson;
  if (s == "onoff" || s == "on-off") return ArrivalKind::OnOff;
  if (s == "soak") return ArrivalKind::Soak;
  return std::nullopt;
}

namespace {

/// One Table I app at load scale: small enough that a thousand sessions
/// replay under the sanitizers, big enough that the trigger depth is
/// reachable and rounds do real work.  Whether an app's class statics are
/// mutable workspace (FFT grids, TSP bound/visited) is no longer a
/// hand-maintained flag here: the whole-program analyzer proves it per
/// (tenant, app) entry method, and sessions of a statics-writing app
/// serialize per tenant so one session's init can never clobber another's
/// in-flight state.
struct LoadApp {
  apps::AppSpec spec;
  std::vector<bc::Value> args;
};

std::vector<LoadApp> load_apps(bool heavy) {
  std::vector<LoadApp> v;
  v.push_back({apps::fib_app(), {bc::Value::of_i64(heavy ? 22 : 16)}});
  v.push_back({apps::nqueens_app(), {bc::Value::of_i64(heavy ? 7 : 6)}});
  v.push_back({apps::fft_app(), {bc::Value::of_i64(8), bc::Value::of_i64(64)}});
  v.push_back({apps::tsp_app(), {bc::Value::of_i64(heavy ? 7 : 6)}});
  return v;
}

std::string tenant_prefix(int tenant) {
  std::string s = "t";
  s += std::to_string(tenant);
  s += '_';
  return s;
}

constexpr int kBurst = 8;  ///< ON-OFF arrivals per ON burst

}  // namespace

Trace make_trace(const TraceConfig& cfg) {
  Trace tr;
  tr.cfg = cfg;
  const int n = std::max(0, cfg.sessions);
  const int tenants = std::max(1, cfg.tenants);
  const int napps = std::clamp(cfg.apps, 1, 4);
  const int64_t mean = std::max<int64_t>(1, cfg.mean_gap.ns);
  Rng rng(cfg.seed);

  int64_t t = 0;
  for (int i = 0; i < n; ++i) {
    int64_t gap = 0;
    switch (cfg.arrival) {
      case ArrivalKind::Poisson:
        // Exponential interarrival; unit() < 1 keeps the log finite.
        gap = static_cast<int64_t>(-static_cast<double>(mean) * std::log(1.0 - rng.unit()));
        break;
      case ArrivalKind::OnOff:
        // Bursts of kBurst back-to-back arrivals, then a jittered OFF gap
        // long enough that the backlog drains between bursts.
        gap = (i > 0 && i % kBurst == 0)
                  ? mean * 6 + static_cast<int64_t>(rng.below(static_cast<uint64_t>(mean)))
                  : mean / 16;
        break;
      case ArrivalKind::Soak:
        gap = mean;
        break;
    }
    t += gap;
    SessionTrace s;
    s.id = i;
    s.arrival = VDur::nanos(t);
    s.tenant = static_cast<int>(rng.below(static_cast<uint64_t>(tenants)));
    s.app = static_cast<int>(rng.below(static_cast<uint64_t>(napps)));
    s.rounds = static_cast<int>(rng.range(1, std::max(1, cfg.max_rounds)));
    tr.sessions.push_back(s);
  }

  const int joins = cfg.churn > 0 && n > 0
                        ? std::max(1, static_cast<int>(cfg.churn * static_cast<double>(n)))
                        : 0;
  for (int j = 0; j < joins; ++j) {
    int at = static_cast<int>(static_cast<int64_t>(j + 1) * n / (joins + 1));
    at = std::clamp(at, 0, n - 1);
    const int life = std::max(2, n / (2 * (joins + 1)));
    tr.injections.push_back({Injection::Kind::Join, at, j});
    tr.injections.push_back({Injection::Kind::Drain, std::min(at + life, n - 1), j});
  }
  for (int j = 0; j < cfg.failures && n > 1; ++j) {
    int at = static_cast<int>(static_cast<int64_t>(j + 1) * n / (cfg.failures + 1));
    tr.injections.push_back({Injection::Kind::Fail, std::clamp(at, 1, n - 1), -1});
  }
  std::stable_sort(tr.injections.begin(), tr.injections.end(),
                   [](const Injection& a, const Injection& b) {
                     return a.at_session < b.at_session;
                   });
  return tr;
}

Trace filter_tenant(const Trace& t, int tenant) {
  Trace out;
  out.cfg = t.cfg;
  for (const auto& s : t.sessions)
    if (s.tenant == tenant) out.sessions.push_back(s);
  return out;
}

namespace {

struct SessState {
  int tid = -1;
  int rounds_left = 0;
  int steps = 0;
  int segments = 0;
  bool done = false;
  bool ok = false;
  VDur first_step{};
  int64_t result = INT64_MIN;
  double ms = 0;
  double wall_ms = 0;  ///< wall-clock mode: replay start -> session done
};

}  // namespace

LoadGenResult run_loadgen(const Trace& trace, const LoadGenOptions& opts) {
  LoadGenResult res;
  const size_t n = trace.sessions.size();
  res.sessions = static_cast<int>(n);
  res.results.assign(n, INT64_MIN);
  res.session_ms.assign(n, 0.0);

  int tenants = std::max(1, trace.cfg.tenants);
  for (const auto& s : trace.sessions) tenants = std::max(tenants, s.tenant + 1);
  res.tenants.resize(static_cast<size_t>(tenants));
  for (int t = 0; t < tenants; ++t) res.tenants[static_cast<size_t>(t)].tenant = t;

  if (n == 0) {
    res.all_ok = true;
    res.exactly_once = true;
    return res;
  }

  const auto cat = load_apps(trace.cfg.heavy);
  const int napps = static_cast<int>(cat.size());

  // Which (tenant, app) class sets the shared program needs.
  std::vector<bool> used(static_cast<size_t>(tenants * napps), false);
  std::vector<bool> app_used(static_cast<size_t>(napps), false);
  for (const auto& s : trace.sessions) {
    used[static_cast<size_t>(s.tenant * napps + s.app)] = true;
    app_used[static_cast<size_t>(s.app)] = true;
  }

  // One shared program: every tenant's apps under that tenant's prefix.
  // Full class names are what the builder resolves, so two tenants' copies
  // of one app share nothing — not statics, not images.
  bc::ProgramBuilder pb;
  for (int t = 0; t < tenants; ++t)
    for (int a = 0; a < napps; ++a)
      if (used[static_cast<size_t>(t * napps + a)])
        cat[static_cast<size_t>(a)].spec.emit(pb, tenant_prefix(t));
  bc::Program p = pb.build();
  try {
    prep::preprocess_program(p);
  } catch (const Error& e) {
    // A malformed tenant program must never crash the generator: surface
    // the preprocessor's verdict as a rejection, before any node exists.
    res.admitted = false;
    res.rejection_diags.push_back(e.what());
    return res;
  }

  // Reference results: each app once, alone, on a standalone node.  Every
  // session of every tenant must reproduce its app's reference bit-exactly
  // — the shared-cluster run may not change what any tenant computes.
  std::vector<int64_t> expected(static_cast<size_t>(napps), INT64_MIN);
  for (int a = 0; a < napps; ++a) {
    if (!app_used[static_cast<size_t>(a)]) continue;
    bc::Program rp = cat[static_cast<size_t>(a)].spec.build();
    prep::preprocess_program(rp);
    mig::SodNode ref("ref", rp, {});
    mig::ObjectManager om;
    om.install(ref);
    expected[static_cast<size_t>(a)] =
        ref.call_guest(cat[static_cast<size_t>(a)].spec.entry, cat[static_cast<size_t>(a)].args)
            .as_i64();
  }

  Cluster c(p);
  if (opts.workers.empty())
    c.add_uniform_workers(4);
  else
    for (const auto& w : opts.workers) c.add_worker(w);
  // Shard the home-side tables before any engine copies the map: the
  // scheduler's and engine's partition layouts are fixed at construction.
  if (opts.home_shards > 0) c.set_home_shards(opts.home_shards);
  res.home_shards = c.home_shards();
  auto policy = make_policy(opts.policy);
  Scheduler sched(c, *policy, opts.dispatch);
  std::unique_ptr<WallClockEngine> engine;
  if (opts.wallclock) {
    WallClockOptions wopt;
    wopt.threads = opts.threads;
    wopt.dilation = opts.dilation;
    wopt.home_dilation = opts.home_dilation;
    wopt.statics_skip = opts.dispatch.statics_skip;
    engine = std::make_unique<WallClockEngine>(c, *policy, wopt);
  }

  // Admission gate: no session spawns and no class image ships unless the
  // whole-program analyzer admitted the shared tenant program.  The
  // scheduler/engine above already logged the ProgramRejected event.
  if (!c.admission().admitted) {
    res.admitted = false;
    for (const auto& d : c.admission().diagnostics) res.rejection_diags.push_back(d.str());
    res.exactly_once = engine ? engine->exactly_once() : sched.exactly_once();
    return res;
  }

  // The analyzer replaces the old hand-maintained statics-bearing app
  // list: a (tenant, app) instance serializes iff its prefixed entry
  // method transitively writes statics (FFT, TSP — proven, not declared).
  std::vector<bool> writes_statics(used.size(), false);
  for (int t = 0; t < tenants; ++t)
    for (int a = 0; a < napps; ++a) {
      const size_t k = static_cast<size_t>(t * napps + a);
      if (used[k])
        writes_statics[k] = c.facts().method_writes_statics(
            p, tenant_prefix(t) + cat[static_cast<size_t>(a)].spec.entry);
    }

  mig::SodNode& home = c.home();
  std::vector<SessState> st(n);
  for (size_t i = 0; i < n; ++i) st[i].rounds_left = std::max(0, trace.sessions[i].rounds);

  // Per-(tenant, app) instance lock for statics-bearing apps: holder is the
  // active session, -1 when free.  The holder is always steppable, so the
  // picker can never deadlock on these.
  std::map<int, int> lock;
  auto lock_key = [&](const SessionTrace& s) { return s.tenant * napps + s.app; };
  auto blocked = [&](size_t i) {
    const auto& s = trace.sessions[i];
    if (!writes_statics[static_cast<size_t>(lock_key(s))]) return false;
    auto it = lock.find(lock_key(s));
    return it != lock.end() && it->second != static_cast<int>(i);
  };

  std::map<int, int> surge_ids;  ///< surge index -> worker id
  auto apply = [&](const Injection& inj) {
    switch (inj.kind) {
      case Injection::Kind::Join: {
        WorkerSpec ws;
        ws.name = "surge" + std::to_string(inj.surge);
        surge_ids[inj.surge] = engine ? engine->add_worker(ws) : c.add_worker(ws);
        ++res.surge_joins;
        break;
      }
      case Injection::Kind::Drain: {
        auto it = surge_ids.find(inj.surge);
        if (it == surge_ids.end() || c.state(it->second) != WorkerState::Active) break;
        if (engine)
          engine->drain_worker(it->second);
        else
          c.drain_worker(it->second);
        ++res.surge_drains;
        break;
      }
      case Injection::Kind::Fail:
        // Keep at least two accepting workers alive.  Arming at the very
        // next completion lands the loss mid-round, while the round's
        // sibling segments are still queued on the victim.
        if (c.accepting_size() > 2) {
          if (engine)
            engine->fail_after(engine->completions() + 1, -1);
          else
            sched.fail_after(sched.completions() + 1, -1);
          ++res.failures_armed;
        }
        break;
    }
  };

  size_t next = 0, inj_next = 0;
  std::vector<int> active;
  int done_count = 0;
  const auto wall_t0 = std::chrono::steady_clock::now();
  auto wall_ms_since_start = [&wall_t0] {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     wall_t0)
        .count();
  };
  auto admit = [&] {
    while (next < n && trace.sessions[next].arrival.ns <= c.home_now().ns) {
      while (inj_next < trace.injections.size() &&
             trace.injections[inj_next].at_session <= static_cast<int>(next))
        apply(trace.injections[inj_next++]);
      active.push_back(static_cast<int>(next));
      ++next;
    }
  };

  while (done_count < static_cast<int>(n)) {
    admit();
    if (active.empty()) {
      // Idle until the next arrival instant — the load generator's only
      // source of clock advancement besides guest execution.
      home.node().clock.wait_until(trace.sessions[next].arrival);
      continue;
    }
    // Fair step picker: fewest steps first, ties to the oldest session.
    int pick = -1;
    for (int s : active) {
      if (blocked(static_cast<size_t>(s))) continue;
      if (pick < 0 || st[static_cast<size_t>(s)].steps < st[static_cast<size_t>(pick)].steps)
        pick = s;
    }
    const size_t i = static_cast<size_t>(pick);
    auto& ss = st[i];
    const auto& ts = trace.sessions[i];
    const LoadApp& la = cat[static_cast<size_t>(ts.app)];
    const std::string pfx = tenant_prefix(ts.tenant);

    if (ss.tid < 0) {
      if (writes_statics[static_cast<size_t>(lock_key(ts))]) lock[lock_key(ts)] = pick;
      ss.first_step = c.home_now();
      ss.tid = home.vm().spawn(p.find_method(pfx + la.spec.entry), la.args);
    }

    if (ss.rounds_left > 0) {
      // Split depth is capped by the app's paper stack height: FFT's
      // trigger lives at depth 3, fib's recursion goes as deep as asked.
      const int depth = std::min(la.spec.paper_depth, opts.segments_per_round + 4);
      const int k = std::min(opts.segments_per_round, depth - 1);
      const uint16_t trig = p.find_method(pfx + la.spec.trigger_method);
      if (k >= 1 && mig::pause_at_depth(home, ss.tid, trig, depth)) {
        auto specs = split_top_frames(k);
        auto out = engine ? engine->run(ss.tid, specs) : sched.run(ss.tid, specs);
        home.ti().set_debug_enabled(false);
        (void)out;
        ss.segments += k;
        res.segments += k;
        res.tenants[static_cast<size_t>(ts.tenant)].segments += k;
        --ss.rounds_left;
        ++ss.steps;
        continue;
      }
      ss.rounds_left = 0;  // recursion exhausted — finish at home
    }

    home.ti().set_debug_enabled(false);
    auto rr = home.run_guest(ss.tid);
    ss.done = true;
    ++ss.steps;
    if (rr.reason == svm::StopReason::Done) {
      ss.result = home.vm().thread(ss.tid).result.as_i64();
      ss.ok = ss.result == expected[static_cast<size_t>(ts.app)];
    }
    ss.ms = (c.home_now() - ts.arrival).ms();
    if (engine) ss.wall_ms = wall_ms_since_start();
    if (writes_statics[static_cast<size_t>(lock_key(ts))]) {
      auto it = lock.find(lock_key(ts));
      if (it != lock.end() && it->second == pick) lock.erase(it);
    }
    active.erase(std::find(active.begin(), active.end(), pick));
    ++done_count;
  }

  bool all_ok = true;
  for (size_t i = 0; i < n; ++i) {
    const auto& ts = trace.sessions[i];
    auto& tn = res.tenants[static_cast<size_t>(ts.tenant)];
    ++tn.sessions;
    if (st[i].done) {
      ++res.completed;
      ++tn.completed;
      tn.completion_ms.add(st[i].ms);
      res.completion_ms.add(st[i].ms);
      if (engine) res.wall_completion_ms.add(st[i].wall_ms);
      tn.mean_wait_ms += (st[i].first_step - ts.arrival).ms();
    }
    all_ok = all_ok && st[i].ok;
    res.results[i] = st[i].result;
    res.session_ms[i] = st[i].ms;
  }
  for (auto& tn : res.tenants)
    if (tn.completed > 0) tn.mean_wait_ms /= static_cast<double>(tn.completed);
  res.all_ok = all_ok && res.completed == res.sessions;
  res.exactly_once = engine ? engine->exactly_once() : sched.exactly_once();
  res.redispatched = engine ? engine->redispatches() : sched.redispatches();
  res.workers_lost = engine ? engine->workers_lost() : sched.workers_lost();
  const StaticsRefreshStats& sst = engine ? engine->statics_stats() : sched.statics_stats();
  res.statics_scans = sst.scans;
  res.statics_skipped = sst.skipped;
  res.statics_bytes = sst.bytes;
  if (!engine) {
    res.resumed = sched.resumes();
    res.speculated = sched.speculations();
    res.cancelled = sched.cancellations();
    res.checkpoints = sched.checkpoints();
  } else {
    mig::ShardContention total = engine->total_contention();
    res.lock_acq = total.acquisitions;
    res.wall_contended = total.contended;
    res.lock_wait_ns = total.wait_ns;
    res.lock_max_wait_ns = total.max_wait_ns;
    res.wall_max_queue = total.max_queue;
    res.wall_total_ms = wall_ms_since_start();
  }
  res.total_ms = c.home_now().ms();
  return res;
}

}  // namespace sod::cluster
