#include "sfs/sfs.h"

#include "bytecode/builder.h"

namespace sod::sfs {

using bc::Ty;
using bc::Value;

std::string FileStore::content(const SimFile& f, size_t off, size_t len) const {
  if (off >= f.size) return {};
  len = std::min(len, f.size - off);
  std::string out(len, ' ');
  // Deterministic pseudo-text: lowercase words of pseudo-random length.
  // Regenerating a chunk only needs its 64-byte-aligned neighbourhood.
  for (size_t i = 0; i < len; ++i) {
    size_t pos = off + i;
    uint64_t h = (f.seed + pos / 7) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    out[i] = (pos % 7 == 6) ? ' ' : static_cast<char>('a' + (h % 26));
  }
  // Plant the needle if it overlaps this chunk.
  if (f.needle_at != SIZE_MAX && !f.needle.empty()) {
    for (size_t k = 0; k < f.needle.size(); ++k) {
      size_t pos = f.needle_at + k;
      if (pos >= off && pos < off + len) out[pos - off] = f.needle[k];
    }
  }
  return out;
}

void declare_fs_natives(bc::ProgramBuilder& pb) {
  pb.native("fs.open", {Ty::Ref}, Ty::I64);        // name -> handle (-1 if absent)
  pb.native("fs.read_chunk", {Ty::I64}, Ty::Ref);  // handle -> string or null at EOF
  pb.native("fs.size", {Ty::I64}, Ty::I64);        // handle -> file size
  pb.native("fs.file_by_index", {Ty::I64}, Ty::Ref);  // i -> name string
  pb.native("fs.file_count", {}, Ty::I64);
}

void MountedFs::install(svm::NativeRegistry& reg) {
  reg.bind("fs.open", [this](svm::VM& vm, std::span<Value> a) {
    if (a[0].r == bc::kNull || vm.heap().is_stub(a[0].r)) {
      vm.throw_guest(bc::builtin::kNullPointer, "fs.open");
      return Value{};
    }
    const std::string& name = vm.heap().str(a[0].r).s;
    const SimFile* f = store_->find(name);
    if (!f) return Value::of_i64(-1);
    handles_.push_back(Open{f, 0});
    return Value::of_i64(static_cast<int64_t>(handles_.size() - 1));
  });
  reg.bind("fs.read_chunk", [this](svm::VM& vm, std::span<Value> a) {
    int64_t h = a[0].i;
    SOD_CHECK(h >= 0 && static_cast<size_t>(h) < handles_.size(), "bad fs handle");
    Open& o = handles_[static_cast<size_t>(h)];
    if (o.pos >= o.file->size) return Value::null();
    std::string data = store_->content(*o.file, o.pos, chunk_);
    o.pos += data.size();
    bytes_read_ += data.size();
    // Virtual read cost at the mount's bandwidth + per-call overhead.
    vm.charge(speed_.per_read +
              VDur::seconds(static_cast<double>(data.size()) / speed_.bytes_per_sec));
    bc::Ref r = vm.heap().alloc_str(std::move(data));
    if (r == bc::kNull) {
      vm.throw_guest(bc::builtin::kOutOfMemory, "fs.read_chunk");
      return Value{};
    }
    return Value::of_ref(r);
  });
  reg.bind("fs.size", [this](svm::VM&, std::span<Value> a) {
    int64_t h = a[0].i;
    SOD_CHECK(h >= 0 && static_cast<size_t>(h) < handles_.size(), "bad fs handle");
    return Value::of_i64(static_cast<int64_t>(handles_[static_cast<size_t>(h)].file->size));
  });
  reg.bind("fs.file_by_index", [this](svm::VM& vm, std::span<Value> a) {
    int64_t i = a[0].i;
    if (i < 0 || static_cast<size_t>(i) >= store_->count()) {
      vm.throw_guest(bc::builtin::kIndexOutOfBounds, "fs.file_by_index");
      return Value{};
    }
    bc::Ref r = vm.heap().alloc_str(store_->name_at(static_cast<size_t>(i)));
    SOD_CHECK(r != bc::kNull, "heap exhausted");
    return Value::of_ref(r);
  });
  reg.bind("fs.file_count", [this](svm::VM&, std::span<Value>) {
    return Value::of_i64(static_cast<int64_t>(store_->count()));
  });
}

}  // namespace sod::sfs
