// Simulated file system with local and NFS-like remote mounts.
//
// File *content* is generated deterministically from a seed (we never hold
// 600 MB in memory); reads return chunks and charge virtual time at either
// local-disk or NFS-link bandwidth.  "Needles" can be planted at given
// offsets so the document-search workloads have something to find.
//
// Guest access goes through natives (fs.open / fs.read_chunk / ...) that a
// Mount installs into a node's NativeRegistry; reads charge the owning
// node's virtual clock, so migrating execution onto the file server node
// turns NFS-priced reads into disk-priced reads — the locality effect
// Table VI measures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/net.h"
#include "support/rng.h"
#include "svm/vm.h"

namespace sod::bc {
class ProgramBuilder;
}

namespace sod::sfs {

struct SimFile {
  std::string name;
  size_t size = 0;
  uint64_t seed = 1;
  /// Optional planted needle.
  std::string needle;
  size_t needle_at = SIZE_MAX;
};

/// The files one server hosts.
class FileStore {
 public:
  void add(SimFile f) {
    if (!files_.count(f.name)) order_.push_back(f.name);
    files_[f.name] = std::move(f);
  }
  const SimFile* find(const std::string& name) const {
    auto it = files_.find(name);
    return it == files_.end() ? nullptr : &it->second;
  }
  size_t count() const { return order_.size(); }
  const std::string& name_at(size_t i) const { return order_.at(i); }

  /// Deterministic content of [off, off+len) (clamped to file size).
  std::string content(const SimFile& f, size_t off, size_t len) const;

 private:
  std::unordered_map<std::string, SimFile> files_;
  std::vector<std::string> order_;
};

/// Read-bandwidth model for a mount.
struct MountSpeed {
  double bytes_per_sec = 110e6;          ///< local SAS disk (paper-era)
  VDur per_read = VDur::micros(50);      ///< per-call overhead
  static MountSpeed local_disk() { return MountSpeed{110e6, VDur::micros(50)}; }
  static MountSpeed nfs() { return MountSpeed{77e6, VDur::micros(200)}; }
};

/// Declare fs.* native signatures on a program being built.
void declare_fs_natives(bc::ProgramBuilder& pb);

/// Binds fs natives for one node.  Open files get handles; read_chunk
/// returns successive chunks as guest strings, charging vm.charge() with
/// the mount's virtual read time.  The per-node buffer cache is modelled
/// as "cleared" (every run pays full read cost), matching the paper's
/// methodology.
class MountedFs {
 public:
  MountedFs(const FileStore* store, MountSpeed speed, size_t chunk_size = 1 << 20)
      : store_(store), speed_(speed), chunk_(chunk_size) {}

  void install(svm::NativeRegistry& reg);

  /// Re-point at a different store/speed (what "migrating to the file
  /// server" changes).
  void remount(const FileStore* store, MountSpeed speed) {
    store_ = store;
    speed_ = speed;
  }

  size_t bytes_read() const { return bytes_read_; }

 private:
  struct Open {
    const SimFile* file;
    size_t pos = 0;
  };
  const FileStore* store_;
  MountSpeed speed_;
  size_t chunk_;
  std::vector<Open> handles_;
  size_t bytes_read_ = 0;
};

}  // namespace sod::sfs
