// SODEE experiment drivers — one function per paper table/figure, shared
// between the bench binaries and the integration tests.
//
// Calibration policy (full details in EXPERIMENTS.md): protocol costs
// (capture, transfer, restore, object faults, write-back) are *emergent*
// from the mechanism operating on real captured state over the simulated
// network; raw execution times per system are *calibrated* — the Sun-JDK
// column of Table II anchors each app's runtime, and the JESSICA2/Xen
// execution-speed multipliers come from the paper's own no-migration
// columns (we cannot re-derive Kaffe's 2002-era JIT quality from first
// principles).  Shapes — who wins, by what factor, where the crossovers
// fall — emerge from the mechanisms.
#pragma once

#include "apps/apps.h"
#include "baselines/baselines.h"
#include "sod/migrate.h"

namespace sod::sodee {

using apps::AppSpec;
using mig::SodNode;

/// Per-app execution-speed multipliers derived from Table II's
/// no-migration columns (system time / JDK time).
struct SystemMultipliers {
  double jessica2 = 4.0;
  double xen = 2.2;
};
SystemMultipliers multipliers_for(const std::string& app_name);

/// Everything measured for one Table I app.
struct MeasuredApp {
  AppSpec spec;
  // Table I characteristics measured at paper scale.
  int measured_h = 0;
  size_t measured_F_bytes = 0;
  // Paper-scale protocol timings (top-frame SOD, full-state baselines).
  mig::MigrationTiming sod;
  baselines::EagerTiming gj;
  baselines::EagerTiming j2;
  baselines::XenTiming xen;
  // Bench-scale end-to-end offload: object faulting + write-back, real.
  mig::FaultStats faults;
  mig::WriteBackReport writeback;
  VDur sod_fault_time{};
  VDur sod_writeback_time{};
  // Measured instrumentation side effect (C0) as a fraction; the paper
  // reports 0.001..0.0145.
  double c0 = 0;
  /// Modelled agent-attach cost (C1); the paper reports 0.001..0.032.
  double c1 = 0.002;
};

/// Run all protocol measurements for one app (paper-scale trigger reach,
/// single-frame SOD migration, eager baselines, bench-scale fault run).
MeasuredApp measure_app(const AppSpec& spec);

/// Table II/III rows derived from a MeasuredApp.
struct OverheadRow {
  std::string app;
  double jdk_s = 0;
  double sodee_nomig_s = 0, sodee_mig_s = 0;
  double gj_nomig_s = 0, gj_mig_s = 0;
  double j2_nomig_s = 0, j2_mig_s = 0;
  double xen_nomig_s = 0, xen_mig_s = 0;

  double sodee_overhead_ms() const { return (sodee_mig_s - sodee_nomig_s) * 1e3; }
  double gj_overhead_ms() const { return (gj_mig_s - gj_nomig_s) * 1e3; }
  double j2_overhead_ms() const { return (j2_mig_s - j2_nomig_s) * 1e3; }
  double xen_overhead_ms() const { return (xen_mig_s - xen_nomig_s) * 1e3; }
};
OverheadRow overhead_row(const MeasuredApp& m);

// ---------------------------------------------------------------- Table VI

struct LocalityRow {
  std::string system;
  double no_mig_s = 0;     ///< run on NFS client, no migration
  double mig_s = 0;        ///< migrate to the file server before reading
  double on_server_s = 0;  ///< run locally on the server (floor)
  double gain() const { return (no_mig_s - mig_s) / no_mig_s; }
};

struct LocalityConfig {
  int nfiles = 3;
  size_t file_bytes = 6 << 20;  ///< real bytes generated per file
  double report_scale = 100.0;  ///< scales reported times to paper's 600 MB
};
std::vector<LocalityRow> run_locality_experiment(const LocalityConfig& cfg = {});

// -------------------------------------------------------- roaming (§IV.C)

struct RoamingResult {
  double no_mig_s = 0;
  double roaming_s = 0;
  int hops = 0;
  double speedup() const { return no_mig_s / roaming_s; }
};
RoamingResult run_roaming_grid(int nservers = 10, size_t file_bytes = 3 << 20,
                               double report_scale = 100.0);

// --------------------------------------------------------------- Table VII

struct BandwidthRow {
  double kbps = 0;
  double capture_ms = 0;
  double state_ms = 0;    ///< t1: state transfer
  double class_ms = 0;    ///< t2+t3: class file transfer
  double restore_ms = 0;  ///< t4
  double latency_ms() const { return capture_ms + state_ms + class_ms + restore_ms; }
};
std::vector<BandwidthRow> run_bandwidth_experiment(
    const std::vector<double>& kbps = {50, 128, 384, 764});

}  // namespace sod::sodee
