#include "sodee/experiment.h"

#include <chrono>

#include "prep/prep.h"

namespace sod::sodee {

using bc::Value;
using svm::StopReason;

SystemMultipliers multipliers_for(const std::string& app_name) {
  // Table II no-migration columns divided by the JDK column.
  if (app_name == "Fib") return {49.57 / 12.10, 26.65 / 12.10};
  if (app_name == "NQ") return {38.20 / 6.26, 13.85 / 6.26};
  if (app_name == "FFT") return {255.3 / 12.39, 16.52 / 12.39};
  if (app_name == "TSP") return {20.93 / 2.92, 7.01 / 2.92};
  return {};
}

namespace {

double wall_seconds_of_run(const bc::Program& p, const std::string& entry,
                           std::span<const Value> args) {
  svm::NativeRegistry reg;
  svm::StdLib lib;
  lib.install(reg);
  mig::ObjectManager om;  // standalone fault semantics for preprocessed code
  svm::VM vm(p, &reg);
  // ObjectManager::install wants a SodNode; bind minimal natives instead.
  (void)om;
  uint16_t mid = p.find_method(entry);
  SOD_CHECK(mid != bc::kNoId, "unknown entry " + entry);
  auto t0 = std::chrono::steady_clock::now();
  int tid = vm.spawn(mid, args);
  auto rr = vm.run(tid);
  SOD_CHECK(rr.reason == StopReason::Done, "run did not finish");
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Accumulated local+static footprint (Table I's F): bytes of statics-
/// reachable heap plus 8 bytes per local slot on the paused stack.
size_t measure_F(SodNode& node, int tid) {
  size_t f = 0;
  const bc::Program& P = node.program();
  std::vector<bc::Ref> roots;
  for (const auto& c : P.classes) {
    if (!node.vm().class_loaded(c.id)) continue;
    f += static_cast<size_t>(c.num_static_slots) * 8;
    for (const Value& v : node.vm().statics_of(c.id))
      if (v.tag == bc::Ty::Ref && v.r != bc::kNull) roots.push_back(v.r);
  }
  if (!roots.empty()) f += node.vm().heap().graph_size(roots);
  for (const auto& fr : node.vm().thread(tid).frames) f += fr.locals.size() * 8;
  return f;
}

}  // namespace

MeasuredApp measure_app(const AppSpec& spec) {
  MeasuredApp m;
  m.spec = spec;

  // --- C0: real wall-clock ratio of preprocessed vs original code ---
  {
    bc::Program orig = spec.build();
    bc::Program prepped = spec.build();
    prep::preprocess_program(prepped);
    // Use smaller-than-bench args when the app is heavy?  Bench args are
    // already sized for interpretation.
    double t_orig = wall_seconds_of_run(orig, spec.entry, spec.bench_args);
    double t_prep = wall_seconds_of_run(prepped, spec.entry, spec.bench_args);
    m.c0 = t_orig > 0 ? std::max(0.0, t_prep / t_orig - 1.0) : 0.0;
  }

  sim::Link link = sim::Link::gigabit();
  bc::Program prog = spec.build();
  prep::preprocess_program(prog);
  uint16_t trigger = prog.find_method(spec.trigger_method);
  uint16_t entry = prog.find_method(spec.entry);
  SOD_CHECK(trigger != bc::kNoId && entry != bc::kNoId, "bad app spec: " + spec.name);

  // --- paper-scale trigger reach + SOD single-frame migration ---
  {
    SodNode home("home", prog, {});
    SodNode dest("dest", prog, {});
    int tid = home.vm().spawn(entry, spec.paper_args);
    SOD_CHECK(mig::pause_at_depth(home, tid, trigger, spec.paper_depth),
              "failed to reach paper depth for " + spec.name);
    m.measured_h = static_cast<int>(home.vm().thread(tid).frames.size());
    m.measured_F_bytes = measure_F(home, tid);

    // SOD ships only the top frame (paper Table IV discussion).
    VDur t0 = home.node().clock.now();
    mig::CapturedState cs = mig::capture_segment(home, tid, mig::SegmentSpec{0, 1});
    home.ti().set_debug_enabled(false);
    m.sod.state_bytes = cs.wire_size();
    home.node().charge_host(home.serde().cost(m.sod.state_bytes, 1));
    m.sod.capture = home.node().clock.now() - t0;

    uint16_t top_cls = prog.method(cs.frames.back().method).owner;
    size_t ship = m.sod.state_bytes + prog.class_image(top_cls).size();
    dest.mark_class_shipped(top_cls);
    dest.enable_class_fetch(&home, link);
    VDur sent = home.node().clock.now();
    sim::deliver(home.node(), dest.node(), link, ship);
    m.sod.transfer = dest.node().clock.now() - sent;

    VDur t2 = dest.node().clock.now();
    mig::Segment seg(dest);
    seg.objman().bind_home(&home, tid, 1, link);
    seg.restore(cs);
    m.sod.restore = dest.node().clock.now() - t2;
    m.sod.class_bytes = dest.class_bytes_fetched();
    // The segment is abandoned here: running Fib(46) to completion is not
    // the point of the latency experiment.
  }

  // --- G-JavaMPI eager-copy at paper scale ---
  {
    SodNode home("home", prog, {});
    SodNode dest("dest", prog, {});
    int tid = home.vm().spawn(entry, spec.paper_args);
    SOD_CHECK(mig::pause_at_depth(home, tid, trigger, spec.paper_depth), "gj trigger");
    home.ti().set_debug_enabled(false);
    int dtid = -1;
    m.gj = baselines::process_migrate(home, tid, dest, link, &dtid);
  }

  // --- JESSICA2 in-VM thread migration at paper scale ---
  {
    SodNode home("home", prog, {});
    SodNode dest("dest", prog, {});
    int tid = home.vm().spawn(entry, spec.paper_args);
    SOD_CHECK(mig::pause_at_depth(home, tid, trigger, spec.paper_depth), "j2 trigger");
    home.ti().set_debug_enabled(false);
    int dtid = -1;
    mig::ObjectManager om;
    m.j2 = baselines::thread_migrate(home, tid, dest, link, &dtid, &om);
  }

  // --- Xen live migration (cost model; identical for every app) ---
  m.xen = baselines::xen_live_migrate({}, link);

  // --- bench-scale end-to-end offload for fault/write-back behaviour ---
  {
    SodNode home("home", prog, {});
    SodNode dest("dest", prog, {});
    int tid = home.vm().spawn(entry, spec.bench_args);
    int depth = std::min(spec.paper_depth, 4);
    if (mig::pause_at_depth(home, tid, trigger, depth)) {
      VDur w0 = dest.node().clock.now();
      auto out = mig::offload_and_return(home, tid, 1, dest, link);
      m.faults = out.faults;
      m.writeback = out.writeback;
      // Aggregate network time of the fault round trips.
      m.sod_fault_time =
          VDur::nanos(static_cast<int64_t>(m.faults.faults) * 2 * link.latency.ns) +
          link.transfer_time(m.faults.bytes);
      m.sod_writeback_time = link.transfer_time(m.writeback.bytes);
      (void)w0;
      home.ti().set_debug_enabled(false);
      auto rr = home.run_guest(tid);
      SOD_CHECK(rr.reason == StopReason::Done || rr.reason == StopReason::Crashed,
                "post-offload home run");
    }
  }
  return m;
}

OverheadRow overhead_row(const MeasuredApp& m) {
  OverheadRow r;
  r.app = m.spec.name;
  r.jdk_s = m.spec.paper_jdk_seconds;
  SystemMultipliers mult = multipliers_for(m.spec.name);

  double debug_tax = 1.0 + m.c0 + m.c1;
  r.sodee_nomig_s = r.jdk_s * debug_tax;
  r.gj_nomig_s = r.jdk_s * debug_tax;  // same debugger-interface ride
  r.j2_nomig_s = r.jdk_s * mult.jessica2;
  r.xen_nomig_s = r.jdk_s * mult.xen;

  double sod_overhead =
      (m.sod.latency() + m.sod_fault_time + m.sod_writeback_time).sec();
  r.sodee_mig_s = r.sodee_nomig_s + sod_overhead;
  r.gj_mig_s = r.gj_nomig_s + m.gj.latency().sec();
  r.j2_mig_s = r.j2_nomig_s + m.j2.latency().sec();
  r.xen_mig_s = r.xen_nomig_s + m.xen.total_latency.sec();
  return r;
}

// ---------------------------------------------------------------- Table VI

namespace {

sfs::FileStore make_doc_store(int nfiles, size_t bytes) {
  sfs::FileStore store;
  for (int i = 0; i < nfiles; ++i) {
    sfs::SimFile f;
    f.name = "doc" + std::to_string(i);
    f.size = bytes;
    f.seed = 1000 + static_cast<uint64_t>(i);
    f.needle = "sodneedle";
    f.needle_at = bytes - bytes / 4;
    store.add(f);
  }
  return store;
}

/// Run Search.main(nfiles) on `node` with the given mount; returns
/// (virtual seconds, hits).
std::pair<double, int64_t> timed_search(SodNode& node, sfs::MountedFs& mount, int nfiles) {
  mount.install(node.registry());
  VDur t0 = node.node().clock.now();
  Value hits = node.call_guest("Search.main", std::vector<Value>{Value::of_i64(nfiles)});
  return {(node.node().clock.now() - t0).sec(), hits.as_i64()};
}

}  // namespace

std::vector<LocalityRow> run_locality_experiment(const LocalityConfig& cfg) {
  bc::Program prog = apps::build_docsearch();
  prep::preprocess_program(prog);
  sfs::FileStore store = make_doc_store(cfg.nfiles, cfg.file_bytes);
  sim::Link link = sim::Link::gigabit();
  std::vector<LocalityRow> rows;

  // Floor: run locally on the server (local disk) — same for all systems.
  double on_server;
  {
    SodNode server("server", prog, {});
    mig::ObjectManager om;
    om.install(server);
    sfs::MountedFs mount(&store, sfs::MountSpeed::local_disk());
    auto [secs, hits] = timed_search(server, mount, cfg.nfiles);
    SOD_CHECK(hits == cfg.nfiles, "search missed needles");
    on_server = secs * cfg.report_scale;
  }
  // No-migration: run on the client over NFS — systems differ only by
  // their execution multiplier (irrelevant here: I/O dominates), so run
  // once and reuse.
  double no_mig;
  {
    SodNode client("client", prog, {});
    mig::ObjectManager om;
    om.install(client);
    sfs::MountedFs mount(&store, sfs::MountSpeed::nfs());
    auto [secs, hits] = timed_search(client, mount, cfg.nfiles);
    SOD_CHECK(hits == cfg.nfiles, "search missed needles");
    no_mig = secs * cfg.report_scale;
  }

  // SODEE: migrate the search to the server before any read.
  {
    SodNode client("client", prog, {});
    SodNode server("server", prog, {});
    sfs::MountedFs client_mount(&store, sfs::MountSpeed::nfs());
    client_mount.install(client.registry());
    sfs::MountedFs server_mount(&store, sfs::MountSpeed::local_disk());
    // ObjectManager/cs natives installed by Segment on the server.
    int tid = client.vm().spawn(prog.find_method("Search.main"),
                                std::vector<Value>{Value::of_i64(cfg.nfiles)});
    uint16_t run_m = prog.find_method("Search.run");
    SOD_CHECK(mig::pause_at_depth(client, tid, run_m, 2), "sod locality trigger");
    VDur t0 = client.node().clock.now();
    mig::CapturedState cs = mig::capture_segment(client, tid, mig::SegmentSpec{0, 2});
    client.ti().set_debug_enabled(false);
    client.node().charge_host(client.serde().cost(cs.wire_size(), 2));
    server.enable_class_fetch(&client, link);
    sim::deliver(client.node(), server.node(), link, cs.wire_size());
    mig::Segment seg(server);
    server_mount.install(server.registry());  // after objman: server-local fs
    seg.objman().bind_home(&client, tid, 2, link);
    seg.restore(cs);
    Value hits = seg.run_to_completion();
    SOD_CHECK(hits.as_i64() == cfg.nfiles, "sod search missed needles");
    mig::write_back(seg, client, tid, 2, hits, link);
    client.node().clock.wait_until(server.node().clock.now());
    double mig_s = (client.node().clock.now() - t0).sec() * cfg.report_scale;
    rows.push_back(LocalityRow{"SODEE", no_mig, mig_s, on_server});
  }

  // JESSICA2: thread migration to the server, then run there.  I/O goes
  // through the JVM's (slow) library: the paper saw almost no gain; model
  // that with the measured residual gain factor (the JVM I/O bottleneck),
  // applied as a server-side read-speed penalty.
  {
    SodNode client("client", prog, {});
    SodNode server("server", prog, {});
    sfs::MountedFs client_mount(&store, sfs::MountSpeed::nfs());
    client_mount.install(client.registry());
    int tid = client.vm().spawn(prog.find_method("Search.main"),
                                std::vector<Value>{Value::of_i64(cfg.nfiles)});
    uint16_t run_m = prog.find_method("Search.run");
    SOD_CHECK(mig::pause_at_depth(client, tid, run_m, 2), "j2 locality trigger");
    client.ti().set_debug_enabled(false);
    VDur t0 = client.node().clock.now();
    int dtid = -1;
    mig::ObjectManager om;
    baselines::thread_migrate(client, tid, server, link, &dtid, &om);
    // Kaffe-era I/O path: reads barely speed up on the server (paper: a
    // 2.88% gain); its buffered reader bottlenecks at ~NFS speed.
    sfs::MountSpeed j2_disk = sfs::MountSpeed::local_disk();
    j2_disk.bytes_per_sec = 80e6;  // JVM I/O library bottleneck
    sfs::MountedFs server_mount(&store, j2_disk);
    server_mount.install(server.registry());
    auto rr = server.run_guest(dtid);
    SOD_CHECK(rr.reason == StopReason::Done, "j2 locality run");
    client.node().clock.wait_until(server.node().clock.now());
    double mig_s = (client.node().clock.now() - t0).sec() * cfg.report_scale;
    rows.push_back(LocalityRow{"JESSICA2", no_mig * 1.0, mig_s, on_server});
  }

  // Xen: live migration then local reads; the multi-second migration
  // latency eats nearly the whole locality benefit.
  {
    SodNode server("server", prog, {});
    mig::ObjectManager om;
    om.install(server);
    baselines::XenTiming xt = baselines::xen_live_migrate({}, link);
    sfs::MountedFs server_mount(&store, sfs::MountSpeed::local_disk());
    auto [secs, hits] = timed_search(server, server_mount, cfg.nfiles);
    SOD_CHECK(hits == cfg.nfiles, "xen search missed needles");
    double mig_s = secs * cfg.report_scale + xt.total_latency.sec();
    rows.push_back(LocalityRow{"Xen", no_mig, mig_s, on_server});
  }
  return rows;
}

// -------------------------------------------------------- roaming (§IV.C)

RoamingResult run_roaming_grid(int nservers, size_t file_bytes, double report_scale) {
  bc::Program prog = apps::build_docsearch();
  prep::preprocess_program(prog);
  sim::Link wan(/*bandwidth_bps=*/100e6, /*latency=*/VDur::millis(2));
  RoamingResult res;
  res.hops = nservers;
  sfs::FileStore all = make_doc_store(nservers, file_bytes);

  // Baseline: all files read over WAN-NFS from the client.
  {
    SodNode client("client", prog, {});
    mig::ObjectManager om;
    om.install(client);
    sfs::MountSpeed wan_nfs = sfs::MountSpeed::nfs();
    wan_nfs.bytes_per_sec = 24e6;  // WAN-grade NFS (paper: 124.3 s for 3 GB)
    sfs::MountedFs mount(&all, wan_nfs);
    auto [secs, hits] = timed_search(client, mount, nservers);
    SOD_CHECK(hits == nservers, "roaming baseline missed needles");
    res.no_mig_s = secs * report_scale;
  }

  // Roaming: each search_one(i) hop migrates the top frame to server i.
  {
    SodNode client("client", prog, {});
    std::vector<std::unique_ptr<SodNode>> servers;
    for (int i = 0; i < nservers; ++i)
      servers.push_back(std::make_unique<SodNode>("server" + std::to_string(i), prog,
                                                  SodNode::Config{}));
    // The client itself never reads files in the roaming run, but needs a
    // mount for completeness.
    sfs::MountSpeed wan_nfs = sfs::MountSpeed::nfs();
    wan_nfs.bytes_per_sec = 24e6;
    sfs::MountedFs client_mount(&all, wan_nfs);
    mig::ObjectManager client_om;
    client_om.install(client);
    client_mount.install(client.registry());

    int tid = client.vm().spawn(prog.find_method("Search.main"),
                                std::vector<Value>{Value::of_i64(nservers)});
    uint16_t one_m = prog.find_method("Search.search_one");
    VDur t0 = client.node().clock.now();
    for (int hop = 0; hop < nservers; ++hop) {
      SOD_CHECK(mig::pause_at_depth(client, tid, one_m, 3), "roaming trigger");
      // Which file is this hop searching?  Read the idx parameter.
      int64_t idx = client.ti().get_local(tid, 0, 0).as_i64();
      SodNode& server = *servers[static_cast<size_t>(idx)];
      // Server idx hosts doc<idx> on local disk (the catalog covers all
      // names so index lookups work; the hop only reads its own file).
      sfs::MountedFs server_mount(&all, sfs::MountSpeed::local_disk());
      // The mount must be live before the offloaded segment runs (the
      // segment's own natives are installed inside offload_and_return).
      server_mount.install(server.registry());
      auto out = mig::offload_and_return(client, tid, 1, server, wan);
      SOD_CHECK(out.result.as_i64() == 1, "roaming hop missed its needle");
      client.ti().set_debug_enabled(false);
      client.node().clock.wait_until(server.node().clock.now());
    }
    auto rr = client.run_guest(tid);
    SOD_CHECK(rr.reason == StopReason::Done, "roaming run did not finish");
    res.roaming_s = (client.node().clock.now() - t0).sec() * report_scale;
    SOD_CHECK(client.vm().thread(tid).result.as_i64() == nservers, "roaming missed needles");
  }
  return res;
}

// --------------------------------------------------------------- Table VII

std::vector<BandwidthRow> run_bandwidth_experiment(const std::vector<double>& kbps_list) {
  bc::Program prog = apps::build_photoshare();
  prep::preprocess_program(prog);
  std::vector<BandwidthRow> rows;

  for (double kbps : kbps_list) {
    sim::Link wifi = sim::Link::wifi_kbps(kbps);
    SodNode server("server", prog, {});
    // iPhone-3G profile: ~25x slower CPU, no tool interface on the device
    // (Java-level restoration), modest heap.
    SodNode::Config dev_cfg;
    dev_cfg.cpu_scale = 25.0;
    dev_cfg.java_level_restore = true;
    dev_cfg.heap_limit_bytes = 96 << 20;
    SodNode phone("iphone", prog, dev_cfg);

    // Photos live on the phone.
    sfs::FileStore photos;
    for (int i = 0; i < 8; ++i) {
      sfs::SimFile f;
      f.name = "IMG_" + std::to_string(100 + i) + ".jpg";
      f.size = 200 << 10;
      f.seed = 7000 + static_cast<uint64_t>(i);
      photos.add(f);
    }
    sfs::MountedFs phone_mount(&photos, sfs::MountSpeed::local_disk());

    int tid = server.vm().spawn(prog.find_method("Photo.count_photos"),
                                std::vector<Value>{Value::of_i64(8)});
    uint16_t find_m = prog.find_method("Photo.find");
    SOD_CHECK(mig::pause_at_depth(server, tid, find_m, 2), "photo trigger");

    BandwidthRow row;
    row.kbps = kbps;
    VDur t0 = server.node().clock.now();
    mig::CapturedState cs = mig::capture_segment(server, tid, mig::SegmentSpec{0, 1});
    server.ti().set_debug_enabled(false);
    server.node().charge_host(server.serde().cost(cs.wire_size(), 1));
    row.capture_ms = (server.node().clock.now() - t0).ms();

    VDur sent = server.node().clock.now();
    sim::deliver(server.node(), phone.node(), wifi, cs.wire_size());
    row.state_ms = (phone.node().clock.now() - sent).ms();

    phone.enable_class_fetch(&server, wifi);
    VDur t2 = phone.node().clock.now();
    mig::Segment seg(phone);
    phone_mount.install(phone.registry());
    seg.objman().bind_home(&server, tid, 1, wifi);
    seg.restore(cs);
    VDur restore_total = phone.node().clock.now() - t2;
    row.class_ms = phone.class_fetch_time().ms();
    row.restore_ms = (restore_total - phone.class_fetch_time()).ms();

    Value found = seg.run_to_completion();  // the photo-name array (a ref)
    mig::write_back(seg, server, tid, 1, found, wifi);
    server.ti().set_debug_enabled(false);
    auto rr = server.run_guest(tid);
    SOD_CHECK(rr.reason == StopReason::Done, "photo server run");
    SOD_CHECK(server.vm().thread(tid).result.as_i64() == 8, "photo search wrong count");
    rows.push_back(row);
  }
  return rows;
}

}  // namespace sod::sodee
