// SODEE Tool Interface — the JVMTI equivalent.
//
// The migration manager in the paper is a JVMTI agent: it never touches
// JVM internals directly, it goes through the debugger interface, and the
// price of that portability is per-call overhead (the paper measures most
// JVMTI calls at ~1 µs but GetLocal<T> at ~30 µs, which dominates SOD's
// capture time).  This class mirrors that architecture: every call accrues
// its modelled cost into `spent()`, which the migration manager folds into
// the virtual-time capture/restore figures of Tables IV and VII.
//
// The JESSICA2 baseline (in-VM thread migration) bypasses this layer and
// reads VM state directly — that is exactly the portability-vs-speed
// trade-off the paper discusses.
#pragma once

#include <cstdint>
#include <vector>

#include "support/vclock.h"
#include "svm/vm.h"

namespace sod::vmti {

using bc::Ref;
using bc::Ty;
using bc::Value;

/// Virtual cost of each tool-interface call.  Defaults follow the paper's
/// measurements (Section IV.A): cheap calls ~1 µs, GetLocal<T> ~30 µs.
struct CostModel {
  VDur get_stack_depth = VDur::micros(1);
  VDur get_frame_location = VDur::micros(1);
  VDur get_local_table = VDur::micros(1);
  VDur get_local = VDur::micros(30);
  VDur set_local = VDur::micros(30);
  VDur get_static = VDur::micros(2);
  VDur set_static = VDur::micros(2);
  VDur set_breakpoint = VDur::micros(5);
  VDur force_early_return = VDur::micros(10);
  VDur pop_frame = VDur::micros(5);
  VDur raise_exception = VDur::micros(10);
  VDur get_object = VDur::micros(5);  ///< locating an object for the object manager

  /// Zero-cost model (for tests that care only about semantics).
  static CostModel free() { return CostModel{{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}}; }
};

struct FrameLocation {
  uint16_t method = 0;
  uint32_t pc = 0;
};

class ToolInterface {
 public:
  explicit ToolInterface(svm::VM& vm, CostModel cm = {}) : vm_(&vm), cm_(cm) {}

  svm::VM& vm() { return *vm_; }

  // --- stack inspection (depth 0 = topmost frame) ---
  int get_stack_depth(int tid);
  FrameLocation get_frame_location(int tid, int depth);
  const std::vector<bc::LocalVar>& get_local_variable_table(uint16_t method);
  Value get_local(int tid, int depth, uint16_t slot);
  void set_local(int tid, int depth, uint16_t slot, Value v);

  // --- statics ---
  Value get_static_field(uint16_t field_id);
  void set_static_field(uint16_t field_id, Value v);

  // --- execution control ---
  void set_breakpoint(uint16_t method, uint32_t pc);
  void clear_breakpoint(uint16_t method, uint32_t pc);
  /// Enable/disable the debug interpreter (mixed-mode switch).
  void set_debug_enabled(bool on) { vm_->set_debug_mode(on); }
  void request_safepoint(bool on) { vm_->request_safepoint(on); }
  /// Throw an exception in the thread's current context (triggers the
  /// injected restoration handler).
  void raise_exception(int tid, uint16_t ex_cls, std::string_view msg);
  /// Discard the top frame without delivering a value.
  void pop_frame(int tid);
  /// Pop the top frame and complete its pending INVOKE in the caller with
  /// `v` (JVMTI ForceEarlyReturn<T>).  If it was the last frame the thread
  /// finishes with result `v`.
  void force_early_return(int tid, Value v);

  // --- object access (for the object manager's home side) ---
  /// Charge the object-lookup cost and return the ref unchanged (models
  /// JVMTI's handle resolution).
  Ref resolve_object(Ref r);

  // --- accounting ---
  VDur spent() const { return spent_; }
  void reset_spent() { spent_ = {}; }

 private:
  svm::Frame& frame_at(int tid, int depth);

  svm::VM* vm_;
  CostModel cm_;
  VDur spent_{};
};

}  // namespace sod::vmti
