#include "vmti/vmti.h"

namespace sod::vmti {

svm::Frame& ToolInterface::frame_at(int tid, int depth) {
  auto& th = vm_->thread(tid);
  SOD_CHECK(depth >= 0 && static_cast<size_t>(depth) < th.frames.size(), "bad frame depth");
  return th.frames[th.frames.size() - 1 - static_cast<size_t>(depth)];
}

int ToolInterface::get_stack_depth(int tid) {
  spent_ += cm_.get_stack_depth;
  return static_cast<int>(vm_->thread(tid).frames.size());
}

FrameLocation ToolInterface::get_frame_location(int tid, int depth) {
  spent_ += cm_.get_frame_location;
  const svm::Frame& f = frame_at(tid, depth);
  return FrameLocation{f.method, f.pc};
}

const std::vector<bc::LocalVar>& ToolInterface::get_local_variable_table(uint16_t method) {
  spent_ += cm_.get_local_table;
  return vm_->program().method(method).var_table;
}

Value ToolInterface::get_local(int tid, int depth, uint16_t slot) {
  spent_ += cm_.get_local;
  const svm::Frame& f = frame_at(tid, depth);
  SOD_CHECK(slot < f.locals.size(), "bad local slot");
  return f.locals[slot];
}

void ToolInterface::set_local(int tid, int depth, uint16_t slot, Value v) {
  spent_ += cm_.set_local;
  svm::Frame& f = frame_at(tid, depth);
  SOD_CHECK(slot < f.locals.size(), "bad local slot");
  f.locals[slot] = v;
}

Value ToolInterface::get_static_field(uint16_t field_id) {
  spent_ += cm_.get_static;
  return vm_->get_static(field_id);
}

void ToolInterface::set_static_field(uint16_t field_id, Value v) {
  spent_ += cm_.set_static;
  vm_->set_static(field_id, v);
}

void ToolInterface::set_breakpoint(uint16_t method, uint32_t pc) {
  spent_ += cm_.set_breakpoint;
  vm_->add_breakpoint(method, pc);
}

void ToolInterface::clear_breakpoint(uint16_t method, uint32_t pc) {
  spent_ += cm_.set_breakpoint;
  vm_->remove_breakpoint(method, pc);
}

void ToolInterface::raise_exception(int tid, uint16_t ex_cls, std::string_view msg) {
  spent_ += cm_.raise_exception;
  vm_->raise_in_thread(tid, ex_cls, msg);
}

void ToolInterface::pop_frame(int tid) {
  spent_ += cm_.pop_frame;
  auto& th = vm_->thread(tid);
  SOD_CHECK(!th.frames.empty(), "pop_frame on empty stack");
  th.frames.pop_back();
}

void ToolInterface::force_early_return(int tid, Value v) {
  spent_ += cm_.force_early_return;
  auto& th = vm_->thread(tid);
  SOD_CHECK(!th.frames.empty(), "force_early_return on empty stack");
  const bc::Method& m = vm_->program().method(th.frames.back().method);
  th.frames.pop_back();
  if (th.frames.empty()) {
    th.status = svm::ThreadStatus::Done;
    th.result = v;
    return;
  }
  if (m.ret != Ty::Void) {
    SOD_CHECK(v.tag == m.ret, "force_early_return type mismatch");
    th.frames.back().ostack.push_back(v);
  }
}

Ref ToolInterface::resolve_object(Ref r) {
  spent_ += cm_.get_object;
  return r;
}

}  // namespace sod::vmti
