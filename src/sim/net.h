// Cluster / network simulation.
//
// Every node owns a virtual clock; every link has bandwidth and latency.
// Message timing follows the classic distributed-virtual-time rule
//     arrival = max(dst.now, src.now + latency + bytes/bandwidth)
// which is what produces the latency-hiding behaviour of the paper's
// Fig. 1(c) workflow experiments: a segment pushed early restores while an
// upstream segment is still executing.
//
// Guest execution charges node time as instructions x per-instruction cost
// x the node's cpu_scale (device profiles: cluster Xeon vs iPhone ARM).
#pragma once

#include <string>
#include <vector>

#include "support/panic.h"
#include "support/vclock.h"

namespace sod::sim {

struct Link {
  double bandwidth_bps = 1e9;  ///< bits per second (Gigabit default)
  VDur latency = VDur::micros(100);

  static Link gigabit() { return Link{1e9, VDur::micros(100)}; }
  static Link wifi_kbps(double kbps) { return Link{kbps * 1000.0, VDur::millis(5)}; }

  VDur transfer_time(size_t bytes) const {
    return latency + VDur::seconds(static_cast<double>(bytes) * 8.0 / bandwidth_bps);
  }
};

struct Node {
  std::string name;
  VClock clock;
  /// Execution-speed multiplier relative to the reference cluster node
  /// (iPhone-3G-like device: ~25; cluster Xeon: 1).
  double cpu_scale = 1.0;
  /// Per-guest-instruction cost on the reference node in "JIT mode".
  VDur instr_cost = VDur::nanos(2);
  /// Slowdown while the debug interpreter is active (mixed-mode penalty).
  double debug_multiplier = 10.0;

  /// Charge `n` interpreted instructions (debug selects the mode).
  void charge_instrs(uint64_t n, bool debug = false) {
    double ns = static_cast<double>(n) * static_cast<double>(instr_cost.ns) * cpu_scale;
    if (debug) ns *= debug_multiplier;
    clock.advance(VDur::nanos(static_cast<int64_t>(ns)));
  }
  /// Charge host-side work (serialization, allocation) scaled by CPU.
  void charge_host(VDur d) {
    clock.advance(VDur::nanos(static_cast<int64_t>(static_cast<double>(d.ns) * cpu_scale)));
  }
};

/// Send `bytes` from src to dst over `l`; advances dst's clock to the
/// arrival instant and returns it.  src's clock is not advanced (sends are
/// asynchronous; the sender continues).
inline VDur deliver(const Node& src, Node& dst, const Link& l, size_t bytes) {
  VDur arrival = src.clock.now() + l.transfer_time(bytes);
  dst.clock.wait_until(arrival);
  return dst.clock.now();
}

/// Synchronous round trip: src asks dst for `resp_bytes` with a small
/// request; src blocks until the response arrives.  Returns the new time
/// at src.  `dst_service` is the virtual service time charged at dst.
inline VDur round_trip(Node& src, Node& dst, const Link& l, size_t req_bytes, size_t resp_bytes,
                       VDur dst_service) {
  VDur req_arrival = src.clock.now() + l.transfer_time(req_bytes);
  dst.clock.wait_until(req_arrival);
  dst.clock.advance(dst_service);
  VDur resp_arrival = dst.clock.now() + l.transfer_time(resp_bytes);
  src.clock.wait_until(resp_arrival);
  return src.clock.now();
}

/// Serialization throughput model (Java serialization in the paper):
/// bytes -> host time.
struct SerdeModel {
  double bytes_per_sec = 400e6;  ///< serialize throughput
  VDur per_object = VDur::micros(2);

  VDur cost(size_t bytes, int objects = 1) const {
    return VDur::seconds(static_cast<double>(bytes) / bytes_per_sec) +
           VDur::nanos(per_object.ns * objects);
  }
};

}  // namespace sod::sim
