// Whole-program static analyzer over sod::bc::Program.
//
// Layers interprocedural facts on top of the per-method worklist verifier:
//
//   1. A call graph with reachability from the configured entry points,
//      rejecting INVOKEs of undefined (code-less, non-builtin) methods and
//      accounting for unreachable code.
//   2. A statics-effect analysis: which static fields each method reads and
//      writes, closed transitively through callees.  Classes none of whose
//      primitive statics are ever written anywhere in the program are
//      "statics-pure": refresh_primitive_statics can provably skip them
//      (statics mutate only via PUTSTATIC, and every node initializes
//      statics identically from the shared program, so an unwritten slot
//      always bit-compares equal and ships zero bytes).
//   3. A ref-escape analysis: which methods can return or store home refs
//      (ARETURN, or PUTSTATIC of a Ref-typed field), closed transitively,
//      so the ref-forwarding table only tracks classes that can chain.
//   4. A per-MSP captured-state bound: max locals + operand-stack depth
//      over the method's migration-safe points, exposed to placement as a
//      static migration-cost hint.
//
// analyze_program never throws: verifier failures and effect violations
// become Diagnostics in the AdmissionReport, and `admitted` is simply
// "no diagnostics".  This is the admission gate the cluster runs on every
// tenant program before any class image ships.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/program.h"

namespace sod::analysis {

struct AnalysisOptions {
  /// Qualified entry-method names used as reachability roots.  Empty means
  /// every defined method is a root (the conservative lint default).
  std::vector<std::string> entries;
  /// Enforce the empty-stack-at-MSP invariant while verifying.
  bool enforce_msp = true;
  /// Class names the submitter declares statics-pure; any transitive
  /// static write by their methods (or to their statics) is a violation.
  std::vector<std::string> declared_pure;
};

/// One admission failure, pointed at a class/method/pc.
struct Diagnostic {
  std::string cls;
  std::string method;
  uint32_t pc = UINT32_MAX;  ///< UINT32_MAX when no single pc applies
  std::string message;

  std::string str() const;
};

struct MethodFacts {
  uint16_t id = bc::kNoId;
  bool defined = false;    ///< has code (builtin stubs are code-less)
  bool reachable = false;  ///< from the configured entry roots
  std::vector<uint16_t> callees;        ///< direct INVOKE targets, sorted
  std::vector<uint16_t> statics_read;   ///< field ids, transitive, sorted
  std::vector<uint16_t> statics_written;
  bool writes_statics = false;            ///< any transitive PUTSTATIC
  bool writes_primitive_statics = false;  ///< transitive PUTSTATIC of I64/F64
  bool ref_escape = false;  ///< can return a ref or store one to a static
  uint32_t msp_count = 0;
  /// Max (num_locals + operand depth) over this method's MSPs — the static
  /// bound on per-frame captured state at any migration-safe point.
  uint32_t max_msp_state_slots = 0;
};

struct ClassFacts {
  uint16_t id = bc::kNoId;
  /// Some reachable method (of any class) writes a static field owned by
  /// this class.
  bool statics_written = false;
  /// Some reachable method writes a *primitive* (I64/F64) static of this
  /// class — the condition refresh_primitive_statics actually cares about.
  bool writes_primitive_statics = false;
  /// Some reachable method owned by this class can leak a ref (return or
  /// statically store one) — only these classes can chain forwarded refs.
  bool ref_escape = false;
  /// Max captured-state bound over this class's reachable methods' MSPs.
  uint32_t max_msp_state_slots = 0;
};

struct ProgramFacts {
  std::vector<MethodFacts> methods;  ///< indexed by method id
  std::vector<ClassFacts> classes;   ///< indexed by class id
  size_t reachable_methods = 0;
  size_t unreachable_methods = 0;  ///< defined but unreachable

  /// Safe to skip `cls` in refresh_primitive_statics?  True when no
  /// reachable code writes a primitive static owned by the class.
  bool class_statics_pure(uint16_t cls) const {
    return cls < classes.size() && !classes[cls].writes_primitive_statics;
  }
  bool class_ref_escape(uint16_t cls) const {
    return cls >= classes.size() || classes[cls].ref_escape;
  }
  uint32_t class_msp_state_slots(uint16_t cls) const {
    return cls < classes.size() ? classes[cls].max_msp_state_slots : 0;
  }
  /// Does `method` (by qualified name) transitively write any static?
  /// kNoId-safe; unknown names are conservatively "yes".
  bool method_writes_statics(const bc::Program& p, std::string_view name) const;
};

struct AdmissionReport {
  bool admitted = false;
  ProgramFacts facts;
  std::vector<Diagnostic> diagnostics;
};

/// Run the whole-program analysis.  Never throws; malformed methods and
/// effect violations surface as diagnostics (admitted == diagnostics.empty()).
AdmissionReport analyze_program(const bc::Program& p, const AnalysisOptions& opt = {});

}  // namespace sod::analysis
