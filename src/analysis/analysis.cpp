#include "analysis/analysis.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "bytecode/verifier.h"
#include "support/panic.h"

namespace sod::analysis {

namespace {

// Per-method scratch collected from one decode walk; closed transitively
// after the call graph is known.
struct Scratch {
  std::set<uint16_t> callees;
  std::set<uint16_t> statics_read;
  std::set<uint16_t> statics_written;
  std::map<uint16_t, uint32_t> first_write_pc;  ///< field id -> first PUTSTATIC pc
  bool ref_escape = false;
  bool verified = false;
};

uint32_t parse_pc(const std::string& verifier_msg) {
  // verify_method diagnostics read "verifier: method 'NAME' pc N: msg".
  size_t at = verifier_msg.rfind(" pc ");
  if (at == std::string::npos) return UINT32_MAX;
  return static_cast<uint32_t>(std::strtoul(verifier_msg.c_str() + at + 4, nullptr, 10));
}

std::string class_of(const bc::Program& p, const bc::Method& m) {
  return m.owner < p.classes.size() ? p.cls(m.owner).name : "?";
}

}  // namespace

std::string Diagnostic::str() const {
  std::string s = "class '" + cls + "' method '" + method + "'";
  if (pc != UINT32_MAX) s += " pc " + std::to_string(pc);
  return s + ": " + message;
}

bool ProgramFacts::method_writes_statics(const bc::Program& p, std::string_view name) const {
  uint16_t id = p.find_method(name);
  if (id == bc::kNoId || id >= methods.size()) return true;  // unknown: assume the worst
  return methods[id].writes_statics;
}

AdmissionReport analyze_program(const bc::Program& p, const AnalysisOptions& opt) {
  AdmissionReport rep;
  auto diag = [&rep](std::string cls, std::string method, uint32_t pc, std::string msg) {
    rep.diagnostics.push_back(
        {std::move(cls), std::move(method), pc, std::move(msg)});
  };

  rep.facts.methods.resize(p.methods.size());
  rep.facts.classes.resize(p.classes.size());
  for (size_t i = 0; i < p.classes.size(); ++i) rep.facts.classes[i].id = p.classes[i].id;

  // --- pass 1: verify each defined method and collect direct effects -----
  std::vector<Scratch> scratch(p.methods.size());
  for (const bc::Method& m : p.methods) {
    MethodFacts& mf = rep.facts.methods[m.id];
    mf.id = m.id;
    mf.defined = !m.code.empty();
    if (!mf.defined) continue;  // builtin stub: nothing to verify or walk

    bc::StackMap map;
    try {
      map = bc::verify_method(p, m, opt.enforce_msp);
    } catch (const Error& e) {
      diag(class_of(p, m), m.name, parse_pc(e.what()), e.what());
      continue;
    }
    Scratch& sc = scratch[m.id];
    sc.verified = true;

    for (uint32_t pc : map.boundaries) {
      bc::Instr in = bc::decode(m.code, pc);
      switch (in.op) {
        case bc::Op::INVOKE: {
          // Range-checked by the verifier; what it does not check is that
          // the callee actually has code (builtin stubs are code-less).
          const bc::Method& callee = p.method(static_cast<uint16_t>(in.arg));
          if (callee.code.empty()) {
            diag(class_of(p, m), m.name, pc,
                 "call to undefined method '" + callee.name + "'");
          }
          sc.callees.insert(static_cast<uint16_t>(in.arg));
          break;
        }
        case bc::Op::GETSTATIC:
          sc.statics_read.insert(static_cast<uint16_t>(in.arg));
          break;
        case bc::Op::PUTSTATIC: {
          uint16_t fid = static_cast<uint16_t>(in.arg);
          sc.statics_written.insert(fid);
          sc.first_write_pc.emplace(fid, pc);
          if (p.field(fid).type == bc::Ty::Ref) sc.ref_escape = true;
          break;
        }
        case bc::Op::ARETURN:
          sc.ref_escape = true;
          break;
        default: break;
      }
    }
    mf.msp_count = static_cast<uint32_t>(m.stmt_starts.size());
    mf.max_msp_state_slots = m.num_locals;
    for (uint32_t s : m.stmt_starts)
      if (s < map.depth.size() && map.depth[s] >= 0)
        mf.max_msp_state_slots = std::max<uint32_t>(
            mf.max_msp_state_slots, m.num_locals + static_cast<uint32_t>(map.depth[s]));
  }

  // --- pass 2: reachability from the entry roots -------------------------
  std::deque<uint16_t> work;
  auto mark = [&](uint16_t id) {
    if (id < rep.facts.methods.size() && !rep.facts.methods[id].reachable &&
        rep.facts.methods[id].defined) {
      rep.facts.methods[id].reachable = true;
      work.push_back(id);
    }
  };
  if (opt.entries.empty()) {
    for (const bc::Method& m : p.methods)
      if (!m.code.empty()) mark(m.id);
  } else {
    for (const std::string& e : opt.entries) {
      uint16_t id = p.find_method(e);
      if (id == bc::kNoId) {
        diag("?", e, UINT32_MAX, "entry method not found in program");
        continue;
      }
      mark(id);
    }
  }
  while (!work.empty()) {
    uint16_t id = work.front();
    work.pop_front();
    for (uint16_t callee : scratch[id].callees) mark(callee);
  }
  for (const MethodFacts& mf : rep.facts.methods) {
    if (!mf.defined) continue;
    if (mf.reachable)
      ++rep.facts.reachable_methods;
    else
      ++rep.facts.unreachable_methods;
  }

  // --- pass 3: transitive closure of effects over the call graph ---------
  // Reverse edges let a callee's new facts flow to callers until fixpoint;
  // cycles converge because the sets only grow.
  std::vector<std::vector<uint16_t>> callers(p.methods.size());
  for (const bc::Method& m : p.methods)
    for (uint16_t callee : scratch[m.id].callees)
      callers[callee].push_back(m.id);
  for (const bc::Method& m : p.methods)
    if (scratch[m.id].verified) work.push_back(m.id);
  while (!work.empty()) {
    uint16_t id = work.front();
    work.pop_front();
    for (uint16_t caller : callers[id]) {
      Scratch& cs = scratch[caller];
      const Scratch& sc = scratch[id];
      size_t before = cs.statics_read.size() + cs.statics_written.size() +
                      (cs.ref_escape ? 1 : 0);
      cs.statics_read.insert(sc.statics_read.begin(), sc.statics_read.end());
      cs.statics_written.insert(sc.statics_written.begin(), sc.statics_written.end());
      cs.ref_escape = cs.ref_escape || sc.ref_escape;
      size_t after = cs.statics_read.size() + cs.statics_written.size() +
                     (cs.ref_escape ? 1 : 0);
      if (after != before) work.push_back(caller);
    }
  }
  for (const bc::Method& m : p.methods) {
    MethodFacts& mf = rep.facts.methods[m.id];
    const Scratch& sc = scratch[m.id];
    mf.callees.assign(sc.callees.begin(), sc.callees.end());
    mf.statics_read.assign(sc.statics_read.begin(), sc.statics_read.end());
    mf.statics_written.assign(sc.statics_written.begin(), sc.statics_written.end());
    mf.writes_statics = !sc.statics_written.empty();
    for (uint16_t fid : sc.statics_written)
      if (p.field(fid).type != bc::Ty::Ref) mf.writes_primitive_statics = true;
    mf.ref_escape = sc.ref_escape;
  }

  // --- pass 4: fold reachable-method facts into per-class facts ----------
  for (const bc::Method& m : p.methods) {
    const MethodFacts& mf = rep.facts.methods[m.id];
    if (!mf.reachable) continue;
    // Effects a method has on statics land on the *owning class of the
    // field* (that is what refresh scans); escape and MSP bounds land on
    // the method's own class (that is what placement and forwarding key by).
    for (uint16_t fid : scratch[m.id].statics_written) {
      const bc::Field& f = p.field(fid);
      ClassFacts& cf = rep.facts.classes[f.owner];
      cf.statics_written = true;
      if (f.type != bc::Ty::Ref) cf.writes_primitive_statics = true;
    }
    if (m.owner < rep.facts.classes.size()) {
      ClassFacts& cf = rep.facts.classes[m.owner];
      cf.ref_escape = cf.ref_escape || mf.ref_escape;
      cf.max_msp_state_slots = std::max(cf.max_msp_state_slots, mf.max_msp_state_slots);
    }
  }

  // --- pass 5: declared-purity violations --------------------------------
  for (const std::string& pure : opt.declared_pure) {
    uint16_t cid = p.find_class(pure);
    if (cid == bc::kNoId) {
      diag(pure, "?", UINT32_MAX, "declared-pure class not found in program");
      continue;
    }
    // Any reachable direct write to a static owned by the pure class, or
    // any reachable write *by* one of its methods, is a violation; point
    // the diagnostic at the direct PUTSTATIC site.
    for (const bc::Method& m : p.methods) {
      if (!rep.facts.methods[m.id].reachable) continue;
      for (const auto& [fid, pc] : scratch[m.id].first_write_pc) {
        const bc::Field& f = p.field(fid);
        if (f.owner == cid || m.owner == cid)
          diag(pure, m.name, pc,
               "statics write ('" + f.name + "') in declared-pure class '" + pure + "'");
      }
    }
    // A pure-class method whose *callee* writes statics has no local
    // PUTSTATIC; report the transitive effect against the entry method.
    for (uint16_t mid : p.cls(cid).method_ids) {
      const MethodFacts& mf = rep.facts.methods[mid];
      if (!mf.reachable || !mf.writes_statics || !scratch[mid].first_write_pc.empty())
        continue;
      diag(pure, p.method(mid).name, UINT32_MAX,
           "method of declared-pure class '" + pure + "' transitively writes statics");
    }
  }

  rep.admitted = rep.diagnostics.empty();
  return rep;
}

}  // namespace sod::analysis
