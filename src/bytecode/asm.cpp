#include "bytecode/asm.h"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <vector>

#include "bytecode/builder.h"

namespace sod::bc {

namespace {

struct Tok {
  std::vector<std::string> words;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw Error("asm: line " + std::to_string(line) + ": " + msg);
}

Ty parse_ty(const std::string& s, int line) {
  if (s == "i64") return Ty::I64;
  if (s == "f64") return Ty::F64;
  if (s == "ref") return Ty::Ref;
  if (s == "void") return Ty::Void;
  fail(line, "bad type: " + s);
}

int64_t parse_i64(const std::string& s, int line) {
  int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) fail(line, "bad integer: " + s);
  return v;
}

double parse_f64(const std::string& s, int line) {
  try {
    size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size()) fail(line, "bad float: " + s);
    return v;
  } catch (const std::logic_error&) {
    fail(line, "bad float: " + s);
  }
}

/// Tokenize one line, honouring quoted strings and '#' comments.
std::vector<std::string> split(const std::string& raw, int line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < raw.size()) {
    if (std::isspace(static_cast<unsigned char>(raw[i]))) {
      ++i;
      continue;
    }
    if (raw[i] == '#') break;
    if (raw[i] == '"') {
      std::string s;
      ++i;
      while (i < raw.size() && raw[i] != '"') {
        if (raw[i] == '\\' && i + 1 < raw.size()) ++i;
        s += raw[i++];
      }
      if (i >= raw.size()) fail(line, "unterminated string");
      ++i;
      out.push_back("\"" + s);  // keep a marker so operands know it was quoted
      continue;
    }
    size_t start = i;
    while (i < raw.size() && !std::isspace(static_cast<unsigned char>(raw[i])) && raw[i] != '#')
      ++i;
    out.push_back(raw.substr(start, i - start));
  }
  return out;
}

class Assembler {
 public:
  explicit Assembler(std::string_view src) : src_(src) {}

  Program run() {
    tokenize();
    // Pass 1: classes and fields must exist before method bodies refer to
    // them by name.
    for (const Tok& t : lines_) {
      if (t.words[0] == "class") do_class(t);
    }
    for (const Tok& t : lines_) {
      if (t.words[0] == "field") do_field(t);
      if (t.words[0] == "native") do_native(t);
    }
    // Pass 2: methods (declaration order).
    for (size_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].words[0] == "method") i = do_method(i);
    }
    return pb_.build();
  }

 private:
  void tokenize() {
    std::istringstream in{std::string(src_)};
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
      ++line;
      auto words = split(raw, line);
      if (!words.empty()) lines_.push_back(Tok{std::move(words), line});
    }
  }

  void do_class(const Tok& t) {
    if (t.words.size() < 2) fail(t.line, "class needs a name");
    bool is_ex = t.words.size() > 2 && t.words[2] == "exception";
    pb_.cls(t.words[1], is_ex);
  }

  void do_field(const Tok& t) {
    if (t.words.size() < 3) fail(t.line, "field needs Qualified.name and type");
    const std::string& q = t.words[1];
    size_t dot = q.find('.');
    if (dot == std::string::npos) fail(t.line, "field name must be Class.name");
    uint16_t cid = pb_.prog().find_class(q.substr(0, dot));
    if (cid == kNoId) fail(t.line, "unknown class in field: " + q);
    bool is_static = t.words.size() > 3 && t.words[3] == "static";
    class_builder(cid).field(q.substr(dot + 1), parse_ty(t.words[2], t.line), is_static);
  }

  ClassBuilder& class_builder(uint16_t cid) {
    // ProgramBuilder owns one builder per class in creation order; builtin
    // exception classes come first.
    return pb_.class_builder(cid);
  }

  void do_native(const Tok& t) {
    // native name (ty,ty) -> ty
    if (t.words.size() < 4) fail(t.line, "native name (types) -> ty");
    std::string blob;
    size_t w = 2;
    for (; w < t.words.size(); ++w) {
      blob += t.words[w];
      if (t.words[w].find(')') != std::string::npos) break;
    }
    if (w == t.words.size()) fail(t.line, "missing ')' in native decl");
    size_t open = blob.find('('), close = blob.find(')');
    std::vector<Ty> params;
    std::istringstream ps(blob.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(ps, item, ','))
      if (!item.empty()) params.push_back(parse_ty(item, t.line));
    if (t.words.size() < w + 3 || t.words[w + 1] != "->")
      fail(t.line, "native decl needs '-> type'");
    pb_.native(t.words[1], params, parse_ty(t.words[w + 2], t.line));
  }

  size_t do_method(size_t at) {
    const Tok& hdr = lines_[at];
    // method Qualified.name (a:i64 b:ref) -> ty
    if (hdr.words.size() < 4) fail(hdr.line, "method header malformed");
    const std::string& q = hdr.words[1];
    size_t dot = q.find('.');
    if (dot == std::string::npos) fail(hdr.line, "method name must be Class.name");
    uint16_t cid = pb_.prog().find_class(q.substr(0, dot));
    if (cid == kNoId) fail(hdr.line, "unknown class in method: " + q);

    // Params: tokens between '(' and ')' as name:ty; '(' / ')' may be fused.
    std::vector<std::pair<std::string, Ty>> params;
    size_t w = 2;
    std::string blob;
    for (; w < hdr.words.size(); ++w) {
      blob += hdr.words[w];
      if (hdr.words[w].find(')') != std::string::npos) break;
    }
    if (w == hdr.words.size()) fail(hdr.line, "missing ')' in method header");
    size_t open = blob.find('(');
    size_t close = blob.find(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      fail(hdr.line, "malformed parameter list");
    std::string plist = blob.substr(open + 1, close - open - 1);
    std::istringstream ps(plist);
    std::string item;
    while (std::getline(ps, item, ',')) {
      if (item.empty()) continue;
      size_t colon = item.find(':');
      if (colon == std::string::npos) fail(hdr.line, "param must be name:type");
      params.emplace_back(item.substr(0, colon), parse_ty(item.substr(colon + 1), hdr.line));
    }
    // Return type after "->".
    size_t arrow = w + 1;
    if (arrow + 1 >= hdr.words.size() + 1 || hdr.words.size() < arrow + 2 ||
        hdr.words[arrow] != "->")
      fail(hdr.line, "method header needs '-> type'");
    Ty ret = parse_ty(hdr.words[arrow + 1], hdr.line);

    MethodBuilder& f = class_builder(cid).method(q.substr(dot + 1), params, ret);

    std::map<std::string, Label> labels;
    auto label_of = [&](const std::string& name) {
      auto it = labels.find(name);
      if (it == labels.end()) it = labels.emplace(name, f.label()).first;
      return it->second;
    };
    struct CatchFix {
      std::string from, to, handler, cls;
      int line;
    };
    std::vector<CatchFix> catches;
    std::map<std::string, uint32_t> label_pcs;  // filled when bound

    size_t i = at + 1;
    for (; i < lines_.size(); ++i) {
      const Tok& t = lines_[i];
      const std::string& op = t.words[0];
      if (op == "end") break;
      if (op == "method") fail(t.line, "missing 'end' before next method");

      auto arg = [&](size_t k) -> const std::string& {
        if (k >= t.words.size()) fail(t.line, "missing operand");
        return t.words[k];
      };

      if (op.back() == ':') {
        std::string name = op.substr(0, op.size() - 1);
        f.bind(label_of(name));
        label_pcs[name] = f.here();
        continue;
      }
      if (op == ".stmt") {
        f.stmt();
        continue;
      }
      if (op == "local") {
        f.local(arg(1), parse_ty(arg(2), t.line));
        continue;
      }
      if (op == "catch") {
        // catch Lh from La to Lb class Name|any
        if (t.words.size() < 8) fail(t.line, "catch Lh from La to Lb class C");
        catches.push_back(CatchFix{arg(3), arg(5), arg(1), arg(7), t.line});
        continue;
      }

      // --- instructions ---
      if (op == "iconst") f.iconst(parse_i64(arg(1), t.line));
      else if (op == "dconst") f.dconst(parse_f64(arg(1), t.line));
      else if (op == "aconst_null") f.aconst_null();
      else if (op == "ldc_str") {
        const std::string& s = arg(1);
        if (s.empty() || s[0] != '"') fail(t.line, "ldc_str needs a quoted string");
        f.ldc_str(s.substr(1));
      }
      else if (op == "iload") f.iload(arg(1));
      else if (op == "dload") f.dload(arg(1));
      else if (op == "aload") f.aload(arg(1));
      else if (op == "istore") f.istore(arg(1));
      else if (op == "dstore") f.dstore(arg(1));
      else if (op == "astore") f.astore(arg(1));
      else if (op == "pop") f.pop();
      else if (op == "dup") f.dup();
      else if (op == "swap") f.swap();
      else if (op == "iadd") f.iadd();
      else if (op == "isub") f.isub();
      else if (op == "imul") f.imul();
      else if (op == "idiv") f.idiv();
      else if (op == "irem") f.irem();
      else if (op == "ineg") f.ineg();
      else if (op == "ishl") f.ishl();
      else if (op == "ishr") f.ishr();
      else if (op == "iand") f.iand();
      else if (op == "ior") f.ior();
      else if (op == "ixor") f.ixor();
      else if (op == "dadd") f.dadd();
      else if (op == "dsub") f.dsub();
      else if (op == "dmul") f.dmul();
      else if (op == "ddiv") f.ddiv();
      else if (op == "dneg") f.dneg();
      else if (op == "i2d") f.i2d();
      else if (op == "d2i") f.d2i();
      else if (op == "dcmp") f.dcmp();
      else if (op == "goto") f.go(label_of(arg(1)));
      else if (op == "ifeq") f.ifeq(label_of(arg(1)));
      else if (op == "ifne") f.ifne(label_of(arg(1)));
      else if (op == "iflt") f.iflt(label_of(arg(1)));
      else if (op == "ifle") f.ifle(label_of(arg(1)));
      else if (op == "ifgt") f.ifgt(label_of(arg(1)));
      else if (op == "ifge") f.ifge(label_of(arg(1)));
      else if (op == "if_icmpeq") f.if_icmpeq(label_of(arg(1)));
      else if (op == "if_icmpne") f.if_icmpne(label_of(arg(1)));
      else if (op == "if_icmplt") f.if_icmplt(label_of(arg(1)));
      else if (op == "if_icmple") f.if_icmple(label_of(arg(1)));
      else if (op == "if_icmpgt") f.if_icmpgt(label_of(arg(1)));
      else if (op == "if_icmpge") f.if_icmpge(label_of(arg(1)));
      else if (op == "ifnull") f.ifnull(label_of(arg(1)));
      else if (op == "ifnonnull") f.ifnonnull(label_of(arg(1)));
      else if (op == "lookupswitch") {
        // lookupswitch Ldefault k1:L1 k2:L2 ...
        std::vector<std::pair<int64_t, Label>> pairs;
        for (size_t k = 2; k < t.words.size(); ++k) {
          size_t colon = t.words[k].find(':');
          if (colon == std::string::npos) fail(t.line, "switch arm must be key:Label");
          pairs.emplace_back(parse_i64(t.words[k].substr(0, colon), t.line),
                             label_of(t.words[k].substr(colon + 1)));
        }
        f.lookupswitch(label_of(arg(1)), pairs);
      }
      else if (op == "getfield") f.getfield(arg(1));
      else if (op == "putfield") f.putfield(arg(1));
      else if (op == "getstatic") f.getstatic(arg(1));
      else if (op == "putstatic") f.putstatic(arg(1));
      else if (op == "new") f.new_(arg(1));
      else if (op == "newarray") f.newarray(parse_ty(arg(1), t.line));
      else if (op == "iaload") f.iaload();
      else if (op == "iastore") f.iastore();
      else if (op == "daload") f.daload();
      else if (op == "dastore") f.dastore();
      else if (op == "aaload") f.aaload();
      else if (op == "aastore") f.aastore();
      else if (op == "arraylen") f.arraylen();
      else if (op == "invoke") f.invoke(arg(1));
      else if (op == "invokenative") f.invokenative(arg(1));
      else if (op == "return") f.ret();
      else if (op == "ireturn") f.iret();
      else if (op == "dreturn") f.dret();
      else if (op == "areturn") f.aret();
      else if (op == "throw") f.throw_();
      else fail(t.line, "unknown mnemonic: " + op);
    }
    if (i >= lines_.size()) fail(hdr.line, "method missing 'end'");

    for (const CatchFix& c : catches) {
      auto fi = label_pcs.find(c.from);
      auto ti = label_pcs.find(c.to);
      if (fi == label_pcs.end() || ti == label_pcs.end())
        fail(c.line, "catch range labels must be bound in this method");
      uint16_t cls = kAnyClass;
      if (c.cls != "any") {
        cls = pb_.prog().find_class(c.cls);
        if (cls == kNoId) fail(c.line, "unknown exception class: " + c.cls);
      }
      f.ex_entry(fi->second, ti->second, label_of(c.handler), cls);
    }
    return i;
  }

  std::string_view src_;
  std::vector<Tok> lines_;
  ProgramBuilder pb_;
};

}  // namespace

Program assemble(std::string_view source) { return Assembler(source).run(); }

}  // namespace sod::bc
