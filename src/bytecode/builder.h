// Fluent builders for constructing Programs.
//
// Guest applications (Fib, NQueens, FFT, TSP, doc-search, photo-share) are
// written against this API, which plays the role of javac: it emits
// *statement-flattened* code — `stmt()` marks statement starts, and by
// convention app codegen keeps the operand stack empty across statement
// boundaries (three-address style, call results stored to temps).  The
// preprocessor (src/prep) then *verifies* that discipline, derives the
// migration-safe-point table, and injects restoration / object-fault
// handlers exactly as the paper's BCEL-based class preprocessor does.
//
// Method and field operands may be referenced by (forward) name; names are
// resolved when ProgramBuilder::build() runs, so mutually recursive
// methods are straightforward.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bytecode/program.h"

namespace sod::bc {

class ProgramBuilder;
class ClassBuilder;

/// Branch label; create with MethodBuilder::label(), place with bind().
struct Label {
  uint32_t id = UINT32_MAX;
};

class MethodBuilder {
 public:
  MethodBuilder(const MethodBuilder&) = delete;
  MethodBuilder& operator=(const MethodBuilder&) = delete;

  uint16_t method_id() const { return id_; }

  /// Allocate a named local variable (recorded in the variable table).
  uint16_t local(std::string_view name, Ty type);
  /// Slot of a previously declared local/parameter by name.
  uint16_t slot(std::string_view name) const;

  Label label();
  MethodBuilder& bind(Label l);
  /// Current emit position.
  uint32_t here() const { return static_cast<uint32_t>(code_.size()); }

  /// Mark the next instruction as a statement start (MSP candidate).
  MethodBuilder& stmt();

  // --- constants ---
  MethodBuilder& iconst(int64_t v);
  MethodBuilder& dconst(double v);
  MethodBuilder& aconst_null();
  MethodBuilder& ldc_str(std::string_view s);

  // --- locals (by slot or by declared name) ---
  MethodBuilder& iload(uint16_t s);
  MethodBuilder& dload(uint16_t s);
  MethodBuilder& aload(uint16_t s);
  MethodBuilder& istore(uint16_t s);
  MethodBuilder& dstore(uint16_t s);
  MethodBuilder& astore(uint16_t s);
  MethodBuilder& iload(std::string_view n) { return iload(slot(n)); }
  MethodBuilder& dload(std::string_view n) { return dload(slot(n)); }
  MethodBuilder& aload(std::string_view n) { return aload(slot(n)); }
  MethodBuilder& istore(std::string_view n) { return istore(slot(n)); }
  MethodBuilder& dstore(std::string_view n) { return dstore(slot(n)); }
  MethodBuilder& astore(std::string_view n) { return astore(slot(n)); }

  // --- stack ---
  MethodBuilder& pop();
  MethodBuilder& dup();
  MethodBuilder& swap();

  // --- arithmetic ---
  MethodBuilder& iadd();
  MethodBuilder& isub();
  MethodBuilder& imul();
  MethodBuilder& idiv();
  MethodBuilder& irem();
  MethodBuilder& ineg();
  MethodBuilder& ishl();
  MethodBuilder& ishr();
  MethodBuilder& iand();
  MethodBuilder& ior();
  MethodBuilder& ixor();
  MethodBuilder& dadd();
  MethodBuilder& dsub();
  MethodBuilder& dmul();
  MethodBuilder& ddiv();
  MethodBuilder& dneg();
  MethodBuilder& i2d();
  MethodBuilder& d2i();
  MethodBuilder& dcmp();

  // --- control flow ---
  MethodBuilder& go(Label l);
  MethodBuilder& ifeq(Label l);
  MethodBuilder& ifne(Label l);
  MethodBuilder& iflt(Label l);
  MethodBuilder& ifle(Label l);
  MethodBuilder& ifgt(Label l);
  MethodBuilder& ifge(Label l);
  MethodBuilder& if_icmpeq(Label l);
  MethodBuilder& if_icmpne(Label l);
  MethodBuilder& if_icmplt(Label l);
  MethodBuilder& if_icmple(Label l);
  MethodBuilder& if_icmpgt(Label l);
  MethodBuilder& if_icmpge(Label l);
  MethodBuilder& ifnull(Label l);
  MethodBuilder& ifnonnull(Label l);
  MethodBuilder& lookupswitch(Label dflt, const std::vector<std::pair<int64_t, Label>>& pairs);

  // --- fields (qualified "Class.field") ---
  MethodBuilder& getfield(std::string_view qname);
  MethodBuilder& putfield(std::string_view qname);
  MethodBuilder& getstatic(std::string_view qname);
  MethodBuilder& putstatic(std::string_view qname);

  // --- objects / arrays ---
  MethodBuilder& new_(std::string_view class_name);
  MethodBuilder& newarray(Ty elem);
  MethodBuilder& iaload();
  MethodBuilder& iastore();
  MethodBuilder& daload();
  MethodBuilder& dastore();
  MethodBuilder& aaload();
  MethodBuilder& aastore();
  MethodBuilder& arraylen();

  // --- calls ---
  MethodBuilder& invoke(std::string_view qname);
  MethodBuilder& invokenative(std::string_view name);
  MethodBuilder& ret();      // RETURN
  MethodBuilder& iret();
  MethodBuilder& dret();
  MethodBuilder& aret();

  // --- exceptions ---
  MethodBuilder& throw_();
  /// Add an exception-table entry [from, to) -> handler for ex_class
  /// (kAnyClass = catch everything).
  MethodBuilder& ex_entry(uint32_t from, uint32_t to, Label handler, uint16_t ex_class);

 private:
  friend class ClassBuilder;
  friend class ProgramBuilder;
  MethodBuilder(ProgramBuilder* pb, uint16_t id);

  MethodBuilder& op0(Op o);
  MethodBuilder& op_u16(Op o, uint16_t v);
  MethodBuilder& branch(Op o, Label l);
  MethodBuilder& named_u16(Op o, std::string_view qname, bool is_field);
  void finish();  // move code into Program

  ProgramBuilder* pb_;
  uint16_t id_;
  std::vector<uint8_t> code_;
  std::vector<LocalVar> vars_;
  std::vector<ExEntry> ex_;
  std::vector<uint32_t> stmts_;
  std::vector<uint32_t> label_pc_;
  struct Fixup {
    size_t patch_at;
    uint32_t label;
  };
  std::vector<Fixup> fixups_;
  struct ExFix {
    size_t index;
    uint32_t label;
  };
  std::vector<ExFix> ex_fixups_;
  uint16_t next_slot_ = 0;
  bool finished_ = false;
};

class ClassBuilder {
 public:
  uint16_t class_id() const { return id_; }

  /// Declare a field; returns its global field id.
  uint16_t field(std::string_view name, Ty type, bool is_static = false);

  /// Begin a method; parameters become locals 0..n-1.
  MethodBuilder& method(std::string_view name, std::vector<std::pair<std::string, Ty>> params,
                        Ty ret);

 private:
  friend class ProgramBuilder;
  ClassBuilder(ProgramBuilder* pb, uint16_t id) : pb_(pb), id_(id) {}
  ProgramBuilder* pb_;
  uint16_t id_;
};

class ProgramBuilder {
 public:
  /// Registers the built-in exception classes (stable ids, see
  /// bc::builtin) and no natives.
  ProgramBuilder();

  ClassBuilder& cls(std::string_view name, bool is_exception = false);

  /// Builder for an already-declared class (class ids and builders are
  /// created in lockstep, so they index identically).
  ClassBuilder& class_builder(uint16_t class_id) {
    SOD_CHECK(class_id < class_builders_.size(), "no builder for class id");
    return *class_builders_[class_id];
  }

  /// Declare a native function; idempotent per name.
  uint16_t native(std::string_view name, std::vector<Ty> params, Ty ret);

  /// Resolve name references, run the verifier over every method
  /// (computing max_stack), and return the finished program.
  Program build();

  Program& prog() { return prog_; }

 private:
  friend class MethodBuilder;
  friend class ClassBuilder;

  struct NameFix {
    uint16_t method_id;
    size_t patch_at;
    std::string name;
    bool is_field;  // else method
  };

  Program prog_;
  std::vector<std::unique_ptr<ClassBuilder>> class_builders_;
  std::vector<std::unique_ptr<MethodBuilder>> method_builders_;
  std::vector<NameFix> name_fixups_;
  bool built_ = false;
};

}  // namespace sod::bc
