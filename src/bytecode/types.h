// Value model of the SODEE stack machine.
//
// The VM is a JVM-like *typed* stack machine.  We keep three runtime value
// kinds: 64-bit integers, 64-bit floats, and heap references.  (The paper's
// JVM distinguishes int/long and float/double; collapsing each pair loses
// nothing the migration machinery cares about and keeps frames compact.)
#pragma once

#include <cstdint>
#include <string>

#include "support/panic.h"

namespace sod::bc {

/// Static type of a local variable, field, parameter or stack slot.
enum class Ty : uint8_t {
  Void = 0,  ///< only valid as a return type
  I64 = 1,
  F64 = 2,
  Ref = 3,
};

inline const char* ty_name(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::I64: return "i64";
    case Ty::F64: return "f64";
    case Ty::Ref: return "ref";
  }
  return "?";
}

/// Heap reference; 0 is the null reference.
using Ref = uint32_t;
inline constexpr Ref kNull = 0;

/// A runtime value: tagged union of the three kinds.
struct Value {
  Ty tag = Ty::I64;
  union {
    int64_t i;
    double d;
    Ref r;
  };

  Value() : i(0) {}
  static Value of_i64(int64_t v) {
    Value x;
    x.tag = Ty::I64;
    x.i = v;
    return x;
  }
  static Value of_f64(double v) {
    Value x;
    x.tag = Ty::F64;
    x.d = v;
    return x;
  }
  static Value of_ref(Ref v) {
    Value x;
    x.tag = Ty::Ref;
    x.r = v;
    return x;
  }
  static Value null() { return of_ref(kNull); }
  static Value zero_of(Ty t) {
    switch (t) {
      case Ty::I64: return of_i64(0);
      case Ty::F64: return of_f64(0.0);
      case Ty::Ref: return null();
      case Ty::Void: break;
    }
    SOD_UNREACHABLE("zero_of(void)");
  }

  int64_t as_i64() const {
    SOD_CHECK(tag == Ty::I64, "value is not i64");
    return i;
  }
  double as_f64() const {
    SOD_CHECK(tag == Ty::F64, "value is not f64");
    return d;
  }
  Ref as_ref() const {
    SOD_CHECK(tag == Ty::Ref, "value is not ref");
    return r;
  }

  bool same_as(const Value& o) const {
    if (tag != o.tag) return false;
    switch (tag) {
      case Ty::I64: return i == o.i;
      case Ty::F64: return d == o.d;
      case Ty::Ref: return r == o.r;
      case Ty::Void: return true;
    }
    return false;
  }

  std::string str() const;
};

inline std::string Value::str() const {
  switch (tag) {
    case Ty::I64: return std::to_string(i);
    case Ty::F64: return std::to_string(d);
    case Ty::Ref: return r == kNull ? "null" : "@" + std::to_string(r);
    case Ty::Void: return "void";
  }
  return "?";
}

}  // namespace sod::bc
