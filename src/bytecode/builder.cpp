#include "bytecode/builder.h"

#include <cstring>

#include "bytecode/verifier.h"

namespace sod::bc {

// ---------------------------------------------------------------- Method

MethodBuilder::MethodBuilder(ProgramBuilder* pb, uint16_t id) : pb_(pb), id_(id) {}

uint16_t MethodBuilder::local(std::string_view name, Ty type) {
  SOD_CHECK(type != Ty::Void, "local cannot be void");
  uint16_t s = next_slot_++;
  vars_.push_back(LocalVar{std::string(name), type, s});
  return s;
}

uint16_t MethodBuilder::slot(std::string_view name) const {
  for (const auto& v : vars_)
    if (v.name == name) return v.slot;
  SOD_UNREACHABLE("unknown local: " + std::string(name));
}

Label MethodBuilder::label() {
  label_pc_.push_back(UINT32_MAX);
  return Label{static_cast<uint32_t>(label_pc_.size() - 1)};
}

MethodBuilder& MethodBuilder::bind(Label l) {
  SOD_CHECK(l.id < label_pc_.size(), "bad label");
  SOD_CHECK(label_pc_[l.id] == UINT32_MAX, "label bound twice");
  label_pc_[l.id] = here();
  return *this;
}

MethodBuilder& MethodBuilder::stmt() {
  if (stmts_.empty() || stmts_.back() != here()) stmts_.push_back(here());
  return *this;
}

MethodBuilder& MethodBuilder::op0(Op o) {
  code_.push_back(static_cast<uint8_t>(o));
  return *this;
}

MethodBuilder& MethodBuilder::op_u16(Op o, uint16_t v) {
  code_.push_back(static_cast<uint8_t>(o));
  code_.push_back(static_cast<uint8_t>(v & 0xFF));
  code_.push_back(static_cast<uint8_t>(v >> 8));
  return *this;
}

MethodBuilder& MethodBuilder::branch(Op o, Label l) {
  code_.push_back(static_cast<uint8_t>(o));
  fixups_.push_back(Fixup{code_.size(), l.id});
  code_.insert(code_.end(), 4, 0);
  return *this;
}

MethodBuilder& MethodBuilder::named_u16(Op o, std::string_view qname, bool is_field) {
  code_.push_back(static_cast<uint8_t>(o));
  pb_->name_fixups_.push_back(
      ProgramBuilder::NameFix{id_, code_.size(), std::string(qname), is_field});
  code_.insert(code_.end(), 2, 0);
  return *this;
}

MethodBuilder& MethodBuilder::iconst(int64_t v) {
  code_.push_back(static_cast<uint8_t>(Op::ICONST));
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  code_.insert(code_.end(), b, b + 8);
  return *this;
}

MethodBuilder& MethodBuilder::dconst(double v) {
  code_.push_back(static_cast<uint8_t>(Op::DCONST));
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  code_.insert(code_.end(), b, b + 8);
  return *this;
}

MethodBuilder& MethodBuilder::aconst_null() { return op0(Op::ACONST_NULL); }

MethodBuilder& MethodBuilder::ldc_str(std::string_view s) {
  return op_u16(Op::LDC_STR, pb_->prog_.intern_string(s));
}

MethodBuilder& MethodBuilder::iload(uint16_t s) { return op_u16(Op::ILOAD, s); }
MethodBuilder& MethodBuilder::dload(uint16_t s) { return op_u16(Op::DLOAD, s); }
MethodBuilder& MethodBuilder::aload(uint16_t s) { return op_u16(Op::ALOAD, s); }
MethodBuilder& MethodBuilder::istore(uint16_t s) { return op_u16(Op::ISTORE, s); }
MethodBuilder& MethodBuilder::dstore(uint16_t s) { return op_u16(Op::DSTORE, s); }
MethodBuilder& MethodBuilder::astore(uint16_t s) { return op_u16(Op::ASTORE, s); }

MethodBuilder& MethodBuilder::pop() { return op0(Op::POP); }
MethodBuilder& MethodBuilder::dup() { return op0(Op::DUP); }
MethodBuilder& MethodBuilder::swap() { return op0(Op::SWAP); }

MethodBuilder& MethodBuilder::iadd() { return op0(Op::IADD); }
MethodBuilder& MethodBuilder::isub() { return op0(Op::ISUB); }
MethodBuilder& MethodBuilder::imul() { return op0(Op::IMUL); }
MethodBuilder& MethodBuilder::idiv() { return op0(Op::IDIV); }
MethodBuilder& MethodBuilder::irem() { return op0(Op::IREM); }
MethodBuilder& MethodBuilder::ineg() { return op0(Op::INEG); }
MethodBuilder& MethodBuilder::ishl() { return op0(Op::ISHL); }
MethodBuilder& MethodBuilder::ishr() { return op0(Op::ISHR); }
MethodBuilder& MethodBuilder::iand() { return op0(Op::IAND); }
MethodBuilder& MethodBuilder::ior() { return op0(Op::IOR); }
MethodBuilder& MethodBuilder::ixor() { return op0(Op::IXOR); }
MethodBuilder& MethodBuilder::dadd() { return op0(Op::DADD); }
MethodBuilder& MethodBuilder::dsub() { return op0(Op::DSUB); }
MethodBuilder& MethodBuilder::dmul() { return op0(Op::DMUL); }
MethodBuilder& MethodBuilder::ddiv() { return op0(Op::DDIV); }
MethodBuilder& MethodBuilder::dneg() { return op0(Op::DNEG); }
MethodBuilder& MethodBuilder::i2d() { return op0(Op::I2D); }
MethodBuilder& MethodBuilder::d2i() { return op0(Op::D2I); }
MethodBuilder& MethodBuilder::dcmp() { return op0(Op::DCMP); }

MethodBuilder& MethodBuilder::go(Label l) { return branch(Op::GOTO, l); }
MethodBuilder& MethodBuilder::ifeq(Label l) { return branch(Op::IFEQ, l); }
MethodBuilder& MethodBuilder::ifne(Label l) { return branch(Op::IFNE, l); }
MethodBuilder& MethodBuilder::iflt(Label l) { return branch(Op::IFLT, l); }
MethodBuilder& MethodBuilder::ifle(Label l) { return branch(Op::IFLE, l); }
MethodBuilder& MethodBuilder::ifgt(Label l) { return branch(Op::IFGT, l); }
MethodBuilder& MethodBuilder::ifge(Label l) { return branch(Op::IFGE, l); }
MethodBuilder& MethodBuilder::if_icmpeq(Label l) { return branch(Op::IF_ICMPEQ, l); }
MethodBuilder& MethodBuilder::if_icmpne(Label l) { return branch(Op::IF_ICMPNE, l); }
MethodBuilder& MethodBuilder::if_icmplt(Label l) { return branch(Op::IF_ICMPLT, l); }
MethodBuilder& MethodBuilder::if_icmple(Label l) { return branch(Op::IF_ICMPLE, l); }
MethodBuilder& MethodBuilder::if_icmpgt(Label l) { return branch(Op::IF_ICMPGT, l); }
MethodBuilder& MethodBuilder::if_icmpge(Label l) { return branch(Op::IF_ICMPGE, l); }
MethodBuilder& MethodBuilder::ifnull(Label l) { return branch(Op::IFNULL, l); }
MethodBuilder& MethodBuilder::ifnonnull(Label l) { return branch(Op::IFNONNULL, l); }

MethodBuilder& MethodBuilder::lookupswitch(Label dflt,
                                           const std::vector<std::pair<int64_t, Label>>& pairs) {
  code_.push_back(static_cast<uint8_t>(Op::LOOKUPSWITCH));
  uint16_t n = static_cast<uint16_t>(pairs.size());
  code_.push_back(static_cast<uint8_t>(n & 0xFF));
  code_.push_back(static_cast<uint8_t>(n >> 8));
  fixups_.push_back(Fixup{code_.size(), dflt.id});
  code_.insert(code_.end(), 4, 0);
  for (const auto& [key, lbl] : pairs) {
    uint8_t b[8];
    std::memcpy(b, &key, 8);
    code_.insert(code_.end(), b, b + 8);
    fixups_.push_back(Fixup{code_.size(), lbl.id});
    code_.insert(code_.end(), 4, 0);
  }
  return *this;
}

MethodBuilder& MethodBuilder::getfield(std::string_view q) { return named_u16(Op::GETFIELD, q, true); }
MethodBuilder& MethodBuilder::putfield(std::string_view q) { return named_u16(Op::PUTFIELD, q, true); }
MethodBuilder& MethodBuilder::getstatic(std::string_view q) { return named_u16(Op::GETSTATIC, q, true); }
MethodBuilder& MethodBuilder::putstatic(std::string_view q) { return named_u16(Op::PUTSTATIC, q, true); }

MethodBuilder& MethodBuilder::new_(std::string_view class_name) {
  uint16_t cid = pb_->prog_.find_class(class_name);
  SOD_CHECK(cid != kNoId, "unknown class: " + std::string(class_name));
  return op_u16(Op::NEW, cid);
}

MethodBuilder& MethodBuilder::newarray(Ty elem) {
  code_.push_back(static_cast<uint8_t>(Op::NEWARRAY));
  code_.push_back(static_cast<uint8_t>(elem));
  return *this;
}

MethodBuilder& MethodBuilder::iaload() { return op0(Op::IALOAD); }
MethodBuilder& MethodBuilder::iastore() { return op0(Op::IASTORE); }
MethodBuilder& MethodBuilder::daload() { return op0(Op::DALOAD); }
MethodBuilder& MethodBuilder::dastore() { return op0(Op::DASTORE); }
MethodBuilder& MethodBuilder::aaload() { return op0(Op::AALOAD); }
MethodBuilder& MethodBuilder::aastore() { return op0(Op::AASTORE); }
MethodBuilder& MethodBuilder::arraylen() { return op0(Op::ARRAYLEN); }

MethodBuilder& MethodBuilder::invoke(std::string_view q) { return named_u16(Op::INVOKE, q, false); }

MethodBuilder& MethodBuilder::invokenative(std::string_view name) {
  uint16_t nid = pb_->prog_.find_native(name);
  SOD_CHECK(nid != kNoId, "unknown native: " + std::string(name));
  return op_u16(Op::INVOKENATIVE, nid);
}

MethodBuilder& MethodBuilder::ret() { return op0(Op::RETURN); }
MethodBuilder& MethodBuilder::iret() { return op0(Op::IRETURN); }
MethodBuilder& MethodBuilder::dret() { return op0(Op::DRETURN); }
MethodBuilder& MethodBuilder::aret() { return op0(Op::ARETURN); }
MethodBuilder& MethodBuilder::throw_() { return op0(Op::THROW); }

MethodBuilder& MethodBuilder::ex_entry(uint32_t from, uint32_t to, Label handler,
                                       uint16_t ex_class) {
  ex_.push_back(ExEntry{from, to, 0, ex_class});
  ex_fixups_.push_back(ExFix{ex_.size() - 1, handler.id});
  return *this;
}

void MethodBuilder::finish() {
  if (finished_) return;
  finished_ = true;
  for (const auto& f : fixups_) {
    SOD_CHECK(f.label < label_pc_.size() && label_pc_[f.label] != UINT32_MAX,
              "unbound label in method " + pb_->prog_.method(id_).name);
    uint32_t pc = label_pc_[f.label];
    std::memcpy(code_.data() + f.patch_at, &pc, 4);
  }
  for (const auto& f : ex_fixups_) {
    SOD_CHECK(f.label < label_pc_.size() && label_pc_[f.label] != UINT32_MAX, "unbound ex label");
    ex_[f.index].handler_pc = label_pc_[f.label];
  }
  Method& m = pb_->prog_.method_mut(id_);
  m.code = std::move(code_);
  m.var_table = std::move(vars_);
  m.ex_table = std::move(ex_);
  m.stmt_starts = std::move(stmts_);
  m.num_locals = next_slot_;
}

// ---------------------------------------------------------------- Class

uint16_t ClassBuilder::field(std::string_view name, Ty type, bool is_static) {
  Program& p = pb_->prog_;
  Class& c = p.classes[id_];
  Field f;
  f.id = static_cast<uint16_t>(p.fields.size());
  f.owner = id_;
  f.name = c.name + "." + std::string(name);
  f.type = type;
  f.is_static = is_static;
  f.slot = is_static ? c.num_static_slots++ : c.num_inst_slots++;
  p.fields.push_back(f);
  c.field_ids.push_back(f.id);
  return f.id;
}

MethodBuilder& ClassBuilder::method(std::string_view name,
                                    std::vector<std::pair<std::string, Ty>> params, Ty ret) {
  Program& p = pb_->prog_;
  Class& c = p.classes[id_];
  Method m;
  m.id = static_cast<uint16_t>(p.methods.size());
  m.owner = id_;
  m.name = c.name + "." + std::string(name);
  m.ret = ret;
  p.methods.push_back(m);
  c.method_ids.push_back(m.id);

  auto mb = std::unique_ptr<MethodBuilder>(new MethodBuilder(pb_, m.id));
  for (auto& [pname, pty] : params) {
    mb->local(pname, pty);
    p.methods[m.id].params.push_back(pty);
  }
  pb_->method_builders_.push_back(std::move(mb));
  return *pb_->method_builders_.back();
}

// ---------------------------------------------------------------- Program

ProgramBuilder::ProgramBuilder() {
  static const char* kBuiltins[builtin::kCount] = {
      "NullPointerException", "InvalidStateException",  "OutOfMemoryException",
      "ClassNotFoundException", "ArithmeticException",  "IndexOutOfBoundsException",
  };
  for (int i = 0; i < builtin::kCount; ++i) cls(kBuiltins[i], /*is_exception=*/true);
}

ClassBuilder& ProgramBuilder::cls(std::string_view name, bool is_exception) {
  SOD_CHECK(prog_.find_class(name) == kNoId, "duplicate class: " + std::string(name));
  Class c;
  c.id = static_cast<uint16_t>(prog_.classes.size());
  c.name = std::string(name);
  c.is_exception = is_exception;
  prog_.classes.push_back(c);
  class_builders_.push_back(std::unique_ptr<ClassBuilder>(new ClassBuilder(this, c.id)));
  return *class_builders_.back();
}

uint16_t ProgramBuilder::native(std::string_view name, std::vector<Ty> params, Ty ret) {
  uint16_t existing = prog_.find_native(name);
  if (existing != kNoId) return existing;
  prog_.natives.push_back(NativeDecl{std::string(name), std::move(params), ret});
  return static_cast<uint16_t>(prog_.natives.size() - 1);
}

Program ProgramBuilder::build() {
  SOD_CHECK(!built_, "build() called twice");
  built_ = true;
  for (auto& mb : method_builders_) mb->finish();
  for (const auto& f : name_fixups_) {
    uint16_t id = f.is_field ? prog_.find_field(f.name) : prog_.find_method(f.name);
    SOD_CHECK(id != kNoId,
              std::string(f.is_field ? "unknown field: " : "unknown method: ") + f.name);
    Method& m = prog_.method_mut(f.method_id);
    std::memcpy(m.code.data() + f.patch_at, &id, 2);
  }
  verify_program(prog_);
  return std::move(prog_);
}

}  // namespace sod::bc
