#include "bytecode/verifier.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "support/panic.h"

namespace sod::bc {

namespace {

using TypeStack = std::vector<Ty>;

class Verifier {
 public:
  Verifier(const Program& p, const Method& m, bool enforce_msp)
      : p_(p), m_(m), enforce_msp_(enforce_msp) {}

  StackMap run() {
    scan_boundaries();
    check_static_targets();
    dataflow();
    if (enforce_msp_) check_stmt_starts();
    return std::move(map_);
  }

 private:
  [[noreturn]] void fail(const std::string& msg, uint32_t pc = UINT32_MAX) {
    std::string where = "verifier: method '" + m_.name + "'";
    if (pc != UINT32_MAX) where += " pc " + std::to_string(pc);
    throw Error(where + ": " + msg);
  }

  void scan_boundaries() {
    if (m_.code.empty()) fail("empty code");
    map_.depth.assign(m_.code.size(), -1);
    uint32_t pc = 0;
    while (pc < m_.code.size()) {
      if (m_.code[pc] >= static_cast<uint8_t>(Op::kOpCount_)) fail("bad opcode", pc);
      map_.boundaries.push_back(pc);
      pc += instr_size(m_.code, pc);
    }
    if (pc != m_.code.size()) fail("instruction overruns code end");
  }

  bool boundary(uint32_t pc) const {
    return std::binary_search(map_.boundaries.begin(), map_.boundaries.end(), pc);
  }

  void check_target(uint32_t tgt, uint32_t pc) {
    if (!boundary(tgt)) fail("branch target " + std::to_string(tgt) + " not at boundary", pc);
  }

  void check_static_targets() {
    for (uint32_t pc : map_.boundaries) {
      Instr in = decode(m_.code, pc);
      if (is_branch(in.op)) check_target(in.arg, pc);
      if (in.op == Op::LOOKUPSWITCH) {
        SwitchInfo si = decode_switch(m_.code, pc);
        check_target(si.default_target, pc);
        for (auto& [k, t] : si.pairs) check_target(t, pc);
      }
    }
    for (const auto& e : m_.ex_table) {
      if (!boundary(e.from_pc) || (e.to_pc != m_.code.size() && !boundary(e.to_pc)) ||
          !boundary(e.handler_pc))
        fail("exception entry range/handler not at boundaries");
      if (e.ex_class != kAnyClass && (e.ex_class >= p_.classes.size() ||
                                      !p_.cls(e.ex_class).is_exception))
        fail("exception entry catches non-exception class");
    }
    for (uint32_t s : m_.stmt_starts)
      if (!boundary(s)) fail("stmt start " + std::to_string(s) + " not at boundary");
    if (!std::is_sorted(m_.stmt_starts.begin(), m_.stmt_starts.end()))
      fail("stmt starts not sorted");
  }

  Ty local_type(uint16_t slot, uint32_t pc) {
    if (slot >= m_.num_locals) fail("local slot out of range", pc);
    for (const auto& v : m_.var_table)
      if (v.slot == slot) return v.type;
    fail("local slot " + std::to_string(slot) + " not in variable table", pc);
  }

  // --- dataflow ---

  void merge(uint32_t pc, const TypeStack& st) {
    auto& slot = states_[pc];
    if (!slot.has_value()) {
      slot = st;
      work_.push_back(pc);
      return;
    }
    if (*slot != st) fail("inconsistent stack at merge", pc);
  }

  Ty pop(TypeStack& st, uint32_t pc) {
    if (st.empty()) fail("pop from empty stack", pc);
    Ty t = st.back();
    st.pop_back();
    return t;
  }

  void pop_t(TypeStack& st, Ty want, uint32_t pc) {
    Ty got = pop(st, pc);
    if (got != want)
      fail(std::string("expected ") + ty_name(want) + " got " + ty_name(got), pc);
  }

  void dataflow() {
    states_.assign(m_.code.size(), std::nullopt);
    merge(0, {});
    // Handler entries execute with just the exception ref on the stack.
    for (const auto& e : m_.ex_table) merge(e.handler_pc, {Ty::Ref});

    while (!work_.empty()) {
      uint32_t pc = work_.front();
      work_.pop_front();
      TypeStack st = *states_[pc];
      step(pc, st);
    }

    uint16_t mx = 0;
    for (uint32_t pc : map_.boundaries) {
      if (states_[pc].has_value()) {
        map_.depth[pc] = static_cast<int32_t>(states_[pc]->size());
        mx = std::max<uint16_t>(mx, static_cast<uint16_t>(states_[pc]->size()));
      }
    }
    // Depths recorded at boundaries underestimate transient depth inside an
    // instruction (e.g. operands pushed for INVOKE).  Account for the
    // biggest transient bump.
    map_.max_stack = static_cast<uint16_t>(mx + max_transient_);
  }

  void flow_to(uint32_t pc, const TypeStack& st) {
    if (pc == m_.code.size()) fail("control flows off end of code");
    merge(pc, st);
  }

  void step(uint32_t pc, TypeStack st) {
    Instr in = decode(m_.code, pc);
    uint32_t next = pc + in.size;
    switch (in.op) {
      case Op::NOP: break;

      case Op::ICONST: st.push_back(Ty::I64); break;
      case Op::DCONST: st.push_back(Ty::F64); break;
      case Op::ACONST_NULL: st.push_back(Ty::Ref); break;
      case Op::LDC_STR:
        if (in.arg >= p_.strings.size()) fail("bad string index", pc);
        st.push_back(Ty::Ref);
        break;

      case Op::ILOAD:
        if (local_type(static_cast<uint16_t>(in.arg), pc) != Ty::I64) fail("iload of non-i64", pc);
        st.push_back(Ty::I64);
        break;
      case Op::DLOAD:
        if (local_type(static_cast<uint16_t>(in.arg), pc) != Ty::F64) fail("dload of non-f64", pc);
        st.push_back(Ty::F64);
        break;
      case Op::ALOAD:
        if (local_type(static_cast<uint16_t>(in.arg), pc) != Ty::Ref) fail("aload of non-ref", pc);
        st.push_back(Ty::Ref);
        break;
      case Op::ISTORE:
        pop_t(st, Ty::I64, pc);
        if (local_type(static_cast<uint16_t>(in.arg), pc) != Ty::I64) fail("istore to non-i64", pc);
        break;
      case Op::DSTORE:
        pop_t(st, Ty::F64, pc);
        if (local_type(static_cast<uint16_t>(in.arg), pc) != Ty::F64) fail("dstore to non-f64", pc);
        break;
      case Op::ASTORE:
        pop_t(st, Ty::Ref, pc);
        if (local_type(static_cast<uint16_t>(in.arg), pc) != Ty::Ref) fail("astore to non-ref", pc);
        break;

      case Op::POP: pop(st, pc); break;
      case Op::DUP: {
        if (st.empty()) fail("dup on empty stack", pc);
        st.push_back(st.back());
        break;
      }
      case Op::SWAP: {
        if (st.size() < 2) fail("swap needs two values", pc);
        std::swap(st[st.size() - 1], st[st.size() - 2]);
        break;
      }

      case Op::IADD: case Op::ISUB: case Op::IMUL: case Op::IDIV: case Op::IREM:
      case Op::ISHL: case Op::ISHR: case Op::IAND: case Op::IOR: case Op::IXOR:
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::I64, pc);
        st.push_back(Ty::I64);
        break;
      case Op::INEG:
        pop_t(st, Ty::I64, pc);
        st.push_back(Ty::I64);
        break;
      case Op::DADD: case Op::DSUB: case Op::DMUL: case Op::DDIV:
        pop_t(st, Ty::F64, pc);
        pop_t(st, Ty::F64, pc);
        st.push_back(Ty::F64);
        break;
      case Op::DNEG:
        pop_t(st, Ty::F64, pc);
        st.push_back(Ty::F64);
        break;
      case Op::I2D:
        pop_t(st, Ty::I64, pc);
        st.push_back(Ty::F64);
        break;
      case Op::D2I:
        pop_t(st, Ty::F64, pc);
        st.push_back(Ty::I64);
        break;
      case Op::DCMP:
        pop_t(st, Ty::F64, pc);
        pop_t(st, Ty::F64, pc);
        st.push_back(Ty::I64);
        break;

      case Op::GOTO:
        flow_to(in.arg, st);
        return;
      case Op::IFEQ: case Op::IFNE: case Op::IFLT: case Op::IFLE: case Op::IFGT: case Op::IFGE:
        pop_t(st, Ty::I64, pc);
        flow_to(in.arg, st);
        break;
      case Op::IF_ICMPEQ: case Op::IF_ICMPNE: case Op::IF_ICMPLT:
      case Op::IF_ICMPLE: case Op::IF_ICMPGT: case Op::IF_ICMPGE:
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::I64, pc);
        flow_to(in.arg, st);
        break;
      case Op::IFNULL: case Op::IFNONNULL:
        pop_t(st, Ty::Ref, pc);
        flow_to(in.arg, st);
        break;
      case Op::LOOKUPSWITCH: {
        pop_t(st, Ty::I64, pc);
        SwitchInfo si = decode_switch(m_.code, pc);
        flow_to(si.default_target, st);
        for (auto& [k, t] : si.pairs) flow_to(t, st);
        return;
      }

      case Op::GETFIELD: {
        const Field& f = field_at(in.arg, pc, /*want_static=*/false);
        pop_t(st, Ty::Ref, pc);
        st.push_back(f.type);
        break;
      }
      case Op::PUTFIELD: {
        const Field& f = field_at(in.arg, pc, false);
        pop_t(st, f.type, pc);
        pop_t(st, Ty::Ref, pc);
        break;
      }
      case Op::GETSTATIC: {
        const Field& f = field_at(in.arg, pc, true);
        st.push_back(f.type);
        break;
      }
      case Op::PUTSTATIC: {
        const Field& f = field_at(in.arg, pc, true);
        pop_t(st, f.type, pc);
        break;
      }

      case Op::NEW:
        if (in.arg >= p_.classes.size()) fail("bad class id", pc);
        st.push_back(Ty::Ref);
        break;
      case Op::NEWARRAY: {
        Ty et = static_cast<Ty>(in.arg);
        if (et != Ty::I64 && et != Ty::F64 && et != Ty::Ref) fail("bad array elem type", pc);
        pop_t(st, Ty::I64, pc);
        st.push_back(Ty::Ref);
        break;
      }
      case Op::IALOAD:
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::Ref, pc);
        st.push_back(Ty::I64);
        break;
      case Op::IASTORE:
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::Ref, pc);
        break;
      case Op::DALOAD:
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::Ref, pc);
        st.push_back(Ty::F64);
        break;
      case Op::DASTORE:
        pop_t(st, Ty::F64, pc);
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::Ref, pc);
        break;
      case Op::AALOAD:
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::Ref, pc);
        st.push_back(Ty::Ref);
        break;
      case Op::AASTORE:
        pop_t(st, Ty::Ref, pc);
        pop_t(st, Ty::I64, pc);
        pop_t(st, Ty::Ref, pc);
        break;
      case Op::ARRAYLEN:
        pop_t(st, Ty::Ref, pc);
        st.push_back(Ty::I64);
        break;

      case Op::INVOKE: {
        if (in.arg >= p_.methods.size()) fail("bad method id", pc);
        const Method& callee = p_.method(in.arg);
        max_transient_ = std::max<uint16_t>(
            max_transient_, static_cast<uint16_t>(callee.params.size()));
        for (auto it = callee.params.rbegin(); it != callee.params.rend(); ++it)
          pop_t(st, *it, pc);
        if (callee.ret != Ty::Void) st.push_back(callee.ret);
        break;
      }
      case Op::INVOKENATIVE: {
        if (in.arg >= p_.natives.size()) fail("bad native id", pc);
        const NativeDecl& n = p_.natives[in.arg];
        max_transient_ =
            std::max<uint16_t>(max_transient_, static_cast<uint16_t>(n.params.size()));
        for (auto it = n.params.rbegin(); it != n.params.rend(); ++it) pop_t(st, *it, pc);
        if (n.ret != Ty::Void) st.push_back(n.ret);
        break;
      }

      case Op::RETURN:
        if (m_.ret != Ty::Void) fail("return in non-void method", pc);
        return;
      case Op::IRETURN:
        if (m_.ret != Ty::I64) fail("ireturn type mismatch", pc);
        pop_t(st, Ty::I64, pc);
        return;
      case Op::DRETURN:
        if (m_.ret != Ty::F64) fail("dreturn type mismatch", pc);
        pop_t(st, Ty::F64, pc);
        return;
      case Op::ARETURN:
        if (m_.ret != Ty::Ref) fail("areturn type mismatch", pc);
        pop_t(st, Ty::Ref, pc);
        return;

      case Op::THROW:
        pop_t(st, Ty::Ref, pc);
        return;

      case Op::kOpCount_: fail("bad opcode", pc);
    }
    flow_to(next, st);
  }

  const Field& field_at(uint32_t id, uint32_t pc, bool want_static) {
    if (id >= p_.fields.size()) fail("bad field id", pc);
    const Field& f = p_.field(static_cast<uint16_t>(id));
    if (f.is_static != want_static) fail("static/instance field mismatch: " + f.name, pc);
    return f;
  }

  void check_stmt_starts() {
    for (uint32_t s : m_.stmt_starts) {
      if (states_[s].has_value() && !states_[s]->empty())
        fail("statement start has non-empty operand stack (MSP invariant)", s);
    }
  }

  const Program& p_;
  const Method& m_;
  bool enforce_msp_;
  StackMap map_;
  std::vector<std::optional<TypeStack>> states_;
  std::deque<uint32_t> work_;
  uint16_t max_transient_ = 1;
};

}  // namespace

StackMap verify_method(const Program& p, const Method& m, bool enforce_msp) {
  return Verifier(p, m, enforce_msp).run();
}

void verify_program(Program& p) {
  for (auto& m : p.methods) {
    if (m.code.empty()) continue;  // declared but never built (builtin exception classes)
    StackMap sm = verify_method(p, m);
    m.max_stack = sm.max_stack;
  }
}

}  // namespace sod::bc
