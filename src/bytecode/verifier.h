// Bytecode verifier.
//
// Runs a worklist dataflow over the typed operand stack, checking that
// every instruction's operands match, branch targets land on instruction
// boundaries, locals are accessed with the declared types, and every path
// terminates.  It computes max_stack and — crucially for SOD — validates
// the migration-safe-point invariant: each pc in Method::stmt_starts must
// have an empty operand stack on every path reaching it.
//
// The resulting StackMap (operand-stack depth per pc) is also consumed by
// the preprocessor when it flattens statements and plans handler
// injection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bytecode/program.h"

namespace sod::bc {

struct StackMap {
  /// Operand stack depth at each instruction boundary; -1 if the pc is not
  /// an instruction boundary or is unreachable.
  std::vector<int32_t> depth;
  /// Sorted instruction-boundary pcs.
  std::vector<uint32_t> boundaries;
  uint16_t max_stack = 0;

  bool is_boundary(uint32_t pc) const {
    return pc < depth.size() && depth[pc] >= 0 &&
           std::binary_search(boundaries.begin(), boundaries.end(), pc);
  }
};

/// Verify one method; throws sod::Error with a diagnostic on invalid code.
/// `enforce_msp` controls the empty-stack-at-statement-start check; the
/// preprocessor disables it when analysing not-yet-flattened input.
StackMap verify_method(const Program& p, const Method& m, bool enforce_msp = true);

/// Verify all methods and fill in Method::max_stack.
void verify_program(Program& p);

}  // namespace sod::bc
