// Code image of a SODEE application: classes, methods, fields, string pool
// and native-function names.  A Program is immutable shared *code*; runtime
// state (heap, statics, threads) lives in svm::VM instances that load
// classes from a Program — mirroring how the paper's worker JVMs load
// transferred class files.
//
// Methods carry the metadata the migration machinery relies on:
//   - var_table:    the local-variable table exposed through the tool
//                   interface (JVMTI's GetLocalVariableTable equivalent)
//   - stmt_starts:  statement-start pcs.  After preprocessing these are the
//                   migration-safe points (MSPs): the operand stack is
//                   provably empty at each of them.
//   - ex_table:     try/catch ranges (used both by guest code and by the
//                   injected restoration / object-fault handlers)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bytecode/ops.h"
#include "bytecode/types.h"

namespace sod::bc {

/// Catch-all marker in ExEntry::ex_class.
inline constexpr uint16_t kAnyClass = 0xFFFF;
/// "No such id" marker.
inline constexpr uint16_t kNoId = 0xFFFF;

/// Built-in exception classes; ProgramBuilder registers these first so the
/// ids are stable across every program.
namespace builtin {
inline constexpr uint16_t kNullPointer = 0;    ///< java.lang.NullPointerException
inline constexpr uint16_t kInvalidState = 1;   ///< the restoration trigger
inline constexpr uint16_t kOutOfMemory = 2;    ///< for exception-driven offload
inline constexpr uint16_t kClassNotFound = 3;  ///< for exception-driven offload
inline constexpr uint16_t kArithmetic = 4;
inline constexpr uint16_t kIndexOutOfBounds = 5;
inline constexpr uint16_t kCount = 6;
}  // namespace builtin

struct LocalVar {
  std::string name;
  Ty type = Ty::I64;
  uint16_t slot = 0;
};

struct ExEntry {
  uint32_t from_pc = 0;    ///< inclusive
  uint32_t to_pc = 0;      ///< exclusive
  uint32_t handler_pc = 0;
  uint16_t ex_class = kAnyClass;
};

struct Method {
  uint16_t id = kNoId;
  uint16_t owner = kNoId;  ///< owning class id
  std::string name;        ///< qualified "Class.method"
  std::vector<Ty> params;  ///< parameter types (locals 0..k-1)
  Ty ret = Ty::Void;
  uint16_t num_locals = 0;
  uint16_t max_stack = 0;  ///< computed by the verifier
  std::vector<uint8_t> code;
  std::vector<LocalVar> var_table;
  std::vector<ExEntry> ex_table;
  std::vector<uint32_t> stmt_starts;  ///< sorted; MSPs after preprocessing

  /// Largest statement start <= pc (statement containing pc).
  uint32_t stmt_at_or_before(uint32_t pc) const;
  /// True if pc is a registered statement start / migration-safe point.
  bool is_stmt_start(uint32_t pc) const;
};

struct Field {
  uint16_t id = kNoId;
  uint16_t owner = kNoId;
  std::string name;  ///< qualified "Class.field"
  Ty type = Ty::I64;
  bool is_static = false;
  uint16_t slot = 0;  ///< instance-slot or static-slot index within owner
};

struct Class {
  uint16_t id = kNoId;
  std::string name;
  std::vector<uint16_t> method_ids;
  std::vector<uint16_t> field_ids;
  uint16_t num_inst_slots = 0;
  uint16_t num_static_slots = 0;
  bool is_exception = false;  ///< throwable
};

/// Declared signature of a native (host) function; natives run inline in
/// the caller's frame — the SODEE equivalents of JNI / helper runtime calls.
struct NativeDecl {
  std::string name;
  std::vector<Ty> params;
  Ty ret = Ty::Void;
};

/// One decoded instruction (for analysis and rewriting passes).
struct Instr {
  Op op = Op::NOP;
  uint32_t pc = 0;
  uint32_t size = 1;
  int64_t imm_i = 0;   ///< ICONST immediate
  double imm_d = 0;    ///< DCONST immediate
  uint32_t arg = 0;    ///< u8/u16 operand or branch target
};

/// Decoded LOOKUPSWITCH payload.
struct SwitchInfo {
  uint32_t default_target = 0;
  std::vector<std::pair<int64_t, uint32_t>> pairs;
};

Instr decode(std::span<const uint8_t> code, uint32_t pc);
SwitchInfo decode_switch(std::span<const uint8_t> code, uint32_t pc);

class Program {
 public:
  std::vector<Class> classes;
  std::vector<Method> methods;
  std::vector<Field> fields;
  std::vector<std::string> strings;     ///< LDC_STR pool
  std::vector<NativeDecl> natives;      ///< INVOKENATIVE pool

  const Class& cls(uint16_t id) const;
  const Method& method(uint16_t id) const;
  const Field& field(uint16_t id) const;
  Method& method_mut(uint16_t id);

  uint16_t find_class(std::string_view name) const;    ///< kNoId if absent
  uint16_t find_method(std::string_view name) const;   ///< qualified name
  uint16_t find_field(std::string_view name) const;    ///< qualified name
  uint16_t find_native(std::string_view name) const;

  uint16_t intern_string(std::string_view s);

  /// Serialized "class file" image of one class (class metadata + its
  /// fields + its methods with code).  Its byte size is what class
  /// transfer costs in the experiments (cf. Fig. 5 class-file sizes and
  /// the Table VII class-transfer column).
  std::vector<uint8_t> class_image(uint16_t class_id) const;

  /// Total image size of all classes (whole-program code size).
  size_t total_image_size() const;

  /// Serialize / reconstruct the entire program (used when shipping code
  /// to a freshly spawned worker).
  std::vector<uint8_t> serialize() const;
  static Program deserialize(std::span<const uint8_t> bytes);
};

}  // namespace sod::bc
