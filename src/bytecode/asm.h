// Textual assembler for SODEE bytecode — the inverse of the disassembler.
//
// Grammar (one construct per line, '#' comments, blank lines ignored):
//
//   class Point
//   field Point.x i64
//   field Main.count i64 static
//
//   method Main.sum (n:i64) -> i64
//   local i i64
//   local s i64
//   .stmt
//     iconst 1
//     istore i
//   L_head:
//   .stmt
//     iload i
//     iload n
//     if_icmpgt L_done
//   ...
//   catch L_handler from L_a to L_b class ArithmeticException
//   end
//
// Labels are `name:` definitions and referenced by name in branch
// operands; `.stmt` marks the next instruction as a statement start (MSP
// candidate); field/method operands use qualified names; `ldc_str` takes a
// quoted string.  The assembler produces a verified Program, so
// round-tripping disassembler output structure through it is covered by
// tests.
#pragma once

#include <string_view>

#include "bytecode/program.h"

namespace sod::bc {

/// Assemble a whole program from source text; throws sod::Error with a
/// line-numbered diagnostic on malformed input.
Program assemble(std::string_view source);

}  // namespace sod::bc
