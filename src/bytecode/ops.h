// Instruction set of the SODEE stack machine.
//
// Encoding: one opcode byte followed by a fixed-width operand (little
// endian), except LOOKUPSWITCH which is variable length:
//   LOOKUPSWITCH  u16 npairs, u32 default_target, npairs x (i64 key, u32 target)
// Branch targets are absolute bytecode indices (the preprocessor remaps
// them when it rewrites code).
#pragma once

#include <cstdint>
#include <span>

#include "support/panic.h"

namespace sod::bc {

enum class Op : uint8_t {
  NOP = 0,

  // Constants
  ICONST,       // i64 imm
  DCONST,       // f64 imm
  ACONST_NULL,  //
  LDC_STR,      // u16 string-pool index -> pushes ref to interned string

  // Locals
  ILOAD,   // u16 slot
  DLOAD,   // u16 slot
  ALOAD,   // u16 slot
  ISTORE,  // u16 slot
  DSTORE,  // u16 slot
  ASTORE,  // u16 slot

  // Operand stack
  POP,
  DUP,
  SWAP,

  // Integer arithmetic (i64)
  IADD,
  ISUB,
  IMUL,
  IDIV,  // throws ArithmeticException on /0
  IREM,
  INEG,
  ISHL,
  ISHR,
  IAND,
  IOR,
  IXOR,

  // Float arithmetic (f64)
  DADD,
  DSUB,
  DMUL,
  DDIV,
  DNEG,

  // Conversions / comparison
  I2D,
  D2I,
  DCMP,  // pushes -1/0/1 as i64

  // Control flow (u32 absolute target)
  GOTO,
  IFEQ,
  IFNE,
  IFLT,
  IFLE,
  IFGT,
  IFGE,
  IF_ICMPEQ,
  IF_ICMPNE,
  IF_ICMPLT,
  IF_ICMPLE,
  IF_ICMPGT,
  IF_ICMPGE,
  IFNULL,
  IFNONNULL,
  LOOKUPSWITCH,  // variable length, see header comment

  // Fields (u16 field id)
  GETFIELD,   // pops ref, pushes value; null -> NullPointerException
  PUTFIELD,   // pops value, ref
  GETSTATIC,  // pushes value
  PUTSTATIC,  // pops value

  // Objects and arrays
  NEW,       // u16 class id -> pushes ref
  NEWARRAY,  // u8 element Ty; pops length -> pushes ref
  IALOAD,
  IASTORE,
  DALOAD,
  DASTORE,
  AALOAD,
  AASTORE,
  ARRAYLEN,

  // Calls (static dispatch; instance methods pass `this` as first param)
  INVOKE,        // u16 method id
  INVOKENATIVE,  // u16 native id (runs inline; no guest frame pushed)
  RETURN,
  IRETURN,
  DRETURN,
  ARETURN,

  // Exceptions
  THROW,  // pops ref to exception object

  kOpCount_,
};

inline constexpr int kNumOps = static_cast<int>(Op::kOpCount_);

/// Operand layout classes.
enum class OperKind : uint8_t {
  None,
  I64,     // 8-byte immediate
  F64,     // 8-byte immediate
  U8,      // 1 byte
  U16,     // 2 bytes
  Target,  // u32 absolute branch target
  Switch,  // variable: u16 npairs, u32 default, pairs
};

struct OpInfo {
  const char* name;
  OperKind operands;
};

const OpInfo& op_info(Op op);

/// Total encoded size (opcode + operands) of the instruction at `pc`.
uint32_t instr_size(std::span<const uint8_t> code, uint32_t pc);

/// True if `op` unconditionally leaves the instruction (no fallthrough).
bool is_terminator(Op op);

/// True for conditional/unconditional branches with a single Target operand.
bool is_branch(Op op);

}  // namespace sod::bc
