#include "bytecode/ops.h"

#include <cstring>

namespace sod::bc {

namespace {

constexpr OpInfo kTable[] = {
    {"nop", OperKind::None},

    {"iconst", OperKind::I64},
    {"dconst", OperKind::F64},
    {"aconst_null", OperKind::None},
    {"ldc_str", OperKind::U16},

    {"iload", OperKind::U16},
    {"dload", OperKind::U16},
    {"aload", OperKind::U16},
    {"istore", OperKind::U16},
    {"dstore", OperKind::U16},
    {"astore", OperKind::U16},

    {"pop", OperKind::None},
    {"dup", OperKind::None},
    {"swap", OperKind::None},

    {"iadd", OperKind::None},
    {"isub", OperKind::None},
    {"imul", OperKind::None},
    {"idiv", OperKind::None},
    {"irem", OperKind::None},
    {"ineg", OperKind::None},
    {"ishl", OperKind::None},
    {"ishr", OperKind::None},
    {"iand", OperKind::None},
    {"ior", OperKind::None},
    {"ixor", OperKind::None},

    {"dadd", OperKind::None},
    {"dsub", OperKind::None},
    {"dmul", OperKind::None},
    {"ddiv", OperKind::None},
    {"dneg", OperKind::None},

    {"i2d", OperKind::None},
    {"d2i", OperKind::None},
    {"dcmp", OperKind::None},

    {"goto", OperKind::Target},
    {"ifeq", OperKind::Target},
    {"ifne", OperKind::Target},
    {"iflt", OperKind::Target},
    {"ifle", OperKind::Target},
    {"ifgt", OperKind::Target},
    {"ifge", OperKind::Target},
    {"if_icmpeq", OperKind::Target},
    {"if_icmpne", OperKind::Target},
    {"if_icmplt", OperKind::Target},
    {"if_icmple", OperKind::Target},
    {"if_icmpgt", OperKind::Target},
    {"if_icmpge", OperKind::Target},
    {"ifnull", OperKind::Target},
    {"ifnonnull", OperKind::Target},
    {"lookupswitch", OperKind::Switch},

    {"getfield", OperKind::U16},
    {"putfield", OperKind::U16},
    {"getstatic", OperKind::U16},
    {"putstatic", OperKind::U16},

    {"new", OperKind::U16},
    {"newarray", OperKind::U8},
    {"iaload", OperKind::None},
    {"iastore", OperKind::None},
    {"daload", OperKind::None},
    {"dastore", OperKind::None},
    {"aaload", OperKind::None},
    {"aastore", OperKind::None},
    {"arraylen", OperKind::None},

    {"invoke", OperKind::U16},
    {"invokenative", OperKind::U16},
    {"return", OperKind::None},
    {"ireturn", OperKind::None},
    {"dreturn", OperKind::None},
    {"areturn", OperKind::None},

    {"throw", OperKind::None},
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) == kNumOps, "op table out of sync");

}  // namespace

const OpInfo& op_info(Op op) {
  auto idx = static_cast<size_t>(op);
  SOD_CHECK(idx < static_cast<size_t>(kNumOps), "bad opcode");
  return kTable[idx];
}

uint32_t instr_size(std::span<const uint8_t> code, uint32_t pc) {
  SOD_CHECK(pc < code.size(), "pc out of range");
  Op op = static_cast<Op>(code[pc]);
  switch (op_info(op).operands) {
    case OperKind::None: return 1;
    case OperKind::U8: return 2;
    case OperKind::U16: return 3;
    case OperKind::Target: return 5;
    case OperKind::I64:
    case OperKind::F64: return 9;
    case OperKind::Switch: {
      SOD_CHECK(pc + 3 <= code.size(), "truncated lookupswitch");
      uint16_t npairs;
      std::memcpy(&npairs, code.data() + pc + 1, 2);
      return 1 + 2 + 4 + static_cast<uint32_t>(npairs) * 12;
    }
  }
  SOD_UNREACHABLE("bad operand kind");
}

bool is_terminator(Op op) {
  switch (op) {
    case Op::GOTO:
    case Op::LOOKUPSWITCH:
    case Op::RETURN:
    case Op::IRETURN:
    case Op::DRETURN:
    case Op::ARETURN:
    case Op::THROW: return true;
    default: return false;
  }
}

bool is_branch(Op op) {
  switch (op) {
    case Op::GOTO:
    case Op::IFEQ:
    case Op::IFNE:
    case Op::IFLT:
    case Op::IFLE:
    case Op::IFGT:
    case Op::IFGE:
    case Op::IF_ICMPEQ:
    case Op::IF_ICMPNE:
    case Op::IF_ICMPLT:
    case Op::IF_ICMPLE:
    case Op::IF_ICMPGT:
    case Op::IF_ICMPGE:
    case Op::IFNULL:
    case Op::IFNONNULL: return true;
    default: return false;
  }
}

}  // namespace sod::bc
