#include "bytecode/disasm.h"

#include <cstdio>

namespace sod::bc {

namespace {
std::string num(int64_t v) { return std::to_string(v); }
}  // namespace

std::string disasm_instr(const Program& p, const Method& m, uint32_t pc) {
  Instr in = decode(m.code, pc);
  const OpInfo& info = op_info(in.op);
  std::string out = num(pc) + ": " + info.name;
  // Appends piecewise rather than via `"lit" + std::string` temporaries
  // (which also trips gcc 12's -Wrestrict false positive, PR 105651).
  switch (info.operands) {
    case OperKind::None: break;
    case OperKind::I64: out += ' '; out += num(in.imm_i); break;
    case OperKind::F64: {
      char buf[32];
      std::snprintf(buf, sizeof buf, " %g", in.imm_d);
      out += buf;
      break;
    }
    case OperKind::U8: out += ' '; out += num(in.arg); break;
    case OperKind::U16:
      out += ' ';
      out += num(in.arg);
      switch (in.op) {
        case Op::GETFIELD: case Op::PUTFIELD: case Op::GETSTATIC: case Op::PUTSTATIC:
          if (in.arg < p.fields.size()) {
            out += " ;";
            out += p.field(static_cast<uint16_t>(in.arg)).name;
          }
          break;
        case Op::INVOKE:
          if (in.arg < p.methods.size()) {
            out += " ;";
            out += p.method(static_cast<uint16_t>(in.arg)).name;
          }
          break;
        case Op::INVOKENATIVE:
          if (in.arg < p.natives.size()) {
            out += " ;";
            out += p.natives[in.arg].name;
          }
          break;
        case Op::NEW:
          if (in.arg < p.classes.size()) {
            out += " ;";
            out += p.cls(static_cast<uint16_t>(in.arg)).name;
          }
          break;
        case Op::LDC_STR:
          if (in.arg < p.strings.size()) {
            out += " ;\"";
            out += p.strings[in.arg];
            out += '"';
          }
          break;
        default: break;
      }
      break;
    case OperKind::Target: out += " -> "; out += num(in.arg); break;
    case OperKind::Switch: {
      SwitchInfo si = decode_switch(m.code, pc);
      out += " default -> ";
      out += num(si.default_target);
      for (auto& [k, t] : si.pairs) {
        out += ", ";
        out += num(k);
        out += " -> ";
        out += num(t);
      }
      break;
    }
  }
  return out;
}

std::string disasm_method(const Program& p, const Method& m) {
  std::string out = "method " + m.name + "(";
  for (size_t i = 0; i < m.params.size(); ++i) {
    if (i) out += ", ";
    out += ty_name(m.params[i]);
  }
  out += std::string(") -> ") + ty_name(m.ret);
  out += "  locals=" + num(m.num_locals) + " max_stack=" + num(m.max_stack) +
         " code=" + num(static_cast<int64_t>(m.code.size())) + "B\n";
  uint32_t pc = 0;
  while (pc < m.code.size()) {
    std::string line = disasm_instr(p, m, pc);
    if (m.is_stmt_start(pc)) out += "  * " + line + "\n";
    else out += "    " + line + "\n";
    pc += instr_size(m.code, pc);
  }
  if (!m.ex_table.empty()) {
    out += "  exception table (from, to, handler, class):\n";
    for (const auto& e : m.ex_table) {
      out += "    [" + num(e.from_pc) + ", " + num(e.to_pc) + ") -> " + num(e.handler_pc) + "  " +
             (e.ex_class == kAnyClass ? "any" : p.cls(e.ex_class).name) + "\n";
    }
  }
  return out;
}

std::string disasm_program(const Program& p) {
  std::string out;
  for (const auto& c : p.classes) {
    out += "class " + c.name + " (inst_slots=" + num(c.num_inst_slots) +
           ", static_slots=" + num(c.num_static_slots) + ")\n";
    for (uint16_t mid : c.method_ids) {
      const Method& m = p.method(mid);
      if (m.code.empty()) continue;
      out += disasm_method(p, m);
    }
  }
  return out;
}

}  // namespace sod::bc
