// Human-readable listings of methods and programs (javap equivalent).
#pragma once

#include <string>

#include "bytecode/program.h"

namespace sod::bc {

/// One instruction at `pc`, e.g. "17: invoke Point.getX".
std::string disasm_instr(const Program& p, const Method& m, uint32_t pc);

/// Full method listing: signature, locals, code, exception table, MSPs.
std::string disasm_method(const Program& p, const Method& m);

/// Every class and method in the program.
std::string disasm_program(const Program& p);

}  // namespace sod::bc
