#include "bytecode/program.h"

#include <algorithm>
#include <cstring>

#include "support/bytes.h"

namespace sod::bc {

uint32_t Method::stmt_at_or_before(uint32_t pc) const {
  SOD_CHECK(!stmt_starts.empty(), "method has no statement table: " + name);
  auto it = std::upper_bound(stmt_starts.begin(), stmt_starts.end(), pc);
  SOD_CHECK(it != stmt_starts.begin(), "pc before first statement in " + name);
  return *(it - 1);
}

bool Method::is_stmt_start(uint32_t pc) const {
  return std::binary_search(stmt_starts.begin(), stmt_starts.end(), pc);
}

Instr decode(std::span<const uint8_t> code, uint32_t pc) {
  Instr in;
  in.pc = pc;
  in.op = static_cast<Op>(code[pc]);
  in.size = instr_size(code, pc);
  switch (op_info(in.op).operands) {
    case OperKind::None: break;
    case OperKind::U8: in.arg = code[pc + 1]; break;
    case OperKind::U16: {
      uint16_t v;
      std::memcpy(&v, code.data() + pc + 1, 2);
      in.arg = v;
      break;
    }
    case OperKind::Target: {
      uint32_t v;
      std::memcpy(&v, code.data() + pc + 1, 4);
      in.arg = v;
      break;
    }
    case OperKind::I64: std::memcpy(&in.imm_i, code.data() + pc + 1, 8); break;
    case OperKind::F64: std::memcpy(&in.imm_d, code.data() + pc + 1, 8); break;
    case OperKind::Switch: break;  // use decode_switch
  }
  return in;
}

SwitchInfo decode_switch(std::span<const uint8_t> code, uint32_t pc) {
  SOD_CHECK(static_cast<Op>(code[pc]) == Op::LOOKUPSWITCH, "not a lookupswitch");
  SwitchInfo si;
  uint16_t npairs;
  std::memcpy(&npairs, code.data() + pc + 1, 2);
  std::memcpy(&si.default_target, code.data() + pc + 3, 4);
  si.pairs.reserve(npairs);
  uint32_t at = pc + 7;
  for (uint16_t k = 0; k < npairs; ++k) {
    int64_t key;
    uint32_t tgt;
    std::memcpy(&key, code.data() + at, 8);
    std::memcpy(&tgt, code.data() + at + 8, 4);
    si.pairs.emplace_back(key, tgt);
    at += 12;
  }
  return si;
}

const Class& Program::cls(uint16_t id) const {
  SOD_CHECK(id < classes.size(), "bad class id");
  return classes[id];
}
const Method& Program::method(uint16_t id) const {
  SOD_CHECK(id < methods.size(), "bad method id");
  return methods[id];
}
Method& Program::method_mut(uint16_t id) {
  SOD_CHECK(id < methods.size(), "bad method id");
  return methods[id];
}
const Field& Program::field(uint16_t id) const {
  SOD_CHECK(id < fields.size(), "bad field id");
  return fields[id];
}

namespace {
template <typename Vec>
uint16_t find_by_name(const Vec& v, std::string_view name) {
  for (const auto& e : v)
    if (e.name == name) return e.id;
  return kNoId;
}
}  // namespace

uint16_t Program::find_class(std::string_view name) const { return find_by_name(classes, name); }
uint16_t Program::find_method(std::string_view name) const { return find_by_name(methods, name); }
uint16_t Program::find_field(std::string_view name) const { return find_by_name(fields, name); }

uint16_t Program::find_native(std::string_view name) const {
  for (size_t i = 0; i < natives.size(); ++i)
    if (natives[i].name == name) return static_cast<uint16_t>(i);
  return kNoId;
}

uint16_t Program::intern_string(std::string_view s) {
  for (size_t i = 0; i < strings.size(); ++i)
    if (strings[i] == s) return static_cast<uint16_t>(i);
  strings.emplace_back(s);
  return static_cast<uint16_t>(strings.size() - 1);
}

namespace {

void write_method(ByteWriter& w, const Method& m) {
  w.u16(m.id);
  w.u16(m.owner);
  w.str(m.name);
  w.u16(static_cast<uint16_t>(m.params.size()));
  for (Ty t : m.params) w.u8(static_cast<uint8_t>(t));
  w.u8(static_cast<uint8_t>(m.ret));
  w.u16(m.num_locals);
  w.u16(m.max_stack);
  w.u32(static_cast<uint32_t>(m.code.size()));
  w.raw(m.code);
  w.u16(static_cast<uint16_t>(m.var_table.size()));
  for (const auto& v : m.var_table) {
    w.str(v.name);
    w.u8(static_cast<uint8_t>(v.type));
    w.u16(v.slot);
  }
  w.u16(static_cast<uint16_t>(m.ex_table.size()));
  for (const auto& e : m.ex_table) {
    w.u32(e.from_pc);
    w.u32(e.to_pc);
    w.u32(e.handler_pc);
    w.u16(e.ex_class);
  }
  w.u32(static_cast<uint32_t>(m.stmt_starts.size()));
  for (uint32_t s : m.stmt_starts) w.u32(s);
}

Method read_method(ByteReader& r) {
  Method m;
  m.id = r.u16();
  m.owner = r.u16();
  m.name = r.str();
  uint16_t np = r.u16();
  m.params.resize(np);
  for (auto& t : m.params) t = static_cast<Ty>(r.u8());
  m.ret = static_cast<Ty>(r.u8());
  m.num_locals = r.u16();
  m.max_stack = r.u16();
  uint32_t csz = r.u32();
  m.code.resize(csz);
  for (uint32_t i = 0; i < csz; ++i) m.code[i] = r.u8();
  uint16_t nv = r.u16();
  m.var_table.resize(nv);
  for (auto& v : m.var_table) {
    v.name = r.str();
    v.type = static_cast<Ty>(r.u8());
    v.slot = r.u16();
  }
  uint16_t ne = r.u16();
  m.ex_table.resize(ne);
  for (auto& e : m.ex_table) {
    e.from_pc = r.u32();
    e.to_pc = r.u32();
    e.handler_pc = r.u32();
    e.ex_class = r.u16();
  }
  uint32_t ns = r.u32();
  m.stmt_starts.resize(ns);
  for (auto& s : m.stmt_starts) s = r.u32();
  return m;
}

void write_field(ByteWriter& w, const Field& f) {
  w.u16(f.id);
  w.u16(f.owner);
  w.str(f.name);
  w.u8(static_cast<uint8_t>(f.type));
  w.u8(f.is_static ? 1 : 0);
  w.u16(f.slot);
}

Field read_field(ByteReader& r) {
  Field f;
  f.id = r.u16();
  f.owner = r.u16();
  f.name = r.str();
  f.type = static_cast<Ty>(r.u8());
  f.is_static = r.u8() != 0;
  f.slot = r.u16();
  return f;
}

void write_class_meta(ByteWriter& w, const Class& c) {
  w.u16(c.id);
  w.str(c.name);
  w.u16(c.num_inst_slots);
  w.u16(c.num_static_slots);
  w.u8(c.is_exception ? 1 : 0);
}

Class read_class_meta(ByteReader& r) {
  Class c;
  c.id = r.u16();
  c.name = r.str();
  c.num_inst_slots = r.u16();
  c.num_static_slots = r.u16();
  c.is_exception = r.u8() != 0;
  return c;
}

}  // namespace

std::vector<uint8_t> Program::class_image(uint16_t class_id) const {
  const Class& c = cls(class_id);
  ByteWriter w;
  write_class_meta(w, c);
  w.u16(static_cast<uint16_t>(c.field_ids.size()));
  for (uint16_t fid : c.field_ids) write_field(w, field(fid));
  w.u16(static_cast<uint16_t>(c.method_ids.size()));
  for (uint16_t mid : c.method_ids) write_method(w, method(mid));
  return w.take();
}

size_t Program::total_image_size() const {
  size_t sz = 0;
  for (const auto& c : classes) sz += class_image(c.id).size();
  return sz;
}

std::vector<uint8_t> Program::serialize() const {
  ByteWriter w;
  w.u32(static_cast<uint32_t>(classes.size()));
  for (const auto& c : classes) {
    write_class_meta(w, c);
    w.u16(static_cast<uint16_t>(c.field_ids.size()));
    for (uint16_t fid : c.field_ids) w.u16(fid);
    w.u16(static_cast<uint16_t>(c.method_ids.size()));
    for (uint16_t mid : c.method_ids) w.u16(mid);
  }
  w.u32(static_cast<uint32_t>(methods.size()));
  for (const auto& m : methods) write_method(w, m);
  w.u32(static_cast<uint32_t>(fields.size()));
  for (const auto& f : fields) write_field(w, f);
  w.u32(static_cast<uint32_t>(strings.size()));
  for (const auto& s : strings) w.str(s);
  w.u32(static_cast<uint32_t>(natives.size()));
  for (const auto& n : natives) {
    w.str(n.name);
    w.u16(static_cast<uint16_t>(n.params.size()));
    for (Ty t : n.params) w.u8(static_cast<uint8_t>(t));
    w.u8(static_cast<uint8_t>(n.ret));
  }
  return w.take();
}

Program Program::deserialize(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  Program p;
  uint32_t nc = r.u32();
  p.classes.resize(nc);
  for (auto& c : p.classes) {
    c = read_class_meta(r);
    uint16_t nf = r.u16();
    c.field_ids.resize(nf);
    for (auto& fid : c.field_ids) fid = r.u16();
    uint16_t nm = r.u16();
    c.method_ids.resize(nm);
    for (auto& mid : c.method_ids) mid = r.u16();
  }
  uint32_t nm = r.u32();
  p.methods.resize(nm);
  for (auto& m : p.methods) m = read_method(r);
  uint32_t nf = r.u32();
  p.fields.resize(nf);
  for (auto& f : p.fields) f = read_field(r);
  uint32_t ns = r.u32();
  p.strings.resize(ns);
  for (auto& s : p.strings) s = r.str();
  uint32_t nn = r.u32();
  p.natives.resize(nn);
  for (auto& n : p.natives) {
    n.name = r.str();
    uint16_t np = r.u16();
    n.params.resize(np);
    for (auto& t : n.params) t = static_cast<Ty>(r.u8());
    n.ret = static_cast<Ty>(r.u8());
  }
  SOD_CHECK(r.done(), "trailing bytes in program image");
  return p;
}

}  // namespace sod::bc
