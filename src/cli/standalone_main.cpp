// Stub main linked into each standalone bench/example binary: the binary
// contains exactly one scenario translation unit, so run the sole
// registered scenario with flags parsed the same way sodctl does.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/scenario.h"

int main(int argc, char** argv) {
  auto all = sod::cli::ScenarioRegistry::instance().all();
  if (all.size() != 1) {
    std::fprintf(stderr,
                 "standalone scenario binary expects exactly 1 registered scenario, got %zu\n",
                 all.size());
    return 2;
  }
  const sod::cli::Scenario& s = *all[0];
  sod::cli::ScenarioOptions opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  bool is_bench = s.kind == sod::cli::ScenarioKind::Bench;
  std::string default_json = is_bench ? "BENCH_" + s.name + ".json" : "";
  if (!sod::cli::parse_scenario_flags(args, opt, default_json)) return 2;
  if (!is_bench && !opt.json_path.empty()) {
    std::fprintf(stderr, "%s: --json is only supported by bench scenarios\n", s.name.c_str());
    return 2;
  }
  return s.run(opt);
}
