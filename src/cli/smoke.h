// Shared smoke-scale policies for bench scenarios.
#pragma once

#include <vector>

#include "apps/apps.h"
#include "cli/scenario.h"

namespace sod::cli {

/// Table I app roster under the scenario's smoke policy: all four apps
/// normally, first app only for CI smoke runs.
inline std::vector<apps::AppSpec> table1_apps_for(const ScenarioOptions& opt) {
  std::vector<apps::AppSpec> specs = apps::table1_apps();
  if (opt.smoke) specs.resize(1);
  return specs;
}

}  // namespace sod::cli
