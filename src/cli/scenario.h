// Scenario registry — every app, bench, and example registers itself here
// at static-init time, so `sodctl` (and the per-scenario standalone
// binaries) drive them through one API.  Future workloads are added by
// registering a struct, not by writing a new main().
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bytecode/program.h"

namespace sod {
class Table;
}

namespace sod::cli {

enum class ScenarioKind { App, Bench, Example };

const char* kind_name(ScenarioKind k);

/// Options shared by every scenario entry point.  Scenarios are free to
/// ignore fields that do not apply to them.
struct ScenarioOptions {
  /// Tiny iteration counts / problem sizes for CI smoke runs.
  bool smoke = false;
  /// Node count for scenarios that spin up a cluster (0 = scenario default).
  int nodes = 0;
  /// Placement policy for cluster scenarios ("" = scenario default).
  /// Validated spellings: round-robin, least-loaded, locality-aware,
  /// learned (see cluster::parse_policy).
  std::string policy;
  /// Worker churn rate for elastic scenarios: the fraction of dispatch
  /// rounds that trigger a membership event (a join, with a matching drain
  /// a few rounds later).  Negative = scenario default.
  double churn = -1.0;
  /// Inject a worker failure after this many cluster-wide segment
  /// completions (scenarios built on the cluster Scheduler); the
  /// scheduler re-dispatches the lost worker's outstanding segments.
  /// Negative = no injected failure.
  int fail_at = -1;
  /// Attach the queue-depth autoscaler (scenarios with a standby pool):
  /// standby workers join above the high-water queue depth and drain
  /// below the low-water mark.
  bool autoscale = false;
  /// Guest instructions between checkpoints of an executing segment for
  /// scenarios driving the cluster Scheduler (0 = checkpointing off).  A
  /// checkpointed segment resumes partial work after a worker loss
  /// instead of re-executing from its original capture.
  int64_t checkpoint_every = 0;
  /// Launch speculative backup attempts for straggling segments from the
  /// newest checkpoint — first completion wins, the loser is cancelled.
  /// Requires --checkpoint-every.
  bool speculate = false;
  /// Run cluster scenarios on the wall-clock engine (cluster::WallClockEngine)
  /// with this many pool threads instead of the virtual-time scheduler.
  /// 0 = virtual time unless --wallclock, which uses one thread per worker.
  int threads = 0;
  /// Wall-clock execution with the default thread count (one per worker).
  /// Implied by --threads N.
  bool wallclock = false;
  /// Home shard count for cluster scenarios (1..64; 0 = scenario default
  /// of 1).  Splits home-side state behind per-shard stripe locks in the
  /// wall-clock engine; virtual-time results are bit-identical at any
  /// value.
  int home_shards = 0;
  /// Session count for trace-driven load scenarios (0 = scenario default).
  int sessions = 0;
  /// Arrival process for trace-driven load scenarios ("" = scenario
  /// default).  Validated spellings: poisson, onoff, soak (see
  /// cluster::parse_arrival).
  std::string arrival;
  /// Trace seed for load scenarios (negative = scenario default).
  long long seed = -1;
  /// When non-empty, bench scenarios write their result table here as
  /// schema-stable JSON (see Table::json).
  std::string json_path;
  /// Unparsed passthrough arguments (e.g. google-benchmark flags).
  std::vector<std::string> extra;
};

struct Scenario {
  std::string name;
  ScenarioKind kind = ScenarioKind::Bench;
  std::string description;
  std::function<int(const ScenarioOptions&)> run;
  /// Optional whole-program view for `sodctl analyze`: builds the
  /// scenario's guest bytecode program (the analyze driver preprocesses
  /// it).  Scenarios without guest bytecode leave it empty.
  std::function<bc::Program()> program;
  /// Reachability root for the analyzer ("" = every defined method).
  std::string entry;
};

class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Registers a scenario; panics on duplicate names.
  void add(Scenario s);

  /// Looks up a scenario by exact name; nullptr when absent.
  const Scenario* find(const std::string& name) const;

  /// All scenarios sorted by (kind, name).
  std::vector<const Scenario*> all() const;

  /// For "unknown scenario" diagnostics: names closest to `name`.
  std::vector<std::string> suggestions(const std::string& name) const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Registers `s` with the global registry from a static initializer.
struct ScenarioRegistrar {
  ScenarioRegistrar(std::string name, ScenarioKind kind, std::string description,
                    std::function<int(const ScenarioOptions&)> run);
  ScenarioRegistrar(std::string name, ScenarioKind kind, std::string description,
                    std::function<int(const ScenarioOptions&)> run,
                    std::function<bc::Program()> program, std::string entry);
};

#define SOD_CLI_CAT2(a, b) a##b
#define SOD_CLI_CAT(a, b) SOD_CLI_CAT2(a, b)

/// File-scope registration: SOD_REGISTER_SCENARIO("table2",
/// ScenarioKind::Bench, "Table II ...", run_fn);
#define SOD_REGISTER_SCENARIO(name, kind, desc, fn)                             \
  [[maybe_unused]] static const ::sod::cli::ScenarioRegistrar SOD_CLI_CAT(      \
      sod_scenario_reg_, __LINE__)(name, kind, desc, fn)

/// Registration with a program factory + analyzer entry, so `sodctl
/// analyze <name>` can run the whole-program analyzer over the scenario's
/// guest bytecode: SOD_REGISTER_SCENARIO_PROGRAM("fib", ..., run_fib,
/// prog_fn, "Fib.main");
#define SOD_REGISTER_SCENARIO_PROGRAM(name, kind, desc, fn, prog, entry)        \
  [[maybe_unused]] static const ::sod::cli::ScenarioRegistrar SOD_CLI_CAT(      \
      sod_scenario_reg_, __LINE__)(name, kind, desc, fn, prog, entry)

/// Writes `t` to opt.json_path when set (bench scenarios call this after
/// printing).  Returns false (with a message on stderr) if the file could
/// not be written.
bool maybe_write_json(const ScenarioOptions& opt, const std::string& bench_name,
                      const Table& t);

/// Shared flag parsing for sodctl and the standalone scenario binaries.
/// Understands --smoke, --nodes N, --policy P, --churn X, --fail-at N,
/// --autoscale, --checkpoint-every N, --speculate, --threads N,
/// --wallclock, --home-shards N, --sessions N, --arrival A, --seed S,
/// --json [path] and collects the rest into opt.extra.
/// Returns false on malformed flags (one diagnostic per error on stderr,
/// quoting the offending token once with the accepted range).
/// `default_json_name` fills json_path when --json is given without a
/// value ("" disables the bare form).
bool parse_scenario_flags(const std::vector<std::string>& args, ScenarioOptions& opt,
                          const std::string& default_json_name);

/// `sodctl analyze` entry point (src/cli/analyze.cpp): runs the
/// whole-program analyzer over one scenario's program (or --all) and
/// prints the per-class report.  Exit 0 = admitted, 3 = rejected, 2 =
/// usage error.
int cmd_analyze(const std::vector<std::string>& args);

}  // namespace sod::cli
