// sodctl — one driver binary for every app, bench, and example scenario.
//
//   sodctl list                      show registered scenarios
//   sodctl run <name> [flags]        run any scenario
//   sodctl bench <name> [flags]      run a bench scenario (default JSON name
//                                    BENCH_<name>.json with bare --json)
//
// Flags: --smoke (tiny CI config), --nodes N, --policy P, --json [path];
// anything else is passed through to the scenario (e.g. google-benchmark
// flags).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli/scenario.h"

namespace {

using sod::cli::Scenario;
using sod::cli::ScenarioKind;
using sod::cli::ScenarioOptions;
using sod::cli::ScenarioRegistry;

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: sodctl <command> [args]\n"
               "\n"
               "commands:\n"
               "  list                      list registered scenarios\n"
               "  run <name> [flags]        run a scenario by name\n"
               "  bench <name> [flags]      run a bench scenario (BENCH_<name>.json\n"
               "                            with bare --json)\n"
               "  analyze <name> [--json [path]]\n"
               "                            whole-program static analysis of a scenario's\n"
               "                            guest bytecode: per-class callees, statics\n"
               "                            effects, ref escape, MSP state bounds; exit 3\n"
               "                            if the admission gate would reject it\n"
               "  analyze --all [--json]    analyze every scenario with a guest program\n"
               "  help                      show this message\n"
               "\n"
               "flags:\n"
               "  --smoke                   tiny problem sizes for CI smoke runs\n"
               "  --nodes N                 node count for cluster scenarios\n"
               "  --policy P                placement policy for cluster scenarios\n"
               "                            (round-robin | least-loaded | locality-aware |\n"
               "                            learned)\n"
               "  --churn X                 worker churn rate 0..1 for elastic scenarios\n"
               "  --fail-at N               fail a worker after N segment completions\n"
               "                            (the scheduler re-dispatches its segments)\n"
               "  --autoscale               join/drain standby workers from queue depth\n"
               "  --checkpoint-every N      checkpoint executing segments every N guest\n"
               "                            instructions (failures resume from the newest\n"
               "                            checkpoint instead of restarting)\n"
               "  --speculate               race straggler segments against a backup copy\n"
               "                            from the newest checkpoint (first completion\n"
               "                            wins); requires --checkpoint-every\n"
               "  --wallclock               run cluster rounds on the wall-clock thread\n"
               "                            pool (one thread per worker) instead of the\n"
               "                            virtual-time scheduler; results are identical\n"
               "  --threads N               wall-clock pool size (implies --wallclock)\n"
               "  --home-shards N           home shard count 1..64 for cluster scenarios\n"
               "                            (lock-striped home state in the wall-clock\n"
               "                            engine; virtual results are identical)\n"
               "  --sessions N              session count for trace-driven load scenarios\n"
               "  --arrival A               arrival process for load traces\n"
               "                            (poisson | onoff | soak)\n"
               "  --seed S                  trace seed for load scenarios\n"
               "  --json [path]             write the result table as JSON\n");
  return to == stdout ? 0 : 2;
}

int cmd_list() {
  auto all = ScenarioRegistry::instance().all();
  std::printf("%-8s  %-22s  %s\n", "KIND", "NAME", "DESCRIPTION");
  for (const Scenario* s : all)
    std::printf("%-8s  %-22s  %s\n", sod::cli::kind_name(s->kind), s->name.c_str(),
                s->description.c_str());
  std::printf("\n%zu scenarios registered\n", all.size());
  return 0;
}

int unknown_scenario(const std::string& name) {
  std::fprintf(stderr, "sodctl: unknown scenario '%s'\n", name.c_str());
  auto near = ScenarioRegistry::instance().suggestions(name);
  if (!near.empty()) {
    std::fprintf(stderr, "did you mean:");
    for (const std::string& n : near) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "?\n");
  }
  std::fprintf(stderr, "run `sodctl list` for all scenarios\n");
  return 2;
}

int cmd_run(const std::string& name, const std::vector<std::string>& rest,
            bool bench_only) {
  const Scenario* s = ScenarioRegistry::instance().find(name);
  if (s == nullptr) return unknown_scenario(name);
  if (bench_only && s->kind != ScenarioKind::Bench) {
    std::fprintf(stderr, "sodctl: '%s' is a %s scenario, not a bench (use `sodctl run`)\n",
                 name.c_str(), sod::cli::kind_name(s->kind));
    return 2;
  }
  ScenarioOptions opt;
  std::string default_json = bench_only ? "BENCH_" + name + ".json" : "";
  if (!sod::cli::parse_scenario_flags(rest, opt, default_json)) return 2;
  if (s->kind != ScenarioKind::Bench && !opt.json_path.empty()) {
    std::fprintf(stderr, "sodctl: --json is only supported by bench scenarios\n");
    return 2;
  }
  return s->run(opt);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(stderr);
  const std::string& cmd = args[0];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(stdout);
  if (cmd == "list") return cmd_list();
  if (cmd == "run" || cmd == "bench") {
    if (args.size() < 2) {
      std::fprintf(stderr, "sodctl: %s requires a scenario name\n", cmd.c_str());
      return usage(stderr);
    }
    return cmd_run(args[1], {args.begin() + 2, args.end()}, cmd == "bench");
  }
  if (cmd == "analyze") return sod::cli::cmd_analyze({args.begin() + 1, args.end()});
  std::fprintf(stderr, "sodctl: unknown command '%s'\n", cmd.c_str());
  return usage(stderr);
}
