// App scenarios — the Table I guest apps plus the Section IV workloads,
// registered so `sodctl run fib --nodes 4 --policy least-loaded` exercises
// a real load-aware cluster dispatch without a dedicated main().
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "cluster/wallclock.h"
#include "prep/prep.h"
#include "sod/migrate.h"

namespace {

using sod::apps::AppSpec;
using sod::bc::Value;
using sod::cli::ScenarioKind;
using sod::cli::ScenarioOptions;
using sod::mig::SodNode;

/// Shared cluster driver for the Table I apps: runs one app at bench scale
/// on a `opt.nodes`-node cluster (default 2).  Each time the recursion
/// re-reaches the trigger depth, the top of the stack is split into
/// single-frame segments that are placed by the selected policy and kept
/// in flight on different workers concurrently (Fig. 1(c)); home then
/// finishes the residual computation and the result is checked against the
/// app's expected value.  With --wallclock / --threads N the rounds run on
/// the genuinely concurrent WallClockEngine pool instead of the
/// virtual-time scheduler; results are bit-identical either way.
int run_table1_app(const AppSpec& spec, const ScenarioOptions& opt) {
  int nodes = opt.nodes > 0 ? opt.nodes : 2;
  auto kind = sod::cluster::parse_policy(opt.policy.empty() ? "round-robin" : opt.policy);
  if (!kind) {
    std::fprintf(stderr, "%s: unknown placement policy '%s'\n", spec.name.c_str(),
                 opt.policy.c_str());
    return 2;
  }
  sod::bc::Program p = spec.build();
  sod::prep::preprocess_program(p);

  sod::cluster::Cluster c(p);
  c.add_uniform_workers(nodes - 1);
  if (opt.home_shards > 0) c.set_home_shards(opt.home_shards);
  auto policy = sod::cluster::make_policy(*kind);
  SodNode& home = c.home();

  std::unique_ptr<sod::cluster::WallClockEngine> engine;
  if (opt.wallclock) {
    sod::cluster::WallClockOptions wopt;
    wopt.threads = opt.threads;
    engine = std::make_unique<sod::cluster::WallClockEngine>(c, *policy, wopt);
  }

  uint16_t trigger = p.find_method(spec.trigger_method);
  int depth = std::min(spec.paper_depth, 4);
  int tid = home.vm().spawn(p.find_method(spec.entry), spec.bench_args);

  // One concurrent dispatch round per pause until every worker has been
  // offered a segment; a round takes at most depth-1 frames (the residual
  // bottom frame stays home) and keeps the recursion alive for the next
  // round while workers remain.
  int segments = 0;
  int rounds = 0;
  int remaining = c.size();
  while (remaining > 0 && sod::mig::pause_at_depth(home, tid, trigger, depth)) {
    int k = std::min(remaining, depth - 1);
    if (remaining > k) k = std::max(1, depth - 2);
    auto specs = sod::cluster::split_top_frames(k);
    auto out = engine ? engine->run(tid, specs)
                      : sod::cluster::dispatch_segments(c, tid, specs, *policy);
    home.ti().set_debug_enabled(false);
    for (size_t s = 0; s < out.placements.size(); ++s) {
      const auto& pl = out.placements[s];
      if (engine)
        std::printf("round %d: segment [%d,%d) -> %s, done %.3f ms virtual / %.3f ms wall\n",
                    rounds, pl.spec.depth_lo, pl.spec.depth_hi, pl.worker_name.c_str(),
                    pl.completed_at.ms(), engine->last_completed_wall_ms()[s]);
      else
        std::printf("round %d: segment [%d,%d) -> %s, restored %.3f ms, done %.3f ms\n",
                    rounds, pl.spec.depth_lo, pl.spec.depth_hi, pl.worker_name.c_str(),
                    pl.restored_at.ms(), pl.completed_at.ms());
    }
    if (out.faults > 0) std::printf("round %d: %d object faults\n", rounds, out.faults);
    segments += k;
    remaining -= k;
    ++rounds;
  }
  home.ti().set_debug_enabled(false);
  auto rr = home.run_guest(tid);
  if (rr.reason != sod::svm::StopReason::Done) {
    std::fprintf(stderr, "%s: guest did not run to completion\n", spec.name.c_str());
    return 1;
  }
  int64_t got = home.vm().thread(tid).result.as_i64();
  std::string mode = engine ? " [wall-clock, " +
                                  std::to_string(opt.threads > 0 ? opt.threads : c.size()) +
                                  " thread(s)]"
                            : "";
  std::printf("%s(%s) = %lld over %d node(s), %d segment(s) in %d round(s) [%s]%s, %.3f ms "
              "virtual\n",
              spec.name.c_str(), std::to_string(spec.bench_args[0].as_i64()).c_str(),
              static_cast<long long>(got), nodes, segments, rounds,
              sod::cluster::policy_name(*kind), mode.c_str(), home.node().clock.now().ms());
  // FFT/TSP use INT64_MIN as "no closed-form expectation" (the tests check
  // them against host-side references instead).
  if (spec.bench_expected != INT64_MIN && got != spec.bench_expected) {
    std::fprintf(stderr, "%s: expected %lld\n", spec.name.c_str(),
                 static_cast<long long>(spec.bench_expected));
    return 1;
  }
  return 0;
}

sod::sfs::FileStore doc_store(int nfiles, size_t bytes) {
  sod::sfs::FileStore store;
  for (int i = 0; i < nfiles; ++i) {
    sod::sfs::SimFile f;
    f.name = "doc" + std::to_string(i);
    f.size = bytes;
    f.seed = 42 + static_cast<uint64_t>(i);
    f.needle = "sodneedle";
    f.needle_at = bytes / 2 + static_cast<size_t>(i);
    store.add(f);
  }
  return store;
}

int run_docsearch(const ScenarioOptions& opt) {
  int nfiles = opt.smoke ? 1 : 3;
  size_t bytes = opt.smoke ? (64 << 10) : (256 << 10);
  sod::bc::Program p = sod::apps::build_docsearch();
  sod::prep::preprocess_program(p);
  sod::sfs::FileStore store = doc_store(nfiles, bytes);
  SodNode node("n", p, {});
  sod::mig::ObjectManager om;
  om.install(node);
  sod::sfs::MountedFs mount(&store, sod::sfs::MountSpeed::local_disk());
  mount.install(node.registry());
  Value hits = node.call_guest("Search.main",
                               std::vector<Value>{Value::of_i64(nfiles)});
  std::printf("docsearch: %lld/%d needles found, %zu bytes read, %.3f ms virtual\n",
              static_cast<long long>(hits.as_i64()), nfiles, mount.bytes_read(),
              node.node().clock.now().ms());
  return hits.as_i64() == nfiles ? 0 : 1;
}

int run_photoshare(const ScenarioOptions& opt) {
  int nphotos = opt.smoke ? 2 : 5;
  sod::bc::Program p = sod::apps::build_photoshare();
  sod::prep::preprocess_program(p);
  sod::sfs::FileStore photos;
  for (int i = 0; i < nphotos; ++i) {
    sod::sfs::SimFile f;
    f.name = "IMG_" + std::to_string(i) + ".jpg";
    f.size = 100 << 10;
    f.seed = 99 + static_cast<uint64_t>(i);
    photos.add(f);
  }
  SodNode node("n", p, {});
  sod::mig::ObjectManager om;
  om.install(node);
  sod::sfs::MountedFs mount(&photos, sod::sfs::MountSpeed::local_disk());
  mount.install(node.registry());
  int64_t count =
      node.vm().call("Photo.count_photos", std::vector<Value>{Value::of_i64(10)}).as_i64();
  int64_t size =
      node.vm().call("Photo.photo_size", std::vector<Value>{Value::of_i64(1)}).as_i64();
  std::printf("photoshare: %lld photos listed, photo #1 is %lld bytes\n",
              static_cast<long long>(count), static_cast<long long>(size));
  return count == nphotos && size == (100 << 10) ? 0 : 1;
}

int run_fib(const ScenarioOptions& opt) { return run_table1_app(sod::apps::fib_app(), opt); }
int run_nqueens(const ScenarioOptions& opt) {
  return run_table1_app(sod::apps::nqueens_app(), opt);
}
int run_fft(const ScenarioOptions& opt) { return run_table1_app(sod::apps::fft_app(), opt); }
int run_tsp(const ScenarioOptions& opt) { return run_table1_app(sod::apps::tsp_app(), opt); }

sod::bc::Program prog_fib() { return sod::apps::fib_app().build(); }
sod::bc::Program prog_nqueens() { return sod::apps::nqueens_app().build(); }
sod::bc::Program prog_fft() { return sod::apps::fft_app().build(); }
sod::bc::Program prog_tsp() { return sod::apps::tsp_app().build(); }
sod::bc::Program prog_docsearch() { return sod::apps::build_docsearch(); }
sod::bc::Program prog_photoshare() { return sod::apps::build_photoshare(); }

SOD_REGISTER_SCENARIO_PROGRAM(
    "fib", ScenarioKind::App,
    "recursive Fibonacci with policy-placed concurrent segment offloads", run_fib, prog_fib,
    "Fib.main");
SOD_REGISTER_SCENARIO_PROGRAM(
    "nqueens", ScenarioKind::App,
    "n-queens backtracking with policy-placed concurrent segment offloads", run_nqueens,
    prog_nqueens, "NQ.main");
SOD_REGISTER_SCENARIO_PROGRAM(
    "fft", ScenarioKind::App,
    "2-D FFT (large statics) with policy-placed concurrent segment offloads", run_fft,
    prog_fft, "FFT.main");
SOD_REGISTER_SCENARIO_PROGRAM(
    "tsp", ScenarioKind::App,
    "TSP branch-and-bound with policy-placed concurrent segment offloads", run_tsp, prog_tsp,
    "TSP.main");
SOD_REGISTER_SCENARIO_PROGRAM("docsearch", ScenarioKind::App,
                              "document search over the simulated filesystem", run_docsearch,
                              prog_docsearch, "Search.main");
// Photoshare has two host-driven entry points (count_photos, photo_size),
// so the analyzer roots reachability at every defined method.
SOD_REGISTER_SCENARIO_PROGRAM("photoshare", ScenarioKind::App,
                              "photo-share listing and fetch over the simulated device fs",
                              run_photoshare, prog_photoshare, "");

}  // namespace
