#include "cli/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cluster/loadgen.h"
#include "cluster/placement.h"
#include "support/panic.h"
#include "support/table.h"

namespace sod::cli {

const char* kind_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::App: return "app";
    case ScenarioKind::Bench: return "bench";
    case ScenarioKind::Example: return "example";
  }
  SOD_UNREACHABLE("bad ScenarioKind");
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry reg;
  return reg;
}

void ScenarioRegistry::add(Scenario s) {
  SOD_CHECK(!s.name.empty(), "scenario name empty");
  SOD_CHECK(static_cast<bool>(s.run), "scenario '" + s.name + "' has no run fn");
  SOD_CHECK(find(s.name) == nullptr, "duplicate scenario '" + s.name + "'");
  scenarios_.push_back(std::move(s));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const Scenario& s : scenarios_)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    if (a->kind != b->kind) return static_cast<int>(a->kind) < static_cast<int>(b->kind);
    return a->name < b->name;
  });
  return out;
}

namespace {

size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::vector<std::string> ScenarioRegistry::suggestions(const std::string& name) const {
  std::vector<std::pair<size_t, std::string>> scored;
  for (const Scenario& s : scenarios_) {
    size_t d = edit_distance(name, s.name);
    if (d <= std::max<size_t>(2, name.size() / 3) || s.name.find(name) != std::string::npos)
      scored.emplace_back(d, s.name);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> out;
  for (size_t i = 0; i < scored.size() && i < 3; ++i) out.push_back(scored[i].second);
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(std::string name, ScenarioKind kind,
                                     std::string description,
                                     std::function<int(const ScenarioOptions&)> run) {
  ScenarioRegistry::instance().add(
      Scenario{std::move(name), kind, std::move(description), std::move(run), {}, {}});
}

ScenarioRegistrar::ScenarioRegistrar(std::string name, ScenarioKind kind,
                                     std::string description,
                                     std::function<int(const ScenarioOptions&)> run,
                                     std::function<bc::Program()> program,
                                     std::string entry) {
  ScenarioRegistry::instance().add(Scenario{std::move(name), kind, std::move(description),
                                            std::move(run), std::move(program),
                                            std::move(entry)});
}

bool maybe_write_json(const ScenarioOptions& opt, const std::string& bench_name,
                      const Table& t) {
  if (opt.json_path.empty()) return true;
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "sodctl: cannot write %s\n", opt.json_path.c_str());
    return false;
  }
  std::string body = t.json(bench_name);
  size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (n != body.size()) {
    std::fprintf(stderr, "sodctl: short write to %s\n", opt.json_path.c_str());
    return false;
  }
  std::printf("wrote %s\n", opt.json_path.c_str());
  return true;
}

namespace {

/// One diagnostic per malformed numeric flag: the offending token quoted
/// exactly once, followed by the accepted range (regression: the elastic
/// scenario's --churn error used to repeat the raw argv token).
void bad_value(const char* flag, const std::string& token, const char* range) {
  std::fprintf(stderr, "sodctl: bad %s value '%s' (expected %s)\n", flag, token.c_str(),
               range);
}

/// Parses args[i+1] as an integer in [lo, hi] into `out`; advances `i`.
bool parse_int_flag(const std::vector<std::string>& args, size_t& i, const char* flag,
                    long lo, long hi, const char* range, int& out) {
  if (i + 1 >= args.size()) {
    std::fprintf(stderr, "sodctl: %s requires a value\n", flag);
    return false;
  }
  char* end = nullptr;
  long v = std::strtol(args[++i].c_str(), &end, 10);
  if (end == args[i].c_str() || *end != '\0' || v < lo || v > hi) {
    bad_value(flag, args[i], range);
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

}  // namespace

bool parse_scenario_flags(const std::vector<std::string>& args, ScenarioOptions& opt,
                          const std::string& default_json_name) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--smoke") {
      opt.smoke = true;
    } else if (a == "--nodes") {
      if (!parse_int_flag(args, i, "--nodes", 1, 1024, "an integer in 1..1024", opt.nodes))
        return false;
    } else if (a == "--fail-at") {
      if (!parse_int_flag(args, i, "--fail-at", 0, 1000000,
                          "a segment-completion count in 0..1000000", opt.fail_at))
        return false;
    } else if (a == "--autoscale") {
      opt.autoscale = true;
    } else if (a == "--checkpoint-every") {
      int every = 0;
      if (!parse_int_flag(args, i, "--checkpoint-every", 1, 1000000000,
                          "an instruction count in 1..1000000000", every))
        return false;
      opt.checkpoint_every = every;
    } else if (a == "--speculate") {
      opt.speculate = true;
    } else if (a == "--threads") {
      if (!parse_int_flag(args, i, "--threads", 1, 256, "a thread count in 1..256",
                          opt.threads))
        return false;
      opt.wallclock = true;
    } else if (a == "--wallclock") {
      opt.wallclock = true;
    } else if (a == "--home-shards") {
      if (!parse_int_flag(args, i, "--home-shards", 1, 64, "a shard count in 1..64",
                          opt.home_shards))
        return false;
    } else if (a == "--policy") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "sodctl: --policy requires a value\n");
        return false;
      }
      opt.policy = args[++i];
      if (!cluster::parse_policy(opt.policy)) {
        std::fprintf(stderr,
                     "sodctl: unknown --policy '%s' (round-robin, least-loaded, "
                     "locality-aware, learned)\n",
                     opt.policy.c_str());
        return false;
      }
    } else if (a == "--churn") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "sodctl: --churn requires a value\n");
        return false;
      }
      char* end = nullptr;
      double v = std::strtod(args[++i].c_str(), &end);
      if (end == args[i].c_str() || *end != '\0' || !std::isfinite(v) || v < 0.0 || v > 1.0) {
        bad_value("--churn", args[i], "a rate in 0..1");
        return false;
      }
      opt.churn = v;
    } else if (a == "--sessions") {
      if (!parse_int_flag(args, i, "--sessions", 1, 1000000,
                          "a session count in 1..1000000", opt.sessions))
        return false;
    } else if (a == "--arrival") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "sodctl: --arrival requires a value\n");
        return false;
      }
      opt.arrival = args[++i];
      if (!cluster::parse_arrival(opt.arrival)) {
        std::fprintf(stderr, "sodctl: unknown --arrival '%s' (poisson, onoff, soak)\n",
                     opt.arrival.c_str());
        return false;
      }
    } else if (a == "--seed") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "sodctl: --seed requires a value\n");
        return false;
      }
      char* end = nullptr;
      long long v = std::strtoll(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0' || v < 0) {
        bad_value("--seed", args[i], "a non-negative integer");
        return false;
      }
      opt.seed = v;
    } else if (a == "--json") {
      // Accept both `--json out.json` and bare `--json` (default name).
      if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        opt.json_path = args[++i];
      } else if (!default_json_name.empty()) {
        opt.json_path = default_json_name;
      } else {
        std::fprintf(stderr, "sodctl: --json requires a path here\n");
        return false;
      }
    } else {
      opt.extra.push_back(a);
    }
  }
  if (opt.speculate && opt.checkpoint_every == 0) {
    std::fprintf(stderr,
                 "sodctl: --speculate requires --checkpoint-every N (backups launch from "
                 "the newest checkpoint)\n");
    return false;
  }
  return true;
}

}  // namespace sod::cli
