// `sodctl analyze` — run the whole-program static analyzer over a
// registered scenario's guest bytecode and print the per-class report:
// direct callees, transitive statics effects, ref escape, and the per-MSP
// captured-state bound placement uses as a migration-cost hint.
//
// This is the same analysis the cluster admission gate runs before any
// class image ships, so `analyze --all` over every registered scenario
// with zero rejections is a CI-grade lint of the whole app suite.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "support/json.h"
#include "support/panic.h"
#include "support/table.h"

namespace sod::cli {

namespace {

std::string method_names(const bc::Program& p, const std::vector<uint16_t>& ids) {
  std::string out;
  for (uint16_t id : ids) {
    if (!out.empty()) out += ' ';
    out += p.method(id).name;
  }
  return out.empty() ? "-" : out;
}

std::string field_names(const bc::Program& p, const std::vector<uint16_t>& ids) {
  std::string out;
  for (uint16_t id : ids) {
    if (!out.empty()) out += ' ';
    out += p.field(id).name;
  }
  return out.empty() ? "-" : out;
}

/// Sorted union of `add` into `into`.
void merge_ids(std::vector<uint16_t>& into, const std::vector<uint16_t>& add) {
  for (uint16_t id : add)
    if (std::find(into.begin(), into.end(), id) == into.end()) into.push_back(id);
  std::sort(into.begin(), into.end());
}

/// The per-class report table over every class that owns code or statics.
Table class_table(const bc::Program& p, const analysis::ProgramFacts& facts) {
  Table t({"class", "methods", "reachable", "callees", "statics read", "statics written",
           "statics-pure", "ref escape", "msp state slots"});
  for (const bc::Class& c : p.classes) {
    bool has_code = false;
    for (uint16_t m : c.method_ids) has_code = has_code || !p.method(m).code.empty();
    if (!has_code && c.num_static_slots == 0) continue;  // builtin exception stubs

    int defined = 0, reachable = 0;
    std::vector<uint16_t> callees, reads, writes;
    for (uint16_t m : c.method_ids) {
      if (m >= facts.methods.size()) continue;
      const analysis::MethodFacts& mf = facts.methods[m];
      defined += mf.defined ? 1 : 0;
      reachable += mf.reachable ? 1 : 0;
      merge_ids(callees, mf.callees);
      merge_ids(reads, mf.statics_read);
      merge_ids(writes, mf.statics_written);
    }
    t.row({c.name, fmt("%d", defined), fmt("%d", reachable), method_names(p, callees),
           field_names(p, reads), field_names(p, writes),
           facts.class_statics_pure(c.id) ? "yes" : "no",
           facts.class_ref_escape(c.id) ? "yes" : "no",
           fmt("%u", facts.class_msp_state_slots(c.id))});
  }
  return t;
}

/// One scenario: build + preprocess + analyze + report.  Returns 0 when
/// the program is admitted, 3 when rejected.
int analyze_one(const Scenario& s, bool json, const std::string& json_path) {
  bc::Program p;
  analysis::AdmissionReport rep;
  bool built = false;
  try {
    p = s.program();
    prep::preprocess_program(p);
    built = true;
  } catch (const Error& e) {
    // A program the preprocessor itself rejects never reaches the
    // analyzer; surface its verdict in the same diagnostic shape.
    analysis::Diagnostic d;
    d.cls = "?";
    d.method = "?";
    d.message = e.what();
    rep.admitted = false;
    rep.diagnostics.push_back(d);
  }
  if (built) {
    analysis::AnalysisOptions aopt;
    if (!s.entry.empty()) aopt.entries.push_back(s.entry);
    rep = analysis::analyze_program(p, aopt);
  }

  std::printf("== %s ==\n", s.name.c_str());
  Table t = built ? class_table(p, rep.facts) : Table({"class"});
  t.print();
  std::printf("%zu reachable method(s), %zu defined but unreachable; %s\n",
              rep.facts.reachable_methods, rep.facts.unreachable_methods,
              rep.admitted ? "ADMITTED" : "REJECTED");
  for (const analysis::Diagnostic& d : rep.diagnostics)
    std::printf("  diagnostic: %s\n", d.str().c_str());

  if (json) {
    std::string path = json_path.empty() ? "ANALYZE_" + s.name + ".json" : json_path;
    std::string body = "{\"analyze\": " + json_quote(s.name) +
                       ", \"schema_version\": 1, \"admitted\": " +
                       (rep.admitted ? "true" : "false") +
                       ", \"reachable\": " + std::to_string(rep.facts.reachable_methods) +
                       ", \"unreachable\": " + std::to_string(rep.facts.unreachable_methods) +
                       ", \"diagnostics\": [";
    for (size_t i = 0; i < rep.diagnostics.size(); ++i) {
      if (i) body += ", ";
      body += json_quote(rep.diagnostics[i].str());
    }
    body += "], \"classes\": " + t.json("analyze_" + s.name) + "}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "sodctl: cannot write %s\n", path.c_str());
      return 2;
    }
    size_t n = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    if (n != body.size()) {
      std::fprintf(stderr, "sodctl: short write to %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return rep.admitted ? 0 : 3;
}

}  // namespace

int cmd_analyze(const std::vector<std::string>& args) {
  bool all = false;
  bool json = false;
  std::string json_path;
  std::string name;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--all") {
      all = true;
    } else if (a == "--json") {
      json = true;
      if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) json_path = args[++i];
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sodctl: unknown analyze flag '%s'\n", a.c_str());
      return 2;
    } else if (name.empty()) {
      name = a;
    } else {
      std::fprintf(stderr, "sodctl: analyze takes one scenario name (got '%s' and '%s')\n",
                   name.c_str(), a.c_str());
      return 2;
    }
  }
  if (all == !name.empty()) {
    std::fprintf(stderr, "sodctl: analyze requires a scenario name or --all\n");
    return 2;
  }
  if (all && !json_path.empty()) {
    std::fprintf(stderr,
                 "sodctl: --json takes no path with --all (per-scenario "
                 "ANALYZE_<name>.json files are written)\n");
    return 2;
  }

  if (!all) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    if (s == nullptr) {
      std::fprintf(stderr, "sodctl: unknown scenario '%s' (see `sodctl list`)\n",
                   name.c_str());
      return 2;
    }
    if (!s->program) {
      std::fprintf(stderr, "sodctl: scenario '%s' has no guest program to analyze\n",
                   name.c_str());
      return 2;
    }
    return analyze_one(*s, json, json_path);
  }

  int analyzed = 0, rejected = 0;
  for (const Scenario* s : ScenarioRegistry::instance().all()) {
    if (!s->program) continue;
    if (analyzed) std::printf("\n");
    ++analyzed;
    if (analyze_one(*s, json, "") == 3) ++rejected;
  }
  std::printf("\n%d scenario program(s) analyzed, %d rejected\n", analyzed, rejected);
  return rejected > 0 ? 3 : 0;
}

}  // namespace sod::cli
