// Document search (Section IV.C): full-text search for a needle over a
// set of large files read through the simulated file system.  Locality is
// everything: local-disk reads vs NFS reads is what migration buys.
#include "apps/apps.h"
#include "sfs/sfs.h"
#include "svm/natives.h"

namespace sod::apps {

bc::Program build_docsearch() {
  bc::ProgramBuilder pb;
  svm::declare_stdlib(pb);
  sfs::declare_fs_natives(pb);

  auto& cls = pb.cls("Search");

  // search_one(idx): scan file #idx chunk by chunk; returns 1 if found.
  {
    auto& f = cls.method("search_one", {{"idx", Ty::I64}, {"needle", Ty::Ref}}, Ty::I64);
    uint16_t name = f.local("name", Ty::Ref);
    uint16_t h = f.local("h", Ty::I64);
    uint16_t chunk = f.local("chunk", Ty::Ref);
    uint16_t at = f.local("at", Ty::I64);
    bc::Label loop = f.label(), eof = f.label(), found = f.label();
    f.stmt().iload("idx").invokenative("fs.file_by_index").astore(name);
    f.stmt().aload(name).invokenative("fs.open").istore(h);
    f.bind(loop).stmt().iload(h).invokenative("fs.read_chunk").astore(chunk);
    f.stmt().aload(chunk).ifnull(eof);
    f.stmt().aload(chunk).aload("needle").iconst(0).invokenative("str.find").istore(at);
    f.stmt().iload(at).iconst(0).if_icmpge(found);
    f.stmt().go(loop);
    f.bind(found).stmt().iconst(1).iret();
    f.bind(eof).stmt().iconst(0).iret();
  }

  // run(nfiles): search every file; returns number of hits.
  {
    auto& f = cls.method("run", {{"nfiles", Ty::I64}, {"needle", Ty::Ref}}, Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t hits = f.local("hits", Ty::I64);
    bc::Label loop = f.label(), done = f.label();
    f.stmt().iconst(0).istore(i);
    f.stmt().iconst(0).istore(hits);
    f.bind(loop).stmt().iload(i).iload("nfiles").if_icmpge(done);
    f.stmt().iload(hits).iload(i).aload("needle").invoke("Search.search_one").iadd()
        .istore(hits);
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(loop);
    f.bind(done).stmt().iload(hits).iret();
  }

  // main(nfiles): needle fixed by the harness convention.
  {
    auto& m = cls.method("main", {{"nfiles", Ty::I64}}, Ty::I64);
    uint16_t needle = m.local("needle", Ty::Ref);
    uint16_t r = m.local("r", Ty::I64);
    m.stmt().ldc_str("sodneedle").astore(needle);
    m.stmt().iload("nfiles").aload(needle).invoke("Search.run").istore(r);
    m.stmt().iload(r).iret();
  }
  return pb.build();
}

}  // namespace sod::apps
