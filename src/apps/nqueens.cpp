// NQ — n-queens solved recursively with bitmask pruning
// (Table I: n=14, h=16, F<10 B).
#include "apps/apps.h"

namespace sod::apps {

namespace {

bc::Program build_nqueens() {
  bc::ProgramBuilder pb;
  emit_nqueens(pb, "");
  return pb.build();
}

}  // namespace

void emit_nqueens(bc::ProgramBuilder& pb, const std::string& prefix) {
  auto q = [&](const char* s) { return prefix + s; };
  auto& cls = pb.cls(q("NQ"));

  // solve(n, row, cols, d1, d2) -> number of completions
  auto& f = cls.method("solve",
                       {{"n", Ty::I64},
                        {"row", Ty::I64},
                        {"cols", Ty::I64},
                        {"d1", Ty::I64},
                        {"d2", Ty::I64}},
                       Ty::I64);
  uint16_t count = f.local("count", Ty::I64);
  uint16_t col = f.local("col", Ty::I64);
  uint16_t bit = f.local("bit", Ty::I64);
  uint16_t sub = f.local("sub", Ty::I64);
  bc::Label not_done = f.label(), loop = f.label(), skip = f.label(), done = f.label();
  f.stmt().iload("row").iload("n").if_icmplt(not_done);
  f.stmt().iconst(1).iret();
  f.bind(not_done);
  f.stmt().iconst(0).istore(count);
  f.stmt().iconst(0).istore(col);
  f.bind(loop).stmt().iload(col).iload("n").if_icmpge(done);
  // bit = 1 << col ; occupied if (cols | d1>>(row-?)…) — use shifted masks:
  f.stmt().iconst(1).iload(col).ishl().istore(bit);
  // if (cols & bit) or (d1 & (bit << row)) or (d2 & (bit << (n - 1 - row? ))) skip
  // Use classic formulation: d1 indexed by col+row, d2 by col-row+n-1.
  f.stmt().iload("cols").iload(bit).iand().ifne(skip);
  f.stmt().iload("d1").iconst(1).iload(col).iload("row").iadd().ishl().iand().ifne(skip);
  f.stmt().iload("d2").iconst(1).iload(col).iload("row").isub().iload("n").iadd().iconst(1).isub()
      .ishl().iand().ifne(skip);
  f.stmt()
      .iload("n")
      .iload("row").iconst(1).iadd()
      .iload("cols").iload(bit).ior()
      .iload("d1").iconst(1).iload(col).iload("row").iadd().ishl().ior()
      .iload("d2").iconst(1).iload(col).iload("row").isub().iload("n").iadd().iconst(1).isub()
          .ishl().ior()
      .invoke(q("NQ.solve"))
      .istore(sub);
  f.stmt().iload(count).iload(sub).iadd().istore(count);
  f.bind(skip).stmt().iload(col).iconst(1).iadd().istore(col);
  f.stmt().go(loop);
  f.bind(done).stmt().iload(count).iret();

  auto& m = cls.method("main", {{"n", Ty::I64}}, Ty::I64);
  uint16_t r = m.local("r", Ty::I64);
  m.stmt().iload("n").iconst(0).iconst(0).iconst(0).iconst(0).invoke(q("NQ.solve")).istore(r);
  m.stmt().iload(r).iret();
}

AppSpec nqueens_app() {
  AppSpec s;
  s.name = "NQ";
  s.build = build_nqueens;
  s.emit = emit_nqueens;
  s.entry = "NQ.main";
  s.bench_args = {Value::of_i64(8)};
  s.bench_expected = 92;
  s.paper_args = {Value::of_i64(14)};
  s.trigger_method = "NQ.solve";
  s.paper_depth = 15;  // row frames + main; paper reports h=16
  s.paper_jdk_seconds = 6.26;
  s.paper_n = 14;
  s.paper_F = "< 10";
  return s;
}

}  // namespace sod::apps
