// Fib — the deep-recursion benchmark (Table I: n=46, h=46, F<10 B).
#include "apps/apps.h"

namespace sod::apps {

namespace {

bc::Program build_fib() {
  bc::ProgramBuilder pb;
  emit_fib(pb, "");
  return pb.build();
}

int64_t fib_value(int64_t n) {
  int64_t a = 0, b = 1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

void emit_fib(bc::ProgramBuilder& pb, const std::string& prefix) {
  auto q = [&](const char* s) { return prefix + s; };
  auto& cls = pb.cls(q("Fib"));
  auto& f = cls.method("fib", {{"n", Ty::I64}}, Ty::I64);
  bc::Label rec = f.label();
  f.stmt().iload("n").iconst(2).if_icmpge(rec);
  f.stmt().iload("n").iret();
  f.bind(rec);
  uint16_t a = f.local("a", Ty::I64);
  uint16_t b = f.local("b", Ty::I64);
  f.stmt().iload("n").iconst(1).isub().invoke(q("Fib.fib")).istore(a);
  f.stmt().iload("n").iconst(2).isub().invoke(q("Fib.fib")).istore(b);
  f.stmt().iload(a).iload(b).iadd().iret();

  auto& m = cls.method("main", {{"n", Ty::I64}}, Ty::I64);
  uint16_t r = m.local("r", Ty::I64);
  m.stmt().iload("n").invoke(q("Fib.fib")).istore(r);
  m.stmt().iload(r).iret();
}

AppSpec fib_app() {
  AppSpec s;
  s.name = "Fib";
  s.build = build_fib;
  s.emit = emit_fib;
  s.entry = "Fib.main";
  s.bench_args = {Value::of_i64(24)};
  s.bench_expected = fib_value(24);
  s.paper_args = {Value::of_i64(46)};
  s.trigger_method = "Fib.fib";
  s.paper_depth = 46;
  s.paper_jdk_seconds = 12.10;
  s.paper_n = 46;
  s.paper_F = "< 10";
  return s;
}

}  // namespace sod::apps
