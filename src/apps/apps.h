// Guest applications — the paper's benchmark programs (Table I) plus the
// document-search and photo-share workloads of Sections IV.C/IV.D, written
// against the SODEE bytecode builder.
//
// Each app provides:
//   - build():     the unpreprocessed program (callers run prep on it)
//   - bench-scale entry + args + expected result (real interpreted runs,
//     used by tests and the real-time micro benches)
//   - paper-scale args + the trigger (method, depth) at which the paper's
//     migration fires, used by the virtual-time experiments; reaching the
//     trigger is cheap even at paper scale (leftmost descent)
//   - Table I characteristics (n, h, F) and the measured Sun-JDK runtime
//     from Table II used as the virtual-time calibration anchor
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bytecode/builder.h"

namespace sod::apps {

using bc::Ty;
using bc::Value;

struct AppSpec {
  std::string name;
  std::function<bc::Program()> build;
  /// Emit the app's classes into an existing builder with `prefix`
  /// prepended to every class name (and thus to every qualified method /
  /// field reference).  Emitting the same app under two prefixes yields
  /// two fully independent class sets — separate statics, separate
  /// images — which is how the multi-tenant load generator isolates
  /// tenants inside one shared program.  build() is emit with an empty
  /// prefix into a fresh builder.  Entry / trigger names in this spec are
  /// unprefixed; callers qualify them with the same prefix.
  std::function<void(bc::ProgramBuilder&, const std::string&)> emit;

  std::string entry;                ///< qualified entry method
  std::vector<Value> bench_args;    ///< scaled-down, runs in tests
  int64_t bench_expected = 0;       ///< expected entry result at bench scale

  std::vector<Value> paper_args;    ///< paper-scale args (Table I "n")
  std::string trigger_method;       ///< method whose entry triggers migration
  int paper_depth = 1;              ///< stack height h at migration (Table I)
  double paper_jdk_seconds = 0;     ///< Table II "JDK" column (calibration)
  int64_t paper_n = 0;              ///< Table I problem size
  const char* paper_F = "";         ///< Table I accumulated field size
};

AppSpec fib_app();        ///< n-th Fibonacci, recursive (n=46, h=46, F<10)
AppSpec nqueens_app();    ///< n-queens, recursive (n=14, h=16, F<10)
AppSpec fft_app();        ///< n-point 2-D FFT, >64 MB statics (n=256, h=4)
AppSpec tsp_app();        ///< travelling salesman B&B (n=12, h=4, F~2500)

/// All four Table I apps in declaration order.
std::vector<AppSpec> table1_apps();

/// Prefix-parameterized emitters behind AppSpec::emit (exposed so callers
/// can compose several apps — or several tenants' copies of one app —
/// into a single program).
void emit_fib(bc::ProgramBuilder& pb, const std::string& prefix);
void emit_nqueens(bc::ProgramBuilder& pb, const std::string& prefix);
void emit_fft(bc::ProgramBuilder& pb, const std::string& prefix);
void emit_tsp(bc::ProgramBuilder& pb, const std::string& prefix);

/// Document search over the simulated fs (Section IV.C): searches `nfiles`
/// files named "doc0".."docN" for a needle; returns hit count.
/// Entry: Search.run(nfiles) ; per-file method: Search.search_one(idx).
bc::Program build_docsearch();

/// Photo-share server (Section IV.D): Photo.find(count) lists photos on
/// the device fs; Photo.fetch(idx) returns one photo's data string.
/// Entry wrappers live in class Photo.
bc::Program build_photoshare();

}  // namespace sod::apps
