// Photo-share web server (Section IV.D): the server-side task migrates
// onto the phone to search its photo directory and fetch photo data, so
// the device never runs server software.  The "photos" are files on the
// device's simulated file system.
#include "apps/apps.h"
#include "sfs/sfs.h"

namespace sod::apps {

bc::Program build_photoshare() {
  bc::ProgramBuilder pb;
  sfs::declare_fs_natives(pb);
  pb.native("fs.file_by_index", {Ty::I64}, Ty::Ref);
  pb.native("fs.file_count", {}, Ty::I64);

  auto& cls = pb.cls("Photo");

  // find(limit): list up to `limit` photo names on the device.
  {
    auto& f = cls.method("find", {{"limit", Ty::I64}}, Ty::Ref);
    uint16_t n = f.local("n", Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t out = f.local("out", Ty::Ref);
    bc::Label loop = f.label(), done = f.label();
    f.stmt().invokenative("fs.file_count").istore(n);
    bc::Label capped = f.label();
    f.stmt().iload(n).iload("limit").if_icmple(capped);
    f.stmt().iload("limit").istore(n);
    f.bind(capped).stmt().iload(n).newarray(Ty::Ref).astore(out);
    f.stmt().iconst(0).istore(i);
    f.bind(loop).stmt().iload(i).iload(n).if_icmpge(done);
    f.stmt().aload(out).iload(i).iload(i).invokenative("fs.file_by_index").aastore();
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(loop);
    f.bind(done).stmt().aload(out).aret();
  }

  // fetch(idx): read the whole photo and return its data.
  {
    auto& f = cls.method("fetch", {{"idx", Ty::I64}}, Ty::Ref);
    uint16_t h = f.local("h", Ty::I64);
    uint16_t chunk = f.local("chunk", Ty::Ref);
    uint16_t data = f.local("data", Ty::Ref);
    bc::Label loop = f.label(), done = f.label();
    f.stmt().iload("idx").invokenative("fs.file_by_index").invokenative("fs.open").istore(h);
    f.stmt().aconst_null().astore(data);
    f.bind(loop).stmt().iload(h).invokenative("fs.read_chunk").astore(chunk);
    f.stmt().aload(chunk).ifnull(done);
    f.stmt().aload(chunk).astore(data);  // keep last chunk (photo payload)
    f.stmt().go(loop);
    f.bind(done).stmt().aload(data).aret();
  }

  // count_photos(limit): server entry — returns how many photos found.
  {
    auto& f = cls.method("count_photos", {{"limit", Ty::I64}}, Ty::I64);
    uint16_t arr = f.local("arr", Ty::Ref);
    f.stmt().iload("limit").invoke("Photo.find").astore(arr);
    f.stmt().aload(arr).arraylen().iret();
  }
  // photo_size(idx): server entry — returns byte length of a photo.
  {
    auto& f = cls.method("photo_size", {{"idx", Ty::I64}}, Ty::I64);
    uint16_t d = f.local("d", Ty::Ref);
    bc::Label nul = f.label();
    f.stmt().iload("idx").invoke("Photo.fetch").astore(d);
    f.stmt().aload(d).ifnull(nul);
    f.stmt().aload(d).arraylen().iret();
    f.bind(nul).stmt().iconst(-1).iret();
  }
  return pb.build();
}

}  // namespace sod::apps
