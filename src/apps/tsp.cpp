// TSP — branch-and-bound travelling salesman over a static distance
// matrix (Table I: n=12, h=4, F~2500 B).  The hot state (distance matrix,
// visited set, best-so-far) is object data that the migrated frame touches
// on nearly every step — the workload where eager-copy process migration
// beats SOD's on-demand faulting (Table III's one SOD loss).
#include "apps/apps.h"

namespace sod::apps {

namespace {

bc::Program build_tsp() {
  bc::ProgramBuilder pb;
  emit_tsp(pb, "");
  return pb.build();
}

}  // namespace

void emit_tsp(bc::ProgramBuilder& pb, const std::string& prefix) {
  auto q = [&](const char* s) { return prefix + s; };
  auto& cls = pb.cls(q("TSP"));
  cls.field("dist", Ty::Ref, /*is_static=*/true);     // n*n flattened i64
  cls.field("visited", Ty::Ref, /*is_static=*/true);  // n flags
  cls.field("best", Ty::I64, /*is_static=*/true);

  // init(n): deterministic distance matrix, Java int[][] style (a ref
  // array of row arrays -- each row is an object SOD must fault in).
  {
    auto& f = cls.method("init", {{"n", Ty::I64}}, Ty::Void);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t j = f.local("j", Ty::I64);
    uint16_t row = f.local("row", Ty::Ref);
    bc::Label il = f.label(), id = f.label(), jl = f.label(), jd = f.label();
    f.stmt().iload("n").newarray(Ty::Ref).putstatic(q("TSP.dist"));
    f.stmt().iload("n").newarray(Ty::I64).putstatic(q("TSP.visited"));
    f.stmt().iconst(1).iconst(60).ishl().putstatic(q("TSP.best"));
    f.stmt().iconst(0).istore(i);
    f.bind(il).stmt().iload(i).iload("n").if_icmpge(id);
    f.stmt().iload("n").newarray(Ty::I64).astore(row);
    f.stmt().iconst(0).istore(j);
    f.bind(jl).stmt().iload(j).iload("n").if_icmpge(jd);
    // row[j] = i==j ? 0 : 1 + (i*7 + j*13 + i*j) % 97
    bc::Label diag = f.label(), stored = f.label();
    f.stmt().iload(i).iload(j).if_icmpeq(diag);
    f.stmt()
        .aload(row).iload(j)
        .iconst(1)
        .iload(i).iconst(7).imul()
        .iload(j).iconst(13).imul().iadd()
        .iload(i).iload(j).imul().iadd()
        .iconst(97).irem()
        .iadd()
        .iastore();
    f.stmt().go(stored);
    f.bind(diag).stmt().aload(row).iload(j).iconst(0).iastore();
    f.bind(stored).stmt().iload(j).iconst(1).iadd().istore(j);
    f.stmt().go(jl);
    f.bind(jd).stmt().getstatic(q("TSP.dist")).iload(i).aload(row).aastore();
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(il);
    f.bind(id).stmt().ret();
  }

  // search(n, city, count, cost): recursive branch & bound.
  {
    auto& f = cls.method(
        "search",
        {{"n", Ty::I64}, {"city", Ty::I64}, {"count", Ty::I64}, {"cost", Ty::I64}}, Ty::Void);
    uint16_t next = f.local("next", Ty::I64);
    uint16_t step = f.local("step", Ty::I64);
    uint16_t tour = f.local("tour", Ty::I64);
    bc::Label not_leaf = f.label(), loop = f.label(), skip = f.label(), done = f.label(),
              no_improve = f.label(), pruned = f.label();
    // leaf: close the tour
    f.stmt().iload("count").iload("n").if_icmplt(not_leaf);
    f.stmt()
        .iload("cost")
        .getstatic(q("TSP.dist")).iload("city").aaload().iconst(0).iaload()
        .iadd()
        .istore(tour);
    f.stmt().iload(tour).getstatic(q("TSP.best")).if_icmpge(no_improve);
    f.stmt().iload(tour).putstatic(q("TSP.best"));
    f.bind(no_improve).stmt().ret();
    f.bind(not_leaf);
    // prune
    f.stmt().iload("cost").getstatic(q("TSP.best")).if_icmplt(pruned);
    f.stmt().ret();
    f.bind(pruned);
    f.stmt().iconst(0).istore(next);
    f.bind(loop).stmt().iload(next).iload("n").if_icmpge(done);
    f.stmt().getstatic(q("TSP.visited")).iload(next).iaload().ifne(skip);
    f.stmt().getstatic(q("TSP.visited")).iload(next).iconst(1).iastore();
    f.stmt().getstatic(q("TSP.dist"))
        .iload("city").aaload().iload(next).iaload().istore(step);
    f.stmt()
        .iload("n").iload(next).iload("count").iconst(1).iadd()
        .iload("cost").iload(step).iadd()
        .invoke(q("TSP.search"));
    f.stmt().getstatic(q("TSP.visited")).iload(next).iconst(0).iastore();
    f.bind(skip).stmt().iload(next).iconst(1).iadd().istore(next);
    f.stmt().go(loop);
    f.bind(done).stmt().ret();
  }

  // run(n): init + search from city 0; returns best tour.
  {
    auto& f = cls.method("run", {{"n", Ty::I64}}, Ty::I64);
    f.stmt().iload("n").invoke(q("TSP.init"));
    f.stmt().getstatic(q("TSP.visited")).iconst(0).iconst(1).iastore();
    f.stmt().iload("n").iconst(0).iconst(1).iconst(0).invoke(q("TSP.search"));
    f.stmt().getstatic(q("TSP.best")).iret();
  }
  {
    auto& m = cls.method("main", {{"n", Ty::I64}}, Ty::I64);
    uint16_t r = m.local("r", Ty::I64);
    m.stmt().iload("n").invoke(q("TSP.run")).istore(r);
    m.stmt().iload(r).iret();
  }
}

AppSpec tsp_app() {
  AppSpec s;
  s.name = "TSP";
  s.build = build_tsp;
  s.emit = emit_tsp;
  s.entry = "TSP.main";
  s.bench_args = {Value::of_i64(8)};
  s.bench_expected = INT64_MIN;  // checked against host-side B&B in tests
  s.paper_args = {Value::of_i64(12)};
  s.trigger_method = "TSP.search";
  s.paper_depth = 4;  // paper reports h=4: main -> run -> search (+1)
  s.paper_jdk_seconds = 2.92;
  s.paper_n = 12;
  s.paper_F = "~ 2500";
  return s;
}

std::vector<AppSpec> table1_apps() {
  return {fib_app(), nqueens_app(), fft_app(), tsp_app()};
}

}  // namespace sod::apps
