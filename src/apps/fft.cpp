// FFT — n x n 2-D radix-2 Cooley-Tukey transform with a >64 MB static
// workspace (Table I: n=256, h=4, F>64 MB).  The static array reproduces
// the paper's key observation: SOD's migration latency is unaffected by it
// (references are left behind), while eager-copy process migration and
// class-load-time allocation (JESSICA2) pay for all 64 MB.
//
// Call structure keeps the paper's stack height 4:
//   main -> run -> fft2d -> fft1d
#include "apps/apps.h"

namespace sod::apps {

namespace {

bc::Program build_fft() {
  bc::ProgramBuilder pb;
  emit_fft(pb, "");
  return pb.build();
}

}  // namespace

void emit_fft(bc::ProgramBuilder& pb, const std::string& prefix) {
  auto q = [&](const char* s) { return prefix + s; };
  pb.native("math.sin", {Ty::F64}, Ty::F64);
  pb.native("math.cos", {Ty::F64}, Ty::F64);

  auto& cls = pb.cls(q("FFT"));
  cls.field("re", Ty::Ref, /*is_static=*/true);
  cls.field("im", Ty::Ref, /*is_static=*/true);
  cls.field("workspace", Ty::Ref, /*is_static=*/true);  // the 64 MB anchor

  // init(n, ws): allocate n*n grids and the big workspace (ws doubles).
  {
    auto& f = cls.method("init", {{"n", Ty::I64}, {"ws", Ty::I64}}, Ty::Void);
    f.stmt().iload("n").iload("n").imul().newarray(Ty::F64).putstatic(q("FFT.re"));
    f.stmt().iload("n").iload("n").imul().newarray(Ty::F64).putstatic(q("FFT.im"));
    f.stmt().iload("ws").newarray(Ty::F64).putstatic(q("FFT.workspace"));
    f.stmt().ret();
  }

  // fft1d(off, n, stride, sign): in-place radix-2 over re/im.
  {
    auto& f = cls.method(
        "fft1d",
        {{"off", Ty::I64}, {"n", Ty::I64}, {"stride", Ty::I64}, {"sign", Ty::I64}}, Ty::Void);
    uint16_t re = f.local("re", Ty::Ref);
    uint16_t im = f.local("im", Ty::Ref);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t j = f.local("j", Ty::I64);
    uint16_t bit = f.local("bit", Ty::I64);
    uint16_t len = f.local("len", Ty::I64);
    uint16_t half = f.local("half", Ty::I64);
    uint16_t k = f.local("k", Ty::I64);
    uint16_t ang = f.local("ang", Ty::F64);
    uint16_t wr = f.local("wr", Ty::F64);
    uint16_t wi = f.local("wi", Ty::F64);
    uint16_t ur = f.local("ur", Ty::F64);
    uint16_t ui = f.local("ui", Ty::F64);
    uint16_t vr = f.local("vr", Ty::F64);
    uint16_t vi = f.local("vi", Ty::F64);
    uint16_t ia = f.local("ia", Ty::I64);
    uint16_t ib = f.local("ib", Ty::I64);
    uint16_t tmp = f.local("tmp", Ty::F64);

    f.stmt().getstatic(q("FFT.re")).astore(re);
    f.stmt().getstatic(q("FFT.im")).astore(im);

    // --- bit-reversal permutation ---
    bc::Label rev_loop = f.label(), rev_done = f.label(), bit_loop = f.label(),
              bit_done = f.label(), no_swap = f.label();
    f.stmt().iconst(1).istore(i);
    f.stmt().iconst(0).istore(j);
    f.bind(rev_loop).stmt().iload(i).iload("n").if_icmpge(rev_done);
    f.stmt().iload("n").iconst(1).ishr().istore(bit);
    f.bind(bit_loop).stmt().iload(j).iload(bit).iand().ifeq(bit_done);
    f.stmt().iload(j).iload(bit).ixor().istore(j);
    f.stmt().iload(bit).iconst(1).ishr().istore(bit);
    f.stmt().go(bit_loop);
    f.bind(bit_done).stmt().iload(j).iload(bit).ior().istore(j);
    f.stmt().iload(i).iload(j).if_icmpge(no_swap);
    // swap re[off+i*stride] <-> re[off+j*stride] (and im)
    f.stmt().iload("off").iload(i).iload("stride").imul().iadd().istore(ia);
    f.stmt().iload("off").iload(j).iload("stride").imul().iadd().istore(ib);
    f.stmt().aload(re).iload(ia).daload().dstore(tmp);
    f.stmt().aload(re).iload(ia).aload(re).iload(ib).daload().dastore();
    f.stmt().aload(re).iload(ib).dload(tmp).dastore();
    f.stmt().aload(im).iload(ia).daload().dstore(tmp);
    f.stmt().aload(im).iload(ia).aload(im).iload(ib).daload().dastore();
    f.stmt().aload(im).iload(ib).dload(tmp).dastore();
    f.bind(no_swap).stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(rev_loop);
    f.bind(rev_done);

    // --- butterflies ---
    bc::Label len_loop = f.label(), len_done = f.label(), blk_loop = f.label(),
              blk_done = f.label(), k_loop = f.label(), k_done = f.label();
    f.stmt().iconst(2).istore(len);
    f.bind(len_loop).stmt().iload(len).iload("n").if_icmpgt(len_done);
    f.stmt().iload(len).iconst(1).ishr().istore(half);
    f.stmt().iconst(0).istore(i);
    f.bind(blk_loop).stmt().iload(i).iload("n").if_icmpge(blk_done);
    f.stmt().iconst(0).istore(k);
    f.bind(k_loop).stmt().iload(k).iload(half).if_icmpge(k_done);
    // ang = sign * -2*pi*k/len ; w = (cos ang, sin ang)
    f.stmt()
        .iload("sign").i2d()
        .dconst(-6.283185307179586)
        .dmul()
        .iload(k).i2d().dmul()
        .iload(len).i2d().ddiv()
        .dstore(ang);
    f.stmt().dload(ang).invokenative("math.cos").dstore(wr);
    f.stmt().dload(ang).invokenative("math.sin").dstore(wi);
    // ia = off + (i+k)*stride ; ib = off + (i+k+half)*stride
    f.stmt().iload("off").iload(i).iload(k).iadd().iload("stride").imul().iadd().istore(ia);
    f.stmt().iload("off").iload(i).iload(k).iadd().iload(half).iadd().iload("stride").imul()
        .iadd().istore(ib);
    // u = a[ia]; v = a[ib]*w
    f.stmt().aload(re).iload(ia).daload().dstore(ur);
    f.stmt().aload(im).iload(ia).daload().dstore(ui);
    f.stmt()
        .aload(re).iload(ib).daload().dload(wr).dmul()
        .aload(im).iload(ib).daload().dload(wi).dmul()
        .dsub()
        .dstore(vr);
    f.stmt()
        .aload(re).iload(ib).daload().dload(wi).dmul()
        .aload(im).iload(ib).daload().dload(wr).dmul()
        .dadd()
        .dstore(vi);
    f.stmt().aload(re).iload(ia).dload(ur).dload(vr).dadd().dastore();
    f.stmt().aload(im).iload(ia).dload(ui).dload(vi).dadd().dastore();
    f.stmt().aload(re).iload(ib).dload(ur).dload(vr).dsub().dastore();
    f.stmt().aload(im).iload(ib).dload(ui).dload(vi).dsub().dastore();
    f.stmt().iload(k).iconst(1).iadd().istore(k);
    f.stmt().go(k_loop);
    f.bind(k_done).stmt().iload(i).iload(len).iadd().istore(i);
    f.stmt().go(blk_loop);
    f.bind(blk_done).stmt().iload(len).iconst(1).ishl().istore(len);
    f.stmt().go(len_loop);
    f.bind(len_done).stmt().ret();
  }

  // fft2d(n, sign): rows then columns.
  {
    auto& f = cls.method("fft2d", {{"n", Ty::I64}, {"sign", Ty::I64}}, Ty::Void);
    uint16_t r = f.local("r", Ty::I64);
    bc::Label rl = f.label(), rd = f.label(), cl = f.label(), cd = f.label();
    f.stmt().iconst(0).istore(r);
    f.bind(rl).stmt().iload(r).iload("n").if_icmpge(rd);
    f.stmt().iload(r).iload("n").imul().iload("n").iconst(1).iload("sign")
        .invoke(q("FFT.fft1d"));
    f.stmt().iload(r).iconst(1).iadd().istore(r);
    f.stmt().go(rl);
    f.bind(rd).stmt().iconst(0).istore(r);
    f.bind(cl).stmt().iload(r).iload("n").if_icmpge(cd);
    f.stmt().iload(r).iload("n").iload("n").iload("sign").invoke(q("FFT.fft1d"));
    f.stmt().iload(r).iconst(1).iadd().istore(r);
    f.stmt().go(cl);
    f.bind(cd).stmt().ret();
  }

  // run(n, ws): init, fill deterministically, forward transform, checksum.
  {
    auto& f = cls.method("run", {{"n", Ty::I64}, {"ws", Ty::I64}}, Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t total = f.local("total", Ty::I64);
    uint16_t s = f.local("s", Ty::F64);
    bc::Label fl = f.label(), fd = f.label(), sl = f.label(), sd = f.label();
    f.stmt().iload("n").iload("ws").invoke(q("FFT.init"));
    f.stmt().iload("n").iload("n").imul().istore(total);
    f.stmt().iconst(0).istore(i);
    f.bind(fl).stmt().iload(i).iload(total).if_icmpge(fd);
    f.stmt().getstatic(q("FFT.re")).iload(i)
        .iload(i).iconst(7).imul().iconst(31).iadd().iconst(101).irem().i2d()
        .dastore();
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(fl);
    f.bind(fd).stmt().iload("n").iconst(1).invoke(q("FFT.fft2d"));
    // checksum = sum |re| rounded
    f.stmt().dconst(0).dstore(s);
    f.stmt().iconst(0).istore(i);
    f.bind(sl).stmt().iload(i).iload(total).if_icmpge(sd);
    f.stmt().dload(s).getstatic(q("FFT.re")).iload(i).daload().dadd().dstore(s);
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(sl);
    f.bind(sd).stmt().dload(s).d2i().iret();
  }

  // main(n, ws)
  {
    auto& m = cls.method("main", {{"n", Ty::I64}, {"ws", Ty::I64}}, Ty::I64);
    uint16_t r = m.local("r", Ty::I64);
    m.stmt().iload("n").iload("ws").invoke(q("FFT.run")).istore(r);
    m.stmt().iload(r).iret();
  }
}

AppSpec fft_app() {
  AppSpec s;
  s.name = "FFT";
  s.build = build_fft;
  s.emit = emit_fft;
  s.entry = "FFT.main";
  // Bench scale: 16x16 grid, small workspace; checksum is
  // sum(re) == n*n*mean == sum of inputs (DC term dominates conservation
  // is not trivial, so the expected value is computed by the test itself
  // against a host-side reference FFT).
  s.bench_args = {Value::of_i64(16), Value::of_i64(1024)};
  s.bench_expected = INT64_MIN;  // checked against host reference in tests
  // Paper scale: 256-point 2-D with an 8M-double (64 MB) workspace.
  s.paper_args = {Value::of_i64(256), Value::of_i64(8 << 20)};
  s.trigger_method = "FFT.fft2d";
  s.paper_depth = 3;  // main -> run -> fft2d; fft1d makes h=4
  s.paper_jdk_seconds = 12.39;
  s.paper_n = 256;
  s.paper_F = "> 64M";
  return s;
}

}  // namespace sod::apps
