// Virtual time.
//
// All distributed experiments in this reproduction run in virtual time:
// guest execution charges instruction costs, tool-interface calls charge
// calibrated per-call costs, and network transfers charge size/bandwidth
// plus latency.  Each simulated node owns a VClock; message delivery uses
// max(sender-ready, receiver-now) + transfer-time, which is what lets the
// Fig. 1(c) workflow experiments show freeze-time hiding.
#pragma once

#include <algorithm>
#include <cstdint>

namespace sod {

/// Nanosecond-resolution virtual duration / instant.
struct VDur {
  int64_t ns = 0;

  static VDur nanos(int64_t v) { return {v}; }
  static VDur micros(double v) { return {static_cast<int64_t>(v * 1e3)}; }
  static VDur millis(double v) { return {static_cast<int64_t>(v * 1e6)}; }
  static VDur seconds(double v) { return {static_cast<int64_t>(v * 1e9)}; }

  double us() const { return static_cast<double>(ns) / 1e3; }
  double ms() const { return static_cast<double>(ns) / 1e6; }
  double sec() const { return static_cast<double>(ns) / 1e9; }

  VDur operator+(VDur o) const { return {ns + o.ns}; }
  VDur operator-(VDur o) const { return {ns - o.ns}; }
  VDur& operator+=(VDur o) {
    ns += o.ns;
    return *this;
  }
  auto operator<=>(const VDur&) const = default;
};

/// Per-node virtual clock.
class VClock {
 public:
  VDur now() const { return now_; }
  void advance(VDur d) { now_ += d; }
  /// Wait until at least `t` (no-op if already past it).
  void wait_until(VDur t) { now_ = std::max(now_, t); }
  void reset() { now_ = {}; }

 private:
  VDur now_{};
};

}  // namespace sod
