// Minimal running-statistics accumulator used by benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sod {

class Stats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum2_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const {
    if (n_ < 2) return 0.0;
    double m = mean();
    double var = (sum2_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

 private:
  int64_t n_ = 0;
  double sum_ = 0, sum2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact tail-percentile reducer: keeps every sample and reports
/// nearest-rank order statistics — no interpolation, no sketching — so the
/// same sample set always yields bit-identical percentiles (the property
/// the deterministic bench tables gate on).  Mean completion hides exactly
/// the tail a many-tenant service lives or dies by; p99 does not.
class Percentiles {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  int64_t count() const { return static_cast<int64_t>(xs_.size()); }

  /// Nearest-rank quantile: the ceil(q * n)-th smallest sample (1-based).
  /// q <= 0 yields the minimum, q >= 1 the maximum; 0 samples yield 0.
  /// Ties are benign: equal samples sort stably to equal values.
  double quantile(double q) const {
    if (xs_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
    if (q <= 0.0) return xs_.front();
    if (q >= 1.0) return xs_.back();
    auto rank = static_cast<size_t>(std::ceil(q * static_cast<double>(xs_.size())));
    if (rank == 0) rank = 1;
    return xs_[std::min(rank, xs_.size()) - 1];
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }
  double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> xs_;  ///< sorted lazily by quantile()
  mutable bool sorted_ = false;
};

}  // namespace sod
