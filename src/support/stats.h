// Minimal running-statistics accumulator used by benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace sod {

class Stats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum2_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const {
    if (n_ < 2) return 0.0;
    double m = mean();
    double var = (sum2_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

 private:
  int64_t n_ = 0;
  double sum_ = 0, sum2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace sod
