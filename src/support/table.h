// Plain-text table printer so every bench binary reports paper-style rows
// with aligned columns.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "support/json.h"

namespace sod {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  std::string str() const {
    std::vector<size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (size_t i = 0; i < r.size() && i < w.size(); ++i) w[i] = std::max(w[i], r[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    std::string out;
    auto emit = [&](const std::vector<std::string>& r) {
      for (size_t i = 0; i < w.size(); ++i) {
        std::string c = i < r.size() ? r[i] : "";
        out += c;
        out.append(w[i] - c.size() + 2, ' ');
      }
      out += '\n';
    };
    emit(header_);
    for (size_t i = 0; i < w.size(); ++i) out.append(w[i], '-').append(2, ' ');
    out += '\n';
    for (const auto& r : rows_) emit(r);
    return out;
  }

  void print() const { std::fputs(str().c_str(), stdout); }

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Schema-stable JSON form used by the bench --json output:
  ///   {"bench": <name>, "schema_version": 1,
  ///    "columns": [...], "rows": [[...], ...]}
  std::string json(const std::string& bench_name) const {
    std::string out = "{\"bench\": " + json_quote(bench_name) + ", \"schema_version\": 1";
    out += ", \"columns\": [";
    for (size_t i = 0; i < header_.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(header_[i]);
    }
    out += "], \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (r) out += ", ";
      out += '[';
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        if (i) out += ", ";
        out += json_quote(rows_[r][i]);
      }
      out += ']';
    }
    out += "]}\n";
    return out;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper producing std::string (for table cells).
inline std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

}  // namespace sod
