// Little-endian byte buffer reader/writer used for bytecode operand
// encoding and for all wire serialization (captured state, objects,
// class images).  Sizes produced by ByteWriter are what the network
// simulator charges for, so every transferred artifact goes through here.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/panic.h"

namespace sod {

class ByteWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { append(&v, 2); }
  void u32(uint32_t v) { append(&v, 4); }
  void u64(uint64_t v) { append(&v, 8); }
  void i32(int32_t v) { append(&v, 4); }
  void i64(int64_t v) { append(&v, 8); }
  void f64(double v) { append(&v, 8); }
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void raw(std::span<const uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Overwrite a previously written u32 at byte offset `at` (for patching
  /// branch targets after labels resolve).
  void patch_u32(size_t at, uint32_t v) {
    SOD_CHECK(at + 4 <= buf_.size(), "patch_u32 out of range");
    std::memcpy(buf_.data() + at, &v, 4);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  void append(const void* p, size_t n) {
    size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, p, n);
  }
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return data_[take(1)]; }
  uint16_t u16() { return read<uint16_t>(); }
  uint32_t u32() { return read<uint32_t>(); }
  uint64_t u64() { return read<uint64_t>(); }
  int32_t i32() { return read<int32_t>(); }
  int64_t i64() { return read<int64_t>(); }
  double f64() { return read<double>(); }
  std::string str() {
    uint32_t n = u32();
    size_t at = take(n);
    return std::string(reinterpret_cast<const char*>(data_.data() + at), n);
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  void seek(size_t p) {
    SOD_CHECK(p <= data_.size(), "seek out of range");
    pos_ = p;
  }

 private:
  template <typename T>
  T read() {
    T v;
    std::memcpy(&v, data_.data() + take(sizeof(T)), sizeof(T));
    return v;
  }
  size_t take(size_t n) {
    SOD_CHECK(pos_ + n <= data_.size(), "ByteReader overrun");
    size_t at = pos_;
    pos_ += n;
    return at;
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace sod
