// Minimal JSON emission helpers for the bench --json output.  Writing
// only — the repo has no need to parse JSON.
#pragma once

#include <cstdio>
#include <string>

namespace sod {

/// Quotes and escapes `s` as a JSON string literal (including the quotes).
inline std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace sod
