// Internal error handling for the SODEE reproduction.
//
// VM-internal invariant violations (malformed bytecode reaching the
// interpreter, broken protocol state, ...) are programming errors and abort
// through SOD_CHECK.  Guest-level exceptions (NullPointerException et al.)
// are *modelled data* inside the VM and never use C++ exceptions; see
// svm/guestex.h.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sod {

/// Thrown for user-facing API misuse (bad arguments to public entry points).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "SOD panic at %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace sod

#define SOD_CHECK(cond, msg)                              \
  do {                                                    \
    if (!(cond)) ::sod::panic(__FILE__, __LINE__, (msg)); \
  } while (0)

#define SOD_UNREACHABLE(msg) ::sod::panic(__FILE__, __LINE__, (msg))
