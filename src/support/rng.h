// Deterministic pseudo-random generator (SplitMix64) used by workload
// generators, synthetic file content and property tests.  We avoid
// std::mt19937 so that generated content is stable across library
// implementations.
#pragma once

#include <cstdint>

namespace sod {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

}  // namespace sod
