// Clang thread-safety annotations (a no-op on other compilers) plus thin
// annotated wrappers over the std mutexes, so `-Wthread-safety` can prove
// lock discipline on the wall-clock engine and thread pool at compile time.
//
// Only the wrappers carry capability attributes: std::mutex itself cannot
// be annotated, and the analysis needs the CAPABILITY/SCOPED_CAPABILITY
// types to thread the facts through.  Code that must hand a raw native
// handle to an un-annotated API (condition variables, C callbacks) uses
// `native()` — the analysis cannot see through it.
//
// There is deliberately no recursive mutex here: the wall-clock engine's
// former re-entrant home mutex is replaced by the two-level home gate
// (sod/homegate.h), whose nested sections detect an already-held ordered
// lock through a thread-local instead of re-locking, so every capability
// the analysis tracks is acquired exactly once.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SOD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SOD_THREAD_ANNOTATION
#define SOD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SOD_CAPABILITY(x) SOD_THREAD_ANNOTATION(capability(x))
#define SOD_SCOPED_CAPABILITY SOD_THREAD_ANNOTATION(scoped_lockable)
#define SOD_GUARDED_BY(x) SOD_THREAD_ANNOTATION(guarded_by(x))
#define SOD_REQUIRES(...) SOD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SOD_ACQUIRE(...) SOD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SOD_RELEASE(...) SOD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SOD_TRY_ACQUIRE(...) SOD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SOD_NO_THREAD_SAFETY_ANALYSIS SOD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sod {

/// Annotated std::mutex.  Lowercase lock()/unlock() keep it BasicLockable
/// so std::condition_variable_any can wait on the scoped lock directly.
class SOD_CAPABILITY("mutex") Mutex {
 public:
  void lock() SOD_ACQUIRE() { mu_.lock(); }
  void unlock() SOD_RELEASE() { mu_.unlock(); }
  bool try_lock() SOD_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over an annotated mutex (std::scoped_lock cannot carry
/// the scoped-capability attribute).  BasicLockable, so it can be handed
/// straight to std::condition_variable_any::wait.
template <class M>
class SOD_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(M& mu) SOD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ScopedLock() SOD_RELEASE() {
    if (held_) mu_.unlock();
  }
  void lock() SOD_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() SOD_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  M& mu_;
  bool held_ = true;
};

using MutexLock = ScopedLock<Mutex>;

}  // namespace sod
