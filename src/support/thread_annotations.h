// Clang thread-safety annotations (a no-op on other compilers) plus thin
// annotated wrappers over the std mutexes, so `-Wthread-safety` can prove
// lock discipline on the wall-clock engine and thread pool at compile time.
//
// Only the wrappers carry capability attributes: std::mutex itself cannot
// be annotated, and the analysis needs the CAPABILITY/SCOPED_CAPABILITY
// types to thread the facts through.  Code that must hand a raw native
// handle to an un-annotated API (condition variables, C callbacks) uses
// `native()` — the analysis cannot see through it, which is exactly right
// for re-entrant acquisition of a recursive mutex.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SOD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SOD_THREAD_ANNOTATION
#define SOD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SOD_CAPABILITY(x) SOD_THREAD_ANNOTATION(capability(x))
#define SOD_SCOPED_CAPABILITY SOD_THREAD_ANNOTATION(scoped_lockable)
#define SOD_GUARDED_BY(x) SOD_THREAD_ANNOTATION(guarded_by(x))
#define SOD_REQUIRES(...) SOD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SOD_ACQUIRE(...) SOD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SOD_RELEASE(...) SOD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SOD_NO_THREAD_SAFETY_ANALYSIS SOD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sod {

/// Annotated std::mutex.  Lowercase lock()/unlock() keep it BasicLockable
/// so std::condition_variable_any can wait on the scoped lock directly.
class SOD_CAPABILITY("mutex") Mutex {
 public:
  void lock() SOD_ACQUIRE() { mu_.lock(); }
  void unlock() SOD_RELEASE() { mu_.unlock(); }
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated std::recursive_mutex.  The analysis treats it like a plain
/// capability — recursive re-entry only ever happens through `native()`
/// handles (home-gate callbacks), which the analysis cannot see.
class SOD_CAPABILITY("mutex") RecursiveMutex {
 public:
  void lock() SOD_ACQUIRE() { mu_.lock(); }
  void unlock() SOD_RELEASE() { mu_.unlock(); }
  std::recursive_mutex& native() { return mu_; }

 private:
  std::recursive_mutex mu_;
};

/// RAII scoped lock over an annotated mutex (std::scoped_lock cannot carry
/// the scoped-capability attribute).  BasicLockable, so it can be handed
/// straight to std::condition_variable_any::wait.
template <class M>
class SOD_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(M& mu) SOD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ScopedLock() SOD_RELEASE() {
    if (held_) mu_.unlock();
  }
  void lock() SOD_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() SOD_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  M& mu_;
  bool held_ = true;
};

using MutexLock = ScopedLock<Mutex>;
using RecursiveMutexLock = ScopedLock<RecursiveMutex>;

}  // namespace sod
