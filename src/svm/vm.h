// The SODEE stack machine (the paper's "JVM" substitute).
//
// A VM instance owns a heap, per-class static storage, and guest threads;
// it interprets Program bytecode.  Two execution modes mirror the paper's
// mixed-mode JVM:
//   - fast mode: plain dispatch, no per-instruction debug checks ("JIT")
//   - debug mode: checks breakpoints and migration-safe-point pause
//     requests before each instruction (the JVMTI-enabled interpreter the
//     paper switches to around migration events)
//
// Guest exceptions are *modelled*: a pending-exception register plus
// exception-table dispatch, never C++ exceptions.  That matters because
// both of the paper's key mechanisms — restoration handlers driven by
// InvalidStateException and object faulting driven by
// NullPointerException — are guest-level control flow.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bytecode/program.h"
#include "svm/heap.h"
#include "support/vclock.h"

namespace sod::svm {

class VM;

/// Host functions callable from guest code (JNI analog).  Natives run
/// inline in the caller's frame; they may allocate, raise guest
/// exceptions via VM::throw_guest, and charge modelled virtual time via
/// VM::charge.
using NativeFn = std::function<Value(VM&, std::span<Value>)>;

class NativeRegistry {
 public:
  void bind(std::string name, NativeFn fn) { fns_[std::move(name)] = std::move(fn); }
  const NativeFn* find(const std::string& name) const {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<std::string, NativeFn> fns_;
};

struct Frame {
  uint16_t method = 0;
  /// Next instruction to execute; for non-top frames this is the return
  /// address (just past the INVOKE).
  uint32_t pc = 0;
  std::vector<Value> locals;
  std::vector<Value> ostack;
};

enum class ThreadStatus : uint8_t { Ready, Done, Crashed };

struct GuestThread {
  int id = 0;
  ThreadStatus status = ThreadStatus::Ready;
  std::vector<Frame> frames;
  Value result{};        ///< bottom-frame return value (when Done)
  Ref uncaught = bc::kNull;  ///< uncaught exception (when Crashed)
  bool resume_skip_bp = false;  ///< skip the breakpoint we just paused on
};

enum class StopReason : uint8_t { Done, Budget, Breakpoint, SafePoint, Crashed, Trap };

struct RunResult {
  StopReason reason = StopReason::Done;
  uint64_t executed = 0;  ///< instructions executed in this run() call
};

class VM {
 public:
  struct Config {
    size_t heap_limit_bytes = 0;  ///< 0 = unlimited
    uint32_t max_frames = 1 << 14;
  };

  VM(const bc::Program& prog, const NativeRegistry* natives, Config cfg);
  VM(const bc::Program& prog, const NativeRegistry* natives);

  const bc::Program& program() const { return *prog_; }
  Heap& heap() { return heap_; }
  const Heap& heap() const { return heap_; }

  /// Create a guest thread entering `method_id` with `args`; returns tid.
  int spawn(uint16_t method_id, std::span<const Value> args);

  /// Adopt a fully materialized stack (eager-copy migration restore path:
  /// process/thread migration rebuild exact frames instead of going
  /// through the breakpoint + restoration-handler protocol).
  int adopt_frames(std::vector<Frame> frames);
  GuestThread& thread(int tid);
  const GuestThread& thread(int tid) const;

  /// Interpret until the thread finishes, crashes, pauses, or the
  /// instruction budget runs out.
  RunResult run(int tid, uint64_t budget = UINT64_MAX);

  /// Convenience: spawn + run to completion; panics if the guest crashes.
  Value call(std::string_view qualified_method, std::span<const Value> args);

  // --- debug facilities (the tool interface rides on these) ---
  void set_debug_mode(bool on) { debug_ = on; }
  bool debug_mode() const { return debug_; }
  void add_breakpoint(uint16_t method, uint32_t pc) { bps_.insert(bp_key(method, pc)); }
  void remove_breakpoint(uint16_t method, uint32_t pc) { bps_.erase(bp_key(method, pc)); }
  void clear_breakpoints() { bps_.clear(); }
  /// Request a pause at the next migration-safe point (statement start).
  void request_safepoint(bool on) { safepoint_req_ = on; }
  bool safepoint_requested() const { return safepoint_req_; }

  /// Ask the interpreter to stop before the next instruction (used by the
  /// offload-trap native: the injected OutOfMemory handler jumps back to
  /// the failing statement's MSP and the loop pauses right there, leaving
  /// the thread capturable).  One-shot; works in fast mode too.
  void request_pause() { pause_req_ = true; }

  /// Throw a guest exception in `tid`'s current context and dispatch it
  /// (tool-interface RaiseException; used to trigger restoration handlers).
  void raise_in_thread(int tid, uint16_t ex_cls, std::string_view msg);

  // --- classes & statics ---
  bool class_loaded(uint16_t cls) const { return rt_[cls].loaded; }
  void ensure_loaded(uint16_t cls);
  Value get_static(uint16_t field_id);
  void set_static(uint16_t field_id, Value v);
  std::span<const Value> statics_of(uint16_t cls) const { return rt_[cls].statics; }
  void overwrite_statics(uint16_t cls, std::vector<Value> vals);
  std::span<const Ty> inst_slot_types(uint16_t cls) const { return rt_[cls].inst_types; }

  /// Class of the object `r` points to (must be an ObjCell).
  uint16_t class_of(Ref r) const { return heap_.obj(r).cls; }

  // --- guest exception plumbing (for natives) ---
  void throw_guest(uint16_t ex_cls, std::string_view msg);
  Ref make_exception(uint16_t ex_cls, std::string_view msg);
  /// Diagnostic message attached to an exception object.
  std::string exception_message(Ref r) const;

  /// Interned guest string for pool index.
  Ref intern_pool_string(uint16_t idx);

  // --- accounting ---
  uint64_t instr_count() const { return instrs_; }
  /// Modelled virtual cost charged by natives since last reset.
  VDur charged() const { return charged_; }
  void charge(VDur d) { charged_ += d; }
  void reset_charged() { charged_ = {}; }

  /// Fired when a class is lazily loaded (CLASS_FILE_LOAD_HOOK analog).
  std::function<void(VM&, uint16_t cls)> on_class_load;

  /// Frame executing the currently running native (valid only during an
  /// INVOKENATIVE dispatch).  Object-fault natives use this to repair the
  /// faulting frame's locals in place.
  Frame* native_frame() { return native_frame_; }
  /// Thread running the current native.
  int native_tid() const { return native_tid_; }

 private:
  struct ClassRT {
    bool loaded = false;
    std::vector<Value> statics;
    std::vector<Ty> inst_types;
    std::vector<Ty> static_types;
  };

  static uint64_t bp_key(uint16_t m, uint32_t pc) {
    return (static_cast<uint64_t>(m) << 32) | pc;
  }

  const std::vector<Ty>& local_types(uint16_t method_id);
  Frame make_frame(uint16_t method_id);
  /// Dispatch a pending guest exception; returns false if uncaught
  /// (thread crashed).
  bool dispatch_exception(GuestThread& th, Ref ex, uint32_t throw_pc);
  RunResult loop(GuestThread& th, uint64_t budget);

  const bc::Program* prog_;
  const NativeRegistry* natives_;
  Config cfg_;
  Heap heap_;
  std::vector<ClassRT> rt_;
  std::vector<GuestThread> threads_;
  std::vector<std::vector<Ty>> local_types_cache_;
  std::unordered_map<uint16_t, Ref> pool_strings_;
  std::unordered_map<Ref, std::string> ex_msgs_;

  bool debug_ = false;
  bool safepoint_req_ = false;
  bool pause_req_ = false;
  std::unordered_set<uint64_t> bps_;

  // pending guest exception (set by natives / interpreter helpers)
  bool pending_ = false;
  uint16_t pending_cls_ = 0;
  std::string pending_msg_;

  uint64_t instrs_ = 0;
  VDur charged_{};
  Frame* native_frame_ = nullptr;
  int native_tid_ = -1;
};

}  // namespace sod::svm
