#include "svm/heap.h"

#include <deque>
#include <unordered_set>

namespace sod::svm {

namespace {
// Wire tags for cell kinds.
enum : uint8_t { kWireObj = 1, kWireArrI, kWireArrD, kWireArrR, kWireStr };
}  // namespace

Ref Heap::push_cell(Cell c, size_t bytes) {
  if (limit_ != 0 && used_ + bytes > limit_) {
    oom_ = true;
    return bc::kNull;
  }
  oom_ = false;
  used_ += bytes;
  size_t idx = count_++;
  if ((idx & kChunkMask) == 0) chunks_.emplace_back(std::make_unique<Cell[]>(kChunkCells));
  chunks_[idx >> kChunkShift][idx & kChunkMask] = std::move(c);
  return static_cast<Ref>(count_);
}

size_t Heap::cell_bytes(const Cell& c) const {
  struct V {
    size_t operator()(const std::monostate&) const { return 0; }
    size_t operator()(const ObjCell& o) const { return 16 + o.fields.size() * 8; }
    size_t operator()(const ArrICell& a) const { return 16 + a.v.size() * 8; }
    size_t operator()(const ArrDCell& a) const { return 16 + a.v.size() * 8; }
    size_t operator()(const ArrRCell& a) const { return 16 + a.v.size() * 4; }
    size_t operator()(const StrCell& s) const { return 16 + s.s.size(); }
    size_t operator()(const StubCell&) const { return 8; }
  };
  return std::visit(V{}, c);
}

// The alloc_* fast paths compute their byte charge directly (the same
// formulas as cell_bytes) instead of running the visitor over a throwaway
// Cell copy.

Ref Heap::alloc_obj(uint16_t cls, std::span<const Ty> slot_types) {
  ObjCell o;
  o.cls = cls;
  o.fields.reserve(slot_types.size());
  for (Ty t : slot_types) o.fields.push_back(Value::zero_of(t));
  size_t b = 16 + slot_types.size() * 8;
  return push_cell(Cell(std::move(o)), b);
}

Ref Heap::alloc_arr_i(size_t n) {
  ArrICell a;
  a.v.assign(n, 0);
  return push_cell(Cell(std::move(a)), 16 + n * 8);
}
Ref Heap::alloc_arr_d(size_t n) {
  ArrDCell a;
  a.v.assign(n, 0.0);
  return push_cell(Cell(std::move(a)), 16 + n * 8);
}
Ref Heap::alloc_arr_r(size_t n) {
  ArrRCell a;
  a.v.assign(n, bc::kNull);
  return push_cell(Cell(std::move(a)), 16 + n * 4);
}
Ref Heap::alloc_str(std::string s) {
  size_t b = 16 + s.size();
  return push_cell(Cell(StrCell{std::move(s)}), b);
}

Ref Heap::alloc_stub(Ref home_ref) { return push_cell(Cell(StubCell{home_ref}), 8); }

void Heap::replace_stub(Ref stub, Cell materialized) {
  SOD_CHECK(is_stub(stub), "replace_stub on non-stub");
  used_ += cell_bytes(materialized);
  cell(stub) = std::move(materialized);
}

ObjCell& Heap::obj(Ref r) {
  auto* p = std::get_if<ObjCell>(&cell(r));
  SOD_CHECK(p, "ref is not an object");
  return *p;
}
const ObjCell& Heap::obj(Ref r) const {
  auto* p = std::get_if<ObjCell>(&cell(r));
  SOD_CHECK(p, "ref is not an object");
  return *p;
}
ArrICell& Heap::arr_i(Ref r) {
  auto* p = std::get_if<ArrICell>(&cell(r));
  SOD_CHECK(p, "ref is not an i64 array");
  return *p;
}
ArrDCell& Heap::arr_d(Ref r) {
  auto* p = std::get_if<ArrDCell>(&cell(r));
  SOD_CHECK(p, "ref is not an f64 array");
  return *p;
}
ArrRCell& Heap::arr_r(Ref r) {
  auto* p = std::get_if<ArrRCell>(&cell(r));
  SOD_CHECK(p, "ref is not a ref array");
  return *p;
}
const StrCell& Heap::str(Ref r) const {
  auto* p = std::get_if<StrCell>(&cell(r));
  SOD_CHECK(p, "ref is not a string");
  return *p;
}

void Heap::serialize_shallow(Ref r, ByteWriter& w) const {
  const Cell& c = cell(r);
  if (const auto* o = std::get_if<ObjCell>(&c)) {
    w.u8(kWireObj);
    w.u16(o->cls);
    w.u16(static_cast<uint16_t>(o->fields.size()));
    for (const Value& v : o->fields) {
      w.u8(static_cast<uint8_t>(v.tag));
      switch (v.tag) {
        case Ty::I64: w.i64(v.i); break;
        case Ty::F64: w.f64(v.d); break;
        case Ty::Ref: w.u32(v.r); break;  // home ref id
        case Ty::Void: SOD_UNREACHABLE("void field");
      }
    }
  } else if (const auto* ai = std::get_if<ArrICell>(&c)) {
    w.u8(kWireArrI);
    w.u32(static_cast<uint32_t>(ai->v.size()));
    for (int64_t x : ai->v) w.i64(x);
  } else if (const auto* ad = std::get_if<ArrDCell>(&c)) {
    w.u8(kWireArrD);
    w.u32(static_cast<uint32_t>(ad->v.size()));
    for (double x : ad->v) w.f64(x);
  } else if (const auto* ar = std::get_if<ArrRCell>(&c)) {
    w.u8(kWireArrR);
    w.u32(static_cast<uint32_t>(ar->v.size()));
    for (Ref x : ar->v) w.u32(x);
  } else if (const auto* s = std::get_if<StrCell>(&c)) {
    w.u8(kWireStr);
    w.str(s->s);
  } else if (std::holds_alternative<StubCell>(c)) {
    SOD_UNREACHABLE("serialize of remote stub: materialize it first");
  } else {
    SOD_UNREACHABLE("serialize of empty cell");
  }
}

size_t Heap::shallow_size(Ref r) const {
  ByteWriter w;
  serialize_shallow(r, w);
  return w.size();
}

Ref Heap::deserialize_shallow(ByteReader& r, const RemoteRefSink& remote_of, bool stubs) {
  uint8_t kind = r.u8();
  switch (kind) {
    case kWireObj: {
      uint16_t cls = r.u16();
      uint16_t n = r.u16();
      ObjCell o;
      o.cls = cls;
      o.fields.resize(n);
      std::vector<std::pair<uint32_t, Ref>> remotes;
      for (uint16_t i = 0; i < n; ++i) {
        Ty tag = static_cast<Ty>(r.u8());
        switch (tag) {
          case Ty::I64: o.fields[i] = Value::of_i64(r.i64()); break;
          case Ty::F64: o.fields[i] = Value::of_f64(r.f64()); break;
          case Ty::Ref: {
            Ref home = r.u32();
            // Non-null remote refs become stubs (fetched on demand);
            // genuine nulls stay null.
            o.fields[i] =
                (home != bc::kNull && stubs) ? Value::of_ref(alloc_stub(home)) : Value::null();
            if (home != bc::kNull) remotes.emplace_back(i, home);
            break;
          }
          case Ty::Void: SOD_UNREACHABLE("void field");
        }
      }
      size_t b = 16 + o.fields.size() * 8;
      Ref nr = push_cell(Cell(std::move(o)), b);
      if (nr != bc::kNull && remote_of)
        for (auto& [slot, home] : remotes) remote_of(nr, slot, home);
      return nr;
    }
    case kWireArrI: {
      uint32_t n = r.u32();
      ArrICell a;
      a.v.resize(n);
      for (auto& x : a.v) x = r.i64();
      return push_cell(Cell(std::move(a)), 16 + n * 8);
    }
    case kWireArrD: {
      uint32_t n = r.u32();
      ArrDCell a;
      a.v.resize(n);
      for (auto& x : a.v) x = r.f64();
      return push_cell(Cell(std::move(a)), 16 + n * 8);
    }
    case kWireArrR: {
      uint32_t n = r.u32();
      ArrRCell a;
      a.v.assign(n, bc::kNull);
      std::vector<std::pair<uint32_t, Ref>> remotes;
      for (uint32_t i = 0; i < n; ++i) {
        Ref home = r.u32();
        if (home != bc::kNull) {
          remotes.emplace_back(i, home);
          if (stubs) a.v[i] = alloc_stub(home);
        }
      }
      size_t b = 16 + n * 4;
      Ref nr = push_cell(Cell(std::move(a)), b);
      if (nr != bc::kNull && remote_of)
        for (auto& [idx, home] : remotes) remote_of(nr, idx, home);
      return nr;
    }
    case kWireStr: {
      return alloc_str(r.str());
    }
  }
  SOD_UNREACHABLE("bad wire cell kind");
}

namespace {
void collect_refs(const Cell& c, std::vector<Ref>& out) {
  if (const auto* o = std::get_if<ObjCell>(&c)) {
    for (const Value& v : o->fields)
      if (v.tag == Ty::Ref && v.r != bc::kNull) out.push_back(v.r);
  } else if (const auto* ar = std::get_if<ArrRCell>(&c)) {
    for (Ref x : ar->v)
      if (x != bc::kNull) out.push_back(x);
  }
}
}  // namespace

void Heap::serialize_graph(std::span<const Ref> roots, ByteWriter& w) const {
  std::vector<Ref> order;
  std::unordered_set<Ref> seen;
  std::deque<Ref> q;
  for (Ref r : roots)
    if (r != bc::kNull && seen.insert(r).second) q.push_back(r);
  while (!q.empty()) {
    Ref r = q.front();
    q.pop_front();
    order.push_back(r);
    std::vector<Ref> kids;
    collect_refs(cell(r), kids);
    for (Ref k : kids)
      if (seen.insert(k).second) q.push_back(k);
  }
  w.u32(static_cast<uint32_t>(order.size()));
  for (Ref r : order) {
    w.u32(r);
    serialize_shallow(r, w);
  }
}

size_t Heap::graph_size(std::span<const Ref> roots) const {
  ByteWriter w;
  serialize_graph(roots, w);
  return w.size();
}

std::unordered_map<Ref, Ref> Heap::deserialize_graph(ByteReader& r) {
  uint32_t n = r.u32();
  std::unordered_map<Ref, Ref> map;
  map.reserve(n);
  // Pass 1: materialize cells, remembering embedded home refs.
  std::vector<std::tuple<Ref, uint32_t, Ref>> links;  // (local holder, slot, home)
  for (uint32_t i = 0; i < n; ++i) {
    Ref home = r.u32();
    Ref local = deserialize_shallow(
        r, [&](Ref holder, uint32_t slot, Ref h) { links.emplace_back(holder, slot, h); },
        /*stubs=*/false);
    SOD_CHECK(local != bc::kNull, "graph deserialize hit heap limit");
    map[home] = local;
  }
  // Pass 2: rewire intra-graph references.
  for (auto& [holder, slot, home] : links) {
    auto it = map.find(home);
    SOD_CHECK(it != map.end(), "dangling ref in graph image");
    Cell& c = cell(holder);
    if (auto* o = std::get_if<ObjCell>(&c)) {
      o->fields[slot] = Value::of_ref(it->second);
    } else if (auto* ar = std::get_if<ArrRCell>(&c)) {
      ar->v[slot] = it->second;
    } else {
      SOD_UNREACHABLE("link into non-ref-bearing cell");
    }
  }
  return map;
}

bool Heap::deep_equal(const Heap& a, Ref ra, const Heap& b, Ref rb) {
  if ((ra == bc::kNull) != (rb == bc::kNull)) return false;
  if (ra == bc::kNull) return true;
  std::unordered_map<Ref, Ref> paired;
  std::deque<std::pair<Ref, Ref>> q{{ra, rb}};
  while (!q.empty()) {
    auto [x, y] = q.front();
    q.pop_front();
    auto it = paired.find(x);
    if (it != paired.end()) {
      if (it->second != y) return false;
      continue;
    }
    paired[x] = y;
    const Cell& cx = a.cell(x);
    const Cell& cy = b.cell(y);
    if (cx.index() != cy.index()) return false;
    if (const auto* ox = std::get_if<ObjCell>(&cx)) {
      const auto& oy = std::get<ObjCell>(cy);
      if (ox->cls != oy.cls || ox->fields.size() != oy.fields.size()) return false;
      for (size_t i = 0; i < ox->fields.size(); ++i) {
        const Value& vx = ox->fields[i];
        const Value& vy = oy.fields[i];
        if (vx.tag != vy.tag) return false;
        if (vx.tag == Ty::Ref) {
          if ((vx.r == bc::kNull) != (vy.r == bc::kNull)) return false;
          if (vx.r != bc::kNull) q.emplace_back(vx.r, vy.r);
        } else if (!vx.same_as(vy)) {
          return false;
        }
      }
    } else if (const auto* aix = std::get_if<ArrICell>(&cx)) {
      if (aix->v != std::get<ArrICell>(cy).v) return false;
    } else if (const auto* adx = std::get_if<ArrDCell>(&cx)) {
      if (adx->v != std::get<ArrDCell>(cy).v) return false;
    } else if (const auto* arx = std::get_if<ArrRCell>(&cx)) {
      const auto& ary = std::get<ArrRCell>(cy);
      if (arx->v.size() != ary.v.size()) return false;
      for (size_t i = 0; i < arx->v.size(); ++i) {
        if ((arx->v[i] == bc::kNull) != (ary.v[i] == bc::kNull)) return false;
        if (arx->v[i] != bc::kNull) q.emplace_back(arx->v[i], ary.v[i]);
      }
    } else if (const auto* sx = std::get_if<StrCell>(&cx)) {
      if (sx->s != std::get<StrCell>(cy).s) return false;
    }
  }
  return true;
}

}  // namespace sod::svm
