#include "svm/natives.h"

#include <cmath>
#include <cstdio>

#include "bytecode/builder.h"

namespace sod::svm {

using bc::Ty;

void declare_stdlib(bc::ProgramBuilder& pb) {
  pb.native("sys.print_i64", {Ty::I64}, Ty::Void);
  pb.native("sys.print_f64", {Ty::F64}, Ty::Void);
  pb.native("sys.print_str", {Ty::Ref}, Ty::Void);
  pb.native("math.sin", {Ty::F64}, Ty::F64);
  pb.native("math.cos", {Ty::F64}, Ty::F64);
  pb.native("math.sqrt", {Ty::F64}, Ty::F64);
  pb.native("math.abs_f64", {Ty::F64}, Ty::F64);
  // str.char_at(str, i) -> i64 (char code); str.find(hay, needle, from) -> index or -1
  pb.native("str.char_at", {Ty::Ref, Ty::I64}, Ty::I64);
  pb.native("str.find", {Ty::Ref, Ty::Ref, Ty::I64}, Ty::I64);
}

void StdLib::install(NativeRegistry& reg) {
  reg.bind("sys.print_i64", [this](VM&, std::span<Value> a) {
    out_ += std::to_string(a[0].i) + "\n";
    if (echo) std::printf("%lld\n", static_cast<long long>(a[0].i));
    return Value{};
  });
  reg.bind("sys.print_f64", [this](VM&, std::span<Value> a) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g\n", a[0].d);
    out_ += buf;
    if (echo) std::fputs(buf, stdout);
    return Value{};
  });
  reg.bind("sys.print_str", [this](VM& vm, std::span<Value> a) {
    if (a[0].r == bc::kNull || vm.heap().is_stub(a[0].r)) {
      vm.throw_guest(bc::builtin::kNullPointer, "print_str");
      return Value{};
    }
    out_ += vm.heap().str(a[0].r).s + "\n";
    if (echo) std::printf("%s\n", vm.heap().str(a[0].r).s.c_str());
    return Value{};
  });
  reg.bind("math.sin", [](VM&, std::span<Value> a) { return Value::of_f64(std::sin(a[0].d)); });
  reg.bind("math.cos", [](VM&, std::span<Value> a) { return Value::of_f64(std::cos(a[0].d)); });
  reg.bind("math.sqrt", [](VM&, std::span<Value> a) { return Value::of_f64(std::sqrt(a[0].d)); });
  reg.bind("math.abs_f64",
           [](VM&, std::span<Value> a) { return Value::of_f64(std::fabs(a[0].d)); });
  reg.bind("str.char_at", [](VM& vm, std::span<Value> a) {
    if (a[0].r == bc::kNull || vm.heap().is_stub(a[0].r)) {
      vm.throw_guest(bc::builtin::kNullPointer, "str.char_at");
      return Value{};
    }
    const std::string& s = vm.heap().str(a[0].r).s;
    int64_t i = a[1].i;
    if (i < 0 || static_cast<size_t>(i) >= s.size()) {
      vm.throw_guest(bc::builtin::kIndexOutOfBounds, "str.char_at");
      return Value{};
    }
    return Value::of_i64(static_cast<unsigned char>(s[static_cast<size_t>(i)]));
  });
  reg.bind("str.find", [](VM& vm, std::span<Value> a) {
    if (a[0].r == bc::kNull || a[1].r == bc::kNull || vm.heap().is_stub(a[0].r) ||
        vm.heap().is_stub(a[1].r)) {
      vm.throw_guest(bc::builtin::kNullPointer, "str.find");
      return Value{};
    }
    const std::string& hay = vm.heap().str(a[0].r).s;
    const std::string& needle = vm.heap().str(a[1].r).s;
    size_t from = a[2].i < 0 ? 0 : static_cast<size_t>(a[2].i);
    size_t at = from > hay.size() ? std::string::npos : hay.find(needle, from);
    return Value::of_i64(at == std::string::npos ? -1 : static_cast<int64_t>(at));
  });
}

}  // namespace sod::svm
