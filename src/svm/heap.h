// Guest heap.
//
// Cells are class instances, typed arrays, or interned strings.  Refs are
// 1-based indices (0 = null).  There is no garbage collector — guest runs
// in the experiments are bounded, and the paper's migration design treats
// the heap as home-anchored data that is fetched on demand, so lifetime is
// managed per-VM (the whole heap dies with the VM, as the worker JVMs in
// the paper exit after their lease).
//
// Serialization comes in two flavours mirroring the two migration schools:
//   - serialize_shallow: one cell; embedded refs are encoded as *home ref
//     ids* and materialize as nulls + side-table entries at the receiver
//     (SOD's on-demand object faulting).
//   - serialize_graph: the full reachable closure (eager-copy process
//     migration à la G-JavaMPI).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "bytecode/types.h"
#include "support/bytes.h"

namespace sod::svm {

using bc::Ref;
using bc::Ty;
using bc::Value;

/// Placeholder for an object whose data still lives at the home node.
/// Stubs look non-null to reference tests (preserving `if (x == null)`
/// semantics across migration) but raise NullPointerException on any
/// dereference, which drives the injected fault handlers exactly like the
/// paper's plain-null scheme.  `home_ref` is the home-heap id when known
/// (stubs from deserialized objects) or 0 (stubs standing for captured
/// frame locals, resolved via GetLocal at the home).
struct StubCell {
  Ref home_ref = 0;
};

struct ObjCell {
  uint16_t cls = 0;
  std::vector<Value> fields;
};
struct ArrICell {
  std::vector<int64_t> v;
};
struct ArrDCell {
  std::vector<double> v;
};
struct ArrRCell {
  std::vector<Ref> v;
};
struct StrCell {
  std::string s;
};

using Cell = std::variant<std::monostate, ObjCell, ArrICell, ArrDCell, ArrRCell, StrCell, StubCell>;

class Heap {
 public:
  /// Byte budget; allocations beyond it fail (drives OutOfMemory-style
  /// exception-driven offload on small-device profiles).  0 = unlimited.
  explicit Heap(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  Ref alloc_obj(uint16_t cls, std::span<const Ty> slot_types);
  Ref alloc_arr_i(size_t n);
  Ref alloc_arr_d(size_t n);
  Ref alloc_arr_r(size_t n);
  Ref alloc_str(std::string s);
  Ref alloc_stub(Ref home_ref);

  bool is_stub(Ref r) const { return std::holds_alternative<StubCell>(cell(r)); }
  Ref stub_home(Ref r) const { return std::get<StubCell>(cell(r)).home_ref; }
  /// Replace a stub in place with the materialized cell `from` (so every
  /// existing reference to the stub sees the real object).
  void replace_stub(Ref stub, Cell materialized);

  /// True if the last alloc_* failed for capacity (ref came back null).
  bool last_alloc_failed() const { return oom_; }

  bool valid(Ref r) const { return r >= 1 && r <= count_; }
  Cell& cell(Ref r) {
    SOD_CHECK(valid(r), "bad ref");
    return chunks_[(r - 1) >> kChunkShift][(r - 1) & kChunkMask];
  }
  const Cell& cell(Ref r) const {
    SOD_CHECK(valid(r), "bad ref");
    return chunks_[(r - 1) >> kChunkShift][(r - 1) & kChunkMask];
  }
  ObjCell& obj(Ref r);
  const ObjCell& obj(Ref r) const;
  ArrICell& arr_i(Ref r);
  ArrDCell& arr_d(Ref r);
  ArrRCell& arr_r(Ref r);
  const StrCell& str(Ref r) const;

  size_t count() const { return count_; }
  size_t used_bytes() const { return used_; }

  /// Shallow wire form of one cell (embedded refs as raw home ids).
  void serialize_shallow(Ref r, ByteWriter& w) const;
  /// Byte size of the shallow wire form.
  size_t shallow_size(Ref r) const;
  /// Materialize a shallow cell into this heap.  Embedded non-null refs
  /// become remote stubs carrying the home ref (when `stubs`), or nulls
  /// (graph deserialization rewires them afterwards).  `remote_of`
  /// receives (holder, slot_or_index, home_ref) for each embedded ref.
  /// Returns the new local ref.
  using RemoteRefSink = std::function<void(Ref local_holder, uint32_t slot, Ref home_ref)>;
  Ref deserialize_shallow(ByteReader& r, const RemoteRefSink& remote_of, bool stubs = true);

  /// Full reachable closure from `roots` (eager copy).  The wire form is a
  /// list of (home_ref, shallow cell); intra-graph refs are preserved via
  /// an id map when deserializing.
  void serialize_graph(std::span<const Ref> roots, ByteWriter& w) const;
  size_t graph_size(std::span<const Ref> roots) const;
  /// Returns home->local ref map.
  std::unordered_map<Ref, Ref> deserialize_graph(ByteReader& r);

  /// Deep-copy compare of two refs across heaps (test support).
  static bool deep_equal(const Heap& a, Ref ra, const Heap& b, Ref rb);

 private:
  // Cells live in fixed-size chunks so allocation is a bump of count_ (a
  // new chunk every kChunkCells allocs) and cell references stay stable —
  // no vector reallocation moving live Cell storage under the interpreter.
  static constexpr size_t kChunkShift = 10;
  static constexpr size_t kChunkCells = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkCells - 1;

  Ref push_cell(Cell c, size_t bytes);
  size_t cell_bytes(const Cell& c) const;

  std::vector<std::unique_ptr<Cell[]>> chunks_;
  size_t count_ = 0;
  size_t limit_;
  size_t used_ = 0;
  bool oom_ = false;
};

}  // namespace sod::svm
