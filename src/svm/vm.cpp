#include "svm/vm.h"

#include <algorithm>

#include "bytecode/disasm.h"

// Direct-threaded dispatch: on GCC/Clang the interpreter loop uses computed
// goto (a per-opcode label table) so each handler jumps straight to the next
// handler instead of round-tripping through a switch.  MSVC and unknown
// compilers fall back to the portable switch loop; -DSOD_COMPUTED_GOTO=0
// (CMake option SOD_FORCE_SWITCH_DISPATCH) forces the fallback anywhere.
#ifndef SOD_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define SOD_COMPUTED_GOTO 1
#else
#define SOD_COMPUTED_GOTO 0
#endif
#endif

namespace sod::svm {

using bc::Instr;
using bc::Method;
using bc::Op;
using bc::Program;

VM::VM(const Program& prog, const NativeRegistry* natives) : VM(prog, natives, Config{}) {}

VM::VM(const Program& prog, const NativeRegistry* natives, Config cfg)
    : prog_(&prog), natives_(natives), cfg_(cfg), heap_(cfg.heap_limit_bytes) {
  rt_.resize(prog.classes.size());
  for (size_t c = 0; c < prog.classes.size(); ++c) {
    auto& r = rt_[c];
    r.inst_types.resize(prog.classes[c].num_inst_slots, Ty::I64);
    r.static_types.resize(prog.classes[c].num_static_slots, Ty::I64);
    for (uint16_t fid : prog.classes[c].field_ids) {
      const bc::Field& f = prog.field(fid);
      (f.is_static ? r.static_types : r.inst_types)[f.slot] = f.type;
    }
  }
  local_types_cache_.resize(prog.methods.size());
}

const std::vector<Ty>& VM::local_types(uint16_t method_id) {
  auto& cache = local_types_cache_[method_id];
  if (cache.empty()) {
    const Method& m = prog_->method(method_id);
    cache.assign(m.num_locals, Ty::I64);
    for (const auto& v : m.var_table) cache[v.slot] = v.type;
    if (m.num_locals == 0) cache.push_back(Ty::I64);  // keep non-empty as "computed" marker
  }
  return cache;
}

Frame VM::make_frame(uint16_t method_id) {
  const Method& m = prog_->method(method_id);
  Frame f;
  f.method = method_id;
  f.pc = 0;
  const auto& lt = local_types(method_id);
  f.locals.reserve(m.num_locals);
  for (uint16_t i = 0; i < m.num_locals; ++i) f.locals.push_back(Value::zero_of(lt[i]));
  f.ostack.reserve(m.max_stack);
  return f;
}

int VM::spawn(uint16_t method_id, std::span<const Value> args) {
  const Method& m = prog_->method(method_id);
  SOD_CHECK(args.size() == m.params.size(), "spawn: arg count mismatch for " + m.name);
  ensure_loaded(m.owner);
  GuestThread th;
  th.id = static_cast<int>(threads_.size());
  Frame f = make_frame(method_id);
  for (size_t i = 0; i < args.size(); ++i) {
    SOD_CHECK(args[i].tag == m.params[i], "spawn: arg type mismatch for " + m.name);
    f.locals[i] = args[i];
  }
  th.frames.push_back(std::move(f));
  threads_.push_back(std::move(th));
  return threads_.back().id;
}

int VM::adopt_frames(std::vector<Frame> frames) {
  SOD_CHECK(!frames.empty(), "adopt_frames: empty stack");
  for (const Frame& f : frames) ensure_loaded(prog_->method(f.method).owner);
  GuestThread th;
  th.id = static_cast<int>(threads_.size());
  th.frames = std::move(frames);
  threads_.push_back(std::move(th));
  return threads_.back().id;
}

GuestThread& VM::thread(int tid) {
  SOD_CHECK(tid >= 0 && tid < static_cast<int>(threads_.size()), "bad tid");
  return threads_[tid];
}
const GuestThread& VM::thread(int tid) const {
  SOD_CHECK(tid >= 0 && tid < static_cast<int>(threads_.size()), "bad tid");
  return threads_[tid];
}

Value VM::call(std::string_view qname, std::span<const Value> args) {
  uint16_t mid = prog_->find_method(qname);
  SOD_CHECK(mid != bc::kNoId, "call: unknown method " + std::string(qname));
  int tid = spawn(mid, args);
  RunResult rr = run(tid);
  if (rr.reason == StopReason::Crashed) {
    const GuestThread& th = thread(tid);
    std::string cls = prog_->cls(class_of(th.uncaught)).name;
    SOD_UNREACHABLE("guest crashed with " + cls + ": " + exception_message(th.uncaught));
  }
  SOD_CHECK(rr.reason == StopReason::Done, "call: guest did not finish");
  return thread(tid).result;
}

void VM::ensure_loaded(uint16_t cls) {
  ClassRT& r = rt_[cls];
  if (r.loaded) return;
  r.loaded = true;
  r.statics.clear();
  r.statics.reserve(r.static_types.size());
  for (Ty t : r.static_types) r.statics.push_back(Value::zero_of(t));
  if (on_class_load) on_class_load(*this, cls);
}

Value VM::get_static(uint16_t field_id) {
  const bc::Field& f = prog_->field(field_id);
  SOD_CHECK(f.is_static, "get_static on instance field");
  ensure_loaded(f.owner);
  return rt_[f.owner].statics[f.slot];
}

void VM::set_static(uint16_t field_id, Value v) {
  const bc::Field& f = prog_->field(field_id);
  SOD_CHECK(f.is_static, "set_static on instance field");
  ensure_loaded(f.owner);
  rt_[f.owner].statics[f.slot] = v;
}

void VM::overwrite_statics(uint16_t cls, std::vector<Value> vals) {
  ensure_loaded(cls);
  SOD_CHECK(vals.size() == rt_[cls].statics.size(), "statics size mismatch");
  rt_[cls].statics = std::move(vals);
}

void VM::throw_guest(uint16_t ex_cls, std::string_view msg) {
  SOD_CHECK(!pending_, "guest exception already pending");
  pending_ = true;
  pending_cls_ = ex_cls;
  pending_msg_ = std::string(msg);
}

Ref VM::make_exception(uint16_t ex_cls, std::string_view msg) {
  ensure_loaded(ex_cls);
  Ref r = heap_.alloc_obj(ex_cls, rt_[ex_cls].inst_types);
  SOD_CHECK(r != bc::kNull, "heap exhausted allocating exception");
  if (!msg.empty()) ex_msgs_[r] = std::string(msg);
  return r;
}

std::string VM::exception_message(Ref r) const {
  auto it = ex_msgs_.find(r);
  return it == ex_msgs_.end() ? "" : it->second;
}

Ref VM::intern_pool_string(uint16_t idx) {
  auto it = pool_strings_.find(idx);
  if (it != pool_strings_.end()) return it->second;
  Ref r = heap_.alloc_str(prog_->strings[idx]);
  SOD_CHECK(r != bc::kNull, "heap exhausted interning string");
  pool_strings_[idx] = r;
  return r;
}

bool VM::dispatch_exception(GuestThread& th, Ref ex, uint32_t throw_pc) {
  uint16_t ex_cls = heap_.obj(ex).cls;
  uint32_t look = throw_pc;
  while (!th.frames.empty()) {
    Frame& f = th.frames.back();
    const Method& m = prog_->method(f.method);
    for (const auto& e : m.ex_table) {
      if (look >= e.from_pc && look < e.to_pc &&
          (e.ex_class == bc::kAnyClass || e.ex_class == ex_cls)) {
        f.ostack.clear();
        f.ostack.push_back(Value::of_ref(ex));
        f.pc = e.handler_pc;
        return true;
      }
    }
    th.frames.pop_back();
    if (!th.frames.empty()) {
      // Caller's pc is the return address; the INVOKE instruction that is
      // conceptually "throwing" sits just before it.
      look = th.frames.back().pc - 1;
    }
  }
  th.status = ThreadStatus::Crashed;
  th.uncaught = ex;
  return false;
}

void VM::raise_in_thread(int tid, uint16_t ex_cls, std::string_view msg) {
  GuestThread& th = thread(tid);
  SOD_CHECK(th.status == ThreadStatus::Ready && !th.frames.empty(),
            "raise_in_thread on non-runnable thread");
  Ref ex = make_exception(ex_cls, msg);
  dispatch_exception(th, ex, th.frames.back().pc);
}

RunResult VM::run(int tid, uint64_t budget) {
  GuestThread& th = thread(tid);
  if (th.status == ThreadStatus::Done) return {StopReason::Done, 0};
  if (th.status == ThreadStatus::Crashed) return {StopReason::Crashed, 0};
  return loop(th, budget);
}

// Dispatch plumbing shared by both interpreter modes.  Handlers are written
// once; VM_LABEL expands to a goto label (direct-threaded) or a case label
// (switch loop), and every handler ends in VM_NEXT()/VM_JUMP() instead of
// falling through.  Frame-changing ops (INVOKE, RETURN..., THROW, pending
// exceptions) always re-enter through vm_top, which runs the full prologue:
// budget, pause/breakpoint/safepoint checks, and frame re-seating.  The fast
// path between straight-line instructions skips all of that and only
// re-checks the flags that could have been set by the handler itself.
#if SOD_COMPUTED_GOTO
#define VM_LABEL(name) h_##name
#define VM_DISPATCH_FAST()                                        \
  do {                                                            \
    if (executed >= budget || pause_req_ || debug_) goto vm_top;  \
    pc = f->pc;                                                   \
    in = bc::decode(m->code, pc);                                 \
    next = pc + in.size;                                          \
    ++executed;                                                   \
    ++instrs_;                                                    \
    goto* kJump[static_cast<size_t>(in.op)];                      \
  } while (0)
#define VM_NEXT()          \
  do {                     \
    f->pc = next;          \
    VM_DISPATCH_FAST();    \
  } while (0)
#define VM_JUMP(target)    \
  do {                     \
    f->pc = (target);      \
    VM_DISPATCH_FAST();    \
  } while (0)
#else
#define VM_LABEL(name) case Op::name
#define VM_NEXT()   \
  do {              \
    f->pc = next;   \
    goto vm_top;    \
  } while (0)
#define VM_JUMP(target)  \
  do {                   \
    f->pc = (target);    \
    goto vm_top;         \
  } while (0)
#endif

RunResult VM::loop(GuestThread& th, uint64_t budget) {
  uint64_t executed = 0;
  const Program& P = *prog_;

  Frame* f = nullptr;
  const Method* m = nullptr;
  uint32_t pc = 0;
  uint32_t next = 0;
  Instr in{};

  auto push = [&](Value v) { f->ostack.push_back(v); };
  auto pop = [&]() {
    Value v = f->ostack.back();
    f->ostack.pop_back();
    return v;
  };

#define THROW_GUEST(cls, msg)            \
  do {                                   \
    throw_guest((cls), (msg));           \
    goto handle_pending;                 \
  } while (0)

#if SOD_COMPUTED_GOTO
  // One entry per opcode, in bc::Op declaration order.
  static const void* const kJump[] = {
      &&h_NOP,        &&h_ICONST,     &&h_DCONST,     &&h_ACONST_NULL, &&h_LDC_STR,
      &&h_ILOAD,      &&h_DLOAD,      &&h_ALOAD,      &&h_ISTORE,      &&h_DSTORE,
      &&h_ASTORE,     &&h_POP,        &&h_DUP,        &&h_SWAP,        &&h_IADD,
      &&h_ISUB,       &&h_IMUL,       &&h_IDIV,       &&h_IREM,        &&h_INEG,
      &&h_ISHL,       &&h_ISHR,       &&h_IAND,       &&h_IOR,         &&h_IXOR,
      &&h_DADD,       &&h_DSUB,       &&h_DMUL,       &&h_DDIV,        &&h_DNEG,
      &&h_I2D,        &&h_D2I,        &&h_DCMP,       &&h_GOTO,        &&h_IFEQ,
      &&h_IFNE,       &&h_IFLT,       &&h_IFLE,       &&h_IFGT,        &&h_IFGE,
      &&h_IF_ICMPEQ,  &&h_IF_ICMPNE,  &&h_IF_ICMPLT,  &&h_IF_ICMPLE,   &&h_IF_ICMPGT,
      &&h_IF_ICMPGE,  &&h_IFNULL,     &&h_IFNONNULL,  &&h_LOOKUPSWITCH, &&h_GETFIELD,
      &&h_PUTFIELD,   &&h_GETSTATIC,  &&h_PUTSTATIC,  &&h_NEW,         &&h_NEWARRAY,
      &&h_IALOAD,     &&h_IASTORE,    &&h_DALOAD,     &&h_DASTORE,     &&h_AALOAD,
      &&h_AASTORE,    &&h_ARRAYLEN,   &&h_INVOKE,     &&h_INVOKENATIVE, &&h_RETURN,
      &&h_IRETURN,    &&h_DRETURN,    &&h_ARETURN,    &&h_THROW,
  };
  static_assert(sizeof(kJump) / sizeof(kJump[0]) == static_cast<size_t>(bc::kNumOps),
                "jump table out of sync with bc::Op");
#endif

vm_top:
  if (executed >= budget) return {StopReason::Budget, executed};
  if (th.frames.empty()) goto vm_done;

  f = &th.frames.back();
  m = &P.method(f->method);
  pc = f->pc;

  if (pause_req_) {
    pause_req_ = false;
    return {StopReason::Trap, executed};
  }
  if (debug_) {
    if (!th.resume_skip_bp && bps_.count(bp_key(f->method, pc))) {
      th.resume_skip_bp = true;
      return {StopReason::Breakpoint, executed};
    }
    th.resume_skip_bp = false;
    if (safepoint_req_ && m->is_stmt_start(pc) && f->ostack.empty()) {
      return {StopReason::SafePoint, executed};
    }
  }

  in = bc::decode(m->code, pc);
  next = pc + in.size;
  ++executed;
  ++instrs_;

#if SOD_COMPUTED_GOTO
  goto* kJump[static_cast<size_t>(in.op)];
#else
  switch (in.op) {
#endif

  VM_LABEL(NOP) : VM_NEXT();

  VM_LABEL(ICONST) : push(Value::of_i64(in.imm_i)); VM_NEXT();
  VM_LABEL(DCONST) : push(Value::of_f64(in.imm_d)); VM_NEXT();
  VM_LABEL(ACONST_NULL) : push(Value::null()); VM_NEXT();
  VM_LABEL(LDC_STR) : push(Value::of_ref(intern_pool_string(static_cast<uint16_t>(in.arg)))); VM_NEXT();

  VM_LABEL(ILOAD) :
  VM_LABEL(DLOAD) :
  VM_LABEL(ALOAD) : push(f->locals[in.arg]); VM_NEXT();
  VM_LABEL(ISTORE) :
  VM_LABEL(DSTORE) :
  VM_LABEL(ASTORE) : f->locals[in.arg] = pop(); VM_NEXT();

  VM_LABEL(POP) : f->ostack.pop_back(); VM_NEXT();
  VM_LABEL(DUP) : push(f->ostack.back()); VM_NEXT();
  VM_LABEL(SWAP) : std::swap(f->ostack[f->ostack.size() - 1], f->ostack[f->ostack.size() - 2]); VM_NEXT();

  VM_LABEL(IADD) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a + b)); VM_NEXT(); }
  VM_LABEL(ISUB) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a - b)); VM_NEXT(); }
  VM_LABEL(IMUL) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a * b)); VM_NEXT(); }
  VM_LABEL(IDIV) : {
    int64_t b = pop().i, a = pop().i;
    if (b == 0) THROW_GUEST(bc::builtin::kArithmetic, "/ by zero");
    // INT64_MIN / -1 wraps to INT64_MIN (Java semantics); negate via
    // unsigned so the wrap is defined instead of UB.
    push(Value::of_i64(b == -1 ? static_cast<int64_t>(-static_cast<uint64_t>(a)) : a / b));
    VM_NEXT();
  }
  VM_LABEL(IREM) : {
    int64_t b = pop().i, a = pop().i;
    if (b == 0) THROW_GUEST(bc::builtin::kArithmetic, "% by zero");
    push(Value::of_i64(b == -1 ? 0 : a % b));
    VM_NEXT();
  }
  // Negate via unsigned so INT64_MIN wraps to itself (Java semantics)
  // instead of being signed-overflow UB.
  VM_LABEL(INEG) : { int64_t a = pop().i; push(Value::of_i64(static_cast<int64_t>(-static_cast<uint64_t>(a)))); VM_NEXT(); }
  VM_LABEL(ISHL) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a << (b & 63))); VM_NEXT(); }
  VM_LABEL(ISHR) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a >> (b & 63))); VM_NEXT(); }
  VM_LABEL(IAND) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a & b)); VM_NEXT(); }
  VM_LABEL(IOR) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a | b)); VM_NEXT(); }
  VM_LABEL(IXOR) : { int64_t b = pop().i, a = pop().i; push(Value::of_i64(a ^ b)); VM_NEXT(); }

  VM_LABEL(DADD) : { double b = pop().d, a = pop().d; push(Value::of_f64(a + b)); VM_NEXT(); }
  VM_LABEL(DSUB) : { double b = pop().d, a = pop().d; push(Value::of_f64(a - b)); VM_NEXT(); }
  VM_LABEL(DMUL) : { double b = pop().d, a = pop().d; push(Value::of_f64(a * b)); VM_NEXT(); }
  VM_LABEL(DDIV) : { double b = pop().d, a = pop().d; push(Value::of_f64(a / b)); VM_NEXT(); }
  VM_LABEL(DNEG) : { double a = pop().d; push(Value::of_f64(-a)); VM_NEXT(); }

  VM_LABEL(I2D) : { int64_t a = pop().i; push(Value::of_f64(static_cast<double>(a))); VM_NEXT(); }
  VM_LABEL(D2I) : { double a = pop().d; push(Value::of_i64(static_cast<int64_t>(a))); VM_NEXT(); }
  VM_LABEL(DCMP) : {
    double b = pop().d, a = pop().d;
    push(Value::of_i64(a < b ? -1 : (a > b ? 1 : 0)));
    VM_NEXT();
  }

  VM_LABEL(GOTO) : VM_JUMP(in.arg);
  VM_LABEL(IFEQ) : { if (pop().i == 0) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFNE) : { if (pop().i != 0) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFLT) : { if (pop().i < 0) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFLE) : { if (pop().i <= 0) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFGT) : { if (pop().i > 0) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFGE) : { if (pop().i >= 0) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IF_ICMPEQ) : { int64_t b = pop().i, a = pop().i; if (a == b) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IF_ICMPNE) : { int64_t b = pop().i, a = pop().i; if (a != b) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IF_ICMPLT) : { int64_t b = pop().i, a = pop().i; if (a < b) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IF_ICMPLE) : { int64_t b = pop().i, a = pop().i; if (a <= b) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IF_ICMPGT) : { int64_t b = pop().i, a = pop().i; if (a > b) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IF_ICMPGE) : { int64_t b = pop().i, a = pop().i; if (a >= b) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFNULL) : { if (pop().r == bc::kNull) VM_JUMP(in.arg); VM_NEXT(); }
  VM_LABEL(IFNONNULL) : { if (pop().r != bc::kNull) VM_JUMP(in.arg); VM_NEXT(); }

  VM_LABEL(LOOKUPSWITCH) : {
    int64_t key = pop().i;
    bc::SwitchInfo si = bc::decode_switch(m->code, pc);
    uint32_t tgt = si.default_target;
    for (auto& [k, t] : si.pairs)
      if (k == key) {
        tgt = t;
        break;
      }
    VM_JUMP(tgt);
  }

  VM_LABEL(GETFIELD) : {
    const bc::Field& fd = P.field(static_cast<uint16_t>(in.arg));
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r))
      THROW_GUEST(bc::builtin::kNullPointer, fd.name);
    push(heap_.obj(r).fields[fd.slot]);
    VM_NEXT();
  }
  VM_LABEL(PUTFIELD) : {
    const bc::Field& fd = P.field(static_cast<uint16_t>(in.arg));
    Value v = pop();
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r))
      THROW_GUEST(bc::builtin::kNullPointer, fd.name);
    heap_.obj(r).fields[fd.slot] = v;
    VM_NEXT();
  }
  VM_LABEL(GETSTATIC) : {
    const bc::Field& fd = P.field(static_cast<uint16_t>(in.arg));
    ensure_loaded(fd.owner);
    push(rt_[fd.owner].statics[fd.slot]);
    VM_NEXT();
  }
  VM_LABEL(PUTSTATIC) : {
    const bc::Field& fd = P.field(static_cast<uint16_t>(in.arg));
    ensure_loaded(fd.owner);
    rt_[fd.owner].statics[fd.slot] = pop();
    VM_NEXT();
  }

  VM_LABEL(NEW) : {
    uint16_t cid = static_cast<uint16_t>(in.arg);
    ensure_loaded(cid);
    Ref r = heap_.alloc_obj(cid, rt_[cid].inst_types);
    if (r == bc::kNull) THROW_GUEST(bc::builtin::kOutOfMemory, P.cls(cid).name);
    push(Value::of_ref(r));
    VM_NEXT();
  }
  VM_LABEL(NEWARRAY) : {
    int64_t n = pop().i;
    if (n < 0) THROW_GUEST(bc::builtin::kIndexOutOfBounds, "negative array size");
    Ref r;
    switch (static_cast<Ty>(in.arg)) {
      case Ty::I64: r = heap_.alloc_arr_i(static_cast<size_t>(n)); break;
      case Ty::F64: r = heap_.alloc_arr_d(static_cast<size_t>(n)); break;
      case Ty::Ref: r = heap_.alloc_arr_r(static_cast<size_t>(n)); break;
      default: SOD_UNREACHABLE("bad array type");
    }
    if (r == bc::kNull) THROW_GUEST(bc::builtin::kOutOfMemory, "array");
    push(Value::of_ref(r));
    VM_NEXT();
  }

  VM_LABEL(IALOAD) : {
    int64_t i = pop().i;
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "iaload");
    auto& a = heap_.arr_i(r);
    if (i < 0 || static_cast<size_t>(i) >= a.v.size())
      THROW_GUEST(bc::builtin::kIndexOutOfBounds, "iaload");
    push(Value::of_i64(a.v[static_cast<size_t>(i)]));
    VM_NEXT();
  }
  VM_LABEL(IASTORE) : {
    int64_t v = pop().i;
    int64_t i = pop().i;
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "iastore");
    auto& a = heap_.arr_i(r);
    if (i < 0 || static_cast<size_t>(i) >= a.v.size())
      THROW_GUEST(bc::builtin::kIndexOutOfBounds, "iastore");
    a.v[static_cast<size_t>(i)] = v;
    VM_NEXT();
  }
  VM_LABEL(DALOAD) : {
    int64_t i = pop().i;
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "daload");
    auto& a = heap_.arr_d(r);
    if (i < 0 || static_cast<size_t>(i) >= a.v.size())
      THROW_GUEST(bc::builtin::kIndexOutOfBounds, "daload");
    push(Value::of_f64(a.v[static_cast<size_t>(i)]));
    VM_NEXT();
  }
  VM_LABEL(DASTORE) : {
    double v = pop().d;
    int64_t i = pop().i;
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "dastore");
    auto& a = heap_.arr_d(r);
    if (i < 0 || static_cast<size_t>(i) >= a.v.size())
      THROW_GUEST(bc::builtin::kIndexOutOfBounds, "dastore");
    a.v[static_cast<size_t>(i)] = v;
    VM_NEXT();
  }
  VM_LABEL(AALOAD) : {
    int64_t i = pop().i;
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "aaload");
    auto& a = heap_.arr_r(r);
    if (i < 0 || static_cast<size_t>(i) >= a.v.size())
      THROW_GUEST(bc::builtin::kIndexOutOfBounds, "aaload");
    push(Value::of_ref(a.v[static_cast<size_t>(i)]));
    VM_NEXT();
  }
  VM_LABEL(AASTORE) : {
    Ref v = pop().r;
    int64_t i = pop().i;
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "aastore");
    auto& a = heap_.arr_r(r);
    if (i < 0 || static_cast<size_t>(i) >= a.v.size())
      THROW_GUEST(bc::builtin::kIndexOutOfBounds, "aastore");
    a.v[static_cast<size_t>(i)] = v;
    VM_NEXT();
  }
  VM_LABEL(ARRAYLEN) : {
    Ref r = pop().r;
    if (r == bc::kNull || heap_.is_stub(r)) THROW_GUEST(bc::builtin::kNullPointer, "arraylen");
    const Cell& c = heap_.cell(r);
    size_t n = 0;
    if (const auto* ai = std::get_if<ArrICell>(&c)) n = ai->v.size();
    else if (const auto* ad = std::get_if<ArrDCell>(&c)) n = ad->v.size();
    else if (const auto* ar = std::get_if<ArrRCell>(&c)) n = ar->v.size();
    else if (const auto* s = std::get_if<StrCell>(&c)) n = s->s.size();
    else SOD_UNREACHABLE("arraylen of non-array");
    push(Value::of_i64(static_cast<int64_t>(n)));
    VM_NEXT();
  }

  VM_LABEL(INVOKE) : {
    uint16_t mid = static_cast<uint16_t>(in.arg);
    const Method& callee = P.method(mid);
    SOD_CHECK(!callee.code.empty(), "invoke of bodyless method " + callee.name);
    if (th.frames.size() >= cfg_.max_frames)
      SOD_UNREACHABLE("guest stack overflow in " + callee.name);
    ensure_loaded(callee.owner);
    f->pc = next;  // return address
    Frame nf = make_frame(mid);
    for (size_t i = callee.params.size(); i-- > 0;) {
      nf.locals[i] = f->ostack.back();
      f->ostack.pop_back();
    }
    th.frames.push_back(std::move(nf));
    goto vm_top;
  }

  VM_LABEL(INVOKENATIVE) : {
    const bc::NativeDecl& nd = P.natives[in.arg];
    const NativeFn* fn = natives_ ? natives_->find(nd.name) : nullptr;
    SOD_CHECK(fn, "unbound native: " + nd.name);
    size_t np = nd.params.size();
    std::vector<Value> args(np);
    for (size_t i = np; i-- > 0;) {
      args[i] = f->ostack.back();
      f->ostack.pop_back();
    }
    native_frame_ = f;
    native_tid_ = th.id;
    Value ret = (*fn)(*this, args);
    native_frame_ = nullptr;
    native_tid_ = -1;
    if (pending_) goto handle_pending;
    if (nd.ret != Ty::Void) {
      SOD_CHECK(ret.tag == nd.ret, "native returned wrong type: " + nd.name);
      // Re-acquire the frame: the native may have grown this thread's
      // heap but frames vector is stable (natives cannot push frames).
      th.frames.back().ostack.push_back(ret);
    }
    f->pc = next;
    goto vm_top;
  }

  VM_LABEL(RETURN) :
  VM_LABEL(IRETURN) :
  VM_LABEL(DRETURN) :
  VM_LABEL(ARETURN) : {
    Value rv{};
    bool has = in.op != Op::RETURN;
    if (has) rv = pop();
    th.frames.pop_back();
    if (th.frames.empty()) {
      th.status = ThreadStatus::Done;
      th.result = rv;
      return {StopReason::Done, executed};
    }
    if (has) th.frames.back().ostack.push_back(rv);
    goto vm_top;
  }

  VM_LABEL(THROW) : {
    Ref ex = pop().r;
    if (ex == bc::kNull || heap_.is_stub(ex))
      THROW_GUEST(bc::builtin::kNullPointer, "throw null");
    if (!dispatch_exception(th, ex, pc)) return {StopReason::Crashed, executed};
    goto vm_top;
  }

#if !SOD_COMPUTED_GOTO
  case Op::kOpCount_: SOD_UNREACHABLE("bad opcode");
  }
  SOD_UNREACHABLE("fell out of dispatch switch");
#endif

handle_pending: {
  SOD_CHECK(pending_, "handle_pending without pending exception");
  pending_ = false;
  Ref ex = make_exception(pending_cls_, pending_msg_);
  Frame& hf = th.frames.back();
  if (!dispatch_exception(th, ex, hf.pc)) return {StopReason::Crashed, executed};
  goto vm_top;
}

#undef THROW_GUEST
#undef VM_LABEL
#undef VM_NEXT
#undef VM_JUMP
#if SOD_COMPUTED_GOTO
#undef VM_DISPATCH_FAST
#endif

vm_done:
  th.status = ThreadStatus::Done;
  return {StopReason::Done, 0};
}

}  // namespace sod::svm
