// Standard native library available to guest programs: console output
// (captured in a buffer so tests can assert on it), math functions used by
// the FFT workload, and string helpers used by the search workloads.
//
// Deliberately small: anything environment-specific (file system, object
// manager, captured-state readers) is registered by that environment on
// top of these (sfs::, sod::).
#pragma once

#include <string>

#include "svm/vm.h"

namespace sod::bc {
class ProgramBuilder;
}

namespace sod::svm {

/// Declare the stdlib native signatures in a program (must be called while
/// building, before code references them).
void declare_stdlib(bc::ProgramBuilder& pb);

/// Host-side stdlib state: console buffer.
class StdLib {
 public:
  /// Bind stdlib natives into `reg`; `this` must outlive the registry use.
  void install(NativeRegistry& reg);

  /// Everything guest code printed via sys.print*.
  const std::string& out() const { return out_; }
  void clear() { out_.clear(); }

  /// Also echo prints to stdout (off by default; examples turn it on).
  bool echo = false;

 private:
  std::string out_;
};

}  // namespace sod::svm
