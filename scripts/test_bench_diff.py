#!/usr/bin/env python3
"""Self-test for bench_diff.py (stdlib unittest only; CI runs it before
trusting bench_diff with the real BENCH_*.json artifacts).

    python3 scripts/test_bench_diff.py
"""

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import bench_diff  # noqa: E402


def table(columns, rows):
    return {"bench": "t", "schema_version": 1, "columns": columns, "rows": rows}


def run_diff(old, new, threshold=0.10):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        found = list(bench_diff.diff_table("BENCH_t.json", old, new, threshold))
    return found, out.getvalue()


class DiffTableTest(unittest.TestCase):
    def test_identical_tables_are_clean(self):
        t = table(["cfg", "ms"], [["a", "1.5"], ["b", "2.0"]])
        found, _ = run_diff(t, t)
        self.assertEqual(found, [])

    def test_regression_and_improvement_past_threshold(self):
        old = table(["cfg", "ms"], [["a", "100"], ["b", "100"], ["c", "100"]])
        new = table(["cfg", "ms"], [["a", "120"], ["b", "85"], ["c", "105"]])
        found, _ = run_diff(old, new)
        kinds = {msg.split(" [")[1][0]: kind for kind, msg in found}
        self.assertEqual(kinds, {"a": "regression", "b": "improvement"})  # c within 10%

    def test_new_columns_are_informational_not_blocking(self):
        # The percentile-column rollout shape: new table appends p50/p95/p99
        # with no baseline.  No regression may fire, but the pre-existing
        # column (wildly regressed) must still gate.
        old = table(["cfg", "ms"], [["a", "10"]])
        new = table(["cfg", "ms", "p50 ms", "p99 ms"], [["a", "10", "999", "9999"]])
        found, out = run_diff(old, new)
        self.assertEqual(found, [])
        self.assertIn("new column (no baseline, informational)", out)
        self.assertIn("p50 ms, p99 ms", out)

    def test_columns_match_by_name_across_reordering(self):
        # A column inserted in the middle shifts every index after it; the
        # by-name match must keep comparing ms against ms (regressed), and
        # treat the inserted column as baseline-less.
        old = table(["cfg", "ms", "segs"], [["a", "100", "7"]])
        new = table(["cfg", "p50 ms", "ms", "segs"], [["a", "55", "150", "7"]])
        found, _ = run_diff(old, new)
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0][0], "regression")
        self.assertIn("ms: 100 -> 150", found[0][1])

    def test_wall_and_ns_columns_are_skipped(self):
        old = table(["cfg", "wall_ms", "setup_ns"], [["a", "1", "1"]])
        new = table(["cfg", "wall_ms", "setup_ns"], [["a", "900", "900"]])
        found, _ = run_diff(old, new)
        self.assertEqual(found, [])

    def test_zero_baseline_growth_is_a_regression(self):
        old = table(["cfg", "faults"], [["a", "0"]])
        new = table(["cfg", "faults"], [["a", "3"]])
        found, _ = run_diff(old, new)
        self.assertEqual(found[0][0], "regression")
        self.assertIn("from zero baseline", found[0][1])

    def test_non_numeric_cells_are_ignored(self):
        old = table(["cfg", "mode"], [["a", "fast"]])
        new = table(["cfg", "mode"], [["a", "slow"]])
        found, _ = run_diff(old, new)
        self.assertEqual(found, [])


class MainTest(unittest.TestCase):
    def write(self, dir_path, name, tbl):
        (pathlib.Path(dir_path) / name).write_text(json.dumps(tbl), encoding="utf-8")

    def run_main(self, *argv):
        out = io.StringIO()
        with mock.patch.object(sys, "argv", ["bench_diff.py", *argv]):
            with contextlib.redirect_stdout(out):
                code = bench_diff.main()
        return code, out.getvalue()

    def test_strict_gates_only_on_regressions(self):
        with tempfile.TemporaryDirectory() as old_d, tempfile.TemporaryDirectory() as new_d:
            self.write(old_d, "BENCH_x.json", table(["cfg", "ms"], [["a", "100"]]))
            self.write(new_d, "BENCH_x.json", table(["cfg", "ms"], [["a", "200"]]))
            code, out = self.run_main(old_d, new_d)
            self.assertEqual(code, 0)  # non-strict always flags, never blocks
            self.assertIn("REGRESSION", out)
            code, _ = self.run_main(old_d, new_d, "--strict")
            self.assertEqual(code, 1)

    def test_new_bench_and_new_columns_pass_strict(self):
        # First appearance of a bench, and first appearance of percentile
        # columns on an existing bench: informational even under --strict.
        with tempfile.TemporaryDirectory() as old_d, tempfile.TemporaryDirectory() as new_d:
            self.write(old_d, "BENCH_x.json", table(["cfg", "ms"], [["a", "100"]]))
            self.write(new_d, "BENCH_x.json",
                       table(["cfg", "ms", "p99 ms"], [["a", "101", "500"]]))
            self.write(new_d, "BENCH_multitenant.json",
                       table(["config", "p99 ms"], [["poisson/spec", "1006.159"]]))
            code, out = self.run_main(old_d, new_d, "--strict")
            self.assertEqual(code, 0)
            self.assertIn("new bench (no baseline): BENCH_multitenant.json", out)
            self.assertIn("new column (no baseline, informational)", out)


if __name__ == "__main__":
    unittest.main()
