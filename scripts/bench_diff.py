#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json files and flag regressions.

Usage:
    bench_diff.py OLD_DIR NEW_DIR [--threshold 0.10] [--strict]

Every bench table is the schema-stable JSON emitted by Table::json:

    {"bench": <name>, "schema_version": 1,
     "columns": [...], "rows": [[...], ...]}

Rows are keyed by their first cell; numeric cells are compared per
(bench, row key, column).  The virtual-time benches are deterministic, so
any numeric drift is a real behavioral change: a value that grew by more
than the threshold is reported as a regression (with a GitHub ::warning::
annotation so CI surfaces it on the run), a value that shrank by more
than the threshold as an improvement.  --strict exits 1 when regressions
were found; without it the script always exits 0 so CI flags rather than
blocks.
"""

import argparse
import json
import pathlib
import sys


def load_tables(dir_path):
    """BENCH_*.json files under dir_path (recursively), keyed by filename."""
    tables = {}
    for path in sorted(pathlib.Path(dir_path).rglob("BENCH_*.json")):
        try:
            with open(path, encoding="utf-8") as f:
                tables[path.name] = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: skipping unreadable {path}: {e}", file=sys.stderr)
    return tables


def as_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def diff_table(name, old, new, threshold):
    """Yields (kind, message) tuples; kind is 'regression' or 'improvement'.

    Columns are matched by NAME, not index, so a bench may append or
    reorder columns without desynchronizing every comparison after the
    insertion point.  A column present only in the new table (e.g. a
    freshly added percentile) has no baseline: it is reported as
    informational and never counted as a regression — it starts gating on
    the next baseline refresh, when both sides carry it.
    """
    old_cols = old.get("columns", [])
    new_cols = new.get("columns", [])
    old_idx = {}
    for i, col in enumerate(old_cols):
        if col in old_idx:
            print(f"bench_diff: {name} has duplicate column '{col}' in the old table; "
                  "comparisons for it may be wrong", file=sys.stderr)
        else:
            old_idx[col] = i
    added = [c for c in new_cols[1:] if c not in old_idx]
    if added:
        print(f"new column (no baseline, informational): {name}: {', '.join(added)}")
    dropped = [c for c in old_cols[1:] if c not in new_cols]
    if dropped:
        print(f"column disappeared: {name}: {', '.join(dropped)}")
    old_rows = {}
    for row in old.get("rows", []):
        if not row:
            continue
        if row[0] in old_rows:
            print(f"bench_diff: {name} has duplicate row key '{row[0]}'; "
                  "comparisons for it may be wrong", file=sys.stderr)
        old_rows[row[0]] = row
    seen_new = set()
    for row in new.get("rows", []):
        if not row:
            continue
        if row[0] in seen_new:
            print(f"bench_diff: {name} has duplicate row key '{row[0]}' in the new table; "
                  "comparisons for it may be wrong", file=sys.stderr)
        seen_new.add(row[0])
        if row[0] not in old_rows:
            continue
        old_row = old_rows[row[0]]
        for i, cell in enumerate(row):
            if i == 0 or i >= len(new_cols):
                continue
            col = new_cols[i]
            if col.startswith("wall_") or col.endswith("_ns"):
                # Wall-clock timings are machine- and load-dependent; only
                # the virtual-time columns are deterministic enough to gate.
                continue
            j = old_idx.get(col)
            if j is None or j >= len(old_row):
                continue  # no baseline cell for this column
            old_v, new_v = as_number(old_row[j]), as_number(cell)
            if old_v is None or new_v is None or old_v < 0:
                continue
            where = f"{name} [{row[0]}] {col}: {old_row[j]} -> {cell}"
            if old_v == 0:
                if new_v > 0:
                    yield "regression", f"{where} (from zero baseline)"
                continue
            ratio = new_v / old_v - 1.0
            if ratio > threshold:
                yield "regression", f"{where} (+{ratio:.1%})"
            elif ratio < -threshold:
                yield "improvement", f"{where} ({ratio:.1%})"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old_dir")
    ap.add_argument("new_dir")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative change that counts as a regression (default 0.10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when regressions are found")
    args = ap.parse_args()

    old_tables = load_tables(args.old_dir)
    new_tables = load_tables(args.new_dir)
    if not old_tables:
        print(f"bench_diff: no BENCH_*.json under {args.old_dir}; nothing to compare")
        return 0
    if not new_tables:
        print(f"bench_diff: no BENCH_*.json under {args.new_dir}; nothing to compare",
              file=sys.stderr)
        return 1

    regressions, improvements = [], []
    for name in sorted(new_tables):
        if name not in old_tables:
            print(f"new bench (no baseline): {name}")
            continue
        for kind, msg in diff_table(name, old_tables[name], new_tables[name], args.threshold):
            (regressions if kind == "regression" else improvements).append(msg)
    for name in sorted(set(old_tables) - set(new_tables)):
        print(f"bench disappeared: {name}")

    for msg in improvements:
        print(f"improvement: {msg}")
    for msg in regressions:
        print(f"REGRESSION: {msg}")
        print(f"::warning title=bench regression::{msg}")
    print(f"bench_diff: {len(new_tables)} bench(es) compared, "
          f"{len(regressions)} regression(s), {len(improvements)} improvement(s) "
          f"beyond {args.threshold:.0%}")
    return 1 if args.strict and regressions else 0


if __name__ == "__main__":
    sys.exit(main())
