// Wall-clock engine: the Fib workload on a heterogeneous all-wifi
// topology — a Xeon, a 2x-slower edge box, and a 25x-slower device, each
// behind a different-grade wifi link — run on the WallClockEngine thread
// pool at 1, 2, and 4 pool threads, with the virtual-time Scheduler as the
// deterministic reference row.
//
// Each round ships three segments whose restore sleeps (5-9 ms of modelled
// wifi transfer each) serialize on a 1-thread pool but overlap on >= 3
// threads, so the 4-thread wall mean must land strictly below the 1-thread
// wall mean — measured freeze-time hiding on real cores.  Meanwhile the
// virtual columns are the determinism gate: every thread count must
// reproduce the Scheduler's virtual completion times bit-identically, the
// same write-back payload bytes, the same application result, and an
// attempt-aware exactly-once event log.
//
// The wall_* columns are wall-clock measurements and vary run to run;
// scripts/bench_diff.py skips them (and any *_ns column) when gating.
// Each engine row also reports the home stripe-lock telemetry (lock_acq
// is deterministic for a failure-free run; the wait-side counters are
// wall-side and exempt) — see the home_shards bench for the full sweep.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "cluster/wallclock.h"
#include "prep/prep.h"
#include "support/table.h"

using namespace sod;

namespace {

constexpr int kSegmentsPerRound = 3;

struct RunRec {
  int segments = 0;
  std::vector<int64_t> virt_completed_ns;  // per segment, all rounds, in order
  double virt_mean_ms = 0;
  double virt_total_ms = 0;
  double wall_mean_ms = 0;   // wall engine only; 0 for the virtual reference
  double wall_total_ms = 0;
  size_t writeback_bytes = 0;
  mig::ShardContention lock;  // home stripe telemetry, wall engine only
  bool ok = false;
  bool exactly_once = true;
};

/// Runs the fib rounds once: threads == 0 on the virtual-time Scheduler,
/// threads > 0 on a WallClockEngine pool of that size.
RunRec run_once(int threads, int rounds) {
  const apps::AppSpec spec = apps::fib_app();
  bc::Program p = spec.build();
  prep::preprocess_program(p);

  cluster::Cluster c(p);
  mig::SodNode::Config edge;
  edge.cpu_scale = 2.0;
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
  c.add_worker({"xeon", {}, sim::Link::wifi_kbps(8000)});
  c.add_worker({"edge", edge, sim::Link::wifi_kbps(4000)});
  c.add_worker({"device", dev, sim::Link::wifi_kbps(2000)});

  auto policy = cluster::make_policy(cluster::PolicyKind::LeastLoaded);
  std::unique_ptr<cluster::Scheduler> sched;
  std::unique_ptr<cluster::WallClockEngine> engine;
  if (threads > 0) {
    cluster::WallClockOptions wopt;
    wopt.threads = threads;
    engine = std::make_unique<cluster::WallClockEngine>(c, *policy, wopt);
  } else {
    sched = std::make_unique<cluster::Scheduler>(c, *policy, cluster::DispatchOptions{});
  }

  uint16_t trigger = p.find_method(spec.trigger_method);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);

  RunRec rec;
  double virt_sum_ms = 0;
  double wall_sum_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    if (!mig::pause_at_depth(c.home(), tid, trigger, kSegmentsPerRound + 4)) break;
    VDur round_start = c.home_now();
    auto specs = cluster::split_top_frames(kSegmentsPerRound);
    auto out = engine ? engine->run(tid, specs) : sched->run(tid, specs);
    c.home().ti().set_debug_enabled(false);
    rec.writeback_bytes += out.writeback_bytes;
    for (const auto& pl : out.placements) {
      ++rec.segments;
      virt_sum_ms += (pl.completed_at - round_start).ms();
      rec.virt_completed_ns.push_back(pl.completed_at.ns);
    }
    if (engine) {
      for (double w : engine->last_completed_wall_ms()) wall_sum_ms += w;
      rec.wall_total_ms += engine->last_round_wall_ms();
    }
  }
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  rec.ok = rr.reason == svm::StopReason::Done &&
           c.home().vm().thread(tid).result.as_i64() == spec.bench_expected;
  rec.exactly_once = engine ? engine->exactly_once() : sched->exactly_once();
  if (engine) rec.lock = engine->total_contention();
  rec.virt_total_ms = c.home().node().clock.now().ms();
  if (rec.segments > 0) {
    rec.virt_mean_ms = virt_sum_ms / rec.segments;
    rec.wall_mean_ms = wall_sum_ms / rec.segments;
  }
  return rec;
}

int run(const cli::ScenarioOptions& opt) {
  int rounds = opt.smoke ? 3 : 5;
  std::printf("=== wallclock: Xeon + edge + device behind wifi, %d segment(s)/round ===\n",
              kSegmentsPerRound);

  Table t({"mode", "segments", "virt_mean_ms", "virt_total_ms", "wall_mean_ms",
           "wall_total_ms", "lock_acq", "wall_contended", "lock_wait_ns",
           "lock_max_wait_ns", "wall_max_queue"});
  RunRec ref = run_once(0, rounds);
  t.row({"virtual", std::to_string(ref.segments), fmt("%.3f", ref.virt_mean_ms),
         fmt("%.3f", ref.virt_total_ms), "-", "-", "-", "-", "-", "-", "-"});

  bool all_ok = ref.ok && ref.exactly_once;
  if (!ref.ok) std::fprintf(stderr, "wallclock: virtual reference run failed\n");

  double wall_mean_1 = -1;
  double wall_mean_4 = -1;
  for (int threads : {1, 2, 4}) {
    RunRec r = run_once(threads, rounds);
    t.row({"threads-" + std::to_string(threads), std::to_string(r.segments),
           fmt("%.3f", r.virt_mean_ms), fmt("%.3f", r.virt_total_ms),
           fmt("%.3f", r.wall_mean_ms), fmt("%.3f", r.wall_total_ms),
           std::to_string(r.lock.acquisitions), std::to_string(r.lock.contended),
           std::to_string(r.lock.wait_ns), std::to_string(r.lock.max_wait_ns),
           std::to_string(r.lock.max_queue)});
    if (!r.ok) {
      std::fprintf(stderr, "wallclock: threads-%d run failed\n", threads);
      all_ok = false;
    }
    if (!r.exactly_once) {
      std::fprintf(stderr, "wallclock: threads-%d log violates exactly-once\n", threads);
      all_ok = false;
    }
    // The determinism contract: the wall run's virtual columns must be
    // bit-identical to the single-threaded virtual scheduler's.
    if (r.virt_completed_ns != ref.virt_completed_ns ||
        r.writeback_bytes != ref.writeback_bytes || r.segments != ref.segments) {
      std::fprintf(stderr,
                   "wallclock: threads-%d diverged from the virtual scheduler "
                   "(virtual completions or write-back bytes differ)\n",
                   threads);
      all_ok = false;
    }
    if (threads == 1) wall_mean_1 = r.wall_mean_ms;
    if (threads == 4) wall_mean_4 = r.wall_mean_ms;
  }
  t.print();

  // The point of the pool: with enough threads the per-round restore
  // sleeps overlap instead of serializing, so wall completion must drop.
  bool faster = wall_mean_4 >= 0 && wall_mean_1 >= 0 && wall_mean_4 < wall_mean_1;
  if (!faster)
    std::fprintf(stderr,
                 "wallclock: 4-thread wall mean (%.3f ms) not below 1-thread wall "
                 "mean (%.3f ms)\n",
                 wall_mean_4, wall_mean_1);
  return (all_ok && faster && cli::maybe_write_json(opt, "wallclock", t)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("wallclock", cli::ScenarioKind::Bench,
                      "wall-clock thread-pool execution vs the virtual-time scheduler: "
                      "overlap speedup with bit-identical virtual columns",
                      run);

}  // namespace
