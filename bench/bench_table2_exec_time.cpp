// Table II — execution time on each system with and without migration.
// JDK column anchors calibration; protocol overheads are emergent (see
// EXPERIMENTS.md for the calibration policy).
#include <cstdio>

#include "cli/smoke.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Table II: execution time (s) with and without migration ===\n");
  Table t({"App", "JDK", "SODEE no-mig", "SODEE mig", "G-JavaMPI no-mig", "G-JavaMPI mig",
           "JESSICA2 no-mig", "JESSICA2 mig", "Xen no-mig", "Xen mig"});
  for (const apps::AppSpec& spec : cli::table1_apps_for(opt)) {
    sodee::MeasuredApp m = sodee::measure_app(spec);
    sodee::OverheadRow r = sodee::overhead_row(m);
    t.row({r.app, fmt("%.2f", r.jdk_s), fmt("%.2f", r.sodee_nomig_s), fmt("%.2f", r.sodee_mig_s),
           fmt("%.2f", r.gj_nomig_s), fmt("%.2f", r.gj_mig_s), fmt("%.2f", r.j2_nomig_s),
           fmt("%.2f", r.j2_mig_s), fmt("%.2f", r.xen_nomig_s), fmt("%.2f", r.xen_mig_s)});
  }
  t.print();
  std::printf(
      "\nPaper reference (s): Fib 12.10/12.13/12.19 | NQ 6.26/6.38/6.41 | "
      "FFT 12.39/12.60/12.71 | TSP 2.92/3.04/3.22 (JDK/SODEE no-mig/mig)\n");
  return cli::maybe_write_json(opt, "table2", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table2", cli::ScenarioKind::Bench,
                      "Table II — execution time per system with/without migration", run);

}  // namespace
