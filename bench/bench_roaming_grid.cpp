// Section IV.C roaming — ten NFS servers each hosting a 300 MB file; the
// search task roams across all ten (paper: 124.3 s -> 36.71 s, 3.39x).
#include <cstdio>

#include "cli/scenario.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  int nservers = opt.nodes > 0 ? opt.nodes : 10;
  size_t file_bytes = 3 << 20;
  if (opt.smoke) {
    if (opt.nodes == 0) nservers = 3;
    file_bytes = 1 << 20;
  }
  std::printf("=== Task roaming over a %d-server grid (doc search) ===\n", nservers);
  auto res = sodee::run_roaming_grid(nservers, file_bytes);
  Table t({"Configuration", "time (s)"});
  t.row({"no migration (all reads over WAN-NFS)", fmt("%.2f", res.no_mig_s)});
  t.row({fmt("SOD roaming (%d hops)", res.hops), fmt("%.2f", res.roaming_s)});
  t.print();
  std::printf("speedup: %.2fx\n", res.speedup());
  std::printf("\nPaper reference: 124.3 s -> 36.71 s, speedup 3.39x.\n");
  return cli::maybe_write_json(opt, "roaming_grid", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("roaming_grid", cli::ScenarioKind::Bench,
                      "Section IV.C — task roaming across a file-server grid", run);

}  // namespace
