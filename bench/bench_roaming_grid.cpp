// Section IV.C roaming — ten NFS servers each hosting a 300 MB file; the
// search task roams across all ten (paper: 124.3 s -> 36.71 s, 3.39x).
#include <cstdio>

#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

int main() {
  std::printf("=== Task roaming over a 10-server grid (doc search) ===\n");
  auto res = sodee::run_roaming_grid();
  Table t({"Configuration", "time (s)"});
  t.row({"no migration (all reads over WAN-NFS)", fmt("%.2f", res.no_mig_s)});
  t.row({fmt("SOD roaming (%d hops)", res.hops), fmt("%.2f", res.roaming_s)});
  t.print();
  std::printf("speedup: %.2fx\n", res.speedup());
  std::printf("\nPaper reference: 124.3 s -> 36.71 s, speedup 3.39x.\n");
  return 0;
}
