// Ablation — on-demand object faulting vs eager heap copy as a function
// of how much of the heap the migrated code actually touches.  This is
// the TSP-vs-FFT crossover of Table III reduced to its essence: a linked
// list of N nodes of which the migrated frame visits the first T.
#include <cstdio>

#include "bytecode/builder.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "support/table.h"

using namespace sod;
using bc::Label;
using bc::Ty;
using bc::Value;
using mig::SodNode;

namespace {

bc::Program touch_program() {
  bc::ProgramBuilder pb;
  auto& nd = pb.cls("Node");
  nd.field("val", Ty::I64);
  nd.field("pad", Ty::Ref);  // payload array to give nodes real weight
  nd.field("next", Ty::Ref);
  auto& m = pb.cls("M");

  auto& bld = m.method("build", {{"n", Ty::I64}}, Ty::Ref);
  uint16_t head = bld.local("head", Ty::Ref);
  uint16_t node = bld.local("node", Ty::Ref);
  uint16_t i = bld.local("i", Ty::I64);
  Label loop = bld.label(), done = bld.label();
  bld.stmt().aconst_null().astore(head);
  bld.stmt().iload("n").istore(i);
  bld.bind(loop).stmt().iload(i).iconst(1).if_icmplt(done);
  bld.stmt().new_("Node").astore(node);
  bld.stmt().aload(node).iload(i).putfield("Node.val");
  bld.stmt().aload(node).iconst(64).newarray(Ty::I64).putfield("Node.pad");
  bld.stmt().aload(node).aload(head).putfield("Node.next");
  bld.stmt().aload(node).astore(head);
  bld.stmt().iload(i).iconst(1).isub().istore(i);
  bld.stmt().go(loop);
  bld.bind(done).stmt().aload(head).aret();

  // visit(head, t): sum val of the first t nodes.
  auto& v = m.method("visit", {{"head", Ty::Ref}, {"t", Ty::I64}}, Ty::I64);
  uint16_t cur = v.local("cur", Ty::Ref);
  uint16_t k = v.local("k", Ty::I64);
  uint16_t s = v.local("s", Ty::I64);
  Label l2 = v.label(), d2 = v.label();
  v.stmt().aload("head").astore(cur);
  v.stmt().iconst(0).istore(k);
  v.stmt().iconst(0).istore(s);
  v.bind(l2).stmt().iload(k).iload("t").if_icmpge(d2);
  v.stmt().iload(s).aload(cur).getfield("Node.val").iadd().istore(s);
  v.stmt().aload(cur).getfield("Node.next").astore(cur);
  v.stmt().iload(k).iconst(1).iadd().istore(k);
  v.stmt().go(l2);
  v.bind(d2).stmt().iload(s).iret();
  return pb.build();
}

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Ablation: on-demand faulting vs eager copy, by touched fraction ===\n");
  bc::Program p = touch_program();
  prep::preprocess_program(p);
  const int N = opt.smoke ? 40 : 200;
  sim::Link link = sim::Link::gigabit();

  std::vector<int> touch_points = opt.smoke ? std::vector<int>{1, 10, 40}
                                            : std::vector<int>{1, 10, 50, 100, 200};
  Table t({"touched", "SOD faults", "SOD fetched B", "SOD net (ms)", "eager copy B",
           "eager net (ms)", "winner"});
  for (int touched : touch_points) {
    SodNode home("home", p, {});
    SodNode dest("dest", p, {});
    Value head = home.call_guest("M.build", std::vector<Value>{Value::of_i64(N)});
    int tid = home.vm().spawn(p.find_method("M.visit"),
                              std::vector<Value>{head, Value::of_i64(touched)});
    SOD_CHECK(mig::pause_at_depth(home, tid, p.find_method("M.visit"), 1), "trigger");
    auto out = mig::offload_and_return(home, tid, 1, dest, link);
    SOD_CHECK(out.result.as_i64() >= 0, "visit result");
    // SOD network time: fault round trips + state.
    double sod_ms = (VDur::nanos(int64_t(out.faults.faults) * 2 * link.latency.ns) +
                     link.transfer_time(out.faults.bytes + out.timing.state_bytes))
                        .ms();
    // Eager copy ships the whole reachable graph once.
    std::vector<bc::Ref> roots{head.as_ref()};
    size_t eager_bytes = home.vm().heap().graph_size(roots);
    double eager_ms = link.transfer_time(eager_bytes).ms();
    t.row({fmt("%d/%d", touched, N), std::to_string(out.faults.faults),
           std::to_string(out.faults.bytes), fmt("%.3f", sod_ms), std::to_string(eager_bytes),
           fmt("%.3f", eager_ms), sod_ms < eager_ms ? "SOD" : "eager"});
  }
  t.print();
  std::printf("\nShape: SOD wins when the migrated code touches a small fraction of the\n"
              "heap (FFT/Fib/NQ); eager copy wins when everything is touched (TSP).\n");
  return cli::maybe_write_json(opt, "ablation_fetch", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("ablation_fetch", cli::ScenarioKind::Bench,
                      "Ablation — on-demand faulting vs eager heap copy", run);

}  // namespace
