// Ablation — segment-size sweep: migrate the top k frames of a deep Fib
// stack for k = 1..10 and watch capture cost and state size grow linearly
// while SOD's k=1 stays minimal (the design choice behind "export only the
// top segment").
#include <cstdio>

#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "support/table.h"
#include "testlib.h"

using namespace sod;
using bc::Value;
using mig::SodNode;

namespace {

int run(const cli::ScenarioOptions& opt) {
  const int kDepth = opt.smoke ? 12 : 20;
  const int kMaxSeg = opt.smoke ? 3 : 10;
  const int64_t kFibArg = opt.smoke ? 22 : 30;
  std::printf("=== Ablation: migrated segment size (top-k frames of a depth-%d stack) ===\n",
              kDepth);
  auto p = sod::testing::fib_program();
  prep::preprocess_program(p);
  uint16_t fib = p.find_method("Main.fib");

  Table t({"k frames", "state bytes", "capture (ms)", "transfer (ms)", "restore (ms)",
           "latency (ms)"});
  for (int k = 1; k <= kMaxSeg; ++k) {
    SodNode home("home", p, {});
    SodNode dest("dest", p, {});
    int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(kFibArg)});
    SOD_CHECK(mig::pause_at_depth(home, tid, fib, kDepth), "depth");

    VDur t0 = home.node().clock.now();
    auto cs = mig::capture_segment(home, tid, mig::SegmentSpec{0, k});
    home.ti().set_debug_enabled(false);
    home.node().charge_host(home.serde().cost(cs.wire_size(), k));
    VDur cap = home.node().clock.now() - t0;

    uint16_t top_cls = p.method(cs.frames.back().method).owner;
    dest.mark_class_shipped(top_cls);
    dest.enable_class_fetch(&home, sim::Link::gigabit());
    VDur sent = home.node().clock.now();
    sim::deliver(home.node(), dest.node(), sim::Link::gigabit(),
                 cs.wire_size() + p.class_image(top_cls).size());
    VDur xfer = dest.node().clock.now() - sent;

    VDur t2 = dest.node().clock.now();
    mig::Segment seg(dest);
    seg.objman().bind_home(&home, tid, k, sim::Link::gigabit());
    seg.restore(cs);
    VDur rest = dest.node().clock.now() - t2;

    t.row({std::to_string(k), std::to_string(cs.wire_size()), fmt("%.3f", cap.ms()),
           fmt("%.3f", xfer.ms()), fmt("%.3f", rest.ms()), fmt("%.3f", (cap + xfer + rest).ms())});
  }
  t.print();
  std::printf("\nShape: every component grows with k; shipping only the top frame is the\n"
              "lightest migration, at the cost of later return-to-home hops.\n");
  return cli::maybe_write_json(opt, "ablation_segments", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("ablation_segments", cli::ScenarioKind::Bench,
                      "Ablation — migrated segment size sweep (top-k frames)", run);

}  // namespace
