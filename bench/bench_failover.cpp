// Failover under worker loss: the Fib workload of the elastic bench on
// the same heterogeneous topology — two cluster Xeons on gigabit plus an
// iPhone-class device behind wifi — replayed in three modes:
//
//   fixed           the original membership, no failure (baseline)
//   fail_redispatch the wifi device is lost mid-run; the scheduler
//                   re-dispatches its queued + in-flight segments to the
//                   surviving Xeons
//   fail_autoscale  same loss, plus the queue-depth autoscaler with one
//                   standby Xeon that joins when the post-loss queue
//                   depth crosses the high-water mark
//
// least_loaded's inflight-count primary key parks one segment per round
// on the 25x-slower device, so losing the device and backfilling from the
// standby pool must not cost throughput: the bench fails unless the
// fail_autoscale mean completion time is <= the fixed-membership mean,
// and unless every mode's trace shows each segment executed exactly once.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "prep/prep.h"
#include "support/table.h"

using namespace sod;

namespace {

constexpr int kSegmentsPerRound = 3;

enum class Mode { Fixed, FailRedispatch, FailAutoscale };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Fixed: return "fixed";
    case Mode::FailRedispatch: return "fail_redispatch";
    case Mode::FailAutoscale: return "fail_autoscale";
  }
  return "?";
}

struct ModeResult {
  int segments = 0;
  int redispatched = 0;
  int auto_joins = 0;
  double mean_completion_ms = 0;
  double total_ms = 0;
  bool ok = false;
  bool exactly_once = true;
};

ModeResult run_mode(Mode mode, int rounds, int fail_at, const cli::ScenarioOptions& opt) {
  const apps::AppSpec spec = apps::fib_app();
  bc::Program p = spec.build();
  prep::preprocess_program(p);

  cluster::Cluster c(p);
  c.add_worker({"xeon1", {}, sim::Link::gigabit()});
  c.add_worker({"xeon2", {}, sim::Link::gigabit()});
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
  int device_id = c.add_worker({"wifi-device", dev, sim::Link::wifi_kbps(2000)});

  auto policy = cluster::make_policy(cluster::PolicyKind::LeastLoaded);
  cluster::DispatchOptions dopt;
  dopt.checkpoint_every = static_cast<uint64_t>(std::max<int64_t>(opt.checkpoint_every, 0));
  dopt.speculate = opt.speculate;
  cluster::Scheduler sched(c, *policy, dopt);
  if (mode != Mode::Fixed) sched.fail_after(fail_at, device_id);
  if (mode == Mode::FailAutoscale)
    sched.set_autoscaler(std::make_unique<cluster::Autoscaler>(
        cluster::Autoscaler::Config{},
        std::vector<cluster::WorkerSpec>{{"standby1", {}, sim::Link::gigabit()}}));

  uint16_t trigger = p.find_method(spec.trigger_method);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);

  ModeResult res;
  double completion_sum_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    if (!mig::pause_at_depth(c.home(), tid, trigger, kSegmentsPerRound + 4)) break;
    VDur round_start = c.home_now();
    auto out = sched.run(tid, cluster::split_top_frames(kSegmentsPerRound));
    c.home().ti().set_debug_enabled(false);
    res.redispatched += out.redispatched;
    for (const auto& pl : out.placements) {
      ++res.segments;
      completion_sum_ms += (pl.completed_at - round_start).ms();
    }
  }
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  res.ok = rr.reason == svm::StopReason::Done &&
           c.home().vm().thread(tid).result.as_i64() == spec.bench_expected;
  res.exactly_once = sched.exactly_once();
  if (sched.autoscaler()) res.auto_joins = sched.autoscaler()->joins();
  if (res.segments > 0) res.mean_completion_ms = completion_sum_ms / res.segments;
  res.total_ms = c.home().node().clock.now().ms();
  return res;
}

int run(const cli::ScenarioOptions& opt) {
  int rounds = opt.smoke ? 4 : 8;
  int fail_at = opt.fail_at >= 0 ? opt.fail_at : 5;
  std::printf("=== failover: 2x Xeon + wifi device, device lost after %d completion(s) ===\n",
              fail_at);

  Table t({"mode", "segments", "redispatched", "autoscale joins", "mean completion ms",
           "total ms"});
  bool all_ok = true;
  double fixed_mean = -1;
  double autoscale_mean = -1;
  for (Mode mode : {Mode::Fixed, Mode::FailRedispatch, Mode::FailAutoscale}) {
    ModeResult r = run_mode(mode, rounds, fail_at, opt);
    all_ok = all_ok && r.ok;
    if (!r.exactly_once) {
      std::fprintf(stderr, "failover: %s trace violates exactly-once execution\n",
                   mode_name(mode));
      all_ok = false;
    }
    if (mode != Mode::Fixed && r.redispatched == 0) {
      std::fprintf(stderr, "failover: %s run lost no in-flight work (fail-at too late?)\n",
                   mode_name(mode));
      all_ok = false;
    }
    if (mode == Mode::FailAutoscale && r.auto_joins == 0) {
      std::fprintf(stderr, "failover: autoscaler never joined the standby worker\n");
      all_ok = false;
    }
    t.row({mode_name(mode), std::to_string(r.segments), std::to_string(r.redispatched),
           std::to_string(r.auto_joins), fmt("%.3f", r.mean_completion_ms),
           fmt("%.3f", r.total_ms)});
    if (mode == Mode::Fixed) fixed_mean = r.mean_completion_ms;
    if (mode == Mode::FailAutoscale) autoscale_mean = r.mean_completion_ms;
  }
  t.print();
  if (!all_ok) std::fprintf(stderr, "failover: a mode run failed\n");
  // Losing the slow device and backfilling from the standby pool must not
  // cost completion time against the original fixed membership.
  bool ordered = autoscale_mean >= 0 && fixed_mean >= 0 && autoscale_mean <= fixed_mean;
  if (!ordered)
    std::fprintf(stderr,
                 "failover: autoscale+re-dispatch mean completion (%.3f ms) above "
                 "fixed-membership mean (%.3f ms)\n",
                 autoscale_mean, fixed_mean);
  return (all_ok && ordered && cli::maybe_write_json(opt, "failover", t)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("failover", cli::ScenarioKind::Bench,
                      "completion time with/without worker-failure re-dispatch and the "
                      "queue-depth autoscaler",
                      run);

}  // namespace
