// Home-shard scaling on the wall-clock engine: the multi-tenant trace
// (two Xeons on gigabit plus the 25x-slower wifi device) replayed through
// the thread-pool engine while sweeping --home-shards x pool threads.
// Home-side service windows — ship/restore/write-back serde, class
// fetches, object faults — sleep their wall twin on the owning shard's
// stripe lock, so a single shard serializes every window cluster-wide
// while four shards let windows on different refs/classes/segments
// overlap.  Home service sleeps are amplified (home_dilation) and
// communication sleeps dialed down so the home mutex is the measured
// bottleneck, not the simulated network.
//
// Acceptance: every cell's session results, virtual completion
// percentiles, and virtual total are bit-identical (sharding never
// reschedules virtual time) and stripe acquisitions are identical across
// cells (the service-window set is a property of the replay, not the
// interleaving); at 4 pool threads the 4-shard wall-clock completion mean
// is strictly below the 1-shard mean (full run; smoke prints the sweep
// without the wall gate — tiny traces leave too little contention to
// gate on a loaded CI box).
//
// Columns: virtual percentiles and lock_acq are deterministic and gated
// by the bench differ; wall_* / *_ns columns are real wall-clock
// measurements and exempt (scripts/bench_diff.py).
//
// Flags: --sessions N, --seed S, --smoke.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/scenario.h"
#include "cluster/loadgen.h"
#include "cluster/placement.h"
#include "support/table.h"

using namespace sod;

namespace {

/// Amplifies the microsecond-scale home serde costs (SerdeModel: ~2.5 us
/// per KB of segment state) into millisecond-scale stripe-held sleeps, so
/// the 1-shard serialization is measurable above scheduler noise.
constexpr double kHomeDilation = 400.0;
/// Shrinks the simulated-network sleeps (wifi transfers are tens of
/// virtual ms) so transfer time does not drown the home-side signal.
constexpr double kCommDilation = 0.02;

std::vector<cluster::WorkerSpec> straggler_topology() {
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
  return {{"xeon1", {}, sim::Link::gigabit()},
          {"xeon2", {}, sim::Link::gigabit()},
          {"wifi-device", dev, sim::Link::wifi_kbps(2000)}};
}

int run(const cli::ScenarioOptions& opt) {
  cluster::TraceConfig cfg;
  cfg.sessions = opt.sessions > 0 ? opt.sessions : (opt.smoke ? 6 : 24);
  cfg.tenants = 4;
  cfg.apps = 2;  // fib + nqueens load mix
  cfg.seed = opt.seed >= 0 ? static_cast<uint64_t>(opt.seed) : 1;
  cfg.mean_gap = VDur::millis(25);
  cfg.churn = 0;     // membership churn and losses would re-dispatch work;
  cfg.failures = 0;  // the sweep needs the failure-free determinism contract

  std::vector<int> shard_counts = opt.smoke ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 2, 4};
  std::vector<int> thread_counts = opt.smoke ? std::vector<int>{2}
                                             : std::vector<int>{1, 4};

  cluster::Trace trace = cluster::make_trace(cfg);
  std::printf("=== home_shards: %d session(s), seed %llu, 2x Xeon + wifi device, "
              "home_dilation %.0fx ===\n",
              cfg.sessions, static_cast<unsigned long long>(cfg.seed), kHomeDilation);

  Table t({"config", "shards", "threads", "sessions", "completed", "p50 ms", "p95 ms",
           "p99 ms", "total ms", "lock_acq", "wall_mean_ms", "wall_p99_ms", "wall_total_ms",
           "wall_contended", "lock_wait_ns", "lock_max_wait_ns", "wall_max_queue"});
  bool all_ok = true;
  bool have_ref = false;
  cluster::LoadGenResult ref;                 // first cell: virtual-side baseline
  double wall_mean[2] = {-1, -1};             // threads=4: {1-shard, 4-shard} means
  for (int threads : thread_counts) {
    for (int shards : shard_counts) {
      cluster::LoadGenOptions lg;
      lg.policy = cluster::PolicyKind::LeastLoaded;
      lg.workers = straggler_topology();
      lg.segments_per_round = 3;  // the third placement must pick the device
      lg.wallclock = true;
      lg.threads = threads;
      lg.home_shards = shards;
      lg.dilation = kCommDilation;
      lg.home_dilation = kHomeDilation;
      auto r = cluster::run_loadgen(trace, lg);
      std::string label = fmt("s%d/t%d", shards, threads);
      if (!r.all_ok || !r.exactly_once) {
        std::fprintf(stderr, "home_shards: %s replay failed (%d/%d ok, exactly-once %s)\n",
                     label.c_str(), r.completed, r.sessions,
                     r.exactly_once ? "OK" : "VIOLATED");
        all_ok = false;
      }
      if (!have_ref) {
        ref = r;
        have_ref = true;
      } else {
        // Sharding may only change wall-clock interleaving: the virtual
        // side of every cell must match the first cell bit for bit, and
        // the stripe-acquisition count is replay-determined.
        if (r.results != ref.results || r.total_ms != ref.total_ms ||
            r.completion_ms.p50() != ref.completion_ms.p50() ||
            r.completion_ms.p95() != ref.completion_ms.p95() ||
            r.completion_ms.p99() != ref.completion_ms.p99()) {
          std::fprintf(stderr, "home_shards: %s diverged from the virtual baseline\n",
                       label.c_str());
          all_ok = false;
        }
        if (r.lock_acq != ref.lock_acq) {
          std::fprintf(stderr,
                       "home_shards: %s stripe acquisitions %llu != baseline %llu\n",
                       label.c_str(), static_cast<unsigned long long>(r.lock_acq),
                       static_cast<unsigned long long>(ref.lock_acq));
          all_ok = false;
        }
      }
      std::printf("%s: wall mean %.3f ms (virtual %.3f), %llu stripe acq, "
                  "%llu contended, max wait %.3f ms\n",
                  label.c_str(), r.wall_completion_ms.mean(), r.completion_ms.mean(),
                  static_cast<unsigned long long>(r.lock_acq),
                  static_cast<unsigned long long>(r.wall_contended),
                  static_cast<double>(r.lock_max_wait_ns) / 1e6);
      if (threads == 4 && shards == 1) wall_mean[0] = r.wall_completion_ms.mean();
      if (threads == 4 && shards == 4) wall_mean[1] = r.wall_completion_ms.mean();
      t.row({label, std::to_string(shards), std::to_string(threads),
             std::to_string(r.sessions), std::to_string(r.completed),
             fmt("%.3f", r.completion_ms.p50()), fmt("%.3f", r.completion_ms.p95()),
             fmt("%.3f", r.completion_ms.p99()), fmt("%.3f", r.total_ms),
             std::to_string(r.lock_acq), fmt("%.3f", r.wall_completion_ms.mean()),
             fmt("%.3f", r.wall_completion_ms.p99()), fmt("%.3f", r.wall_total_ms),
             std::to_string(r.wall_contended), std::to_string(r.lock_wait_ns),
             std::to_string(r.lock_max_wait_ns), std::to_string(r.wall_max_queue)});
    }
  }
  // The scaling claim: with 4 pool threads contending for home service,
  // 4 stripes must beat the single serialized home mutex on the wall
  // clock.  Smoke traces are too small to assert this on a shared runner.
  if (!opt.smoke && wall_mean[0] >= 0 && wall_mean[1] >= 0 && wall_mean[1] >= wall_mean[0]) {
    std::fprintf(stderr,
                 "home_shards: 4-shard wall mean %.3f ms not below 1-shard %.3f ms at 4 "
                 "threads\n",
                 wall_mean[1], wall_mean[0]);
    all_ok = false;
  }

  t.print();
  if (!all_ok) std::fprintf(stderr, "home_shards: sweep failed\n");
  return (all_ok && cli::maybe_write_json(opt, "home_shards", t)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("home_shards", cli::ScenarioKind::Bench,
                      "home-shard sweep on the wall-clock engine: stripe contention vs shards",
                      run);

}  // namespace
