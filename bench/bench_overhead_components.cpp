// Section IV.A overhead components — C0 (bytecode instrumentation side
// effect, measured in real time) and C1 (tool-interface agent presence,
// modelled).  The paper reports C0 in 0.10%..1.45% and C1 in 0.1%..3.2%.
#include <cstdio>

#include "cli/smoke.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Overhead components C0/C1 (Section IV.A) ===\n");
  Table t({"App", "C0 instrumentation (measured)", "C1 agent (modelled)"});
  for (const apps::AppSpec& spec : cli::table1_apps_for(opt)) {
    sodee::MeasuredApp m = sodee::measure_app(spec);
    t.row({spec.name, fmt("%.2f%%", m.c0 * 100), fmt("%.2f%%", m.c1 * 100)});
  }
  t.print();
  std::printf("\nPaper reference: C0 in 0.10%%..1.45%%, C1 in 0.10%%..3.20%%.\n");
  return cli::maybe_write_json(opt, "overhead_components", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("overhead_components", cli::ScenarioKind::Bench,
                      "Section IV.A — C0/C1 overhead components", run);

}  // namespace
