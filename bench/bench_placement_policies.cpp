// Placement-policy comparison on a heterogeneous topology: two cluster
// Xeons on gigabit links plus an iPhone-class device behind wifi.  Every
// policy drives the same multi-round concurrent segment dispatch of the
// Fib app; least_loaded routes around the slow device, and locality_aware
// additionally skips re-shipping class images, so locality_aware must
// never be slower than round_robin on this topology.
#include <cstdio>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "prep/prep.h"
#include "support/table.h"

using namespace sod;

namespace {

struct PolicyResult {
  int segments = 0;
  int device_segments = 0;
  size_t shipped_bytes = 0;
  size_t class_bytes = 0;
  double total_ms = 0;
  bool ok = false;
};

PolicyResult run_policy(cluster::PolicyKind kind, int rounds, int segments_per_round) {
  const apps::AppSpec spec = apps::fib_app();
  bc::Program p = spec.build();
  prep::preprocess_program(p);

  cluster::Cluster c(p);
  c.add_worker({"xeon1", {}, sim::Link::gigabit()});
  c.add_worker({"xeon2", {}, sim::Link::gigabit()});
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
  int device_id = c.add_worker({"wifi-device", dev, sim::Link::wifi_kbps(2000)});

  auto policy = cluster::make_policy(kind);
  uint16_t trigger = p.find_method(spec.trigger_method);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);

  PolicyResult res;
  for (int r = 0; r < rounds; ++r) {
    // Pause four frames deeper than the split so residual recursion
    // survives the round and the next pause can fire again.
    if (!mig::pause_at_depth(c.home(), tid, trigger, segments_per_round + 4)) break;
    auto out = cluster::dispatch_segments(c, tid,
                                          cluster::split_top_frames(segments_per_round),
                                          *policy);
    c.home().ti().set_debug_enabled(false);
    for (const auto& pl : out.placements) {
      ++res.segments;
      if (pl.worker == device_id) ++res.device_segments;
      res.shipped_bytes += pl.shipped_bytes;
    }
  }
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  res.ok = rr.reason == svm::StopReason::Done &&
           c.home().vm().thread(tid).result.as_i64() == spec.bench_expected;
  for (int w = 0; w < c.size(); ++w) res.class_bytes += c.worker(w).class_bytes_fetched();
  res.total_ms = c.home().node().clock.now().ms();
  return res;
}

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== placement policies on 2x Xeon/gigabit + wifi device ===\n");
  int rounds = opt.smoke ? 3 : 6;
  Table t({"policy", "segments", "device segs", "shipped KB", "class-fetch KB", "total ms"});
  bool all_ok = true;
  double rr_ms = 0;
  double loc_ms = 0;
  for (cluster::PolicyKind kind : cluster::all_policies()) {
    PolicyResult r = run_policy(kind, rounds, 2);
    all_ok = all_ok && r.ok;
    t.row({cluster::policy_name(kind), std::to_string(r.segments),
           std::to_string(r.device_segments),
           fmt("%.2f", static_cast<double>(r.shipped_bytes) / 1024.0),
           fmt("%.2f", static_cast<double>(r.class_bytes) / 1024.0), fmt("%.3f", r.total_ms)});
    if (kind == cluster::PolicyKind::RoundRobin) rr_ms = r.total_ms;
    if (kind == cluster::PolicyKind::LocalityAware) loc_ms = r.total_ms;
  }
  t.print();
  if (!all_ok) std::fprintf(stderr, "placement: a policy run returned a wrong result\n");
  bool ordered = loc_ms <= rr_ms;
  if (!ordered)
    std::fprintf(stderr, "placement: locality_aware (%.3f ms) slower than round_robin (%.3f ms)\n",
                 loc_ms, rr_ms);
  return (all_ok && ordered && cli::maybe_write_json(opt, "placement", t)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("placement", cli::ScenarioKind::Bench,
                      "placement policies on a heterogeneous cluster + wifi-device topology",
                      run);

}  // namespace
