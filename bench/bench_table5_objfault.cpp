// Table V — remote-object-access detection cost, measured in REAL time
// with google-benchmark: per-access cost of field/static read/write under
//   (a) original code,
//   (b) object-fault handlers (SOD: zero inline code), and
//   (c) status checks (JavaSplit baseline: field read + compare + branch
//       on every access).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bytecode/builder.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/objman.h"
#include "support/table.h"

using namespace sod;
using bc::Ty;
using bc::Value;

namespace {

/// Program with four access-loop methods (one statement per iteration so
/// the instrumentation cost lands on exactly one access).
bc::Program build_access_program() {
  bc::ProgramBuilder pb;
  auto& cell = pb.cls("Cell");
  cell.field("x", Ty::I64);
  auto& b = pb.cls("B");
  b.field("sval", Ty::I64, /*is_static=*/true);

  {
    auto& f = b.method("make", {}, Ty::Ref);
    uint16_t o = f.local("o", Ty::Ref);
    f.stmt().new_("Cell").astore(o);
    f.stmt().aload(o).iconst(3).putfield("Cell.x");
    f.stmt().aload(o).aret();
  }
  {
    auto& f = b.method("fread", {{"o", Ty::Ref}, {"n", Ty::I64}}, Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t s = f.local("s", Ty::I64);
    bc::Label l = f.label(), d = f.label();
    f.stmt().iconst(0).istore(i);
    f.stmt().iconst(0).istore(s);
    f.bind(l).stmt().iload(i).iload("n").if_icmpge(d);
    f.stmt().iload(s).aload("o").getfield("Cell.x").iadd().istore(s);
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(l);
    f.bind(d).stmt().iload(s).iret();
  }
  {
    auto& f = b.method("fwrite", {{"o", Ty::Ref}, {"n", Ty::I64}}, Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    bc::Label l = f.label(), d = f.label();
    f.stmt().iconst(0).istore(i);
    f.bind(l).stmt().iload(i).iload("n").if_icmpge(d);
    f.stmt().aload("o").iload(i).putfield("Cell.x");
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(l);
    f.bind(d).stmt().aload("o").getfield("Cell.x").iret();
  }
  {
    auto& f = b.method("sread", {{"n", Ty::I64}}, Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    uint16_t s = f.local("s", Ty::I64);
    bc::Label l = f.label(), d = f.label();
    f.stmt().iconst(0).istore(i);
    f.stmt().iconst(0).istore(s);
    f.bind(l).stmt().iload(i).iload("n").if_icmpge(d);
    f.stmt().iload(s).getstatic("B.sval").iadd().istore(s);
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(l);
    f.bind(d).stmt().iload(s).iret();
  }
  {
    auto& f = b.method("swrite", {{"n", Ty::I64}}, Ty::I64);
    uint16_t i = f.local("i", Ty::I64);
    bc::Label l = f.label(), d = f.label();
    f.stmt().iconst(0).istore(i);
    f.bind(l).stmt().iload(i).iload("n").if_icmpge(d);
    f.stmt().iload(i).putstatic("B.sval");
    f.stmt().iload(i).iconst(1).iadd().istore(i);
    f.stmt().go(l);
    f.bind(d).stmt().getstatic("B.sval").iret();
  }
  return pb.build();
}

enum class Variant { Original, Faulting, Checking };

struct Rt {
  bc::Program prog;
  mig::SodNode node;
  Value obj;
  Rt(Variant v)
      : prog(make_prog(v)), node("bench", prog, {}), obj() {
    om.install(node);
    obj = node.vm().call("B.make", {});
  }
  mig::ObjectManager om;
  static bc::Program make_prog(Variant v) {
    bc::Program p = build_access_program();
    prep::PrepOptions o;
    switch (v) {
      case Variant::Original: o.flatten = true; o.restore_handlers = false;
        o.miss = prep::MissDetection::None; break;
      case Variant::Faulting: o.miss = prep::MissDetection::ObjectFaulting; break;
      case Variant::Checking: o.miss = prep::MissDetection::StatusChecking; break;
    }
    prep::preprocess_program(p, o);
    return p;
  }
  int64_t run(const char* m, int64_t n) {
    if (std::string(m) == "B.fread" || std::string(m) == "B.fwrite")
      return node.vm().call(m, std::vector<Value>{obj, Value::of_i64(n)}).as_i64();
    return node.vm().call(m, std::vector<Value>{Value::of_i64(n)}).as_i64();
  }
};

constexpr int64_t kInner = 1 << 14;

void access_bench(benchmark::State& state, Variant v, const char* method) {
  Rt rt(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.run(method, kInner));
  }
  state.SetItemsProcessed(state.iterations() * kInner);
}

double ns_per_access(Variant v, const char* method, int reps) {
  Rt rt(v);
  rt.run(method, kInner);  // warm up
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) benchmark::DoNotOptimize(rt.run(method, kInner));
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / (reps * kInner);
}

}  // namespace

BENCHMARK_CAPTURE(access_bench, field_read_original, Variant::Original, "B.fread");
BENCHMARK_CAPTURE(access_bench, field_read_faulting, Variant::Faulting, "B.fread");
BENCHMARK_CAPTURE(access_bench, field_read_checking, Variant::Checking, "B.fread");
BENCHMARK_CAPTURE(access_bench, field_write_original, Variant::Original, "B.fwrite");
BENCHMARK_CAPTURE(access_bench, field_write_faulting, Variant::Faulting, "B.fwrite");
BENCHMARK_CAPTURE(access_bench, field_write_checking, Variant::Checking, "B.fwrite");
BENCHMARK_CAPTURE(access_bench, static_read_original, Variant::Original, "B.sread");
BENCHMARK_CAPTURE(access_bench, static_read_faulting, Variant::Faulting, "B.sread");
BENCHMARK_CAPTURE(access_bench, static_read_checking, Variant::Checking, "B.sread");
BENCHMARK_CAPTURE(access_bench, static_write_original, Variant::Original, "B.swrite");
BENCHMARK_CAPTURE(access_bench, static_write_faulting, Variant::Faulting, "B.swrite");
BENCHMARK_CAPTURE(access_bench, static_write_checking, Variant::Checking, "B.swrite");

namespace {

int run_scenario(const cli::ScenarioOptions& opt) {
  // Interpreter-heavy benchmarks converge quickly; keep the default run
  // short so the whole bench suite stays interactive.  Smoke runs skip
  // the google-benchmark pass entirely and measure the table with a
  // handful of reps.
  if (!opt.smoke) {
    std::vector<std::string> arg_strs = {"bench_table5_objfault"};
    for (const std::string& a : opt.extra) arg_strs.push_back(a);
    if (opt.extra.empty()) arg_strs.push_back("--benchmark_min_time=0.1s");
    std::vector<char*> args;
    args.reserve(arg_strs.size());
    for (std::string& a : arg_strs) args.push_back(a.data());
    int args_n = static_cast<int>(args.size());
    benchmark::Initialize(&args_n, args.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  int reps = opt.smoke ? 2 : 40;

  std::printf("\n=== Table V: per-access cost (ns, real time) and slowdown ===\n");
  Table t({"Access type", "Original", "Obj faulting", "Obj checking", "Faulting slowdown",
           "Checking slowdown"});
  struct Row {
    const char* label;
    const char* method;
  } rows[] = {{"Field read", "B.fread"},
              {"Field write", "B.fwrite"},
              {"Static read", "B.sread"},
              {"Static write", "B.swrite"}};
  for (const Row& r : rows) {
    double orig = ns_per_access(Variant::Original, r.method, reps);
    double fault = ns_per_access(Variant::Faulting, r.method, reps);
    double check = ns_per_access(Variant::Checking, r.method, reps);
    t.row({r.label, fmt("%.2f", orig), fmt("%.2f", fault), fmt("%.2f", check),
           fmt("%+.2f%%", (fault / orig - 1) * 100), fmt("%+.2f%%", (check / orig - 1) * 100)});
  }
  t.print();
  std::printf(
      "\nPaper reference: faulting +2.1%%..+7.7%% vs checking +21.6%%..+253.8%%.\n"
      "Shape: faulting ~free, checking pays field-load+compare+branch per access.\n");
  return cli::maybe_write_json(opt, "table5", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table5", cli::ScenarioKind::Bench,
                      "Table V — per-access miss-detection cost (real time)", run_scenario);

}  // namespace
