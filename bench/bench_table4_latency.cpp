// Table IV — migration latency breakdown (capture / transfer / restore)
// for SOD, G-JavaMPI and JESSICA2 on a Gigabit link.  Xen is excluded
// exactly as in the paper (pre-copy latency is seconds-scale by design).
#include <cstdio>

#include "cli/smoke.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Table IV: migration latency breakdown (ms) ===\n");
  Table t({"App", "SOD cap", "SOD xfer", "SOD rest", "SOD total", "GJ cap", "GJ xfer", "GJ rest",
           "GJ total", "J2 cap", "J2 xfer", "J2 rest", "J2 total"});
  for (const apps::AppSpec& spec : cli::table1_apps_for(opt)) {
    sodee::MeasuredApp m = sodee::measure_app(spec);
    t.row({spec.name, fmt("%.2f", m.sod.capture.ms()), fmt("%.2f", m.sod.transfer.ms()),
           fmt("%.2f", m.sod.restore.ms()), fmt("%.2f", m.sod.latency().ms()),
           fmt("%.2f", m.gj.capture.ms()), fmt("%.2f", m.gj.transfer.ms()),
           fmt("%.2f", m.gj.restore.ms()), fmt("%.2f", m.gj.latency().ms()),
           fmt("%.2f", m.j2.capture.ms()), fmt("%.2f", m.j2.transfer.ms()),
           fmt("%.2f", m.j2.restore.ms()), fmt("%.2f", m.j2.latency().ms())});
  }
  t.print();
  std::printf(
      "\nPaper reference totals (ms): Fib 14.66/132.15/11.37 | NQ 12.42/91.44/9.06 | "
      "FFT 12.33/2470.15/74.08 | TSP 15.23/95.98/9.90 (SOD/G-JavaMPI/JESSICA2)\n"
      "Shape: J2 fastest capture; SOD runner-up and flat in data size; G-JavaMPI scales\n"
      "with frames+heap; J2's FFT restore blows up on the 64 MB static allocation.\n");
  return cli::maybe_write_json(opt, "table4", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table4", cli::ScenarioKind::Bench,
                      "Table IV — migration latency breakdown (capture/transfer/restore)", run);

}  // namespace
