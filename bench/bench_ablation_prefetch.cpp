// Ablation — reachability prefetch (paper Section VI future work): each
// object miss also ships the home objects within k hops in the same
// response.  Round trips drop ~linearly in k; bytes stay flat for a list
// walk (everything is needed anyway), so latency falls until the link's
// latency stops dominating.
#include <cstdio>

#include "bytecode/builder.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "support/table.h"

using namespace sod;
using bc::Label;
using bc::Ty;
using bc::Value;
using mig::SodNode;

namespace {

bc::Program list_walk_program() {
  bc::ProgramBuilder pb;
  auto& nd = pb.cls("Node");
  nd.field("val", Ty::I64);
  nd.field("next", Ty::Ref);
  auto& m = pb.cls("M");
  auto& bld = m.method("build", {{"n", Ty::I64}}, Ty::Ref);
  uint16_t head = bld.local("head", Ty::Ref);
  uint16_t node = bld.local("node", Ty::Ref);
  uint16_t i = bld.local("i", Ty::I64);
  Label loop = bld.label(), done = bld.label();
  bld.stmt().aconst_null().astore(head);
  bld.stmt().iload("n").istore(i);
  bld.bind(loop).stmt().iload(i).iconst(1).if_icmplt(done);
  bld.stmt().new_("Node").astore(node);
  bld.stmt().aload(node).iload(i).putfield("Node.val");
  bld.stmt().aload(node).aload(head).putfield("Node.next");
  bld.stmt().aload(node).astore(head);
  bld.stmt().iload(i).iconst(1).isub().istore(i);
  bld.stmt().go(loop);
  bld.bind(done).stmt().aload(head).aret();

  auto& sum = m.method("sum", {{"head", Ty::Ref}}, Ty::I64);
  uint16_t cur = sum.local("cur", Ty::Ref);
  uint16_t s = sum.local("s", Ty::I64);
  Label sl = sum.label(), sd = sum.label();
  sum.stmt().aload("head").astore(cur);
  sum.stmt().iconst(0).istore(s);
  sum.bind(sl).stmt().aload(cur).ifnull(sd);
  sum.stmt().iload(s).aload(cur).getfield("Node.val").iadd().istore(s);
  sum.stmt().aload(cur).getfield("Node.next").astore(cur);
  sum.stmt().go(sl);
  sum.bind(sd).stmt().iload(s).iret();
  return pb.build();
}

int run(const cli::ScenarioOptions& opt) {
  const int kN = opt.smoke ? 64 : 256;
  std::printf("=== Ablation: reachability prefetch depth (%d-node list walk) ===\n", kN);
  bc::Program p = list_walk_program();
  prep::preprocess_program(p);

  std::vector<int> depths = opt.smoke ? std::vector<int>{0, 1, 4}
                                      : std::vector<int>{0, 1, 2, 4, 8, 16};
  Table t({"prefetch depth", "round trips", "prefetched", "bytes", "worker time (ms)"});
  for (int depth : depths) {
    SodNode home("home", p, {});
    SodNode dest("dest", p, {});
    Value head = home.call_guest("M.build", std::vector<Value>{Value::of_i64(kN)});
    int tid = home.vm().spawn(p.find_method("M.sum"), std::vector<Value>{head});
    SOD_CHECK(mig::pause_at_depth(home, tid, p.find_method("M.sum"), 1), "trigger");
    auto cs = mig::capture_segment(home, tid, mig::SegmentSpec{0, 1});
    home.ti().set_debug_enabled(false);

    mig::Segment seg(dest);
    seg.objman().set_prefetch_depth(depth);
    seg.objman().bind_home(&home, tid, 1, sim::Link::gigabit());
    VDur t0 = dest.node().clock.now();
    seg.restore(cs);
    Value result = seg.run_to_completion();
    SOD_CHECK(result.as_i64() == kN * (kN + 1) / 2, "wrong sum");
    VDur elapsed = dest.node().clock.now() - t0;

    const auto& st = seg.objman().stats();
    t.row({std::to_string(depth), std::to_string(st.faults), std::to_string(st.prefetched),
           std::to_string(st.bytes), fmt("%.3f", elapsed.ms())});
  }
  t.print();
  std::printf("\nShape: each level of prefetch cuts round trips ~proportionally; bytes\n"
              "stay flat because the walk touches every node anyway.\n");
  return cli::maybe_write_json(opt, "ablation_prefetch", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("ablation_prefetch", cli::ScenarioKind::Bench,
                      "Ablation — reachability prefetch depth sweep", run);

}  // namespace
