// Checkpoint-resume and speculative re-dispatch, ablated on the cluster
// scheduler's virtual clock.
//
// Recovery (3 uniform Xeons, least_loaded, one worker killed mid-segment
// at a checkpoint boundary — both modes pay the same checkpoint cadence,
// only the recovery policy differs):
//
//   restart_from_capture   the lost attempt re-executes from the state
//                          captured at round start; all partial work is
//                          discarded
//   resume_from_checkpoint the lost attempt resumes from the newest
//                          checkpoint in the home store; only the work
//                          since that checkpoint is lost
//
// Speculation (2 Xeons + wifi device, least_loaded parks one segment per
// round on the 25x-slower device):
//
//   no_speculation         the device segment stalls its round
//   speculation            the AttemptTracker flags the device attempt as
//                          a straggler; a backup copy launches from the
//                          newest checkpoint on a Xeon, the first
//                          completion wins and the loser is cancelled
//
// The bench fails unless resume beats restart on mean completion, unless
// speculation beats no-speculation on the heterogeneous topology, and
// unless every mode's trace passes the attempt-aware exactly-once check.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "prep/prep.h"
#include "support/table.h"

using namespace sod;

namespace {

constexpr int kSegmentsPerRound = 3;
/// Default checkpoint cadence in guest instructions: a handful of
/// checkpoints per Xeon-speed segment execution of the Fib workload.
constexpr uint64_t kDefaultCheckpointEvery = 20000;

enum class Mode { RestartFromCapture, ResumeFromCheckpoint, NoSpeculation, Speculation };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::RestartFromCapture: return "restart_from_capture";
    case Mode::ResumeFromCheckpoint: return "resume_from_checkpoint";
    case Mode::NoSpeculation: return "no_speculation";
    case Mode::Speculation: return "speculation";
  }
  return "?";
}

bool hetero_mode(Mode m) { return m == Mode::NoSpeculation || m == Mode::Speculation; }

struct ModeResult {
  int segments = 0;
  int checkpoints = 0;
  size_t checkpoint_bytes = 0;
  int redispatched = 0;
  int resumed = 0;
  int speculated = 0;
  int cancelled = 0;
  double mean_completion_ms = 0;
  double total_ms = 0;
  bool ok = false;
  bool exactly_once = true;
};

ModeResult run_mode(Mode mode, int rounds, uint64_t every, int fail_at_ckpt) {
  const apps::AppSpec spec = apps::fib_app();
  bc::Program p = spec.build();
  prep::preprocess_program(p);

  cluster::Cluster c(p);
  if (hetero_mode(mode)) {
    c.add_worker({"xeon1", {}, sim::Link::gigabit()});
    c.add_worker({"xeon2", {}, sim::Link::gigabit()});
    mig::SodNode::Config dev;
    dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
    c.add_worker({"wifi-device", dev, sim::Link::wifi_kbps(2000)});
  } else {
    c.add_uniform_workers(3);
  }

  auto policy = cluster::make_policy(cluster::PolicyKind::LeastLoaded);
  cluster::DispatchOptions dopt;
  dopt.checkpoint_every = every;
  dopt.speculate = mode == Mode::Speculation;
  dopt.resume_from_checkpoint = mode != Mode::RestartFromCapture;
  cluster::Scheduler sched(c, *policy, dopt);
  // Recovery modes: kill the worker that takes the fail_at_ckpt-th
  // checkpoint — by construction the worker executing a segment mid-round,
  // the case where resume and restart genuinely differ.
  if (!hetero_mode(mode)) sched.fail_after_checkpoints(fail_at_ckpt);

  uint16_t trigger = p.find_method(spec.trigger_method);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);

  ModeResult res;
  double completion_sum_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    if (!mig::pause_at_depth(c.home(), tid, trigger, kSegmentsPerRound + 4)) break;
    VDur round_start = c.home_now();
    auto out = sched.run(tid, cluster::split_top_frames(kSegmentsPerRound));
    c.home().ti().set_debug_enabled(false);
    res.redispatched += out.redispatched;
    res.resumed += out.resumed;
    res.speculated += out.speculated;
    res.cancelled += out.cancelled;
    for (const auto& pl : out.placements) {
      ++res.segments;
      completion_sum_ms += (pl.completed_at - round_start).ms();
    }
  }
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  res.ok = rr.reason == svm::StopReason::Done &&
           c.home().vm().thread(tid).result.as_i64() == spec.bench_expected;
  res.exactly_once = sched.exactly_once();
  res.checkpoints = sched.checkpoints();
  res.checkpoint_bytes = sched.store().total_bytes();
  if (res.segments > 0) res.mean_completion_ms = completion_sum_ms / res.segments;
  res.total_ms = c.home().node().clock.now().ms();
  return res;
}

int run(const cli::ScenarioOptions& opt) {
  int rounds = opt.smoke ? 4 : 8;
  uint64_t every = opt.checkpoint_every > 0 ? static_cast<uint64_t>(opt.checkpoint_every)
                                            : kDefaultCheckpointEvery;
  int fail_at_ckpt = 3;
  std::printf(
      "=== checkpoint: resume vs restart (3x Xeon, worker killed at checkpoint %d) and "
      "speculation vs none (2x Xeon + wifi device), every %llu instr ===\n",
      fail_at_ckpt, static_cast<unsigned long long>(every));

  Table t({"mode", "segments", "checkpoints", "ckpt KB", "redispatched", "resumed",
           "speculated", "cancelled", "mean completion ms", "total ms"});
  bool all_ok = true;
  double restart_mean = -1;
  double resume_mean = -1;
  double nospec_mean = -1;
  double spec_mean = -1;
  for (Mode mode : {Mode::RestartFromCapture, Mode::ResumeFromCheckpoint, Mode::NoSpeculation,
                    Mode::Speculation}) {
    ModeResult r = run_mode(mode, rounds, every, fail_at_ckpt);
    all_ok = all_ok && r.ok;
    if (!r.exactly_once) {
      std::fprintf(stderr, "checkpoint: %s trace violates attempt-aware exactly-once\n",
                   mode_name(mode));
      all_ok = false;
    }
    if (r.checkpoints == 0) {
      std::fprintf(stderr, "checkpoint: %s run took no checkpoints (cadence too coarse?)\n",
                   mode_name(mode));
      all_ok = false;
    }
    if (!hetero_mode(mode) && r.redispatched == 0) {
      std::fprintf(stderr, "checkpoint: %s run never lost in-flight work\n", mode_name(mode));
      all_ok = false;
    }
    if (mode == Mode::ResumeFromCheckpoint && r.resumed == 0) {
      std::fprintf(stderr, "checkpoint: resume mode never resumed from a checkpoint\n");
      all_ok = false;
    }
    if (mode == Mode::Speculation && (r.speculated == 0 || r.cancelled == 0)) {
      std::fprintf(stderr, "checkpoint: speculation mode launched %d backup(s), "
                   "cancelled %d attempt(s)\n",
                   r.speculated, r.cancelled);
      all_ok = false;
    }
    t.row({mode_name(mode), std::to_string(r.segments), std::to_string(r.checkpoints),
           fmt("%.1f", static_cast<double>(r.checkpoint_bytes) / 1024.0),
           std::to_string(r.redispatched), std::to_string(r.resumed),
           std::to_string(r.speculated), std::to_string(r.cancelled),
           fmt("%.3f", r.mean_completion_ms), fmt("%.3f", r.total_ms)});
    if (mode == Mode::RestartFromCapture) restart_mean = r.mean_completion_ms;
    if (mode == Mode::ResumeFromCheckpoint) resume_mean = r.mean_completion_ms;
    if (mode == Mode::NoSpeculation) nospec_mean = r.mean_completion_ms;
    if (mode == Mode::Speculation) spec_mean = r.mean_completion_ms;
  }
  t.print();
  if (!all_ok) std::fprintf(stderr, "checkpoint: a mode run failed\n");
  bool resume_wins = resume_mean >= 0 && restart_mean >= 0 && resume_mean < restart_mean;
  if (!resume_wins)
    std::fprintf(stderr,
                 "checkpoint: resume mean completion (%.3f ms) not strictly below "
                 "restart-from-capture (%.3f ms)\n",
                 resume_mean, restart_mean);
  bool spec_wins = spec_mean >= 0 && nospec_mean >= 0 && spec_mean < nospec_mean;
  if (!spec_wins)
    std::fprintf(stderr,
                 "checkpoint: speculation mean completion (%.3f ms) not strictly below "
                 "no-speculation (%.3f ms)\n",
                 spec_mean, nospec_mean);
  return (all_ok && resume_wins && spec_wins && cli::maybe_write_json(opt, "checkpoint", t))
             ? 0
             : 1;
}

SOD_REGISTER_SCENARIO("checkpoint", cli::ScenarioKind::Bench,
                      "checkpoint-resume vs restart-from-capture under worker loss, and "
                      "speculative straggler re-dispatch vs none",
                      run);

}  // namespace
