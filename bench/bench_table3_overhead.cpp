// Table III — migration overhead (ms and % of no-migration runtime) per
// system.  Expected shape: SODEE lowest everywhere except TSP (eager copy
// wins when the migrated frame touches every object); Xen seconds-scale.
#include <cstdio>

#include "cli/smoke.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Table III: migration overhead (ms, %% of no-mig runtime) ===\n");
  Table t({"App", "SODEE", "G-JavaMPI", "JESSICA2", "Xen"});
  for (const apps::AppSpec& spec : cli::table1_apps_for(opt)) {
    sodee::MeasuredApp m = sodee::measure_app(spec);
    sodee::OverheadRow r = sodee::overhead_row(m);
    auto cell = [](double ms, double base_s) {
      return fmt("%.0f (%.2f%%)", ms, ms / (base_s * 1e3) * 100.0);
    };
    t.row({r.app, cell(r.sodee_overhead_ms(), r.sodee_nomig_s),
           cell(r.gj_overhead_ms(), r.gj_nomig_s), cell(r.j2_overhead_ms(), r.j2_nomig_s),
           cell(r.xen_overhead_ms(), r.xen_nomig_s)});
  }
  t.print();
  std::printf(
      "\nPaper reference (ms): Fib 52/156/123/3695 | NQ 32/307/195/4906 | "
      "FFT 105/2544/2494/7160 | TSP 178/142/922/6450 (SODEE/G-JavaMPI/JESSICA2/Xen)\n"
      "Shape: SODEE lowest on Fib/NQ/FFT; G-JavaMPI wins TSP; Xen worst everywhere.\n");
  return cli::maybe_write_json(opt, "table3", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table3", cli::ScenarioKind::Bench,
                      "Table III — migration overhead per system", run);

}  // namespace
