// Table I — program characteristics: problem size n, max stack height h,
// accumulated local+static field bytes F, measured at paper scale.
#include <cstdio>

#include "cli/smoke.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Table I: program characteristics (measured at paper scale) ===\n");
  Table t({"App", "n", "h (paper)", "h (measured)", "F (paper)", "F (measured bytes)"});
  for (const apps::AppSpec& spec : cli::table1_apps_for(opt)) {
    bc::Program p = spec.build();
    prep::preprocess_program(p);
    mig::SodNode home("home", p, {});
    int tid = home.vm().spawn(p.find_method(spec.entry), spec.paper_args);
    bool ok = mig::pause_at_depth(home, tid, p.find_method(spec.trigger_method),
                                  spec.paper_depth);
    SOD_CHECK(ok, "trigger not reached");
    int h = static_cast<int>(home.vm().thread(tid).frames.size());
    size_t F = 0;
    {
      const bc::Program& P = home.program();
      std::vector<bc::Ref> roots;
      for (const auto& c : P.classes) {
        if (!home.vm().class_loaded(c.id)) continue;
        F += static_cast<size_t>(c.num_static_slots) * 8;
        for (const bc::Value& v : home.vm().statics_of(c.id))
          if (v.tag == bc::Ty::Ref && v.r != bc::kNull) roots.push_back(v.r);
      }
      if (!roots.empty()) F += home.vm().heap().graph_size(roots);
      for (const auto& fr : home.vm().thread(tid).frames) F += fr.locals.size() * 8;
    }
    home.ti().set_debug_enabled(false);
    t.row({spec.name, std::to_string(spec.paper_n), std::to_string(spec.paper_depth),
           std::to_string(h), spec.paper_F, std::to_string(F)});
  }
  t.print();
  std::printf("\nPaper shape check: Fib/NQ deep stacks with tiny F; FFT F > 64 MB; TSP ~2.5 KB.\n");
  return cli::maybe_write_json(opt, "table1", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table1", cli::ScenarioKind::Bench,
                      "Table I — program characteristics at paper scale", run);

}  // namespace
