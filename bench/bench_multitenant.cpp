// Multi-tenant tail latency under trace-driven load: thousands of
// sessions (per-tenant Table I apps) replayed from a seeded arrival
// schedule against one shared cluster on the straggler topology (two
// Xeons on gigabit plus a 25x-slower wifi device).  Each arrival mix
// (poisson | onoff | soak) runs per policy twice — without and with
// checkpoint-based speculation — and the table reports exact completion
// percentiles (p50/p95/p99, nearest-rank over every session).
//
// Acceptance: every session of every tenant completes with its app's
// single-node reference result, the shared event log passes the
// attempt-aware exactly-once check across all tenants' rounds, and on the
// least-loaded rows the speculation run's p99 is <= the baseline's —
// least_loaded parks segments on the slow device, the straggler tracker
// flags them, and the Xeon backup wins exactly the completions that make
// up the tail.  The whole table is deterministic: two runs with the same
// --seed produce bit-identical JSON.
//
// A final statics section replays the full four-app mix (adding FFT and
// TSP) twice on least-loaded — with and without the whole-program
// analyzer's statics-purity refresh skip — and reports the refresh
// traffic (scans / skipped / bytes) per row; the pair must be
// bit-identical apart from the skipped counter.
//
// Flags: --sessions N, --arrival A (restrict to one mix), --seed S,
// --policy P (restrict to one policy), --churn X (surge join/drain rate),
// --wallclock/--threads N (baseline rows on the thread-pool engine;
// speculation rows need the virtual-time scheduler and are skipped).
#include <cstdio>
#include <string>
#include <vector>

#include "cli/scenario.h"
#include "cluster/loadgen.h"
#include "cluster/placement.h"
#include "support/table.h"

using namespace sod;

namespace {

/// Guest instructions between checkpoints: a handful of checkpoints per
/// tail-scale segment, enough resume points that a device straggler's
/// backup starts close to where it stalled (the checkpoint bench's
/// cadence).
constexpr uint64_t kCheckpointEvery = 20000;

std::vector<cluster::WorkerSpec> straggler_topology() {
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
  return {{"xeon1", {}, sim::Link::gigabit()},
          {"xeon2", {}, sim::Link::gigabit()},
          {"wifi-device", dev, sim::Link::wifi_kbps(2000)}};
}

std::string row_label(cluster::ArrivalKind arrival, cluster::PolicyKind policy, bool spec) {
  std::string s = cluster::arrival_name(arrival);
  s += "/";
  s += cluster::policy_name(policy);
  s += spec ? "/spec" : "/base";
  return s;
}

int run(const cli::ScenarioOptions& opt) {
  cluster::TraceConfig cfg;
  cfg.sessions = opt.sessions > 0 ? opt.sessions : (opt.smoke ? 16 : 48);
  cfg.tenants = 4;
  cfg.apps = 2;  // fib + nqueens load mix
  cfg.seed = opt.seed >= 0 ? static_cast<uint64_t>(opt.seed) : 1;
  // Arrivals comparable to per-session service time: bursts still queue
  // (ON-OFF packs arrivals 16x tighter), but the cluster is not saturated
  // end to end — a speculative backup runs on capacity that would
  // otherwise idle, which is the regime where rescuing the straggler
  // shrinks the tail instead of doubling the backlog.
  cfg.mean_gap = VDur::millis(25);
  cfg.churn = opt.churn >= 0 ? opt.churn : 0.08;
  cfg.failures = 1;
  cfg.heavy = true;  // tail-scale sessions: stragglers long enough to rescue

  std::vector<cluster::ArrivalKind> arrivals;
  if (!opt.arrival.empty()) {
    arrivals.push_back(*cluster::parse_arrival(opt.arrival));
  } else if (opt.smoke) {
    arrivals.push_back(cluster::ArrivalKind::Poisson);
  } else {
    arrivals = {cluster::ArrivalKind::Poisson, cluster::ArrivalKind::OnOff,
                cluster::ArrivalKind::Soak};
  }
  std::vector<cluster::PolicyKind> policies;
  if (!opt.policy.empty()) {
    auto k = cluster::parse_policy(opt.policy);
    if (!k) {
      std::fprintf(stderr, "multitenant: unknown placement policy '%s'\n", opt.policy.c_str());
      return 2;
    }
    policies.push_back(*k);
  } else {
    policies = {cluster::PolicyKind::LeastLoaded, cluster::PolicyKind::Learned};
  }

  std::printf("=== multitenant: %d session(s), %d tenant(s), churn %.2f, seed %llu, "
              "2x Xeon + wifi device ===\n",
              cfg.sessions, cfg.tenants, cfg.churn,
              static_cast<unsigned long long>(cfg.seed));

  Table t({"config", "sessions", "completed", "segments", "joins", "lost", "p50 ms",
           "p95 ms", "p99 ms", "mean ms", "total ms", "stat scans", "stat skipped",
           "stat bytes"});
  bool all_ok = true;
  for (cluster::ArrivalKind arrival : arrivals) {
    cluster::TraceConfig acfg = cfg;
    acfg.arrival = arrival;
    cluster::Trace trace = cluster::make_trace(acfg);
    for (cluster::PolicyKind policy : policies) {
      double base_p99 = -1;
      for (bool spec : {false, true}) {
        if (spec && opt.wallclock) continue;  // engine has no checkpoint surface
        cluster::LoadGenOptions lg;
        lg.policy = policy;
        lg.workers = straggler_topology();
        lg.segments_per_round = 3;  // the third placement must pick the device
        lg.wallclock = opt.wallclock;
        lg.threads = opt.threads;
        // Both modes checkpoint at the same cadence so the spec-vs-base
        // delta isolates speculation itself, not checkpoint overhead
        // (same ablation shape as the checkpoint bench).
        if (!opt.wallclock) lg.dispatch.checkpoint_every = kCheckpointEvery;
        lg.dispatch.speculate = spec;
        auto r = cluster::run_loadgen(trace, lg);
        std::string label = row_label(arrival, policy, spec);
        if (!r.all_ok) {
          std::fprintf(stderr, "multitenant: %s lost sessions (%d/%d ok)\n", label.c_str(),
                       r.completed, r.sessions);
          all_ok = false;
        }
        if (!r.exactly_once) {
          std::fprintf(stderr, "multitenant: %s trace violates exactly-once execution\n",
                       label.c_str());
          all_ok = false;
        }
        std::printf("%s: %d segment(s), %d join(s), %d worker(s) lost, %d re-dispatch(es), "
                    "%d speculation(s) — exactly-once %s\n",
                    label.c_str(), r.segments, r.surge_joins, r.workers_lost, r.redispatched,
                    r.speculated, r.exactly_once ? "OK" : "VIOLATED");
        t.row({label, std::to_string(r.sessions), std::to_string(r.completed),
               std::to_string(r.segments), std::to_string(r.surge_joins),
               std::to_string(r.workers_lost), fmt("%.3f", r.completion_ms.p50()),
               fmt("%.3f", r.completion_ms.p95()), fmt("%.3f", r.completion_ms.p99()),
               fmt("%.3f", r.completion_ms.mean()), fmt("%.3f", r.total_ms),
               std::to_string(r.statics_scans), std::to_string(r.statics_skipped),
               std::to_string(r.statics_bytes)});
        // The tail claim: speculation may only shrink p99 where the policy
        // actually parks work on the straggler (least_loaded).  Learned
        // routes around the device, so its rows are informational.
        if (policy == cluster::PolicyKind::LeastLoaded) {
          if (!spec) {
            base_p99 = r.completion_ms.p99();
          } else if (base_p99 >= 0 && r.completion_ms.p99() > base_p99) {
            std::fprintf(stderr,
                         "multitenant: %s p99 %.3f ms above no-speculation %.3f ms\n",
                         label.c_str(), r.completion_ms.p99(), base_p99);
            all_ok = false;
          }
        }
      }
    }
  }
  // Statics-refresh ablation: the full four-app mix (fib + nqueens + FFT +
  // TSP) replayed twice on least-loaded — with the analyzer-driven purity
  // skip (default) and without it.  FFT's statics are all Ref, so its
  // tenant classes are provably primitive-pure and their refresh scans
  // vanish; TSP's primitive `best` bound keeps its classes scanned in both
  // rows.  The replay must be bit-identical either way: same results, same
  // completion percentiles, same copied bytes.
  {
    cluster::TraceConfig scfg = cfg;
    scfg.apps = 4;
    scfg.arrival = cluster::ArrivalKind::Poisson;
    scfg.failures = 0;  // isolate refresh traffic from re-dispatch noise
    scfg.churn = 0;
    cluster::Trace strace = cluster::make_trace(scfg);
    cluster::LoadGenResult pair[2];
    for (bool skip : {true, false}) {
      cluster::LoadGenOptions lg;
      lg.policy = cluster::PolicyKind::LeastLoaded;
      lg.workers = straggler_topology();
      lg.segments_per_round = 3;
      lg.wallclock = opt.wallclock;
      lg.threads = opt.threads;
      lg.dispatch.statics_skip = skip;
      auto r = cluster::run_loadgen(strace, lg);
      pair[skip ? 0 : 1] = r;
      std::string label = std::string("statics/least-loaded/") + (skip ? "skip" : "noskip");
      if (!r.all_ok) {
        std::fprintf(stderr, "multitenant: %s lost sessions (%d/%d ok)\n", label.c_str(),
                     r.completed, r.sessions);
        all_ok = false;
      }
      std::printf("%s: %zu refresh scan(s), %zu skipped, %zu byte(s) copied\n",
                  label.c_str(), r.statics_scans, r.statics_skipped, r.statics_bytes);
      t.row({label, std::to_string(r.sessions), std::to_string(r.completed),
             std::to_string(r.segments), std::to_string(r.surge_joins),
             std::to_string(r.workers_lost), fmt("%.3f", r.completion_ms.p50()),
             fmt("%.3f", r.completion_ms.p95()), fmt("%.3f", r.completion_ms.p99()),
             fmt("%.3f", r.completion_ms.mean()), fmt("%.3f", r.total_ms),
             std::to_string(r.statics_scans), std::to_string(r.statics_skipped),
             std::to_string(r.statics_bytes)});
    }
    if (pair[0].statics_skipped == 0) {
      std::fprintf(stderr, "multitenant: purity skip never fired on the statics mix\n");
      all_ok = false;
    }
    if (pair[0].results != pair[1].results || pair[0].statics_bytes != pair[1].statics_bytes ||
        pair[0].completion_ms.p99() != pair[1].completion_ms.p99()) {
      std::fprintf(stderr, "multitenant: statics skip changed the replay\n");
      all_ok = false;
    }
  }

  t.print();
  if (!all_ok) std::fprintf(stderr, "multitenant: a load replay failed\n");
  return (all_ok && cli::maybe_write_json(opt, "multitenant", t)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("multitenant", cli::ScenarioKind::Bench,
                      "multi-tenant trace replay: arrival mixes, tail percentiles, speculation",
                      run);

}  // namespace
