// Elastic membership under worker churn: the same Table-I-style workload
// (multi-round concurrent segment dispatch of the Fib app) replayed on a
// heterogeneous topology — two cluster Xeons on gigabit plus an
// iPhone-class device behind wifi — while ephemeral Boxer-style workers
// join and drain on a deterministic schedule derived from --churn.  The
// rounds run through one persistent cluster Scheduler, so --fail-at N
// injects a worker loss after N segment completions (the scheduler
// re-dispatches the lost worker's segments) and --autoscale attaches the
// queue-depth autoscaler with a two-Xeon standby pool.
//
// Three segments per round on two fast workers force the third placement
// decision to matter: least_loaded's inflight-count primary key pushes it
// onto the slow device, while the learned policy's per-class EWMA of
// observed execution times predicts the device's 25x completion cost and
// routes around it.  Without an injected failure the bench fails unless
// the learned policy's mean completion virtual time is <= least_loaded's;
// with one, it instead verifies the exactly-once trace invariant: every
// dispatched segment completes exactly once despite the loss.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "prep/prep.h"
#include "support/table.h"

using namespace sod;

namespace {

constexpr int kSegmentsPerRound = 3;
/// Rounds an ephemeral joiner stays before it is drained.
constexpr int kEphemeralLife = 2;

struct ChurnSchedule {
  std::vector<int> join_round;   ///< per joiner, the round it is added before
  std::vector<int> drain_round;  ///< per joiner, the round it is drained before
};

/// Deterministic join/drain schedule: `churn` is the fraction of rounds
/// that start a membership event, joins spread evenly across the run and
/// each joiner drained kEphemeralLife rounds later (clamped into the run
/// so every joiner also leaves mid-run).
ChurnSchedule make_schedule(double churn, int rounds) {
  ChurnSchedule s;
  if (churn <= 0 || rounds < 2) return s;
  int joins = std::max(1, static_cast<int>(churn * rounds + 0.5));
  for (int j = 0; j < joins; ++j) {
    int at = (j + 1) * rounds / (joins + 1);
    at = std::max(1, std::min(at, rounds - 2));
    s.join_round.push_back(at);
    s.drain_round.push_back(std::min(at + kEphemeralLife, rounds - 1));
  }
  return s;
}

struct ElasticResult {
  int segments = 0;
  int device_segments = 0;
  int joins = 0;
  int leaves = 0;
  int redispatched = 0;
  int workers_lost = 0;
  int auto_joins = 0;
  int checkpoints = 0;
  int speculated = 0;
  double mean_completion_ms = 0;
  double total_ms = 0;
  bool ok = false;
  bool exactly_once = true;
};

ElasticResult run_policy(cluster::PolicyKind kind, const ChurnSchedule& sched, int rounds,
                         const cli::ScenarioOptions& opt) {
  const apps::AppSpec spec = apps::fib_app();
  bc::Program p = spec.build();
  prep::preprocess_program(p);

  cluster::Cluster c(p);
  c.add_worker({"xeon1", {}, sim::Link::gigabit()});
  c.add_worker({"xeon2", {}, sim::Link::gigabit()});
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;  // iPhone-3G-like device profile
  int device_id = c.add_worker({"wifi-device", dev, sim::Link::wifi_kbps(2000)});

  auto policy = cluster::make_policy(kind);
  cluster::DispatchOptions dopt;
  dopt.checkpoint_every = static_cast<uint64_t>(std::max<int64_t>(opt.checkpoint_every, 0));
  dopt.speculate = opt.speculate;
  cluster::Scheduler sched_loop(c, *policy, dopt);
  if (opt.fail_at >= 0) sched_loop.fail_after(opt.fail_at);
  if (opt.autoscale) {
    std::vector<cluster::WorkerSpec> standby{{"standby1", {}, sim::Link::gigabit()},
                                             {"standby2", {}, sim::Link::gigabit()}};
    sched_loop.set_autoscaler(
        std::make_unique<cluster::Autoscaler>(cluster::Autoscaler::Config{}, standby));
  }

  uint16_t trigger = p.find_method(spec.trigger_method);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);

  ElasticResult res;
  std::vector<int> joiner_ids(sched.join_round.size(), -1);
  double completion_sum_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    // Membership events fire between dispatch rounds: drains first (the
    // worker finished its queued work inside the previous dispatch), then
    // this round's joins.  A joiner the scheduler already failed is left
    // alone (drain of a lost worker is a no-op).
    for (size_t j = 0; j < sched.drain_round.size(); ++j) {
      if (sched.drain_round[j] != r || joiner_ids[j] < 0) continue;
      // A joiner the scheduler already failed crashed — it never leaves
      // gracefully, so it must not count as a churn departure.
      if (c.state(joiner_ids[j]) == cluster::WorkerState::Lost) continue;
      c.drain_worker(joiner_ids[j]);
      ++res.leaves;
    }
    for (size_t j = 0; j < sched.join_round.size(); ++j) {
      if (sched.join_round[j] != r) continue;
      joiner_ids[j] =
          c.add_worker({"boxer" + std::to_string(j + 1), {}, sim::Link::gigabit()});
      ++res.joins;
    }
    // Pause four frames deeper than the split so residual recursion
    // survives the round and the next pause can fire again.
    if (!mig::pause_at_depth(c.home(), tid, trigger, kSegmentsPerRound + 4)) break;
    VDur round_start = c.home_now();
    auto out = sched_loop.run(tid, cluster::split_top_frames(kSegmentsPerRound));
    c.home().ti().set_debug_enabled(false);
    res.redispatched += out.redispatched;
    for (const auto& pl : out.placements) {
      ++res.segments;
      if (pl.worker == device_id) ++res.device_segments;
      completion_sum_ms += (pl.completed_at - round_start).ms();
    }
  }
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  res.ok = rr.reason == svm::StopReason::Done &&
           c.home().vm().thread(tid).result.as_i64() == spec.bench_expected;
  res.exactly_once = sched_loop.exactly_once();
  res.workers_lost = sched_loop.workers_lost();
  res.checkpoints = sched_loop.checkpoints();
  res.speculated = sched_loop.speculations();
  if (sched_loop.autoscaler()) res.auto_joins = sched_loop.autoscaler()->joins();
  if (res.segments > 0) res.mean_completion_ms = completion_sum_ms / res.segments;
  res.total_ms = c.home().node().clock.now().ms();
  return res;
}

int run(const cli::ScenarioOptions& opt) {
  double churn = opt.churn >= 0 ? opt.churn : 0.2;
  int rounds = opt.smoke ? 4 : 8;
  ChurnSchedule sched = make_schedule(churn, rounds);
  std::printf("=== elastic membership: 2x Xeon + wifi device, churn %.2f (%zu joiner(s))",
              churn, sched.join_round.size());
  if (opt.fail_at >= 0) std::printf(", fail-at %d", opt.fail_at);
  if (opt.autoscale) std::printf(", autoscale");
  std::printf(" ===\n");

  std::vector<cluster::PolicyKind> kinds;
  if (!opt.policy.empty()) {
    auto k = cluster::parse_policy(opt.policy);
    if (!k) {
      std::fprintf(stderr, "elastic: unknown placement policy '%s'\n", opt.policy.c_str());
      return 2;
    }
    kinds.push_back(*k);
  } else {
    kinds = cluster::all_policies();
  }

  Table t({"policy", "segments", "device segs", "joins", "leaves", "mean completion ms",
           "total ms", "redispatched"});
  bool all_ok = true;
  double least_mean = -1;
  double learned_mean = -1;
  for (cluster::PolicyKind kind : kinds) {
    ElasticResult r = run_policy(kind, sched, rounds, opt);
    all_ok = all_ok && r.ok;
    // With an injected failure a joiner may crash instead of leaving
    // gracefully, so zero leaves is legitimate there.
    if (churn > 0 && (r.joins == 0 || (r.leaves == 0 && opt.fail_at < 0))) {
      std::fprintf(stderr, "elastic: %s run saw no churn (joins %d, leaves %d)\n",
                   cluster::policy_name(kind), r.joins, r.leaves);
      all_ok = false;
    }
    if (!r.exactly_once) {
      std::fprintf(stderr, "elastic: %s trace violates exactly-once execution\n",
                   cluster::policy_name(kind));
      all_ok = false;
    }
    if (opt.fail_at >= 0 && r.workers_lost == 0) {
      std::fprintf(stderr, "elastic: %s run never fired the injected failure\n",
                   cluster::policy_name(kind));
      all_ok = false;
    }
    std::printf("%s trace: %d segment(s), %d re-dispatch(es), %d worker(s) lost, "
                "%d autoscale join(s), %d checkpoint(s), %d speculation(s) — "
                "exactly-once %s\n",
                cluster::policy_name(kind), r.segments, r.redispatched, r.workers_lost,
                r.auto_joins, r.checkpoints, r.speculated,
                r.exactly_once ? "OK" : "VIOLATED");
    t.row({cluster::policy_name(kind), std::to_string(r.segments),
           std::to_string(r.device_segments), std::to_string(r.joins),
           std::to_string(r.leaves), fmt("%.3f", r.mean_completion_ms),
           fmt("%.3f", r.total_ms), std::to_string(r.redispatched)});
    if (kind == cluster::PolicyKind::LeastLoaded) least_mean = r.mean_completion_ms;
    if (kind == cluster::PolicyKind::Learned) learned_mean = r.mean_completion_ms;
  }
  t.print();
  if (!all_ok) std::fprintf(stderr, "elastic: a policy run failed\n");
  bool ordered = true;
  // The learned-vs-least-loaded ordering is the steady-state claim; an
  // injected failure perturbs both runs, so there the exactly-once trace
  // check above is the acceptance criterion instead.
  if (opt.fail_at < 0 && least_mean >= 0 && learned_mean >= 0) {
    ordered = learned_mean <= least_mean;
    if (!ordered)
      std::fprintf(stderr,
                   "elastic: learned mean completion (%.3f ms) above least_loaded (%.3f ms)\n",
                   learned_mean, least_mean);
  }
  return (all_ok && ordered && cli::maybe_write_json(opt, "elastic", t)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("elastic", cli::ScenarioKind::Bench,
                      "policy comparison under elastic worker membership (join/drain churn)",
                      run);

}  // namespace
