// Fig. 5 — space overhead of the two miss-detection instrumentations on
// the paper's Geometry example class (original 501 B -> checks 667 B ->
// fault handlers 902 B in the paper's javac encoding).
#include <cstdio>

#include "bytecode/builder.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "support/table.h"

using namespace sod;
using bc::Ty;

namespace {

/// The paper's Fig. 5 Geometry class: displaceX() with the nested
/// expression p.x = r.nextInt() + (int) p.getX().
bc::Program geometry() {
  bc::ProgramBuilder pb;
  auto& rnd = pb.cls("Random");
  rnd.field("state", Ty::I64);
  auto& nx = rnd.method("nextInt", {{"this", Ty::Ref}}, Ty::I64);
  nx.stmt().aload("this").aload("this").getfield("Random.state")
      .iconst(1103515245).imul().iconst(12345).iadd().iconst(65536).irem()
      .putfield("Random.state");
  nx.stmt().aload("this").getfield("Random.state").iret();
  auto& pt = pb.cls("Point");
  pt.field("x", Ty::I64);
  auto& gx = pt.method("getX", {{"this", Ty::Ref}}, Ty::F64);
  gx.stmt().aload("this").getfield("Point.x").i2d().dret();
  auto& geo = pb.cls("Geometry");
  geo.field("r", Ty::Ref);
  geo.field("p", Ty::Ref);
  auto& dx = geo.method("displaceX", {{"this", Ty::Ref}}, Ty::Void);
  dx.stmt()
      .aload("this").getfield("Geometry.p")
      .aload("this").getfield("Geometry.r").invoke("Random.nextInt")
      .aload("this").getfield("Geometry.p").invoke("Point.getX").d2i()
      .iadd()
      .putfield("Point.x");
  dx.stmt().ret();
  return pb.build();
}

size_t geometry_class_size(const bc::Program& p) {
  return p.class_image(p.find_class("Geometry")).size();
}

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Fig. 5: class image size under each miss-detection scheme ===\n");

  bc::Program orig = geometry();
  prep::PrepOptions flat_only;
  flat_only.miss = prep::MissDetection::None;
  flat_only.restore_handlers = false;
  prep::preprocess_program(orig, flat_only);

  bc::Program checks = geometry();
  prep::PrepOptions co;
  co.miss = prep::MissDetection::StatusChecking;
  co.restore_handlers = false;
  prep::PrepReport crep = prep::preprocess_program(checks, co);

  bc::Program faults = geometry();
  prep::PrepOptions fo;
  fo.miss = prep::MissDetection::ObjectFaulting;
  fo.restore_handlers = false;
  prep::PrepReport frep = prep::preprocess_program(faults, fo);

  bc::Program full = geometry();
  prep::preprocess_program(full);

  size_t so = geometry_class_size(orig);
  size_t sc = geometry_class_size(checks);
  size_t sf = geometry_class_size(faults);
  size_t sfull = geometry_class_size(full);

  Table t({"Variant", "Geometry class (B)", "vs original", "whole image (B)"});
  t.row({"original (flattened)", std::to_string(so), "-", std::to_string(orig.total_image_size())});
  t.row({"status checks (B1)", std::to_string(sc), fmt("%+.0f%%", (double(sc) / so - 1) * 100),
         std::to_string(checks.total_image_size())});
  t.row({"object faulting (B2)", std::to_string(sf), fmt("%+.0f%%", (double(sf) / so - 1) * 100),
         std::to_string(faults.total_image_size())});
  t.row({"faulting + restoration", std::to_string(sfull),
         fmt("%+.0f%%", (double(sfull) / so - 1) * 100), std::to_string(full.total_image_size())});
  t.print();

  std::printf("\nInstrumentation stats: checks inserted %d, NEW rewrites %d; "
              "fault handlers %d, repair calls %d.\n",
              crep.checks.checks_inserted, crep.checks.news_rewritten,
              frep.faults.fault_handlers, frep.faults.repair_calls);
  std::printf(
      "Paper reference: 501 B original, 667 B checks (+33%%), 902 B faulting (+80%%).\n"
      "Shape: both instrumentations grow the class; faulting trades space for zero\n"
      "inline cost (Table V).  Our fixed-width immediates make the check sequences\n"
      "relatively bulkier than javac's — see EXPERIMENTS.md.\n");
  return cli::maybe_write_json(opt, "fig5", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("fig5", cli::ScenarioKind::Bench,
                      "Fig. 5 — instrumentation space overhead on the Geometry class", run);

}  // namespace
