// Table VI — locality gain from migrating the document search to the file
// server (3 x 600 MB over NFS; content scaled 1:100, times re-scaled).
#include <cstdio>

#include "cli/scenario.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Table VI: performance gain from migration (doc search, 3x600 MB) ===\n");
  sodee::LocalityConfig cfg;
  if (opt.smoke) {
    cfg.nfiles = 1;
    cfg.file_bytes = 1 << 20;
  }
  auto rows = sodee::run_locality_experiment(cfg);
  Table t({"System", "no-mig (s)", "with mig (s)", "on server (s)", "gain"});
  for (const auto& r : rows)
    t.row({r.system, fmt("%.2f", r.no_mig_s), fmt("%.2f", r.mig_s), fmt("%.2f", r.on_server_s),
           fmt("%.2f%%", r.gain() * 100)});
  t.print();
  std::printf(
      "\nPaper reference: SODEE 23.25->18.81 s (23.60%% gain), JESSICA2 2.88%%, Xen 0.75%%.\n"
      "Shape: SOD turns NFS reads into local reads cheaply; J2's JVM I/O bottleneck and\n"
      "Xen's multi-second migration eat the benefit.\n");
  return cli::maybe_write_json(opt, "table6", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table6", cli::ScenarioKind::Bench,
                      "Table VI — locality gain from migrating doc search to the data", run);

}  // namespace
