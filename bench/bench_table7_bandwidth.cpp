// Table VII — migration latency to an iPhone-class device vs available
// bandwidth (photo-share app over a throttled Wi-Fi link).
#include <cstdio>

#include "cli/scenario.h"
#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

namespace {

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Table VII: migration latency vs available bandwidth (photo share) ===\n");
  std::vector<double> kbps = {50, 128, 384, 764};
  if (opt.smoke) kbps = {384};
  auto rows = sodee::run_bandwidth_experiment(kbps);
  Table t({"Bandwidth (kbps)", "Capture (ms)", "State xfer (ms)", "Class xfer (ms)",
           "Restore (ms)", "Latency (ms)"});
  for (const auto& r : rows)
    t.row({fmt("%.0f", r.kbps), fmt("%.2f", r.capture_ms), fmt("%.2f", r.state_ms),
           fmt("%.2f", r.class_ms), fmt("%.2f", r.restore_ms), fmt("%.2f", r.latency_ms())});
  t.print();
  std::printf(
      "\nPaper reference (ms): 50 kbps -> 1728.72 | 128 -> 1040.33 | 384 -> 772.04 | "
      "764 -> 716.50.\n"
      "Shape: transfer scales with 1/bandwidth; capture and restore are flat; device\n"
      "restore (Java-level, no JVMTI) far exceeds cluster restore.\n");
  return cli::maybe_write_json(opt, "table7", t) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("table7", cli::ScenarioKind::Bench,
                      "Table VII — migration latency to a device vs bandwidth", run);

}  // namespace
