// Table VII — migration latency to an iPhone-class device vs available
// bandwidth (photo-share app over a throttled Wi-Fi link).
#include <cstdio>

#include "sodee/experiment.h"
#include "support/table.h"

using namespace sod;

int main() {
  std::printf("=== Table VII: migration latency vs available bandwidth (photo share) ===\n");
  auto rows = sodee::run_bandwidth_experiment();
  Table t({"Bandwidth (kbps)", "Capture (ms)", "State xfer (ms)", "Class xfer (ms)",
           "Restore (ms)", "Latency (ms)"});
  for (const auto& r : rows)
    t.row({fmt("%.0f", r.kbps), fmt("%.2f", r.capture_ms), fmt("%.2f", r.state_ms),
           fmt("%.2f", r.class_ms), fmt("%.2f", r.restore_ms), fmt("%.2f", r.latency_ms())});
  t.print();
  std::printf(
      "\nPaper reference (ms): 50 kbps -> 1728.72 | 128 -> 1040.33 | 384 -> 772.04 | "
      "764 -> 716.50.\n"
      "Shape: transfer scales with 1/bandwidth; capture and restore are flat; device\n"
      "restore (Java-level, no JVMTI) far exceeds cluster restore.\n");
  return 0;
}
