// Fig. 1 — the three SOD execution paths, with per-node virtual-time
// timelines demonstrating freeze-time hiding in the workflow case:
//   (a) top frame migrates, executes remotely, control returns home
//   (b) total migration: residual stack follows; execution continues away
//   (c) multi-domain workflow: segments on different nodes; the lower
//       segment restores while the upper one is still executing.
#include <cstdio>

#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "support/table.h"
#include "testlib.h"

using namespace sod;
using bc::Value;
using mig::SodNode;

namespace {

bc::Program prepped_fib() {
  auto p = sod::testing::fib_program();
  prep::preprocess_program(p);
  return p;
}

void scenario_a(Table& summary) {
  std::printf("--- Fig 1(a): migrate top frame, execute, return to home ---\n");
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("node1", p, {});
  SodNode dest("node2", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(20)});
  mig::pause_at_depth(home, tid, fib, 4);
  VDur t0 = home.node().clock.now();
  auto out = mig::offload_and_return(home, tid, 1, dest, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  home.node().clock.wait_until(dest.node().clock.now());
  home.run_guest(tid);
  std::printf("  latency: capture %.3f ms, transfer %.3f ms, restore %.3f ms\n",
              out.timing.capture.ms(), out.timing.transfer.ms(), out.timing.restore.ms());
  std::printf("  result at home: fib(20) = %lld (expected %lld)\n",
              static_cast<long long>(home.vm().thread(tid).result.as_i64()),
              static_cast<long long>(sod::testing::fib_ref(20)));
  std::printf("  home time %.3f ms, dest time %.3f ms\n", (home.node().clock.now() - t0).ms(),
              dest.node().clock.now().ms());
  summary.row({"1a top-frame offload", std::to_string(home.vm().thread(tid).result.as_i64()),
               std::to_string(sod::testing::fib_ref(20)),
               fmt("%.3f", out.timing.latency().ms())});
}

void scenario_b(Table& summary) {
  std::printf("--- Fig 1(b): total migration (residual frames pushed after the top) ---\n");
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("node1", p, {});
  SodNode dest("node2", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(20)});
  mig::pause_at_depth(home, tid, fib, 4);
  auto csTop = mig::capture_segment(home, tid, mig::SegmentSpec{0, 1});
  auto csRest = mig::capture_segment(home, tid, mig::SegmentSpec{1, 4});
  home.ti().set_debug_enabled(false);

  mig::Segment segTop(dest);
  segTop.objman().bind_home(&home, tid, 1, sim::Link::gigabit());
  segTop.restore(csTop);
  mig::Segment segRest(dest);
  segRest.restore(csRest);
  Value top = segTop.run_to_completion();
  segRest.deliver(top);
  Value final = segRest.run_to_completion();
  std::printf("  final result at node2 (no return to node1): %lld (expected %lld)\n",
              static_cast<long long>(final.as_i64()),
              static_cast<long long>(sod::testing::fib_ref(20)));
  summary.row({"1b total migration", std::to_string(final.as_i64()),
               std::to_string(sod::testing::fib_ref(20)),
               fmt("%.3f", dest.node().clock.now().ms())});
}

void scenario_c(Table& summary) {
  std::printf("--- Fig 1(c): workflow — segments on node2 and node3, control 1->2->3 ---\n");
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode n1("node1", p, {});
  SodNode n2("node2", p, {});
  SodNode n3("node3", p, {});
  sim::Link link = sim::Link::gigabit();

  int tid = n1.vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
  mig::pause_at_depth(n1, tid, fib, 3);
  auto csTop = mig::capture_segment(n1, tid, mig::SegmentSpec{0, 1});
  auto csRest = mig::capture_segment(n1, tid, mig::SegmentSpec{1, 3});
  n1.ti().set_debug_enabled(false);

  // Both segments ship concurrently (node1 sends without blocking).
  sim::deliver(n1.node(), n2.node(), link, csTop.wire_size());
  sim::deliver(n1.node(), n3.node(), link, csRest.wire_size());

  mig::Segment segTop(n2);
  segTop.objman().bind_home(&n1, tid, 1, link);
  segTop.restore(csTop);
  VDur n2_restored = n2.node().clock.now();

  mig::Segment segRest(n3);
  segRest.objman().bind_home(&n1, tid, 3, link);
  segRest.restore(csRest);
  VDur n3_restored = n3.node().clock.now();

  Value top = segTop.run_to_completion();
  VDur n2_done = n2.node().clock.now();
  // Forward the result 2 -> 3; node3's restore already happened while
  // node2 was executing: its latency is hidden.
  n3.node().clock.wait_until(n2_done + link.transfer_time(16));
  segRest.deliver(top);
  Value final = segRest.run_to_completion();

  std::printf("  node2 restored at %.3f ms, executed until %.3f ms\n", n2_restored.ms(),
              n2_done.ms());
  std::printf("  node3 restored at %.3f ms (%s node2's execution window)\n", n3_restored.ms(),
              n3_restored < n2_done ? "hidden inside" : "after");
  std::printf("  final result at node3: %lld (expected %lld)\n",
              static_cast<long long>(final.as_i64()),
              static_cast<long long>(sod::testing::fib_ref(22)));
  summary.row({"1c multi-domain workflow", std::to_string(final.as_i64()),
               std::to_string(sod::testing::fib_ref(22)),
               fmt("%.3f", n3.node().clock.now().ms())});
}

int run(const cli::ScenarioOptions& opt) {
  std::printf("=== Fig. 1: elastic live migration with flexible execution paths ===\n");
  Table summary({"Scenario", "result", "expected", "node time (ms)"});
  scenario_a(summary);
  scenario_b(summary);
  scenario_c(summary);
  std::printf("\n");
  summary.print();
  bool ok = true;
  for (const auto& r : summary.rows()) ok = ok && r[1] == r[2];
  if (!ok) std::fprintf(stderr, "fig1: scenario result mismatch\n");
  return (ok && cli::maybe_write_json(opt, "fig1", summary)) ? 0 : 1;
}

SOD_REGISTER_SCENARIO("fig1", cli::ScenarioKind::Bench,
                      "Fig. 1 — the three SOD execution paths", run);

}  // namespace
