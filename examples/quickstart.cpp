// Quickstart: build a guest program, preprocess it for migration, run it
// on a "home" node, pause mid-computation at a migration-safe point,
// offload the top stack frame to a second node, and resume at home with
// the remote result — the minimal end-to-end SOD loop.
#include <cstdio>

#include "bytecode/builder.h"
#include "bytecode/disasm.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"

using namespace sod;
using bc::Label;
using bc::Ty;
using bc::Value;

namespace {

int run(const cli::ScenarioOptions& opt) {
  const int64_t kN = opt.smoke ? 18 : 25;
  // 1. Write a guest program with the builder (this plays javac).
  bc::ProgramBuilder pb;
  auto& f = pb.cls("Demo").method("fib", {{"n", Ty::I64}}, Ty::I64);
  Label rec = f.label();
  f.stmt().iload("n").iconst(2).if_icmpge(rec);
  f.stmt().iload("n").iret();
  f.bind(rec);
  uint16_t a = f.local("a", Ty::I64);
  uint16_t b = f.local("b", Ty::I64);
  f.stmt().iload("n").iconst(1).isub().invoke("Demo.fib").istore(a);
  f.stmt().iload("n").iconst(2).isub().invoke("Demo.fib").istore(b);
  f.stmt().iload(a).iload(b).iadd().iret();
  bc::Program prog = pb.build();

  // 2. Preprocess: establish migration-safe points, inject restoration
  //    handlers and object-fault handlers (the paper's class preprocessor).
  prep::PrepReport rep = prep::preprocess_program(prog);
  std::printf("preprocessed: image %zu -> %zu bytes, %d fault handlers\n\n",
              rep.image_size_before, rep.image_size_after, rep.faults.fault_handlers);
  std::printf("%s\n", bc::disasm_method(prog, prog.method(prog.find_method("Demo.fib"))).c_str());

  // 3. Two nodes on a simulated Gigabit link.
  mig::SodNode home("home", prog, {});
  mig::SodNode cloud("cloud", prog, {});

  // 4. Run at home until the recursion is 8 frames deep.
  uint16_t fib = prog.find_method("Demo.fib");
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(kN)});
  mig::pause_at_depth(home, tid, fib, 8);
  std::printf("paused at depth %zu; offloading the top frame to %s...\n",
              home.vm().thread(tid).frames.size(), cloud.name().c_str());

  // 5. Offload the top frame: capture -> transfer -> restore -> execute ->
  //    write-back; home's stack shrinks by one and resumes seamlessly.
  auto out = mig::offload_and_return(home, tid, 1, cloud, sim::Link::gigabit());
  std::printf("migration latency: capture %.3f ms + transfer %.3f ms + restore %.3f ms\n",
              out.timing.capture.ms(), out.timing.transfer.ms(), out.timing.restore.ms());
  std::printf("remote segment returned %lld; home resumes the residual stack\n",
              static_cast<long long>(out.result.as_i64()));

  home.ti().set_debug_enabled(false);
  home.run_guest(tid);
  std::printf("final result at home: fib(%lld) = %lld\n", static_cast<long long>(kN),
              static_cast<long long>(home.vm().thread(tid).result.as_i64()));
  return 0;
}

SOD_REGISTER_SCENARIO("quickstart", cli::ScenarioKind::Example,
                      "minimal end-to-end SOD loop: build, prep, offload, resume", run);

}  // namespace
