// Multi-domain workflow (the paper's Fig. 1c scenario): a three-frame
// stack splits into two segments that migrate concurrently to two cloud
// nodes; control flows node1 -> node2 -> node3, with the lower segment's
// restoration hidden under the upper segment's execution.
#include <cstdio>

#include "bytecode/builder.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"

using namespace sod;
using bc::Label;
using bc::Ty;
using bc::Value;

namespace {

// A 3-stage pipeline: stage1 -> stage2 -> stage3, each a method doing
// local work; with SOD each stage can run on the node closest to its data.
bc::Program pipeline_program() {
  bc::ProgramBuilder pb;
  auto& cls = pb.cls("Pipe");
  auto& s3 = cls.method("stage3", {{"x", Ty::I64}}, Ty::I64);
  {
    uint16_t i = s3.local("i", Ty::I64);
    uint16_t acc = s3.local("acc", Ty::I64);
    Label l = s3.label(), d = s3.label();
    s3.stmt().iconst(0).istore(i);
    s3.stmt().iload("x").istore(acc);
    s3.bind(l).stmt().iload(i).iconst(1000).if_icmpge(d);
    s3.stmt().iload(acc).iload(i).iadd().istore(acc);
    s3.stmt().iload(i).iconst(1).iadd().istore(i);
    s3.stmt().go(l);
    s3.bind(d).stmt().iload(acc).iret();
  }
  auto& s2 = cls.method("stage2", {{"x", Ty::I64}}, Ty::I64);
  {
    uint16_t t = s2.local("t", Ty::I64);
    s2.stmt().iload("x").iconst(3).imul().invoke("Pipe.stage3").istore(t);
    s2.stmt().iload(t).iconst(7).iadd().iret();
  }
  auto& s1 = cls.method("stage1", {{"x", Ty::I64}}, Ty::I64);
  {
    uint16_t t = s1.local("t", Ty::I64);
    s1.stmt().iload("x").iconst(1).iadd().invoke("Pipe.stage2").istore(t);
    s1.stmt().iload(t).iconst(2).imul().iret();
  }
  return pb.build();
}

int run(const cli::ScenarioOptions&) {
  bc::Program prog = pipeline_program();
  prep::preprocess_program(prog);

  mig::SodNode n1("node1", prog, {});
  mig::SodNode n2("node2", prog, {});
  mig::SodNode n3("node3", prog, {});
  sim::Link link = sim::Link::gigabit();

  // Drive stage1(10) until stage3 is entered: stack = [stage1, stage2, stage3].
  uint16_t stage1 = prog.find_method("Pipe.stage1");
  uint16_t stage3 = prog.find_method("Pipe.stage3");
  int tid = n1.vm().spawn(stage1, std::vector<Value>{Value::of_i64(10)});
  mig::pause_at_depth(n1, tid, stage3, 3);
  std::printf("node1 paused with 3 frames: [stage1, stage2, stage3]\n");

  // Split: top frame (stage3) -> node2; frames stage2+stage1 -> node3.
  auto csTop = mig::capture_segment(n1, tid, mig::SegmentSpec{0, 1});
  auto csRest = mig::capture_segment(n1, tid, mig::SegmentSpec{1, 3});
  n1.ti().set_debug_enabled(false);
  sim::deliver(n1.node(), n2.node(), link, csTop.wire_size());
  sim::deliver(n1.node(), n3.node(), link, csRest.wire_size());

  mig::Segment segTop(n2);
  segTop.objman().bind_home(&n1, tid, 1, link);
  segTop.restore(csTop);

  mig::Segment segRest(n3);
  segRest.objman().bind_home(&n1, tid, 3, link);
  segRest.restore(csRest);
  std::printf("node3 restored its segment at %.3f ms (concurrent with node2)\n",
              n3.node().clock.now().ms());

  Value v3 = segTop.run_to_completion();
  std::printf("node2 finished stage3 -> %lld at %.3f ms; forwarding to node3\n",
              static_cast<long long>(v3.as_i64()), n2.node().clock.now().ms());

  n3.node().clock.wait_until(n2.node().clock.now() + link.transfer_time(16));
  segRest.deliver(v3);
  Value final = segRest.run_to_completion();

  // Host-side reference: stage1(10) = 2*(stage2(11)) = 2*(stage3(33)+7)
  int64_t want = 2 * ((33 + 999 * 1000 / 2 + 500) + 7) + 0;
  // stage3(33) = 33 + sum(0..999) = 33 + 499500
  want = 2 * ((33 + 499500) + 7);
  std::printf("workflow result at node3: %lld (reference %lld)\n",
              static_cast<long long>(final.as_i64()), static_cast<long long>(want));
  return final.as_i64() == want ? 0 : 1;
}

SOD_REGISTER_SCENARIO("workflow_roaming", cli::ScenarioKind::Example,
                      "multi-domain workflow split across two cloud nodes (Fig. 1c)", run);

}  // namespace
