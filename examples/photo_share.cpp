// The paper's Section IV.D scenario: a web server shares photos stored on
// a phone *without installing any server software on the phone*.  The
// server-side search task migrates SOD-style onto the device, lists the
// photo directory there, and returns with the results; frames holding the
// server's sockets stay pinned at home.
#include <cstdio>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"

using namespace sod;
using bc::Value;

namespace {

int run(const cli::ScenarioOptions& opt) {
  const int kPhotos = opt.smoke ? 3 : 6;
  bc::Program prog = apps::build_photoshare();
  prep::preprocess_program(prog);

  mig::SodNode server("webserver", prog, {});
  mig::SodNode::Config phone_cfg;
  phone_cfg.cpu_scale = 25.0;         // iPhone-3G class CPU
  phone_cfg.java_level_restore = true;  // no tool interface on the device
  phone_cfg.heap_limit_bytes = 96 << 20;
  mig::SodNode phone("iphone", prog, phone_cfg);
  sim::Link wifi = sim::Link::wifi_kbps(384);

  // The phone's camera roll.
  sfs::FileStore photos;
  for (int i = 0; i < kPhotos; ++i) {
    sfs::SimFile f;
    f.name = "IMG_0" + std::to_string(42 + i) + ".jpg";
    f.size = (150 + 20 * static_cast<size_t>(i)) << 10;
    f.seed = 500 + static_cast<uint64_t>(i);
    photos.add(f);
  }
  sfs::MountedFs roll(&photos, sfs::MountSpeed::local_disk());

  // A client asks the server for the phone's photos.  The server starts
  // count_photos and migrates the find() frame to the device just before
  // the directory search (paper steps 1-2).
  uint16_t entry = prog.find_method("Photo.count_photos");
  uint16_t find = prog.find_method("Photo.find");
  int tid = server.vm().spawn(entry, std::vector<Value>{Value::of_i64(100)});
  mig::pause_at_depth(server, tid, find, 2);

  // count_photos (the socket-holding request handler) is pinned at home;
  // only the find() frame may leave.
  int migratable = mig::max_migratable_frames(server, tid, {entry});
  std::printf("stack depth 2, pinned handler below: %d frame(s) migratable\n", migratable);

  auto cs = mig::capture_segment(server, tid, mig::SegmentSpec{0, migratable});
  server.ti().set_debug_enabled(false);
  sim::deliver(server.node(), phone.node(), wifi, cs.wire_size());

  mig::Segment seg(phone);
  roll.install(phone.registry());
  phone.enable_class_fetch(&server, wifi);
  seg.objman().bind_home(&server, tid, migratable, wifi);
  seg.restore(cs);
  std::printf("find() restored on the phone (restore %.1f ms at device speed)\n",
              phone.node().clock.now().ms());

  // Steps 3-4: the task searches the device directory and returns home.
  Value found = seg.run_to_completion();
  mig::write_back(seg, server, tid, migratable, found, wifi);
  server.node().clock.wait_until(phone.node().clock.now());
  server.ti().set_debug_enabled(false);
  server.run_guest(tid);
  std::printf("server resumed: %lld photos published as links\n",
              static_cast<long long>(server.vm().thread(tid).result.as_i64()));

  // Step 5: a client clicks a link; a new task fetches that photo's bytes.
  const int64_t kPick = kPhotos / 2;
  int tid2 = server.vm().spawn(prog.find_method("Photo.photo_size"),
                               std::vector<Value>{Value::of_i64(kPick)});
  mig::pause_at_depth(server, tid2, prog.find_method("Photo.fetch"), 2);
  auto out = mig::offload_and_return(server, tid2, 1, phone, wifi);
  server.ti().set_debug_enabled(false);
  server.run_guest(tid2);
  std::printf("photo #%lld fetched through the phone: %lld bytes (mig latency %.1f ms)\n",
              static_cast<long long>(kPick),
              static_cast<long long>(server.vm().thread(tid2).result.as_i64()),
              out.timing.latency().ms());
  return 0;
}

SOD_REGISTER_SCENARIO("photo_share", cli::ScenarioKind::Example,
                      "serverless photo sharing from a phone (Section IV.D)", run);

}  // namespace
