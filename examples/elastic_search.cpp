// Elastic information retrieval (paper Section IV.C): a document-search
// task roams across file-server nodes, searching each server's data where
// it lives instead of dragging 300 MB files across the WAN.
#include <cstdio>

#include "apps/apps.h"
#include "cli/scenario.h"
#include "prep/prep.h"
#include "sod/migrate.h"

using namespace sod;
using bc::Value;

namespace {

int run(const cli::ScenarioOptions& opt) {
  bc::Program prog = apps::build_docsearch();
  prep::preprocess_program(prog);
  sim::Link wan(100e6, VDur::millis(2));
  const int kServers = opt.nodes > 0 ? opt.nodes : (opt.smoke ? 2 : 4);
  // content scale 1:150 of the paper's 300 MB
  const size_t kBytes = opt.smoke ? (256 << 10) : (2 << 20);

  sfs::FileStore catalog;
  for (int i = 0; i < kServers; ++i) {
    sfs::SimFile f;
    f.name = "doc" + std::to_string(i);
    f.size = kBytes;
    f.seed = 11 + static_cast<uint64_t>(i);
    f.needle = "sodneedle";
    f.needle_at = kBytes / 2;
    catalog.add(f);
  }

  mig::SodNode client("client", prog, {});
  std::vector<std::unique_ptr<mig::SodNode>> servers;
  for (int i = 0; i < kServers; ++i)
    servers.push_back(std::make_unique<mig::SodNode>("server" + std::to_string(i), prog,
                                                     mig::SodNode::Config{}));

  mig::ObjectManager om;
  om.install(client);
  sfs::MountSpeed wan_nfs = sfs::MountSpeed::nfs();
  wan_nfs.bytes_per_sec = 24e6;
  sfs::MountedFs client_mount(&catalog, wan_nfs);
  client_mount.install(client.registry());

  uint16_t one = prog.find_method("Search.search_one");
  int tid = client.vm().spawn(prog.find_method("Search.main"),
                              std::vector<Value>{Value::of_i64(kServers)});
  VDur t0 = client.node().clock.now();
  for (int hop = 0; hop < kServers; ++hop) {
    mig::pause_at_depth(client, tid, one, 3);
    int64_t idx = client.ti().get_local(tid, 0, 0).as_i64();
    mig::SodNode& server = *servers[static_cast<size_t>(idx)];
    sfs::MountedFs local(&catalog, sfs::MountSpeed::local_disk());
    local.install(server.registry());
    auto out = mig::offload_and_return(client, tid, 1, server, wan);
    client.node().clock.wait_until(server.node().clock.now());
    std::printf("hop %d -> %s: needle %s, %d object faults, %.2f ms latency\n", hop,
                server.name().c_str(), out.result.as_i64() ? "found" : "missed",
                out.faults.faults, out.timing.latency().ms());
    client.ti().set_debug_enabled(false);
  }
  client.run_guest(tid);
  int64_t hits = client.vm().thread(tid).result.as_i64();
  std::printf("roamed %d servers in %.1f ms (virtual); hits: %lld/%d\n", kServers,
              (client.node().clock.now() - t0).ms(), static_cast<long long>(hits), kServers);
  return hits == kServers ? 0 : 1;
}

SOD_REGISTER_SCENARIO("elastic_search", cli::ScenarioKind::Example,
                      "doc-search task roaming across file servers (Section IV.C)", run);

}  // namespace
