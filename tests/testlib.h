// Shared helpers for SODEE tests: tiny guest programs built on demand.
#pragma once

#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "svm/natives.h"
#include "svm/vm.h"

namespace sod::testing {

using bc::Label;
using bc::ProgramBuilder;
using bc::Ty;
using bc::Value;

/// Program with a single static method `Main.run(i64 n) -> i64` computing
/// fib(n) recursively (the classic deep-stack workload).
inline bc::Program fib_program() {
  ProgramBuilder pb;
  auto& cls = pb.cls("Main");
  auto& f = cls.method("fib", {{"n", Ty::I64}}, Ty::I64);
  {
    Label rec = f.label();
    f.stmt().iload("n").iconst(2).if_icmpge(rec);
    f.stmt().iload("n").iret();
    f.bind(rec);
    uint16_t a = f.local("a", Ty::I64);
    uint16_t b = f.local("b", Ty::I64);
    f.stmt().iload("n").iconst(1).isub().invoke("Main.fib").istore(a);
    f.stmt().iload("n").iconst(2).isub().invoke("Main.fib").istore(b);
    f.stmt().iload(a).iload(b).iadd().iret();
  }
  return pb.build();
}

inline int64_t fib_ref(int64_t n) {
  int64_t a = 0, b = 1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

/// Run a single-method program to completion and return the result.
inline Value run1(const bc::Program& p, std::string_view method,
                  std::vector<Value> args, svm::NativeRegistry* reg = nullptr) {
  svm::VM vm(p, reg);
  return vm.call(method, args);
}

}  // namespace sod::testing
