// End-to-end SOD migration: capture -> transfer -> restore -> remote
// execution with object faulting -> write-back -> home resume.  Also the
// Fig. 1 flows: return-to-home, total migration, multi-hop workflow.
#include <gtest/gtest.h>

#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;
using mig::SodNode;

bc::Program prepped_fib() {
  auto p = testing::fib_program();
  prep::preprocess_program(p);
  return p;
}

/// Linked-list workload: build at home, sum migrated.
///   build(n): list of nodes with val = 1..n, returns head
///   sum(head): walks the list
///   main(n): h = build(n); return sum(h)
bc::Program list_program() {
  ProgramBuilder pb;
  auto& nd = pb.cls("ListNode");
  nd.field("val", Ty::I64);
  nd.field("next", Ty::Ref);

  auto& m = pb.cls("M");
  m.field("total_built", Ty::I64, /*is_static=*/true);

  auto& bld = m.method("build", {{"n", Ty::I64}}, Ty::Ref);
  uint16_t head = bld.local("head", Ty::Ref);
  uint16_t node = bld.local("node", Ty::Ref);
  uint16_t i = bld.local("i", Ty::I64);
  Label loop = bld.label(), done = bld.label();
  bld.stmt().aconst_null().astore(head);
  bld.stmt().iload("n").istore(i);
  bld.bind(loop).stmt().iload(i).iconst(1).if_icmplt(done);
  bld.stmt().new_("ListNode").astore(node);
  bld.stmt().aload(node).iload(i).putfield("ListNode.val");
  bld.stmt().aload(node).aload(head).putfield("ListNode.next");
  bld.stmt().aload(node).astore(head);
  bld.stmt().getstatic("M.total_built").iconst(1).iadd().putstatic("M.total_built");
  bld.stmt().iload(i).iconst(1).isub().istore(i);
  bld.stmt().go(loop);
  bld.bind(done).stmt().aload(head).aret();

  auto& sum = m.method("sum", {{"head", Ty::Ref}}, Ty::I64);
  uint16_t cur = sum.local("cur", Ty::Ref);
  uint16_t s = sum.local("s", Ty::I64);
  Label sl = sum.label(), sd = sum.label();
  sum.stmt().aload("head").astore(cur);
  sum.stmt().iconst(0).istore(s);
  sum.bind(sl).stmt().aload(cur).ifnull(sd);
  sum.stmt().iload(s).aload(cur).getfield("ListNode.val").iadd().istore(s);
  // also mutate each node so write-back has something to do
  sum.stmt().aload(cur).aload(cur).getfield("ListNode.val").iconst(2).imul()
      .putfield("ListNode.val");
  sum.stmt().aload(cur).getfield("ListNode.next").astore(cur);
  sum.stmt().go(sl);
  sum.bind(sd).stmt().iload(s).iret();

  auto& mn = m.method("main", {{"n", Ty::I64}}, Ty::I64);
  uint16_t h = mn.local("h", Ty::Ref);
  uint16_t r = mn.local("r", Ty::I64);
  mn.stmt().iload("n").invoke("M.build").astore(h);
  mn.stmt().aload(h).invoke("M.sum").istore(r);
  mn.stmt().iload(r).getstatic("M.total_built").iadd().iret();
  return pb.build();
}

TEST(Migrate, FibOffloadAndReturn) {
  auto p = prepped_fib();
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  uint16_t fib = p.find_method("Main.fib");

  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(16)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 6));
  ASSERT_EQ(home.vm().thread(tid).frames.size(), 6u);

  auto out = mig::offload_and_return(home, tid, 3, dest, sim::Link::gigabit());
  EXPECT_GT(out.timing.capture.ns, 0);
  EXPECT_GT(out.timing.transfer.ns, 0);
  EXPECT_GT(out.timing.restore.ns, 0);
  EXPECT_GT(out.timing.state_bytes, 0u);

  // Home stack shrank by the three migrated frames and got the result.
  EXPECT_EQ(home.vm().thread(tid).frames.size(), 3u);
  home.ti().set_debug_enabled(false);
  auto rr = home.run_guest(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), fib_ref(16));
}

TEST(Migrate, MigrateAtEveryFeasibleDepth) {
  // Sweep: pause at depths 2..8, offload top half, verify final result.
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  for (int depth = 2; depth <= 8; ++depth) {
    SodNode home("home", p, {});
    SodNode dest("dest", p, {});
    int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(13)});
    ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, depth));
    int nframes = depth / 2 + 1;
    mig::offload_and_return(home, tid, nframes, dest, sim::Link::gigabit());
    home.ti().set_debug_enabled(false);
    auto rr = home.run_guest(tid);
    ASSERT_EQ(rr.reason, svm::StopReason::Done) << "depth " << depth;
    EXPECT_EQ(home.vm().thread(tid).result.as_i64(), fib_ref(13)) << "depth " << depth;
  }
}

TEST(Migrate, ObjectFaultingFetchesOnDemandAndWritesBack) {
  auto p = list_program();
  prep::preprocess_program(p);
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  uint16_t mn = p.find_method("M.main");
  uint16_t sum = p.find_method("M.sum");

  int tid = home.vm().spawn(mn, std::vector<Value>{Value::of_i64(10)});
  // Run until M.sum is entered (frames: main, sum).
  ASSERT_TRUE(mig::pause_at_depth(home, tid, sum, 2));

  auto out = mig::offload_and_return(home, tid, 1, dest, sim::Link::gigabit());
  // The list was fetched node by node on demand.
  EXPECT_GE(out.faults.faults, 10);
  EXPECT_GT(out.faults.bytes, 0u);
  EXPECT_EQ(out.result.as_i64(), 55);
  EXPECT_GE(out.writeback.objects_updated, 10);

  home.ti().set_debug_enabled(false);
  auto rr = home.run_guest(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  // main returns sum + total_built = 55 + 10
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), 65);
}

TEST(Migrate, WriteBackReflectsHeapMutations) {
  auto p = list_program();
  prep::preprocess_program(p);
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  uint16_t bld = p.find_method("M.build");
  uint16_t sum = p.find_method("M.sum");

  // Build the list locally at home.
  Value head = home.vm().call(p.method(bld).name, std::vector<Value>{Value::of_i64(5)});
  // Spawn sum(head) and immediately migrate the whole (1-frame) stack.
  int tid = home.vm().spawn(sum, std::vector<Value>{head});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, sum, 1));
  auto out = mig::offload_and_return(home, tid, 1, dest, sim::Link::gigabit());
  EXPECT_EQ(out.result.as_i64(), 15);
  // The whole stack migrated: thread is Done at home with the result.
  EXPECT_EQ(home.vm().thread(tid).status, svm::ThreadStatus::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), 15);
  // sum() doubled each node's val at the worker; home heap must show it.
  bc::Ref cur = head.as_ref();
  int64_t want = 2;
  uint16_t val_fid = p.find_field("ListNode.val");
  uint16_t next_fid = p.find_field("ListNode.next");
  const bc::Field& valf = p.field(val_fid);
  const bc::Field& nextf = p.field(next_fid);
  while (cur != bc::kNull) {
    EXPECT_EQ(home.vm().heap().obj(cur).fields[valf.slot].as_i64(), want);
    cur = home.vm().heap().obj(cur).fields[nextf.slot].as_ref();
    want += 2;
  }
}

TEST(Migrate, TotalMigrationFig1b) {
  // Fig. 1(b): top frame migrates; the residual frames are pushed to the
  // same destination; when the top segment finishes, its result is
  // delivered into the residual segment at the destination and execution
  // continues there (no return to home).
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});

  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(12)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 4));

  // Segment A: top frame.
  auto csA = mig::capture_segment(home, tid, mig::SegmentSpec{0, 1});
  // Segment B: the residual stack (depths 1..4).
  auto csB = mig::capture_segment(home, tid, mig::SegmentSpec{1, 4});
  home.ti().set_debug_enabled(false);

  mig::Segment segA(dest);
  segA.objman().bind_home(&home, tid, 0, sim::Link::gigabit());
  // Worker frames for A mirror home depth 0 only; frame 0 <-> depth 0.
  segA.objman().bind_home(&home, tid, 1, sim::Link::gigabit());
  segA.restore(csA);
  Value a = segA.run_to_completion();

  mig::Segment segB(dest);
  segB.restore(csB);
  segB.deliver(a);
  Value final = segB.run_to_completion();
  EXPECT_EQ(final.as_i64(), fib_ref(12));
}

TEST(Migrate, WorkflowFig1cAcrossThreeNodes) {
  // Fig. 1(c): frame 1 -> node 2, frames 2..3 -> node 3, control flows
  // 1 -> 2 -> 3.  The lower segment restores on node 3 concurrently, so
  // its restore cost overlaps segment A's execution (freeze-time hiding).
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode n1("node1", p, {});
  SodNode n2("node2", p, {});
  SodNode n3("node3", p, {});

  int tid = n1.vm().spawn(fib, std::vector<Value>{Value::of_i64(12)});
  ASSERT_TRUE(mig::pause_at_depth(n1, tid, fib, 3));

  auto csTop = mig::capture_segment(n1, tid, mig::SegmentSpec{0, 1});
  auto csRest = mig::capture_segment(n1, tid, mig::SegmentSpec{1, 3});
  n1.ti().set_debug_enabled(false);

  mig::Segment segTop(n2);
  segTop.objman().bind_home(&n1, tid, 1, sim::Link::gigabit());
  segTop.restore(csTop);

  mig::Segment segRest(n3);
  segRest.objman().bind_home(&n1, tid, 3, sim::Link::gigabit());
  segRest.restore(csRest);

  // Control: node2 executes the top frame, forwards its result to node3.
  Value top = segTop.run_to_completion();
  segRest.deliver(top);
  Value final = segRest.run_to_completion();
  EXPECT_EQ(final.as_i64(), fib_ref(12));
}

TEST(Migrate, PinnedFramesLimitSegment) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("home", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(12)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 5));
  // Pin nothing: whole stack migratable.
  EXPECT_EQ(mig::max_migratable_frames(home, tid, {}), 5);
  // Pin fib itself: nothing migratable (socket-holder scenario).
  EXPECT_EQ(mig::max_migratable_frames(home, tid, {fib}), 0);
  home.ti().set_debug_enabled(false);
}

TEST(Migrate, PauseAtNextMspAndOffload) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(14)});
  // Run a random-ish amount, then pause at the next MSP.
  home.run_guest(tid, 3000);
  ASSERT_TRUE(mig::pause_at_next_msp(home, tid));
  int depth = static_cast<int>(home.vm().thread(tid).frames.size());
  int nframes = std::max(1, depth / 2);
  mig::offload_and_return(home, tid, nframes, dest, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  auto rr = home.run_guest(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), fib_ref(14));
}

TEST(Migrate, CapturedStateSerializationRoundTrip) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("home", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(10)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 4));
  auto cs = mig::capture_segment(home, tid, mig::SegmentSpec{0, 4});
  home.ti().set_debug_enabled(false);

  ByteWriter w;
  cs.serialize(w);
  EXPECT_EQ(w.size(), cs.wire_size());
  ByteReader r(w.bytes());
  auto cs2 = mig::CapturedState::deserialize(r);
  ASSERT_EQ(cs2.frames.size(), cs.frames.size());
  for (size_t i = 0; i < cs.frames.size(); ++i) {
    EXPECT_EQ(cs2.frames[i].method, cs.frames[i].method);
    EXPECT_EQ(cs2.frames[i].pc, cs.frames[i].pc);
    EXPECT_EQ(cs2.frames[i].pending_callee, cs.frames[i].pending_callee);
    ASSERT_EQ(cs2.frames[i].locals.size(), cs.frames[i].locals.size());
    for (size_t k = 0; k < cs.frames[i].locals.size(); ++k)
      EXPECT_TRUE(cs2.frames[i].locals[k].same_as(cs.frames[i].locals[k]));
  }
  ASSERT_EQ(cs2.statics.size(), cs.statics.size());
}

TEST(Migrate, TransferTimeScalesWithBandwidth) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  VDur fast_transfer, slow_transfer;
  for (bool slow : {false, true}) {
    SodNode home("home", p, {});
    SodNode dest("dest", p, {});
    int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(12)});
    ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 4));
    sim::Link link = slow ? sim::Link::wifi_kbps(128) : sim::Link::gigabit();
    auto out = mig::offload_and_return(home, tid, 2, dest, link);
    (slow ? slow_transfer : fast_transfer) = out.timing.transfer;
  }
  EXPECT_GT(slow_transfer.ns, 100 * fast_transfer.ns);
}

}  // namespace
}  // namespace sod
