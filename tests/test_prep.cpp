// Preprocessor: flattening (MSP establishment), restoration-handler and
// object-fault-handler injection, status-check instrumentation — all
// checked for semantic transparency on never-migrated runs.
#include <gtest/gtest.h>

#include "bytecode/verifier.h"
#include "prep/prep.h"
#include "sod/objman.h"
#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;
using prep::MissDetection;
using prep::PrepOptions;

/// Program with deliberately nested call expressions: fib written as
/// "return fib(n-1) + fib(n-2)" in a single statement.
bc::Program nested_fib_program() {
  ProgramBuilder pb;
  auto& f = pb.cls("Main").method("fib", {{"n", Ty::I64}}, Ty::I64);
  Label rec = f.label();
  f.stmt().iload("n").iconst(2).if_icmpge(rec);
  f.stmt().iload("n").iret();
  f.bind(rec);
  f.stmt()
      .iload("n").iconst(1).isub().invoke("Main.fib")
      .iload("n").iconst(2).isub().invoke("Main.fib")
      .iadd()
      .iret();
  return pb.build();
}

bc::Program geometry_program() {
  // The paper's running example: p.x = r.nextInt() + (int) p.getX()
  ProgramBuilder pb;
  auto& rnd = pb.cls("Random");
  rnd.field("state", Ty::I64);
  auto& nx = rnd.method("nextInt", {{"this", Ty::Ref}}, Ty::I64);
  nx.stmt().aload("this").aload("this").getfield("Random.state")
      .iconst(1103515245).imul().iconst(12345).iadd().iconst(65536).irem()
      .putfield("Random.state");
  nx.stmt().aload("this").getfield("Random.state").iret();

  auto& pt = pb.cls("Point");
  pt.field("x", Ty::I64);
  auto& gx = pt.method("getX", {{"this", Ty::Ref}}, Ty::F64);
  gx.stmt().aload("this").getfield("Point.x").i2d().dret();

  auto& geo = pb.cls("Geometry");
  geo.field("r", Ty::Ref);
  geo.field("p", Ty::Ref);
  auto& mk = geo.method("make", {}, Ty::Ref);
  uint16_t g = mk.local("g", Ty::Ref);
  mk.stmt().new_("Geometry").astore(g);
  mk.stmt().aload(g).new_("Random").putfield("Geometry.r");
  mk.stmt().aload(g).new_("Point").putfield("Geometry.p");
  mk.stmt().aload(g).getfield("Geometry.p").iconst(10).putfield("Point.x");
  mk.stmt().aload(g).aret();
  // displaceX with the paper's nested expression, single statement
  auto& dx = geo.method("displaceX", {{"this", Ty::Ref}}, Ty::I64);
  dx.stmt()
      .aload("this").getfield("Geometry.p")
      .aload("this").getfield("Geometry.r").invoke("Random.nextInt")
      .aload("this").getfield("Geometry.p").invoke("Point.getX").d2i()
      .iadd()
      .putfield("Point.x");
  dx.stmt().aload("this").getfield("Geometry.p").getfield("Point.x").iret();

  auto& m = pb.cls("M");
  auto& go = m.method("go", {}, Ty::I64);
  uint16_t gg = go.local("g", Ty::Ref);
  uint16_t res = go.local("res", Ty::I64);
  go.stmt().invoke("Geometry.make").astore(gg);
  go.stmt().aload(gg).invoke("Geometry.displaceX").istore(res);
  go.stmt().iload(res).iret();
  return pb.build();
}

int64_t geometry_expected() {
  int64_t state = 0;
  state = (state * 1103515245 + 12345) % 65536;
  return state + 10;
}

/// VM wired with a standalone object manager (no home) so fault handlers
/// behave correctly on local runs.
struct LocalRt {
  mig::SodNode node;
  explicit LocalRt(const bc::Program& p) : node("local", p, {}) {
    om.install(node);
  }
  mig::ObjectManager om;
  Value call(std::string_view m, std::vector<Value> args) {
    return node.vm().call(m, args);
  }
};

TEST(Flatten, ExtractsNestedCalls) {
  auto p = nested_fib_program();
  const bc::Method& before = p.method(p.find_method("Main.fib"));
  size_t stmts_before = before.stmt_starts.size();
  prep::FlattenStats st = prep::flatten_program(p);
  EXPECT_GE(st.calls_extracted, 1);
  EXPECT_GE(st.temps_added, 1);
  const bc::Method& after = p.method(p.find_method("Main.fib"));
  EXPECT_GT(after.stmt_starts.size(), stmts_before);
  // Still runs correctly.
  EXPECT_EQ(run1(p, "Main.fib", {Value::of_i64(15)}).as_i64(), fib_ref(15));
}

TEST(Flatten, EveryStatementHasEmptyStack) {
  auto p = nested_fib_program();
  prep::flatten_program(p);
  // verify_method with MSP enforcement passes for every method.
  for (const auto& m : p.methods) {
    if (m.code.empty()) continue;
    EXPECT_NO_THROW(bc::verify_method(p, m)) << m.name;
  }
}

TEST(Flatten, GeometryExampleMatchesPaperShape) {
  auto p = geometry_program();
  prep::FlattenStats st = prep::flatten_program(p);
  // The paper's example extracts two temps out of displaceX.
  EXPECT_GE(st.calls_extracted, 2);
  EXPECT_EQ(run1(p, "M.go", {}).as_i64(), geometry_expected());
}

TEST(Flatten, IdempotentOnFlatCode) {
  auto p = fib_program();  // already three-address style
  prep::FlattenStats s1 = prep::flatten_program(p);
  EXPECT_EQ(s1.calls_extracted, 0);
  EXPECT_EQ(run1(p, "Main.fib", {Value::of_i64(12)}).as_i64(), fib_ref(12));
}

TEST(Prep, FullPipelinePreservesSemantics) {
  auto p = geometry_program();
  prep::PrepReport rep = prep::preprocess_program(p);
  EXPECT_GT(rep.faults.fault_handlers, 0);
  EXPECT_GT(rep.image_size_after, rep.image_size_before);
  LocalRt rt(p);
  EXPECT_EQ(rt.call("M.go", {}).as_i64(), geometry_expected());
}

TEST(Prep, FibPipelinePreservesSemantics) {
  auto p = fib_program();
  prep::preprocess_program(p);
  LocalRt rt(p);
  EXPECT_EQ(rt.call("Main.fib", {Value::of_i64(18)}).as_i64(), fib_ref(18));
}

TEST(Prep, ApplicationNpeIsPassedThroughToGuestHandler) {
  // f(): try { return g.p.x } catch (NPE) { return -7 }  with g.p == null
  ProgramBuilder pb;
  auto& geo = pb.cls("Geometry");
  geo.field("p", Ty::Ref);
  auto& pt = pb.cls("Point");
  pt.field("x", Ty::I64);
  auto& f = pb.cls("M").method("f", {}, Ty::I64);
  uint16_t g = f.local("g", Ty::Ref);
  uint16_t t = f.local("t", Ty::I64);
  Label h = f.label();
  uint32_t from = f.here();
  f.stmt().new_("Geometry").astore(g);
  f.stmt().aload(g).getfield("Geometry.p").getfield("Point.x").istore(t);
  f.stmt().iload(t).iret();
  uint32_t to = f.here();
  f.bind(h).pop().stmt().iconst(-7).iret();
  f.ex_entry(from, to, h, bc::builtin::kNullPointer);
  auto p = pb.build();
  prep::preprocess_program(p);

  LocalRt rt(p);
  EXPECT_EQ(rt.call("M.f", {}).as_i64(), -7);
}

TEST(Prep, UncaughtApplicationNpeCrashesThread) {
  ProgramBuilder pb;
  auto& pt = pb.cls("Point");
  pt.field("x", Ty::I64);
  auto& f = pb.cls("M").method("f", {}, Ty::I64);
  uint16_t a = f.local("a", Ty::Ref);
  f.stmt().aconst_null().astore(a);
  f.stmt().aload(a).getfield("Point.x").iret();
  auto p = pb.build();
  prep::preprocess_program(p);

  LocalRt rt(p);
  int tid = rt.node.vm().spawn(p.find_method("M.f"), {});
  auto rr = rt.node.vm().run(tid);
  EXPECT_EQ(rr.reason, svm::StopReason::Crashed);
  EXPECT_EQ(rt.node.vm().class_of(rt.node.vm().thread(tid).uncaught),
            bc::builtin::kNullPointer);
  // The fault handler ran, made no progress, and rethrew.
  EXPECT_EQ(rt.om.stats().app_npe_rethrown, 1);
}

TEST(Prep, StatusChecksPreserveSemantics) {
  auto p = geometry_program();
  PrepOptions opts;
  opts.miss = MissDetection::StatusChecking;
  prep::PrepReport rep = prep::preprocess_program(p, opts);
  EXPECT_GT(rep.checks.checks_inserted, 0);
  EXPECT_GT(rep.checks.news_rewritten, 0);
  LocalRt rt(p);
  EXPECT_EQ(rt.call("M.go", {}).as_i64(), geometry_expected());
}

TEST(Prep, SpaceOverheadOfBothInstrumentations) {
  // Paper Fig. 5: both miss-detection schemes grow the class image
  // (501 B -> 667 B checks / 902 B faulting for Geometry).  Both
  // directions of growth must hold here; the relative ordering between
  // the two schemes depends on instruction encoding (see EXPERIMENTS.md).
  auto orig = geometry_program();
  size_t size_orig = orig.total_image_size();

  auto faults = geometry_program();
  PrepOptions fo;
  fo.miss = MissDetection::ObjectFaulting;
  fo.restore_handlers = false;  // isolate the miss-detection cost
  prep::preprocess_program(faults, fo);
  size_t size_faults = faults.total_image_size();

  auto checks = geometry_program();
  PrepOptions co;
  co.miss = MissDetection::StatusChecking;
  co.restore_handlers = false;
  prep::preprocess_program(checks, co);
  size_t size_checks = checks.total_image_size();

  EXPECT_GT(size_checks, size_orig);
  EXPECT_GT(size_faults, size_orig);
  // Faulting must cost a nontrivial fraction more than the original
  // (the paper's "trade space for time").
  EXPECT_GT(size_faults, size_orig + size_orig / 10);
}

TEST(Prep, RestoreHandlerRejoinsAtEveryMsp) {
  // Drive the restoration handler manually: for a loop-sum method, feed a
  // mid-loop state (i=5, s=10, n=10) and check execution continues from
  // the loop head: 10 + 5 + 6 + ... + 10 = 55.
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("sum", {{"n", Ty::I64}}, Ty::I64);
  uint16_t i = f.local("i", Ty::I64);
  uint16_t s = f.local("s", Ty::I64);
  Label head = f.label(), done = f.label();
  f.stmt().iconst(1).istore(i);
  f.stmt().iconst(0).istore(s);
  f.bind(head).stmt().iload(i).iload("n").if_icmpgt(done);
  f.stmt().iload(s).iload(i).iadd().istore(s);
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(head);
  f.bind(done).stmt().iload(s).iret();
  auto p = pb.build();
  uint16_t mid = p.find_method("M.sum");
  uint32_t loop_head_pc = p.method(mid).stmt_starts[2];
  prep::preprocess_program(p);

  svm::NativeRegistry reg;
  // cs natives feeding the crafted state
  std::vector<Value> locals = {Value::of_i64(10), Value::of_i64(5), Value::of_i64(10)};
  reg.bind("cs.read_i64", [&](svm::VM&, std::span<Value> a) {
    return locals[static_cast<size_t>(a[0].i)];
  });
  reg.bind("cs.read_f64", [&](svm::VM&, std::span<Value>) { return Value::of_f64(0); });
  reg.bind("cs.read_ref", [&](svm::VM&, std::span<Value>) { return Value::null(); });
  reg.bind("cs.read_pc",
           [&](svm::VM&, std::span<Value>) { return Value::of_i64(loop_head_pc); });

  svm::VM vm(p, &reg);
  int tid = vm.spawn(mid, std::vector<Value>{Value::of_i64(0)});
  vm.raise_in_thread(tid, bc::builtin::kInvalidState, "restore");
  auto rr = vm.run(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(vm.thread(tid).result.as_i64(), 55);
}

TEST(Prep, ArraysThroughFullPipeline) {
  // Array-heavy method (daload/dastore/iaload/arraylen) survives prep.
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("norm", {{"n", Ty::I64}}, Ty::F64);
  uint16_t a = f.local("a", Ty::Ref);
  uint16_t i = f.local("i", Ty::I64);
  uint16_t s = f.local("s", Ty::F64);
  Label h1 = f.label(), d1 = f.label(), h2 = f.label(), d2 = f.label();
  f.stmt().iload("n").newarray(Ty::F64).astore(a);
  f.stmt().iconst(0).istore(i);
  f.bind(h1).stmt().iload(i).aload(a).arraylen().if_icmpge(d1);
  f.stmt().aload(a).iload(i).iload(i).i2d().dastore();
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h1);
  f.bind(d1).stmt().dconst(0).dstore(s);
  f.stmt().iconst(0).istore(i);
  f.bind(h2).stmt().iload(i).aload(a).arraylen().if_icmpge(d2);
  f.stmt().dload(s).aload(a).iload(i).daload().aload(a).iload(i).daload().dmul().dadd().dstore(s);
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h2);
  f.bind(d2).stmt().dload(s).dret();
  auto p = pb.build();
  prep::preprocess_program(p);
  LocalRt rt(p);
  // sum i^2 for i in 0..9 = 285
  EXPECT_DOUBLE_EQ(rt.call("M.norm", {Value::of_i64(10)}).as_f64(), 285.0);
}

}  // namespace
}  // namespace sod
