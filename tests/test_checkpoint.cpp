// Checkpoint & speculation subsystem: in-flight segments re-capture at
// migration-safe points with home-translated refs and incremental delta
// sizing; the scheduler resumes a lost attempt from the newest checkpoint
// (instead of restarting from the round-start capture), races straggler
// attempts against a backup copy with first-completion-wins semantics,
// suppresses the loser's write-back, and keeps the whole event log
// deterministic and attempt-aware exactly-once.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "apps/apps.h"
#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod::cluster {
namespace {

using bc::ProgramBuilder;
using bc::Ty;
using bc::Value;

/// Chunk/checkpoint cadence for tests: a handful of checkpoints per
/// segment execution of the Fib workload.
constexpr uint64_t kEvery = 20000;

bc::Program prepped_fib() {
  auto p = sod::testing::fib_program();
  prep::preprocess_program(p);
  return p;
}

// --- store and tracker units ---

TEST(CheckpointStore, KeepsTheNewestEntryPerSegment) {
  CheckpointStore s;
  EXPECT_EQ(s.latest(0, 0), nullptr);
  mig::SegmentCheckpoint a;
  a.state_bytes = 100;
  a.heap_bytes = 20;
  s.record(0, 0, a, /*attempt=*/1, VDur::millis(1));
  mig::SegmentCheckpoint b;
  b.state_bytes = 120;
  b.heap_bytes = 8;
  s.record(0, 0, b, /*attempt=*/1, VDur::millis(2));
  s.record(0, 1, a, /*attempt=*/1, VDur::millis(3));
  ASSERT_NE(s.latest(0, 0), nullptr);
  EXPECT_EQ(s.latest(0, 0)->seq, 2);
  EXPECT_EQ(s.latest(0, 0)->ckpt.state_bytes, 120u);
  EXPECT_EQ(s.latest(0, 0)->taken_at, VDur::millis(2));
  EXPECT_EQ(s.total_recorded(), 3);
  EXPECT_EQ(s.total_bytes(), 100u + 20 + 120 + 8 + 100 + 20);
  EXPECT_EQ(s.live(), 2);
  s.drop(0, 0);
  EXPECT_EQ(s.latest(0, 0), nullptr);
  EXPECT_EQ(s.live(), 1);
  EXPECT_EQ(s.total_recorded(), 3);  // lifetime counters survive drops
}

TEST(AttemptTracker, FlagsStragglersOnlyAfterLearning) {
  AttemptTracker t(AttemptTracker::Config{2.0, 0.5});
  // Nothing learned: no baseline to be slow against.
  EXPECT_FALSE(t.straggler(7, VDur::seconds(100)));
  EXPECT_EQ(t.expected_span(7), VDur{});
  t.observe(7, VDur::millis(10));
  EXPECT_EQ(t.expected_span(7), VDur::millis(10));
  EXPECT_FALSE(t.straggler(7, VDur::millis(19)));
  EXPECT_TRUE(t.straggler(7, VDur::millis(21)));
  // EWMA update: 0.5 * 30 + 0.5 * 10 = 20 ms.
  t.observe(7, VDur::millis(30));
  EXPECT_EQ(t.expected_span(7), VDur::millis(20));
  // Other classes stay unlearned.
  EXPECT_FALSE(t.straggler(8, VDur::seconds(100)));
}

// --- migration-level checkpoint round trip ---

TEST(Checkpoint, InFlightSegmentResumesOnAnotherWorker) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  mig::SodNode home("home", p, {});
  mig::SodNode wa("wa", p, {});
  mig::SodNode wb("wb", p, {});
  sim::Link link = sim::Link::gigabit();
  wa.enable_class_fetch(&home, link);
  wb.enable_class_fetch(&home, link);

  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(21)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 2));
  mig::CapturedState cs = mig::capture_segment(home, tid, {0, 1});
  home.ti().set_debug_enabled(false);
  EXPECT_FALSE(cs.home_refs);

  mig::Segment sa(wa);
  sa.objman().bind_home(&home, tid, 1, link);
  sa.restore(cs);

  // Run a few chunks on worker A, then checkpoint mid-execution.
  mig::CheckpointDeltas deltas;
  ASSERT_EQ(sa.run_chunk(kEvery), svm::StopReason::SafePoint);
  ASSERT_EQ(sa.run_chunk(kEvery), svm::StopReason::SafePoint);
  auto ck = mig::checkpoint_segment(sa, home, link, deltas);
  EXPECT_TRUE(ck.state.home_refs);
  EXPECT_GT(ck.state_bytes, 0u);
  EXPECT_GT(ck.state.frames.size(), 1u);  // recursion deepened past the capture

  // The checkpoint's wire form round-trips, home_refs flag included.
  {
    ByteWriter w;
    ck.state.serialize(w);
    EXPECT_EQ(w.size(), ck.state_bytes);
    ByteReader r(w.bytes());
    mig::CapturedState back = mig::CapturedState::deserialize(r);
    EXPECT_TRUE(back.home_refs);
    EXPECT_EQ(back.frames.size(), ck.state.frames.size());
  }

  // Abandon worker A; restore the checkpoint on worker B and finish there.
  mig::Segment sb(wb);
  sb.objman().bind_home(&home, tid, 1, link);
  sb.restore(ck.state);
  Value result = sb.run_to_completion();
  mig::write_back(sb, home, tid, 1, result, link);

  home.ti().set_debug_enabled(false);
  ASSERT_EQ(home.run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), sod::testing::fib_ref(21));
}

/// Heap-bearing guest: `keep` is written once before the loop, `hot` is
/// mutated every iteration — so a second checkpoint must re-ship hot but
/// skip keep (the incremental delta).
bc::Program two_object_program() {
  ProgramBuilder pb;
  auto& nd = pb.cls("Node");
  nd.field("val", Ty::I64);
  auto& m = pb.cls("M").method("work", {{"n", Ty::I64}}, Ty::I64);
  uint16_t keep = m.local("keep", Ty::Ref);
  uint16_t hot = m.local("hot", Ty::Ref);
  uint16_t i = m.local("i", Ty::I64);
  bc::Label loop = m.label();
  bc::Label done = m.label();
  m.stmt().new_("Node").astore(keep);
  m.stmt().aload(keep).iconst(7).putfield("Node.val");
  m.stmt().new_("Node").astore(hot);
  m.stmt().iconst(0).istore(i);
  m.bind(loop);
  m.stmt().iload(i).iload("n").if_icmpge(done);
  m.stmt().aload(hot).aload(hot).getfield("Node.val").iload(i).iadd().putfield("Node.val");
  m.stmt().iload(i).iconst(1).iadd().istore(i);
  m.stmt().go(loop);
  m.bind(done);
  m.stmt().aload(keep).getfield("Node.val").aload(hot).getfield("Node.val").iadd().iret();
  return pb.build();
}

TEST(Checkpoint, DeltaSizingSkipsUnchangedObjects) {
  auto p = two_object_program();
  prep::preprocess_program(p);
  uint16_t work = p.find_method("M.work");
  mig::SodNode home("home", p, {});
  mig::SodNode w("w", p, {});
  sim::Link link = sim::Link::gigabit();
  w.enable_class_fetch(&home, link);

  int64_t n = 3000;
  int tid = home.vm().spawn(work, std::vector<Value>{Value::of_i64(n)});
  ASSERT_TRUE(mig::pause_at_next_msp(home, tid));
  mig::CapturedState cs = mig::capture_segment(home, tid, {0, 1});
  home.ti().set_debug_enabled(false);

  mig::Segment seg(w);
  seg.objman().bind_home(&home, tid, 1, link);
  seg.restore(cs);

  mig::CheckpointDeltas deltas;
  ASSERT_EQ(seg.run_chunk(4000), svm::StopReason::SafePoint);
  auto first = mig::checkpoint_segment(seg, home, link, deltas);
  ASSERT_EQ(seg.run_chunk(4000), svm::StopReason::SafePoint);
  auto second = mig::checkpoint_segment(seg, home, link, deltas);

  // First checkpoint ships both objects (creations); the second ships the
  // mutated `hot` but skips the untouched `keep`, so its delta is
  // strictly below its full (non-incremental) payload.
  EXPECT_EQ(first.heap_bytes, first.full_heap_bytes);
  EXPECT_GE(first.objects_shipped, 2);
  EXPECT_LT(second.heap_bytes, second.full_heap_bytes);
  EXPECT_EQ(second.objects_shipped, 1);

  Value result = seg.run_to_completion();
  mig::write_back(seg, home, tid, 1, result, link);
  home.ti().set_debug_enabled(false);
  ASSERT_EQ(home.run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), 7 + n * (n - 1) / 2);
}

/// Guest whose segment only *reads* a home object: `main` builds the Node
/// at home, `work` faults it in and sums its field — never mutating it.
bc::Program read_only_program() {
  ProgramBuilder pb;
  auto& nd = pb.cls("Node");
  nd.field("val", Ty::I64);
  auto& M = pb.cls("M");
  auto& mk = M.method("main", {{"n", Ty::I64}}, Ty::I64);
  uint16_t node = mk.local("node", Ty::Ref);
  mk.stmt().new_("Node").astore(node);
  mk.stmt().aload(node).iconst(41).putfield("Node.val");
  mk.stmt().aload(node).iload("n").invoke("M.work").iret();
  auto& w = M.method("work", {{"r", Ty::Ref}, {"n", Ty::I64}}, Ty::I64);
  uint16_t sum = w.local("sum", Ty::I64);
  uint16_t i = w.local("i", Ty::I64);
  bc::Label loop = w.label();
  bc::Label done = w.label();
  w.stmt().iconst(0).istore(sum);
  w.stmt().iconst(0).istore(i);
  w.bind(loop);
  w.stmt().iload(i).iload("n").if_icmpge(done);
  w.stmt().iload(sum).aload("r").getfield("Node.val").iadd().istore(sum);
  w.stmt().iload(i).iconst(1).iadd().istore(i);
  w.stmt().go(loop);
  w.bind(done);
  w.stmt().iload(sum).iret();
  return pb.build();
}

TEST(Checkpoint, FirstCheckpointSkipsFetchedButUnmodifiedObjects) {
  auto p = read_only_program();
  prep::preprocess_program(p);
  uint16_t work = p.find_method("M.work");
  mig::SodNode home("home", p, {});
  mig::SodNode w("w", p, {});
  sim::Link link = sim::Link::gigabit();
  w.enable_class_fetch(&home, link);

  int64_t n = 2000;
  int tid = home.vm().spawn(p.find_method("M.main"), std::vector<Value>{Value::of_i64(n)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, work, 2));
  mig::CapturedState cs = mig::capture_segment(home, tid, {0, 1});
  home.ti().set_debug_enabled(false);

  mig::Segment seg(w);
  seg.objman().bind_home(&home, tid, 1, link);
  seg.restore(cs);

  mig::CheckpointDeltas deltas;
  ASSERT_EQ(seg.run_chunk(3000), svm::StopReason::SafePoint);
  ASSERT_GE(seg.objman().stats().faults, 1);  // the Node was fetched
  auto ck = mig::checkpoint_segment(seg, home, link, deltas);
  // Fetched but never mutated: home already holds the payload, so even
  // the very first checkpoint ships nothing for it.
  EXPECT_EQ(ck.objects_shipped, 0);
  EXPECT_LT(ck.heap_bytes, ck.full_heap_bytes);

  Value result = seg.run_to_completion();
  mig::write_back(seg, home, tid, 1, result, link);
  home.ti().set_debug_enabled(false);
  ASSERT_EQ(home.run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), 41 * n);
}

// --- scheduler: resume after worker loss ---

TEST(Scheduler, WorkerLossAtACheckpointResumesFromIt) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(3);
  auto pol = make_policy(PolicyKind::RoundRobin);
  DispatchOptions opt;
  opt.checkpoint_every = kEvery;
  Scheduler s(c, *pol, opt);
  s.fail_after_checkpoints(2);  // kill the worker taking the 2nd checkpoint
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(24)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 3 + 4));
  auto out = s.run(tid, split_top_frames(3));
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(24));

  EXPECT_GE(out.checkpoints, 2);
  EXPECT_EQ(out.resumed, 1);
  EXPECT_EQ(out.redispatched, 1);
  EXPECT_EQ(s.workers_lost(), 1);
  EXPECT_TRUE(s.exactly_once());
  // The resumed segment was dispatched twice; its completing attempt is
  // the second one, and the first is the one that failed.
  int failed = 0, dispatched = 0;
  for (const Event& e : s.log()) {
    if (e.kind == EventKind::SegmentFailed) {
      ++failed;
      EXPECT_EQ(e.attempt, 1);
    }
    if (e.kind == EventKind::SegmentDispatched) ++dispatched;
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(dispatched, 4);  // 3 initial + 1 resume
  bool saw_resumed = false;
  for (const auto& pl : out.placements) saw_resumed = saw_resumed || pl.attempts == 2;
  EXPECT_TRUE(saw_resumed);
}

TEST(Scheduler, AutoscalerDrainDuringCheckpointedRoundIsNotAFailure) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(2);
  auto pol = make_policy(PolicyKind::RoundRobin);
  DispatchOptions opt;
  opt.checkpoint_every = kEvery;
  Scheduler s(c, *pol, opt);
  s.set_autoscaler(std::make_unique<Autoscaler>(
      Autoscaler::Config{}, std::vector<WorkerSpec>{{"standby1", {}, sim::Link::gigabit()}}));
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(26)});
  // Round 1 (4 segments / 2 workers) joins the standby on high water;
  // round 2 (5 segments) walks the round-robin cursor so round 3's single
  // segment lands on the joiner, whose queue is then non-empty when the
  // placement-phase tick drains it on low water.  The draining worker
  // must *finish* that segment under checkpoints — a drain is not a loss
  // (regression: take_checkpoint treated Draining like Lost, fabricating
  // SegmentFailed events and leaking the queue entry).
  for (int k : {4, 5, 1}) {
    ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, k + 4));
    s.run(tid, split_top_frames(k));
    c.home().ti().set_debug_enabled(false);
  }
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(26));
  EXPECT_TRUE(s.exactly_once());
  EXPECT_EQ(s.workers_lost(), 0);
  EXPECT_EQ(s.redispatches(), 0);
  for (const Event& e : s.log()) EXPECT_NE(e.kind, EventKind::SegmentFailed);
  EXPECT_GE(s.autoscaler()->drains(), 1);
  EXPECT_EQ(c.state(2), WorkerState::Retired);  // finished its work, then left
}

TEST(Scheduler, ResumeBeatsRestartFromCapture) {
  auto total_with = [](bool resume) {
    auto p = prepped_fib();
    uint16_t fib = p.find_method("Main.fib");
    Cluster c(p);
    c.add_uniform_workers(3);
    auto pol = make_policy(PolicyKind::RoundRobin);
    DispatchOptions opt;
    opt.checkpoint_every = kEvery;
    opt.resume_from_checkpoint = resume;
    Scheduler s(c, *pol, opt);
    s.fail_after_checkpoints(3);
    int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(24)});
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 3 + 4));
    auto out = s.run(tid, split_top_frames(3));
    c.home().ti().set_debug_enabled(false);
    EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(24));
    EXPECT_EQ(out.resumed, resume ? 1 : 0);
    EXPECT_EQ(out.redispatched, 1);
    EXPECT_TRUE(s.exactly_once());
    return c.home().node().clock.now();
  };
  VDur resumed = total_with(true);
  VDur restarted = total_with(false);
  // Both runs pay the same checkpoint cadence and lose the same worker at
  // the same instant; only the recovery differs, and re-executing from
  // the round-start capture is strictly slower than resuming.
  EXPECT_LT(resumed.ns, restarted.ns);
}

// --- scheduler: speculation ---

struct SpecResult {
  VDur total{};
  double mean_completion_ms = 0;
  int speculated = 0;
  int cancelled = 0;
  int64_t result = 0;
  std::vector<std::tuple<int, int64_t, int, int, int, int>> events;
};

SpecResult run_hetero(bool speculate) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_worker({"xeon1", {}, sim::Link::gigabit()});
  c.add_worker({"xeon2", {}, sim::Link::gigabit()});
  mig::SodNode::Config dev;
  dev.cpu_scale = 25.0;
  c.add_worker({"wifi-device", dev, sim::Link::wifi_kbps(2000)});
  auto pol = make_policy(PolicyKind::LeastLoaded);
  DispatchOptions opt;
  opt.checkpoint_every = kEvery;
  opt.speculate = speculate;
  Scheduler s(c, *pol, opt);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(26)});
  SpecResult res;
  double sum_ms = 0;
  int segments = 0;
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 3 + 4));
    VDur round_start = c.home_now();
    auto out = s.run(tid, split_top_frames(3));
    c.home().ti().set_debug_enabled(false);
    res.speculated += out.speculated;
    res.cancelled += out.cancelled;
    for (const auto& pl : out.placements) {
      ++segments;
      sum_ms += (pl.completed_at - round_start).ms();
    }
  }
  c.home().ti().set_debug_enabled(false);
  EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  res.result = c.home().vm().thread(tid).result.as_i64();
  res.mean_completion_ms = sum_ms / segments;
  res.total = c.home().node().clock.now();
  EXPECT_TRUE(s.exactly_once());
  for (const Event& e : s.log())
    res.events.emplace_back(static_cast<int>(e.kind), e.at.ns, e.round, e.segment, e.worker,
                            e.attempt);
  return res;
}

TEST(Scheduler, SpeculationRescuesTheStragglerDevice) {
  SpecResult spec = run_hetero(true);
  SpecResult base = run_hetero(false);
  // least_loaded parks one segment per round on the 25x device; the
  // tracker (trained by the Xeon completions earlier in the round) flags
  // it, a backup launches from the newest checkpoint on a Xeon, wins, and
  // the device attempt is cancelled.
  EXPECT_GE(spec.speculated, 1);
  EXPECT_GE(spec.cancelled, 1);
  EXPECT_EQ(base.speculated, 0);
  EXPECT_EQ(base.cancelled, 0);
  EXPECT_EQ(spec.result, base.result);  // suppression keeps results identical
  EXPECT_LT(spec.mean_completion_ms, base.mean_completion_ms);
  EXPECT_LT(spec.total.ns, base.total.ns);
}

TEST(Scheduler, CancelledAttemptsNeverComplete) {
  SpecResult spec = run_hetero(true);
  // Every cancelled attempt was launched, and no cancelled attempt has a
  // completion — the loser's write-back really was suppressed.
  std::vector<std::tuple<int, int, int>> cancelled;
  int completions = 0, speculative = 0;
  for (const auto& [kind, at, round, segment, worker, attempt] : spec.events) {
    if (kind == static_cast<int>(EventKind::AttemptCancelled))
      cancelled.emplace_back(round, segment, attempt);
    if (kind == static_cast<int>(EventKind::SpeculativeDispatched)) ++speculative;
    if (kind == static_cast<int>(EventKind::SegmentCompleted)) ++completions;
  }
  ASSERT_FALSE(cancelled.empty());
  EXPECT_EQ(completions, 9);  // 3 rounds x 3 segments, exactly once each
  EXPECT_EQ(speculative, static_cast<int>(cancelled.size()) +
                             0);  // every race ended with exactly one loser
  for (const auto& [round, segment, attempt] : cancelled) {
    for (const auto& [kind, at, r2, s2, w2, a2] : spec.events) {
      if (kind != static_cast<int>(EventKind::SegmentCompleted)) continue;
      if (r2 == round && s2 == segment) {
        EXPECT_NE(a2, attempt);
      }
    }
  }
}

TEST(Scheduler, CheckpointAndSpeculationLogsAreDeterministic) {
  SpecResult a = run_hetero(true);
  SpecResult b = run_hetero(true);
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.result, b.result);
}

// --- all four Table I apps: resume produces bit-identical results ---

enum class AppMode { Clean, Resume, Restart };

int64_t run_app(const apps::AppSpec& spec, AppMode mode) {
  bc::Program p = spec.build();
  prep::preprocess_program(p);
  Cluster c(p);
  c.add_uniform_workers(3);
  auto pol = make_policy(PolicyKind::RoundRobin);
  DispatchOptions opt;
  bool checkpoint_and_fail = mode != AppMode::Clean;
  if (checkpoint_and_fail) opt.checkpoint_every = kEvery;
  opt.resume_from_checkpoint = mode != AppMode::Restart;
  Scheduler s(c, *pol, opt);
  if (checkpoint_and_fail) s.fail_after_checkpoints(1);
  uint16_t trigger = p.find_method(spec.trigger_method);
  int depth = std::min(spec.paper_depth, 4);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);
  int remaining = c.size();
  while (remaining > 0 && mig::pause_at_depth(c.home(), tid, trigger, depth)) {
    int k = std::min(remaining, depth - 1);
    if (remaining > k) k = std::max(1, depth - 2);
    s.run(tid, split_top_frames(k));
    c.home().ti().set_debug_enabled(false);
    remaining -= k;
  }
  c.home().ti().set_debug_enabled(false);
  EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done) << spec.name;
  EXPECT_TRUE(s.exactly_once()) << spec.name;
  if (checkpoint_and_fail) {
    EXPECT_GE(s.checkpoints(), 1) << spec.name;
    EXPECT_EQ(s.workers_lost(), 1) << spec.name;
  }
  return c.home().vm().thread(tid).result.as_i64();
}

TEST(Scheduler, RecoveryIsBitIdenticalOnAllTableIApps) {
  // Resume restores the newest checkpoint (home absorbed its flush);
  // restart re-executes from the original capture against home state the
  // checkpoints never touched (apply_at_home=false) — both must land on
  // exactly the uninterrupted result, statics-heavy TSP/FFT included.
  for (const apps::AppSpec& spec : apps::table1_apps()) {
    int64_t clean = run_app(spec, AppMode::Clean);
    EXPECT_EQ(clean, run_app(spec, AppMode::Resume)) << spec.name << " resume";
    EXPECT_EQ(clean, run_app(spec, AppMode::Restart)) << spec.name << " restart";
    if (spec.bench_expected != INT64_MIN) {
      EXPECT_EQ(clean, spec.bench_expected) << spec.name;
    }
  }
}

/// The partitioned store routes every keyed operation to exactly one
/// partition, so record/latest/drop behave identically at any shard count
/// while live entries genuinely spread across partitions.
TEST(CheckpointStore, PartitionedStoreMatchesUnshardedBehaviour) {
  mig::HomeShardMap four(4);
  CheckpointStore flat, sharded;
  sharded.configure(&four);
  mig::SegmentCheckpoint ck;
  ck.state_bytes = 64;
  for (int round = 0; round < 3; ++round)
    for (int seg = 0; seg < 3; ++seg) {
      flat.record(round, seg, ck, /*attempt=*/1, VDur::millis(round));
      sharded.record(round, seg, ck, /*attempt=*/1, VDur::millis(round));
    }
  EXPECT_EQ(sharded.partitions(), 4);
  EXPECT_EQ(flat.live(), sharded.live());
  EXPECT_EQ(flat.total_recorded(), sharded.total_recorded());
  int spread = 0, live_sum = 0;
  for (int s = 0; s < sharded.partitions(); ++s) {
    if (sharded.partition_live(s) > 0) ++spread;
    live_sum += sharded.partition_live(s);
  }
  EXPECT_GT(spread, 1);
  EXPECT_EQ(live_sum, sharded.live());
  for (int round = 0; round < 3; ++round)
    for (int seg = 0; seg < 3; ++seg) {
      ASSERT_NE(sharded.latest(round, seg), nullptr);
      EXPECT_EQ(sharded.latest(round, seg)->seq, flat.latest(round, seg)->seq);
    }
  flat.drop(1, 1);
  sharded.drop(1, 1);
  EXPECT_EQ(sharded.latest(1, 1), nullptr);
  EXPECT_EQ(flat.live(), sharded.live());
}

/// Checkpoint-resume after a worker loss must be unaffected by home
/// sharding: the loss/resume replay at 1, 2, and 4 shards produces the
/// same result, the same resume/redispatch counts, and the same event log.
TEST(Scheduler, ResumeAfterLossIsBitIdenticalAcrossHomeShards) {
  using EventRow = std::tuple<int, int64_t, int, int, int, int>;
  struct Obs {
    int64_t result = 0;
    int resumed = 0;
    int redispatched = 0;
    int checkpoints = 0;
    bool exactly_once = false;
    std::vector<EventRow> events;
    bool operator==(const Obs& o) const {
      return result == o.result && resumed == o.resumed &&
             redispatched == o.redispatched && checkpoints == o.checkpoints &&
             exactly_once == o.exactly_once && events == o.events;
    }
  };
  auto run_at = [](int shards) {
    auto p = prepped_fib();
    uint16_t fib = p.find_method("Main.fib");
    Cluster c(p);
    c.add_uniform_workers(3);
    c.set_home_shards(shards);
    auto pol = make_policy(PolicyKind::RoundRobin);
    DispatchOptions opt;
    opt.checkpoint_every = kEvery;
    Scheduler s(c, *pol, opt);
    s.fail_after_checkpoints(2);
    int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(24)});
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 3 + 4));
    auto out = s.run(tid, split_top_frames(3));
    c.home().ti().set_debug_enabled(false);
    EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    Obs obs;
    obs.result = c.home().vm().thread(tid).result.as_i64();
    obs.resumed = out.resumed;
    obs.redispatched = out.redispatched;
    obs.checkpoints = out.checkpoints;
    obs.exactly_once = s.exactly_once();
    for (const Event& e : s.log())
      obs.events.emplace_back(static_cast<int>(e.kind), e.at.ns, e.seq, e.round, e.segment,
                              e.worker);
    return obs;
  };
  Obs ref = run_at(1);
  EXPECT_EQ(ref.result, sod::testing::fib_ref(24));
  EXPECT_EQ(ref.resumed, 1);
  EXPECT_TRUE(ref.exactly_once);
  for (int shards : {2, 4})
    EXPECT_EQ(run_at(shards), ref) << "home shards = " << shards;
}

}  // namespace
}  // namespace sod::cluster
