// Property sweep: the core resume-equivalence invariant of DESIGN.md.
// For every Table I app, pause at many different execution points and
// segment sizes, offload, and require the final result to be identical to
// the undisturbed run.  Parameterized gtest generates the grid.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod {
namespace {

using apps::AppSpec;
using bc::Value;
using mig::SodNode;

struct Grid {
  int app;        // index into table1_apps()
  int pause_pct;  // % of total instructions before pausing
  int seg_frac;   // migrate 1..depth frames: depth * seg_frac / 100, min 1
};

class MigrationSweep : public ::testing::TestWithParam<Grid> {};

TEST_P(MigrationSweep, ResumeEquivalence) {
  Grid g = GetParam();
  AppSpec spec = apps::table1_apps()[static_cast<size_t>(g.app)];
  bc::Program p = spec.build();
  prep::preprocess_program(p);
  uint16_t entry = p.find_method(spec.entry);

  // Reference run + total instruction count.
  int64_t expected;
  uint64_t total;
  {
    SodNode ref("ref", p, {});
    int tid = ref.vm().spawn(entry, spec.bench_args);
    uint64_t i0 = ref.vm().instr_count();
    auto rr = ref.run_guest(tid);
    ASSERT_EQ(rr.reason, svm::StopReason::Done);
    expected = ref.vm().thread(tid).result.as_i64();
    total = ref.vm().instr_count() - i0;
  }

  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  int tid = home.vm().spawn(entry, spec.bench_args);
  home.run_guest(tid, total * static_cast<uint64_t>(g.pause_pct) / 100);
  if (!mig::pause_at_next_msp(home, tid)) {
    // Thread finished before the pause point (tiny apps at high %).
    EXPECT_EQ(home.vm().thread(tid).result.as_i64(), expected);
    return;
  }
  int depth = static_cast<int>(home.vm().thread(tid).frames.size());
  int nframes = std::max(1, depth * g.seg_frac / 100);

  mig::offload_and_return(home, tid, nframes, dest, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  auto rr = home.run_guest(tid);
  ASSERT_TRUE(rr.reason == svm::StopReason::Done ||
              home.vm().thread(tid).status == svm::ThreadStatus::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), expected)
      << spec.name << " pause " << g.pause_pct << "% seg " << g.seg_frac << "%";
}

std::vector<Grid> make_grid() {
  std::vector<Grid> gs;
  for (int app = 0; app < 4; ++app)
    for (int pct : {5, 25, 50, 75, 95})
      for (int frac : {1, 50, 100})
        gs.push_back(Grid{app, pct, frac});
  return gs;
}

std::string grid_name(const ::testing::TestParamInfo<Grid>& info) {
  static const char* names[] = {"Fib", "NQ", "FFT", "TSP"};
  return std::string(names[info.param.app]) + "_p" + std::to_string(info.param.pause_pct) +
         "_s" + std::to_string(info.param.seg_frac);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MigrationSweep, ::testing::ValuesIn(make_grid()), grid_name);

// Double migration: offload, resume, offload again later.
class DoubleMigration : public ::testing::TestWithParam<int> {};

TEST_P(DoubleMigration, TwoHopsPreserveResult) {
  AppSpec spec = apps::table1_apps()[static_cast<size_t>(GetParam())];
  bc::Program p = spec.build();
  prep::preprocess_program(p);
  uint16_t entry = p.find_method(spec.entry);

  int64_t expected;
  uint64_t total;
  {
    SodNode ref("ref", p, {});
    int tid = ref.vm().spawn(entry, spec.bench_args);
    uint64_t i0 = ref.vm().instr_count();
    ref.run_guest(tid);
    expected = ref.vm().thread(tid).result.as_i64();
    total = ref.vm().instr_count() - i0;
  }

  SodNode home("home", p, {});
  SodNode d1("dest1", p, {});
  SodNode d2("dest2", p, {});
  int tid = home.vm().spawn(entry, spec.bench_args);
  home.run_guest(tid, total / 4);
  if (mig::pause_at_next_msp(home, tid))
    mig::offload_and_return(home, tid, 1, d1, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  home.run_guest(tid, total / 4);
  if (home.vm().thread(tid).status == svm::ThreadStatus::Ready &&
      mig::pause_at_next_msp(home, tid))
    mig::offload_and_return(home, tid, 1, d2, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  home.run_guest(tid);
  ASSERT_EQ(home.vm().thread(tid).status, svm::ThreadStatus::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), expected) << spec.name;
}

std::string app_param_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Fib", "NQ", "FFT", "TSP"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllApps, DoubleMigration, ::testing::Range(0, 4), app_param_name);

}  // namespace
}  // namespace sod
