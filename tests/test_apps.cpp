// Guest applications: correctness at bench scale (against host-side
// reference implementations), preprocessing transparency, and migration
// during each app's hot phase.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/apps.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod {
namespace {

using apps::AppSpec;
using bc::Value;
using mig::SodNode;

// --- host-side references ---

int64_t host_fib(int64_t n) {
  int64_t a = 0, b = 1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

int64_t host_nqueens(int n, int row, uint64_t cols, uint64_t d1, uint64_t d2) {
  if (row >= n) return 1;
  int64_t count = 0;
  for (int col = 0; col < n; ++col) {
    uint64_t bit = 1ull << col;
    if (cols & bit) continue;
    if (d1 & (1ull << (col + row))) continue;
    if (d2 & (1ull << (col - row + n - 1))) continue;
    count += host_nqueens(n, row + 1, cols | bit, d1 | (1ull << (col + row)),
                          d2 | (1ull << (col - row + n - 1)));
  }
  return count;
}

struct HostFft {
  int n;
  std::vector<double> re, im;
  explicit HostFft(int n_) : n(n_), re(static_cast<size_t>(n_) * n_), im(re.size()) {}
  void fft1d(int off, int len, int stride, int sign) {
    // bit reversal
    for (int i = 1, j = 0; i < len; ++i) {
      int bit = len >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j |= bit;
      if (i < j) {
        std::swap(re[static_cast<size_t>(off + i * stride)],
                  re[static_cast<size_t>(off + j * stride)]);
        std::swap(im[static_cast<size_t>(off + i * stride)],
                  im[static_cast<size_t>(off + j * stride)]);
      }
    }
    for (int l = 2; l <= len; l <<= 1) {
      int half = l >> 1;
      for (int i = 0; i < len; i += l) {
        for (int k = 0; k < half; ++k) {
          double ang = sign * -2.0 * M_PI * k / l;
          double wr = std::cos(ang), wi = std::sin(ang);
          size_t ia = static_cast<size_t>(off + (i + k) * stride);
          size_t ib = static_cast<size_t>(off + (i + k + half) * stride);
          double ur = re[ia], ui = im[ia];
          double vr = re[ib] * wr - im[ib] * wi;
          double vi = re[ib] * wi + im[ib] * wr;
          re[ia] = ur + vr;
          im[ia] = ui + vi;
          re[ib] = ur - vr;
          im[ib] = ui - vi;
        }
      }
    }
  }
  int64_t run() {
    for (size_t i = 0; i < re.size(); ++i)
      re[i] = static_cast<double>((static_cast<int64_t>(i) * 7 + 31) % 101);
    for (int r = 0; r < n; ++r) fft1d(r * n, n, 1, 1);
    for (int c = 0; c < n; ++c) fft1d(c, n, n, 1);
    double s = 0;
    for (double x : re) s += x;
    return static_cast<int64_t>(s);
  }
};

struct HostTsp {
  int n;
  std::vector<int64_t> dist;
  std::vector<int> visited;
  int64_t best;
  explicit HostTsp(int n_) : n(n_), dist(static_cast<size_t>(n_) * n_), visited(n_, 0) {
    best = int64_t{1} << 60;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        dist[static_cast<size_t>(i) * n + j] =
            i == j ? 0 : 1 + (i * 7 + j * 13 + static_cast<int64_t>(i) * j) % 97;
  }
  void search(int city, int count, int64_t cost) {
    if (count >= n) {
      int64_t tour = cost + dist[static_cast<size_t>(city) * n];
      if (tour < best) best = tour;
      return;
    }
    if (cost >= best) return;
    for (int next = 0; next < n; ++next) {
      if (visited[next]) continue;
      visited[next] = 1;
      search(next, count + 1, cost + dist[static_cast<size_t>(city) * n + next]);
      visited[next] = 0;
    }
  }
  int64_t run() {
    visited[0] = 1;
    search(0, 1, 0);
    return best;
  }
};

// --- parameterized: every Table I app, original vs preprocessed ---

class AppCorrectness : public ::testing::TestWithParam<std::tuple<int, bool>> {};

int64_t expected_of(const AppSpec& s) {
  if (s.name == "Fib") return host_fib(s.bench_args[0].as_i64());
  if (s.name == "NQ") return host_nqueens(static_cast<int>(s.bench_args[0].as_i64()), 0, 0, 0, 0);
  if (s.name == "FFT") return HostFft(static_cast<int>(s.bench_args[0].as_i64())).run();
  if (s.name == "TSP") return HostTsp(static_cast<int>(s.bench_args[0].as_i64())).run();
  return 0;
}

TEST_P(AppCorrectness, MatchesHostReference) {
  auto [idx, preprocessed] = GetParam();
  AppSpec spec = apps::table1_apps()[static_cast<size_t>(idx)];
  bc::Program p = spec.build();
  if (preprocessed) prep::preprocess_program(p);
  SodNode node("n", p, {});
  mig::ObjectManager om;
  om.install(node);
  Value got = node.vm().call(spec.entry, spec.bench_args);
  EXPECT_EQ(got.as_i64(), expected_of(spec)) << spec.name;
}

std::string app_name_of(int idx) {
  switch (idx) {
    case 0: return "Fib";
    case 1: return "NQ";
    case 2: return "FFT";
    default: return "TSP";
  }
}

std::string correctness_name(const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
  return app_name_of(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_prepped" : "_orig");
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectness,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Bool()),
                         correctness_name);

// --- migration mid-run for each app ---

class AppMigration : public ::testing::TestWithParam<int> {};

TEST_P(AppMigration, OffloadDuringHotPhasePreservesResult) {
  AppSpec spec = apps::table1_apps()[static_cast<size_t>(GetParam())];
  bc::Program p = spec.build();
  prep::preprocess_program(p);
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  uint16_t trigger = p.find_method(spec.trigger_method);
  int tid = home.vm().spawn(p.find_method(spec.entry), spec.bench_args);
  int depth = std::min(spec.paper_depth, 4);
  ASSERT_TRUE(mig::pause_at_depth(home, tid, trigger, depth)) << spec.name;
  mig::offload_and_return(home, tid, 1, dest, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  auto rr = home.run_guest(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done) << spec.name;
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), expected_of(spec)) << spec.name;
}

std::string migration_name(const ::testing::TestParamInfo<int>& info) {
  return app_name_of(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppMigration, ::testing::Range(0, 4), migration_name);

// --- doc search over the simulated fs ---

TEST(Apps, DocSearchFindsPlantedNeedles) {
  bc::Program p = apps::build_docsearch();
  prep::preprocess_program(p);
  sfs::FileStore store;
  for (int i = 0; i < 3; ++i) {
    sfs::SimFile f;
    f.name = "doc" + std::to_string(i);
    f.size = 256 << 10;
    f.seed = 42 + static_cast<uint64_t>(i);
    f.needle = "sodneedle";
    f.needle_at = (64 << 10) + static_cast<size_t>(i);
    store.add(f);
  }
  SodNode node("n", p, {});
  mig::ObjectManager om;
  om.install(node);
  sfs::MountedFs mount(&store, sfs::MountSpeed::local_disk());
  mount.install(node.registry());
  Value hits = node.call_guest("Search.main", std::vector<Value>{Value::of_i64(3)});
  EXPECT_EQ(hits.as_i64(), 3);
  EXPECT_GT(mount.bytes_read(), 0u);
  // Reads charged virtual time on the node clock.
  EXPECT_GT(node.node().clock.now().ns, 0);
}

TEST(Apps, DocSearchMissesAbsentNeedle) {
  bc::Program p = apps::build_docsearch();
  prep::preprocess_program(p);
  sfs::FileStore store;
  sfs::SimFile f;
  f.name = "doc0";
  f.size = 64 << 10;
  f.seed = 7;  // no needle planted
  store.add(f);
  SodNode node("n", p, {});
  mig::ObjectManager om;
  om.install(node);
  sfs::MountedFs mount(&store, sfs::MountSpeed::local_disk());
  mount.install(node.registry());
  Value hits = node.vm().call("Search.main", std::vector<Value>{Value::of_i64(1)});
  EXPECT_EQ(hits.as_i64(), 0);
}

TEST(Apps, PhotoShareListsAndFetches) {
  bc::Program p = apps::build_photoshare();
  prep::preprocess_program(p);
  sfs::FileStore photos;
  for (int i = 0; i < 5; ++i) {
    sfs::SimFile f;
    f.name = "IMG_" + std::to_string(i) + ".jpg";
    f.size = 100 << 10;
    f.seed = 99 + static_cast<uint64_t>(i);
    photos.add(f);
  }
  SodNode node("n", p, {});
  mig::ObjectManager om;
  om.install(node);
  sfs::MountedFs mount(&photos, sfs::MountSpeed::local_disk());
  mount.install(node.registry());
  EXPECT_EQ(node.vm().call("Photo.count_photos", std::vector<Value>{Value::of_i64(10)}).as_i64(),
            5);
  EXPECT_EQ(node.vm().call("Photo.photo_size", std::vector<Value>{Value::of_i64(2)}).as_i64(),
            100 << 10);
}

TEST(Apps, Table1CharacteristicsShape) {
  // h and F at paper scale follow Table I: deep stacks for Fib/NQ, tiny F
  // everywhere but FFT's >64 MB.
  for (const AppSpec& spec : apps::table1_apps()) {
    bc::Program p = spec.build();
    prep::preprocess_program(p);
    SodNode home("home", p, {});
    int tid = home.vm().spawn(p.find_method(spec.entry), spec.paper_args);
    ASSERT_TRUE(mig::pause_at_depth(home, tid, p.find_method(spec.trigger_method),
                                    spec.paper_depth))
        << spec.name;
    int h = static_cast<int>(home.vm().thread(tid).frames.size());
    EXPECT_EQ(h, spec.paper_depth) << spec.name;
    home.ti().set_debug_enabled(false);
  }
}

}  // namespace
}  // namespace sod
