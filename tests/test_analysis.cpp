// Whole-program analyzer tests: malformed-program admission, statics/ref
// effect inference on the Table I apps, reachability accounting, the
// ProgramRejected event at the cluster gate, and the statics-skip
// equivalence (bit-identical results with and without the purity skip in
// both execution modes).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "apps/apps.h"
#include "bytecode/verifier.h"
#include "cluster/cluster.h"
#include "cluster/loadgen.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "cluster/wallclock.h"
#include "prep/prep.h"
#include "testlib.h"

namespace sod {
namespace {

using bc::Label;
using bc::ProgramBuilder;
using bc::Ty;

// ---------------------------------------------------------------- builders

/// GOTO whose u32 target is patched to pc 1 — the middle of the ICONST.
bc::Program bad_jump_program() {
  ProgramBuilder pb;
  auto& c = pb.cls("Jump");
  auto& f = c.method("run", {}, Ty::I64);
  Label top = f.label();
  f.bind(top);
  f.stmt().iconst(1).iret();
  f.go(top);
  bc::Program p = pb.build();
  bc::Method& m = p.method_mut(p.find_method("Jump.run"));
  size_t at = m.code.size() - 4;  // GOTO's little-endian u32 operand
  m.code[at] = 1;
  m.code[at + 1] = m.code[at + 2] = m.code[at + 3] = 0;
  return p;
}

/// IADD with only one value on the stack: the first ICONST (pc 0..8) of a
/// valid `0 + 1` is overwritten with NOPs after the builder verified it.
bc::Program underflow_program() {
  ProgramBuilder pb;
  auto& c = pb.cls("Under");
  auto& f = c.method("run", {}, Ty::I64);
  f.stmt().iconst(0).iconst(1).iadd().iret();
  bc::Program p = pb.build();
  bc::Method& m = p.method_mut(p.find_method("Under.run"));
  for (size_t i = 0; i < 9; ++i) m.code[i] = static_cast<uint8_t>(bc::Op::NOP);
  return p;
}

/// Statement start (MSP candidate) with a value left on the stack: the POP
/// balancing the first ICONST is NOPed out after the builder verified it.
bc::Program msp_nonempty_program() {
  ProgramBuilder pb;
  auto& c = pb.cls("Msp");
  auto& f = c.method("run", {}, Ty::I64);
  f.stmt().iconst(1).pop();
  f.stmt().iconst(2).iret();
  bc::Program p = pb.build();
  bc::Method& m = p.method_mut(p.find_method("Msp.run"));
  m.code[9] = static_cast<uint8_t>(bc::Op::NOP);  // the POP at pc 9
  return p;
}

/// INVOKE of a declared method that never got code (an undefined stub).
bc::Program undefined_callee_program() {
  ProgramBuilder pb;
  auto& c = pb.cls("Call");
  c.method("stub", {}, Ty::I64);  // declared, no code emitted
  auto& f = c.method("run", {}, Ty::I64);
  f.stmt().invoke("Call.stub").iret();
  return pb.build();
}

/// PUTSTATIC of Pure.x inside the class the options declare statics-pure.
bc::Program impure_program() {
  ProgramBuilder pb;
  auto& c = pb.cls("Pure");
  c.field("x", Ty::I64, /*is_static=*/true);
  auto& f = c.method("run", {}, Ty::I64);
  f.stmt().iconst(7).putstatic("Pure.x");
  f.stmt().getstatic("Pure.x").iret();
  return pb.build();
}

// ------------------------------------------------------- verifier satellite

TEST(Verifier, IsBoundaryRejectsUnreachableAndMidInstruction) {
  ProgramBuilder pb;
  auto& c = pb.cls("Main");
  auto& f = c.method("run", {}, Ty::I64);
  Label dead = f.label();
  f.stmt().iconst(1).iret();
  f.bind(dead);
  f.iconst(2).iret();  // unreachable: nothing branches to `dead`
  bc::Program p = pb.build();

  auto map = bc::verify_method(p, p.method(p.find_method("Main.run")), true);
  EXPECT_TRUE(map.is_boundary(0));
  // pc 1 is inside the ICONST immediate: never a boundary.
  EXPECT_FALSE(map.is_boundary(1));
  // pc 10 starts the dead ICONST: an instruction start, but unreachable
  // (depth -1).  The old `depth[pc] >= -1` check was vacuously true and
  // called every in-range boundary pc reachable.
  ASSERT_EQ(map.depth[10], -1);
  EXPECT_FALSE(map.is_boundary(10));
}

// ------------------------------------------------- malformed-program table

struct MalformedCase {
  const char* name;
  std::function<bc::Program()> build;
  std::vector<std::string> declared_pure;
  const char* expect_substr;  ///< must appear in the diagnostic message
  const char* expect_cls;
  const char* expect_method;
};

TEST(Admission, MalformedProgramsRejectedWithPointedDiagnostics) {
  const std::vector<MalformedCase> cases = {
      {"bad jump target", bad_jump_program, {}, "not at boundary", "Jump", "Jump.run"},
      {"stack underflow", underflow_program, {}, "pop from empty stack", "Under",
       "Under.run"},
      {"non-empty stack at MSP", msp_nonempty_program, {}, "MSP invariant", "Msp",
       "Msp.run"},
      {"undefined callee", undefined_callee_program, {},
       "call to undefined method 'Call.stub'", "Call", "Call.run"},
      {"statics write in declared-pure class", impure_program, {"Pure"},
       "statics write ('Pure.x') in declared-pure class 'Pure'", "Pure", "Pure.run"},
  };
  for (const MalformedCase& mc : cases) {
    SCOPED_TRACE(mc.name);
    analysis::AnalysisOptions opt;
    opt.declared_pure = mc.declared_pure;
    analysis::AdmissionReport rep = analysis::analyze_program(mc.build(), opt);
    EXPECT_FALSE(rep.admitted);
    ASSERT_FALSE(rep.diagnostics.empty());
    const analysis::Diagnostic& d = rep.diagnostics.front();
    EXPECT_EQ(d.cls, mc.expect_cls);
    EXPECT_EQ(d.method, mc.expect_method);
    EXPECT_NE(d.pc, UINT32_MAX) << "diagnostic must name the offending pc";
    EXPECT_NE(d.message.find(mc.expect_substr), std::string::npos) << d.message;
    // The rendered form names class, method, and pc in one line.
    EXPECT_NE(d.str().find(mc.expect_cls), std::string::npos) << d.str();
    EXPECT_NE(d.str().find(" pc "), std::string::npos) << d.str();
  }
}

TEST(Admission, ClusterGateEmitsProgramRejected) {
  bc::Program p = undefined_callee_program();
  cluster::Cluster c(p);
  EXPECT_FALSE(c.admission().admitted);
  ASSERT_FALSE(c.admission().diagnostics.empty());

  c.add_uniform_workers(2);
  auto policy = cluster::make_policy(cluster::PolicyKind::RoundRobin);
  cluster::Scheduler sched(c, *policy, {});
  bool sched_saw = false;
  for (const cluster::Event& e : sched.log())
    sched_saw = sched_saw || e.kind == cluster::EventKind::ProgramRejected;
  EXPECT_TRUE(sched_saw);

  cluster::WallClockEngine engine(c, *policy, {});
  bool wall_saw = false;
  for (const cluster::Event& e : engine.log())
    wall_saw = wall_saw || e.kind == cluster::EventKind::ProgramRejected;
  EXPECT_TRUE(wall_saw);
}

TEST(Admission, WellFormedAppsAdmitted) {
  for (const apps::AppSpec& spec : {apps::fib_app(), apps::nqueens_app(), apps::fft_app(),
                                    apps::tsp_app()}) {
    SCOPED_TRACE(spec.name);
    bc::Program p = spec.build();
    prep::preprocess_program(p);
    analysis::AdmissionReport rep = analysis::analyze_program(p);
    EXPECT_TRUE(rep.admitted);
    EXPECT_TRUE(rep.diagnostics.empty());
  }
}

// ------------------------------------------------------------ effect facts

TEST(Facts, StaticsEffectsOnTableIApps) {
  // FFT: all statics are Ref (grids + workspace anchor) — written, but
  // primitive-pure, so refresh_primitive_statics may skip the class.
  {
    bc::Program p = apps::fft_app().build();
    prep::preprocess_program(p);
    auto rep = analysis::analyze_program(p);
    ASSERT_TRUE(rep.admitted);
    EXPECT_TRUE(rep.facts.method_writes_statics(p, "FFT.main"));
    uint16_t fft = p.find_class("FFT");
    ASSERT_NE(fft, bc::kNoId);
    EXPECT_TRUE(rep.facts.classes[fft].statics_written);
    EXPECT_TRUE(rep.facts.class_statics_pure(fft));
    EXPECT_TRUE(rep.facts.class_ref_escape(fft));  // PUTSTATIC of Ref fields
  }
  // TSP: writes the primitive `best` bound — never skippable.
  {
    bc::Program p = apps::tsp_app().build();
    prep::preprocess_program(p);
    auto rep = analysis::analyze_program(p);
    ASSERT_TRUE(rep.admitted);
    EXPECT_TRUE(rep.facts.method_writes_statics(p, "TSP.main"));
    uint16_t tsp = p.find_class("TSP");
    ASSERT_NE(tsp, bc::kNoId);
    EXPECT_FALSE(rep.facts.class_statics_pure(tsp));
  }
  // fib: no statics anywhere, no refs escape, but real MSP state.
  {
    bc::Program p = apps::fib_app().build();
    prep::preprocess_program(p);
    auto rep = analysis::analyze_program(p);
    ASSERT_TRUE(rep.admitted);
    EXPECT_FALSE(rep.facts.method_writes_statics(p, "Fib.main"));
    uint16_t fib = p.find_class("Fib");
    ASSERT_NE(fib, bc::kNoId);
    EXPECT_TRUE(rep.facts.class_statics_pure(fib));
    EXPECT_GT(rep.facts.class_msp_state_slots(fib), 0u);
  }
}

TEST(Facts, TransitiveStaticsThroughCallees) {
  // Outer never touches statics directly; its callee does.
  ProgramBuilder pb;
  auto& c = pb.cls("T");
  c.field("s", Ty::I64, /*is_static=*/true);
  auto& inner = c.method("inner", {}, Ty::I64);
  inner.stmt().iconst(3).putstatic("T.s");
  inner.stmt().getstatic("T.s").iret();
  auto& outer = c.method("outer", {}, Ty::I64);
  outer.stmt().invoke("T.inner").iret();
  bc::Program p = pb.build();

  auto rep = analysis::analyze_program(p);
  ASSERT_TRUE(rep.admitted);
  EXPECT_TRUE(rep.facts.method_writes_statics(p, "T.inner"));
  EXPECT_TRUE(rep.facts.method_writes_statics(p, "T.outer"));
  EXPECT_FALSE(rep.facts.class_statics_pure(p.find_class("T")));
  // Unknown names are conservatively statics-writing.
  EXPECT_TRUE(rep.facts.method_writes_statics(p, "T.missing"));
}

TEST(Facts, ReachabilityFromEntriesAccountsUnreachable) {
  ProgramBuilder pb;
  auto& c = pb.cls("R");
  auto& helper = c.method("helper", {}, Ty::I64);
  helper.stmt().iconst(2).iret();
  auto& orphan = c.method("orphan", {}, Ty::I64);
  orphan.stmt().iconst(3).iret();
  auto& main = c.method("main", {}, Ty::I64);
  main.stmt().invoke("R.helper").iret();
  bc::Program p = pb.build();

  analysis::AnalysisOptions opt;
  opt.entries = {"R.main"};
  auto rep = analysis::analyze_program(p, opt);
  EXPECT_TRUE(rep.admitted);  // unreachable code is accounted, not rejected
  EXPECT_EQ(rep.facts.reachable_methods, 2u);
  EXPECT_EQ(rep.facts.unreachable_methods, 1u);
  EXPECT_FALSE(rep.facts.methods[p.find_method("R.orphan")].reachable);
  EXPECT_TRUE(rep.facts.methods[p.find_method("R.helper")].reachable);

  analysis::AnalysisOptions bad;
  bad.entries = {"R.missing"};
  auto rep2 = analysis::analyze_program(p, bad);
  EXPECT_FALSE(rep2.admitted);
  ASSERT_FALSE(rep2.diagnostics.empty());
  EXPECT_NE(rep2.diagnostics.front().message.find("entry method not found"),
            std::string::npos);
}

TEST(Facts, RefEscapeOnlyWhereRefsCanLeak) {
  ProgramBuilder pb;
  auto& c = pb.cls("Esc");
  auto& leak = c.method("leak", {}, Ty::Ref);
  leak.stmt().iconst(1).newarray(Ty::I64).aret();
  auto& plain = pb.cls("Plain").method("id", {{"n", Ty::I64}}, Ty::I64);
  plain.stmt().iload("n").iret();
  bc::Program p = pb.build();

  auto rep = analysis::analyze_program(p);
  ASSERT_TRUE(rep.admitted);
  EXPECT_TRUE(rep.facts.class_ref_escape(p.find_class("Esc")));
  EXPECT_FALSE(rep.facts.class_ref_escape(p.find_class("Plain")));
  // Out-of-range class ids stay conservatively escaping.
  EXPECT_TRUE(rep.facts.class_ref_escape(bc::kNoId));
}

// ----------------------------------------------- statics-skip equivalence

TEST(StaticsSkip, BitIdenticalInBothExecutionModes) {
  cluster::TraceConfig cfg;
  cfg.sessions = 24;
  cfg.tenants = 2;
  cfg.apps = 4;  // fib + nqueens + fft + tsp: mixes pure and impure statics
  cfg.seed = 5;
  cfg.max_rounds = 2;
  cluster::Trace tr = cluster::make_trace(cfg);

  cluster::LoadGenOptions skip_on;
  cluster::LoadGenOptions skip_off;
  skip_off.dispatch.statics_skip = false;

  auto v_on = cluster::run_loadgen(tr, skip_on);
  auto v_off = cluster::run_loadgen(tr, skip_off);
  ASSERT_TRUE(v_on.admitted);
  EXPECT_TRUE(v_on.all_ok);
  EXPECT_TRUE(v_off.all_ok);
  // Bit-identical replay: same results, same virtual-time latencies.
  EXPECT_EQ(v_on.results, v_off.results);
  EXPECT_EQ(v_on.session_ms, v_off.session_ms);
  // The skip is real: pure classes (FFT's all-Ref statics) are skipped
  // when facts are consulted and scanned when they are not.
  EXPECT_GT(v_on.statics_skipped, 0u);
  EXPECT_EQ(v_off.statics_skipped, 0u);
  EXPECT_EQ(v_off.statics_scans, v_on.statics_scans + v_on.statics_skipped);
  EXPECT_EQ(v_on.statics_bytes, v_off.statics_bytes);

  cluster::LoadGenOptions w_on = skip_on;
  w_on.wallclock = true;
  w_on.threads = 2;
  cluster::LoadGenOptions w_off = skip_off;
  w_off.wallclock = true;
  w_off.threads = 2;
  auto wall_on = cluster::run_loadgen(tr, w_on);
  auto wall_off = cluster::run_loadgen(tr, w_off);
  EXPECT_TRUE(wall_on.all_ok);
  EXPECT_TRUE(wall_off.all_ok);
  EXPECT_EQ(wall_on.results, v_on.results);
  EXPECT_EQ(wall_off.results, v_on.results);
  EXPECT_GT(wall_on.statics_skipped, 0u);
  EXPECT_EQ(wall_off.statics_skipped, 0u);
}

}  // namespace
}  // namespace sod
