// Differential property tests: randomly generated straight-line guest
// programs are evaluated both by the interpreter and by a host-side
// reference evaluator; the flatten pass must also be semantics-preserving
// on them.  Deterministic seeds keep failures reproducible.
#include <gtest/gtest.h>

#include "prep/flatten.h"
#include "support/rng.h"
#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;

/// Generates a random expression program over k i64 parameters:
/// emits the same computation into the builder and onto a host-side
/// evaluation stack.
struct ExprGen {
  Rng rng;
  bc::MethodBuilder& f;
  std::vector<int64_t> args;     // parameter values
  std::vector<int64_t> host;     // host evaluation stack

  ExprGen(uint64_t seed, bc::MethodBuilder& fb, std::vector<int64_t> a)
      : rng(seed), f(fb), args(std::move(a)) {}

  void push_leaf() {
    if (rng.below(2) == 0 && !args.empty()) {
      size_t k = rng.below(args.size());
      f.iload(static_cast<uint16_t>(k));
      host.push_back(args[k]);
    } else {
      int64_t v = rng.range(-50, 50);
      f.iconst(v);
      host.push_back(v);
    }
  }

  void combine() {
    int64_t b = host.back();
    host.pop_back();
    int64_t a = host.back();
    host.pop_back();
    switch (rng.below(6)) {
      case 0: f.iadd(); host.push_back(a + b); break;
      case 1: f.isub(); host.push_back(a - b); break;
      case 2: f.imul(); host.push_back(a * b); break;
      case 3: f.iand(); host.push_back(a & b); break;
      case 4: f.ior(); host.push_back(a | b); break;
      default: f.ixor(); host.push_back(a ^ b); break;
    }
  }

  int64_t generate(int ops) {
    f.stmt();
    push_leaf();
    for (int i = 0; i < ops; ++i) {
      if (host.size() < 2 || (rng.below(3) != 0 && host.size() < 6)) push_leaf();
      else combine();
    }
    while (host.size() > 1) combine();
    f.iret();
    return host.back();
  }
};

class RandomExpr : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpr, InterpreterMatchesHostEvaluator) {
  uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  Rng argrng(seed * 7);
  std::vector<int64_t> args = {argrng.range(-100, 100), argrng.range(-100, 100),
                               argrng.range(-100, 100)};

  ProgramBuilder pb;
  auto& f = pb.cls("R").method(
      "e", {{"a", Ty::I64}, {"b", Ty::I64}, {"c", Ty::I64}}, Ty::I64);
  ExprGen gen(seed, f, args);
  int64_t expected = gen.generate(12 + GetParam() % 20);
  auto p = pb.build();

  std::vector<Value> vargs;
  for (int64_t a : args) vargs.push_back(Value::of_i64(a));
  EXPECT_EQ(run1(p, "R.e", vargs).as_i64(), expected) << "seed " << seed;
}

TEST_P(RandomExpr, FlattenPreservesSemantics) {
  uint64_t seed = 5000 + static_cast<uint64_t>(GetParam());
  Rng argrng(seed * 13);
  std::vector<int64_t> args = {argrng.range(-100, 100), argrng.range(-100, 100),
                               argrng.range(-100, 100)};

  ProgramBuilder pb;
  auto& f = pb.cls("R").method(
      "e", {{"a", Ty::I64}, {"b", Ty::I64}, {"c", Ty::I64}}, Ty::I64);
  ExprGen gen(seed, f, args);
  int64_t expected = gen.generate(10 + GetParam() % 25);
  auto p = pb.build();
  prep::flatten_program(p);

  std::vector<Value> vargs;
  for (int64_t a : args) vargs.push_back(Value::of_i64(a));
  EXPECT_EQ(run1(p, "R.e", vargs).as_i64(), expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpr, ::testing::Range(0, 25));

/// Random call graphs: chains of helper methods with nested invocations —
/// the flatten pass must extract calls and preserve results.
class RandomCalls : public ::testing::TestWithParam<int> {};

TEST_P(RandomCalls, NestedCallsSurviveFlatten) {
  uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  ProgramBuilder pb;
  auto& cls = pb.cls("C");
  // helper_i(x) = x * mi + ci
  int nhelpers = 3 + static_cast<int>(rng.below(3));
  std::vector<int64_t> mult(static_cast<size_t>(nhelpers)), add(static_cast<size_t>(nhelpers));
  for (int i = 0; i < nhelpers; ++i) {
    mult[static_cast<size_t>(i)] = rng.range(1, 5);
    add[static_cast<size_t>(i)] = rng.range(-10, 10);
    // Built piecewise: `"h" + std::to_string(i)` trips gcc 12's -Wrestrict
    // false positive (PR 105651) under -O2.
    std::string hname("h");
    hname += std::to_string(i);
    auto& h = cls.method(hname, {{"x", Ty::I64}}, Ty::I64);
    h.stmt()
        .iload("x")
        .iconst(mult[static_cast<size_t>(i)])
        .imul()
        .iconst(add[static_cast<size_t>(i)])
        .iadd()
        .iret();
  }
  // main(x) = h0(h1(x)) + h2(x) ... nested in ONE statement
  auto& m = cls.method("main", {{"x", Ty::I64}}, Ty::I64);
  m.stmt()
      .iload("x").invoke("C.h1").invoke("C.h0")
      .iload("x").invoke("C.h2")
      .iadd()
      .iret();
  auto p = pb.build();
  prep::FlattenStats st = prep::flatten_program(p);
  EXPECT_GE(st.calls_extracted, 2);  // nested calls forced into temps

  int64_t x = rng.range(-20, 20);
  auto h = [&](int i, int64_t v) { return v * mult[static_cast<size_t>(i)] + add[static_cast<size_t>(i)]; };
  int64_t expected = h(0, h(1, x)) + h(2, x);
  EXPECT_EQ(run1(p, "C.main", {Value::of_i64(x)}).as_i64(), expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCalls, ::testing::Range(0, 15));

}  // namespace
}  // namespace sod
