// Bytecode layer: encoding, decoding, program serialization, verifier
// acceptance and rejection, disassembler sanity.
#include <gtest/gtest.h>

#include "bytecode/disasm.h"
#include "bytecode/verifier.h"
#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;
using bc::Op;

TEST(Ops, InstrSizes) {
  std::vector<uint8_t> code;
  code.push_back(static_cast<uint8_t>(Op::ICONST));
  code.insert(code.end(), 8, 0);
  EXPECT_EQ(bc::instr_size(code, 0), 9u);

  code.clear();
  code.push_back(static_cast<uint8_t>(Op::ILOAD));
  code.insert(code.end(), 2, 0);
  EXPECT_EQ(bc::instr_size(code, 0), 3u);

  code.clear();
  code.push_back(static_cast<uint8_t>(Op::GOTO));
  code.insert(code.end(), 4, 0);
  EXPECT_EQ(bc::instr_size(code, 0), 5u);

  // lookupswitch with 2 pairs: 1 + 2 + 4 + 2*12 = 31
  code.clear();
  code.push_back(static_cast<uint8_t>(Op::LOOKUPSWITCH));
  code.push_back(2);
  code.push_back(0);
  code.insert(code.end(), 4 + 24, 0);
  EXPECT_EQ(bc::instr_size(code, 0), 31u);
}

TEST(Ops, Predicates) {
  EXPECT_TRUE(bc::is_terminator(Op::GOTO));
  EXPECT_TRUE(bc::is_terminator(Op::THROW));
  EXPECT_TRUE(bc::is_terminator(Op::IRETURN));
  EXPECT_FALSE(bc::is_terminator(Op::IFEQ));
  EXPECT_TRUE(bc::is_branch(Op::IFEQ));
  EXPECT_FALSE(bc::is_branch(Op::LOOKUPSWITCH));
  EXPECT_FALSE(bc::is_branch(Op::IADD));
}

TEST(Decode, RoundTripThroughBuilder) {
  auto p = fib_program();
  const bc::Method& m = p.method(p.find_method("Main.fib"));
  // Walk all instructions; decode must cover the code exactly.
  uint32_t pc = 0;
  int count = 0;
  while (pc < m.code.size()) {
    bc::Instr in = bc::decode(m.code, pc);
    EXPECT_EQ(in.pc, pc);
    pc += in.size;
    ++count;
  }
  EXPECT_EQ(pc, m.code.size());
  EXPECT_GT(count, 10);
}

TEST(Program, SerializeRoundTrip) {
  auto p = fib_program();
  auto bytes = p.serialize();
  auto q = bc::Program::deserialize(bytes);
  ASSERT_EQ(q.methods.size(), p.methods.size());
  ASSERT_EQ(q.classes.size(), p.classes.size());
  uint16_t mid = p.find_method("Main.fib");
  EXPECT_EQ(q.find_method("Main.fib"), mid);
  EXPECT_EQ(q.method(mid).code, p.method(mid).code);
  EXPECT_EQ(q.method(mid).stmt_starts, p.method(mid).stmt_starts);
  EXPECT_EQ(q.method(mid).max_stack, p.method(mid).max_stack);
  // The reconstructed program must run identically.
  EXPECT_EQ(run1(q, "Main.fib", {Value::of_i64(15)}).as_i64(), fib_ref(15));
}

TEST(Program, ClassImageSizeIsPositiveAndStable) {
  auto p = fib_program();
  uint16_t cid = p.find_class("Main");
  auto img1 = p.class_image(cid);
  auto img2 = p.class_image(cid);
  EXPECT_EQ(img1, img2);
  EXPECT_GT(img1.size(), 50u);
  EXPECT_GT(p.total_image_size(), img1.size() - 1);
}

TEST(Program, StmtLookup) {
  auto p = fib_program();
  const bc::Method& m = p.method(p.find_method("Main.fib"));
  ASSERT_GE(m.stmt_starts.size(), 3u);
  EXPECT_EQ(m.stmt_at_or_before(m.stmt_starts[1]), m.stmt_starts[1]);
  EXPECT_EQ(m.stmt_at_or_before(m.stmt_starts[1] + 1), m.stmt_starts[1]);
  EXPECT_TRUE(m.is_stmt_start(m.stmt_starts[0]));
  EXPECT_FALSE(m.is_stmt_start(m.stmt_starts[1] + 1));
}

TEST(Verifier, ComputesMaxStack) {
  auto p = fib_program();
  const bc::Method& m = p.method(p.find_method("Main.fib"));
  EXPECT_GE(m.max_stack, 2);
  EXPECT_LE(m.max_stack, 8);
}

TEST(Verifier, RejectsStackUnderflow) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {}, Ty::I64);
  f.stmt().iadd().iret();  // nothing on the stack
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, RejectsTypeMismatch) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {}, Ty::I64);
  f.stmt().dconst(1.0).iret();  // f64 where i64 expected
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, RejectsFallOffEnd) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {}, Ty::I64);
  f.stmt().iconst(1).pop();  // no return
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, RejectsWrongLocalType) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {{"x", Ty::I64}}, Ty::I64);
  f.stmt().dconst(0.5).dstore(0).iconst(1).iret();  // dstore into i64 slot
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, RejectsNonEmptyStackAtStmtStart) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {}, Ty::I64);
  f.iconst(1);
  f.stmt();  // stack depth is 1 here: violates the MSP invariant
  f.iconst(2).iadd().iret();
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, RejectsInconsistentMergeDepth) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {{"k", Ty::I64}}, Ty::I64);
  bc::Label a = f.label(), join = f.label();
  f.iload("k").ifeq(a);
  f.iconst(1).iconst(2).go(join);  // depth 2 on this path
  f.bind(a).iconst(3);             // depth 1 on this path
  f.bind(join).iadd().iret();
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, RejectsReturnTypeMismatch) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("bad", {}, Ty::Void);
  f.stmt().iconst(1).iret();  // ireturn from void method
  EXPECT_THROW(pb.build(), Error);
}

TEST(Verifier, AcceptsExceptionHandlerStack) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("ok", {}, Ty::I64);
  bc::Label h = f.label();
  uint32_t from = f.here();
  f.stmt().iconst(1).iret();
  uint32_t to = f.here();
  f.bind(h).pop().stmt().iconst(2).iret();
  f.ex_entry(from, to, h, bc::kAnyClass);
  EXPECT_NO_THROW(pb.build());
}

TEST(Builder, DuplicateClassRejected) {
  bc::ProgramBuilder pb;
  pb.cls("A");
  EXPECT_DEATH(pb.cls("A"), "duplicate class");
}

TEST(Builder, UnknownMethodNameFailsAtBuild) {
  bc::ProgramBuilder pb;
  auto& f = pb.cls("M").method("f", {}, Ty::I64);
  f.stmt().invoke("M.missing").iret();
  EXPECT_DEATH(pb.build(), "unknown method");
}

TEST(Disasm, ListsInstructionsAndMsps) {
  auto p = fib_program();
  const bc::Method& m = p.method(p.find_method("Main.fib"));
  std::string text = bc::disasm_method(p, m);
  EXPECT_NE(text.find("invoke"), std::string::npos);
  EXPECT_NE(text.find("Main.fib"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // MSP marker
  std::string prog_text = bc::disasm_program(p);
  EXPECT_NE(prog_text.find("class Main"), std::string::npos);
}

TEST(Builtins, StableIds) {
  bc::ProgramBuilder pb;
  auto p = pb.build();
  EXPECT_EQ(p.find_class("NullPointerException"), bc::builtin::kNullPointer);
  EXPECT_EQ(p.find_class("InvalidStateException"), bc::builtin::kInvalidState);
  EXPECT_EQ(p.find_class("OutOfMemoryException"), bc::builtin::kOutOfMemory);
  EXPECT_EQ(p.find_class("ClassNotFoundException"), bc::builtin::kClassNotFound);
  EXPECT_EQ(p.find_class("ArithmeticException"), bc::builtin::kArithmetic);
  EXPECT_EQ(p.find_class("IndexOutOfBoundsException"), bc::builtin::kIndexOutOfBounds);
  for (uint16_t c = 0; c < bc::builtin::kCount; ++c) EXPECT_TRUE(p.cls(c).is_exception);
}

}  // namespace
}  // namespace sod
