// Heap: allocation, typed access, shallow/graph serialization, deep_equal.
#include <gtest/gtest.h>

#include "svm/heap.h"

namespace sod::svm {
namespace {

using bc::Ty;
using bc::Value;

TEST(Heap, AllocAndAccess) {
  Heap h;
  std::vector<Ty> slots{Ty::I64, Ty::Ref, Ty::F64};
  Ref o = h.alloc_obj(3, slots);
  ASSERT_NE(o, bc::kNull);
  EXPECT_EQ(h.obj(o).cls, 3);
  EXPECT_EQ(h.obj(o).fields[0].as_i64(), 0);
  EXPECT_EQ(h.obj(o).fields[1].as_ref(), bc::kNull);
  EXPECT_DOUBLE_EQ(h.obj(o).fields[2].as_f64(), 0.0);

  Ref ai = h.alloc_arr_i(4);
  h.arr_i(ai).v[2] = 42;
  EXPECT_EQ(h.arr_i(ai).v[2], 42);

  Ref s = h.alloc_str("abc");
  EXPECT_EQ(h.str(s).s, "abc");
}

TEST(Heap, LimitEnforced) {
  Heap h(200);
  Ref a = h.alloc_arr_i(4);  // 16 + 32 bytes
  EXPECT_NE(a, bc::kNull);
  Ref b = h.alloc_arr_i(1000);  // way over
  EXPECT_EQ(b, bc::kNull);
  EXPECT_TRUE(h.last_alloc_failed());
}

TEST(Heap, StubLifecycle) {
  Heap h;
  Ref s = h.alloc_stub(42);
  ASSERT_NE(s, bc::kNull);
  EXPECT_TRUE(h.is_stub(s));
  EXPECT_EQ(h.stub_home(s), 42u);
  // Materialize in place: all holders of `s` now see the real cell.
  h.replace_stub(s, Cell(StrCell{"real"}));
  EXPECT_FALSE(h.is_stub(s));
  EXPECT_EQ(h.str(s).s, "real");
}

TEST(Heap, ShallowSerializeStubsEmbeddedRefs) {
  Heap src;
  std::vector<Ty> slots{Ty::I64, Ty::Ref};
  Ref inner = src.alloc_arr_i(2);
  src.arr_i(inner).v = {7, 8};
  Ref outer = src.alloc_obj(5, slots);
  src.obj(outer).fields[0] = Value::of_i64(99);
  src.obj(outer).fields[1] = Value::of_ref(inner);

  ByteWriter w;
  src.serialize_shallow(outer, w);
  EXPECT_EQ(w.size(), src.shallow_size(outer));

  Heap dst;
  ByteReader r(w.bytes());
  std::vector<std::tuple<Ref, uint32_t, Ref>> remotes;
  Ref copy = dst.deserialize_shallow(
      r, [&](Ref holder, uint32_t slot, Ref home) { remotes.emplace_back(holder, slot, home); });
  ASSERT_NE(copy, bc::kNull);
  EXPECT_EQ(dst.obj(copy).fields[0].as_i64(), 99);
  // Ref field arrives as a remote stub carrying the home ref, and the
  // side-table sink still reports it.
  Ref stub = dst.obj(copy).fields[1].as_ref();
  ASSERT_NE(stub, bc::kNull);
  EXPECT_TRUE(dst.is_stub(stub));
  EXPECT_EQ(dst.stub_home(stub), inner);
  ASSERT_EQ(remotes.size(), 1u);
  EXPECT_EQ(std::get<0>(remotes[0]), copy);
  EXPECT_EQ(std::get<1>(remotes[0]), 1u);
  EXPECT_EQ(std::get<2>(remotes[0]), inner);
}

TEST(Heap, ShallowArrays) {
  Heap src;
  Ref ad = src.alloc_arr_d(3);
  src.arr_d(ad).v = {1.5, -2.5, 0.0};
  ByteWriter w;
  src.serialize_shallow(ad, w);
  Heap dst;
  ByteReader r(w.bytes());
  Ref copy = dst.deserialize_shallow(r, nullptr);
  EXPECT_EQ(dst.arr_d(copy).v, src.arr_d(ad).v);
}

TEST(Heap, RefArrayRemoteSink) {
  Heap src;
  Ref s1 = src.alloc_str("x");
  Ref arr = src.alloc_arr_r(3);
  src.arr_r(arr).v = {s1, bc::kNull, s1};
  ByteWriter w;
  src.serialize_shallow(arr, w);
  Heap dst;
  ByteReader r(w.bytes());
  int sink_calls = 0;
  Ref copy = dst.deserialize_shallow(r, [&](Ref, uint32_t, Ref) { ++sink_calls; });
  EXPECT_EQ(sink_calls, 2);  // two non-null elements
  // Non-null elements arrive as stubs; the genuine null stays null.
  EXPECT_TRUE(dst.is_stub(dst.arr_r(copy).v[0]));
  EXPECT_EQ(dst.arr_r(copy).v[1], bc::kNull);
  EXPECT_TRUE(dst.is_stub(dst.arr_r(copy).v[2]));
  EXPECT_EQ(dst.stub_home(dst.arr_r(copy).v[0]), s1);
}

TEST(Heap, GraphDeserializeWithoutStubs) {
  Heap src;
  Ref inner = src.alloc_str("y");
  Ref arr = src.alloc_arr_r(1);
  src.arr_r(arr).v = {inner};
  ByteWriter w;
  std::vector<Ref> roots{arr};
  src.serialize_graph(roots, w);
  Heap dst;
  ByteReader r(w.bytes());
  auto map = dst.deserialize_graph(r);
  // Graph mode rewires in-graph refs directly; no stubs remain reachable.
  EXPECT_FALSE(dst.is_stub(dst.arr_r(map.at(arr)).v[0]));
  EXPECT_EQ(dst.str(dst.arr_r(map.at(arr)).v[0]).s, "y");
}

TEST(Heap, GraphSerializePreservesSharingAndCycles) {
  Heap src;
  std::vector<Ty> slots{Ty::Ref, Ty::Ref};
  Ref a = src.alloc_obj(1, slots);
  Ref b = src.alloc_obj(1, slots);
  Ref shared = src.alloc_str("shared");
  // a -> b, a -> shared; b -> a (cycle), b -> shared (sharing)
  src.obj(a).fields[0] = Value::of_ref(b);
  src.obj(a).fields[1] = Value::of_ref(shared);
  src.obj(b).fields[0] = Value::of_ref(a);
  src.obj(b).fields[1] = Value::of_ref(shared);

  ByteWriter w;
  std::vector<Ref> roots{a};
  src.serialize_graph(roots, w);
  EXPECT_EQ(w.size(), src.graph_size(roots));

  Heap dst;
  ByteReader r(w.bytes());
  auto map = dst.deserialize_graph(r);
  ASSERT_EQ(map.size(), 3u);
  Ref a2 = map.at(a), b2 = map.at(b), s2 = map.at(shared);
  EXPECT_EQ(dst.obj(a2).fields[0].as_ref(), b2);
  EXPECT_EQ(dst.obj(b2).fields[0].as_ref(), a2);
  EXPECT_EQ(dst.obj(a2).fields[1].as_ref(), s2);
  EXPECT_EQ(dst.obj(b2).fields[1].as_ref(), s2);
  EXPECT_EQ(dst.str(s2).s, "shared");
  EXPECT_TRUE(Heap::deep_equal(src, a, dst, a2));
}

TEST(Heap, DeepEqualDetectsDifferences) {
  Heap h1, h2;
  std::vector<Ty> slots{Ty::I64};
  Ref x = h1.alloc_obj(1, slots);
  Ref y = h2.alloc_obj(1, slots);
  EXPECT_TRUE(Heap::deep_equal(h1, x, h2, y));
  h2.obj(y).fields[0] = Value::of_i64(5);
  EXPECT_FALSE(Heap::deep_equal(h1, x, h2, y));
  EXPECT_TRUE(Heap::deep_equal(h1, bc::kNull, h2, bc::kNull));
  EXPECT_FALSE(Heap::deep_equal(h1, x, h2, bc::kNull));
}

TEST(Heap, GraphSizeScalesWithPayload) {
  Heap h;
  Ref small = h.alloc_arr_d(10);
  Ref big = h.alloc_arr_d(1000);
  std::vector<Ref> rs{small}, rb{big};
  EXPECT_GT(h.graph_size(rb), 50 * h.graph_size(rs) / 10);
}

}  // namespace
}  // namespace sod::svm
