// Soak tier: long trace replays that are too slow for the tier-1 wall but
// catch what short smokes cannot — data races in the wall-clock engine
// under sustained churn, and slow state corruption across hundreds of
// interleaved tenant sessions.  These tests carry the `soak` ctest label
// and are registered only under -DSOD_SOAK_TESTS=ON; CI runs them in the
// ThreadSanitizer job (`ctest -L soak`), where the thread-pool engine's
// locking actually gets exercised.
#include <gtest/gtest.h>

#include "cluster/loadgen.h"

namespace {

using sod::VDur;
using sod::cluster::ArrivalKind;
using sod::cluster::LoadGenOptions;
using sod::cluster::Trace;
using sod::cluster::TraceConfig;

TEST(SoakTest, OnOffChurnOnWallClockEngine) {
  // The headline soak: a long ON-OFF bursty trace with surge joins, paired
  // drains, and mid-trace worker losses, replayed on the wall-clock
  // thread-pool engine.  Every burst slams the pool with concurrent
  // segments while membership churns underneath it — the shape that
  // surfaces lock-ordering and lost-wakeup races under TSan.
  TraceConfig cfg;
  cfg.sessions = 240;
  cfg.tenants = 6;
  cfg.apps = 2;
  cfg.arrival = ArrivalKind::OnOff;
  cfg.seed = 0x50a7;
  cfg.mean_gap = VDur::micros(400);
  cfg.max_rounds = 2;
  cfg.churn = 0.1;
  cfg.failures = 3;
  Trace tr = sod::cluster::make_trace(cfg);

  LoadGenOptions opts;
  opts.wallclock = true;
  opts.segments_per_round = 2;
  auto r = sod::cluster::run_loadgen(tr, opts);
  EXPECT_EQ(r.completed, cfg.sessions);
  EXPECT_TRUE(r.all_ok);
  EXPECT_TRUE(r.exactly_once);
  EXPECT_GT(r.surge_joins, 0);
  EXPECT_GT(r.workers_lost, 0);
  for (const auto& tn : r.tenants) EXPECT_EQ(tn.completed, tn.sessions) << tn.tenant;
}

TEST(SoakTest, ShardedHomeOnWallClockEngineUnderChurn) {
  // The churn soak again, but with the home state striped over 4 shards
  // and a pool bigger than the worker count: ship/restore/write-back
  // service windows of different shards genuinely overlap while workers
  // join, drain, and die — the shape that surfaces stripe-vs-ordered
  // lock-ordering races under TSan.  Sharding must not cost a single
  // session or exactly-once violation.
  TraceConfig cfg;
  cfg.sessions = 240;
  cfg.tenants = 6;
  cfg.apps = 2;
  cfg.arrival = ArrivalKind::OnOff;
  cfg.seed = 0x50a7;
  cfg.mean_gap = VDur::micros(400);
  cfg.max_rounds = 2;
  cfg.churn = 0.1;
  cfg.failures = 3;
  Trace tr = sod::cluster::make_trace(cfg);

  LoadGenOptions opts;
  opts.wallclock = true;
  opts.threads = 6;
  opts.home_shards = 4;
  opts.segments_per_round = 2;
  auto r = sod::cluster::run_loadgen(tr, opts);
  EXPECT_EQ(r.completed, cfg.sessions);
  EXPECT_TRUE(r.all_ok);
  EXPECT_TRUE(r.exactly_once);
  EXPECT_EQ(r.home_shards, 4);
  EXPECT_GT(r.lock_acq, 0u);
  for (const auto& tn : r.tenants) EXPECT_EQ(tn.completed, tn.sessions) << tn.tenant;
}

TEST(SoakTest, SustainedSoakAllApps) {
  // Constant-rate soak over the full four-app mix (statics-bearing fft and
  // tsp included) on the virtual-time scheduler: hundreds of sessions per
  // tenant exercising the per-(tenant, app) instance locks long enough for
  // a leaked static or a dropped lock release to snowball into a wrong
  // result.
  TraceConfig cfg;
  cfg.sessions = 400;
  cfg.tenants = 5;
  cfg.apps = 4;
  cfg.arrival = ArrivalKind::Soak;
  cfg.seed = 0x50a8;
  cfg.mean_gap = VDur::micros(250);
  cfg.churn = 0.05;
  cfg.failures = 2;
  Trace tr = sod::cluster::make_trace(cfg);

  auto r = sod::cluster::run_loadgen(tr, LoadGenOptions{});
  EXPECT_EQ(r.completed, cfg.sessions);
  EXPECT_TRUE(r.all_ok);
  EXPECT_TRUE(r.exactly_once);
  EXPECT_EQ(r.completion_ms.count(), cfg.sessions);
}

}  // namespace
