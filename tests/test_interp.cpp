// Interpreter semantics: arithmetic, control flow, locals, recursion,
// arrays, objects, statics, strings, natives, budget/pause behaviour.
#include <gtest/gtest.h>

#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;
using bc::Op;
using svm::StopReason;
using svm::ThreadStatus;

bc::Program arith_program() {
  ProgramBuilder pb;
  auto& c = pb.cls("M");
  // iops(a, b) = ((a+b)*(a-b)) % (b|1) + (a/(b|1)) - (-a ^ (a&b)) + (a<<1) + (b>>1)
  auto& f = c.method("iops", {{"a", Ty::I64}, {"b", Ty::I64}}, Ty::I64);
  f.stmt()
      .iload("a").iload("b").iadd()
      .iload("a").iload("b").isub()
      .imul()
      .iload("b").iconst(1).ior()
      .irem()
      .iload("a").iload("b").iconst(1).ior().idiv()
      .iadd()
      .iload("a").ineg()
      .iload("a").iload("b").iand()
      .ixor()
      .isub()
      .iload("a").iconst(1).ishl().iadd()
      .iload("b").iconst(1).ishr().iadd()
      .iret();
  // dops(x, y) = (x+y)*(x-y)/(y) - (-x)
  auto& g = c.method("dops", {{"x", Ty::F64}, {"y", Ty::F64}}, Ty::F64);
  g.stmt()
      .dload("x").dload("y").dadd()
      .dload("x").dload("y").dsub()
      .dmul()
      .dload("y").ddiv()
      .dload("x").dneg()
      .dsub()
      .dret();
  // conv(a) = (i64)((f64)a * 1.5)
  auto& h = c.method("conv", {{"a", Ty::I64}}, Ty::I64);
  h.stmt().iload("a").i2d().dconst(1.5).dmul().d2i().iret();
  return pb.build();
}

int64_t iops_ref(int64_t a, int64_t b) {
  return ((a + b) * (a - b)) % (b | 1) + a / (b | 1) - ((-a) ^ (a & b)) + (a << 1) + (b >> 1);
}

TEST(Interp, IntegerArithmetic) {
  auto p = arith_program();
  for (auto [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 0}, {1, 2}, {17, 5}, {-9, 4}, {1000000, 3}, {-7, -13}}) {
    EXPECT_EQ(run1(p, "M.iops", {Value::of_i64(a), Value::of_i64(b)}).as_i64(), iops_ref(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(Interp, FloatArithmetic) {
  auto p = arith_program();
  double x = 3.5, y = 2.0;
  double want = (x + y) * (x - y) / y - (-x);
  EXPECT_DOUBLE_EQ(run1(p, "M.dops", {Value::of_f64(x), Value::of_f64(y)}).as_f64(), want);
}

TEST(Interp, Conversions) {
  auto p = arith_program();
  EXPECT_EQ(run1(p, "M.conv", {Value::of_i64(7)}).as_i64(), 10);
  EXPECT_EQ(run1(p, "M.conv", {Value::of_i64(-8)}).as_i64(), -12);
}

TEST(Interp, DivisionByZeroThrows) {
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("div", {{"a", Ty::I64}, {"b", Ty::I64}}, Ty::I64);
  f.stmt().iload("a").iload("b").idiv().iret();
  auto p = pb.build();
  svm::VM vm(p, nullptr);
  int tid = vm.spawn(p.find_method("M.div"), std::vector<Value>{Value::of_i64(1), Value::of_i64(0)});
  auto rr = vm.run(tid);
  EXPECT_EQ(rr.reason, StopReason::Crashed);
  EXPECT_EQ(vm.class_of(vm.thread(tid).uncaught), bc::builtin::kArithmetic);
}

TEST(Interp, Int64MinDivMinusOne) {
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("div", {{"a", Ty::I64}, {"b", Ty::I64}}, Ty::I64);
  f.stmt().iload("a").iload("b").idiv().iret();
  auto p = pb.build();
  EXPECT_EQ(run1(p, "M.div", {Value::of_i64(INT64_MIN), Value::of_i64(-1)}).as_i64(), INT64_MIN);
}

TEST(Interp, RecursionFib) {
  auto p = fib_program();
  for (int64_t n : {0, 1, 2, 5, 10, 20}) {
    EXPECT_EQ(run1(p, "Main.fib", {Value::of_i64(n)}).as_i64(), fib_ref(n)) << n;
  }
}

TEST(Interp, LoopsViaBranches) {
  // sum 1..n with a while loop
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("sum", {{"n", Ty::I64}}, Ty::I64);
  uint16_t i = f.local("i", Ty::I64);
  uint16_t s = f.local("s", Ty::I64);
  Label head = f.label(), done = f.label();
  f.stmt().iconst(1).istore(i);
  f.stmt().iconst(0).istore(s);
  f.bind(head).stmt().iload(i).iload("n").if_icmpgt(done);
  f.stmt().iload(s).iload(i).iadd().istore(s);
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(head);
  f.bind(done).stmt().iload(s).iret();
  auto p = pb.build();
  EXPECT_EQ(run1(p, "M.sum", {Value::of_i64(100)}).as_i64(), 5050);
  EXPECT_EQ(run1(p, "M.sum", {Value::of_i64(0)}).as_i64(), 0);
}

TEST(Interp, LookupSwitch) {
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("sw", {{"k", Ty::I64}}, Ty::I64);
  Label c1 = f.label(), c2 = f.label(), dflt = f.label();
  f.stmt().iload("k").lookupswitch(dflt, {{10, c1}, {20, c2}});
  f.bind(c1).stmt().iconst(111).iret();
  f.bind(c2).stmt().iconst(222).iret();
  f.bind(dflt).stmt().iconst(-1).iret();
  auto p = pb.build();
  EXPECT_EQ(run1(p, "M.sw", {Value::of_i64(10)}).as_i64(), 111);
  EXPECT_EQ(run1(p, "M.sw", {Value::of_i64(20)}).as_i64(), 222);
  EXPECT_EQ(run1(p, "M.sw", {Value::of_i64(99)}).as_i64(), -1);
}

TEST(Interp, ArraysAndBoundsChecks) {
  ProgramBuilder pb;
  auto& c = pb.cls("M");
  // rev_sum(n): fill arr[i]=i*i, then sum in reverse
  auto& f = c.method("rev_sum", {{"n", Ty::I64}}, Ty::I64);
  uint16_t a = f.local("a", Ty::Ref);
  uint16_t i = f.local("i", Ty::I64);
  uint16_t s = f.local("s", Ty::I64);
  Label h1 = f.label(), d1 = f.label(), h2 = f.label(), d2 = f.label();
  f.stmt().iload("n").newarray(Ty::I64).astore(a);
  f.stmt().iconst(0).istore(i);
  f.bind(h1).stmt().iload(i).iload("n").if_icmpge(d1);
  f.stmt().aload(a).iload(i).iload(i).iload(i).imul().iastore();
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h1);
  f.bind(d1).stmt().iload("n").iconst(1).isub().istore(i);
  f.stmt().iconst(0).istore(s);
  f.bind(h2).stmt().iload(i).iconst(0).if_icmplt(d2);
  f.stmt().iload(s).aload(a).iload(i).iaload().iadd().istore(s);
  f.stmt().iload(i).iconst(1).isub().istore(i);
  f.stmt().go(h2);
  f.bind(d2).stmt().iload(s).iret();
  // oob(): read past the end
  auto& g = c.method("oob", {}, Ty::I64);
  uint16_t b = g.local("b", Ty::Ref);
  g.stmt().iconst(3).newarray(Ty::I64).astore(b);
  g.stmt().aload(b).iconst(3).iaload().iret();
  auto p = pb.build();

  EXPECT_EQ(run1(p, "M.rev_sum", {Value::of_i64(10)}).as_i64(), 285);

  svm::VM vm(p, nullptr);
  int tid = vm.spawn(p.find_method("M.oob"), {});
  EXPECT_EQ(vm.run(tid).reason, StopReason::Crashed);
  EXPECT_EQ(vm.class_of(vm.thread(tid).uncaught), bc::builtin::kIndexOutOfBounds);
}

TEST(Interp, DoubleArrays) {
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("dsum", {{"n", Ty::I64}}, Ty::F64);
  uint16_t a = f.local("a", Ty::Ref);
  uint16_t i = f.local("i", Ty::I64);
  uint16_t s = f.local("s", Ty::F64);
  Label h = f.label(), d = f.label(), h2 = f.label(), d2 = f.label();
  f.stmt().iload("n").newarray(Ty::F64).astore(a);
  f.stmt().iconst(0).istore(i);
  f.bind(h).stmt().iload(i).iload("n").if_icmpge(d);
  f.stmt().aload(a).iload(i).iload(i).i2d().dconst(0.5).dmul().dastore();
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h);
  f.bind(d).stmt().dconst(0).dstore(s);
  f.stmt().iconst(0).istore(i);
  f.bind(h2).stmt().iload(i).iload("n").if_icmpge(d2);
  f.stmt().dload(s).aload(a).iload(i).daload().dadd().dstore(s);
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h2);
  f.bind(d2).stmt().dload(s).dret();
  auto p = pb.build();
  EXPECT_DOUBLE_EQ(run1(p, "M.dsum", {Value::of_i64(10)}).as_f64(), 22.5);
}

bc::Program object_program() {
  ProgramBuilder pb;
  auto& pt = pb.cls("Point");
  pt.field("x", Ty::I64);
  pt.field("y", Ty::I64);
  auto& gx = pt.method("getX", {{"this", Ty::Ref}}, Ty::I64);
  gx.stmt().aload("this").getfield("Point.x").iret();

  auto& m = pb.cls("M");
  m.field("count", Ty::I64, /*is_static=*/true);
  auto& f = m.method("use", {{"a", Ty::I64}}, Ty::I64);
  uint16_t pslot = f.local("p", Ty::Ref);
  uint16_t t = f.local("t", Ty::I64);
  f.stmt().new_("Point").astore(pslot);
  f.stmt().aload(pslot).iload("a").putfield("Point.x");
  f.stmt().aload(pslot).iconst(7).putfield("Point.y");
  f.stmt().aload(pslot).invoke("Point.getX").istore(t);
  f.stmt().getstatic("M.count").iconst(1).iadd().putstatic("M.count");
  f.stmt().iload(t).aload(pslot).getfield("Point.y").iadd().getstatic("M.count").iadd().iret();
  return pb.build();
}

TEST(Interp, ObjectsFieldsAndStatics) {
  auto p = object_program();
  svm::VM vm(p, nullptr);
  // First call: count becomes 1 -> 5 + 7 + 1
  EXPECT_EQ(vm.call("M.use", std::vector<Value>{Value::of_i64(5)}).as_i64(), 13);
  // Statics persist within the VM: second call sees count == 2.
  EXPECT_EQ(vm.call("M.use", std::vector<Value>{Value::of_i64(5)}).as_i64(), 14);
}

TEST(Interp, GetfieldOnNullThrowsNPE) {
  ProgramBuilder pb;
  auto& pt = pb.cls("Point");
  pt.field("x", Ty::I64);
  auto& f = pb.cls("M").method("npe", {}, Ty::I64);
  uint16_t pslot = f.local("p", Ty::Ref);
  f.stmt().aconst_null().astore(pslot);
  f.stmt().aload(pslot).getfield("Point.x").iret();
  auto p = pb.build();
  svm::VM vm(p, nullptr);
  int tid = vm.spawn(p.find_method("M.npe"), {});
  EXPECT_EQ(vm.run(tid).reason, StopReason::Crashed);
  EXPECT_EQ(vm.class_of(vm.thread(tid).uncaught), bc::builtin::kNullPointer);
  EXPECT_EQ(vm.exception_message(vm.thread(tid).uncaught), "Point.x");
}

TEST(Interp, GuestTryCatch) {
  // try { throw ArithmeticException (via 1/0) } catch -> return 42
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("t", {}, Ty::I64);
  uint16_t tmp = f.local("tmp", Ty::I64);
  Label handler = f.label(), end = f.label();
  uint32_t from = f.here();
  f.stmt().iconst(1).iconst(0).idiv().istore(tmp);
  f.stmt().iload(tmp).iret();
  uint32_t to = f.here();
  f.bind(handler);
  f.pop().stmt().iconst(42).iret();
  f.bind(end);
  f.ex_entry(from, to, handler, bc::builtin::kArithmetic);
  auto p = pb.build();
  EXPECT_EQ(run1(p, "M.t", {}).as_i64(), 42);
}

TEST(Interp, ExceptionPropagatesThroughFrames) {
  // inner() divides by zero; outer catches.
  ProgramBuilder pb;
  auto& c = pb.cls("M");
  auto& inner = c.method("inner", {}, Ty::I64);
  inner.stmt().iconst(1).iconst(0).idiv().iret();
  auto& outer = c.method("outer", {}, Ty::I64);
  uint16_t t = outer.local("t", Ty::I64);
  Label h = outer.label();
  uint32_t from = outer.here();
  outer.stmt().invoke("M.inner").istore(t);
  outer.stmt().iload(t).iret();
  uint32_t to = outer.here();
  outer.bind(h).pop().stmt().iconst(-5).iret();
  outer.ex_entry(from, to, h, bc::kAnyClass);
  auto p = pb.build();
  EXPECT_EQ(run1(p, "M.outer", {}).as_i64(), -5);
}

TEST(Interp, ThrowAndCatchGuestObject) {
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("t", {{"k", Ty::I64}}, Ty::I64);
  Label h = f.label(), nothrow = f.label();
  uint32_t from = f.here();
  f.stmt().iload("k").ifeq(nothrow);
  f.stmt().new_("ArithmeticException").throw_();
  f.bind(nothrow).stmt().iconst(1).iret();
  uint32_t to = f.here();
  f.bind(h).pop().stmt().iconst(2).iret();
  f.ex_entry(from, to, h, bc::builtin::kArithmetic);
  auto p = pb.build();
  EXPECT_EQ(run1(p, "M.t", {Value::of_i64(0)}).as_i64(), 1);
  EXPECT_EQ(run1(p, "M.t", {Value::of_i64(1)}).as_i64(), 2);
}

TEST(Interp, NativesAndStrings) {
  ProgramBuilder pb;
  svm::declare_stdlib(pb);
  auto& f = pb.cls("M").method("go", {}, Ty::I64);
  uint16_t s = f.local("s", Ty::Ref);
  uint16_t at = f.local("at", Ty::I64);
  f.stmt().ldc_str("hello world").astore(s);
  f.stmt().aload(s).invokenative("sys.print_str");
  f.stmt().iconst(42).invokenative("sys.print_i64");
  f.stmt().aload(s).ldc_str("world").iconst(0).invokenative("str.find").istore(at);
  f.stmt().iload(at).iret();
  auto p = pb.build();

  svm::NativeRegistry reg;
  svm::StdLib lib;
  lib.install(reg);
  svm::VM vm(p, &reg);
  EXPECT_EQ(vm.call("M.go", {}).as_i64(), 6);
  EXPECT_EQ(lib.out(), "hello world\n42\n");
}

TEST(Interp, BudgetPausesAndResumes) {
  auto p = fib_program();
  svm::VM vm(p, nullptr);
  int tid = vm.spawn(p.find_method("Main.fib"), std::vector<Value>{Value::of_i64(18)});
  int pauses = 0;
  while (true) {
    auto rr = vm.run(tid, 100);
    if (rr.reason == StopReason::Done) break;
    ASSERT_EQ(rr.reason, StopReason::Budget);
    ++pauses;
    ASSERT_LT(pauses, 1000000);
  }
  EXPECT_GT(pauses, 10);
  EXPECT_EQ(vm.thread(tid).result.as_i64(), fib_ref(18));
}

TEST(Interp, BreakpointFiresOnlyInDebugMode) {
  auto p = fib_program();
  uint16_t mid = p.find_method("Main.fib");
  {
    svm::VM vm(p, nullptr);
    vm.add_breakpoint(mid, 0);
    int tid = vm.spawn(mid, std::vector<Value>{Value::of_i64(10)});
    EXPECT_EQ(vm.run(tid).reason, StopReason::Done);  // fast mode ignores bps
  }
  {
    svm::VM vm(p, nullptr);
    vm.set_debug_mode(true);
    vm.add_breakpoint(mid, 0);
    int tid = vm.spawn(mid, std::vector<Value>{Value::of_i64(10)});
    auto rr = vm.run(tid);
    EXPECT_EQ(rr.reason, StopReason::Breakpoint);
    EXPECT_EQ(vm.thread(tid).frames.back().pc, 0u);
    // Resuming skips the breakpoint we stopped on, then hits it again on
    // the next recursive call.
    rr = vm.run(tid);
    EXPECT_EQ(rr.reason, StopReason::Breakpoint);
    EXPECT_EQ(vm.thread(tid).frames.size(), 2u);
    // Remove and finish.
    vm.remove_breakpoint(mid, 0);
    EXPECT_EQ(vm.run(tid).reason, StopReason::Done);
    EXPECT_EQ(vm.thread(tid).result.as_i64(), fib_ref(10));
  }
}

TEST(Interp, SafepointPause) {
  auto p = fib_program();
  uint16_t mid = p.find_method("Main.fib");
  svm::VM vm(p, nullptr);
  vm.set_debug_mode(true);
  int tid = vm.spawn(mid, std::vector<Value>{Value::of_i64(12)});
  // Run a little, then request a safepoint pause.
  auto rr = vm.run(tid, 50);
  ASSERT_EQ(rr.reason, StopReason::Budget);
  vm.request_safepoint(true);
  rr = vm.run(tid);
  ASSERT_EQ(rr.reason, StopReason::SafePoint);
  const auto& f = vm.thread(tid).frames.back();
  EXPECT_TRUE(p.method(f.method).is_stmt_start(f.pc));
  EXPECT_TRUE(f.ostack.empty());
  // Clear the request; execution completes normally.
  vm.request_safepoint(false);
  EXPECT_EQ(vm.run(tid).reason, StopReason::Done);
  EXPECT_EQ(vm.thread(tid).result.as_i64(), fib_ref(12));
}

TEST(Interp, RaiseInThreadTriggersHandler) {
  // Method with a catch-all handler that returns 77; raise an exception
  // externally at entry (the restore driver's mechanism).
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("t", {}, Ty::I64);
  Label h = f.label();
  uint32_t from = f.here();
  f.stmt().iconst(1).iret();
  uint32_t to = f.here();
  f.bind(h).pop().stmt().iconst(77).iret();
  f.ex_entry(from, to, h, bc::builtin::kInvalidState);
  auto p = pb.build();
  svm::VM vm(p, nullptr);
  int tid = vm.spawn(p.find_method("M.t"), {});
  vm.raise_in_thread(tid, bc::builtin::kInvalidState, "restore");
  EXPECT_EQ(vm.run(tid).reason, StopReason::Done);
  EXPECT_EQ(vm.thread(tid).result.as_i64(), 77);
}

TEST(Interp, HeapLimitTriggersOutOfMemory) {
  ProgramBuilder pb;
  auto& f = pb.cls("M").method("big", {}, Ty::I64);
  uint16_t a = f.local("a", Ty::Ref);
  f.stmt().iconst(1 << 20).newarray(Ty::I64).astore(a);
  f.stmt().aload(a).arraylen().iret();
  auto p = pb.build();
  svm::VM::Config cfg;
  cfg.heap_limit_bytes = 1024;  // tiny device heap
  svm::VM vm(p, nullptr, cfg);
  int tid = vm.spawn(p.find_method("M.big"), {});
  EXPECT_EQ(vm.run(tid).reason, StopReason::Crashed);
  EXPECT_EQ(vm.class_of(vm.thread(tid).uncaught), bc::builtin::kOutOfMemory);
}

TEST(Interp, InstructionCounting) {
  auto p = fib_program();
  svm::VM vm(p, nullptr);
  uint64_t before = vm.instr_count();
  vm.call("Main.fib", std::vector<Value>{Value::of_i64(10)});
  EXPECT_GT(vm.instr_count(), before + 100);
}

}  // namespace
}  // namespace sod
