// Textual assembler: programs written as .sasm text assemble, verify, run
// correctly, and survive the full migration pipeline.
#include <gtest/gtest.h>

#include "bytecode/asm.h"
#include "bytecode/disasm.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;

constexpr const char* kFibSrc = R"(
# recursive fibonacci
class Main
method Main.fib (n:i64) -> i64
local a i64
local b i64
.stmt
  iload n
  iconst 2
  if_icmpge L_rec
.stmt
  iload n
  ireturn
L_rec:
.stmt
  iload n
  iconst 1
  isub
  invoke Main.fib
  istore a
.stmt
  iload n
  iconst 2
  isub
  invoke Main.fib
  istore b
.stmt
  iload a
  iload b
  iadd
  ireturn
end
)";

TEST(Asm, AssemblesAndRunsFib) {
  auto p = bc::assemble(kFibSrc);
  EXPECT_EQ(run1(p, "Main.fib", {Value::of_i64(15)}).as_i64(), fib_ref(15));
}

TEST(Asm, AssembledProgramSurvivesMigration) {
  auto p = bc::assemble(kFibSrc);
  prep::preprocess_program(p);
  mig::SodNode home("home", p, {});
  mig::SodNode dest("dest", p, {});
  uint16_t fib = p.find_method("Main.fib");
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(14)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 5));
  mig::offload_and_return(home, tid, 2, dest, sim::Link::gigabit());
  home.ti().set_debug_enabled(false);
  ASSERT_EQ(home.run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(home.vm().thread(tid).result.as_i64(), fib_ref(14));
}

TEST(Asm, FieldsStaticsObjectsAndCatch) {
  constexpr const char* src = R"(
class Point
field Point.x i64
class M
field M.count i64 static
method M.go (a:i64) -> i64
local p ref
local t i64
.stmt
  new Point
  astore p
.stmt
  aload p
  iload a
  putfield Point.x
L_try:
.stmt
  iload a
  iconst 0
  idiv
  istore t
.stmt
  iload t
  ireturn
L_after:
L_handler:
  pop
.stmt
  getstatic M.count
  iconst 1
  iadd
  putstatic M.count
.stmt
  aload p
  getfield Point.x
  getstatic M.count
  iadd
  ireturn
catch L_handler from L_try to L_after class ArithmeticException
end
)";
  auto p = bc::assemble(src);
  // 1/0 throws; handler returns x + count = a + 1
  EXPECT_EQ(run1(p, "M.go", {Value::of_i64(9)}).as_i64(), 10);
}

TEST(Asm, LookupSwitchAndStrings) {
  constexpr const char* src = R"(
native str.find (ref, ref, i64) -> i64
class M
method M.sw (k:i64) -> i64
.stmt
  iload k
  lookupswitch L_dflt 1:L_one 2:L_two
L_one:
.stmt
  iconst 11
  ireturn
L_two:
.stmt
  iconst 22
  ireturn
L_dflt:
.stmt
  iconst -1
  ireturn
end
method M.find () -> i64
local h ref
local n ref
.stmt
  ldc_str "hello world"
  astore h
.stmt
  ldc_str "world"
  astore n
.stmt
  aload h
  aload n
  iconst 0
  invokenative str.find
  ireturn
end
)";
  auto p = bc::assemble(src);
  svm::NativeRegistry reg;
  svm::StdLib lib;
  lib.install(reg);
  svm::VM vm(p, &reg);
  EXPECT_EQ(vm.call("M.sw", std::vector<Value>{Value::of_i64(1)}).as_i64(), 11);
  EXPECT_EQ(vm.call("M.sw", std::vector<Value>{Value::of_i64(2)}).as_i64(), 22);
  EXPECT_EQ(vm.call("M.sw", std::vector<Value>{Value::of_i64(9)}).as_i64(), -1);
  EXPECT_EQ(vm.call("M.find", {}).as_i64(), 6);
}

TEST(Asm, DiagnosticsCarryLineNumbers) {
  EXPECT_THROW(
      {
        try {
          bc::assemble("class A\nmethod A.f () -> i64\n  bogus_op\nend\n");
        } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
          throw;
        }
      },
      Error);
  EXPECT_THROW(bc::assemble("field NoClass.x i64\n"), Error);
  EXPECT_THROW(bc::assemble("class A\nmethod A.f () -> i64\n  ireturn\n"), Error);  // no end
  // Verifier errors surface too (empty stack ireturn).
  EXPECT_THROW(bc::assemble("class A\nmethod A.f () -> i64\n.stmt\n  ireturn\nend\n"), Error);
}

TEST(Asm, DisassemblerShowsAssembledCode) {
  auto p = bc::assemble(kFibSrc);
  std::string text = bc::disasm_method(p, p.method(p.find_method("Main.fib")));
  EXPECT_NE(text.find("invoke"), std::string::npos);
  EXPECT_NE(text.find("if_icmpge"), std::string::npos);
}

}  // namespace
}  // namespace sod
