// Integration tests over the experiment drivers: every paper table's
// qualitative shape must hold (who wins, where the crossovers are), plus
// baseline-system semantics.
#include <gtest/gtest.h>

#include "prep/prep.h"
#include "sodee/experiment.h"
#include "testlib.h"

namespace sod {
namespace {

using mig::SodNode;
using bc::Value;

TEST(Baselines, ProcessMigrationPreservesExecution) {
  auto p = testing::fib_program();
  prep::preprocess_program(p);
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(16)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 5));
  home.ti().set_debug_enabled(false);
  int dtid = -1;
  auto t = baselines::process_migrate(home, tid, dest, sim::Link::gigabit(), &dtid);
  EXPECT_GT(t.state_bytes, 0u);
  auto rr = dest.run_guest(dtid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(dest.vm().thread(dtid).result.as_i64(), testing::fib_ref(16));
}

TEST(Baselines, ProcessMigrationCarriesHeapEagerly) {
  // A list-heavy thread: the whole heap ships; execution at dest needs no
  // home contact at all.
  bc::ProgramBuilder pb;
  auto& nd = pb.cls("N");
  nd.field("v", bc::Ty::I64);
  nd.field("nx", bc::Ty::Ref);
  auto& m = pb.cls("M");
  auto& bld = m.method("mk", {{"n", bc::Ty::I64}}, bc::Ty::Ref);
  {
    uint16_t h = bld.local("h", bc::Ty::Ref);
    uint16_t node = bld.local("node", bc::Ty::Ref);
    uint16_t i = bld.local("i", bc::Ty::I64);
    bc::Label l = bld.label(), d = bld.label();
    bld.stmt().aconst_null().astore(h);
    bld.stmt().iload("n").istore(i);
    bld.bind(l).stmt().iload(i).iconst(1).if_icmplt(d);
    bld.stmt().new_("N").astore(node);
    bld.stmt().aload(node).iload(i).putfield("N.v");
    bld.stmt().aload(node).aload(h).putfield("N.nx");
    bld.stmt().aload(node).astore(h);
    bld.stmt().iload(i).iconst(1).isub().istore(i);
    bld.stmt().go(l);
    bld.bind(d).stmt().aload(h).aret();
  }
  auto& sum = m.method("sum", {{"n", bc::Ty::I64}}, bc::Ty::I64);
  {
    uint16_t h = sum.local("h", bc::Ty::Ref);
    uint16_t s = sum.local("s", bc::Ty::I64);
    bc::Label l = sum.label(), d = sum.label();
    sum.stmt().iload("n").invoke("M.mk").astore(h);
    sum.stmt().iconst(0).istore(s);
    sum.bind(l).stmt().aload(h).ifnull(d);
    sum.stmt().iload(s).aload(h).getfield("N.v").iadd().istore(s);
    sum.stmt().aload(h).getfield("N.nx").astore(h);
    sum.stmt().go(l);
    sum.bind(d).stmt().iload(s).iret();
  }
  auto p = pb.build();
  prep::preprocess_program(p);
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  uint16_t sum_m = p.find_method("M.sum");
  // Dry run to learn the total instruction count, then stop 3/4 through
  // (inside the sum loop, after the list is fully built).
  uint64_t total;
  {
    SodNode dry("dry", p, {});
    int dtid = dry.vm().spawn(sum_m, std::vector<Value>{Value::of_i64(200)});
    uint64_t before = dry.vm().instr_count();
    dry.run_guest(dtid);
    total = dry.vm().instr_count() - before;
  }
  int tid = home.vm().spawn(sum_m, std::vector<Value>{Value::of_i64(200)});
  home.run_guest(tid, total / 2);
  ASSERT_TRUE(mig::pause_at_next_msp(home, tid));
  home.ti().set_debug_enabled(false);
  int dtid = -1;
  auto t = baselines::process_migrate(home, tid, dest, sim::Link::gigabit(), &dtid);
  // The reachable closure travelled eagerly: at the halfway point that is
  // dozens of list nodes in one message (vs SOD's per-object faults).
  EXPECT_GT(t.state_bytes, 1500u);
  auto rr = dest.run_guest(dtid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(dest.vm().thread(dtid).result.as_i64(), 200 * 201 / 2);
}

TEST(Baselines, ThreadMigrationPreservesExecution) {
  auto p = testing::fib_program();
  prep::preprocess_program(p);
  uint16_t fib = p.find_method("Main.fib");
  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  int tid = home.vm().spawn(fib, std::vector<Value>{Value::of_i64(15)});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, fib, 4));
  home.ti().set_debug_enabled(false);
  int dtid = -1;
  mig::ObjectManager om;
  auto t = baselines::thread_migrate(home, tid, dest, sim::Link::gigabit(), &dtid, &om);
  EXPECT_LT(t.capture.ms(), 1.0);  // in-VM capture is nearly free
  auto rr = dest.run_guest(dtid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(dest.vm().thread(dtid).result.as_i64(), testing::fib_ref(15));
}

TEST(Baselines, XenModelShape) {
  auto t = baselines::xen_live_migrate({}, sim::Link::gigabit());
  // Seconds-scale latency, sub-second freeze, more bytes than the image.
  EXPECT_GT(t.total_latency.sec(), 1.0);
  EXPECT_LT(t.freeze.sec(), 1.0);
  EXPECT_GE(t.bytes, (256ull << 20));
  // Narrower link, longer migration.
  sim::Link slow(100e6, VDur::micros(100));
  auto t2 = baselines::xen_live_migrate({}, slow);
  EXPECT_GT(t2.total_latency.ns, t.total_latency.ns);
}

TEST(Experiments, Table4Shape) {
  // SOD latency flat and small; G-JavaMPI scales with frames/heap;
  // JESSICA2 capture cheapest; its FFT restore pays the 64 MB allocation.
  auto apps = apps::table1_apps();
  sodee::MeasuredApp fib = sodee::measure_app(apps[0]);
  sodee::MeasuredApp fft = sodee::measure_app(apps[2]);

  EXPECT_LT(fib.sod.latency().ms(), fib.gj.latency().ms());
  EXPECT_LT(fib.j2.capture.ns, fib.sod.capture.ns);
  // SOD's latency unaffected by FFT's 64 MB statics (within 5x of Fib's).
  EXPECT_LT(fft.sod.latency().ns, 5 * fib.sod.latency().ns);
  // G-JavaMPI's FFT latency dominated by the heap: much larger than SOD's.
  EXPECT_GT(fft.gj.latency().ns, 100 * fft.sod.latency().ns);
  // JESSICA2's FFT restore blow-up.
  EXPECT_GT(fft.j2.restore.ms(), 10.0);
}

TEST(Experiments, Table3TspCrossover) {
  auto apps = apps::table1_apps();
  sodee::MeasuredApp fib = sodee::measure_app(apps[0]);
  sodee::MeasuredApp tsp = sodee::measure_app(apps[3]);
  sodee::OverheadRow fib_row = sodee::overhead_row(fib);
  sodee::OverheadRow tsp_row = sodee::overhead_row(tsp);
  // SODEE beats eager copy on Fib...
  EXPECT_LT(fib_row.sodee_overhead_ms(), fib_row.gj_overhead_ms());
  // ...but loses on TSP, where the migrated frame touches everything.
  EXPECT_GT(tsp_row.sodee_overhead_ms(), tsp_row.gj_overhead_ms());
  // TSP generated real object faults.
  EXPECT_GE(tsp.faults.faults, 3);
}

TEST(Experiments, Table6LocalityShape) {
  auto rows = sodee::run_locality_experiment();
  ASSERT_EQ(rows.size(), 3u);
  const auto& sodee_row = rows[0];
  const auto& j2_row = rows[1];
  const auto& xen_row = rows[2];
  EXPECT_EQ(sodee_row.system, "SODEE");
  // SODEE's gain dominates; everything stays above the on-server floor.
  EXPECT_GT(sodee_row.gain(), 0.15);
  EXPECT_GT(sodee_row.gain(), j2_row.gain());
  EXPECT_GT(sodee_row.gain(), xen_row.gain());
  EXPECT_GE(sodee_row.mig_s, sodee_row.on_server_s * 0.99);
}

TEST(Experiments, Table7BandwidthShape) {
  auto rows = sodee::run_bandwidth_experiment({50, 384});
  ASSERT_EQ(rows.size(), 2u);
  // Lower bandwidth -> longer transfer; capture/restore flat.
  EXPECT_GT(rows[0].state_ms + rows[0].class_ms, rows[1].state_ms + rows[1].class_ms);
  EXPECT_NEAR(rows[0].capture_ms, rows[1].capture_ms, 0.5);
  EXPECT_NEAR(rows[0].restore_ms, rows[1].restore_ms, 2.0);
  // Device restore far exceeds cluster restore (sub-ms): tens of ms.
  EXPECT_GT(rows[0].restore_ms, 10.0);
}

TEST(Experiments, RoamingSpeedup) {
  auto res = sodee::run_roaming_grid(4, 1 << 20, 1.0);
  EXPECT_GT(res.speedup(), 1.5);
}

}  // namespace
}  // namespace sod
