// Cluster placement: policies pick the expected worker under skewed loads,
// slow links, and class locality; concurrent multi-segment dispatch
// preserves app results while hiding freeze time (the Fig. 1(c) property);
// the event-driven Scheduler re-dispatches segments after worker losses
// (deterministically, exactly once), autoscales membership from queue
// depth, and chains ref results across workers via home-mediated handles.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod::cluster {
namespace {

using bc::ProgramBuilder;
using bc::Ty;
using bc::Value;

bc::Program prepped_fib() {
  auto p = sod::testing::fib_program();
  prep::preprocess_program(p);
  return p;
}

TEST(Policy, ParseAcceptsDashedAndUnderscoredSpellings) {
  EXPECT_EQ(parse_policy("round-robin"), PolicyKind::RoundRobin);
  EXPECT_EQ(parse_policy("round_robin"), PolicyKind::RoundRobin);
  EXPECT_EQ(parse_policy("least-loaded"), PolicyKind::LeastLoaded);
  EXPECT_EQ(parse_policy("least_loaded"), PolicyKind::LeastLoaded);
  EXPECT_EQ(parse_policy("locality-aware"), PolicyKind::LocalityAware);
  EXPECT_EQ(parse_policy("locality"), PolicyKind::LocalityAware);
  EXPECT_EQ(parse_policy("learned"), PolicyKind::Learned);
  EXPECT_FALSE(parse_policy("fastest").has_value());
  EXPECT_FALSE(parse_policy("").has_value());
}

TEST(Policy, RoundRobinCycles) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  auto pol = make_policy(PolicyKind::RoundRobin);
  PlacementRequest req;
  for (int i = 0; i < 6; ++i) EXPECT_EQ(pol->choose(c, req), i % 3);
}

TEST(Policy, LeastLoadedPicksTheIdleWorker) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  c.worker(0).node().clock.advance(VDur::millis(10));
  c.worker(2).node().clock.advance(VDur::millis(25));
  auto pol = make_policy(PolicyKind::LeastLoaded);
  PlacementRequest req;
  req.state_bytes = 256;
  EXPECT_EQ(pol->choose(c, req), 1);
  // Load worker 1 past worker 0: the choice follows the load skew.
  c.worker(1).node().clock.advance(VDur::millis(30));
  EXPECT_EQ(pol->choose(c, req), 0);
}

TEST(Policy, LeastLoadedAvoidsASlowLink) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_worker({"fast", {}, sim::Link::gigabit()});
  c.add_worker({"wifi", {}, sim::Link::wifi_kbps(500)});
  auto pol = make_policy(PolicyKind::LeastLoaded);
  PlacementRequest req;
  req.state_bytes = 64 << 10;  // ~1 s over 500 kbps wifi
  EXPECT_EQ(pol->choose(c, req), 0);
  // Even a busy fast worker beats shipping the state over wifi.
  c.worker(0).node().clock.advance(VDur::millis(50));
  EXPECT_EQ(pol->choose(c, req), 0);
}

TEST(Policy, LocalityAwarePrefersTheClassHolder) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  uint16_t cls = p.method(p.find_method("Main.fib")).owner;
  c.worker(2).mark_class_shipped(cls);
  PlacementRequest req;
  req.cls = cls;
  req.state_bytes = 512;
  req.class_image_bytes = p.class_image(cls).size();
  ASSERT_GT(req.class_image_bytes, 0u);
  auto least = make_policy(PolicyKind::LeastLoaded);
  auto local = make_policy(PolicyKind::LocalityAware);
  EXPECT_EQ(least->choose(c, req), 0);  // locality-blind: all equal, lowest id
  EXPECT_EQ(local->choose(c, req), 2);  // the holder skips the image transfer
}

TEST(Policy, LocalityAwareFallsBackToLoadWhenNobodyHoldsTheClass) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  c.worker(0).node().clock.advance(VDur::millis(10));
  c.worker(2).node().clock.advance(VDur::millis(10));
  PlacementRequest req;
  req.cls = p.method(p.find_method("Main.fib")).owner;
  req.state_bytes = 512;
  req.class_image_bytes = p.class_image(req.cls).size();
  auto pol = make_policy(PolicyKind::LocalityAware);
  EXPECT_EQ(pol->choose(c, req), 1);
}

TEST(Dispatch, SplitTopFramesIsContiguousFromTheTop) {
  auto specs = split_top_frames(3);
  ASSERT_EQ(specs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(specs[static_cast<size_t>(i)].depth_lo, i);
    EXPECT_EQ(specs[static_cast<size_t>(i)].depth_hi, i + 1);
  }
}

TEST(Dispatch, ConcurrentSplitPreservesTheResultAndHidesFreezeTime) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(3);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
  auto pol = make_policy(PolicyKind::RoundRobin);
  auto out = dispatch_segments(c, tid, split_top_frames(3), *pol);
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(22));
  ASSERT_EQ(out.placements.size(), 3u);
  // Every lower segment finished restoring inside the window in which the
  // segment above it was still executing: its freeze time was hidden.
  EXPECT_TRUE(out.overlapped);
  for (size_t i = 1; i < out.placements.size(); ++i)
    EXPECT_LT(out.placements[i].restored_at, out.placements[i - 1].completed_at);
}

TEST(Dispatch, ConcurrentShippingBeatsTheSequentialBaseline) {
  auto total_with = [](bool concurrent) {
    auto p = prepped_fib();
    uint16_t fib = p.find_method("Main.fib");
    Cluster c(p);
    c.add_uniform_workers(3);
    int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
    auto pol = make_policy(PolicyKind::RoundRobin);
    DispatchOptions o;
    o.concurrent = concurrent;
    auto out = dispatch_segments(c, tid, split_top_frames(3), *pol, o);
    if (!concurrent) {
      EXPECT_FALSE(out.overlapped);
    }
    c.home().ti().set_debug_enabled(false);
    EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(22));
    return c.home().node().clock.now();
  };
  VDur conc = total_with(true);
  VDur seq = total_with(false);
  // Fig. 1(c): the concurrent total is strictly below the sum-of-sequential
  // offload total because transfer + restore of lower segments is hidden.
  EXPECT_LT(conc.ns, seq.ns);
}

// --- elastic membership ---

TEST(Membership, DuplicateWorkerNamePanics) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_worker({"alpha", {}, sim::Link::gigabit()});
  EXPECT_DEATH(c.add_worker({"alpha", {}, sim::Link::gigabit()}), "duplicate worker name");
}

TEST(Membership, DrainRetiresWhenTheQueueEmpties) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(2);
  c.note_assigned(0, VDur::millis(1));
  c.drain_worker(0);
  EXPECT_EQ(c.state(0), WorkerState::Draining);
  EXPECT_FALSE(c.accepting(0));
  EXPECT_EQ(c.accepting_size(), 1);
  c.note_completed(0);
  EXPECT_EQ(c.state(0), WorkerState::Retired);
  // An idle worker retires the moment it is drained.
  c.drain_worker(1);
  EXPECT_EQ(c.state(1), WorkerState::Retired);
  EXPECT_EQ(c.accepting_size(), 0);
}

TEST(Membership, RemoveRequiresAnIdleWorker) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(2);
  c.note_assigned(0);
  EXPECT_DEATH(c.remove_worker(0), "outstanding work");
  c.remove_worker(1);
  EXPECT_EQ(c.state(1), WorkerState::Retired);
  c.note_completed(0);
  c.remove_worker(0);
  EXPECT_EQ(c.accepting_size(), 0);
}

TEST(Membership, AssignToNonAcceptingWorkerPanics) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(2);
  c.drain_worker(0);
  EXPECT_DEATH(c.note_assigned(0), "non-accepting");
}

TEST(Policy, RoundRobinStaysValidAcrossMembershipChurn) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  auto pol = make_policy(PolicyKind::RoundRobin);
  PlacementRequest req;
  // The counter wraps modularly (regression: the signed counter used to
  // overflow and produce negative ids) and only accepting members are
  // returned, across drains, removals, and joins.
  for (int i = 0; i < 1000; ++i) {
    int w = pol->choose(c, req);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, c.size());
    ASSERT_TRUE(c.accepting(w));
    if (i == 200) c.drain_worker(1);
    if (i == 400) c.remove_worker(0);
    if (i == 600) c.add_worker({"late-joiner", {}, sim::Link::gigabit()});
  }
  // Only worker 2 and the late joiner still accept; the cycle covers both.
  std::set<int> seen;
  for (int i = 0; i < 4; ++i) seen.insert(pol->choose(c, req));
  EXPECT_EQ(seen, (std::set<int>{2, 3}));
}

TEST(Policy, PoliciesSkipDrainingAndRetiredWorkers) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  c.drain_worker(0);
  c.remove_worker(2);
  PlacementRequest req;
  req.state_bytes = 256;
  for (PolicyKind kind : all_policies()) {
    auto pol = make_policy(kind);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(pol->choose(c, req), 1) << policy_name(kind);
  }
}

TEST(Policy, QueuedCostRaisesTheArrivalEstimate) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(2);
  // Worker 0 holds ONE expensive queued round, worker 1 TWO cheap ones:
  // count-based accounting prefers worker 0, cost-based prefers worker 1.
  c.note_assigned(0, VDur::millis(50));
  c.note_assigned(1, VDur::micros(10));
  c.note_assigned(1, VDur::micros(10));
  EXPECT_EQ(c.queued_cost(0), VDur::millis(50));
  EXPECT_EQ(c.inflight(0), 1);
  EXPECT_EQ(c.inflight(1), 2);
  PlacementRequest req;
  req.state_bytes = 256;
  auto least = make_policy(PolicyKind::LeastLoaded);
  auto learned = make_policy(PolicyKind::Learned);
  EXPECT_EQ(least->choose(c, req), 0);    // inflight count is its primary key
  EXPECT_EQ(learned->choose(c, req), 1);  // predicted completion sees the 50 ms
}

TEST(Policy, LearnedConvergesToTheFasterWorker) {
  auto p = prepped_fib();
  uint16_t cls = p.method(p.find_method("Main.fib")).owner;
  Cluster c(p);
  mig::SodNode::Config slow;
  slow.cpu_scale = 25.0;
  c.add_worker({"slow", slow, sim::Link::gigabit()});
  c.add_worker({"fast", {}, sim::Link::gigabit()});
  PlacementRequest req;
  req.cls = cls;
  req.state_bytes = 256;
  auto pol = make_policy(PolicyKind::Learned);
  // Cold: no execution-time estimate, equal links and loads — the tie
  // lands on the first worker, the slow one.
  EXPECT_EQ(pol->choose(c, req), 0);
  // One observed execution on the slow worker teaches the policy the
  // class's reference-CPU cost; the 25x cpu_scale then prices the slow
  // worker out.
  Placement pl;
  pl.worker = 0;
  pl.cls = cls;
  pl.executed_at = VDur::millis(1);
  pl.completed_at = VDur::millis(26);  // 25 ms on the slow CPU = 1 ms reference
  pol->observe(c, req, pl);
  EXPECT_GT(pol->estimate(c, 0, req), pol->estimate(c, 1, req));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(pol->choose(c, req), 1);
  // Further observations on the fast worker keep the EWMA consistent and
  // the choice stable.
  Placement pl2;
  pl2.worker = 1;
  pl2.cls = cls;
  pl2.executed_at = VDur::millis(2);
  pl2.completed_at = VDur::millis(3);
  pol->observe(c, req, pl2);
  EXPECT_EQ(pol->choose(c, req), 1);
}

TEST(Cluster, NoOpStaticRefreshShipsNothing) {
  ProgramBuilder pb;
  auto& cls = pb.cls("Main");
  cls.field("counter", Ty::I64, /*is_static=*/true);
  auto& m = cls.method("touch", {}, Ty::I64);
  m.stmt().getstatic("Main.counter").iret();
  auto p = pb.build();
  prep::preprocess_program(p);

  mig::SodNode src("src", p, {});
  mig::SodNode dst("dst", p, {});
  src.call_guest("Main.touch", std::vector<Value>{});
  dst.call_guest("Main.touch", std::vector<Value>{});

  uint16_t cid = p.find_class("Main");
  ASSERT_TRUE(src.vm().class_loaded(cid));
  ASSERT_TRUE(dst.vm().class_loaded(cid));

  // Identical statics: nothing to ship (regression: 8 bytes were charged
  // and the class marked changed even for identical values).
  EXPECT_EQ(refresh_primitive_statics(src, dst), 0u);

  uint16_t fid = p.find_field("Main.counter");
  std::vector<Value> vals(src.vm().statics_of(cid).begin(), src.vm().statics_of(cid).end());
  vals[p.field(fid).slot] = Value::of_i64(42);
  src.vm().overwrite_statics(cid, std::move(vals));
  EXPECT_EQ(refresh_primitive_statics(src, dst), 8u);  // the changed field ships once
  EXPECT_EQ(dst.vm().statics_of(cid)[p.field(fid).slot].as_i64(), 42);
  EXPECT_EQ(refresh_primitive_statics(src, dst), 0u);  // and is a no-op afterwards
}

TEST(Dispatch, ChainedSegmentsRunInFastModeDespiteSharedWorkerRestores) {
  // Exec-time parity between a collision-free dispatch (3 segments on 3
  // workers) and one where a lower segment restores on the top segment's
  // worker (3 segments on 2 workers).  A lower segment's restore leaves
  // the shared worker's debug interpreter on; the top segment must still
  // execute in fast mode (regression: it ran at the 10x debug multiplier).
  auto exec_span_of_top = [](int nworkers) {
    auto p = prepped_fib();
    uint16_t fib = p.find_method("Main.fib");
    Cluster c(p);
    c.add_uniform_workers(nworkers);
    int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
    auto pol = make_policy(PolicyKind::RoundRobin);
    auto out = dispatch_segments(c, tid, split_top_frames(3), *pol);
    c.home().ti().set_debug_enabled(false);
    EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(22));
    return out.placements[0].completed_at - out.placements[0].restored_at;
  };
  VDur clean = exec_span_of_top(3);    // top segment alone on its worker
  VDur shared = exec_span_of_top(2);   // segment 2 also restores on worker 0
  // The shared-worker span additionally contains segment 2's restore, but
  // nothing close to a 10x-inflated execution.
  EXPECT_LT(shared.ns, clean.ns * 3);
}

TEST(Dispatch, JoinAndDrainBetweenRounds) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(2);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(24)});
  auto pol = make_policy(PolicyKind::RoundRobin);

  auto round = [&](int k) {
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, k + 2));
    auto out = dispatch_segments(c, tid, split_top_frames(k), *pol);
    c.home().ti().set_debug_enabled(false);
    return out;
  };

  auto r1 = round(2);
  ASSERT_EQ(r1.placements.size(), 2u);

  // A worker joining mid-run is visible to the very next round: a
  // full-width round touches every accepting member, the joiner included.
  int joiner = c.add_worker({"joiner", {}, sim::Link::gigabit()});
  auto r2 = round(3);
  bool joiner_used = false;
  for (const auto& pl : r2.placements) joiner_used = joiner_used || pl.worker == joiner;
  EXPECT_TRUE(joiner_used);

  // A drained worker stops receiving segments and retires once idle.
  c.drain_worker(0);
  EXPECT_EQ(c.state(0), WorkerState::Retired);  // queue empty between rounds
  auto r3 = round(2);
  for (const auto& pl : r3.placements) EXPECT_NE(pl.worker, 0);

  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(24));
}

TEST(Dispatch, MultiFrameSegmentsChainAcrossWorkers) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(2);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(20)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
  std::vector<mig::SegmentSpec> specs{{0, 1}, {1, 3}};
  auto pol = make_policy(PolicyKind::RoundRobin);
  auto out = dispatch_segments(c, tid, specs, *pol);
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(20));
  ASSERT_EQ(out.placements.size(), 2u);
  EXPECT_EQ(out.placements[0].worker, 0);
  EXPECT_EQ(out.placements[1].worker, 1);
}

// --- worker failure, the event-driven scheduler, and autoscaling ---

TEST(Membership, FailWorkerDropsQueueAndNeverAcceptsAgain) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(2);
  c.note_assigned(0, VDur::millis(1));
  c.note_assigned(0, VDur::millis(2));
  EXPECT_DOUBLE_EQ(c.mean_queue_depth(), 1.0);
  EXPECT_EQ(c.fail_worker(0), 2);  // both outstanding assignments dropped
  EXPECT_EQ(c.state(0), WorkerState::Lost);
  EXPECT_EQ(c.inflight(0), 0);
  EXPECT_FALSE(c.accepting(0));
  EXPECT_EQ(c.accepting_size(), 1);
  EXPECT_DOUBLE_EQ(c.mean_queue_depth(), 0.0);
  EXPECT_EQ(c.fail_worker(0), 0);  // idempotent on an already-lost worker
  c.drain_worker(0);               // terminal: drain and remove are no-ops
  c.remove_worker(0);
  EXPECT_EQ(c.state(0), WorkerState::Lost);
  EXPECT_DEATH(c.note_assigned(0), "non-accepting");
}

TEST(Scheduler, WorkerLossRedispatchesOutstandingSegmentsExactlyOnce) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(3);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 3 + 4));
  auto pol = make_policy(PolicyKind::RoundRobin);
  Scheduler s(c, *pol);
  s.fail_after(1, 2);  // lose worker 2 right after the first completion
  auto out = s.run(tid, split_top_frames(3));
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(22));

  // Round-robin put segment 2 on worker 2; its assignment died with the
  // worker and was re-dispatched to a survivor.
  EXPECT_EQ(c.state(2), WorkerState::Lost);
  EXPECT_EQ(out.redispatched, 1);
  ASSERT_EQ(out.placements.size(), 3u);
  for (const auto& pl : out.placements) EXPECT_NE(pl.worker, 2);
  EXPECT_EQ(out.placements[2].attempts, 2);
  EXPECT_EQ(out.placements[0].attempts, 1);
  EXPECT_TRUE(s.exactly_once());
  EXPECT_EQ(s.workers_lost(), 1);
  EXPECT_EQ(s.completions(), 3);

  int lost = 0, failed = 0, completed = 0;
  for (const Event& e : s.log()) {
    if (e.kind == EventKind::WorkerLost) ++lost;
    if (e.kind == EventKind::SegmentFailed) ++failed;
    if (e.kind == EventKind::SegmentCompleted) ++completed;
  }
  EXPECT_EQ(lost, 1);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(completed, 3);
}

TEST(Scheduler, RedispatchIsDeterministic) {
  // Same seedless program + same failure schedule + same autoscaler must
  // reproduce identical virtual-time tables and identical event logs.
  using PlacementRow = std::tuple<int, int, int64_t, int64_t, int64_t>;
  using EventRow = std::tuple<int, int64_t, int, int, int, int>;
  auto run_once = [](std::vector<PlacementRow>& rows, std::vector<EventRow>& events) {
    auto p = prepped_fib();
    uint16_t fib = p.find_method("Main.fib");
    Cluster c(p);
    c.add_uniform_workers(2);
    auto pol = make_policy(PolicyKind::Learned);
    Scheduler s(c, *pol);
    s.fail_after(2);  // deepest-queue target, mid round 1: forces a re-dispatch
    s.set_autoscaler(std::make_unique<Autoscaler>(
        Autoscaler::Config{},
        std::vector<WorkerSpec>{{"standby1", {}, sim::Link::gigabit()}}));
    int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(26)});
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4 + 4));
      auto out = s.run(tid, split_top_frames(4));
      c.home().ti().set_debug_enabled(false);
      for (const auto& pl : out.placements)
        rows.emplace_back(pl.worker, pl.attempts, pl.restored_at.ns, pl.executed_at.ns,
                          pl.completed_at.ns);
    }
    c.home().ti().set_debug_enabled(false);
    ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(26));
    EXPECT_TRUE(s.exactly_once());
    EXPECT_EQ(s.workers_lost(), 1);
    EXPECT_GE(s.redispatches(), 1);
    for (const Event& e : s.log())
      events.emplace_back(static_cast<int>(e.kind), e.at.ns, e.seq, e.round, e.segment,
                          e.worker);
  };
  std::vector<PlacementRow> rows_a, rows_b;
  std::vector<EventRow> events_a, events_b;
  run_once(rows_a, events_a);
  run_once(rows_b, events_b);
  ASSERT_FALSE(rows_a.empty());
  ASSERT_FALSE(events_a.empty());
  EXPECT_EQ(rows_a, rows_b);
  EXPECT_EQ(events_a, events_b);
}

/// mk(n): returns a fresh Node whose val is 1 + sum(1..n) — each level
/// reads prev.val from the callee's returned object, so a split chain
/// must move a *ref* result between segments.
bc::Program node_chain_program() {
  ProgramBuilder pb;
  auto& nd = pb.cls("Node");
  nd.field("val", Ty::I64);
  auto& m = pb.cls("M").method("mk", {{"n", Ty::I64}}, Ty::Ref);
  uint16_t prev = m.local("prev", Ty::Ref);
  uint16_t cur = m.local("cur", Ty::Ref);
  bc::Label rec = m.label();
  m.stmt().iload("n").iconst(1).if_icmpge(rec);
  m.stmt().new_("Node").astore(cur);
  m.stmt().aload(cur).iconst(1).putfield("Node.val");
  m.stmt().aload(cur).aret();
  m.bind(rec);
  m.stmt().iload("n").iconst(1).isub().invoke("M.mk").astore(prev);
  m.stmt().new_("Node").astore(cur);
  m.stmt().aload(cur).aload(prev).getfield("Node.val").iload("n").iadd().putfield("Node.val");
  m.stmt().aload(cur).aret();
  return pb.build();
}

TEST(Scheduler, CrossWorkerRefChainsThroughHomeForwarding) {
  auto p = node_chain_program();
  prep::preprocess_program(p);
  uint16_t mk = p.find_method("M.mk");
  Cluster c(p);
  c.add_uniform_workers(2);
  int tid = c.home().vm().spawn(mk, std::vector<Value>{Value::of_i64(6)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, mk, 4));
  auto pol = make_policy(PolicyKind::RoundRobin);
  Scheduler s(c, *pol);
  auto out = s.run(tid, split_top_frames(2));
  c.home().ti().set_debug_enabled(false);
  // Round-robin put the two chained segments on different workers: the
  // upper segment's Node went home with its completion write-back and its
  // handle was forwarded; the lower worker faulted the body in lazily.
  ASSERT_EQ(out.placements.size(), 2u);
  EXPECT_NE(out.placements[0].worker, out.placements[1].worker);
  EXPECT_EQ(out.ref_forwards, 1);
  ASSERT_EQ(s.ref_forwards().size(), 1u);
  EXPECT_EQ(s.ref_forwards()[0].src_worker, out.placements[0].worker);
  EXPECT_EQ(s.ref_forwards()[0].dst_worker, out.placements[1].worker);
  EXPECT_GE(out.faults, 1);

  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  Value r = c.home().vm().thread(tid).result;
  ASSERT_EQ(r.tag, Ty::Ref);
  uint16_t val_slot = p.field(p.find_field("Node.val")).slot;
  EXPECT_EQ(c.home().vm().heap().obj(r.r).fields[val_slot].as_i64(), 1 + 6 * 7 / 2);
}

TEST(Scheduler, AutoscalerJoinsOnHighWaterAndDrainsIdleJoinerImmediately) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(2);
  auto pol = make_policy(PolicyKind::RoundRobin);
  Scheduler s(c, *pol);
  s.set_autoscaler(std::make_unique<Autoscaler>(
      Autoscaler::Config{},
      std::vector<WorkerSpec>{{"standby1", {}, sim::Link::gigabit()}}));
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(26)});

  // Round 1: four segments over two workers — the placement-phase tick
  // sees mean depth 2.0 > high water and promotes the standby worker.
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4 + 4));
  s.run(tid, split_top_frames(4));
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.size(), 3);
  int joiner = 2;
  EXPECT_EQ(c.state(joiner), WorkerState::Active);
  EXPECT_EQ(s.autoscaler()->joins(), 1);

  // Round 2: the joiner is a full member and receives work.
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4 + 4));
  auto r2 = s.run(tid, split_top_frames(4));
  c.home().ti().set_debug_enabled(false);
  bool joiner_used = false;
  for (const auto& pl : r2.placements) joiner_used = joiner_used || pl.worker == joiner;
  EXPECT_TRUE(joiner_used);

  // Round 3: one segment over three workers — mean depth 0.33 < low
  // water, so the idle joiner is drained and retires in the same tick
  // (regression guard: no one-round retirement lag).
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 1 + 4));
  auto r3 = s.run(tid, split_top_frames(1));
  c.home().ti().set_debug_enabled(false);
  EXPECT_EQ(r3.placements[0].worker, 1);  // round-robin cursor, joiner idle
  EXPECT_EQ(c.state(joiner), WorkerState::Retired);
  EXPECT_EQ(s.autoscaler()->drains(), 1);
  bool joined = false, draining = false;
  for (const Event& e : s.log()) {
    joined = joined || (e.kind == EventKind::WorkerJoined && e.worker == joiner);
    draining = draining || (e.kind == EventKind::WorkerDraining && e.worker == joiner);
  }
  EXPECT_TRUE(joined);
  EXPECT_TRUE(draining);

  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(26));
}

TEST(Policy, ObserveReceivesSchedulerEvents) {
  struct Probe final : PlacementPolicy {
    std::vector<EventKind> seen;
    const char* name() const override { return "probe"; }
    int choose(const Cluster& c, const PlacementRequest&) override {
      for (int w = 0; w < c.size(); ++w)
        if (c.accepting(w)) return w;
      return -1;
    }
    using PlacementPolicy::observe;
    void observe(const Cluster&, const Event& e) override { seen.push_back(e.kind); }
  };
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(2);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 3 + 4));
  Probe probe;
  Scheduler s(c, probe);
  s.fail_after(1, 0);  // the probe stacks everything on worker 0; lose it
  auto out = s.run(tid, split_top_frames(3));
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(out.redispatched, 2);
  auto count = [&](EventKind k) {
    int n = 0;
    for (EventKind seen : probe.seen)
      if (seen == k) ++n;
    return n;
  };
  EXPECT_EQ(count(EventKind::SegmentDispatched), 5);  // 3 initial + 2 re-dispatches
  EXPECT_EQ(count(EventKind::SegmentCompleted), 3);
  EXPECT_EQ(count(EventKind::SegmentFailed), 2);
  EXPECT_EQ(count(EventKind::WorkerLost), 1);
}

/// Home sharding must never change what the scheduler does: the ref-chain
/// workload (cross-worker handle forwarding + lazy body faults) replayed
/// at 1, 2, and 4 home shards yields bit-identical placements, forwards,
/// and final heap state.
TEST(Scheduler, CrossShardRefChainMatchesUnshardedRun) {
  struct Obs {
    std::vector<RefForward> forwards;
    std::vector<int64_t> completed_ns;
    int faults = 0;
    int64_t val = 0;
    bool operator==(const Obs& o) const {
      return forwards.size() == o.forwards.size() && completed_ns == o.completed_ns &&
             faults == o.faults && val == o.val;
    }
  };
  auto run_at = [](int shards) {
    auto p = node_chain_program();
    prep::preprocess_program(p);
    uint16_t mk = p.find_method("M.mk");
    Cluster c(p);
    c.add_uniform_workers(2);
    c.set_home_shards(shards);
    int tid = c.home().vm().spawn(mk, std::vector<Value>{Value::of_i64(6)});
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, mk, 4));
    auto pol = make_policy(PolicyKind::RoundRobin);
    Scheduler s(c, *pol);
    auto out = s.run(tid, split_top_frames(2));
    c.home().ti().set_debug_enabled(false);
    Obs obs;
    obs.forwards = s.ref_forwards();
    for (const auto& pl : out.placements) obs.completed_ns.push_back(pl.completed_at.ns);
    obs.faults = out.faults;
    EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    Value r = c.home().vm().thread(tid).result;
    EXPECT_EQ(r.tag, Ty::Ref);
    uint16_t val_slot = p.field(p.find_field("Node.val")).slot;
    obs.val = c.home().vm().heap().obj(r.r).fields[val_slot].as_i64();
    return obs;
  };
  Obs ref = run_at(1);
  EXPECT_EQ(ref.forwards.size(), 1u);
  EXPECT_EQ(ref.val, 1 + 6 * 7 / 2);
  for (int shards : {2, 4}) {
    Obs sharded = run_at(shards);
    EXPECT_EQ(sharded, ref) << "home shards = " << shards;
    ASSERT_EQ(sharded.forwards.size(), ref.forwards.size());
    EXPECT_EQ(sharded.forwards[0].home_ref, ref.forwards[0].home_ref);
    EXPECT_EQ(sharded.forwards[0].dst_worker, ref.forwards[0].dst_worker);
  }
}

/// The partitioned forward table reassembles its append-order view from
/// per-record sequence numbers, so `ordered()` is identical at any shard
/// count even when records land in different partitions.
TEST(RefForwardTable, OrderedViewIsShardCountInvariant) {
  auto fill = [](RefForwardTable& t) {
    for (int i = 0; i < 12; ++i)
      t.record(RefForward{i / 3, i % 3, i % 2, (i + 1) % 2,
                          static_cast<bc::Ref>(100 + i)});
  };
  mig::HomeShardMap one(1), four(4);
  RefForwardTable a, b;
  a.configure(&one);
  b.configure(&four);
  fill(a);
  fill(b);
  ASSERT_EQ(a.total(), 12u);
  ASSERT_EQ(b.total(), 12u);
  EXPECT_EQ(a.partitions(), 1);
  EXPECT_EQ(b.partitions(), 4);
  auto va = a.ordered();
  auto vb = b.ordered();
  ASSERT_EQ(va.size(), vb.size());
  for (size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].home_ref, vb[i].home_ref);
    EXPECT_EQ(va[i].round, vb[i].round);
    EXPECT_EQ(va[i].segment, vb[i].segment);
  }
  // The sharded table genuinely spread the records: no partition holds
  // them all (12 keyed records over 4 stripes).
  int nonempty = 0;
  size_t spread_total = 0;
  for (int s = 0; s < b.partitions(); ++s) {
    if (b.partition_size(s) > 0) ++nonempty;
    spread_total += b.partition_size(s);
  }
  EXPECT_GT(nonempty, 1);
  EXPECT_EQ(spread_total, 12u);
}

}  // namespace
}  // namespace sod::cluster
