// Cluster placement: policies pick the expected worker under skewed loads,
// slow links, and class locality; concurrent multi-segment dispatch
// preserves app results while hiding freeze time (the Fig. 1(c) property).
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod::cluster {
namespace {

using bc::Value;

bc::Program prepped_fib() {
  auto p = sod::testing::fib_program();
  prep::preprocess_program(p);
  return p;
}

TEST(Policy, ParseAcceptsDashedAndUnderscoredSpellings) {
  EXPECT_EQ(parse_policy("round-robin"), PolicyKind::RoundRobin);
  EXPECT_EQ(parse_policy("round_robin"), PolicyKind::RoundRobin);
  EXPECT_EQ(parse_policy("least-loaded"), PolicyKind::LeastLoaded);
  EXPECT_EQ(parse_policy("least_loaded"), PolicyKind::LeastLoaded);
  EXPECT_EQ(parse_policy("locality-aware"), PolicyKind::LocalityAware);
  EXPECT_EQ(parse_policy("locality"), PolicyKind::LocalityAware);
  EXPECT_FALSE(parse_policy("fastest").has_value());
  EXPECT_FALSE(parse_policy("").has_value());
}

TEST(Policy, RoundRobinCycles) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  auto pol = make_policy(PolicyKind::RoundRobin);
  PlacementRequest req;
  for (int i = 0; i < 6; ++i) EXPECT_EQ(pol->choose(c, req), i % 3);
}

TEST(Policy, LeastLoadedPicksTheIdleWorker) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  c.worker(0).node().clock.advance(VDur::millis(10));
  c.worker(2).node().clock.advance(VDur::millis(25));
  auto pol = make_policy(PolicyKind::LeastLoaded);
  PlacementRequest req;
  req.state_bytes = 256;
  EXPECT_EQ(pol->choose(c, req), 1);
  // Load worker 1 past worker 0: the choice follows the load skew.
  c.worker(1).node().clock.advance(VDur::millis(30));
  EXPECT_EQ(pol->choose(c, req), 0);
}

TEST(Policy, LeastLoadedAvoidsASlowLink) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_worker({"fast", {}, sim::Link::gigabit()});
  c.add_worker({"wifi", {}, sim::Link::wifi_kbps(500)});
  auto pol = make_policy(PolicyKind::LeastLoaded);
  PlacementRequest req;
  req.state_bytes = 64 << 10;  // ~1 s over 500 kbps wifi
  EXPECT_EQ(pol->choose(c, req), 0);
  // Even a busy fast worker beats shipping the state over wifi.
  c.worker(0).node().clock.advance(VDur::millis(50));
  EXPECT_EQ(pol->choose(c, req), 0);
}

TEST(Policy, LocalityAwarePrefersTheClassHolder) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  uint16_t cls = p.method(p.find_method("Main.fib")).owner;
  c.worker(2).mark_class_shipped(cls);
  PlacementRequest req;
  req.cls = cls;
  req.state_bytes = 512;
  req.class_image_bytes = p.class_image(cls).size();
  ASSERT_GT(req.class_image_bytes, 0u);
  auto least = make_policy(PolicyKind::LeastLoaded);
  auto local = make_policy(PolicyKind::LocalityAware);
  EXPECT_EQ(least->choose(c, req), 0);  // locality-blind: all equal, lowest id
  EXPECT_EQ(local->choose(c, req), 2);  // the holder skips the image transfer
}

TEST(Policy, LocalityAwareFallsBackToLoadWhenNobodyHoldsTheClass) {
  auto p = prepped_fib();
  Cluster c(p);
  c.add_uniform_workers(3);
  c.worker(0).node().clock.advance(VDur::millis(10));
  c.worker(2).node().clock.advance(VDur::millis(10));
  PlacementRequest req;
  req.cls = p.method(p.find_method("Main.fib")).owner;
  req.state_bytes = 512;
  req.class_image_bytes = p.class_image(req.cls).size();
  auto pol = make_policy(PolicyKind::LocalityAware);
  EXPECT_EQ(pol->choose(c, req), 1);
}

TEST(Dispatch, SplitTopFramesIsContiguousFromTheTop) {
  auto specs = split_top_frames(3);
  ASSERT_EQ(specs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(specs[static_cast<size_t>(i)].depth_lo, i);
    EXPECT_EQ(specs[static_cast<size_t>(i)].depth_hi, i + 1);
  }
}

TEST(Dispatch, ConcurrentSplitPreservesTheResultAndHidesFreezeTime) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(3);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
  auto pol = make_policy(PolicyKind::RoundRobin);
  auto out = dispatch_segments(c, tid, split_top_frames(3), *pol);
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  ASSERT_EQ(rr.reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(22));
  ASSERT_EQ(out.placements.size(), 3u);
  // Every lower segment finished restoring inside the window in which the
  // segment above it was still executing: its freeze time was hidden.
  EXPECT_TRUE(out.overlapped);
  for (size_t i = 1; i < out.placements.size(); ++i)
    EXPECT_LT(out.placements[i].restored_at, out.placements[i - 1].completed_at);
}

TEST(Dispatch, ConcurrentShippingBeatsTheSequentialBaseline) {
  auto total_with = [](bool concurrent) {
    auto p = prepped_fib();
    uint16_t fib = p.find_method("Main.fib");
    Cluster c(p);
    c.add_uniform_workers(3);
    int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(22)});
    EXPECT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
    auto pol = make_policy(PolicyKind::RoundRobin);
    DispatchOptions o;
    o.concurrent = concurrent;
    auto out = dispatch_segments(c, tid, split_top_frames(3), *pol, o);
    if (!concurrent) {
      EXPECT_FALSE(out.overlapped);
    }
    c.home().ti().set_debug_enabled(false);
    EXPECT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
    EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(22));
    return c.home().node().clock.now();
  };
  VDur conc = total_with(true);
  VDur seq = total_with(false);
  // Fig. 1(c): the concurrent total is strictly below the sum-of-sequential
  // offload total because transfer + restore of lower segments is hidden.
  EXPECT_LT(conc.ns, seq.ns);
}

TEST(Dispatch, MultiFrameSegmentsChainAcrossWorkers) {
  auto p = prepped_fib();
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(2);
  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(20)});
  ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4));
  std::vector<mig::SegmentSpec> specs{{0, 1}, {1, 3}};
  auto pol = make_policy(PolicyKind::RoundRobin);
  auto out = dispatch_segments(c, tid, specs, *pol);
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(20));
  ASSERT_EQ(out.placements.size(), 2u);
  EXPECT_EQ(out.placements[0].worker, 0);
  EXPECT_EQ(out.placements[1].worker, 1);
}

}  // namespace
}  // namespace sod::cluster
