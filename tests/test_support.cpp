// Unit tests for the support layer: byte buffers, rng, vclock, stats.
#include <gtest/gtest.h>

#include "support/bytes.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/vclock.h"

namespace sod {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.25);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u8(7);
  w.patch_u32(0, 0xCAFEBABE);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.u8(), 7);
}

TEST(Bytes, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
}

TEST(Bytes, SeekAndRemaining) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.seek(4);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_TRUE(r.done());
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(VClock, AdvanceAndWait) {
  VClock c;
  EXPECT_EQ(c.now().ns, 0);
  c.advance(VDur::millis(2));
  EXPECT_DOUBLE_EQ(c.now().ms(), 2.0);
  c.wait_until(VDur::millis(1));  // already past; no-op
  EXPECT_DOUBLE_EQ(c.now().ms(), 2.0);
  c.wait_until(VDur::millis(5));
  EXPECT_DOUBLE_EQ(c.now().ms(), 5.0);
}

TEST(VDur, UnitsAndArithmetic) {
  EXPECT_EQ(VDur::seconds(1.5).ns, 1'500'000'000);
  EXPECT_EQ(VDur::micros(3).ns, 3000);
  EXPECT_DOUBLE_EQ((VDur::millis(2) + VDur::millis(3)).ms(), 5.0);
  EXPECT_LT(VDur::millis(1), VDur::millis(2));
}

TEST(Stats, Moments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "bbbb"});
  t.row({"xx", "y"});
  std::string s = t.str();
  EXPECT_NE(s.find("a   bbbb"), std::string::npos);
  EXPECT_NE(s.find("xx  y"), std::string::npos);
}

}  // namespace
}  // namespace sod
