// Exception-driven offload (paper Section II.B) and prefetch policies
// (paper Section VI): the optional / future-work features.
#include <gtest/gtest.h>

#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod {
namespace {

using namespace sod::testing;
using mig::SodNode;
using svm::StopReason;

/// big_sum(n): allocate an n-element array, fill with i, return the sum —
/// OOMs on a device whose heap can't hold the array.
bc::Program bigalloc_program() {
  ProgramBuilder pb;
  auto& f = pb.cls("Big").method("sum", {{"n", Ty::I64}}, Ty::I64);
  uint16_t a = f.local("a", Ty::Ref);
  uint16_t i = f.local("i", Ty::I64);
  uint16_t s = f.local("s", Ty::I64);
  Label h1 = f.label(), d1 = f.label(), h2 = f.label(), d2 = f.label();
  f.stmt().iload("n").newarray(Ty::I64).astore(a);
  f.stmt().iconst(0).istore(i);
  f.bind(h1).stmt().iload(i).iload("n").if_icmpge(d1);
  f.stmt().aload(a).iload(i).iload(i).iastore();
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h1);
  f.bind(d1).stmt().iconst(0).istore(s);
  f.stmt().iconst(0).istore(i);
  f.bind(h2).stmt().iload(i).iload("n").if_icmpge(d2);
  f.stmt().iload(s).aload(a).iload(i).iaload().iadd().istore(s);
  f.stmt().iload(i).iconst(1).iadd().istore(i);
  f.stmt().go(h2);
  f.bind(d2).stmt().iload(s).iret();
  return pb.build();
}

TEST(Elastic, OomOffloadsToCloudAndSucceeds) {
  bc::Program p = bigalloc_program();
  prep::PrepOptions opts;
  opts.offload_handlers = true;
  prep::PrepReport rep = prep::preprocess_program(p, opts);
  EXPECT_GE(rep.offload_handlers, 1);

  SodNode::Config dev_cfg;
  dev_cfg.heap_limit_bytes = 64 << 10;  // 64 KB device heap
  SodNode device("device", p, dev_cfg);
  SodNode cloud("cloud", p, {});  // unlimited

  mig::OffloadGuard guard;
  guard.install(device);
  mig::ObjectManager om;
  om.install(device);  // keeps objman.* bound for fault handlers

  // n = 64k elements = 512 KB array: cannot fit on the device.
  const int64_t n = 64 << 10;
  int tid = device.vm().spawn(p.find_method("Big.sum"), std::vector<Value>{Value::of_i64(n)});
  auto out = mig::run_elastic(device, tid, cloud, sim::Link::gigabit(), guard);
  EXPECT_TRUE(out.offloaded);
  EXPECT_EQ(out.result.as_i64(), n * (n - 1) / 2);
}

TEST(Elastic, SmallAllocationStaysOnDevice) {
  bc::Program p = bigalloc_program();
  prep::PrepOptions opts;
  opts.offload_handlers = true;
  prep::preprocess_program(p, opts);

  SodNode::Config dev_cfg;
  dev_cfg.heap_limit_bytes = 64 << 10;
  SodNode device("device", p, dev_cfg);
  SodNode cloud("cloud", p, {});
  mig::OffloadGuard guard;
  guard.install(device);
  mig::ObjectManager om;
  om.install(device);

  int tid = device.vm().spawn(p.find_method("Big.sum"), std::vector<Value>{Value::of_i64(100)});
  auto out = mig::run_elastic(device, tid, cloud, sim::Link::gigabit(), guard);
  EXPECT_FALSE(out.offloaded);  // fits locally: no migration
  EXPECT_EQ(out.result.as_i64(), 100 * 99 / 2);
}

TEST(Elastic, UnguardedOomStillCrashes) {
  // Without offload handlers, the OOM is a plain crash (no silent magic).
  bc::Program p = bigalloc_program();
  prep::preprocess_program(p);  // no offload handlers
  SodNode::Config dev_cfg;
  dev_cfg.heap_limit_bytes = 64 << 10;
  SodNode device("device", p, dev_cfg);
  mig::ObjectManager om;
  om.install(device);
  int tid = device.vm().spawn(p.find_method("Big.sum"),
                              std::vector<Value>{Value::of_i64(64 << 10)});
  auto rr = device.run_guest(tid);
  EXPECT_EQ(rr.reason, StopReason::Crashed);
  EXPECT_EQ(device.vm().class_of(device.vm().thread(tid).uncaught),
            bc::builtin::kOutOfMemory);
}

// ---------------------------------------------------------------- prefetch

bc::Program list_walk_program() {
  ProgramBuilder pb;
  auto& nd = pb.cls("Node");
  nd.field("val", Ty::I64);
  nd.field("next", Ty::Ref);
  auto& m = pb.cls("M");
  auto& bld = m.method("build", {{"n", Ty::I64}}, Ty::Ref);
  uint16_t head = bld.local("head", Ty::Ref);
  uint16_t node = bld.local("node", Ty::Ref);
  uint16_t i = bld.local("i", Ty::I64);
  Label loop = bld.label(), done = bld.label();
  bld.stmt().aconst_null().astore(head);
  bld.stmt().iload("n").istore(i);
  bld.bind(loop).stmt().iload(i).iconst(1).if_icmplt(done);
  bld.stmt().new_("Node").astore(node);
  bld.stmt().aload(node).iload(i).putfield("Node.val");
  bld.stmt().aload(node).aload(head).putfield("Node.next");
  bld.stmt().aload(node).astore(head);
  bld.stmt().iload(i).iconst(1).isub().istore(i);
  bld.stmt().go(loop);
  bld.bind(done).stmt().aload(head).aret();

  auto& sum = m.method("sum", {{"head", Ty::Ref}}, Ty::I64);
  uint16_t cur = sum.local("cur", Ty::Ref);
  uint16_t s = sum.local("s", Ty::I64);
  Label sl = sum.label(), sd = sum.label();
  sum.stmt().aload("head").astore(cur);
  sum.stmt().iconst(0).istore(s);
  sum.bind(sl).stmt().aload(cur).ifnull(sd);
  sum.stmt().iload(s).aload(cur).getfield("Node.val").iadd().istore(s);
  sum.stmt().aload(cur).getfield("Node.next").astore(cur);
  sum.stmt().go(sl);
  sum.bind(sd).stmt().iload(s).iret();
  return pb.build();
}

class PrefetchSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefetchSweep, ReducesRoundTripsPreservesResult) {
  int depth = GetParam();
  bc::Program p = list_walk_program();
  prep::preprocess_program(p);
  const int kN = 64;

  SodNode home("home", p, {});
  SodNode dest("dest", p, {});
  Value head = home.call_guest("M.build", std::vector<Value>{Value::of_i64(kN)});
  int tid = home.vm().spawn(p.find_method("M.sum"), std::vector<Value>{head});
  ASSERT_TRUE(mig::pause_at_depth(home, tid, p.find_method("M.sum"), 1));

  // offload_and_return builds its own Segment; set the policy through a
  // manual protocol instead.
  auto cs = mig::capture_segment(home, tid, mig::SegmentSpec{0, 1});
  home.ti().set_debug_enabled(false);
  mig::Segment seg(dest);
  seg.objman().set_prefetch_depth(depth);
  seg.objman().bind_home(&home, tid, 1, sim::Link::gigabit());
  seg.restore(cs);
  Value result = seg.run_to_completion();
  EXPECT_EQ(result.as_i64(), kN * (kN + 1) / 2);

  const auto& st = seg.objman().stats();
  if (depth == 0) {
    EXPECT_EQ(st.faults, kN);
    EXPECT_EQ(st.prefetched, 0);
  } else {
    // Each round trip brings ~depth+1 nodes: round trips shrink.
    EXPECT_LE(st.faults, kN / (depth + 1) + 2) << "depth " << depth;
    EXPECT_GT(st.prefetched, 0);
    EXPECT_EQ(st.faults + st.prefetched, kN);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PrefetchSweep, ::testing::Values(0, 1, 2, 4, 8));

TEST(Prefetch, BindHomeResetsNothingItShouldNot) {
  bc::Program p = list_walk_program();
  prep::preprocess_program(p);
  SodNode dest("dest", p, {});
  mig::Segment seg(dest);
  seg.objman().set_prefetch_depth(3);
  EXPECT_EQ(seg.objman().prefetch_depth(), 3);
}

}  // namespace
}  // namespace sod
