// Wall-clock engine: the ThreadPool runs lane jobs FIFO and cross-lane
// jobs genuinely in parallel; the WallClockEngine reproduces the
// virtual-time Scheduler bit-for-bit where contracted (application
// results, write-back payload bytes, the completion set) on every Table I
// app at 1 and 4 pool threads; and a stressed engine — membership churn
// between rounds plus a mid-round worker loss — still executes every
// segment exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/apps.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/scheduler.h"
#include "cluster/threadpool.h"
#include "cluster/wallclock.h"
#include "prep/prep.h"
#include "sod/migrate.h"
#include "testlib.h"

namespace sod::cluster {
namespace {

using bc::Value;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, LaneJobsRunInSubmissionOrder) {
  ThreadPool pool(4);
  pool.ensure_lane(1);
  std::vector<int> seen;
  for (int i = 0; i < 200; ++i)
    pool.submit(0, [i, &seen] { seen.push_back(i); });  // same lane: no racing writers
  pool.wait_idle();
  std::vector<int> want(200);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(seen, want);
}

TEST(ThreadPool, LanesOverlapAcrossThreads) {
  ThreadPool pool(2);
  pool.ensure_lane(2);
  auto t0 = steady_clock::now();
  for (size_t lane = 0; lane < 2; ++lane)
    pool.submit(lane, [] { std::this_thread::sleep_for(milliseconds(100)); });
  pool.wait_idle();
  auto ms = std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0).count();
  // Two 100 ms sleeps on two threads overlap; serial execution would be
  // >= 200 ms.
  EXPECT_LT(ms, 190);
}

TEST(ThreadPool, SingleThreadStillDrainsEveryLane) {
  ThreadPool pool(1);
  pool.ensure_lane(3);
  std::atomic<int> done{0};
  for (size_t lane = 0; lane < 3; ++lane)
    for (int j = 0; j < 5; ++j) pool.submit(lane, [&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 15);
}

TEST(ThreadPool, WaitIdleCoversJobsSubmittedByJobs) {
  ThreadPool pool(2);
  pool.ensure_lane(2);
  std::atomic<int> done{0};
  pool.submit(0, [&] {
    ++done;
    pool.submit(1, [&] { ++done; });
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

// ------------------------------------------------------------ engine parity

struct AppOutcome {
  int64_t result = 0;
  size_t writeback_bytes = 0;
  // (round, segment, virtual completion ns): fault-free wall runs must
  // reproduce the Scheduler's virtual completion instants bit for bit.
  std::multiset<std::tuple<int, int, int64_t>> completions;
  bool exactly_once = false;
  bool done = false;
  // Home stripe telemetry (wall engine only): one entry per home shard,
  // plus the cluster-wide acquisition count, which is deterministic for a
  // fault-free run.
  std::vector<mig::ShardContention> shard_stats;
  uint64_t lock_acq = 0;
};

/// The run_table1_app round loop from the CLI driver, on either engine:
/// threads < 0 = virtual-time Scheduler, threads >= 0 = WallClockEngine
/// (0 = one pool thread per worker).  `shards` > 0 stripes the home state.
AppOutcome run_app(const apps::AppSpec& spec, int threads, int shards = 0) {
  bc::Program p = spec.build();
  prep::preprocess_program(p);
  Cluster c(p);
  c.add_uniform_workers(3);
  if (shards > 0) c.set_home_shards(shards);
  auto pol = make_policy(PolicyKind::LeastLoaded);

  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<WallClockEngine> engine;
  if (threads < 0) {
    sched = std::make_unique<Scheduler>(c, *pol);
  } else {
    WallClockOptions wopt;
    wopt.threads = threads;
    engine = std::make_unique<WallClockEngine>(c, *pol, wopt);
  }

  uint16_t trigger = p.find_method(spec.trigger_method);
  int depth = std::min(spec.paper_depth, 4);
  int tid = c.home().vm().spawn(p.find_method(spec.entry), spec.bench_args);

  AppOutcome o;
  int remaining = c.size();
  while (remaining > 0 && mig::pause_at_depth(c.home(), tid, trigger, depth)) {
    int k = std::min(remaining, depth - 1);
    if (remaining > k) k = std::max(1, depth - 2);
    auto specs = split_top_frames(k);
    auto out = engine ? engine->run(tid, specs) : sched->run(tid, specs);
    c.home().ti().set_debug_enabled(false);
    o.writeback_bytes += out.writeback_bytes;
    remaining -= k;
  }
  c.home().ti().set_debug_enabled(false);
  auto rr = c.home().run_guest(tid);
  o.done = rr.reason == svm::StopReason::Done;
  if (o.done) o.result = c.home().vm().thread(tid).result.as_i64();
  const auto& log = engine ? engine->log() : sched->log();
  for (const Event& e : log)
    if (e.kind == EventKind::SegmentCompleted) o.completions.emplace(e.round, e.segment, e.at.ns);
  o.exactly_once = engine ? engine->exactly_once() : sched->exactly_once();
  if (engine) {
    o.shard_stats = engine->shard_contention();
    o.lock_acq = engine->total_contention().acquisitions;
  }
  return o;
}

TEST(WallClock, TableOneAppsMatchTheVirtualSchedulerBitForBit) {
  for (const apps::AppSpec& spec : apps::table1_apps()) {
    SCOPED_TRACE(spec.name);
    AppOutcome ref = run_app(spec, -1);
    ASSERT_TRUE(ref.done);
    ASSERT_TRUE(ref.exactly_once);
    ASSERT_FALSE(ref.completions.empty());
    if (spec.bench_expected != INT64_MIN) {
      EXPECT_EQ(ref.result, spec.bench_expected);
    }
    for (int threads : {1, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      AppOutcome got = run_app(spec, threads);
      ASSERT_TRUE(got.done);
      EXPECT_TRUE(got.exactly_once);
      EXPECT_EQ(got.result, ref.result);
      EXPECT_EQ(got.writeback_bytes, ref.writeback_bytes);
      EXPECT_EQ(got.completions, ref.completions);
    }
  }
}

// ------------------------------------------------------------ home sharding

TEST(WallClock, HomeShardedRunsMatchTheVirtualSchedulerBitForBit) {
  // Striping the home state may only change wall-clock interleaving: at
  // every shard count the engine must reproduce the virtual scheduler's
  // results, write-back bytes, and virtual completion instants, and the
  // stripe-acquisition total is a property of the replay, not the shard
  // count or the interleaving.
  const apps::AppSpec spec = apps::fib_app();
  AppOutcome ref = run_app(spec, -1);
  ASSERT_TRUE(ref.done);
  ASSERT_TRUE(ref.exactly_once);
  uint64_t acq = 0;
  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    AppOutcome got = run_app(spec, /*threads=*/4, shards);
    ASSERT_TRUE(got.done);
    EXPECT_TRUE(got.exactly_once);
    EXPECT_EQ(got.result, ref.result);
    EXPECT_EQ(got.writeback_bytes, ref.writeback_bytes);
    EXPECT_EQ(got.completions, ref.completions);
    ASSERT_EQ(got.shard_stats.size(), static_cast<size_t>(shards));
    EXPECT_GT(got.lock_acq, 0u);
    if (shards == 1) {
      acq = got.lock_acq;
    } else {
      EXPECT_EQ(got.lock_acq, acq);
    }
  }
}

TEST(WallClock, ShardContentionCountersSumAcrossStripes) {
  const apps::AppSpec spec = apps::fib_app();
  AppOutcome got = run_app(spec, /*threads=*/4, /*shards=*/4);
  ASSERT_TRUE(got.done);
  ASSERT_EQ(got.shard_stats.size(), 4u);
  uint64_t sum = 0;
  int used = 0;
  for (const mig::ShardContention& s : got.shard_stats) {
    sum += s.acquisitions;
    if (s.acquisitions > 0) ++used;
    EXPECT_GE(s.acquisitions, s.contended);
    if (s.contended == 0) {
      EXPECT_EQ(s.wait_ns, 0u);
    }
    EXPECT_GE(s.wait_ns, s.max_wait_ns);
  }
  EXPECT_EQ(sum, got.lock_acq);
  // The stable hash spreads the three key domains over the stripes: a
  // 4-shard fib run must exercise more than one of them.
  EXPECT_GT(used, 1);
}

// ------------------------------------------------------------------- stress

TEST(WallClock, ChurnAndMidRoundLossStillExecuteExactlyOnce) {
  auto p = sod::testing::fib_program();
  prep::preprocess_program(p);
  uint16_t fib = p.find_method("Main.fib");
  Cluster c(p);
  c.add_uniform_workers(3);
  auto pol = make_policy(PolicyKind::LeastLoaded);
  WallClockOptions wopt;
  wopt.threads = 4;
  WallClockEngine eng(c, *pol, wopt);
  eng.fail_after(2);  // deepest-queue worker dies mid round 0

  int tid = c.home().vm().spawn(fib, std::vector<Value>{Value::of_i64(26)});
  int joiner = -1;
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(mig::pause_at_depth(c.home(), tid, fib, 4 + 4));
    auto out = eng.run(tid, split_top_frames(4));
    c.home().ti().set_debug_enabled(false);
    ASSERT_EQ(out.placements.size(), 4u);
    if (r == 0) joiner = eng.add_worker({"joiner", {}, sim::Link::gigabit()});
    if (r == 1) eng.drain_worker(joiner);
  }
  c.home().ti().set_debug_enabled(false);
  ASSERT_EQ(c.home().run_guest(tid).reason, svm::StopReason::Done);
  EXPECT_EQ(c.home().vm().thread(tid).result.as_i64(), sod::testing::fib_ref(26));

  EXPECT_TRUE(eng.exactly_once());
  EXPECT_EQ(eng.workers_lost(), 1);
  EXPECT_GE(eng.redispatches(), 1);
  EXPECT_EQ(eng.completions(), 12);
  int completed = 0, lost = 0, joined = 0, draining = 0;
  for (const Event& e : eng.log()) {
    if (e.kind == EventKind::SegmentCompleted) ++completed;
    if (e.kind == EventKind::WorkerLost) ++lost;
    if (e.kind == EventKind::WorkerJoined) ++joined;
    if (e.kind == EventKind::WorkerDraining) ++draining;
  }
  EXPECT_EQ(completed, 12);
  EXPECT_EQ(lost, 1);
  EXPECT_EQ(joined, 1);
  EXPECT_EQ(draining, 1);
}

}  // namespace
}  // namespace sod::cluster
