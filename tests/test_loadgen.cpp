// Multi-tenant load generator: trace determinism, exact percentiles,
// exactly-once under injected churn/loss, and a 1000-session smoke.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/loadgen.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using sod::Percentiles;
using sod::VDur;
using sod::cluster::ArrivalKind;
using sod::cluster::LoadGenOptions;
using sod::cluster::Trace;
using sod::cluster::TraceConfig;

// ------------------------------------------------------------ percentiles

TEST(PercentilesTest, KnownDistribution) {
  // 1..100: nearest-rank pN is exactly N.
  Percentiles p;
  for (int i = 100; i >= 1; --i) p.add(i);
  EXPECT_EQ(p.count(), 100);
  EXPECT_DOUBLE_EQ(p.p50(), 50.0);
  EXPECT_DOUBLE_EQ(p.p95(), 95.0);
  EXPECT_DOUBLE_EQ(p.p99(), 99.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 100.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(PercentilesTest, SmallSets) {
  // Nearest-rank on n=4: p50 = ceil(2)-th = 2nd smallest, p99 = 4th.
  Percentiles p;
  for (double x : {4.0, 1.0, 3.0, 2.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.p50(), 2.0);
  EXPECT_DOUBLE_EQ(p.p95(), 4.0);
  EXPECT_DOUBLE_EQ(p.p99(), 4.0);
}

TEST(PercentilesTest, SingleElement) {
  Percentiles p;
  p.add(7.25);
  EXPECT_DOUBLE_EQ(p.p50(), 7.25);
  EXPECT_DOUBLE_EQ(p.p95(), 7.25);
  EXPECT_DOUBLE_EQ(p.p99(), 7.25);
  EXPECT_DOUBLE_EQ(p.mean(), 7.25);
}

TEST(PercentilesTest, Empty) {
  Percentiles p;
  EXPECT_EQ(p.count(), 0);
  EXPECT_DOUBLE_EQ(p.p99(), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(PercentilesTest, Ties) {
  // All-equal samples: every quantile is that value.
  Percentiles p;
  for (int i = 0; i < 10; ++i) p.add(3.0);
  EXPECT_DOUBLE_EQ(p.p50(), 3.0);
  EXPECT_DOUBLE_EQ(p.p99(), 3.0);
  // Heavy tie at the median, distinct tail.
  Percentiles q;
  for (int i = 0; i < 9; ++i) q.add(1.0);
  q.add(100.0);
  EXPECT_DOUBLE_EQ(q.p50(), 1.0);
  EXPECT_DOUBLE_EQ(q.p95(), 100.0);
}

TEST(PercentilesTest, AddAfterQuery) {
  // quantile() sorts lazily; adds after a query must re-sort.
  Percentiles p;
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.p50(), 10.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.p50(), 1.0);
}

// ------------------------------------------------------ trace determinism

bool same_trace(const Trace& a, const Trace& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  if (a.injections.size() != b.injections.size()) return false;
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    const auto& x = a.sessions[i];
    const auto& y = b.sessions[i];
    if (x.id != y.id || x.tenant != y.tenant || x.app != y.app ||
        x.arrival.ns != y.arrival.ns || x.rounds != y.rounds)
      return false;
  }
  for (size_t i = 0; i < a.injections.size(); ++i) {
    const auto& x = a.injections[i];
    const auto& y = b.injections[i];
    if (x.kind != y.kind || x.at_session != y.at_session || x.surge != y.surge) return false;
  }
  return true;
}

TEST(TraceTest, SameSeedSameSchedule) {
  for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::OnOff, ArrivalKind::Soak}) {
    TraceConfig cfg;
    cfg.sessions = 200;
    cfg.tenants = 5;
    cfg.apps = 4;
    cfg.arrival = kind;
    cfg.seed = 0xfeedULL;
    cfg.churn = 0.05;
    cfg.failures = 2;
    EXPECT_TRUE(same_trace(sod::cluster::make_trace(cfg), sod::cluster::make_trace(cfg)))
        << sod::cluster::arrival_name(kind);
  }
}

TEST(TraceTest, SeedChangesSchedule) {
  TraceConfig cfg;
  cfg.sessions = 100;
  TraceConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_FALSE(same_trace(sod::cluster::make_trace(cfg), sod::cluster::make_trace(other)));
}

TEST(TraceTest, ArrivalsMonotoneAndShaped) {
  TraceConfig cfg;
  cfg.sessions = 64;
  cfg.arrival = ArrivalKind::Soak;
  Trace tr = sod::cluster::make_trace(cfg);
  ASSERT_EQ(tr.sessions.size(), 64u);
  for (size_t i = 1; i < tr.sessions.size(); ++i)
    EXPECT_GE(tr.sessions[i].arrival.ns, tr.sessions[i - 1].arrival.ns);
  // Soak is constant-rate: every gap equals the configured mean.
  for (size_t i = 1; i < tr.sessions.size(); ++i)
    EXPECT_EQ(tr.sessions[i].arrival.ns - tr.sessions[i - 1].arrival.ns, cfg.mean_gap.ns);
}

TEST(TraceTest, ParseArrivalNames) {
  EXPECT_EQ(sod::cluster::parse_arrival("poisson"), ArrivalKind::Poisson);
  EXPECT_EQ(sod::cluster::parse_arrival("onoff"), ArrivalKind::OnOff);
  EXPECT_EQ(sod::cluster::parse_arrival("on-off"), ArrivalKind::OnOff);
  EXPECT_EQ(sod::cluster::parse_arrival("soak"), ArrivalKind::Soak);
  EXPECT_FALSE(sod::cluster::parse_arrival("bursty").has_value());
  EXPECT_STREQ(sod::cluster::arrival_name(ArrivalKind::Soak), "soak");
}

TEST(TraceTest, FilterTenantKeepsIdsAndArrivals) {
  TraceConfig cfg;
  cfg.sessions = 50;
  cfg.tenants = 3;
  cfg.churn = 0.1;
  Trace tr = sod::cluster::make_trace(cfg);
  Trace alone = sod::cluster::filter_tenant(tr, 1);
  EXPECT_TRUE(alone.injections.empty());
  ASSERT_FALSE(alone.sessions.empty());
  size_t j = 0;
  for (const auto& s : tr.sessions) {
    if (s.tenant != 1) continue;
    ASSERT_LT(j, alone.sessions.size());
    EXPECT_EQ(alone.sessions[j].id, s.id);
    EXPECT_EQ(alone.sessions[j].arrival.ns, s.arrival.ns);
    EXPECT_EQ(alone.sessions[j].app, s.app);
    ++j;
  }
  EXPECT_EQ(j, alone.sessions.size());
}

// ------------------------------------------------------------ replay runs

TEST(LoadGenTest, ReplayDeterministic) {
  TraceConfig cfg;
  cfg.sessions = 24;
  cfg.tenants = 3;
  cfg.apps = 4;
  cfg.seed = 7;
  Trace tr = sod::cluster::make_trace(cfg);
  LoadGenOptions opts;
  auto a = sod::cluster::run_loadgen(tr, opts);
  auto b = sod::cluster::run_loadgen(tr, opts);
  EXPECT_TRUE(a.all_ok);
  EXPECT_TRUE(a.exactly_once);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.session_ms, b.session_ms);  // bit-identical virtual latencies
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_DOUBLE_EQ(a.completion_ms.p99(), b.completion_ms.p99());
}

TEST(LoadGenTest, HomeShardsPreserveTheReplayOnBothEngines) {
  // One failure-free multitenant trace replayed at 1, 2, and 4 home
  // shards on the virtual scheduler AND the wall-clock engine: every run
  // must reproduce the unsharded virtual replay bit for bit (results,
  // session latencies, segments, percentiles), and on the engine the
  // stripe-acquisition total must be the same at every shard count.
  TraceConfig cfg;
  cfg.sessions = 16;
  cfg.tenants = 3;
  cfg.apps = 2;
  cfg.seed = 5;
  Trace tr = sod::cluster::make_trace(cfg);
  LoadGenOptions base;
  auto ref = sod::cluster::run_loadgen(tr, base);
  ASSERT_TRUE(ref.all_ok);
  ASSERT_TRUE(ref.exactly_once);
  EXPECT_EQ(ref.home_shards, 1);
  EXPECT_EQ(ref.lock_acq, 0u);  // virtual mode: no stripes exist
  uint64_t engine_acq = 0;
  for (bool wallclock : {false, true}) {
    for (int shards : {1, 2, 4}) {
      LoadGenOptions opts;
      opts.wallclock = wallclock;
      opts.threads = wallclock ? 4 : 0;
      opts.home_shards = shards;
      auto r = sod::cluster::run_loadgen(tr, opts);
      std::string where = std::string(wallclock ? "engine" : "virtual") + "/shards=" +
                          std::to_string(shards);
      EXPECT_TRUE(r.all_ok) << where;
      EXPECT_TRUE(r.exactly_once) << where;
      EXPECT_EQ(r.home_shards, shards) << where;
      EXPECT_EQ(r.results, ref.results) << where;
      EXPECT_EQ(r.session_ms, ref.session_ms) << where;
      EXPECT_EQ(r.segments, ref.segments) << where;
      EXPECT_DOUBLE_EQ(r.completion_ms.p99(), ref.completion_ms.p99()) << where;
      EXPECT_DOUBLE_EQ(r.total_ms, ref.total_ms) << where;
      if (wallclock) {
        EXPECT_GT(r.lock_acq, 0u) << where;
        if (engine_acq == 0) {
          engine_acq = r.lock_acq;
        } else {
          EXPECT_EQ(r.lock_acq, engine_acq) << where;
        }
      } else {
        EXPECT_EQ(r.lock_acq, 0u) << where;
      }
    }
  }
}

TEST(LoadGenTest, PerTenantExactlyOnceUnderWorkerLoss) {
  TraceConfig cfg;
  cfg.sessions = 32;
  cfg.tenants = 4;
  cfg.apps = 2;
  cfg.seed = 11;
  cfg.failures = 2;  // two mid-trace worker losses
  cfg.churn = 0.1;   // plus join/drain spikes
  Trace tr = sod::cluster::make_trace(cfg);
  LoadGenOptions opts;
  auto r = sod::cluster::run_loadgen(tr, opts);
  EXPECT_TRUE(r.all_ok);
  EXPECT_TRUE(r.exactly_once);
  EXPECT_GT(r.failures_armed, 0);
  EXPECT_GT(r.surge_joins, 0);
  EXPECT_GT(r.workers_lost, 0);
  EXPECT_GT(r.redispatched, 0);
  // Every tenant's sessions all completed with the reference result.
  for (const auto& tn : r.tenants) EXPECT_EQ(tn.completed, tn.sessions) << tn.tenant;
}

TEST(LoadGenTest, TenantAccountingSumsToTotals) {
  TraceConfig cfg;
  cfg.sessions = 20;
  cfg.tenants = 3;
  cfg.seed = 3;
  Trace tr = sod::cluster::make_trace(cfg);
  auto r = sod::cluster::run_loadgen(tr, LoadGenOptions{});
  int sessions = 0, segments = 0, completed = 0;
  for (const auto& tn : r.tenants) {
    sessions += tn.sessions;
    segments += tn.segments;
    completed += tn.completed;
    if (tn.sessions > 0) {
      EXPECT_GE(tn.completion_ms.count(), 1);
    }
  }
  EXPECT_EQ(sessions, r.sessions);
  EXPECT_EQ(segments, r.segments);
  EXPECT_EQ(completed, r.completed);
  EXPECT_GT(r.segments, 0);
}

// --------------------------------------------------- tenant isolation
// The cross-tenant leakage property: in a shared replay, every tenant's
// per-session results are bit-identical to replaying that tenant's
// sessions ALONE on the same topology.  Randomized over tenant counts
// (2-5), topologies (worker count, device-profile nodes, slow links),
// arrival shapes, policies, and split widths — if any tenant's statics,
// heap refs, or class state leaked into another tenant's computation,
// some seed's shared run would diverge from the clean-room run.
class TenantIsolation : public ::testing::TestWithParam<int> {};

TEST_P(TenantIsolation, SharedRunMatchesAloneRuns) {
  const uint64_t seed = 4200 + static_cast<uint64_t>(GetParam());
  sod::Rng rng(seed);

  TraceConfig cfg;
  cfg.sessions = 10 + static_cast<int>(rng.below(8));
  cfg.tenants = 2 + static_cast<int>(rng.below(4));  // 2..5 tenants
  cfg.apps = 4;  // include the statics-bearing apps (fft, tsp)
  cfg.arrival = std::vector<ArrivalKind>{ArrivalKind::Poisson, ArrivalKind::OnOff,
                                         ArrivalKind::Soak}[rng.below(3)];
  cfg.seed = seed * 31;
  cfg.mean_gap = VDur::micros(200 + static_cast<int64_t>(rng.below(800)));
  cfg.max_rounds = 2;
  if (rng.below(2) == 0) {
    cfg.churn = 0.1;  // shared run only: filter_tenant drops injections,
    cfg.failures = 1; // so isolation must also hold across loss/redispatch
  }
  Trace tr = sod::cluster::make_trace(cfg);

  LoadGenOptions opts;
  opts.policy = rng.below(2) == 0 ? sod::cluster::PolicyKind::LeastLoaded
                                  : sod::cluster::PolicyKind::RoundRobin;
  opts.segments_per_round = 1 + static_cast<int>(rng.below(3));
  const int nworkers = 2 + static_cast<int>(rng.below(4));
  for (int w = 0; w < nworkers; ++w) {
    sod::cluster::WorkerSpec ws;
    ws.name = "w";
    ws.name += std::to_string(w);
    if (rng.below(4) == 0) ws.config.cpu_scale = 25.0;  // device-profile node
    ws.link = rng.below(4) == 0 ? sod::sim::Link::wifi_kbps(2000)
                                : sod::sim::Link::gigabit();
    opts.workers.push_back(ws);
  }

  auto shared = sod::cluster::run_loadgen(tr, opts);
  ASSERT_TRUE(shared.all_ok) << "seed " << seed;
  ASSERT_TRUE(shared.exactly_once) << "seed " << seed;

  for (int t = 0; t < cfg.tenants; ++t) {
    Trace alone_tr = sod::cluster::filter_tenant(tr, t);
    if (alone_tr.sessions.empty()) continue;
    auto alone = sod::cluster::run_loadgen(alone_tr, opts);
    ASSERT_TRUE(alone.all_ok) << "seed " << seed << " tenant " << t;
    for (size_t j = 0; j < alone_tr.sessions.size(); ++j) {
      const int id = alone_tr.sessions[j].id;
      EXPECT_EQ(alone.results[j], shared.results[static_cast<size_t>(id)])
          << "seed " << seed << " tenant " << t << " session " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TenantIsolation, ::testing::Range(0, 8));

TEST(LoadGenTest, ThousandSessionSmoke) {
  // The scale acceptance row: 1000 sessions across 8 tenants drain
  // completely, exactly-once holding across every tenant's rounds.
  TraceConfig cfg;
  cfg.sessions = 1000;
  cfg.tenants = 8;
  cfg.apps = 1;  // fib-only keeps the smoke fast under ASan
  cfg.arrival = ArrivalKind::Poisson;
  cfg.mean_gap = VDur::micros(50);
  cfg.seed = 2026;
  cfg.max_rounds = 1;
  Trace tr = sod::cluster::make_trace(cfg);
  LoadGenOptions opts;
  opts.segments_per_round = 1;
  auto r = sod::cluster::run_loadgen(tr, opts);
  EXPECT_EQ(r.completed, 1000);
  EXPECT_TRUE(r.all_ok);
  EXPECT_TRUE(r.exactly_once);
  EXPECT_EQ(r.completion_ms.count(), 1000);
  EXPECT_GE(r.completion_ms.p99(), r.completion_ms.p50());
}

}  // namespace
