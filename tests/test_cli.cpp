// Scenario registry: every app/bench/example registers, resolves by name,
// runs under its smoke config, and unknown names fail with a clear error.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "cli/scenario.h"
#include "support/table.h"

namespace sod::cli {
namespace {

// The full scenario surface this PR ships.  A new workload registering
// itself shows up in `all()` without touching this list; removing or
// renaming one of these is a breaking CLI change and should fail here.
const std::set<std::string> kExpected = {
    // apps
    "fib", "nqueens", "fft", "tsp", "docsearch", "photoshare",
    // benches
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "fig1", "fig5", "placement", "elastic", "failover", "checkpoint", "roaming_grid",
    "overhead_components", "ablation_fetch", "ablation_prefetch", "ablation_segments",
    "wallclock", "multitenant",
    // examples
    "quickstart", "elastic_search", "photo_share", "workflow_roaming"};

TEST(Registry, EveryExpectedScenarioResolves) {
  for (const std::string& name : kExpected) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name, name);
    EXPECT_FALSE(s->description.empty()) << name;
    EXPECT_TRUE(static_cast<bool>(s->run)) << name;
  }
}

TEST(Registry, AllIsSortedAndCoversExpected) {
  auto all = ScenarioRegistry::instance().all();
  ASSERT_GE(all.size(), kExpected.size());
  std::set<std::string> names;
  for (const Scenario* s : all) names.insert(s->name);
  for (const std::string& name : kExpected) EXPECT_TRUE(names.count(name)) << name;
  for (size_t i = 1; i < all.size(); ++i) {
    bool ordered = all[i - 1]->kind < all[i]->kind ||
                   (all[i - 1]->kind == all[i]->kind && all[i - 1]->name < all[i]->name);
    EXPECT_TRUE(ordered) << all[i - 1]->name << " vs " << all[i]->name;
  }
}

TEST(Registry, UnknownNameFailsWithSuggestions) {
  EXPECT_EQ(ScenarioRegistry::instance().find("no_such_scenario"), nullptr);
  auto near = ScenarioRegistry::instance().suggestions("tabel2");
  ASSERT_FALSE(near.empty());
  EXPECT_NE(std::find(near.begin(), near.end(), "table2"), near.end());
}

TEST(Flags, ParsesSmokeNodesJsonAndPassthrough) {
  ScenarioOptions opt;
  ASSERT_TRUE(parse_scenario_flags({"--smoke", "--nodes", "4", "--json", "out.json", "--x"},
                                   opt, "BENCH_t.json"));
  EXPECT_TRUE(opt.smoke);
  EXPECT_EQ(opt.nodes, 4);
  EXPECT_EQ(opt.json_path, "out.json");
  ASSERT_EQ(opt.extra.size(), 1u);
  EXPECT_EQ(opt.extra[0], "--x");
}

TEST(Flags, BareJsonUsesDefaultName) {
  ScenarioOptions opt;
  ASSERT_TRUE(parse_scenario_flags({"--json"}, opt, "BENCH_table2.json"));
  EXPECT_EQ(opt.json_path, "BENCH_table2.json");
}

TEST(Flags, ParsesAndValidatesPolicy) {
  ScenarioOptions opt;
  ASSERT_TRUE(parse_scenario_flags({"--policy", "least-loaded"}, opt, ""));
  EXPECT_EQ(opt.policy, "least-loaded");
  ASSERT_TRUE(parse_scenario_flags({"--policy", "locality_aware"}, opt, ""));
  EXPECT_EQ(opt.policy, "locality_aware");
  ASSERT_TRUE(parse_scenario_flags({"--policy", "learned"}, opt, ""));
  EXPECT_EQ(opt.policy, "learned");
  EXPECT_FALSE(parse_scenario_flags({"--policy"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--policy", "fastest"}, opt, ""));
}

TEST(Flags, ParsesAndValidatesChurn) {
  ScenarioOptions opt;
  EXPECT_EQ(opt.churn, -1.0);  // unset = scenario default
  ASSERT_TRUE(parse_scenario_flags({"--churn", "0.2"}, opt, ""));
  EXPECT_DOUBLE_EQ(opt.churn, 0.2);
  ASSERT_TRUE(parse_scenario_flags({"--churn", "0"}, opt, ""));
  EXPECT_DOUBLE_EQ(opt.churn, 0.0);
  ASSERT_TRUE(parse_scenario_flags({"--churn", "1"}, opt, ""));
  EXPECT_DOUBLE_EQ(opt.churn, 1.0);
  EXPECT_FALSE(parse_scenario_flags({"--churn"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--churn", "1.5"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--churn", "-0.1"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--churn", "lots"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--churn", "nan"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--churn", "inf"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--churn", ""}, opt, ""));
}

TEST(Flags, ParsesFailAtAndAutoscale) {
  ScenarioOptions opt;
  EXPECT_EQ(opt.fail_at, -1);  // unset = no injected failure
  EXPECT_FALSE(opt.autoscale);
  ASSERT_TRUE(parse_scenario_flags({"--fail-at", "5", "--autoscale"}, opt, ""));
  EXPECT_EQ(opt.fail_at, 5);
  EXPECT_TRUE(opt.autoscale);
  ASSERT_TRUE(parse_scenario_flags({"--fail-at", "0"}, opt, ""));
  EXPECT_EQ(opt.fail_at, 0);
  EXPECT_FALSE(parse_scenario_flags({"--fail-at"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--fail-at", "-1"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--fail-at", "soon"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--fail-at", ""}, opt, ""));
}

TEST(Flags, ParsesCheckpointEveryAndSpeculate) {
  ScenarioOptions opt;
  EXPECT_EQ(opt.checkpoint_every, 0);  // unset = checkpointing off
  EXPECT_FALSE(opt.speculate);
  ASSERT_TRUE(parse_scenario_flags({"--checkpoint-every", "20000", "--speculate"}, opt, ""));
  EXPECT_EQ(opt.checkpoint_every, 20000);
  EXPECT_TRUE(opt.speculate);
  ASSERT_TRUE(parse_scenario_flags({"--checkpoint-every", "1"}, opt, ""));
  EXPECT_EQ(opt.checkpoint_every, 1);
  EXPECT_FALSE(parse_scenario_flags({"--checkpoint-every"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--checkpoint-every", "0"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--checkpoint-every", "-5"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--checkpoint-every", "often"}, opt, ""));
}

TEST(Flags, ParsesLoadTraceFlags) {
  ScenarioOptions opt;
  EXPECT_EQ(opt.sessions, 0);  // unset = scenario default
  EXPECT_TRUE(opt.arrival.empty());
  EXPECT_EQ(opt.seed, -1);  // unset = scenario default seed
  ASSERT_TRUE(parse_scenario_flags(
      {"--sessions", "100", "--arrival", "onoff", "--seed", "42"}, opt, ""));
  EXPECT_EQ(opt.sessions, 100);
  EXPECT_EQ(opt.arrival, "onoff");
  EXPECT_EQ(opt.seed, 42);
  EXPECT_FALSE(parse_scenario_flags({"--sessions", "0"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--sessions"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--arrival", "bursty"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--seed", "-3"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--seed", "abc"}, opt, ""));
}

TEST(Flags, ParsesThreadsAndWallclock) {
  ScenarioOptions opt;
  EXPECT_EQ(opt.threads, 0);  // unset = one pool thread per worker
  EXPECT_FALSE(opt.wallclock);
  ASSERT_TRUE(parse_scenario_flags({"--wallclock"}, opt, ""));
  EXPECT_TRUE(opt.wallclock);
  EXPECT_EQ(opt.threads, 0);
  ScenarioOptions opt2;
  ASSERT_TRUE(parse_scenario_flags({"--threads", "4"}, opt2, ""));
  EXPECT_EQ(opt2.threads, 4);
  EXPECT_TRUE(opt2.wallclock);  // --threads implies --wallclock
  EXPECT_FALSE(parse_scenario_flags({"--threads"}, opt2, ""));
  EXPECT_FALSE(parse_scenario_flags({"--threads", "0"}, opt2, ""));
  EXPECT_FALSE(parse_scenario_flags({"--threads", "257"}, opt2, ""));
  EXPECT_FALSE(parse_scenario_flags({"--threads", "many"}, opt2, ""));
}

TEST(Flags, ParsesAndValidatesHomeShards) {
  ScenarioOptions opt;
  EXPECT_EQ(opt.home_shards, 0);  // unset = scenario default (1, unsharded)
  ASSERT_TRUE(parse_scenario_flags({"--home-shards", "1"}, opt, ""));
  EXPECT_EQ(opt.home_shards, 1);
  ASSERT_TRUE(parse_scenario_flags({"--home-shards", "64"}, opt, ""));
  EXPECT_EQ(opt.home_shards, 64);
  EXPECT_FALSE(parse_scenario_flags({"--home-shards"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--home-shards", "0"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--home-shards", "65"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--home-shards", "four"}, opt, ""));
  // The shared one-token diagnostic: the offending value quoted exactly
  // once, followed by the accepted range.
  ::testing::internal::CaptureStderr();
  ScenarioOptions opt2;
  EXPECT_FALSE(parse_scenario_flags({"--home-shards", "128"}, opt2, ""));
  std::string err = ::testing::internal::GetCapturedStderr();
  size_t occurrences = 0;
  for (size_t pos = 0; (pos = err.find("128", pos)) != std::string::npos; ++pos)
    ++occurrences;
  EXPECT_EQ(occurrences, 1u) << err;
  EXPECT_NE(err.find("1..64"), std::string::npos) << err;
}

// The cluster apps must give the same answer on the wall-clock pool as on
// the virtual-time scheduler (the acceptance path of
// `sodctl run fib --nodes 4 --threads 4`).
TEST(ClusterApps, FibRunsOnTheWallClockEngine) {
  const Scenario* s = ScenarioRegistry::instance().find("fib");
  ASSERT_NE(s, nullptr);
  for (int threads : {1, 4}) {
    ScenarioOptions opt;
    opt.nodes = 4;
    opt.threads = threads;
    opt.wallclock = true;
    EXPECT_EQ(s->run(opt), 0) << "threads=" << threads;
  }
  // Sharded home state rides the same path (`--home-shards 4 --threads 4`)
  // and must not change the app's answer.
  ScenarioOptions opt;
  opt.nodes = 4;
  opt.threads = 4;
  opt.wallclock = true;
  opt.home_shards = 4;
  EXPECT_EQ(s->run(opt), 0) << "home_shards=4";
}

// Speculative backups launch from the newest checkpoint, so --speculate
// without a checkpoint cadence is a configuration error, not a no-op.
TEST(Flags, SpeculateRequiresCheckpointEvery) {
  ScenarioOptions opt;
  EXPECT_FALSE(parse_scenario_flags({"--speculate"}, opt, ""));
  ::testing::internal::CaptureStderr();
  ScenarioOptions opt2;
  EXPECT_FALSE(parse_scenario_flags({"--speculate"}, opt2, ""));
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--checkpoint-every"), std::string::npos) << err;
}

// Regression: the --churn diagnostic used to repeat the raw argv token;
// it must quote the token exactly once and name the accepted range.
TEST(Flags, BadChurnDiagnosticQuotesTokenOnceWithRange) {
  ScenarioOptions opt;
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(parse_scenario_flags({"--churn", "2.5x"}, opt, ""));
  std::string err = ::testing::internal::GetCapturedStderr();
  size_t occurrences = 0;
  for (size_t pos = 0; (pos = err.find("2.5x", pos)) != std::string::npos; ++pos)
    ++occurrences;
  EXPECT_EQ(occurrences, 1u) << err;
  EXPECT_NE(err.find("0..1"), std::string::npos) << err;
}

TEST(Flags, BadNodesValueRejected) {
  ScenarioOptions opt;
  EXPECT_FALSE(parse_scenario_flags({"--nodes", "zero"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--nodes"}, opt, ""));
  EXPECT_FALSE(parse_scenario_flags({"--nodes", "0"}, opt, ""));
}

TEST(Json, TableEmissionIsSchemaStable) {
  Table t({"App", "x"});
  t.row({"Fib \"quoted\"", "1.5"});
  std::string j = t.json("table2");
  EXPECT_EQ(j,
            "{\"bench\": \"table2\", \"schema_version\": 1, "
            "\"columns\": [\"App\", \"x\"], "
            "\"rows\": [[\"Fib \\\"quoted\\\"\", \"1.5\"]]}\n");
}

// The cluster apps must run green under every placement policy (the
// acceptance path of `sodctl run fib --nodes 4 --policy least-loaded`).
TEST(ClusterApps, FibRunsUnderEveryPolicy) {
  const Scenario* s = ScenarioRegistry::instance().find("fib");
  ASSERT_NE(s, nullptr);
  for (const char* policy : {"round-robin", "least-loaded", "locality-aware"}) {
    ScenarioOptions opt;
    opt.nodes = 4;
    opt.policy = policy;
    EXPECT_EQ(s->run(opt), 0) << policy;
  }
}

// --- every registered scenario runs its smoke config ---

class ScenarioSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioSmoke, RunsCleanly) {
  const Scenario* s = ScenarioRegistry::instance().find(GetParam());
  ASSERT_NE(s, nullptr);
  ScenarioOptions opt;
  opt.smoke = true;
  opt.nodes = 2;
  if (s->kind == ScenarioKind::Bench) {
    opt.json_path = ::testing::TempDir() + "BENCH_" + s->name + ".json";
    std::remove(opt.json_path.c_str());
  }
  EXPECT_EQ(s->run(opt), 0) << s->name;
  if (!opt.json_path.empty()) {
    std::ifstream in(opt.json_path);
    ASSERT_TRUE(in.good()) << opt.json_path;
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"bench\": \"" + s->name + "\""), std::string::npos);
    EXPECT_NE(body.str().find("\"schema_version\": 1"), std::string::npos);
    std::remove(opt.json_path.c_str());
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const Scenario* s : ScenarioRegistry::instance().all()) names.push_back(s->name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioSmoke, ::testing::ValuesIn(all_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace sod::cli
