// Tool interface: stack walking, local access, statics, breakpoints,
// ForceEarlyReturn/PopFrame, and the per-call cost accounting.
#include <gtest/gtest.h>

#include "testlib.h"
#include "vmti/vmti.h"

namespace sod {
namespace {

using namespace sod::testing;
using svm::StopReason;

struct Fixture {
  bc::Program p = fib_program();
  svm::VM vm{p, nullptr};
  vmti::ToolInterface ti{vm};
  uint16_t fib = p.find_method("Main.fib");

  int paused_at_depth(int depth, int64_t n = 18) {
    int tid = vm.spawn(fib, std::vector<Value>{Value::of_i64(n)});
    vm.set_debug_mode(true);
    vm.add_breakpoint(fib, 0);
    while (true) {
      auto rr = vm.run(tid);
      SOD_CHECK(rr.reason == StopReason::Breakpoint, "expected bp");
      if (static_cast<int>(vm.thread(tid).frames.size()) >= depth) break;
    }
    vm.remove_breakpoint(fib, 0);
    return tid;
  }
};

TEST(Vmti, StackWalkAndFrameLocations) {
  Fixture fx;
  int tid = fx.paused_at_depth(6);
  EXPECT_EQ(fx.ti.get_stack_depth(tid), 6);
  // Depth 0 is the top frame, paused at the method entry.
  auto top = fx.ti.get_frame_location(tid, 0);
  EXPECT_EQ(top.method, fx.fib);
  EXPECT_EQ(top.pc, 0u);
  // Deeper frames are suspended at return addresses (inside the body).
  auto below = fx.ti.get_frame_location(tid, 1);
  EXPECT_EQ(below.method, fx.fib);
  EXPECT_GT(below.pc, 0u);
}

TEST(Vmti, GetLocalReadsTheRightFrames) {
  Fixture fx;
  int tid = fx.paused_at_depth(5, 18);
  // Leftmost descent: n decreases by 1 per frame: 18,17,16,15,14 top-down.
  for (int d = 0; d < 5; ++d)
    EXPECT_EQ(fx.ti.get_local(tid, d, 0).as_i64(), 14 + d) << "depth " << d;
}

TEST(Vmti, SetLocalChangesExecution) {
  Fixture fx;
  int tid = fx.paused_at_depth(4, 15);
  // Rewrite the top frame's n to 1: that subtree now returns 1.
  fx.ti.set_local(tid, 0, 0, Value::of_i64(1));
  fx.vm.set_debug_mode(false);
  ASSERT_EQ(fx.vm.run(tid).reason, StopReason::Done);
  // fib(15) computed with the fib(12) subtree replaced by 1:
  // full result = fib(15) - fib(12) + 1.
  EXPECT_EQ(fx.vm.thread(tid).result.as_i64(), fib_ref(15) - fib_ref(12) + 1);
}

TEST(Vmti, PopFrameDiscardsTop) {
  Fixture fx;
  int tid = fx.paused_at_depth(4, 15);
  size_t before = fx.vm.thread(tid).frames.size();
  fx.ti.pop_frame(tid);
  EXPECT_EQ(fx.vm.thread(tid).frames.size(), before - 1);
}

TEST(Vmti, ForceEarlyReturnDeliversValue) {
  Fixture fx;
  int tid = fx.paused_at_depth(4, 15);
  // Complete the top call (fib(12)'s subtree) with 1000.
  fx.ti.force_early_return(tid, Value::of_i64(1000));
  fx.vm.set_debug_mode(false);
  ASSERT_EQ(fx.vm.run(tid).reason, StopReason::Done);
  EXPECT_EQ(fx.vm.thread(tid).result.as_i64(), fib_ref(15) - fib_ref(12) + 1000);
}

TEST(Vmti, ForceEarlyReturnOnLastFrameFinishesThread) {
  Fixture fx;
  int tid = fx.vm.spawn(fx.fib, std::vector<Value>{Value::of_i64(10)});
  fx.ti.force_early_return(tid, Value::of_i64(42));
  EXPECT_EQ(fx.vm.thread(tid).status, svm::ThreadStatus::Done);
  EXPECT_EQ(fx.vm.thread(tid).result.as_i64(), 42);
}

TEST(Vmti, StaticAccess) {
  bc::ProgramBuilder pb;
  auto& m = pb.cls("M");
  m.field("s", bc::Ty::I64, /*is_static=*/true);
  auto& f = m.method("get", {}, bc::Ty::I64);
  f.stmt().getstatic("M.s").iret();
  auto p = pb.build();
  svm::VM vm(p, nullptr);
  vmti::ToolInterface ti(vm);
  uint16_t fid = p.find_field("M.s");
  ti.set_static_field(fid, Value::of_i64(77));
  EXPECT_EQ(ti.get_static_field(fid).as_i64(), 77);
  EXPECT_EQ(vm.call("M.get", {}).as_i64(), 77);
}

TEST(Vmti, CostAccountingFollowsTheModel) {
  Fixture fx;
  int tid = fx.paused_at_depth(4, 15);
  fx.ti.reset_spent();
  fx.ti.get_frame_location(tid, 0);  // 1 us
  fx.ti.get_local(tid, 0, 0);        // 30 us
  fx.ti.get_local(tid, 1, 0);        // 30 us
  EXPECT_DOUBLE_EQ(fx.ti.spent().us(), 61.0);
  fx.ti.reset_spent();
  EXPECT_EQ(fx.ti.spent().ns, 0);
}

TEST(Vmti, FreeCostModelChargesNothing) {
  bc::Program p = fib_program();
  svm::VM vm(p, nullptr);
  vmti::ToolInterface ti(vm, vmti::CostModel::free());
  int tid = vm.spawn(p.find_method("Main.fib"), std::vector<Value>{Value::of_i64(5)});
  ti.get_stack_depth(tid);
  ti.get_local(tid, 0, 0);
  EXPECT_EQ(ti.spent().ns, 0);
}

TEST(Vmti, GetLocalVariableTableMatchesMethod) {
  Fixture fx;
  const auto& vt = fx.ti.get_local_variable_table(fx.fib);
  ASSERT_EQ(vt.size(), 3u);  // n, a, b
  EXPECT_EQ(vt[0].name, "n");
  EXPECT_EQ(vt[0].type, bc::Ty::I64);
}

}  // namespace
}  // namespace sod
